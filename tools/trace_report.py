#!/usr/bin/env python3
"""Offline analyzer for APE Perfetto trace dumps (obs/trace_export).

The exporter annotates every complete ("ph":"X") event with its causal
identity in `args` ({trace, span, parent, key}); this tool rebuilds the
span trees from those args — independently of the C++ attribution code —
and re-checks the structural invariants plus the exact integer-microsecond
reconciliation (sum of exclusive times == root end-to-end duration).

Usage:
  tools/trace_report.py trace.json             # per-kind / per-request report
  tools/trace_report.py --validate trace.json  # invariants only, exit 1 on any
                                               # violation (CI trace-smoke lane)
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import defaultdict
from dataclasses import dataclass, field


@dataclass
class Span:
    trace: int
    span: int
    parent: int
    name: str
    component: str
    key: str
    ts: int  # microseconds
    dur: int  # microseconds
    children: list = field(default_factory=list)

    @property
    def end(self) -> int:
        return self.ts + self.dur


def load_spans(path: str) -> tuple[list[Span], list[str]]:
    """Parses the exporter's JSON; returns (spans, format_errors)."""
    errors: list[str] = []
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return [], ["not a Perfetto JSON Object Format file (no traceEvents)"]
    spans: list[Span] = []
    for i, ev in enumerate(doc["traceEvents"]):
        ph = ev.get("ph")
        if ph == "M":  # metadata (thread_name lanes)
            continue
        if ph != "X":
            errors.append(f"event {i}: unexpected phase {ph!r} (exporter emits only M and X)")
            continue
        args = ev.get("args", {})
        missing = [k for k in ("trace", "span", "parent", "key") if k not in args]
        if missing:
            errors.append(f"event {i}: args missing {missing}")
            continue
        if not isinstance(ev.get("ts"), int) or not isinstance(ev.get("dur"), int):
            errors.append(f"event {i}: ts/dur must be integer microseconds")
            continue
        spans.append(
            Span(
                trace=args["trace"],
                span=args["span"],
                parent=args["parent"],
                name=ev.get("name", "?"),
                component=ev.get("cat", ""),
                key=args["key"],
                ts=ev["ts"],
                dur=ev["dur"],
            )
        )
    return spans, errors


def build_traces(spans: list[Span]) -> tuple[dict, list[str]]:
    """Groups spans by trace id and links children; returns (traces, errors)."""
    errors: list[str] = []
    traces: dict[int, dict[int, Span]] = defaultdict(dict)
    for s in spans:
        if s.span in traces[s.trace]:
            errors.append(f"trace {s.trace}: duplicate span id {s.span}")
            continue
        traces[s.trace][s.span] = s
    for trace_id, members in traces.items():
        for s in members.values():
            if s.parent == 0:
                continue
            parent = members.get(s.parent)
            if parent is None:
                errors.append(
                    f"trace {trace_id}: span {s.span} ({s.name}) has unknown parent {s.parent}"
                )
                continue
            parent.children.append(s)
    return traces, errors


def validate_trace(trace_id: int, members: dict) -> list[str]:
    """Structural invariants for one trace (mirrors obs::validate_spans)."""
    errors: list[str] = []
    roots = [s for s in members.values() if s.parent == 0]
    if len(roots) != 1:
        errors.append(f"trace {trace_id}: {len(roots)} roots (want exactly 1)")
    for s in members.values():
        if s.dur < 0:
            errors.append(f"trace {trace_id}: span {s.span} ({s.name}) negative duration")
        parent = members.get(s.parent) if s.parent != 0 else None
        if parent is not None and not (parent.ts <= s.ts and s.end <= parent.end):
            errors.append(
                f"trace {trace_id}: span {s.span} ({s.name}) "
                f"[{s.ts},{s.end}] escapes parent {parent.span} [{parent.ts},{parent.end}]"
            )
        kids = sorted(s.children, key=lambda c: (c.ts, c.end))
        for a, b in zip(kids, kids[1:]):
            if b.ts < a.end:
                errors.append(
                    f"trace {trace_id}: siblings {a.span} ({a.name}) and "
                    f"{b.span} ({b.name}) overlap under span {s.span}"
                )
    return errors


def exclusive_us(s: Span) -> int:
    return s.dur - sum(c.dur for c in s.children)


def reconcile_trace(trace_id: int, members: dict) -> list[str]:
    """Exact attribution check: sum(exclusive) == root end-to-end, in µs."""
    roots = [s for s in members.values() if s.parent == 0]
    if len(roots) != 1:
        return []  # already reported by validate_trace
    total = sum(exclusive_us(s) for s in members.values())
    if total != roots[0].dur:
        return [
            f"trace {trace_id}: exclusive sum {total}us != end-to-end {roots[0].dur}us "
            f"(root {roots[0].name})"
        ]
    return []


def print_table(header: list[str], rows: list[list[str]]) -> None:
    widths = [max(len(header[i]), *(len(r[i]) for r in rows)) if rows else len(header[i])
              for i in range(len(header))]
    line = "  ".join(h.ljust(w) for h, w in zip(header, widths))
    print(line)
    print("  ".join("-" * w for w in widths))
    for r in rows:
        print("  ".join(c.ljust(w) for c, w in zip(r, widths)))


def report(traces: dict) -> None:
    by_kind: dict[str, list[int]] = defaultdict(list)
    by_request: dict[str, list[int]] = defaultdict(list)
    for members in traces.values():
        for s in members.values():
            by_kind[s.name].append(exclusive_us(s))
        for s in members.values():
            if s.parent == 0:
                by_request[s.key].append(s.dur)

    print(f"{len(traces)} traces, {sum(len(m) for m in traces.values())} spans\n")

    print("Per-span-kind exclusive time (critical-path attribution):")
    rows = []
    for kind in sorted(by_kind):
        vals = by_kind[kind]
        total_ms = sum(vals) / 1000.0
        rows.append([kind, str(len(vals)), f"{total_ms:.2f}",
                     f"{total_ms / len(vals):.3f}"])
    print_table(["span kind", "count", "exclusive total ms", "mean ms"], rows)

    print("\nPer-request end-to-end latency (root spans):")
    rows = []
    for key in sorted(by_request):
        vals = sorted(by_request[key])
        mean_ms = sum(vals) / len(vals) / 1000.0
        p99_ms = vals[min(len(vals) - 1, int(0.99 * len(vals)))] / 1000.0
        rows.append([key, str(len(vals)), f"{mean_ms:.2f}", f"{p99_ms:.2f}"])
    print_table(["request", "count", "mean ms", "p99 ms"], rows)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("trace", help="Perfetto JSON written by --trace-out")
    parser.add_argument("--validate", action="store_true",
                        help="check invariants + exact reconciliation; exit 1 on violation")
    args = parser.parse_args()

    spans, errors = load_spans(args.trace)
    traces, link_errors = build_traces(spans)
    errors.extend(link_errors)
    for trace_id in sorted(traces):
        errors.extend(validate_trace(trace_id, traces[trace_id]))
        errors.extend(reconcile_trace(trace_id, traces[trace_id]))

    if errors:
        for e in errors:
            print(f"error: {e}", file=sys.stderr)
        print(f"FAIL: {len(errors)} violation(s) in {args.trace}", file=sys.stderr)
        return 1

    if args.validate:
        print(f"OK: {len(traces)} traces / {len(spans)} spans validated; "
              "all attributions reconcile exactly")
        return 0

    report(traces)
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""ape-lint: repo-specific static analysis for the APE-CACHE tree.

The observability layer promises that two identically seeded runs export
byte-identical `ape.obs.v1` snapshots.  That promise rests on invariants no
compiler enforces:

  * no wall-clock or ambient randomness on simulated paths,
  * no iteration over unordered containers on any path that feeds exporters,
    eviction ordering, or DNS response assembly,
  * no silently dropped `Result<T>` values, and
  * no raw `double` seconds where the `sim::Time`/`sim::Duration` types exist.

This tool enforces them with token/regex analysis — no libclang, no network,
no third-party packages.  It is deliberately repo-specific: identifier-based
heuristics that would be unsound for arbitrary C++ are fine here because the
tree is the closed world they run against.

Checks
------
  wallclock         std::random_device / std::rand / srand / time() /
                    system_clock / steady_clock / high_resolution_clock /
                    gettimeofday / clock_gettime outside an allowlist line.
  unordered-iter    range-for or .begin()/.cbegin() iteration over a variable
                    declared anywhere in the tree as std::unordered_map or
                    std::unordered_set.
  discarded-result  a bare expression statement calling a function declared
                    to return [common/result.hpp's] Result<T>.
  raw-seconds       `double <name>_s|_sec|_secs|_seconds` declarations —
                    use sim::Duration / sim::Time instead.
  span-leak         a trace-span context captured from SpanLog::open()/
                    open_root() that is never mentioned again after the
                    opening statement — it can never be closed, so the span
                    stays open and validate_spans() flags the whole trace.
  cursor-bypass     a direct MetricsRegistry read (.counters()/.gauges()/
                    .histograms()/.counter()/...) inside the body of a
                    window-capture function (name starting with `capture` or
                    `scrape`) — those paths must read through the Timeline
                    DeltaCursor (advance()), or the same increment lands in
                    two windows and delta-sum reconciliation breaks (the
                    idempotency-cursor trap record_span_histograms guards
                    against).
  hot-alloc         in a file annotated `// ape-lint: hot-path` (the event
                    engine and its satellites, DESIGN.md §5h): a heap
                    allocation (`new`, make_unique/make_shared — placement
                    new is fine) or a by-name metric lookup
                    (.counter("...")/.gauge("...")/.histogram("...")/
                    .count("...")), both of which defeat the arena/handle
                    design those files exist for.  Hot paths resolve
                    instruments once through obs::CounterHandle/
                    HistogramHandle and recycle event state through arenas.

Allowlisting
------------
A violation is suppressed by an annotation on the same line, or on a
comment-only line directly above it:

    const auto t0 = std::chrono::steady_clock::now();  // ape-lint: allow(wallclock)

    // ape-lint: allow(unordered-iter) -- snapshot is sorted two lines down
    for (const auto& [k, v] : unordered_thing) ...

A whole file opts out of one check with `// ape-lint: allow-file(<check>)`.

Fixture mode
------------
`--fixtures DIR` runs every fixture file through the checks and compares the
findings against `// expect-lint: <check>` markers; any missing or unexpected
finding fails the run.  This is what the `lint_fixtures` ctest entry drives.

Exit codes: 0 clean, 1 findings (or fixture mismatch), 2 usage error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from typing import Dict, List, Set, Tuple

CHECKS = ("wallclock", "unordered-iter", "discarded-result", "raw-seconds", "span-leak",
          "cursor-bypass", "hot-alloc")

SOURCE_EXTENSIONS = (".cpp", ".hpp", ".h", ".cc", ".cxx")

ALLOW_RE = re.compile(r"ape-lint:\s*allow\(([^)]*)\)")
ALLOW_FILE_RE = re.compile(r"ape-lint:\s*allow-file\(([^)]*)\)")
EXPECT_RE = re.compile(r"expect-lint:\s*([a-z-]+(?:\s*,\s*[a-z-]+)*)")

# --------------------------------------------------------------------------
# wallclock tokens.  `time(` must not match `busy_time(`, `.time()` or
# `->time()`: reject a preceding word char, `.`, or `>`.
WALLCLOCK_RE = re.compile(
    r"std::random_device\b"
    r"|\brandom_device\b"
    r"|std::rand\b"
    r"|(?<![\w.>:])rand\s*\("
    r"|\bsrand\s*\("
    r"|(?<![\w.>])(?<!double )(?<!float )(?<!auto )(?<!int )time\s*\("
    r"|\bsystem_clock\b"
    r"|\bsteady_clock\b"
    r"|\bhigh_resolution_clock\b"
    r"|\bgettimeofday\s*\("
    r"|\bclock_gettime\s*\("
    r"|std::clock\s*\("
)

# `double foo_s` / `double ttl_seconds` declarations.  Rates (`*_per_sec`)
# are not seconds quantities, and a following `(` means a function returning
# double (e.g. the sanctioned sim::to_seconds conversion), not a variable.
RAW_SECONDS_RE = re.compile(
    r"\bdouble\s+(?![A-Za-z_]\w*per_s(?:ec)?\b)((?:[A-Za-z_]\w*_(?:s|sec|secs|seconds)))\s*[;=,){]"
)

UNORDERED_DECL_RE = re.compile(r"\bunordered_(?:map|set|multimap|multiset)\s*<")

RANGE_FOR_RE = re.compile(r"\bfor\s*\(")

RESULT_FN_RE = re.compile(
    r"\bResult\s*<[^;{}()]*?>\s+(?:[A-Za-z_]\w*::)*([A-Za-z_]\w*)\s*\("
)

# A bare expression statement whose first meaningful token chain is a call of
# NAME: optional object path, then NAME(, with nothing consuming the value.
STATEMENT_PREFIX_SKIP_RE = re.compile(
    r"^\s*(?:return\b|co_return\b|if\b|else\b|while\b|for\b|switch\b|case\b|"
    r"auto\b|const\b|static\b|using\b|typedef\b|delete\b|throw\b|"
    r"EXPECT_|ASSERT_|\(void\)|#)"
)


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literal bodies, preserving length
    and newlines so offsets keep mapping to the original line numbers."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            chunk = text[i : j + 2]
            out.append("".join(ch if ch == "\n" else " " for ch in chunk))
            i = j + 2
        elif c == '"' or c == "'":
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote or text[j] == "\n":
                    break
                j += 1
            chunk = text[i : min(j + 1, n)]
            out.append(quote + "".join(ch if ch == "\n" else " " for ch in chunk[1:-1]) + (chunk[-1] if len(chunk) > 1 else ""))
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


class Finding:
    __slots__ = ("path", "line", "check", "message")

    def __init__(self, path: str, line: int, check: str, message: str):
        self.path = path
        self.line = line
        self.check = check
        self.message = message

    def render(self, root: str) -> str:
        rel = os.path.relpath(self.path, root)
        return f"{rel}:{self.line}: [{self.check}] {self.message}"


class SourceFile:
    def __init__(self, path: str):
        self.path = path
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            self.text = f.read()
        self.raw_lines = self.text.split("\n")
        self.code = strip_comments_and_strings(self.text)
        self.code_lines = self.code.split("\n")
        self.allow: Dict[int, Set[str]] = {}
        self.allow_file: Set[str] = set()
        self._collect_allowances()

    def _collect_allowances(self) -> None:
        for idx, raw in enumerate(self.raw_lines, start=1):
            m = ALLOW_FILE_RE.search(raw)
            if m:
                self.allow_file.update(p.strip() for p in m.group(1).split(","))
            m = ALLOW_RE.search(raw)
            if not m:
                continue
            checks = {p.strip() for p in m.group(1).split(",")}
            self.allow.setdefault(idx, set()).update(checks)
            # A comment-only annotation line covers the next line.
            if self.code_lines[idx - 1].strip() == "":
                self.allow.setdefault(idx + 1, set()).update(checks)

    def allowed(self, line: int, check: str) -> bool:
        if check in self.allow_file:
            return True
        return check in self.allow.get(line, set())

    def line_of_offset(self, offset: int) -> int:
        return self.code.count("\n", 0, offset) + 1


# --------------------------------------------------------------------------
# Declaration harvesting (cross-file): names of variables declared with an
# unordered container type, and names of functions returning Result<T>.


def _identifier_after_template(code: str, start: int) -> Tuple[str, int]:
    """Given `start` at the `<` of `unordered_map<`, skip the balanced
    template argument list and return (identifier, offset) for the variable
    name that follows, or ("", start) when none does."""
    depth = 0
    i = start
    n = len(code)
    while i < n:
        c = code[i]
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
            if depth == 0:
                i += 1
                break
        elif c in ";{}" and depth == 0:
            return "", start
        i += 1
    m = re.match(r"\s*(?:&|\*|const\b|\s)*\s*([A-Za-z_]\w*)\s*(?:[;={,)(]|\[)", code[i : i + 160])
    if not m:
        return "", i
    name = m.group(1)
    if name in ("final", "override", "const", "noexcept"):
        return "", i
    return name, i + m.start(1)


def harvest_unordered_names(files: List[SourceFile]) -> Set[str]:
    names: Set[str] = set()
    for sf in files:
        for m in UNORDERED_DECL_RE.finditer(sf.code):
            name, _ = _identifier_after_template(sf.code, m.end() - 1)
            if name:
                names.add(name)
    return names


NON_RESULT_FN_RE = re.compile(
    r"\b(?:void|bool|int|auto|std::\w+|[A-Z]\w*)\s+(?:[A-Za-z_]\w*::)*([A-Za-z_]\w*)\s*\("
)


def harvest_result_functions(files: List[SourceFile]) -> Set[str]:
    """Names declared returning Result<T> — minus any name that also has a
    non-Result overload (e.g. ByteWriter::u16(void) vs ByteReader::u16()),
    which would make call-site name matching ambiguous."""
    names: Set[str] = set()
    ambiguous: Set[str] = set()
    for sf in files:
        for m in RESULT_FN_RE.finditer(sf.code):
            name = m.group(1)
            if name not in ("Result", "operator"):
                names.add(name)
        for m in NON_RESULT_FN_RE.finditer(sf.code):
            if "Result" in m.group(0):
                continue
            ambiguous.add(m.group(1))
    return names - ambiguous


# --------------------------------------------------------------------------
# Checks


def check_wallclock(sf: SourceFile) -> List[Finding]:
    findings = []
    for m in WALLCLOCK_RE.finditer(sf.code):
        line = sf.line_of_offset(m.start())
        token = m.group(0).strip().rstrip("(").strip()
        findings.append(
            Finding(
                sf.path,
                line,
                "wallclock",
                f"wall-clock/ambient-randomness call `{token}` — simulated paths "
                "must use sim::Simulator time or sim::Rng; annotate the rare "
                "legitimate site with `// ape-lint: allow(wallclock)`",
            )
        )
    return findings


def _range_for_sequences(code: str):
    """Yield (offset, sequence_expression) for every range-based for."""
    for m in RANGE_FOR_RE.finditer(code):
        i = m.end() - 1  # at '('
        depth = 0
        j = i
        n = len(code)
        while j < n:
            if code[j] == "(":
                depth += 1
            elif code[j] == ")":
                depth -= 1
                if depth == 0:
                    break
            j += 1
        body = code[i + 1 : j]
        # find a ':' that is not part of '::' at angle-depth 0
        angle = paren = 0
        colon = -1
        k = 0
        while k < len(body):
            c = body[k]
            if c == "<":
                angle += 1
            elif c == ">":
                angle = max(0, angle - 1)
            elif c == "(" or c == "[":
                paren += 1
            elif c == ")" or c == "]":
                paren -= 1
            elif c == ":" and angle == 0 and paren == 0:
                if k + 1 < len(body) and body[k + 1] == ":":
                    k += 2
                    continue
                if k > 0 and body[k - 1] == ":":
                    k += 1
                    continue
                colon = k
                break
            k += 1
        if colon == -1:
            continue
        yield m.start(), body[colon + 1 :].strip()


def check_unordered_iter(sf: SourceFile, unordered_names: Set[str]) -> List[Finding]:
    findings = []
    for offset, seq in _range_for_sequences(sf.code):
        expr = seq.lstrip("*&( ").rstrip(") ")
        last = re.split(r"[.\s]|->", expr)[-1]
        target = None
        if expr in unordered_names:
            target = expr
        elif last in unordered_names:
            target = last
        if target is None:
            continue
        line = sf.line_of_offset(offset)
        findings.append(
            Finding(
                sf.path,
                line,
                "unordered-iter",
                f"range-for over unordered container `{target}` — iteration order "
                "is hash-seed dependent; use common::sorted_keys/sorted_items "
                "(src/common/ordered.hpp) or an ordered container",
            )
        )
    for m in re.finditer(r"\b([A-Za-z_]\w*)\s*\.\s*c?begin\s*\(", sf.code):
        name = m.group(1)
        if name not in unordered_names:
            continue
        line = sf.line_of_offset(m.start())
        findings.append(
            Finding(
                sf.path,
                line,
                "unordered-iter",
                f"iterator walk over unordered container `{name}` — iteration "
                "order is hash-seed dependent; use common::sorted_keys/"
                "sorted_items (src/common/ordered.hpp) or an ordered container",
            )
        )
    return findings


def check_discarded_result(sf: SourceFile, result_fns: Set[str]) -> List[Finding]:
    findings = []
    if not result_fns:
        return findings
    call_re = re.compile(
        r"^\s*(?:[A-Za-z_]\w*(?:\.|->|::))*(" + "|".join(sorted(result_fns)) + r")\s*\("
    )
    for idx, line in enumerate(sf.code_lines, start=1):
        if STATEMENT_PREFIX_SKIP_RE.match(line):
            continue
        m = call_re.match(line)
        if not m:
            continue
        # Anything consuming the value on the same line disqualifies the
        # "bare statement" reading: assignment, comparison, return-by-ref...
        before = line[: m.start(1)]
        if "=" in before or "return" in before:
            continue
        tail = line[m.end(1) :]
        # Walk the balanced call; a bare statement ends with `;` right after.
        depth = 0
        consumed = None
        for ch in tail:
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
                if depth == 0:
                    consumed = tail[tail.index(ch) :]
                    break
        if depth != 0:
            # Multi-line call: conservatively treat statement start as bare.
            pass
        else:
            after = None
            d = 0
            for pos, ch in enumerate(tail):
                if ch == "(":
                    d += 1
                elif ch == ")":
                    d -= 1
                    if d == 0:
                        after = tail[pos + 1 :].strip()
                        break
            if after is not None and after not in (";", ""):
                continue  # .value(), chained call, operator — consumed
        findings.append(
            Finding(
                sf.path,
                idx,
                "discarded-result",
                f"call of Result-returning `{m.group(1)}` discards the result — "
                "check ok()/error() or cast via static_cast<void> with an "
                "explanatory comment",
            )
        )
    return findings


# A span-context variable born from SpanLog::open()/open_root().  Matching
# on the method name alone would false-positive on `file.open(path)` — those
# are statements, not assignments — so require the `name = ....open...(`
# shape and a Trace/Span-ish receiver or declaration nearby.
SPAN_OPEN_RE = re.compile(
    r"\b([A-Za-z_]\w*)\s*=\s*(?:[A-Za-z_]\w*(?:\.|->|::))*open(?:_root)?\s*\("
)


def check_span_leak(sf: SourceFile) -> List[Finding]:
    findings = []
    for m in SPAN_OPEN_RE.finditer(sf.code):
        name = m.group(1)
        # Walk to the end of the opening statement (the `;` at paren depth 0);
        # any later mention of the variable — a close(), a pass to a helper or
        # callback capture, a ScopedTraceContext — counts as a handoff.
        i = m.end() - 1
        depth = 0
        n = len(sf.code)
        while i < n:
            c = sf.code[i]
            if c == "(":
                depth += 1
            elif c == ")":
                depth -= 1
            elif c == ";" and depth == 0:
                break
            i += 1
        if re.search(r"\b" + re.escape(name) + r"\b", sf.code[i:]):
            continue
        line = sf.line_of_offset(m.start())
        findings.append(
            Finding(
                sf.path,
                line,
                "span-leak",
                f"span context `{name}` is never used after open() — it can "
                "never be closed, the span stays open forever, and "
                "validate_spans() rejects the trace; close it or hand it to "
                "the completion path",
            )
        )
    return findings


# A window-capture function: unqualified name starting with capture/scrape.
# The lookbehind rejects `.capture(`/`->capture(` method *calls* so only the
# definition site (optionally `Class::capture(`) is scanned.
CAPTURE_FN_NAME_RE = re.compile(r"(?<![\w.>])((?:capture|scrape)\w*)\s*\(")

# Direct registry reads that bypass the delta cursor.  The lookup-or-create
# accessors are included: resolving an instrument mid-capture is the same
# double-count trap as walking the maps.
REGISTRY_READ_RE = re.compile(
    r"\b[A-Za-z_]\w*(?:\.|->)(counters|gauges|histograms|counter|gauge|histogram)\s*\("
)


def check_cursor_bypass(sf: SourceFile) -> List[Finding]:
    findings = []
    n = len(sf.code)
    for m in CAPTURE_FN_NAME_RE.finditer(sf.code):
        # Balanced parameter list, then optional qualifiers, then `{` — a
        # definition.  Calls / declarations end in `;` and are skipped.
        i = m.end() - 1
        depth = 0
        while i < n:
            c = sf.code[i]
            if c == "(":
                depth += 1
            elif c == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        if i >= n:
            continue
        qual = re.match(r"(?:\s|const\b|noexcept\b|override\b|final\b)*\{", sf.code[i + 1 :])
        if not qual:
            continue
        body_start = i + 1 + qual.end() - 1
        k = body_start
        depth = 0
        while k < n:
            c = sf.code[k]
            if c == "{":
                depth += 1
            elif c == "}":
                depth -= 1
                if depth == 0:
                    break
            k += 1
        body = sf.code[body_start:k]
        for rm in REGISTRY_READ_RE.finditer(body):
            line = sf.line_of_offset(body_start + rm.start())
            findings.append(
                Finding(
                    sf.path,
                    line,
                    "cursor-bypass",
                    f"direct MetricsRegistry read `.{rm.group(1)}(...)` inside "
                    f"window-capture path `{m.group(1)}` — route reads through "
                    "the Timeline DeltaCursor (advance()) so every increment "
                    "lands in exactly one window; annotate a deliberate "
                    "non-windowed read with `// ape-lint: allow(cursor-bypass)`",
                )
            )
    return findings


# Opt-in marker: only files that declare themselves hot-path are scanned.
HOT_PATH_MARKER_RE = re.compile(r"ape-lint:\s*hot-path\b")

# A heap allocation.  Placement new (`new (buf) T(...)` / `::new (p) ...`)
# constructs into existing storage and is exactly the idiom arenas use, so
# `new` immediately followed by `(` is exempt.
HOT_ALLOC_NEW_RE = re.compile(r"\bnew\b(?!\s*\()")
HOT_ALLOC_MAKE_RE = re.compile(r"\bmake_(?:unique|shared)\s*<")

# A by-name instrument lookup: the string literal is the tell — a handle or
# a pre-resolved reference has no business passing a name on a hot path.
# (Literal bodies are blanked by strip_comments_and_strings but the quote
# characters survive, so `counter("` still matches.)
HOT_METRIC_BY_NAME_RE = re.compile(r"(?:\.|->)(counter|gauge|histogram|count)\s*\(\s*\"")


def check_hot_alloc(sf: SourceFile) -> List[Finding]:
    findings = []
    if not HOT_PATH_MARKER_RE.search(sf.text):
        return findings
    for m in HOT_ALLOC_NEW_RE.finditer(sf.code):
        line = sf.line_of_offset(m.start())
        # `#include <new>` and friends are not allocations.
        if sf.code_lines[line - 1].lstrip().startswith("#"):
            continue
        findings.append(
            Finding(
                sf.path,
                line,
                "hot-alloc",
                "heap allocation in a hot-path file — recycle through an arena "
                "(sim::Simulator slots, net::Network in-flight datagrams) or "
                "keep state inline in sim::SmallFn; annotate a deliberate "
                "cold-path allocation with `// ape-lint: allow(hot-alloc)`",
            )
        )
    for m in HOT_ALLOC_MAKE_RE.finditer(sf.code):
        line = sf.line_of_offset(m.start())
        findings.append(
            Finding(
                sf.path,
                line,
                "hot-alloc",
                "make_unique/make_shared in a hot-path file — recycle through "
                "an arena or keep state inline; annotate a deliberate cold-path "
                "allocation with `// ape-lint: allow(hot-alloc)`",
            )
        )
    for m in HOT_METRIC_BY_NAME_RE.finditer(sf.code):
        line = sf.line_of_offset(m.start())
        findings.append(
            Finding(
                sf.path,
                line,
                "hot-alloc",
                f"by-name metric lookup `.{m.group(1)}(\"...\")` in a hot-path "
                "file — resolve once into an obs::CounterHandle/HistogramHandle "
                "at construction; annotate a deliberate snapshot-time lookup "
                "with `// ape-lint: allow(hot-alloc)`",
            )
        )
    return findings


def check_raw_seconds(sf: SourceFile) -> List[Finding]:
    findings = []
    for m in RAW_SECONDS_RE.finditer(sf.code):
        line = sf.line_of_offset(m.start())
        findings.append(
            Finding(
                sf.path,
                line,
                "raw-seconds",
                "raw `double` seconds variable — prefer sim::Duration/sim::Time "
                "(src/sim/time.hpp); annotate deliberate plain-unit math with "
                "`// ape-lint: allow(raw-seconds)`",
            )
        )
    return findings


# --------------------------------------------------------------------------


def collect_files(paths: List[str]) -> List[str]:
    out = []
    for p in paths:
        if os.path.isfile(p):
            if p.endswith(SOURCE_EXTENSIONS):
                out.append(os.path.abspath(p))
            continue
        for dirpath, dirnames, filenames in os.walk(p):
            dirnames[:] = sorted(d for d in dirnames if d not in ("build", ".git"))
            for fn in sorted(filenames):
                if fn.endswith(SOURCE_EXTENSIONS):
                    out.append(os.path.abspath(os.path.join(dirpath, fn)))
    return sorted(set(out))


def run_checks(
    files: List[SourceFile], unordered_names: Set[str], result_fns: Set[str]
) -> List[Finding]:
    findings: List[Finding] = []
    for sf in files:
        raw: List[Finding] = []
        raw += check_wallclock(sf)
        raw += check_unordered_iter(sf, unordered_names)
        raw += check_discarded_result(sf, result_fns)
        raw += check_raw_seconds(sf)
        raw += check_span_leak(sf)
        raw += check_cursor_bypass(sf)
        raw += check_hot_alloc(sf)
        seen = set()
        for f in raw:
            if sf.allowed(f.line, f.check):
                continue
            key = (f.line, f.check)
            if key in seen:
                continue
            seen.add(key)
            findings.append(f)
    findings.sort(key=lambda f: (f.path, f.line, f.check))
    return findings


def run_fixture_mode(fixture_dir: str, root: str) -> int:
    paths = collect_files([fixture_dir])
    if not paths:
        print(f"ape-lint: no fixture files under {fixture_dir}", file=sys.stderr)
        return 2
    files = [SourceFile(p) for p in paths]
    # Fixtures are a closed world: harvest declarations from fixtures only,
    # plus the real tree's Result functions are irrelevant here.
    unordered_names = harvest_unordered_names(files)
    result_fns = harvest_result_functions(files)
    failures = 0
    for sf in files:
        expected: Set[Tuple[int, str]] = set()
        for idx, rawline in enumerate(sf.raw_lines, start=1):
            m = EXPECT_RE.search(rawline)
            if m:
                for check in (p.strip() for p in m.group(1).split(",")):
                    expected.add((idx, check))
        actual = {
            (f.line, f.check)
            for f in run_checks([sf], unordered_names, result_fns)
        }
        for line, check in sorted(expected - actual):
            print(
                f"FIXTURE FAIL {os.path.relpath(sf.path, root)}:{line}: "
                f"expected [{check}] did not fire"
            )
            failures += 1
        for line, check in sorted(actual - expected):
            print(
                f"FIXTURE FAIL {os.path.relpath(sf.path, root)}:{line}: "
                f"unexpected [{check}] fired"
            )
            failures += 1
    total = sum(
        1 for sf in files for _ in EXPECT_RE.finditer("\n".join(sf.raw_lines))
    )
    if failures:
        print(f"ape-lint fixtures: {failures} mismatch(es)")
        return 1
    print(f"ape-lint fixtures: OK ({len(files)} files, {total} expectation lines)")
    return 0


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(prog="ape-lint", description=__doc__.split("\n")[0])
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument("--root", default=os.getcwd(), help="repo root for display paths")
    parser.add_argument(
        "--fixtures", metavar="DIR", help="run in fixture self-test mode over DIR"
    )
    parser.add_argument(
        "--check",
        action="append",
        choices=CHECKS,
        help="run only the named check(s); default: all",
    )
    args = parser.parse_args(argv)
    root = os.path.abspath(args.root)

    if args.fixtures:
        return run_fixture_mode(args.fixtures, root)

    if not args.paths:
        parser.error("no paths given (and --fixtures not set)")

    paths = collect_files([os.path.join(root, p) if not os.path.isabs(p) else p for p in args.paths])
    if not paths:
        print("ape-lint: no source files found", file=sys.stderr)
        return 2
    files = [SourceFile(p) for p in paths]
    unordered_names = harvest_unordered_names(files)
    result_fns = harvest_result_functions(files)
    findings = run_checks(files, unordered_names, result_fns)
    if args.check:
        findings = [f for f in findings if f.check in args.check]
    for f in findings:
        print(f.render(root))
    if findings:
        print(f"ape-lint: {len(findings)} finding(s) in {len(files)} files")
        return 1
    print(f"ape-lint: clean ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

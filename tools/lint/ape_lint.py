#!/usr/bin/env python3
"""ape-lint: repo-specific static analysis for the APE-CACHE tree.

The observability layer promises that two identically seeded runs export
byte-identical `ape.obs.v1` snapshots, and the roadmap's parallel-shard
direction requires that AP-owned state is never touched from another shard.
Those promises rest on invariants no compiler enforces.  ape-lint enforces
them with a real (if deliberately small) analysis core — a C++ tokenizer, a
brace-matched scope tracker with a per-file symbol table, and a repo-wide
include graph — no libclang, no network, no third-party packages.  See
DESIGN.md §5i for the architecture and tools/lint/lint_config.json for the
committed analysis contract (layer map, shard owners, callback sinks).

Run `ape_lint.py --list-checks` for the check registry; the per-check
rationale lives in DESIGN.md §5i.

Allowlisting
------------
A violation is suppressed by an annotation on the same line, or on a
comment-only line directly above it:

    const auto t0 = std::chrono::steady_clock::now();  // ape-lint: allow(wallclock)

    // ape-lint: allow(unordered-iter) -- snapshot is sorted two lines down
    for (const auto& [k, v] : unordered_thing) ...

A whole file opts out of one check with `// ape-lint: allow-file(<check>)`,
and opts into the hot-alloc check with `// ape-lint: hot-path`.

Fixture mode
------------
`--fixtures DIR` runs every fixture file through the checks and compares the
findings against `// expect-lint: <check>` markers; any missing or unexpected
finding fails the run.  This is what the `lint_fixtures` ctest entry drives.

Caching
-------
`--cache FILE` keeps a per-file content-hash cache (harvests keyed on the
file sha, findings keyed on sha + cross-file digest); warm full-tree runs
re-parse nothing.  `--time-budget SECONDS` fails the run when wall time
exceeds the budget — CI uses it to keep the warm path honest.

Exit codes: 0 clean, 1 findings (or fixture mismatch / budget blown), 2 usage
error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from apelint import ENGINE_VERSION  # noqa: E402
from apelint.cache import LintCache  # noqa: E402
from apelint.checks import CHECKS  # noqa: E402
from apelint.engine import load_config, run_fixture_mode, run_lint  # noqa: E402


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(prog="ape-lint",
                                     description=__doc__.split("\n")[0])
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument("--root", default=os.getcwd(),
                        help="repo root for display paths and module mapping")
    parser.add_argument("--fixtures", metavar="DIR",
                        help="run in fixture self-test mode over DIR")
    parser.add_argument("--check", action="append", choices=sorted(CHECKS),
                        help="run only the named check(s); default: all")
    parser.add_argument("--config", metavar="FILE",
                        help="analysis contract (default: tools/lint/lint_config.json)")
    parser.add_argument("--json", action="store_true", dest="json_out",
                        help="emit findings as stable JSON on stdout (for CI artifacts)")
    parser.add_argument("--list-checks", action="store_true",
                        help="print the check registry and exit")
    parser.add_argument("--cache", metavar="FILE",
                        help="per-file content-hash cache (created on first run)")
    parser.add_argument("--time-budget", type=float, metavar="SECONDS",
                        help="fail when the run exceeds this wall time")
    args = parser.parse_args(argv)
    root = os.path.abspath(args.root)

    if args.list_checks:
        for name in sorted(CHECKS):
            print(f"{name:18} {CHECKS[name]}")
        return 0

    config = load_config(args.config)

    if args.fixtures:
        return run_fixture_mode(args.fixtures, root, config)

    if not args.paths:
        parser.error("no paths given (and --fixtures not set)")

    started = time.monotonic()
    cache = LintCache(args.cache) if args.cache else None
    paths = [p if os.path.isabs(p) else os.path.join(root, p) for p in args.paths]
    run = run_lint(root, paths, config, cache=cache)
    findings = run.findings
    if args.check:
        findings = [f for f in findings if f.check in args.check]
    elapsed = time.monotonic() - started

    if args.json_out:
        print(json.dumps({
            "engine": ENGINE_VERSION,
            "files": len(run.files),
            "parsed": run.parsed,
            "cache": {"harvest_hits": run.harvest_hits,
                      "finding_hits": run.finding_hits},
            "elapsed_s": round(elapsed, 3),
            "findings": [{"path": f.path, "line": f.line, "check": f.check,
                          "message": f.message} for f in findings],
        }, indent=2, sort_keys=True))
    else:
        for f in findings:
            print(f"{f.path}:{f.line}: [{f.check}] {f.message}")

    status = 0
    if findings:
        if not args.json_out:
            print(f"ape-lint: {len(findings)} finding(s) in {len(run.files)} files")
        status = 1
    elif not args.json_out:
        print(f"ape-lint: clean ({len(run.files)} files, "
              f"{run.parsed} parsed, {elapsed:.2f}s)")
    if args.time_budget is not None and elapsed > args.time_budget:
        print(f"ape-lint: wall time {elapsed:.2f}s exceeds budget "
              f"{args.time_budget:.2f}s", file=sys.stderr)
        status = max(status, 1)
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

"""Two-level per-file content-hash cache.

Level 1 keys the *harvest* (includes, unordered names, Result functions,
shard field owners, allow annotations) on the file's own sha256 — a warm run
never re-tokenizes an unchanged file.

Level 2 keys the *findings* on (file sha, cross-file digest): per-file checks
consume merged repo-wide context (the unordered-name set, the Result-function
set, the shard field->owner map, the check configuration), so editing one
file can invalidate findings everywhere — but only when the edit changes the
harvested context, which the digest captures exactly.  Graph checks are
recomputed from harvests on every run; they are two orders of magnitude
cheaper than parsing.

The cache file is JSON, written atomically, versioned with ENGINE_VERSION:
a lint-engine upgrade invalidates everything without needing a manual wipe.
Every failure mode (missing file, corrupt JSON, wrong version, read-only
directory) degrades to a cold run, never to wrong results.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import List, Optional

from . import ENGINE_VERSION


class LintCache:
    def __init__(self, path: Optional[str]):
        self.path = path
        self.files: dict = {}
        self.harvest_hits = 0
        self.finding_hits = 0
        self.dirty = False
        if path is not None and os.path.isfile(path):
            try:
                with open(path, "r", encoding="utf-8") as f:
                    data = json.load(f)
                if isinstance(data, dict) and data.get("version") == ENGINE_VERSION \
                        and isinstance(data.get("files"), dict):
                    self.files = data["files"]
            except (OSError, ValueError):
                self.files = {}

    def harvest_for(self, rel: str, sha: str) -> Optional[dict]:
        entry = self.files.get(rel)
        if entry is not None and entry.get("sha") == sha \
                and isinstance(entry.get("harvest"), dict):
            self.harvest_hits += 1
            return entry["harvest"]
        return None

    def findings_for(self, rel: str, sha: str, digest: str) -> Optional[List[list]]:
        entry = self.files.get(rel)
        if entry is not None and entry.get("sha") == sha \
                and entry.get("digest") == digest \
                and isinstance(entry.get("findings"), list):
            self.finding_hits += 1
            return entry["findings"]
        return None

    def store(self, rel: str, sha: str, harvest: dict, digest: str,
              findings: List[list]) -> None:
        self.files[rel] = {"sha": sha, "harvest": harvest,
                           "digest": digest, "findings": findings}
        self.dirty = True

    def prune(self, live_rels) -> None:
        dead = [rel for rel in self.files if rel not in live_rels]
        for rel in dead:
            del self.files[rel]
            self.dirty = True

    def save(self) -> None:
        if self.path is None or not self.dirty:
            return
        payload = {"version": ENGINE_VERSION, "files": self.files}
        try:
            d = os.path.dirname(self.path) or "."
            fd, tmp = tempfile.mkstemp(prefix=".ape_lint_cache.", dir=d)
            with os.fdopen(fd, "w", encoding="utf-8") as f:
                json.dump(payload, f, separators=(",", ":"), sort_keys=True)
            os.replace(tmp, self.path)
        except OSError:
            pass  # read-only tree: stay a cold-run tool

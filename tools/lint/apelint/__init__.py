"""apelint: the symbol-aware analysis core behind ape-lint (DESIGN.md §5i).

Layered as data flows:

    tokens.py   C++ tokenizer (comment/string/raw-string aware)
    source.py   SourceFile: tokens + allow/expect annotations + line mapping
    symbols.py  brace-matched scope tracker + per-file symbol table
    graph.py    repo-wide include graph, layer map, cycle detection
    checks.py   the checks, written against tokens/symbols/graph
    cache.py    per-file content-hash result cache
    engine.py   orchestration: harvest, cross-file digest, fixtures, JSON

Everything is dependency-free pure Python; identifier-based heuristics that
would be unsound for arbitrary C++ are fine here because the APE-CACHE tree
is the closed world they run against.
"""

# Bump whenever tokenization, symbol resolution, or any check changes
# behaviour: the result cache keys on it, so stale findings can never
# survive an engine upgrade.
ENGINE_VERSION = "2.0.0"

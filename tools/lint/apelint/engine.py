"""Orchestration: file collection, cross-file context, cache, fixture mode.

A run is three passes:

  1. harvest  — per file, cached on the file's sha: tokenize, build the
     symbol table, extract what other files' checks need.
  2. merge    — fold harvests into one CrossContext and hash it into the
     cross-file digest.
  3. check    — per file, cached on (sha, digest): the ten checks; plus the
     graph checks (layer map, include cycles), recomputed from harvests.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
from typing import Dict, List, Optional, Set, Tuple

from . import ENGINE_VERSION
from .cache import LintCache
from .checks import CrossContext, harvest, run_per_file_checks
from .graph import IncludeGraph, LayerMap
from .source import Finding, SourceFile
from .symbols import SymbolTable

SOURCE_EXTENSIONS = (".cpp", ".hpp", ".h", ".cc", ".cxx")


def default_config_path() -> str:
    return os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                        "lint_config.json")


def load_config(path: Optional[str] = None) -> dict:
    with open(path or default_config_path(), "r", encoding="utf-8") as f:
        return json.load(f)


def collect_files(paths: List[str]) -> List[str]:
    out = []
    for p in paths:
        if os.path.isfile(p):
            if p.endswith(SOURCE_EXTENSIONS):
                out.append(os.path.abspath(p))
            continue
        for dirpath, dirnames, filenames in os.walk(p):
            dirnames[:] = sorted(d for d in dirnames if d not in ("build", ".git"))
            for fn in sorted(filenames):
                if fn.endswith(SOURCE_EXTENSIONS):
                    out.append(os.path.abspath(os.path.join(dirpath, fn)))
    return sorted(set(out))


def _module_of(abs_path: str, src_root: str) -> Optional[str]:
    try:
        rel = os.path.relpath(abs_path, src_root)
    except ValueError:
        return None
    if rel.startswith(".."):
        return None
    parts = rel.replace(os.sep, "/").split("/")
    return parts[0] if len(parts) > 1 else None


def _cross_digest(cross: CrossContext, config: dict) -> str:
    payload = {
        "engine": ENGINE_VERSION,
        "config": config,
        "unordered": sorted(cross.unordered_names),
        "result_fns": sorted(cross.result_fns),
        "field_owners": sorted(cross.field_owners.items()),
        "ambiguous": sorted(cross.ambiguous_fields),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _build_cross(config: dict, harvests: Dict[str, dict]) -> CrossContext:
    cross = CrossContext(config)
    result_union: Set[str] = set()
    other_union: Set[str] = set()
    for h in harvests.values():
        cross.unordered_names.update(h.get("unordered_names", []))
        result_union.update(h.get("result_fns", []))
        other_union.update(h.get("other_fns", []))
        for name, owner in h.get("field_owners", {}).items():
            cross.add_field_owner(name, owner)
    cross.result_fns = result_union - other_union
    return cross


def _harvest_allows(h: dict, line: int, check: str) -> bool:
    if check in h.get("allow_file", []):
        return True
    return check in h.get("allow", {}).get(str(line), [])


class LintRun:
    """Result bundle: findings plus the stats the CLI and CI report."""

    def __init__(self) -> None:
        self.findings: List[Finding] = []
        self.files: List[str] = []  # rel-to-root display paths
        self.parsed = 0
        self.harvest_hits = 0
        self.finding_hits = 0


def run_lint(root: str, paths: List[str], config: dict,
             cache: Optional[LintCache] = None,
             src_root: Optional[str] = None) -> LintRun:
    run = LintRun()
    abs_paths = collect_files(paths)
    if src_root is None:
        candidate = os.path.join(root, "src")
        src_root = candidate if os.path.isdir(candidate) else root

    harvests: Dict[str, dict] = {}   # rel-to-root -> harvest
    parsed: Dict[str, Tuple[SourceFile, SymbolTable]] = {}
    shas: Dict[str, str] = {}
    for ap in abs_paths:
        rel = os.path.relpath(ap, root).replace(os.sep, "/")
        run.files.append(rel)
        with open(ap, "r", encoding="utf-8", errors="replace") as f:
            text = f.read()
        sha = hashlib.sha256(text.encode("utf-8", "replace")).hexdigest()
        shas[rel] = sha
        h = cache.harvest_for(rel, sha) if cache is not None else None
        if h is None:
            sf = SourceFile(ap, text)
            st = SymbolTable(sf.tokens)
            parsed[rel] = (sf, st)
            run.parsed += 1
            h = harvest(sf, st, _module_of(ap, src_root))
        harvests[rel] = h

    cross = _build_cross(config, harvests)
    digest = _cross_digest(cross, config)

    for rel in run.files:
        ap = os.path.join(root, rel)
        items = cache.findings_for(rel, shas[rel], digest) if cache is not None else None
        if items is None:
            if rel not in parsed:
                sf = SourceFile(ap)
                st = SymbolTable(sf.tokens)
                parsed[rel] = (sf, st)
                run.parsed += 1
            sf, st = parsed[rel]
            found = run_per_file_checks(sf, st, cross,
                                        _module_of(ap, src_root))
            items = [[f.line, f.check, f.message] for f in found]
        if cache is not None:
            cache.store(rel, shas[rel], harvests[rel], digest, items)
        for line, check, message in items:
            run.findings.append(Finding(rel, line, check, message))

    # Graph checks: always from harvests, always over the whole scanned set.
    layer_map = LayerMap(config.get("layers", []))
    graph = IncludeGraph(src_root, layer_map)
    rel_src_to_rel: Dict[str, str] = {}
    for rel in run.files:
        ap = os.path.join(root, rel)
        rel_src = os.path.relpath(ap, src_root).replace(os.sep, "/")
        if rel_src.startswith(".."):
            continue
        rel_src_to_rel[rel_src] = rel
        graph.add_file(rel_src, [(p, line) for p, line in harvests[rel]["includes"]])
    for rel_src, line, check, message in graph.check():
        rel = rel_src_to_rel.get(rel_src, rel_src)
        if _harvest_allows(harvests.get(rel, {}), line, check):
            continue
        run.findings.append(Finding(rel, line, check, message))

    if cache is not None:
        run.harvest_hits = cache.harvest_hits
        run.finding_hits = cache.finding_hits
        cache.prune(set(run.files))
        cache.save()
    run.findings.sort(key=lambda f: (f.path, f.line, f.check))
    return run


# ------------------------------------------------------------- fixture mode


def run_fixture_mode(fixture_dir: str, root: str, config: dict) -> int:
    abs_paths = collect_files([fixture_dir])
    if not abs_paths:
        print(f"ape-lint: no fixture files under {fixture_dir}", file=sys.stderr)
        return 2

    parsed: List[Tuple[str, SourceFile, SymbolTable]] = []
    harvests: Dict[str, dict] = {}
    for ap in abs_paths:
        sf = SourceFile(ap)
        st = SymbolTable(sf.tokens)
        parsed.append((ap, sf, st))
        harvests[ap] = harvest(sf, st, None)
    cross = _build_cross(config, harvests)

    # Graph findings come from any subtree that commits its own layer map —
    # the include-graph fixture ships one so layer violations and cycles can
    # be expressed without touching the real src/ map.
    graph_findings: Dict[str, List[Tuple[int, str]]] = {}
    for dirpath, dirnames, filenames in os.walk(fixture_dir):
        dirnames[:] = sorted(dirnames)
        if "layer_map.json" not in filenames:
            continue
        with open(os.path.join(dirpath, "layer_map.json"), "r", encoding="utf-8") as f:
            sub_layers = json.load(f).get("layers", [])
        sub = IncludeGraph(dirpath, LayerMap(sub_layers))
        members = {}
        for ap, sf, _st in parsed:
            rel_sub = os.path.relpath(ap, dirpath).replace(os.sep, "/")
            if rel_sub.startswith(".."):
                continue
            members[rel_sub] = (ap, sf)
            from .graph import quoted_includes
            sub.add_file(rel_sub, quoted_includes(sf))
        for rel_sub, line, check, _message in sub.check():
            ap, sf = members[rel_sub]
            if sf.allowed(line, check):
                continue
            graph_findings.setdefault(ap, []).append((line, check))

    failures = 0
    expectation_lines = 0
    for ap, sf, st in parsed:
        expected = sf.expectations()
        expectation_lines += len(expected)
        found = run_per_file_checks(sf, st, cross, None)
        actual = {(f.line, f.check) for f in found}
        actual.update(graph_findings.get(ap, []))
        for line, check in sorted(expected - actual):
            print(f"FIXTURE FAIL {os.path.relpath(ap, root)}:{line}: "
                  f"expected [{check}] did not fire")
            failures += 1
        for line, check in sorted(actual - expected):
            print(f"FIXTURE FAIL {os.path.relpath(ap, root)}:{line}: "
                  f"unexpected [{check}] fired")
            failures += 1
    if failures:
        print(f"ape-lint fixtures: {failures} mismatch(es)")
        return 1
    print(f"ape-lint fixtures: OK ({len(parsed)} files, "
          f"{expectation_lines} expectation lines)")
    return 0

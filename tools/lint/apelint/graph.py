"""Repo-wide include graph: layer enforcement and cycle detection.

The committed layer map (lint_config.json, "layers") is an ordered list of
layer groups, lowest first.  A file in module M (its first path component
under the source root) may include:

  * its own module, and
  * any module in a strictly lower layer.

Includes within the same layer group but across modules are illegal — the
groups exist to say "these are peers, not dependencies".  Modules missing
from the map are unconstrained (tools, fixtures), but still participate in
cycle detection.

Cycles are reported over the *file*-level graph: `#pragma once` makes a
cyclic include compile-cleanly into silent truncation, which is exactly why
the linter, not the compiler, owns this invariant.
"""

from __future__ import annotations

import os
import re
from typing import Dict, List, Optional, Sequence, Tuple

from .source import SourceFile


INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"\n]+)"')


def quoted_includes(sf: SourceFile) -> List[Tuple[str, int]]:
    """(path, line) for every `#include "..."` in the file.

    Reads the raw text, not the token stream: the tokenizer blanks string
    bodies (so checks never trip over string *contents*), which would erase
    the include path itself."""
    out: List[Tuple[str, int]] = []
    for lineno, line in enumerate(sf.text.splitlines(), 1):
        m = INCLUDE_RE.match(line)
        if m:
            out.append((m.group(1), lineno))
    return out


class LayerMap:
    def __init__(self, layers: Sequence[Sequence[str]]):
        self.layers = [list(group) for group in layers]
        self.rank: Dict[str, int] = {}
        for rank, group in enumerate(self.layers):
            for module in group:
                self.rank[module] = rank

    def allowed(self, from_module: str, to_module: str) -> bool:
        if from_module == to_module:
            return True
        fr = self.rank.get(from_module)
        to = self.rank.get(to_module)
        if fr is None or to is None:
            return True  # unmapped modules are unconstrained
        return to < fr


class IncludeGraph:
    """Built from harvested per-file include lists — cheap enough to rebuild
    on every run, cached or not."""

    def __init__(self, root: str, layer_map: Optional[LayerMap]):
        self.root = root  # the source root module paths are relative to
        self.layer_map = layer_map
        # rel path -> [(include rel path or None if external, raw, line)]
        self.edges: Dict[str, List[Tuple[Optional[str], str, int]]] = {}

    @staticmethod
    def module_of(rel: str) -> Optional[str]:
        parts = rel.replace(os.sep, "/").split("/")
        return parts[0] if len(parts) > 1 else None

    def add_file(self, rel: str, includes: List[Tuple[str, int]]) -> None:
        rel = rel.replace(os.sep, "/")
        resolved: List[Tuple[Optional[str], str, int]] = []
        for inc, line in includes:
            inc_norm = inc.replace(os.sep, "/")
            target = inc_norm if os.path.isfile(os.path.join(self.root, inc_norm)) else None
            resolved.append((target, inc_norm, line))
        self.edges[rel] = resolved

    def check(self) -> List[Tuple[str, int, str, str]]:
        """Returns (rel_path, line, check, message) tuples: layer violations
        first, then include cycles, all deterministically ordered."""
        out: List[Tuple[str, int, str, str]] = []
        if self.layer_map is not None:
            for rel in sorted(self.edges):
                mod = self.module_of(rel)
                if mod is None:
                    continue
                for target, raw, line in self.edges[rel]:
                    if target is None:
                        continue
                    to_mod = self.module_of(target)
                    if to_mod is None or to_mod == mod:
                        continue
                    if not self.layer_map.allowed(mod, to_mod):
                        fr_rank = self.layer_map.rank.get(mod)
                        to_rank = self.layer_map.rank.get(to_mod)
                        relation = "same-layer peer" if fr_rank == to_rank else "higher layer"
                        out.append((rel, line, "layer-graph",
                                    f"`{mod}` must not include `{to_mod}` "
                                    f"({relation}; committed layer map says "
                                    f"`{to_mod}` is not below `{mod}`) — "
                                    f"#include \"{raw}\" breaks the layering "
                                    "parallel shards depend on"))
        out.extend(self._cycles())
        return out

    def _cycles(self) -> List[Tuple[str, int, str, str]]:
        # Iterative DFS with an explicit path; reports each cycle once,
        # anchored at its lexicographically smallest member.
        graph: Dict[str, List[str]] = {
            rel: sorted({t for t, _, _ in edges if t is not None and t in self.edges})
            for rel, edges in self.edges.items()
        }
        seen_cycles = set()
        findings: List[Tuple[str, int, str, str]] = []
        color: Dict[str, int] = {}  # 0 unvisited / 1 on stack / 2 done

        def line_of_edge(fr: str, to: str) -> int:
            for target, _, line in self.edges.get(fr, []):
                if target == to:
                    return line
            return 1

        for start in sorted(graph):
            if color.get(start):
                continue
            stack: List[Tuple[str, int]] = [(start, 0)]
            path: List[str] = []
            color[start] = 1
            path.append(start)
            while stack:
                node, idx = stack[-1]
                succs = graph.get(node, [])
                if idx < len(succs):
                    stack[-1] = (node, idx + 1)
                    nxt = succs[idx]
                    c = color.get(nxt, 0)
                    if c == 0:
                        color[nxt] = 1
                        path.append(nxt)
                        stack.append((nxt, 0))
                    elif c == 1:
                        cycle = path[path.index(nxt):] + [nxt]
                        anchor = min(cycle[:-1])
                        k = cycle.index(anchor)
                        canon = tuple(cycle[k:-1] + cycle[:k])
                        if canon not in seen_cycles:
                            seen_cycles.add(canon)
                            chain = " -> ".join(list(canon) + [anchor])
                            nxt_in_cycle = canon[1] if len(canon) > 1 else anchor
                            findings.append((anchor, line_of_edge(anchor, nxt_in_cycle),
                                             "layer-graph",
                                             f"include cycle: {chain} — #pragma once "
                                             "turns this into silent truncation; break "
                                             "the cycle with a forward declaration or "
                                             "an interface header"))
                else:
                    color[node] = 2
                    stack.pop()
                    path.pop()
        findings.sort()
        return findings

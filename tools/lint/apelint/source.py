"""SourceFile: one parsed translation unit plus its lint annotations.

Annotation grammar (unchanged from the regex engine, so every existing
`// ape-lint: allow(...)` in the tree keeps working):

    // ape-lint: allow(check-a, check-b)     suppress on this line
                                             (or the next line, when the
                                             annotation line has no code)
    // ape-lint: allow-file(check)           suppress for the whole file
    // ape-lint: hot-path                    opt this file into hot-alloc
    // expect-lint: check-a, check-b         fixture expectation marker
"""

from __future__ import annotations

import hashlib
import re
from typing import Dict, List, Set, Tuple

from .tokens import Comment, Token, tokenize

ALLOW_RE = re.compile(r"ape-lint:\s*allow\(([^)]*)\)")
ALLOW_FILE_RE = re.compile(r"ape-lint:\s*allow-file\(([^)]*)\)")
HOT_PATH_RE = re.compile(r"ape-lint:\s*hot-path\b")
EXPECT_RE = re.compile(r"expect-lint:\s*([a-z-]+(?:\s*,\s*[a-z-]+)*)")


class SourceFile:
    def __init__(self, path: str, text: str | None = None):
        self.path = path
        if text is None:
            with open(path, "r", encoding="utf-8", errors="replace") as f:
                text = f.read()
        self.text = text
        self.sha = hashlib.sha256(text.encode("utf-8", "replace")).hexdigest()
        self.tokens: List[Token]
        self.comments: List[Comment]
        self.tokens, self.comments = tokenize(text)
        # Lines holding at least one code token: an annotation comment on a
        # code-free line covers the next line as well.
        self.code_lines: Set[int] = {t.line for t in self.tokens}
        self.allow: Dict[int, Set[str]] = {}
        self.allow_file: Set[str] = set()
        self.hot_path = False
        self._collect_annotations()

    def _collect_annotations(self) -> None:
        for c in self.comments:
            if HOT_PATH_RE.search(c.text):
                self.hot_path = True
            m = ALLOW_FILE_RE.search(c.text)
            if m:
                self.allow_file.update(p.strip() for p in m.group(1).split(","))
            m = ALLOW_RE.search(c.text)
            if not m:
                continue
            checks = {p.strip() for p in m.group(1).split(",")}
            self.allow.setdefault(c.line, set()).update(checks)
            if c.line not in self.code_lines:
                self.allow.setdefault(c.line + 1, set()).update(checks)

    def allowed(self, line: int, check: str) -> bool:
        if check in self.allow_file:
            return True
        return check in self.allow.get(line, set())

    def expectations(self) -> Set[Tuple[int, str]]:
        """Fixture `expect-lint:` markers as (line, check) pairs."""
        out: Set[Tuple[int, str]] = set()
        for c in self.comments:
            # A block comment can span lines; expectations are written as
            # line comments in fixtures, so the start line is the marker line.
            m = EXPECT_RE.search(c.text)
            if m:
                for check in (p.strip() for p in m.group(1).split(",")):
                    out.add((c.line, check))
        return out


class Finding:
    __slots__ = ("path", "line", "check", "message")

    def __init__(self, path: str, line: int, check: str, message: str):
        self.path = path
        self.line = line
        self.check = check
        self.message = message

    def key(self) -> Tuple[str, int, str]:
        return (self.path, self.line, self.check)

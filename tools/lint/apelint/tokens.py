"""C++ tokenizer: the lexical substrate every check reads.

Produces a flat list of Tokens (identifiers, numbers, string/char literals,
punctuation) with line numbers, plus the comment stream on a side channel —
`ape-lint:` annotations and `expect-lint:` fixture markers live in comments,
so the two must stay separated but both retain positions.

String and char literal *bodies* are dropped (only the kind survives), so a
`"steady_clock"` inside a log message can never trip the wallclock check —
the failure mode the old regex pass handled by blanking characters.

Raw strings (`R"delim(...)delim"`, with encoding prefixes) are matched with
a backreference so an embedded `)"` cannot end them early.  Preprocessor
directives are tokenized like ordinary code but carry `pp=True`, letting
checks skip `#include <new>` without re-deriving line structure.
"""

from __future__ import annotations

import re
from typing import List, NamedTuple, Tuple


class Token(NamedTuple):
    kind: str  # "id" | "num" | "str" | "chr" | "punct"
    value: str
    line: int
    pp: bool  # inside a preprocessor directive


class Comment(NamedTuple):
    text: str
    line: int  # line the comment starts on


_TOKEN_RE = re.compile(
    r"""
      (?P<comment>//[^\n]*|/\*(?s:.*?)\*/)
    | (?P<rawstr>(?:u8|u|U|L)?R"(?P<delim>[^()\s\\"]{0,16})\((?s:.*?)\)(?P=delim)")
    | (?P<str>(?:u8|u|U|L)?"(?:[^"\\\n]|\\.)*")
    | (?P<chr>(?:u8|u|U|L)?'(?:[^'\\\n]|\\.)*')
    | (?P<num>\.?[0-9](?:[0-9a-zA-Z_.']|[eEpP][+-])*)
    | (?P<id>[A-Za-z_]\w*)
    | (?P<punct><<=|>>=|\.\.\.|->\*|<=>|::|->|\+\+|--|<<|>>|<=|>=|==|!=|&&|\|\||\+=|-=|\*=|/=|%=|&=|\|=|\^=|\#\#|[{}()\[\];,:?~!%^&*+=|<>./\#-])
    """,
    re.VERBOSE,
)


def tokenize(text: str) -> Tuple[List[Token], List[Comment]]:
    tokens: List[Token] = []
    comments: List[Comment] = []
    line = 1
    pos = 0
    pp_active = False
    pp_line = -1  # line the active directive started on (no continuations here)
    for m in _TOKEN_RE.finditer(text):
        line += text.count("\n", pos, m.start())
        pos = m.start()
        kind = m.lastgroup
        value = m.group()
        if pp_active and line != pp_line:
            pp_active = False
        if kind == "comment":
            comments.append(Comment(value, line))
            continue
        if kind == "delim":  # pragma: no cover - subgroup never wins alone
            continue
        if kind == "punct" and value == "#" and not pp_active:
            # A '#' opening a directive: first code token on its line.
            if not tokens or tokens[-1].line != line:
                pp_active = True
                pp_line = line
        if kind in ("str", "rawstr"):
            tokens.append(Token("str", '""', line, pp_active))
        elif kind == "chr":
            tokens.append(Token("chr", "''", line, pp_active))
        else:
            tokens.append(Token(kind, value, line, pp_active))
    return tokens, comments


def match_forward(tokens: List[Token], i: int, open_v: str, close_v: str) -> int:
    """Index of the token closing the bracket opened at `i`, or len(tokens).

    `tokens[i]` must be `open_v`.  Only exact punct values nest, so `>>`
    inside a template argument list does NOT close two `<` — callers that
    skip template argument lists use skip_angles() instead.
    """
    depth = 0
    n = len(tokens)
    j = i
    while j < n:
        t = tokens[j]
        if t.kind == "punct":
            if t.value == open_v:
                depth += 1
            elif t.value == close_v:
                depth -= 1
                if depth == 0:
                    return j
        j += 1
    return n


def skip_angles(tokens: List[Token], i: int) -> int:
    """Given `tokens[i] == '<'`, return the index just past the matching
    closer, treating `>>` as two closers (C++11 nested templates).  Bails out
    (returns i + 1) when the run hits a token that cannot appear inside a
    template argument list, so a stray less-than comparison never swallows
    the rest of the file."""
    depth = 0
    n = len(tokens)
    j = i
    while j < n:
        t = tokens[j]
        if t.kind == "punct":
            if t.value == "<":
                depth += 1
            elif t.value == ">":
                depth -= 1
                if depth == 0:
                    return j + 1
            elif t.value == ">>":
                depth -= 2
                if depth <= 0:
                    return j + 1
            elif t.value in (";", "{", "}"):
                return i + 1
        j += 1
    return i + 1

"""The checks, written against tokens/symbols instead of regexes.

Each per-file check takes (sf, symtab, cross) where `cross` is the merged
cross-file context (unordered names, Result-returning functions, the
repo-wide shard field->owner map, and the check configuration).  Graph-level
checks (layer-graph) live in graph.py and run from harvested data.

CHECKS is the registry the CLI, fixture mode, and --list-checks all read —
one place, so docs assertions cannot drift from the code.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Set, Tuple

from .source import Finding, SourceFile
from .symbols import Decl, Scope, SymbolTable
from .tokens import match_forward

CHECKS: Dict[str, str] = {
    "wallclock": "wall-clock or ambient randomness on a simulated path",
    "unordered-iter": "iteration over an unordered container (hash-seed order)",
    "discarded-result": "Result<T> return value silently dropped",
    "raw-seconds": "raw double seconds variable instead of sim::Duration",
    "span-leak": "trace span context opened but never closed or handed off",
    "cursor-bypass": "direct MetricsRegistry read inside a window-capture path",
    "hot-alloc": "heap allocation or by-name metric lookup in a hot-path file",
    "shard-ownership": "shard-local state unannotated or mutated cross-shard",
    "layer-graph": "include edge violating the committed layer map, or an include cycle",
    "callback-capture": "arena-slot reference or raw pointer captured into a deferred callback",
}

RAW_SECONDS_SUFFIX = re.compile(r"_(?:s|sec|secs|seconds)$")

CLOCK_IDS = {"system_clock", "steady_clock", "high_resolution_clock"}
ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}
STMT_SKIP_FIRST = {"return", "co_return", "if", "else", "while", "for", "switch",
                   "case", "auto", "const", "static", "using", "typedef", "delete",
                   "throw", "new", "break", "continue", "goto"}
BUILTIN_RETURN_TYPES = {"void", "bool", "int", "auto", "double", "float", "long",
                        "unsigned", "char", "short", "size_t", "string",
                        "uint32_t", "uint64_t", "int32_t", "int64_t"}


class CrossContext:
    """Merged cross-file knowledge + configuration, shared by every check."""

    def __init__(self, config: dict):
        self.config = config
        self.unordered_names: Set[str] = set()
        self.result_fns: Set[str] = set()
        self.field_owners: Dict[str, str] = {}  # name -> owner ('' = shared)
        self.ambiguous_fields: Set[str] = set()
        self.sinks: Set[str] = set(config.get("callback_sinks", []))
        self.arena_types: Set[str] = set(config.get("arena_types", []))
        self.shard_owners: Set[str] = set(config.get("shard_owners", []))
        self.shard_roots: Tuple[str, ...] = tuple(config.get("shard_roots", []))
        self.mutating_methods: Set[str] = set(config.get("mutating_methods", []))
        self.mutating_prefixes: Tuple[str, ...] = tuple(config.get("mutating_prefixes", []))

    def add_field_owner(self, name: str, owner: Optional[str]) -> None:
        if owner is None:
            return
        if name in self.field_owners and self.field_owners[name] != owner:
            self.ambiguous_fields.add(name)
        else:
            self.field_owners[name] = owner

    def owner_of_field(self, name: str) -> Optional[str]:
        if name in self.ambiguous_fields:
            return None
        return self.field_owners.get(name)


# ---------------------------------------------------------------- harvesting


def harvest(sf: SourceFile, symtab: SymbolTable, module: Optional[str]) -> dict:
    """Everything other files' checks may need from this one (JSON-safe)."""
    from .graph import quoted_includes

    unordered = sorted({
        d.name for scope in symtab.scopes for d in scope.decls.values()
        if d.is_unordered
    })
    result_fns = sorted({name for name, _ in symtab.result_functions})
    other_fns = sorted(_nonresult_function_names(sf, symtab))
    field_owners = {}
    for scope in symtab.scopes:
        if scope.kind != "class":
            continue
        for d in scope.decls.values():
            if d.shard_owner is not None:
                field_owners[d.name] = d.shard_owner
    return {
        "module": module,
        "includes": [[p, line] for p, line in quoted_includes(sf)],
        "unordered_names": unordered,
        "result_fns": result_fns,
        "other_fns": other_fns,
        "field_owners": field_owners,
        "allow": {str(k): sorted(v) for k, v in sf.allow.items()},
        "allow_file": sorted(sf.allow_file),
    }


def _nonresult_function_names(sf: SourceFile, symtab: SymbolTable) -> Set[str]:
    """Names declared with a non-Result return type — used to drop ambiguous
    overloads from the discarded-result set, as the regex engine did."""
    out: Set[str] = set()
    tokens = sf.tokens
    result_lines = {line for _, line in symtab.result_functions}
    for i in range(1, len(tokens) - 1):
        t = tokens[i]
        if t.kind != "id" or t.pp:
            continue
        nxt = tokens[i + 1]
        if nxt.kind != "punct" or nxt.value != "(":
            continue
        prev = tokens[i - 1]
        if prev.kind != "id":
            continue
        if t.line in result_lines:
            continue
        if prev.value in BUILTIN_RETURN_TYPES or (prev.value[0].isupper()
                                                  and prev.value != "Result"):
            out.add(t.value)
    return out


# ------------------------------------------------------------------- helpers


def _finding(sf: SourceFile, line: int, check: str, message: str) -> Finding:
    return Finding(sf.path, line, check, message)


def _sink_lambdas(sf: SourceFile, symtab: SymbolTable,
                  cross: CrossContext) -> List[Tuple[Scope, int]]:
    """Lambda scopes passed directly to a deferred-execution sink, paired
    with the sink call's token index."""
    out: List[Tuple[Scope, int]] = []
    tokens = sf.tokens
    lambdas = [s for s in symtab.scopes if s.kind == "lambda" and s.capture_range]
    for i, t in enumerate(tokens):
        if t.kind != "id" or t.value not in cross.sinks:
            continue
        if i + 1 >= len(tokens) or tokens[i + 1].kind != "punct" \
                or tokens[i + 1].value != "(":
            continue
        close = match_forward(tokens, i + 1, "(", ")")
        host = symtab.scope_at(i)
        for lam in lambdas:
            cs = lam.capture_range[0]  # type: ignore[index]
            if i + 1 < cs < close and lam.parent is host:
                out.append((lam, i))
    return out


def _parse_captures(sf: SourceFile, lam: Scope) -> List[List[int]]:
    """Capture list split at top-level commas; each entry is token indices."""
    tokens = sf.tokens
    cs, ce = lam.capture_range  # type: ignore[misc]
    segs: List[List[int]] = []
    cur: List[int] = []
    depth = 0
    for k in range(cs + 1, ce):
        t = tokens[k]
        if t.kind == "punct":
            if t.value in ("(", "[", "{", "<"):
                depth += 1
            elif t.value in (")", "]", "}", ">"):
                depth -= 1
            elif t.value == "," and depth == 0:
                segs.append(cur)
                cur = []
                continue
        cur.append(k)
    if cur:
        segs.append(cur)
    return segs


def _is_arena_decl(decl: Optional[Decl], cross: CrossContext) -> bool:
    return decl is not None and any(t in cross.arena_types for t in decl.type_ids)


# -------------------------------------------------------------------- checks


def check_wallclock(sf: SourceFile, symtab: SymbolTable,
                    cross: CrossContext) -> List[Finding]:
    findings = []
    tokens = sf.tokens
    n = len(tokens)
    for i, t in enumerate(tokens):
        if t.kind != "id" or t.pp:
            continue
        v = t.value
        prev = tokens[i - 1] if i > 0 else None
        nxt = tokens[i + 1] if i + 1 < n else None
        called = nxt is not None and nxt.kind == "punct" and nxt.value == "("
        hit = False
        if v == "random_device" or v in CLOCK_IDS:
            hit = True
        elif v in ("gettimeofday", "clock_gettime", "srand") and called:
            hit = True
        elif v == "rand" and called:
            # `std::rand(` and bare `rand(`; not `x.rand(`, not `int rand(`.
            if prev is None or prev.kind == "punct" and prev.value == "::":
                hit = True
            elif prev.kind == "punct" and prev.value not in (".", "->"):
                hit = True
        elif v in ("time", "clock") and called:
            if prev is not None and prev.kind == "punct" and prev.value == "::":
                qual = tokens[i - 2] if i >= 2 else None
                hit = qual is not None and qual.kind == "id" and qual.value == "std"
            elif prev is None or (prev.kind == "punct"
                                  and prev.value not in (".", "->")):
                # `double time(...)` / `auto time(...)` declarations have an
                # identifier (the return type) directly before the name.
                hit = v == "time"  # bare `clock(` stays legal (POSIX clock() unused)
        if hit:
            findings.append(_finding(
                sf, t.line, "wallclock",
                f"wall-clock/ambient-randomness call `{v}` — simulated paths "
                "must use sim::Simulator time or sim::Rng; annotate the rare "
                "legitimate site with `// ape-lint: allow(wallclock)`"))
    return findings


def _chain_base(sf: SourceFile, idxs: List[int]) -> Optional[str]:
    """Base identifier of a member chain: last id joined by . -> ::, after
    stripping leading * & ( and trailing )."""
    tokens = sf.tokens
    ids: List[str] = []
    expect_id = True
    for k in idxs:
        t = tokens[k]
        if t.kind == "punct" and t.value in ("*", "&", "(", ")"):
            continue
        if expect_id and t.kind == "id":
            ids.append(t.value)
            expect_id = False
        elif not expect_id and t.kind == "punct" and t.value in (".", "->", "::"):
            expect_id = True
        else:
            break
    return ids[-1] if ids else None


def _resolves_unordered(name: str, scope: Scope, symtab: SymbolTable,
                        cross: CrossContext) -> bool:
    decl = symtab.resolve(name, scope)
    if decl is not None:
        if decl.is_unordered:
            return True
        if decl.alias_chain:
            target = symtab.resolve(decl.alias_chain[-1], scope)
            if target is not None and target.is_unordered:
                return True
            if decl.alias_chain[-1] in cross.unordered_names:
                return True
        return False
    return name in cross.unordered_names


def check_unordered_iter(sf: SourceFile, symtab: SymbolTable,
                         cross: CrossContext) -> List[Finding]:
    findings = []
    tokens = sf.tokens
    n = len(tokens)
    for i, t in enumerate(tokens):
        if t.kind != "id" or t.pp:
            continue
        if t.value == "for" and i + 1 < n and tokens[i + 1].kind == "punct" \
                and tokens[i + 1].value == "(":
            close = match_forward(tokens, i + 1, "(", ")")
            colon = None
            depth = 0
            for k in range(i + 2, close):
                tk = tokens[k]
                if tk.kind == "punct":
                    if tk.value in ("(", "[", "{"):
                        depth += 1
                    elif tk.value in (")", "]", "}"):
                        depth -= 1
                    elif tk.value == ":" and depth == 0:
                        colon = k
                        break
            if colon is None:
                continue
            base = _chain_base(sf, list(range(colon + 1, close)))
            if base is None:
                continue
            if _resolves_unordered(base, symtab.scope_at(i), symtab, cross):
                findings.append(_finding(
                    sf, t.line, "unordered-iter",
                    f"range-for over unordered container `{base}` — iteration "
                    "order is hash-seed dependent; use common::sorted_keys/"
                    "sorted_items (src/common/ordered.hpp) or an ordered "
                    "container"))
        elif t.value in ("begin", "cbegin") and i >= 2 and i + 1 < n \
                and tokens[i + 1].kind == "punct" and tokens[i + 1].value == "(" \
                and tokens[i - 1].kind == "punct" and tokens[i - 1].value == "." \
                and tokens[i - 2].kind == "id":
            name = tokens[i - 2].value
            if _resolves_unordered(name, symtab.scope_at(i), symtab, cross):
                findings.append(_finding(
                    sf, tokens[i - 2].line, "unordered-iter",
                    f"iterator walk over unordered container `{name}` — "
                    "iteration order is hash-seed dependent; use common::"
                    "sorted_keys/sorted_items (src/common/ordered.hpp) or an "
                    "ordered container"))
    return findings


def check_discarded_result(sf: SourceFile, symtab: SymbolTable,
                           cross: CrossContext) -> List[Finding]:
    findings: List[Finding] = []
    if not cross.result_fns:
        return findings
    tokens = sf.tokens
    for scope in symtab.scopes:
        if scope.kind not in ("function", "lambda", "block"):
            continue
        for stmt in symtab._direct_statements(scope):
            if not stmt:
                continue
            first = tokens[stmt[0]]
            if first.kind != "id" or first.value in STMT_SKIP_FIRST \
                    or first.value.startswith(("EXPECT_", "ASSERT_")):
                continue
            # Optional receiver chain: id (. | -> | ::) repeated.
            k = 0
            while k + 2 < len(stmt) and tokens[stmt[k]].kind == "id" \
                    and tokens[stmt[k + 1]].kind == "punct" \
                    and tokens[stmt[k + 1]].value in (".", "->", "::"):
                k += 2
            if k >= len(stmt):
                continue
            name_tok = tokens[stmt[k]]
            if name_tok.kind != "id" or name_tok.value not in cross.result_fns:
                continue
            if k + 1 >= len(stmt) or tokens[stmt[k + 1]].value != "(":
                continue
            depth = 0
            close_pos = None
            for pos in range(k + 1, len(stmt)):
                v = tokens[stmt[pos]].value
                if tokens[stmt[pos]].kind == "punct":
                    if v == "(":
                        depth += 1
                    elif v == ")":
                        depth -= 1
                        if depth == 0:
                            close_pos = pos
                            break
            if close_pos is None or close_pos != len(stmt) - 1:
                continue  # something consumes the value
            findings.append(_finding(
                sf, name_tok.line, "discarded-result",
                f"call of Result-returning `{name_tok.value}` discards the "
                "result — check ok()/error() or cast via static_cast<void> "
                "with an explanatory comment"))
    return findings


def check_raw_seconds(sf: SourceFile, symtab: SymbolTable,
                      cross: CrossContext) -> List[Finding]:
    findings = []
    tokens = sf.tokens
    n = len(tokens)
    for i, t in enumerate(tokens):
        if t.kind != "id" or t.value != "double" or t.pp:
            continue
        if i + 2 >= n:
            continue
        name = tokens[i + 1]
        after = tokens[i + 2]
        if name.kind != "id" or after.kind != "punct" \
                or after.value not in (";", "=", ",", ")", "{"):
            continue
        if "per_s" in name.value or not RAW_SECONDS_SUFFIX.search(name.value):
            continue
        findings.append(_finding(
            sf, t.line, "raw-seconds",
            "raw `double` seconds variable — prefer sim::Duration/sim::Time "
            "(src/sim/time.hpp); annotate deliberate plain-unit math with "
            "`// ape-lint: allow(raw-seconds)`"))
    return findings


def check_span_leak(sf: SourceFile, symtab: SymbolTable,
                    cross: CrossContext) -> List[Finding]:
    findings = []
    tokens = sf.tokens
    n = len(tokens)
    i = 0
    while i + 3 < n:
        t = tokens[i]
        if t.kind == "id" and tokens[i + 1].kind == "punct" \
                and tokens[i + 1].value == "=":
            # name = [chain] open|open_root (
            k = i + 2
            while k + 1 < n and tokens[k].kind == "id" \
                    and tokens[k + 1].kind == "punct" \
                    and tokens[k + 1].value in (".", "->", "::"):
                k += 2
            if k + 1 < n and tokens[k].kind == "id" \
                    and tokens[k].value in ("open", "open_root") \
                    and tokens[k + 1].kind == "punct" and tokens[k + 1].value == "(":
                # end of the opening statement
                depth = 0
                j = k + 1
                while j < n:
                    v = tokens[j]
                    if v.kind == "punct":
                        if v.value == "(":
                            depth += 1
                        elif v.value == ")":
                            depth -= 1
                        elif v.value == ";" and depth == 0:
                            break
                    j += 1
                name = t.value
                used = any(tokens[m].kind == "id" and tokens[m].value == name
                           for m in range(j, n))
                if not used:
                    findings.append(_finding(
                        sf, t.line, "span-leak",
                        f"span context `{name}` is never used after open() — "
                        "it can never be closed, the span stays open forever, "
                        "and validate_spans() rejects the trace; close it or "
                        "hand it to the completion path"))
                i = j
                continue
        i += 1
    return findings


REGISTRY_READS = {"counters", "gauges", "histograms", "counter", "gauge", "histogram"}


def check_cursor_bypass(sf: SourceFile, symtab: SymbolTable,
                        cross: CrossContext) -> List[Finding]:
    findings = []
    tokens = sf.tokens
    for scope in symtab.scopes:
        if scope.kind != "function" or not scope.name.startswith(("capture", "scrape")):
            continue
        end = scope.close if scope.close >= 0 else len(tokens)
        for k in range(scope.open + 1, end - 2):
            t = tokens[k]
            if t.kind == "punct" and t.value in (".", "->") \
                    and tokens[k + 1].kind == "id" \
                    and tokens[k + 1].value in REGISTRY_READS \
                    and k + 2 < end and tokens[k + 2].kind == "punct" \
                    and tokens[k + 2].value == "(" \
                    and k >= 1 and tokens[k - 1].kind == "id":
                findings.append(_finding(
                    sf, tokens[k + 1].line, "cursor-bypass",
                    f"direct MetricsRegistry read `.{tokens[k + 1].value}(...)` "
                    f"inside window-capture path `{scope.name}` — route reads "
                    "through the Timeline DeltaCursor (advance()) so every "
                    "increment lands in exactly one window; annotate a "
                    "deliberate non-windowed read with "
                    "`// ape-lint: allow(cursor-bypass)`"))
    return findings


HOT_METRIC_NAMES = {"counter", "gauge", "histogram", "count"}


def check_hot_alloc(sf: SourceFile, symtab: SymbolTable,
                    cross: CrossContext) -> List[Finding]:
    findings: List[Finding] = []
    if not sf.hot_path:
        return findings
    tokens = sf.tokens
    n = len(tokens)
    for i, t in enumerate(tokens):
        if t.pp:
            continue
        if t.kind == "id" and t.value == "new":
            nxt = tokens[i + 1] if i + 1 < n else None
            prev = tokens[i - 1] if i > 0 else None
            if nxt is not None and nxt.kind == "punct" and nxt.value == "(":
                continue  # placement new constructs into arena storage
            if prev is not None and prev.kind == "id" and prev.value == "operator":
                continue
            findings.append(_finding(
                sf, t.line, "hot-alloc",
                "heap allocation in a hot-path file — recycle through an arena "
                "(sim::Simulator slots, net::Network in-flight datagrams) or "
                "keep state inline in sim::SmallFn; annotate a deliberate "
                "cold-path allocation with `// ape-lint: allow(hot-alloc)`"))
        elif t.kind == "id" and t.value in ("make_unique", "make_shared") \
                and i + 1 < n and tokens[i + 1].kind == "punct" \
                and tokens[i + 1].value == "<":
            findings.append(_finding(
                sf, t.line, "hot-alloc",
                "make_unique/make_shared in a hot-path file — recycle through "
                "an arena or keep state inline; annotate a deliberate cold-path "
                "allocation with `// ape-lint: allow(hot-alloc)`"))
        elif t.kind == "punct" and t.value in (".", "->") and i + 3 < n \
                and tokens[i + 1].kind == "id" \
                and tokens[i + 1].value in HOT_METRIC_NAMES \
                and tokens[i + 2].kind == "punct" and tokens[i + 2].value == "(" \
                and tokens[i + 3].kind == "str":
            findings.append(_finding(
                sf, tokens[i + 1].line, "hot-alloc",
                f"by-name metric lookup `.{tokens[i + 1].value}(\"...\")` in a "
                "hot-path file — resolve once into an obs::CounterHandle/"
                "HistogramHandle at construction; annotate a deliberate "
                "snapshot-time lookup with `// ape-lint: allow(hot-alloc)`"))
    return findings


# ----------------------------------------------------------- shard ownership


def _shard_participating(sf: SourceFile, module: Optional[str],
                         cross: CrossContext) -> bool:
    if module in cross.shard_roots:
        return True
    return any(t.kind == "id" and t.value.startswith("APE_SHARD_")
               for t in sf.tokens)


def _mutation_after(sf: SourceFile, i: int) -> bool:
    """Does the member access whose field name sits at token i mutate it?
    Handles `f_ = v`, `f_ += v`, `f_++`, `++f_` (caller checks prev),
    `f_[k] = v`, `f_.insert(...)`, `f_->method(...)` chains one level."""
    tokens = sf.tokens
    n = len(tokens)
    k = i + 1
    if k < n and tokens[k].kind == "punct" and tokens[k].value == "[":
        k = match_forward(tokens, k, "[", "]") + 1
    if k >= n:
        return False
    t = tokens[k]
    if t.kind == "punct" and t.value in ASSIGN_OPS:
        return True
    if t.kind == "punct" and t.value in ("++", "--"):
        return True
    return False


def _mutating_call_after(sf: SourceFile, i: int, cross: CrossContext) -> bool:
    tokens = sf.tokens
    n = len(tokens)
    k = i + 1
    if k < n and tokens[k].kind == "punct" and tokens[k].value == "[":
        k = match_forward(tokens, k, "[", "]") + 1
    if k + 2 < n and tokens[k].kind == "punct" and tokens[k].value in (".", "->") \
            and tokens[k + 1].kind == "id" and tokens[k + 2].kind == "punct" \
            and tokens[k + 2].value == "(":
        m = tokens[k + 1].value
        return m in cross.mutating_methods or m.startswith(cross.mutating_prefixes)
    return False


def check_shard_ownership(sf: SourceFile, symtab: SymbolTable,
                          cross: CrossContext,
                          module: Optional[str]) -> List[Finding]:
    findings: List[Finding] = []
    participating = _shard_participating(sf, module, cross)

    for scope in symtab.scopes:
        if scope.kind != "class":
            continue
        state_fields = [d for d in scope.decls.values()
                        if d.name.endswith("_") and not d.is_static]
        if scope.shard_context is None:
            if participating and state_fields:
                findings.append(_finding(
                    sf, scope.line, "shard-ownership",
                    f"class `{scope.name}` declares runtime state "
                    f"({state_fields[0].name}, ...) but no APE_SHARD_CONTEXT — "
                    "every stateful class in a shard-swept subsystem must name "
                    "its owning shard (src/common/shard.hpp)"))
            continue
        ctx = scope.shard_context
        if ctx not in cross.shard_owners:
            findings.append(_finding(
                sf, scope.shard_context_line, "shard-ownership",
                f"unknown shard owner `{ctx}` — the committed owner set is "
                f"{sorted(cross.shard_owners)} (tools/lint/lint_config.json)"))
        for d in state_fields:
            if d.shard_owner is None:
                findings.append(_finding(
                    sf, d.line, "shard-ownership",
                    f"field `{d.name}` of `{scope.name}` (shard `{ctx}`) has no "
                    "ownership annotation — mark it APE_SHARD_LOCAL("
                    f"{ctx}) or APE_SHARD_SHARED"))
            elif d.shard_owner != "" and d.shard_owner != ctx:
                findings.append(_finding(
                    sf, d.line, "shard-ownership",
                    f"field `{d.name}` is annotated APE_SHARD_LOCAL("
                    f"{d.shard_owner}) inside shard context `{ctx}` — "
                    "a class's local state belongs to its own shard; "
                    "cross-shard state must be APE_SHARD_SHARED"))
            elif d.shard_owner != "" and d.shard_owner not in cross.shard_owners:
                findings.append(_finding(
                    sf, d.line, "shard-ownership",
                    f"unknown shard owner `{d.shard_owner}` on field "
                    f"`{d.name}` — the committed owner set is "
                    f"{sorted(cross.shard_owners)}"))

    # Cross-shard mutation from deferred callbacks.
    tokens = sf.tokens
    for lam, _call_idx in _sink_lambdas(sf, symtab, cross):
        host_class = lam.enclosing("class")
        ctx = host_class.shard_context if host_class is not None else None
        if ctx is None:
            continue
        body_start, body_end = lam.open, (lam.close if lam.close >= 0 else len(tokens))
        for k in range(body_start + 1, body_end):
            t = tokens[k]
            if t.kind != "id" or not t.value.endswith("_"):
                continue
            prev = tokens[k - 1] if k > 0 else None
            owner: Optional[str] = None
            via = t.value
            if prev is not None and prev.kind == "punct" and prev.value in (".", "->"):
                # qualified access: receiver decides the namespace
                recv = tokens[k - 2] if k >= 2 else None
                if recv is not None and recv.kind == "id" and recv.value == "this" \
                        and host_class is not None:
                    d = host_class.decls.get(t.value)
                    owner = d.shard_owner if d is not None else None
                else:
                    owner = cross.owner_of_field(t.value)
            else:
                d = host_class.decls.get(t.value) if host_class is not None else None
                if d is not None:
                    owner = d.shard_owner
                else:
                    owner = cross.owner_of_field(t.value)
            if owner is None or owner == "" or owner == ctx:
                continue
            mutated = _mutation_after(sf, k) or _mutating_call_after(sf, k, cross)
            if not mutated and prev is not None and prev.kind == "punct" \
                    and prev.value in ("++", "--"):
                mutated = True
            if mutated:
                findings.append(_finding(
                    sf, t.line, "shard-ownership",
                    f"callback scheduled from shard `{ctx}` mutates "
                    f"`{via}`, which is APE_SHARD_LOCAL({owner}) — cross-shard "
                    "mutation is illegal under the parallel-shard contract; "
                    "route it through the owner's queue or mark the state "
                    "APE_SHARD_SHARED with a synchronization story"))
    return findings


# --------------------------------------------------------- callback captures


def check_callback_capture(sf: SourceFile, symtab: SymbolTable,
                           cross: CrossContext) -> List[Finding]:
    findings: List[Finding] = []
    tokens = sf.tokens
    for lam, call_idx in _sink_lambdas(sf, symtab, cross):
        sink = tokens[call_idx].value
        outer = lam.parent if lam.parent is not None else symtab.file_scope
        for seg in _parse_captures(sf, lam):
            vals = [tokens[k].value for k in seg]
            line = tokens[seg[0]].line
            if vals == ["&"]:
                findings.append(_finding(
                    sf, line, "callback-capture",
                    f"default by-reference capture `[&]` handed to deferred "
                    f"sink `{sink}` — the callback outlives this stack frame; "
                    "capture explicitly (by value, `this`, or a "
                    "generation-checked EventId)"))
                continue
            if vals in (["="], ["this"]) or vals == ["*", "this"]:
                continue
            if vals[0] == "&" and len(seg) >= 2 and tokens[seg[1]].kind == "id":
                name = tokens[seg[1]].value
                decl = symtab.resolve_through_alias(name, outer)
                if _is_arena_decl(decl, cross):
                    findings.append(_finding(
                        sf, line, "callback-capture",
                        f"`&{name}` captures a reference to arena-slot state "
                        f"({'/'.join(decl.type_ids)}) into deferred sink "
                        f"`{sink}` — the slot is recycled before the callback "
                        "fires; copy the value or carry a generation-checked "
                        "id instead"))
                continue
            # init capture `x = &slot` or plain value capture of a raw pointer
            eq_positions = [p for p, v in enumerate(vals) if v == "="]
            if eq_positions:
                rhs = seg[eq_positions[0] + 1:]
                if rhs and tokens[rhs[0]].kind == "punct" and tokens[rhs[0]].value == "&" \
                        and len(rhs) >= 2 and tokens[rhs[1]].kind == "id":
                    target = symtab.resolve_through_alias(tokens[rhs[1]].value, outer)
                    if _is_arena_decl(target, cross):
                        findings.append(_finding(
                            sf, line, "callback-capture",
                            f"init-capture takes the address of arena-slot state "
                            f"`{tokens[rhs[1]].value}` into deferred sink `{sink}` "
                            "— the slot is recycled before the callback fires; "
                            "copy the value or carry a generation-checked id"))
                continue
            if len(seg) == 1 and tokens[seg[0]].kind == "id":
                decl = symtab.resolve_through_alias(vals[0], outer)
                if decl is not None and decl.is_ptr and _is_arena_decl(decl, cross):
                    findings.append(_finding(
                        sf, line, "callback-capture",
                        f"`{vals[0]}` is a raw pointer to arena-slot state "
                        f"({'/'.join(decl.type_ids)}) captured into deferred "
                        f"sink `{sink}` — the slot is recycled before the "
                        "callback fires; copy the value or carry a "
                        "generation-checked id"))
    return findings


# ------------------------------------------------------------------ registry


def run_per_file_checks(sf: SourceFile, symtab: SymbolTable, cross: CrossContext,
                        module: Optional[str]) -> List[Finding]:
    raw: List[Finding] = []
    raw += check_wallclock(sf, symtab, cross)
    raw += check_unordered_iter(sf, symtab, cross)
    raw += check_discarded_result(sf, symtab, cross)
    raw += check_raw_seconds(sf, symtab, cross)
    raw += check_span_leak(sf, symtab, cross)
    raw += check_cursor_bypass(sf, symtab, cross)
    raw += check_hot_alloc(sf, symtab, cross)
    raw += check_shard_ownership(sf, symtab, cross, module)
    raw += check_callback_capture(sf, symtab, cross)
    out: List[Finding] = []
    seen = set()
    for f in raw:
        if sf.allowed(f.line, f.check):
            continue
        key = (f.line, f.check)
        if key in seen:
            continue
        seen.add(key)
        out.append(f)
    out.sort(key=lambda f: (f.line, f.check))
    return out

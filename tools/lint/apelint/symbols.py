"""Brace-matched scope tracker and per-file symbol table.

One linear pass classifies every `{ ... }` region into a Scope (namespace,
class, enum, function, lambda, block, or brace-init) by examining the
statement head to its left; because the pass is linear, a `}` encountered
while scanning backwards is always a scope we already closed, so the scan
knows whether to stop (statement boundary) or collapse it (a tiny
brace-init group inside a constructor initializer list).

On top of the scope tree the table records, per scope:

  * class member fields (name, type identifiers, shard annotations,
    unordered-container-ness),
  * function parameters (name, type identifiers, ref/pointer-ness),
  * local declarations, with `auto`/reference aliases kept as one-level
    chains (`auto& m = url_index_;` records m -> url_index_), which is what
    kills the alias false-negatives the regex engine was blind to,
  * lambdas (capture-list range, body range),
  * names of functions declared to return Result<T>.

Resolution is deliberately one level deep (DESIGN.md §5i): an alias of an
alias does not resolve, matching the closed-world contract that hot-path
code keeps aliasing shallow.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .tokens import Token, match_forward, skip_angles

CONTROL_KEYWORDS = {"if", "for", "while", "switch", "catch", "return", "do", "else", "try"}
FN_QUALIFIERS = {"const", "noexcept", "override", "final", "mutable", "constexpr", "try"}
ACCESS_SPECIFIERS = {"public", "private", "protected"}
TYPE_INTRO_SKIP = {
    "using", "typedef", "friend", "static_assert", "template", "operator",
    "enum", "class", "struct", "union", "concept", "requires", "extern",
}
SHARD_MACROS = ("APE_SHARD_CONTEXT", "APE_SHARD_LOCAL", "APE_SHARD_SHARED")


class Decl:
    """A named declaration: field, parameter, or local."""

    __slots__ = ("name", "type_ids", "is_ref", "is_ptr", "alias_chain", "line",
                 "is_static", "shard_owner", "is_unordered")

    def __init__(self, name: str, type_ids: Tuple[str, ...], line: int, *,
                 is_ref: bool = False, is_ptr: bool = False,
                 alias_chain: Optional[Tuple[str, ...]] = None,
                 is_static: bool = False, shard_owner: Optional[str] = None):
        self.name = name
        self.type_ids = type_ids
        self.is_ref = is_ref
        self.is_ptr = is_ptr
        self.alias_chain = alias_chain  # one-level alias target, outermost last
        self.line = line
        self.is_static = is_static
        # None = unannotated; "" = APE_SHARD_SHARED; else the owner string.
        self.shard_owner = shard_owner
        self.is_unordered = any(t.startswith("unordered_") for t in type_ids)

    def has_type(self, name: str) -> bool:
        return name in self.type_ids


class Scope:
    __slots__ = ("kind", "name", "open", "close", "parent", "children",
                 "decls", "shard_context", "shard_context_line", "line",
                 "capture_range", "param_range")

    def __init__(self, kind: str, name: str, open_idx: int, parent: "Scope | None",
                 line: int):
        self.kind = kind  # namespace|class|enum|function|lambda|block|init|file
        self.name = name
        self.open = open_idx
        self.close = -1
        self.parent = parent
        self.children: List[Scope] = []
        self.decls: Dict[str, Decl] = {}
        self.shard_context: Optional[str] = None  # class scopes only
        self.shard_context_line = 0
        self.line = line
        self.capture_range: Optional[Tuple[int, int]] = None  # lambdas: [ .. ]
        self.param_range: Optional[Tuple[int, int]] = None    # fns/lambdas: ( .. )

    def enclosing(self, *kinds: str) -> "Scope | None":
        s: Scope | None = self
        while s is not None:
            if s.kind in kinds:
                return s
            s = s.parent
        return None


class SymbolTable:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.file_scope = Scope("file", "", -1, None, 1)
        self.file_scope.close = len(tokens)
        self.scopes: List[Scope] = [self.file_scope]
        self.close_of: Dict[int, Scope] = {}  # close-brace index -> scope
        self.result_functions: List[Tuple[str, int]] = []
        self._build()
        for scope in self.scopes:
            if scope.kind == "class":
                self._parse_class_body(scope)
            elif scope.kind in ("function", "lambda", "block"):
                self._parse_locals(scope)
            if scope.kind in ("function", "lambda") and scope.param_range:
                self._parse_params(scope)
        self._harvest_result_functions()

    # ------------------------------------------------------------- structure

    def _build(self) -> None:
        tokens = self.tokens
        stack = [self.file_scope]
        for i, t in enumerate(tokens):
            if t.kind != "punct" or t.pp:
                continue
            if t.value == "{":
                scope = self._classify_open(i, stack[-1])
                stack[-1].children.append(scope)
                self.scopes.append(scope)
                stack.append(scope)
            elif t.value == "}":
                if len(stack) > 1:
                    scope = stack.pop()
                    scope.close = i
                    self.close_of[i] = scope
        while len(stack) > 1:  # unbalanced file: close what's left
            scope = stack.pop()
            scope.close = len(tokens)

    def _head(self, i: int) -> List[Tuple[str, int]]:
        """Statement head left of the `{` at index i, nearest token first.

        Balanced groups collapse to markers: ("()", open_idx), ("[]", idx),
        ("{}", idx).  A `}` closing anything but a small brace-init group is
        a statement boundary and stops the scan.
        """
        tokens = self.tokens
        out: List[Tuple[str, int]] = []
        j = i - 1
        while j >= 0 and len(out) < 96:
            t = tokens[j]
            if t.kind == "punct":
                if t.value in (";", "{"):
                    break
                if t.value == "}":
                    scope = self.close_of.get(j)
                    if scope is not None and scope.kind == "init" and j - scope.open <= 64:
                        out.append(("{}", scope.open))
                        j = scope.open - 1
                        continue
                    break
                if t.value == ")":
                    open_idx = self._match_back(j, "(", ")")
                    out.append(("()", open_idx))
                    j = open_idx - 1
                    continue
                if t.value == "]":
                    open_idx = self._match_back(j, "[", "]")
                    out.append(("[]", open_idx))
                    j = open_idx - 1
                    continue
            out.append((t.value, j))
            j -= 1
        return out

    def _match_back(self, close_idx: int, open_v: str, close_v: str) -> int:
        depth = 0
        j = close_idx
        while j >= 0:
            t = self.tokens[j]
            if t.kind == "punct":
                if t.value == close_v:
                    depth += 1
                elif t.value == open_v:
                    depth -= 1
                    if depth == 0:
                        return j
            j -= 1
        return 0

    def _classify_open(self, i: int, parent: Scope) -> Scope:
        tokens = self.tokens
        line = tokens[i].line
        head = self._head(i)
        values = [v for v, _ in head]

        if "namespace" in values:
            k = values.index("namespace")
            name = values[k - 1] if k > 0 and values[k - 1].isidentifier() else ""
            return Scope("namespace", name, i, parent, line)
        if "enum" in values:
            for v, _ in head:
                if v.isidentifier() and v not in ("enum", "class", "struct"):
                    return Scope("enum", v, i, parent, line)
            return Scope("enum", "", i, parent, line)
        if ("class" in values or "struct" in values or "union" in values) \
                and "=" not in values:
            kw = next(v for v in ("class", "struct", "union") if v in values)
            k = values.index(kw)
            # name = first identifier to the right of the keyword (nearer the
            # `{`), skipping attributes; base clauses sit further right.
            name = ""
            for v, _ in reversed(head[:k]):
                if v.isidentifier() and v not in ("final", "alignas"):
                    name = v
                    break
            return Scope("class", name, i, parent, line)

        # Lambda: [captures] (params)? quals? -> type? {
        k = 0
        param_marker = None
        while k < len(head):
            v, idx = head[k]
            if v in FN_QUALIFIERS or v == "->" or v == "&" or v == "&&" \
                    or v == "*" or v == "::" or v == "<" or v == ">" \
                    or (v.isidentifier() and v not in CONTROL_KEYWORDS
                        and head[min(k + 1, len(head) - 1)][0] in ("->", "::")):
                k += 1
                continue
            if v == "()" and param_marker is None:
                param_marker = idx
                k += 1
                continue
            break
        if k < len(head) and head[k][0] == "[]":
            open_idx = head[k][1]
            inner = tokens[open_idx + 1:self._bracket_close(open_idx)]
            if self._looks_like_capture_list(inner):
                scope = Scope("lambda", "", i, parent, line)
                scope.capture_range = (open_idx, self._bracket_close(open_idx))
                if param_marker is not None:
                    scope.param_range = (param_marker,
                                         match_forward(tokens, param_marker, "(", ")"))
                return scope

        # Function: name (params) quals? [: init-list] {
        fn = self._match_function_head(head)
        if fn is not None:
            name, param_open = fn
            scope = Scope("function", name, i, parent, line)
            scope.param_range = (param_open, match_forward(tokens, param_open, "(", ")"))
            return scope

        if values and values[0] in ("do", "else", "try"):
            return Scope("block", "", i, parent, line)
        prev = values[0] if values else ""
        if prev in ("()",) and len(values) > 1 and values[1] in CONTROL_KEYWORDS:
            return Scope("block", "", i, parent, line)
        if prev in ("=", ",", "return", "(", "[", "()", "{}") or prev == "":
            kind = "block" if prev == "" else "init"
            return Scope(kind, "", i, parent, line)
        if parent.kind in ("function", "lambda", "block") and prev in CONTROL_KEYWORDS:
            return Scope("block", "", i, parent, line)
        # `Type name{...}` member/variable brace-init, `x[i]{...}`, ...
        return Scope("init", "", i, parent, line)

    def _bracket_close(self, open_idx: int) -> int:
        return match_forward(self.tokens, open_idx, "[", "]")

    @staticmethod
    def _looks_like_capture_list(inner: List[Token]) -> bool:
        if not inner:
            return True  # []
        if all(t.kind == "num" for t in inner):
            return False  # array bound / index
        return any(t.kind == "id" or (t.kind == "punct" and t.value in ("&", "=", "*"))
                   for t in inner)

    def _match_function_head(self, head: List[Tuple[str, int]]) -> Optional[Tuple[str, int]]:
        k = 0
        while k < len(head) and (head[k][0] in FN_QUALIFIERS or head[k][0] == "&"
                                 or head[k][0] == "&&" or head[k][0] == "->"):
            k += 1
        # Skip a trailing-return type chain after ->: ids/:: already consumed
        # above one at a time via the loop over quals? Keep simple: also skip
        # plain identifiers that are followed (leftwards) by "->".
        while k + 1 < len(head) and head[k][0].isidentifier() and head[k + 1][0] == "->":
            k += 2
        # Constructor initializer list: id () pairs separated by , up to :
        saw_init_list = False
        while k + 1 < len(head) and head[k][0] in ("()", "{}") \
                and head[k + 1][0].isidentifier() \
                and k + 2 < len(head) and head[k + 2][0] in (",", ":"):
            saw_init_list = True
            k += 2
            if head[k][0] == ":":
                k += 1
                break
            k += 1  # the comma
        if saw_init_list is False and k < len(head) and head[k][0] == ":":
            k += 1  # lone `: base` — not expected for functions, tolerated
        if k + 1 < len(head) and head[k][0] == "()" and head[k + 1][0].isidentifier() \
                and head[k + 1][0] not in CONTROL_KEYWORDS \
                and head[k + 1][0] not in ("class", "struct", "union", "enum"):
            return head[k + 1][0], head[k][1]
        return None

    # ------------------------------------------------------------ statements

    def _direct_statements(self, scope: Scope) -> List[List[int]]:
        """Token indices of statements at the scope's direct nesting level.

        Child scopes collapse: brace-init children become part of their
        statement (as the sentinel of their `{`), any other child ends the
        statement (a member function body, a nested class, ...).
        """
        tokens = self.tokens
        statements: List[List[int]] = []
        current: List[int] = []
        children = {c.open: c for c in scope.children}
        i = scope.open + 1
        end = scope.close if scope.close >= 0 else len(tokens)
        while i < end:
            child = children.get(i)
            if child is not None:
                stop = child.close if child.close >= 0 else end
                if child.kind == "init":
                    current.append(i)  # sentinel: the `{` of the init group
                    i = stop + 1
                    continue
                if current:
                    statements.append(current)
                    current = []
                i = stop + 1
                continue
            t = tokens[i]
            if t.pp:
                i += 1
                continue
            if t.kind == "punct" and t.value == ";":
                if current:
                    statements.append(current)
                    current = []
                i += 1
                continue
            if scope.kind == "class" and t.kind == "id" and t.value in ACCESS_SPECIFIERS \
                    and i + 1 < end and tokens[i + 1].kind == "punct" \
                    and tokens[i + 1].value == ":":
                if current:
                    statements.append(current)
                    current = []
                i += 2
                continue
            current.append(i)
            i += 1
        if current:
            statements.append(current)
        return statements

    def _top_level_eq(self, stmt: List[int]) -> Optional[int]:
        """Position (within stmt) of a top-level `=`, angle/paren aware."""
        depth = 0
        k = 0
        while k < len(stmt):
            t = self.tokens[stmt[k]]
            if t.kind == "punct":
                if t.value in ("(", "["):
                    depth += 1
                elif t.value in (")", "]"):
                    depth -= 1
                elif t.value == "<" and depth == 0:
                    # try to skip a template argument list
                    nxt = skip_angles(self.tokens, stmt[k])
                    while k < len(stmt) and stmt[k] < nxt:
                        k += 1
                    continue
                elif t.value == "=" and depth == 0:
                    return k
            k += 1
        return None

    # ---------------------------------------------------------- class fields

    def _parse_class_body(self, scope: Scope) -> None:
        tokens = self.tokens
        for stmt in self._direct_statements(scope):
            values = [tokens[i].value for i in stmt]
            if not values:
                continue
            # Shard annotations prefix the statement (or form it entirely).
            shard_owner: Optional[str] = None
            k = 0
            if values[0] == "APE_SHARD_CONTEXT" and len(values) >= 4 and values[1] == "(":
                scope.shard_context = values[2]
                scope.shard_context_line = tokens[stmt[0]].line
                continue
            if values[0] == "APE_SHARD_LOCAL" and len(values) >= 4 and values[1] == "(":
                shard_owner = values[2]
                k = 4  # past APE_SHARD_LOCAL ( owner )
            elif values[0] == "APE_SHARD_SHARED":
                shard_owner = ""
                k = 1
            body = stmt[k:]
            if not body:
                continue
            first = tokens[body[0]].value
            if first in TYPE_INTRO_SKIP or first in ACCESS_SPECIFIERS:
                continue
            decl = self._parse_declarator(body, allow_static=True)
            if decl is not None:
                decl.shard_owner = shard_owner
                scope.decls[decl.name] = decl

    def _parse_declarator(self, body: List[int], *, allow_static: bool) -> Optional[Decl]:
        """Parse `type name [= init | {init} | [N]]` out of one statement."""
        tokens = self.tokens
        values = [tokens[i].value for i in body]
        is_static = "static" in values or "constexpr" in values
        eq = self._top_level_eq(body)
        name_pos: Optional[int] = None
        if eq is not None and eq > 0:
            if tokens[body[eq - 1]].kind == "id":
                name_pos = eq - 1
        else:
            last = len(body) - 1
            t = tokens[body[last]]
            if t.kind == "punct" and t.value == "{":  # collapsed init sentinel
                last -= 1
                t = tokens[body[last]] if last >= 0 else t
            if last >= 1 and t.kind == "punct" and t.value == "]":
                open_idx = self._match_back(body[last], "[", "]")
                while last >= 0 and body[last] >= open_idx:
                    last -= 1
                t = tokens[body[last]] if last >= 0 else t
            if last >= 1 and t.kind == "id":
                name_pos = last
        if name_pos is None or name_pos == 0:
            return None
        prev = tokens[body[name_pos - 1]]
        if prev.kind == "punct" and prev.value in ("::", ".", "->"):
            return None  # qualified name: not a declaration
        name = tokens[body[name_pos]].value
        if name in FN_QUALIFIERS or name in CONTROL_KEYWORDS:
            return None
        type_part = body[:name_pos]
        type_ids = tuple(tokens[i].value for i in type_part if tokens[i].kind == "id")
        if not type_ids:
            return None
        type_puncts = [tokens[i].value for i in type_part if tokens[i].kind == "punct"]
        is_ref = "&" in type_puncts or "&&" in type_puncts
        is_ptr = "*" in type_puncts
        alias_chain = None
        if "auto" in type_ids and eq is not None:
            alias_chain = self._alias_chain(body[eq + 1:])
        return Decl(name, type_ids, tokens[body[name_pos]].line,
                    is_ref=is_ref, is_ptr=is_ptr, alias_chain=alias_chain,
                    is_static=is_static and allow_static)

    def _alias_chain(self, init: List[int]) -> Optional[Tuple[str, ...]]:
        """`expr` -> the id chain it names (ids joined by . -> ::), or None
        when the initializer is a call or anything non-trivial."""
        tokens = self.tokens
        chain: List[str] = []
        k = 0
        while k < len(init) and tokens[init[k]].kind == "punct" \
                and tokens[init[k]].value in ("*", "&", "("):
            k += 1
        expect_id = True
        while k < len(init):
            t = tokens[init[k]]
            if expect_id and t.kind == "id":
                chain.append(t.value)
                expect_id = False
            elif not expect_id and t.kind == "punct" and t.value in (".", "->", "::"):
                expect_id = True
            elif not expect_id and t.kind == "punct" and t.value == ")":
                k += 1
                continue
            else:
                if t.kind == "punct" and t.value == "(":
                    return None  # a call — not a plain alias
                break
            k += 1
        return tuple(chain) if chain else None

    # ------------------------------------------------------------ parameters

    def _parse_params(self, scope: Scope) -> None:
        tokens = self.tokens
        start, stop = scope.param_range  # type: ignore[misc]
        seg: List[int] = []
        segments: List[List[int]] = []
        depth = 0
        k = start + 1
        while k < stop:
            t = tokens[k]
            if t.kind == "punct":
                if t.value in ("(", "[", "{"):
                    depth += 1
                elif t.value in (")", "]", "}"):
                    depth -= 1
                elif t.value == "<" and depth == 0:
                    nxt = skip_angles(tokens, k)
                    seg.extend(range(k, min(nxt, stop)))
                    k = nxt
                    continue
                elif t.value == "," and depth == 0:
                    segments.append(seg)
                    seg = []
                    k += 1
                    continue
            seg.append(k)
            k += 1
        if seg:
            segments.append(seg)
        for seg in segments:
            ids = [i for i in seg if tokens[i].kind == "id"]
            if len(ids) < 2 and not (len(ids) == 1 and any(
                    tokens[i].kind == "punct" and tokens[i].value in (">", "&", "*")
                    for i in seg[:-1])):
                continue  # unnamed (type-only) parameter
            eq = self._top_level_eq(seg)
            name_idx = None
            if eq is not None and eq > 0 and tokens[seg[eq - 1]].kind == "id":
                name_idx = seg[eq - 1]
            elif tokens[seg[-1]].kind == "id":
                name_idx = seg[-1]
            if name_idx is None:
                continue
            prev_idx = seg[seg.index(name_idx) - 1] if seg.index(name_idx) > 0 else None
            if prev_idx is not None and tokens[prev_idx].kind == "punct" \
                    and tokens[prev_idx].value == "::":
                continue  # qualified type, unnamed param
            name = tokens[name_idx].value
            type_part = seg[:seg.index(name_idx)]
            type_ids = tuple(tokens[i].value for i in type_part if tokens[i].kind == "id")
            puncts = [tokens[i].value for i in type_part if tokens[i].kind == "punct"]
            scope.decls[name] = Decl(name, type_ids, tokens[name_idx].line,
                                     is_ref="&" in puncts or "&&" in puncts,
                                     is_ptr="*" in puncts)

    # ----------------------------------------------------------------- locals

    def _parse_locals(self, scope: Scope) -> None:
        tokens = self.tokens
        for stmt in self._direct_statements(scope):
            if not stmt:
                continue
            first = tokens[stmt[0]]
            if first.kind != "id" or first.value in CONTROL_KEYWORDS \
                    or first.value in TYPE_INTRO_SKIP:
                continue
            # Fast reject: a declaration needs 2+ leading ids before any
            # operator, or starts with auto/const.
            decl = self._parse_declarator(stmt, allow_static=False)
            if decl is None:
                continue
            # Guard against `x = y;` assignments parsing as decls: require a
            # type (>= 1 id before the name) that is not itself a known local.
            if decl.type_ids and decl.type_ids[0] not in scope.decls:
                scope.decls.setdefault(decl.name, decl)

    # ------------------------------------------------------------- harvesting

    def _harvest_result_functions(self) -> None:
        tokens = self.tokens
        n = len(tokens)
        i = 0
        while i < n:
            t = tokens[i]
            if t.kind == "id" and t.value == "Result" and i + 1 < n \
                    and tokens[i + 1].kind == "punct" and tokens[i + 1].value == "<":
                j = skip_angles(tokens, i + 1)
                # optional qualified name, then NAME (
                name = None
                k = j
                while k + 1 < n and tokens[k].kind == "id":
                    if tokens[k + 1].kind == "punct" and tokens[k + 1].value == "(":
                        name = tokens[k].value
                        break
                    if tokens[k + 1].kind == "punct" and tokens[k + 1].value == "::":
                        k += 2
                        continue
                    break
                if name and name != "operator":
                    self.result_functions.append((name, tokens[k].line))
                i = j
                continue
            i += 1

    # ------------------------------------------------------------- resolution

    def scope_at(self, token_idx: int) -> Scope:
        best = self.file_scope
        for scope in self.scopes:
            if scope.open < token_idx < (scope.close if scope.close >= 0 else 1 << 60):
                if scope.open > best.open:
                    best = scope
        return best

    def resolve(self, name: str, scope: Scope) -> Optional[Decl]:
        s: Scope | None = scope
        while s is not None:
            d = s.decls.get(name)
            if d is not None:
                return d
            s = s.parent
        return None

    def resolve_through_alias(self, name: str, scope: Scope) -> Optional[Decl]:
        """Resolve `name`; if it is a one-level alias of a plain identifier,
        resolve the target instead (one level only)."""
        d = self.resolve(name, scope)
        if d is not None and d.alias_chain:
            target = self.resolve(d.alias_chain[-1], scope)
            if target is not None:
                return target
        return d

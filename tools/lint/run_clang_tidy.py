#!/usr/bin/env python3
"""Minimal parallel clang-tidy driver with a committed suppression baseline.

Reads compile_commands.json from the build directory, filters to the
requested source roots, and runs clang-tidy over each translation unit with
the repo's .clang-tidy config.  Diagnostics are compared against the
committed baseline (tools/lint/clang_tidy_baseline.json): only *new*
findings — ones whose (file, check, message) key is not baselined — fail
the run, so the gate ratchets without requiring a flag-day cleanup of
every historical warning.

  --baseline FILE      committed suppression set (default: next to script)
  --update-baseline    rewrite the baseline from the current findings
  --skip-if-missing    exit 0 with a notice when clang-tidy is unavailable
                       (the ctest entry uses this so environments without
                       the binary — containers, minimal CI runners — skip
                       instead of erroring)

The baseline keys deliberately exclude line numbers: unrelated edits above
a baselined diagnostic must not resurrect it.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import os
import re
import shutil
import subprocess
import sys

DIAG_RE = re.compile(
    r"^(?P<path>[^\s:][^:]*):(?P<line>\d+):(?P<col>\d+): "
    r"(?P<kind>warning|error): (?P<message>.*?)"
    r"(?: \[(?P<check>[\w\-.,]+)\])?$"
)


def default_baseline_path() -> str:
    return os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "clang_tidy_baseline.json")


def load_baseline(path: str) -> set[tuple[str, str, str]]:
    try:
        with open(path, "r", encoding="utf-8") as f:
            data = json.load(f)
    except OSError:
        return set()
    return {(e["file"], e["check"], e["message"]) for e in data.get("findings", [])}


def save_baseline(path: str, keys: set[tuple[str, str, str]]) -> None:
    findings = [{"file": f, "check": c, "message": m}
                for f, c, m in sorted(keys)]
    payload = {
        "_comment": [
            "Committed clang-tidy suppression baseline.",
            "Keys are (file, check, message) — line numbers excluded so edits",
            "above a baselined diagnostic do not resurrect it.  Regenerate",
            "with: tools/lint/run_clang_tidy.py src -p build --update-baseline",
        ],
        "findings": findings,
    }
    with open(path, "w", encoding="utf-8") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")


def parse_diagnostics(output: str, repo_root: str) -> list[tuple[str, str, str, str]]:
    """(file, check, message, raw-line) per diagnostic line."""
    out = []
    for line in output.splitlines():
        m = DIAG_RE.match(line)
        if not m:
            continue
        try:
            rel = os.path.relpath(m.group("path"), repo_root).replace(os.sep, "/")
        except ValueError:
            rel = m.group("path")
        out.append((rel, m.group("check") or m.group("kind"),
                    m.group("message"), line))
    return out


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(prog="run_clang_tidy")
    parser.add_argument("roots", nargs="+", help="source roots to lint (e.g. src/)")
    parser.add_argument("-p", dest="build_dir", required=True,
                        help="build dir with compile_commands.json")
    parser.add_argument("--clang-tidy", default="clang-tidy",
                        help="clang-tidy executable")
    parser.add_argument("-j", dest="jobs", type=int, default=os.cpu_count() or 4)
    parser.add_argument("--baseline", default=default_baseline_path(),
                        help="committed suppression baseline (JSON)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from the current findings")
    parser.add_argument("--skip-if-missing", action="store_true",
                        help="exit 0 when the clang-tidy binary is unavailable")
    args = parser.parse_args(argv)

    if shutil.which(args.clang_tidy) is None:
        msg = f"run_clang_tidy: {args.clang_tidy} not found"
        if args.skip_if_missing:
            print(f"{msg} — skipping (baseline gate runs where the binary exists)")
            return 0
        print(msg, file=sys.stderr)
        return 2

    db_path = os.path.join(args.build_dir, "compile_commands.json")
    try:
        with open(db_path, "r", encoding="utf-8") as f:
            database = json.load(f)
    except OSError as e:
        print(f"run_clang_tidy: cannot read {db_path}: {e}", file=sys.stderr)
        return 2

    repo_root = os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    roots = tuple(os.path.abspath(r) + os.sep for r in args.roots)
    files = sorted(
        {
            os.path.abspath(os.path.join(entry["directory"], entry["file"]))
            for entry in database
        }
    )
    files = [f for f in files if f.startswith(roots)]
    if not files:
        print("run_clang_tidy: no files matched", file=sys.stderr)
        return 2

    def tidy_one(path: str) -> tuple[str, int, str]:
        proc = subprocess.run(
            [args.clang_tidy, "-p", args.build_dir, "--quiet", path],
            capture_output=True,
            text=True,
        )
        return path, proc.returncode, proc.stdout.strip() + (
            "\n" + proc.stderr.strip() if proc.returncode != 0 else ""
        )

    baseline = load_baseline(args.baseline)
    current: set[tuple[str, str, str]] = set()
    new_lines: list[str] = []
    hard_failures = 0
    suppressed = 0
    with concurrent.futures.ThreadPoolExecutor(max_workers=args.jobs) as pool:
        for path, returncode, output in pool.map(tidy_one, files):
            if returncode != 0:
                hard_failures += 1
                print(f"--- clang-tidy failed: {os.path.relpath(path)}")
                print(output)
                continue
            for rel, check, message, raw in parse_diagnostics(output, repo_root):
                key = (rel, check, message)
                current.add(key)
                if key in baseline:
                    suppressed += 1
                else:
                    new_lines.append(raw)

    if args.update_baseline:
        save_baseline(args.baseline, current)
        print(f"run_clang_tidy: baseline updated — {len(current)} finding(s) "
              f"written to {os.path.relpath(args.baseline)}")
        return 1 if hard_failures else 0

    if new_lines:
        print(f"--- clang-tidy: {len(new_lines)} new finding(s) "
              "(not in the committed baseline)")
        for line in new_lines:
            print(line)
    stale = len(baseline - current)
    if stale:
        print(f"run_clang_tidy: note — {stale} baselined finding(s) no longer "
              "fire; consider --update-baseline to ratchet down")
    if new_lines or hard_failures:
        print(f"run_clang_tidy: {len(new_lines)} new finding(s), "
              f"{hard_failures} failed invocation(s) across {len(files)} files")
        return 1
    print(f"run_clang_tidy: clean ({len(files)} files, "
          f"{suppressed} baselined finding(s) suppressed)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

#!/usr/bin/env python3
"""Minimal parallel clang-tidy driver (no run-clang-tidy dependency).

Reads compile_commands.json from the build directory, filters to the
requested source roots, and runs clang-tidy over each translation unit with
the repo's .clang-tidy config.  Exits non-zero if any invocation reports a
warning or error, so the CMake `lint` target and the CI lane fail on any
new violation.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import os
import subprocess
import sys


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(prog="run_clang_tidy")
    parser.add_argument("roots", nargs="+", help="source roots to lint (e.g. src/)")
    parser.add_argument("-p", dest="build_dir", required=True, help="build dir with compile_commands.json")
    parser.add_argument("--clang-tidy", default="clang-tidy", help="clang-tidy executable")
    parser.add_argument("-j", dest="jobs", type=int, default=os.cpu_count() or 4)
    args = parser.parse_args(argv)

    db_path = os.path.join(args.build_dir, "compile_commands.json")
    try:
        with open(db_path, "r", encoding="utf-8") as f:
            database = json.load(f)
    except OSError as e:
        print(f"run_clang_tidy: cannot read {db_path}: {e}", file=sys.stderr)
        return 2

    roots = tuple(os.path.abspath(r) + os.sep for r in args.roots)
    files = sorted(
        {
            os.path.abspath(os.path.join(entry["directory"], entry["file"]))
            for entry in database
        }
    )
    files = [f for f in files if f.startswith(roots)]
    if not files:
        print("run_clang_tidy: no files matched", file=sys.stderr)
        return 2

    def tidy_one(path: str) -> tuple[str, int, str]:
        proc = subprocess.run(
            [args.clang_tidy, "-p", args.build_dir, "--quiet", path],
            capture_output=True,
            text=True,
        )
        out = proc.stdout.strip()
        # clang-tidy exits 0 even with warnings unless -warnings-as-errors;
        # treat any diagnostic line as a failure.
        has_diag = any(": warning:" in line or ": error:" in line for line in out.splitlines())
        return path, (1 if (proc.returncode != 0 or has_diag) else 0), out + (
            "\n" + proc.stderr.strip() if proc.returncode != 0 else ""
        )

    failures = 0
    with concurrent.futures.ThreadPoolExecutor(max_workers=args.jobs) as pool:
        for path, status, output in pool.map(tidy_one, files):
            if status:
                failures += 1
                rel = os.path.relpath(path)
                print(f"--- clang-tidy: {rel}")
                print(output)
    if failures:
        print(f"run_clang_tidy: {failures}/{len(files)} files with diagnostics")
        return 1
    print(f"run_clang_tidy: clean ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

#!/usr/bin/env python3
"""Assert the ape-lint check registry and the docs cannot drift.

Drives `ape_lint.py --list-checks` as a subprocess (so the ctest entry
exercises the real CLI path, not just the Python registry) and verifies:

  1. the output lists exactly the checks in apelint.checks.CHECKS, and
  2. every check name appears in DESIGN.md §5i and in README.md,

so adding a check without documenting it — or documenting a check that was
renamed away — fails `ctest -R lint_list_checks`.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))

sys.path.insert(0, HERE)

from apelint.checks import CHECKS  # noqa: E402


def main() -> int:
    proc = subprocess.run(
        [sys.executable, os.path.join(HERE, "ape_lint.py"), "--list-checks"],
        capture_output=True, text=True,
    )
    if proc.returncode != 0:
        print(f"check_list_sync: --list-checks exited {proc.returncode}:\n"
              f"{proc.stderr}", file=sys.stderr)
        return 1

    listed = {}
    for line in proc.stdout.splitlines():
        m = re.match(r"^(\S+)\s+(.*)$", line)
        if m:
            listed[m.group(1)] = m.group(2)

    failures = []
    if set(listed) != set(CHECKS):
        failures.append(
            f"--list-checks output {sorted(listed)} != registry {sorted(CHECKS)}")
    for name, desc in CHECKS.items():
        if listed.get(name) != desc:
            failures.append(f"description drift for `{name}`: "
                            f"listed {listed.get(name)!r} != registry {desc!r}")

    for doc in ("DESIGN.md", "README.md"):
        path = os.path.join(REPO, doc)
        with open(path, "r", encoding="utf-8") as f:
            text = f.read()
        for name in CHECKS:
            if name not in text:
                failures.append(f"check `{name}` is not documented in {doc}")

    if failures:
        for f in failures:
            print(f"check_list_sync: {f}", file=sys.stderr)
        return 1
    print(f"check_list_sync: OK ({len(CHECKS)} checks listed and documented)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Offline analyzer for ape.obs.v1 snapshots with a "timeseries" section.

`bench_smoke --timeline-out` dumps the run's windowed telemetry (per-window
counter deltas, gauge readings, histogram summaries) next to the end-of-run
totals, plus the SLO evaluator's alert transition log.  This tool re-checks
the timeline contract independently of the C++ Timeline::reconcile code:

  * window monotonicity — indices consecutive from 0, each window starting
    exactly where the previous one ended, end >= start;
  * delta-sum reconciliation — every counter's window deltas sum to its
    end-of-run snapshot value, every stable histogram's window counts sum
    to its final sample count (the windows *partition* the run);
  * alert state-machine legality — per rule, the transition log forms a
    chain (each `from` equals the previous `to`, starting from inactive),
    a resolve only ever leaves `firing`, and the fired/resolved tallies
    match the log.

Usage:
  tools/timeline_report.py timeline.json            # per-window + alert report
  tools/timeline_report.py --validate timeline.json # invariants only, exit 1
                                                    # on violation (CI lane)
  tools/timeline_report.py --validate --expect bench/baselines/smoke_timeline_expect.json \\
      timeline.json                                 # also pin run expectations
"""

from __future__ import annotations

import argparse
import json
import sys

LEGAL_STATES = ("inactive", "pending", "firing")


def load(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"error: cannot read {path}: {err}")
    if doc.get("schema") != "ape.obs.v1":
        sys.exit(f"error: {path}: expected schema 'ape.obs.v1', got {doc.get('schema')!r}")
    if "timeseries" not in doc:
        sys.exit(f"error: {path}: no 'timeseries' section "
                 "(was the run missing --timeline-out / enable_timeline?)")
    return doc


def check_monotonicity(windows: list[dict]) -> list[str]:
    errors = []
    prev_end = 0
    for i, w in enumerate(windows):
        if w.get("index") != i:
            errors.append(f"window {i}: index {w.get('index')} is not consecutive")
        if w["end_us"] < w["start_us"]:
            errors.append(f"window {i}: end {w['end_us']}us precedes start {w['start_us']}us")
        if w["start_us"] != prev_end:
            errors.append(f"window {i}: start {w['start_us']}us != previous end {prev_end}us")
        prev_end = w["end_us"]
    return errors


def check_delta_sums(doc: dict) -> list[str]:
    errors = []
    windows = doc["timeseries"]["windows"]

    sums: dict[str, int] = {}
    for w in windows:
        for name, delta in w.get("counters", {}).items():
            sums[name] = sums.get(name, 0) + delta
    totals = doc.get("counters", {})
    for name, total in totals.items():
        got = sums.pop(name, 0)
        if got != total:
            errors.append(f"counter {name}: window deltas sum to {got}, snapshot says {total}")
    for name, got in sums.items():
        errors.append(f"counter {name}: windows carry {got} but snapshot has no such counter")

    counts: dict[str, int] = {}
    for w in windows:
        for name, h in w.get("histograms", {}).items():
            counts[name] = counts.get(name, 0) + h["count"]
    for name, hist in doc.get("histograms", {}).items():
        got = counts.pop(name, 0)
        if got != hist["count"]:
            errors.append(f"histogram {name}: window counts sum to {got}, "
                          f"snapshot holds {hist['count']} samples")
    for name, got in counts.items():
        errors.append(f"histogram {name}: windows carry {got} samples "
                      "but snapshot has no such histogram")
    return errors


def check_alerts(doc: dict) -> list[str]:
    alerts = doc.get("alerts")
    if alerts is None:
        return []
    errors = []
    window_count = len(doc["timeseries"]["windows"])

    per_rule: dict[str, list[dict]] = {}
    last_window: dict[str, int] = {}
    for i, t in enumerate(alerts.get("transitions", [])):
        for field in ("window", "rule", "from", "to"):
            if field not in t:
                errors.append(f"transition {i}: missing field {field!r}")
        if t.get("from") not in LEGAL_STATES or t.get("to") not in LEGAL_STATES:
            errors.append(f"transition {i}: illegal state "
                          f"{t.get('from')!r} -> {t.get('to')!r}")
            continue
        if t["from"] == t["to"]:
            errors.append(f"transition {i}: self-transition in state {t['from']!r}")
        if t["window"] >= window_count:
            errors.append(f"transition {i}: window {t['window']} out of range "
                          f"(only {window_count} windows)")
        rule = t.get("rule", "?")
        if rule in last_window and t["window"] < last_window[rule]:
            errors.append(f"rule {rule}: transitions out of window order "
                          f"({t['window']} after {last_window[rule]})")
        last_window[rule] = t.get("window", 0)
        per_rule.setdefault(rule, []).append(t)

    fired = resolved = 0
    for rule, transitions in sorted(per_rule.items()):
        state = "inactive"
        for t in transitions:
            if t["from"] != state:
                errors.append(f"rule {rule}: transition at window {t['window']} leaves "
                              f"{t['from']!r} but the rule was in {state!r}")
            if t["to"] == "firing":
                fired += 1
            if t["from"] == "firing" and t["to"] == "inactive":
                resolved += 1
            if t["to"] == "inactive" and t["from"] == "pending" and state == "inactive":
                errors.append(f"rule {rule}: resolved at window {t['window']} "
                              "without ever leaving inactive")
            state = t["to"]

    if alerts.get("fired", 0) != fired:
        errors.append(f"alerts.fired is {alerts.get('fired')} but the transition log "
                      f"shows {fired} firing transition(s)")
    if alerts.get("resolved", 0) != resolved:
        errors.append(f"alerts.resolved is {alerts.get('resolved')} but the transition "
                      f"log shows {resolved} resolve(s)")

    final = {r["name"]: r["state"] for r in alerts.get("rules", [])}
    for rule, transitions in per_rule.items():
        if rule not in final:
            errors.append(f"rule {rule}: appears in transitions but not in alerts.rules")
        elif transitions and final[rule] != transitions[-1]["to"]:
            errors.append(f"rule {rule}: final state {final[rule]!r} does not match "
                          f"last transition -> {transitions[-1]['to']!r}")
    return errors


def check_expectations(doc: dict, expect_path: str) -> list[str]:
    try:
        with open(expect_path, encoding="utf-8") as fh:
            expect = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        return [f"cannot read expectations {expect_path}: {err}"]
    errors = []
    windows = doc["timeseries"]["windows"]
    if "windows" in expect and len(windows) != expect["windows"]:
        errors.append(f"expected {expect['windows']} windows, snapshot has {len(windows)}")
    for name, value in expect.get("counters", {}).items():
        got = doc.get("counters", {}).get(name)
        if got != value:
            errors.append(f"expected counter {name}={value}, snapshot has {got}")
    alerts = doc.get("alerts", {})
    exp_alerts = expect.get("alerts", {})
    for field in ("fired", "resolved"):
        if field in exp_alerts and alerts.get(field) != exp_alerts[field]:
            errors.append(f"expected alerts.{field}={exp_alerts[field]}, "
                          f"snapshot has {alerts.get(field)}")
    final = {r["name"]: r["state"] for r in alerts.get("rules", [])}
    for rule, state in exp_alerts.get("final", {}).items():
        if final.get(rule) != state:
            errors.append(f"expected rule {rule} to end {state!r}, "
                          f"snapshot has {final.get(rule)!r}")
    return errors


def print_table(header: list[str], rows: list[list[str]]) -> None:
    widths = [max(len(header[i]), *(len(r[i]) for r in rows)) if rows else len(header[i])
              for i in range(len(header))]
    print("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    print("  ".join("-" * w for w in widths))
    for r in rows:
        print("  ".join(c.ljust(w) for c, w in zip(r, widths)))


def report(doc: dict) -> None:
    ts = doc["timeseries"]
    windows = ts["windows"]
    print(f"{len(windows)} windows, interval {ts['interval_us'] / 1e6:.0f}s\n")

    print("Per-window activity:")
    rows = []
    for w in windows:
        fetches = w.get("counters", {}).get("run.object_fetches", 0)
        hit_ratio = w.get("gauges", {}).get("ap.cache.hit_ratio")
        total = w.get("histograms", {}).get("client.total_ms")
        rows.append([
            str(w["index"]),
            f"{w['start_us'] / 1e6:.0f}-{w['end_us'] / 1e6:.0f}s",
            str(sum(w.get("counters", {}).values())),
            f"{hit_ratio:.3f}" if hit_ratio is not None else "-",
            f"{total['p99']:.1f}" if total else "-",
            str(total["count"]) if total else "0",
        ])
    print_table(["window", "span", "Σdeltas", "hit_ratio", "total p99 ms", "samples"], rows)

    alerts = doc.get("alerts")
    if alerts:
        print(f"\nAlerts: {alerts.get('fired', 0)} fired, "
              f"{alerts.get('resolved', 0)} resolved")
        rows = [[str(t["window"]), t["rule"], t["from"], t["to"], f"{t.get('value', 0):g}"]
                for t in alerts.get("transitions", [])]
        if rows:
            print_table(["window", "rule", "from", "to", "value"], rows)
        rows = [[r["name"], r["state"],
                 f"{r['metric']} {r['op']} {r['threshold']:g} over {r['for_windows']}"]
                for r in alerts.get("rules", [])]
        if rows:
            print("\nFinal rule states:")
            print_table(["rule", "state", "condition"], rows)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("snapshot", help="ape.obs.v1 JSON written by --timeline-out")
    parser.add_argument("--validate", action="store_true",
                        help="check invariants; exit 1 on any violation")
    parser.add_argument("--expect", metavar="JSON",
                        help="expectations file pinning window count / counter "
                             "totals / alert outcomes")
    args = parser.parse_args()

    doc = load(args.snapshot)
    errors = check_monotonicity(doc["timeseries"]["windows"])
    errors += check_delta_sums(doc)
    errors += check_alerts(doc)
    if args.expect:
        errors += check_expectations(doc, args.expect)

    if errors:
        for e in errors:
            print(f"error: {e}", file=sys.stderr)
        print(f"FAIL: {len(errors)} violation(s) in {args.snapshot}", file=sys.stderr)
        return 1

    if args.validate:
        n = len(doc["timeseries"]["windows"])
        print(f"OK: {n} windows validated; deltas reconcile exactly and the "
              "alert log is legal")
        return 0

    report(doc)
    return 0


if __name__ == "__main__":
    sys.exit(main())

// Microbenchmarks: object-store operations under each eviction policy —
// the per-request cache work on the AP's hot path.
#include <benchmark/benchmark.h>

#include "bench_micro_common.hpp"

#include "cache/fifo_policy.hpp"
#include "cache/lfu_policy.hpp"
#include "cache/lru_policy.hpp"
#include "cache/object_store.hpp"
#include "core/frequency_tracker.hpp"
#include "core/pacm_policy.hpp"
#include "sim/rng.hpp"

namespace {

using namespace ape;
using cache::CacheEntry;
using cache::CacheStore;

CacheEntry make_entry(std::size_t i, sim::Rng& rng) {
  CacheEntry e;
  e.key = "obj" + std::to_string(i);
  e.size_bytes = static_cast<std::size_t>(rng.uniform_int(1'000, 100'000));
  e.app_id = static_cast<std::uint32_t>(i % 30);
  e.priority = rng.bernoulli(0.4) ? 2 : 1;
  e.expires = sim::Time{sim::seconds(3600.0)};
  e.fetch_latency = sim::milliseconds(rng.uniform_real(20.0, 50.0));
  return e;
}

template <typename PolicyFactory>
void churn(benchmark::State& state, PolicyFactory factory) {
  for (auto _ : state) {
    state.PauseTiming();
    CacheStore store(5'000'000, factory());
    sim::Rng rng(23);
    state.ResumeTiming();
    for (std::size_t i = 0; i < 500; ++i) {
      store.insert(make_entry(i, rng), sim::Time{sim::seconds(static_cast<double>(i))});
      benchmark::DoNotOptimize(
          store.get("obj" + std::to_string(i / 2), sim::Time{sim::seconds(1.0)}));
    }
    benchmark::DoNotOptimize(store.used_bytes());
  }
}

void BM_ChurnLru(benchmark::State& state) {
  churn(state, [] { return std::make_unique<cache::LruPolicy>(); });
}
BENCHMARK(BM_ChurnLru);

void BM_ChurnFifo(benchmark::State& state) {
  churn(state, [] { return std::make_unique<cache::FifoPolicy>(); });
}
BENCHMARK(BM_ChurnFifo);

void BM_ChurnLfu(benchmark::State& state) {
  churn(state, [] { return std::make_unique<cache::LfuPolicy>(); });
}
BENCHMARK(BM_ChurnLfu);

void BM_ChurnPacm(benchmark::State& state) {
  static sim::Simulator sim;
  static core::ApeConfig config;
  static core::FrequencyTracker freq(config.alpha, config.frequency_window);
  for (core::AppId a = 0; a < 30; ++a) freq.record_request(a, sim.now());
  churn(state, [] { return std::make_unique<core::PacmPolicy>(config, sim, freq); });
}
BENCHMARK(BM_ChurnPacm);

void BM_HitLookup(benchmark::State& state) {
  CacheStore store(50'000'000, std::make_unique<cache::LruPolicy>());
  sim::Rng rng(29);
  for (std::size_t i = 0; i < 400; ++i) {
    store.insert(make_entry(i, rng), sim::Time{});
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        store.get("obj" + std::to_string(i++ % 400), sim::Time{sim::seconds(1.0)}));
  }
}
BENCHMARK(BM_HitLookup);

}  // namespace

APE_MICRO_BENCH_MAIN("micro_cache")

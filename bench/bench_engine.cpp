// bench_engine — pure event-engine throughput.
//
// Drives sim::Simulator directly (no network stack, no runtimes) with a
// synthetic fleet shaped like the Wi-Cache hot path: every simulated
// request is a short-horizon event chain (wifi uplink → AP service →
// wifi downlink) guarded by a 2 s timeout that is scheduled on arrival
// and cancelled on completion — so the bench exercises exactly what the
// real topology runs stress: dense sub-10 ms scheduling, heavy
// schedule-then-cancel tombstone churn, and a sprinkle of far-future
// maintenance timers that live beyond any short-horizon fast path.
//
// Output contract:
//   * stable counters (engine.requests_completed, engine.sim.*, and the
//     order-sensitive engine.order_digest) are pure sim-time facts — any
//     scheduler change that reorders events flips the digest, so the
//     committed baseline doubles as a determinism oracle;
//   * wall-clock-derived rates (engine.events_per_sec,
//     engine.requests_per_sec, engine.wall_seconds) are
//     Volatility::Volatile gauges, exported under "volatile" and watched
//     by the engine-perf CI lane with a generous floor.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "obs/wallclock.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace {

using ape::sim::Duration;
using ape::sim::Simulator;
using ape::sim::Time;

struct EngineParams {
  std::size_t clients = 100000;       // concurrent request chains
  double sim_seconds = 30.0;  // simulated horizon (CLI unit)  // ape-lint: allow(raw-seconds)
  double mean_gap_ms = 2000.0;        // per-client exponential think time
  std::size_t maintenance_timers = 64;  // far-future periodic timers
};

// One synthetic fleet: each client loops { think, request chain }, with a
// timeout armed per request and cancelled on completion.  All latencies
// are drawn from one shared Rng *in event-fire order*, so the stream of
// draws — and therefore every stable counter below — is a function of the
// scheduler's ordering contract.
class EngineBench {
 public:
  EngineBench(const EngineParams& params) : params_(params) {
    timeout_.resize(params_.clients, 0);
  }

  void run() {
    for (std::size_t c = 0; c < params_.clients; ++c) schedule_think(c);
    for (std::size_t i = 0; i < params_.maintenance_timers; ++i) {
      // Staggered starts so the far timers do not all land on one instant.
      const auto offset = ape::sim::milliseconds(
          static_cast<std::int64_t>(1 + i * kMaintenancePeriodMs / std::max<std::size_t>(params_.maintenance_timers, 1)));
      sim_.schedule_in(offset, [this] { maintenance(); });
    }
    sim_.run_until(Time{ape::sim::microseconds(
        static_cast<std::int64_t>(params_.sim_seconds * 1e6))});
  }

  [[nodiscard]] const Simulator& sim() const noexcept { return sim_; }
  [[nodiscard]] std::uint64_t requests_started() const noexcept { return started_; }
  [[nodiscard]] std::uint64_t requests_completed() const noexcept { return completed_; }
  [[nodiscard]] std::uint64_t timeouts_fired() const noexcept { return timeouts_fired_; }
  [[nodiscard]] std::uint64_t maintenance_fired() const noexcept { return maintenance_fired_; }
  [[nodiscard]] std::uint64_t order_digest() const noexcept { return digest_; }

 private:
  static constexpr std::int64_t kMaintenancePeriodMs = 30000;  // beyond any horizon
  static constexpr std::int64_t kTimeoutMs = 2000;

  void schedule_think(std::size_t c) {
    const double gap_us = rng_.exponential(params_.mean_gap_ms * 1000.0);
    sim_.schedule_in(ape::sim::microseconds(static_cast<std::int64_t>(gap_us) + 1),
                     [this, c] { arrive(c); });
  }

  void arrive(std::size_t c) {
    ++started_;
    timeout_[c] = sim_.schedule_in(ape::sim::milliseconds(kTimeoutMs),
                                   [this, c] { timed_out(c); });
    sim_.schedule_in(wifi_hop(), [this, c] { uplink_done(c); });
  }

  void uplink_done(std::size_t c) {
    const auto service = ape::sim::microseconds(rng_.uniform_int(100, 500));
    sim_.schedule_in(service, [this, c] { service_done(c); });
  }

  void service_done(std::size_t c) {
    sim_.schedule_in(wifi_hop(), [this, c] { complete(c); });
  }

  void complete(std::size_t c) {
    sim_.cancel(timeout_[c]);
    timeout_[c] = 0;
    ++completed_;
    mix(static_cast<std::uint64_t>(c));
    mix(static_cast<std::uint64_t>(sim_.now().since_epoch.count()));
    schedule_think(c);
  }

  void timed_out(std::size_t c) {
    // Unreachable with these parameters (chains finish in < 7 ms); kept so
    // the bench stays honest if someone cranks the service times up.
    ++timeouts_fired_;
    timeout_[c] = 0;
    schedule_think(c);
  }

  void maintenance() {
    ++maintenance_fired_;
    sim_.schedule_in(ape::sim::milliseconds(kMaintenancePeriodMs),
                     [this] { maintenance(); });
  }

  [[nodiscard]] Duration wifi_hop() {
    return ape::sim::microseconds(rng_.uniform_int(500, 3000));
  }

  void mix(std::uint64_t v) noexcept {  // FNV-1a over the completion stream
    digest_ ^= v;
    digest_ *= 1099511628211ULL;
  }

  EngineParams params_;
  Simulator sim_;
  ape::sim::Rng rng_{ape::bench::kSeed};
  std::vector<Simulator::EventId> timeout_;
  std::uint64_t started_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t timeouts_fired_ = 0;
  std::uint64_t maintenance_fired_ = 0;
  std::uint64_t digest_ = 14695981039346656037ULL;
};

}  // namespace

int main(int argc, char** argv) {
  ape::bench::BenchReporter reporter(argc, argv, "bench_engine");
  reporter.export_volatile(true);

  EngineParams params;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--clients" && i + 1 < argc) {
      params.clients = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--seconds" && i + 1 < argc) {
      params.sim_seconds = std::strtod(argv[++i], nullptr);
    } else if (arg == "--mean-gap-ms" && i + 1 < argc) {
      params.mean_gap_ms = std::strtod(argv[++i], nullptr);
    }
  }

  ape::bench::print_header(
      "bench_engine: sustained scheduler throughput",
      "ROADMAP scale arc — prerequisite for fleet-sized topologies");
  std::printf("clients=%zu sim_seconds=%.1f mean_gap_ms=%.0f\n\n", params.clients,
              params.sim_seconds, params.mean_gap_ms);

  EngineBench bench(params);
  const ape::obs::WallClockTimer timer(true);
  bench.run();
  const double wall_us = timer.elapsed_us();

  const auto& sim = bench.sim();
  const double wall_s = wall_us / 1e6;  // ape-lint: allow(raw-seconds) — wall-clock, not sim time
  const double events_per_sec =
      wall_s > 0.0 ? static_cast<double>(sim.events_fired()) / wall_s : 0.0;
  const double requests_per_sec =
      wall_s > 0.0 ? static_cast<double>(bench.requests_completed()) / wall_s : 0.0;

  std::printf("events fired        %12zu\n", sim.events_fired());
  std::printf("requests completed  %12" PRIu64 "\n", bench.requests_completed());
  std::printf("events cancelled    %12zu\n", sim.events_cancelled());
  std::printf("compactions         %12zu\n", sim.compactions());
  std::printf("queue high water    %12zu\n", sim.queue_high_water());
  std::printf("order digest        %12" PRIu64 "\n", bench.order_digest());
  std::printf("wall seconds        %12.3f\n", wall_s);
  std::printf("events/sec          %12.0f\n", events_per_sec);
  std::printf("requests/sec        %12.0f\n\n", requests_per_sec);

  // Stable section: pure sim-time facts, byte-identical across hosts.
  reporter.counter("engine.requests_started", bench.requests_started());
  reporter.counter("engine.requests_completed", bench.requests_completed());
  reporter.counter("engine.timeouts_fired", bench.timeouts_fired());
  reporter.counter("engine.maintenance_fired", bench.maintenance_fired());
  reporter.counter("engine.order_digest", bench.order_digest());
  reporter.counter("engine.sim.events_fired", sim.events_fired());
  reporter.counter("engine.sim.events_cancelled", sim.events_cancelled());
  reporter.counter("engine.sim.compactions", sim.compactions());
  reporter.counter("engine.sim.queue_high_water", sim.queue_high_water());
  reporter.counter("engine.sim.pending_at_end", sim.pending());

  // Volatile section: wall-clock rates for the engine-perf CI lane.
  auto& registry = reporter.metrics();
  registry.gauge("engine.events_per_sec", ape::obs::Volatility::Volatile)
      .set(events_per_sec);
  registry.gauge("engine.requests_per_sec", ape::obs::Volatility::Volatile)
      .set(requests_per_sec);
  registry.gauge("engine.wall_seconds", ape::obs::Volatility::Volatile).set(wall_s);

  return reporter.finish();
}

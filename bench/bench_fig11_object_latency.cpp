// Fig. 11: object-level caching latency.
//   (a) cache-lookup latency vs app usage frequency, per system;
//   (b) lookup latency overhead: DNS-Cache query vs regular DNS (hit /
//       recursive miss) vs two standalone queries;
//   (c) cache-retrieval latency vs app usage frequency, per system.
//
// As in the paper, lookup/retrieval are measured per stage on the cache
// hit path of each system (the AP for APE-CACHE/Wi-Cache, the edge server
// for Edge Cache), sweeping the workload's mean usage frequency.
#include "bench_common.hpp"
#include "core/url_hash.hpp"

using namespace ape;

namespace {

struct SystemPoint {
  double lookup_ms = 0.0;
  double retrieval_ms = 0.0;
  double total_ms = 0.0;
};

SystemPoint measure(testbed::System system, double freq) {
  const auto apps = bench::paper_workload();
  auto config = bench::paper_config(freq, /*duration_minutes=*/60.0);
  const auto result = run_system(system, testbed::TestbedParams{}, apps, config);

  SystemPoint point;
  if (system == testbed::System::EdgeCache) {
    point.lookup_ms = result.edge_lookup_ms.mean();
    point.retrieval_ms = result.edge_retrieval_ms.mean();
  } else {
    point.lookup_ms = result.ap_hit_lookup_ms.mean();
    point.retrieval_ms = result.ap_hit_retrieval_ms.mean();
  }
  point.total_ms = point.lookup_ms + point.retrieval_ms;
  return point;
}

void fig11b(bench::BenchReporter& reporter) {
  std::printf("--- Fig. 11b: lookup latency overhead decomposition ---\n");
  testbed::TestbedParams params;
  params.system = testbed::System::ApeCache;
  testbed::Testbed bed(params);

  workload::AppSpec app = workload::make_movie_trailer();
  bed.host_app(app);
  auto& client = bed.add_client("probe-phone");
  for (auto& spec : app.cacheables()) client.runtime->register_cacheable(spec);

  // Warm the AP cache so DNS-Cache lookups short-circuit (hit path).
  for (const auto& r : app.requests) {
    client.runtime->fetch(r.url, [](core::ClientRuntime::FetchResult) {});
    bed.simulator().run();
  }

  auto mean_of = [&](auto&& issue, int n) {
    stats::Histogram h("ms");
    for (int i = 0; i < n; ++i) {
      issue(h);
      bed.simulator().run();
    }
    return h.mean();
  };

  const std::vector<core::UrlHash> hashes{
      core::hash_url("http://api.movietrailer.app/getMovieID")};

  // 1. DNS-Cache query (piggybacked lookup) against a fully cached domain.
  const double dns_cache = mean_of(
      [&](stats::Histogram& h) {
        client.runtime->dns_cache_lookup(
            "api.movietrailer.app", hashes,
            [&h](Result<dns::DnsMessage>, sim::Duration d) { h.record(sim::to_millis(d)); });
      },
      50);

  // 2. Regular DNS query answered from the AP's cache (hit): prime once
  //    with a cacheable-mapping testbed?  The default testbed's mapping is
  //    uncacheable (TTL 0), so a regular query always recurses — that IS the
  //    "regular DNS (miss)" line.  For the hit line we query the same name
  //    twice within a short window against a TTL-30 testbed below.
  const double regular_miss = mean_of(
      [&](stats::Histogram& h) {
        client.runtime->regular_dns_lookup(
            "api.movietrailer.app",
            [&h](Result<dns::DnsMessage>, sim::Duration d) { h.record(sim::to_millis(d)); });
      },
      50);

  // 3+4 run against a testbed whose mapping is cacheable, so the regular
  // DNS leg of the standalone pair is an AP cache *hit* — isolating the
  // cost of splitting the cache query off (the paper's +7 ms).
  testbed::TestbedParams warm_params;
  warm_params.system = testbed::System::ApeCache;
  warm_params.cdn_answer_ttl = 3600;
  testbed::Testbed warm_bed(warm_params);
  warm_bed.host_app(app);
  auto& warm_client = warm_bed.add_client("probe2");
  for (auto& spec : app.cacheables()) warm_client.runtime->register_cacheable(spec);
  // Warm both the dnsmasq record cache and the object cache.
  warm_client.runtime->regular_dns_lookup("api.movietrailer.app",
                                          [](Result<dns::DnsMessage>, sim::Duration) {});
  warm_bed.simulator().run();
  for (const auto& r : app.requests) {
    warm_client.runtime->fetch(r.url, [](core::ClientRuntime::FetchResult) {});
    warm_bed.simulator().run();
  }

  double regular_hit = 0.0;
  {
    stats::Histogram h("ms");
    for (int i = 0; i < 50; ++i) {
      warm_client.runtime->regular_dns_lookup(
          "api.movietrailer.app",
          [&h](Result<dns::DnsMessage>, sim::Duration d) { h.record(sim::to_millis(d)); });
      warm_bed.simulator().run();
    }
    regular_hit = h.mean();
  }

  stats::Histogram standalone("ms");
  for (int i = 0; i < 50; ++i) {
    warm_client.runtime->fetch_standalone(
        "http://api.movietrailer.app/getMovieID",
        [&standalone](core::ClientRuntime::FetchResult r) {
          standalone.record(sim::to_millis(r.lookup_latency));
        });
    warm_bed.simulator().run();
  }

  stats::Table table;
  table.header({"Query type", "Latency ms (ours)", "Paper"});
  table.row({"regular DNS, AP cache hit", stats::Table::num(regular_hit, 2), "~4 (baseline)"});
  table.row({"DNS-Cache query (piggybacked)", stats::Table::num(dns_cache, 2),
             "hit + ~0.02 ms processing"});
  table.row({"regular DNS, recursive miss", stats::Table::num(regular_miss, 2),
             "rises steeply (>20)"});
  table.row({"two standalone queries", stats::Table::num(standalone.mean(), 2),
             "piggybacked + ~7 ms"});
  table.print(std::cout);
  std::printf("piggybacking saves %.2f ms vs standalone; DNS-Cache costs %.2f ms over a "
              "plain AP-cached DNS answer\n\n",
              standalone.mean() - dns_cache, dns_cache - regular_hit);
  reporter.gauge("fig11b.dns_cache_ms", dns_cache);
  reporter.gauge("fig11b.regular_hit_ms", regular_hit);
  reporter.gauge("fig11b.regular_miss_ms", regular_miss);
  reporter.gauge("fig11b.standalone_ms", standalone.mean());
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReporter reporter(argc, argv, "fig11_object_latency");
  bench::print_header("Fig. 11 — Object-Level Caching Latency",
                      "paper Fig. 11a/11b/11c (Sec. V-B)");

  const std::vector<double> freqs{1.0, 1.5, 2.0, 2.5, 3.0};
  const std::vector<testbed::System> systems{
      testbed::System::ApeCache, testbed::System::WiCache, testbed::System::EdgeCache};

  std::vector<std::vector<SystemPoint>> grid(systems.size());
  for (std::size_t s = 0; s < systems.size(); ++s) {
    for (double f : freqs) grid[s].push_back(measure(systems[s], f));
  }

  const std::vector<std::string> sys_names{"ape", "wicache", "edge"};
  for (std::size_t s = 0; s < systems.size(); ++s) {
    for (std::size_t i = 0; i < freqs.size(); ++i) {
      const std::string key =
          sys_names[s] + ".freq" + stats::Table::num(freqs[i], 1);
      reporter.gauge(key + ".lookup_ms", grid[s][i].lookup_ms);
      reporter.gauge(key + ".retrieval_ms", grid[s][i].retrieval_ms);
      reporter.gauge(key + ".total_ms", grid[s][i].total_ms);
    }
  }

  std::printf("--- Fig. 11a: cache lookup latency (ms) vs usage frequency ---\n");
  stats::Table lookup;
  lookup.header({"freq/min", "APE-CACHE", "Wi-Cache", "Edge Cache"});
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    lookup.row({stats::Table::num(freqs[i], 1), stats::Table::num(grid[0][i].lookup_ms, 2),
                stats::Table::num(grid[1][i].lookup_ms, 2),
                stats::Table::num(grid[2][i].lookup_ms, 2)});
  }
  lookup.print(std::cout);
  std::printf("paper: APE ~7.5 ms flat; Wi-Cache and Edge Cache exceed 22 ms\n\n");

  fig11b(reporter);

  std::printf("--- Fig. 11c: cache retrieval latency (ms) vs usage frequency ---\n");
  stats::Table retrieval;
  retrieval.header({"freq/min", "APE-CACHE", "Wi-Cache", "Edge Cache"});
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    retrieval.row({stats::Table::num(freqs[i], 1),
                   stats::Table::num(grid[0][i].retrieval_ms, 2),
                   stats::Table::num(grid[1][i].retrieval_ms, 2),
                   stats::Table::num(grid[2][i].retrieval_ms, 2)});
  }
  retrieval.print(std::cout);
  std::printf("paper: APE/Wi-Cache ~7 ms (AP proximity); Edge Cache ~30 ms\n\n");

  std::printf("--- Summary: overall single-object latency at freq=3 ---\n");
  stats::Table summary;
  summary.header({"System", "lookup + retrieval ms (ours)", "Paper"});
  summary.row({"APE-CACHE", stats::Table::num(grid[0].back().total_ms, 2), "14.24"});
  summary.row({"Wi-Cache", stats::Table::num(grid[1].back().total_ms, 2), "29.50"});
  summary.row({"Edge Cache", stats::Table::num(grid[2].back().total_ms, 2), "55.93"});
  summary.print(std::cout);
  const double vs_wicache = 1.0 - grid[0].back().total_ms / grid[1].back().total_ms;
  const double vs_edge = 1.0 - grid[0].back().total_ms / grid[2].back().total_ms;
  std::printf("reduction vs Wi-Cache: %.1f%% (paper 51.7%%); vs Edge Cache: %.1f%% "
              "(paper 74.5%%)\n",
              vs_wicache * 100.0, vs_edge * 100.0);
  return reporter.finish();
}

// Fig. 13: average app-level latency of all 30 apps under the four
// systems, sweeping (a) object size, (b) usage frequency, (c) app
// quantity (paper Sec. V-D).
#include "bench_common.hpp"

using namespace ape;

namespace {

const std::vector<testbed::System> kSystems{
    testbed::System::ApeCache, testbed::System::ApeCacheLru, testbed::System::WiCache,
    testbed::System::EdgeCache};

double run_point(testbed::System system, std::size_t apps, std::size_t max_kb, double freq) {
  const auto workload = bench::paper_workload(apps, max_kb);
  const auto result = testbed::run_system(system, testbed::TestbedParams{}, workload,
                                          bench::paper_config(freq, 45.0));
  return result.app_latency_ms.mean();
}

template <typename T, typename Fn>
void sweep(const std::string& title, const std::string& expectation,
           const std::vector<T>& xs, Fn point, const std::string& x_label) {
  std::printf("--- %s ---\n", title.c_str());
  stats::Table table;
  table.header({x_label, "APE-CACHE", "APE-CACHE-LRU", "Wi-Cache", "Edge Cache"});
  for (const T& x : xs) {
    std::vector<std::string> row{[&] {
      if constexpr (std::is_floating_point_v<T>) {
        return stats::Table::num(x, 1);
      } else {
        return std::to_string(x);
      }
    }()};
    for (testbed::System system : kSystems) row.push_back(stats::Table::num(point(system, x), 1));
    table.row(std::move(row));
  }
  table.print(std::cout);
  std::printf("paper: %s\n\n", expectation.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReporter reporter(argc, argv, "fig13_applevel_latency");
  bench::print_header("Fig. 13 — Average App-Level Latency Under Various Settings",
                      "paper Fig. 13a/13b/13c (Sec. V-D)");

  sweep<std::size_t>(
      "Fig. 13a: latency (ms) vs data object size",
      "latency grows with object size everywhere; APE-CACHE lowest across the board",
      {100, 200, 300, 400, 500},
      [](testbed::System s, std::size_t kb) { return run_point(s, 30, kb, 3.0); },
      "max kB");

  sweep<double>(
      "Fig. 13b: latency (ms) vs app usage frequency",
      "higher frequency -> better hit ratios -> lower latency for the AP-cached systems",
      {1.0, 1.5, 2.0, 2.5, 3.0},
      [](testbed::System s, double f) { return run_point(s, 30, 100, f); },
      "freq/min");

  sweep<std::size_t>(
      "Fig. 13c: latency (ms) vs app quantity",
      "latency rises with app count as cache pressure grows; at the default point the "
      "paper reports APE 30 / APE-LRU 42 / Wi-Cache 54 / Edge 122 ms (-29%/-44%/-76%)",
      {5, 10, 15, 20, 25, 30},
      [](testbed::System s, std::size_t n) { return run_point(s, n, 100, 3.0); },
      "apps");

  // Headline numbers at the default setting.
  const double ape = run_point(testbed::System::ApeCache, 30, 100, 3.0);
  const double lru = run_point(testbed::System::ApeCacheLru, 30, 100, 3.0);
  const double wic = run_point(testbed::System::WiCache, 30, 100, 3.0);
  const double edge = run_point(testbed::System::EdgeCache, 30, 100, 3.0);
  std::printf("default setting: APE %.1f / APE-LRU %.1f / Wi-Cache %.1f / Edge %.1f ms\n",
              ape, lru, wic, edge);
  reporter.gauge("default.ape_ms", ape);
  reporter.gauge("default.ape_lru_ms", lru);
  reporter.gauge("default.wicache_ms", wic);
  reporter.gauge("default.edge_ms", edge);
  std::printf("reductions: vs APE-LRU %.0f%% (paper 29%%), vs Wi-Cache %.0f%% (paper 44%%), "
              "vs Edge %.0f%% (paper 76%%)\n",
              (1 - ape / lru) * 100, (1 - ape / wic) * 100, (1 - ape / edge) * 100);
  return reporter.finish();
}

// Microbenchmarks: DNS wire codec throughput (encode/decode, with and
// without the DNS-Cache RR) — the per-query CPU work the AP's dnsmasq
// replacement performs on every lookup.
#include <benchmark/benchmark.h>

#include "bench_micro_common.hpp"

#include "core/dns_cache_record.hpp"
#include "core/url_hash.hpp"
#include "dns/codec.hpp"

namespace {

using namespace ape;

dns::DnsMessage make_query(std::size_t cache_entries) {
  dns::DnsMessage m;
  m.header.id = 0x1234;
  m.header.rd = true;
  const auto domain = dns::DnsName::parse("api.movietrailer.app").value();
  m.questions.push_back(dns::Question{domain, dns::RrType::A, dns::RrClass::In});
  if (cache_entries > 0) {
    std::vector<core::CacheLookupEntry> entries;
    for (std::size_t i = 0; i < cache_entries; ++i) {
      entries.push_back(core::CacheLookupEntry{
          core::hash_url("http://api.movietrailer.app/obj" + std::to_string(i)),
          core::CacheFlag::Delegation});
    }
    m.additionals.push_back(core::make_cache_request_rr(domain, entries));
  }
  return m;
}

dns::DnsMessage make_response(std::size_t answers) {
  dns::DnsMessage m = make_query(0);
  m.header.qr = true;
  const auto name = m.questions[0].name;
  for (std::size_t i = 0; i < answers; ++i) {
    m.answers.push_back(
        dns::make_a_record(name, net::IpAddress::from_octets(10, 0, 0, 1), 30));
  }
  return m;
}

void BM_EncodePlainQuery(benchmark::State& state) {
  const auto msg = make_query(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dns::encode(msg));
  }
}
BENCHMARK(BM_EncodePlainQuery);

void BM_EncodeDnsCacheQuery(benchmark::State& state) {
  const auto msg = make_query(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dns::encode(msg));
  }
}
BENCHMARK(BM_EncodeDnsCacheQuery)->Arg(1)->Arg(5)->Arg(20);

void BM_DecodeDnsCacheQuery(benchmark::State& state) {
  const auto wire = dns::encode(make_query(static_cast<std::size_t>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dns::decode(wire));
  }
}
BENCHMARK(BM_DecodeDnsCacheQuery)->Arg(1)->Arg(5)->Arg(20);

void BM_DecodeResponseWithCompression(benchmark::State& state) {
  const auto wire = dns::encode(make_response(static_cast<std::size_t>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dns::decode(wire));
  }
}
BENCHMARK(BM_DecodeResponseWithCompression)->Arg(1)->Arg(4)->Arg(16);

void BM_HashUrl(benchmark::State& state) {
  const std::string url = "http://api.movietrailer.app/getThumbnail";
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::hash_url(url));
  }
}
BENCHMARK(BM_HashUrl);

void BM_CacheRdataRoundTrip(benchmark::State& state) {
  std::vector<core::CacheLookupEntry> entries;
  for (int i = 0; i < state.range(0); ++i) {
    entries.push_back(core::CacheLookupEntry{static_cast<std::uint64_t>(i) * 7919u,
                                             core::CacheFlag::CacheHit});
  }
  for (auto _ : state) {
    auto rdata = core::encode_cache_rdata(entries);
    benchmark::DoNotOptimize(core::decode_cache_rdata(rdata));
  }
}
BENCHMARK(BM_CacheRdataRoundTrip)->Arg(1)->Arg(8)->Arg(64);

}  // namespace

APE_MICRO_BENCH_MAIN("micro_dns_codec")

// Table VII: programming-effort comparison between the declarative
// annotation model and the API-based alternative (paper Sec. V-F).
//
// Impacted LoC for the annotation model = one @Cacheable line per object;
// for the API model every HTTP request site touching a cacheable object is
// rewritten (~3 lines each: the call plus priority/TTL plumbing).  Request
// site counts mirror the evaluated apps.
#include "bench_common.hpp"

#include "core/programming_model.hpp"

using namespace ape;

int main(int argc, char** argv) {
  bench::BenchReporter reporter(argc, argv, "table7_programming_effort");
  bench::print_header("Table VII — Programming Efforts Comparison",
                      "paper Table VII (Sec. V-F)");

  struct AppCase {
    workload::AppSpec spec;
    std::size_t request_sites;  // HTTP call sites touching cacheable objects
    std::size_t paper_annotation_locs;
    std::size_t paper_api_locs;
  };
  const std::vector<AppCase> cases{
      {workload::make_movie_trailer(), 10, 5, 30},
      {workload::make_virtual_home(), 5, 2, 14},
  };

  stats::Table table;
  table.header({"App", "Approach", "Impacted LoCs (ours)", "(paper)", "Re-write logic"});
  for (const auto& c : cases) {
    core::AnnotatedApp annotated(c.spec.name, c.spec.id);
    for (const auto& r : c.spec.requests) {
      annotated.cacheable_field(r.name, r.url, r.priority, r.ttl_minutes);
    }
    const auto effort = core::measure_effort(annotated, c.request_sites);
    table.row({c.spec.name, "APE-CACHE (annotations)",
               std::to_string(effort.annotation_locs),
               std::to_string(c.paper_annotation_locs), "No"});
    table.row({c.spec.name, "API-based", std::to_string(effort.api_locs),
               std::to_string(c.paper_api_locs), "Yes"});
    reporter.counter(c.spec.name + ".annotation_locs", effort.annotation_locs);
    reporter.counter(c.spec.name + ".api_locs", effort.api_locs);
  }
  table.print(std::cout);

  bench::print_note(
      "Both models add the same ~32 kB runtime to the app binary (the modified HTTP client "
      "library); only the annotation model leaves the application logic untouched.  "
      "VirtualHome's two annotations match the paper exactly; MovieTrailer declares one "
      "annotation per cacheable field (5) vs the paper's 5 impacted lines.");
  return reporter.finish();
}

// Shared machinery for the Tables IV/V/VI hit-ratio sweeps: run the same
// workload under PACM (APE-CACHE) and LRU (APE-CACHE-LRU) and report the
// average and high-priority hit ratios.
#pragma once

#include "bench_common.hpp"

namespace ape::bench {

struct HitRatioRow {
  double pacm_avg = 0.0;
  double pacm_high = 0.0;
  double lru_avg = 0.0;
  double lru_high = 0.0;
};

// `reporter` + `label` (optional) record the point: headline gauges
// `<label>.pacm_avg` / `.pacm_high` / `.lru_avg` / `.lru_high`, plus both
// systems' full registries under `<label>.pacm.*` and `<label>.lru.*`.
inline HitRatioRow hit_ratio_point(std::size_t app_count, std::size_t max_object_kb,
                                   double freq_per_min, double duration_minutes = 60.0,
                                   BenchReporter* reporter = nullptr,
                                   const std::string& label = "") {
  const auto apps = paper_workload(app_count, max_object_kb);
  const auto config = paper_config(freq_per_min, duration_minutes);

  const auto pacm =
      testbed::run_system(testbed::System::ApeCache, testbed::TestbedParams{}, apps, config);
  const auto lru = testbed::run_system(testbed::System::ApeCacheLru,
                                       testbed::TestbedParams{}, apps, config);
  HitRatioRow row;
  row.pacm_avg = pacm.hit_ratio();
  row.pacm_high = pacm.high_priority_hit_ratio();
  row.lru_avg = lru.hit_ratio();
  row.lru_high = lru.high_priority_hit_ratio();

  if (reporter != nullptr && !label.empty()) {
    reporter->gauge(label + ".pacm_avg", row.pacm_avg);
    reporter->gauge(label + ".pacm_high", row.pacm_high);
    reporter->gauge(label + ".lru_avg", row.lru_avg);
    reporter->gauge(label + ".lru_high", row.lru_high);
    reporter->merge_run(pacm, label + ".pacm");
    reporter->merge_run(lru, label + ".lru");
  }
  return row;
}

}  // namespace ape::bench

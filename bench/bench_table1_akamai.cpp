// Table I: DNS resolution latency, ping RTT and hop count from three
// client locations to the Akamai-served properties of Apple, Microsoft
// and Yahoo (paper Sec. II-B).
//
// 100 resolutions per pair, spaced wider than the CDN mapping TTL, then
// pings against the resolved address — the same procedure as the paper's
// Python/ping/traceroute tooling, over the simulated WAN.
#include "bench_common.hpp"
#include "testbed/wan.hpp"

namespace {

struct PaperRow {
  double dns, rtt;
  std::size_t hops;
};
// [location][service], from the published table.
constexpr PaperRow kPaper[3][3] = {
    {{18, 34, 13}, {19, 33, 13}, {21, 53, 16}},
    {{18, 22, 7}, {26, 27, 10}, {27, 93, 13}},
    {{20, 19, 12}, {26, 19, 10}, {226, 156, 15}},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace ape;
  bench::BenchReporter reporter(argc, argv, "table1_akamai");
  bench::print_header("Table I — Performance Measurement of Akamai Caching",
                      "paper Table I (Sec. II-B empirical study)");

  testbed::WanFixture wan;
  const auto rows = wan.measure(/*query_count=*/100);

  stats::Table table;
  table.header({"Location", "Service", "DNS ms (paper)", "DNS ms (ours)", "RTT ms (paper)",
                "RTT ms (ours)", "Hops (paper)", "Hops (ours)", "Origin?"});
  std::size_t idx = 0;
  for (std::size_t l = 0; l < 3; ++l) {
    for (std::size_t s = 0; s < 3; ++s, ++idx) {
      const auto& m = rows[idx];
      const auto& p = kPaper[l][s];
      table.row({m.location, m.service, stats::Table::num(p.dns, 0),
                 stats::Table::num(m.dns_resolution_ms, 1), stats::Table::num(p.rtt, 0),
                 stats::Table::num(m.rtt_ms, 1), std::to_string(p.hops),
                 std::to_string(m.hops), m.served_from_origin ? "yes" : "no"});
    }
  }
  table.print(std::cout);

  double dns_sum = 0, rtt_sum = 0, hops_sum = 0;
  for (const auto& m : rows) {
    dns_sum += m.dns_resolution_ms;
    rtt_sum += m.rtt_ms;
    hops_sum += static_cast<double>(m.hops);
  }
  reporter.gauge("akamai.dns_ms_avg", dns_sum / 9.0);
  reporter.gauge("akamai.rtt_ms_avg", rtt_sum / 9.0);
  reporter.gauge("akamai.hops_avg", hops_sum / 9.0);
  for (const auto& m : rows) {
    const std::string key = m.location + "." + m.service;
    reporter.gauge(key + ".dns_ms", m.dns_resolution_ms);
    reporter.gauge(key + ".rtt_ms", m.rtt_ms);
    reporter.counter(key + ".hops", m.hops);
  }
  std::printf("\naverages: DNS %.1f ms (paper ~44 incl. outlier, ~22 without), "
              "RTT %.1f ms (paper ~38), hops %.1f (paper ~13)\n",
              dns_sum / 9.0, rtt_sum / 9.0, hops_sum / 9.0);
  ape::bench::print_note(
      "Yahoo/Sao-Paulo resolves to the origin (no regional cache deployment), "
      "reproducing the paper's observation that missing coverage forces slow origin fetches.");
  return reporter.finish();
}

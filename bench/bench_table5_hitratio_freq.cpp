// Table V: cache hit ratio vs average app usage frequency (paper Sec. V-C).
// 30 apps, objects 1-100 kB, 5 MB AP cache, one hour; frequency swept
// 1..3 runs/minute.
#include "bench_hitratio_common.hpp"

int main(int argc, char** argv) {
  using namespace ape;
  bench::BenchReporter reporter(argc, argv, "table5_hitratio_freq");
  bench::print_header("Table V — Cache Hit Ratio vs. Avg. App Usage Frequency",
                      "paper Table V (Sec. V-C, PACM vs LRU)");

  struct PaperRow {
    double avg, high, lru;
  };
  const std::vector<std::pair<double, PaperRow>> sweeps{
      {1.0, {0.507, 0.743, 0.512}}, {1.5, {0.563, 0.766, 0.566}},
      {2.0, {0.626, 0.774, 0.625}}, {2.5, {0.627, 0.810, 0.628}},
      {3.0, {0.632, 0.832, 0.631}},
  };

  stats::Table table;
  table.header({"Avg. frequency", "PACM-Avg", "(paper)", "PACM-High", "(paper)", "LRU",
                "(paper)"});
  for (const auto& [freq, paper] : sweeps) {
    const auto row = bench::hit_ratio_point(/*apps=*/30, /*max_kb=*/100, freq,
                                            /*duration_minutes=*/60.0, &reporter,
                                            "freq" + stats::Table::num(freq, 1));
    table.row({stats::Table::num(freq, 1), stats::Table::num(row.pacm_avg, 3),
               stats::Table::num(paper.avg, 3), stats::Table::num(row.pacm_high, 3),
               stats::Table::num(paper.high, 3), stats::Table::num(row.lru_avg, 3),
               stats::Table::num(paper.lru, 3)});
  }
  table.print(std::cout);
  bench::print_note(
      "Expected shape: lower frequency lets objects expire between uses, mildly lowering "
      "hit ratios; PACM-High stays well above LRU across the sweep.");
  return reporter.finish();
}

// Fig. 2: CPU and memory utilization of the WiFi router while replaying
// the low-rate and high-rate traffic captures (paper Sec. II-C).
//
// The synthetic traces (Table II statistics) are replayed into the AP's
// packet-forwarding path; the resource meter samples utilization every
// 10 seconds for the 5-minute replay.
#include "bench_common.hpp"
#include "workload/traffic_trace.hpp"

namespace {

void replay(const ape::workload::TraceSpec& spec, ape::bench::BenchReporter& reporter) {
  using namespace ape;

  testbed::TestbedParams params;
  params.system = testbed::System::ApeCache;
  testbed::Testbed bed(params);

  sim::Rng rng(bench::kSeed);
  const auto packets = workload::generate_trace(spec, rng);
  // Per-flow NAT/conntrack state for the active flow population.
  workload::replay_trace(packets, bed.ap(), bed.simulator());

  auto& meter = bed.meter_ap(sim::seconds(10.0), sim::Time{spec.duration});
  bed.simulator().run();

  std::printf("--- %s traffic (%zu pkts, %zu flows, %zu apps) ---\n", spec.name.c_str(),
              spec.packets, spec.flows, spec.app_count);
  stats::Table table;
  table.header({"t (s)", "CPU %", "Memory MB"});
  for (const auto& s : meter.samples()) {
    table.row({stats::Table::num(s.at.seconds(), 0),
               stats::Table::num(s.cpu_utilization * 100.0, 1),
               stats::Table::num(s.memory_mb, 1)});
  }
  table.print(std::cout);
  std::printf("mean CPU %.1f%%  peak CPU %.1f%%  mean mem %.1f MB  peak mem %.1f MB\n\n",
              meter.mean_cpu() * 100.0, meter.peak_cpu() * 100.0, meter.mean_memory_mb(),
              meter.peak_memory_mb());
  reporter.gauge(spec.name + ".cpu_mean_pct", meter.mean_cpu() * 100.0);
  reporter.gauge(spec.name + ".cpu_peak_pct", meter.peak_cpu() * 100.0);
  reporter.gauge(spec.name + ".mem_mean_mb", meter.mean_memory_mb());
  reporter.gauge(spec.name + ".mem_peak_mb", meter.peak_memory_mb());
  reporter.counter(spec.name + ".packets", packets.size());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ape;
  bench::BenchReporter reporter(argc, argv, "fig2_router_load");
  bench::print_header("Fig. 2 — CPU/Memory Usage of WiFi Router under traffic replay",
                      "paper Fig. 2 (Sec. II-C feasibility study)");

  replay(workload::low_rate_trace(), reporter);
  replay(workload::high_rate_trace(), reporter);

  bench::print_note(
      "Paper findings to match: memory hovers near ~120 MB under high traffic, CPU stays "
      "well below 50%, leaving headroom for AP-side caching.");
  return reporter.finish();
}

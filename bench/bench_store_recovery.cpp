// Warm vs cold AP restart with the tiered store (DESIGN.md §"Storage
// tiers & recovery"): phase 1 warms the cache, the AP then "crashes" and
// is rebuilt, and phase 2 re-runs the same arrival process.  Three
// scenarios differ only in what survives the crash:
//
//   warm  — flash tier enabled, journal preserved: mount replays it, so
//           every demoted object is immediately servable again,
//   cold  — flash tier enabled, media wiped: restart from nothing but
//           with the same steady-state behaviour as `warm`,
//   ram   — no flash tier at all: the pre-tiering AP, every restart cold.
//
// The headline number is the *recovery ratio* — phase-2 hit ratio over
// phase-1 hit ratio — which the warm scenario must keep above 0.9.  The
// `--json` snapshot is committed as bench/baselines/store_recovery.json
// and diffed by scripts/check_bench_regression.py in CI.
#include <memory>
#include <vector>

#include "bench_common.hpp"

using namespace ape;

namespace {

struct PhaseResult {
  std::size_t object_fetches = 0;
  std::size_t failures = 0;
  std::size_t ap_hits = 0;
  stats::Histogram total_ms;

  [[nodiscard]] double hit_ratio() const noexcept {
    return object_fetches == 0
               ? 0.0
               : static_cast<double>(ap_hits) / static_cast<double>(object_fetches);
  }
};

struct ScenarioResult {
  PhaseResult before;  // phase 1, up to the crash
  PhaseResult after;   // phase 2, from the restart on

  [[nodiscard]] double recovery_ratio() const noexcept {
    return before.hit_ratio() == 0.0 ? 0.0 : after.hit_ratio() / before.hit_ratio();
  }
};

// One crash/restart run.  Both phases use the same Zipf+Poisson arrival
// process (fresh schedule per phase, deterministic seeds), so phase 2 asks
// for the same popular objects phase 1 cached.
ScenarioResult run_scenario(testbed::Testbed& bed,
                            const std::vector<workload::AppSpec>& apps,
                            const testbed::WorkloadConfig& config, sim::Duration phase,
                            bool preserve_flash) {
  auto result = std::make_shared<ScenarioResult>();
  auto* phase_sink = &result->before;

  auto& client = bed.add_client("client-0");
  std::vector<std::unique_ptr<testbed::AppDriver>> drivers;
  drivers.reserve(apps.size());
  for (const auto& app : apps) {
    bed.host_app(app);
    for (auto& spec : app.cacheables()) client.runtime->register_cacheable(spec);
    drivers.push_back(
        std::make_unique<testbed::AppDriver>(bed.simulator(), app, *client.fetcher));
  }

  auto on_run_done = [result, &phase_sink](testbed::AppRunResult run) {
    for (const auto& obj : run.objects) {
      PhaseResult& sink = *phase_sink;
      ++sink.object_fetches;
      if (!obj.result.success) {
        ++sink.failures;
        continue;
      }
      sink.total_ms.record(sim::to_millis(obj.result.total));
      if (obj.result.source == core::ClientRuntime::Source::ApCache) ++sink.ap_hits;
    }
  };

  auto plant_arrivals = [&](std::uint64_t seed, sim::Time from, sim::Time until) {
    sim::Rng rng(seed);
    workload::ArrivalSchedule arrivals(apps.size(), config.mean_freq_per_min,
                                       config.zipf_exponent, rng);
    while (auto arrival = arrivals.next(sim::Time{until - from})) {
      testbed::AppDriver* driver = drivers[arrival->app_index].get();
      bed.simulator().schedule_at(from + (arrival->at - sim::Time{}),
                                  [driver, on_run_done] { driver->run_once(on_run_done); });
    }
  };

  const sim::Duration drain = sim::seconds(30.0);

  // Phase 1: warm up, then drain so no CPU or flash work is in flight.
  plant_arrivals(config.seed, sim::Time{}, sim::Time{phase});
  bed.simulator().run_until(sim::Time{phase} + drain);

  // The crash: RAM state dies with the ApRuntime; the journal survives it
  // only in the warm scenario.
  bed.restart_ap(preserve_flash);
  phase_sink = &result->after;

  // Phase 2: same arrival process against the restarted AP.
  const sim::Time resume = sim::Time{phase} + 2 * drain;
  plant_arrivals(config.seed + 1, resume, resume + phase);
  bed.simulator().run_until(resume + phase + drain);

  bed.collect_metrics();
  return std::move(*result);
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReporter reporter(argc, argv, "store_recovery");
  bench::print_header("Store recovery — warm vs cold AP restart",
                      "no paper counterpart; evaluates src/store's journaled flash tier");

  const auto apps = bench::paper_workload(/*app_count=*/10, /*max_object_kb=*/100);
  auto config = bench::paper_config(/*freq_per_min=*/3.0, /*duration_minutes=*/10.0);
  const sim::Duration phase = config.duration;

  // Tight RAM over a roomy flash: steady demotion traffic, so a crash has
  // something real to lose.  LRU keeps victim selection (and therefore
  // the demotion stream) deterministic and policy-independent.
  testbed::TestbedParams tiered;
  tiered.system = testbed::System::ApeCache;
  tiered.policy_override = core::ApRuntime::Policy::Lru;
  tiered.ape.cache_capacity_bytes = 1 * 1000 * 1000;
  tiered.ape.flash_capacity_bytes = 16 * 1000 * 1000;

  testbed::TestbedParams ram_only = tiered;
  ram_only.ape.flash_capacity_bytes = 0;

  struct Scenario {
    const char* label;
    testbed::TestbedParams params;
    bool preserve_flash;
  };
  const std::vector<Scenario> scenarios{
      {"warm", tiered, true},
      {"cold", tiered, false},
      {"ram", ram_only, false},
  };

  stats::Table table;
  table.header({"Scenario", "hit before", "hit after", "recovery", "p50 after ms",
                "p99 after ms", "replays"});
  for (const auto& scenario : scenarios) {
    testbed::Testbed bed(scenario.params);
    const auto result = run_scenario(bed, apps, config, phase, scenario.preserve_flash);

    const auto* flash = bed.ap().flash_tier();
    const std::size_t replays = flash == nullptr ? 0 : flash->recoveries();
    table.row({scenario.label, stats::Table::num(result.before.hit_ratio(), 3),
               stats::Table::num(result.after.hit_ratio(), 3),
               stats::Table::num(result.recovery_ratio(), 3),
               stats::Table::num(result.after.total_ms.percentile(0.50), 2),
               stats::Table::num(result.after.total_ms.percentile(0.99), 2),
               std::to_string(replays)});

    const std::string prefix = scenario.label;
    reporter.gauge(prefix + ".hit_ratio_before", result.before.hit_ratio());
    reporter.gauge(prefix + ".hit_ratio_after", result.after.hit_ratio());
    reporter.gauge(prefix + ".recovery_ratio", result.recovery_ratio());
    reporter.gauge(prefix + ".latency_after_p50_ms",
                   result.after.total_ms.percentile(0.50));
    reporter.gauge(prefix + ".latency_after_p99_ms",
                   result.after.total_ms.percentile(0.99));
    reporter.counter(prefix + ".journal_replays", replays);
    reporter.metrics().merge(bed.observer().metrics(), prefix + ".");
  }
  table.print(std::cout);

  bench::print_note(
      "warm must recover >= 90% of its pre-crash hit ratio (ISSUE 3 acceptance); "
      "compare snapshots against bench/baselines/store_recovery.json with "
      "scripts/check_bench_regression.py.");
  return reporter.finish();
}

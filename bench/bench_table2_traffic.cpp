// Table II: statistics of the two public WiFi traffic captures the paper
// replays against the GL-MT1300 (Sec. II-C).  We generate synthetic traces
// matching the published statistics and report both, demonstrating the
// substitution documented in DESIGN.md.
#include "bench_common.hpp"
#include "workload/traffic_trace.hpp"

int main(int argc, char** argv) {
  using namespace ape;
  bench::BenchReporter reporter(argc, argv, "table2_traffic");
  bench::print_header("Table II — Statistics of Public WiFi Traffic Datasets",
                      "paper Table II (Tcpreplay sample captures)");

  sim::Rng rng(bench::kSeed);
  stats::Table table;
  table.header({"Metric", "Low (paper)", "Low (ours)", "High (paper)", "High (ours)"});

  const auto low_spec = workload::low_rate_trace();
  const auto high_spec = workload::high_rate_trace();
  const auto low = workload::generate_trace(low_spec, rng);
  const auto high = workload::generate_trace(high_spec, rng);

  auto summarize = [](const std::vector<workload::TracePacket>& packets) {
    std::size_t bytes = 0, flows = 0;
    for (const auto& p : packets) {
      bytes += p.bytes;
      flows += p.starts_flow ? 1 : 0;
    }
    struct Out {
      std::size_t bytes, packets, flows;
      double avg;
    };
    return Out{bytes, packets.size(), flows,
               packets.empty() ? 0.0
                               : static_cast<double>(bytes) /
                                     static_cast<double>(packets.size())};
  };
  const auto low_sum = summarize(low);
  const auto high_sum = summarize(high);

  for (const auto& [label, sum] :
       {std::pair{std::string("low"), low_sum}, {std::string("high"), high_sum}}) {
    reporter.counter(label + ".bytes", sum.bytes);
    reporter.counter(label + ".packets", sum.packets);
    reporter.counter(label + ".flows", sum.flows);
    reporter.gauge(label + ".avg_packet_bytes", sum.avg);
  }

  table.row({"Size (MB)", "9.4",
             stats::Table::num(static_cast<double>(low_sum.bytes) / 1048576.0, 1), "368",
             stats::Table::num(static_cast<double>(high_sum.bytes) / 1048576.0, 1)});
  table.row({"Packets", "14261", std::to_string(low_sum.packets), "791615",
             std::to_string(high_sum.packets)});
  table.row({"Flows", "1209", std::to_string(low_sum.flows), "40686",
             std::to_string(high_sum.flows)});
  table.row({"Avg packet size (B)", "646", stats::Table::num(low_sum.avg, 0), "449",
             stats::Table::num(high_sum.avg, 0)});
  table.row({"Duration (min)", "5", stats::Table::num(sim::to_seconds(low_spec.duration) / 60, 0),
             "5", stats::Table::num(sim::to_seconds(high_spec.duration) / 60, 0)});
  table.row({"Number of apps", "28", std::to_string(low_spec.app_count), "132",
             std::to_string(high_spec.app_count)});
  table.print(std::cout);

  bench::print_note(
      "Synthetic traces reproduce the published per-capture statistics; packet sizes are "
      "drawn bimodally (control vs near-MTU) so the byte totals track the capture averages.");
  return reporter.finish();
}

// Microbenchmarks: PACM's eviction decision — the knapsack DP, the greedy
// fallback, and the fairness-constrained solve — at realistic AP scales
// (a 5 MB cache holds on the order of 100-1000 objects).
#include <benchmark/benchmark.h>

#include "bench_micro_common.hpp"

#include "core/pacm.hpp"
#include "sim/rng.hpp"

namespace {

using namespace ape;
using namespace ape::core;

std::vector<PacmObject> make_objects(std::size_t n, sim::Rng& rng) {
  std::vector<PacmObject> objects;
  objects.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    PacmObject o;
    o.key = "obj" + std::to_string(i);
    o.app = static_cast<AppId>(i % 30);
    o.size_bytes = static_cast<std::size_t>(rng.uniform_int(1'000, 100'000));
    o.priority = rng.bernoulli(0.4) ? 2 : 1;
    o.remaining_ttl_s = rng.uniform_real(30.0, 3600.0);
    o.fetch_latency_ms = rng.uniform_real(20.0, 50.0);
    objects.push_back(std::move(o));
  }
  return objects;
}

std::vector<std::pair<AppId, double>> make_frequencies() {
  std::vector<std::pair<AppId, double>> f;
  for (AppId a = 0; a < 30; ++a) f.emplace_back(a, 0.5 + static_cast<double>(a % 5));
  return f;
}

void BM_KnapsackDp(benchmark::State& state) {
  sim::Rng rng(7);
  std::vector<KnapsackItem> items;
  for (int i = 0; i < state.range(0); ++i) {
    items.push_back(KnapsackItem{rng.uniform_real(1.0, 1000.0),
                                 static_cast<std::size_t>(rng.uniform_int(1'000, 100'000))});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_knapsack(items, 5'000'000));
  }
}
BENCHMARK(BM_KnapsackDp)->Arg(50)->Arg(150)->Arg(400);

void BM_KnapsackGreedyFallback(benchmark::State& state) {
  sim::Rng rng(7);
  std::vector<KnapsackItem> items;
  for (int i = 0; i < state.range(0); ++i) {
    items.push_back(KnapsackItem{rng.uniform_real(1.0, 1000.0),
                                 static_cast<std::size_t>(rng.uniform_int(1'000, 100'000))});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_knapsack(items, 5'000'000, /*dp_budget=*/1));
  }
}
BENCHMARK(BM_KnapsackGreedyFallback)->Arg(150)->Arg(1000)->Arg(5000);

void BM_PacmSelectEvictions(benchmark::State& state) {
  ApeConfig config;
  PacmSolver solver(config);
  sim::Rng rng(11);
  const auto objects = make_objects(static_cast<std::size_t>(state.range(0)), rng);
  const auto frequencies = make_frequencies();
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.select_evictions(objects, 50'000, frequencies));
  }
}
BENCHMARK(BM_PacmSelectEvictions)->Arg(50)->Arg(150)->Arg(400);

void BM_PacmFairnessRepair(benchmark::State& state) {
  // A hoarding app forces the repair loop to iterate.
  ApeConfig config;
  config.fairness_theta = 0.15;
  PacmSolver solver(config);
  sim::Rng rng(13);
  auto objects = make_objects(static_cast<std::size_t>(state.range(0)), rng);
  for (auto& o : objects) {
    if (o.app == 0) o.size_bytes *= 4;  // app 0 hoards
  }
  const auto frequencies = make_frequencies();
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.select_evictions(objects, 50'000, frequencies));
  }
}
BENCHMARK(BM_PacmFairnessRepair)->Arg(100)->Arg(300);

void BM_FairnessGini(benchmark::State& state) {
  sim::Rng rng(17);
  const auto objects = make_objects(static_cast<std::size_t>(state.range(0)), rng);
  const std::vector<bool> kept(objects.size(), true);
  const auto frequencies = make_frequencies();
  for (auto _ : state) {
    benchmark::DoNotOptimize(PacmSolver::fairness(objects, kept, frequencies));
  }
}
BENCHMARK(BM_FairnessGini)->Arg(100)->Arg(1000);

}  // namespace

APE_MICRO_BENCH_MAIN("micro_pacm")

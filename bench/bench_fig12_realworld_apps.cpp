// Fig. 12: average and tail (p95) app-level latency of the two real-world
// apps — MovieTrailer and VirtualHome — under all four systems (paper
// Sec. V-D).
#include "bench_common.hpp"

using namespace ape;

int main(int argc, char** argv) {
  bench::BenchReporter reporter(argc, argv, "fig12_realworld_apps");
  bench::print_header("Fig. 12 — Real-world apps' Latency Performance",
                      "paper Fig. 12 (Sec. V-D)");

  const std::vector<testbed::System> systems{
      testbed::System::ApeCache, testbed::System::ApeCacheLru, testbed::System::WiCache,
      testbed::System::EdgeCache};

  for (const auto& app : {workload::make_movie_trailer(), workload::make_virtual_home()}) {
    std::printf("--- %s ---\n", app.name.c_str());
    stats::Table table;
    table.header({"System", "avg ms", "p95 ms", "runs"});
    double ape_avg = 0, ape_p95 = 0, edge_avg = 0, edge_p95 = 0;
    for (testbed::System system : systems) {
      const std::vector<workload::AppSpec> apps{app};
      const auto result = testbed::run_system(system, testbed::TestbedParams{}, apps,
                                              bench::paper_config(3.0, 60.0));
      const double avg = result.app_latency_ms.mean();
      const double p95 = result.app_latency_ms.percentile(0.95);
      if (system == testbed::System::ApeCache) {
        ape_avg = avg;
        ape_p95 = p95;
      }
      if (system == testbed::System::EdgeCache) {
        edge_avg = avg;
        edge_p95 = p95;
      }
      table.row({to_string(system), stats::Table::num(avg, 1), stats::Table::num(p95, 1),
                 std::to_string(result.app_runs)});
      const std::string key = app.name + "." + to_string(system);
      reporter.gauge(key + ".avg_ms", avg);
      reporter.gauge(key + ".p95_ms", p95);
      reporter.counter(key + ".runs", result.app_runs);
    }
    table.print(std::cout);
    std::printf("APE-CACHE vs Edge Cache: avg -%.0f%%, p95 -%.0f%%  "
                "(paper: ~-78%% avg, ~-76%% tail)\n\n",
                (1.0 - ape_avg / edge_avg) * 100.0, (1.0 - ape_p95 / edge_p95) * 100.0);
  }
  return reporter.finish();
}

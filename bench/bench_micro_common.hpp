// Shared main() for the google-benchmark micros: runs the usual console
// reporting, and behind `--json <path>` / `--csv <path>` also dumps an
// "ape.obs.v1" snapshot with per-benchmark timings.  Wall-clock timings are
// inherently noisy, so every metric lands in the snapshot's `volatile`
// section — scripts/check_bench_regression.py ignores it by default.
#pragma once

#include <benchmark/benchmark.h>

#include <fstream>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"

namespace ape::bench {

// Console output as usual, plus one volatile gauge per benchmark run:
// `micro.<benchmark>.real_time_ns` / `.cpu_time_ns` / `.iterations`.
class MicroObsReporter : public benchmark::ConsoleReporter {
 public:
  explicit MicroObsReporter(obs::MetricsRegistry& registry) : registry_(registry) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const auto& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      const std::string base = "micro." + run.benchmark_name();
      registry_.gauge(base + ".real_time_ns", obs::Volatility::Volatile)
          .set(run.GetAdjustedRealTime());
      registry_.gauge(base + ".cpu_time_ns", obs::Volatility::Volatile)
          .set(run.GetAdjustedCPUTime());
      registry_.gauge(base + ".iterations", obs::Volatility::Volatile)
          .set(static_cast<double>(run.iterations));
    }
  }

 private:
  obs::MetricsRegistry& registry_;
};

// Drop-in replacement for BENCHMARK_MAIN(): strips our `--json` / `--csv`
// flags before handing argv to google-benchmark (which rejects unknown
// flags), then exports the collected registry.
inline int micro_bench_main(int argc, char** argv, const std::string& bench_name) {
  std::string json_path;
  std::string csv_path;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--csv" && i + 1 < argc) {
      csv_path = argv[++i];
    } else {
      passthrough.push_back(argv[i]);
    }
  }

  int pass_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pass_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pass_argc, passthrough.data())) return 1;

  obs::MetricsRegistry registry;
  MicroObsReporter reporter(registry);
  benchmark::RunSpecifiedBenchmarks(&reporter);

  obs::ExportOptions options;
  options.meta["bench"] = bench_name;
  options.include_volatile = true;
  int rc = 0;
  if (!json_path.empty()) {
    if (obs::write_json_file(json_path, registry, nullptr, options)) {
      std::printf("json snapshot: %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
      rc = 1;
    }
  }
  if (!csv_path.empty()) {
    std::ofstream csv(csv_path);
    if (csv) {
      obs::write_csv(csv, registry, /*include_volatile=*/true);
      std::printf("csv snapshot: %s\n", csv_path.c_str());
    } else {
      std::fprintf(stderr, "error: cannot write %s\n", csv_path.c_str());
      rc = 1;
    }
  }
  return rc;
}

}  // namespace ape::bench

#define APE_MICRO_BENCH_MAIN(bench_name)                          \
  int main(int argc, char** argv) {                               \
    return ape::bench::micro_bench_main(argc, argv, bench_name);  \
  }

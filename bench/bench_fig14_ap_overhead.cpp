// Fig. 14: CPU/memory usage on the WiFi AP with and without APE-CACHE
// (paper Sec. V-E): 30 app pairs, 5 MB AP cache budget, frequency 3/min,
// one hour, resource sampling throughout.
//
// The "regular" configuration runs the same apps through the AP as plain
// pass-through traffic to the edge; the APE configuration adds the
// DNS-Cache handling, HTTP serving, delegation fetches and PACM runs.
#include "bench_common.hpp"

using namespace ape;

namespace {

struct Overhead {
  double mean_cpu, peak_cpu, mean_mem, peak_mem;
};

Overhead run(testbed::System system) {
  const auto apps = bench::paper_workload();
  const auto config = bench::paper_config(3.0, 60.0);

  testbed::TestbedParams params;
  params.system = system;
  testbed::Testbed bed(params);
  auto& meter = bed.meter_ap(sim::seconds(15.0), sim::Time{config.duration});
  const auto result =
      testbed::run_workload(bed, apps, config, /*account_passthrough=*/true);
  (void)result;
  return Overhead{meter.mean_cpu(), meter.peak_cpu(), meter.mean_memory_mb(),
                  meter.peak_memory_mb()};
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReporter reporter(argc, argv, "fig14_ap_overhead");
  bench::print_header("Fig. 14 — CPU/Memory Usage on the WiFi AP",
                      "paper Fig. 14 (Sec. V-E overhead study)");

  const Overhead regular = run(testbed::System::EdgeCache);   // stock forwarding only
  const Overhead ape = run(testbed::System::ApeCache);

  stats::Table table;
  table.header({"Configuration", "mean CPU %", "peak CPU %", "mean mem MB", "peak mem MB"});
  table.row({"Regular (pass-through)", stats::Table::num(regular.mean_cpu * 100, 2),
             stats::Table::num(regular.peak_cpu * 100, 2),
             stats::Table::num(regular.mean_mem, 1), stats::Table::num(regular.peak_mem, 1)});
  table.row({"APE-CACHE enabled", stats::Table::num(ape.mean_cpu * 100, 2),
             stats::Table::num(ape.peak_cpu * 100, 2), stats::Table::num(ape.mean_mem, 1),
             stats::Table::num(ape.peak_mem, 1)});
  table.print(std::cout);

  for (const auto& [label, o] :
       {std::pair{std::string("regular"), regular}, {std::string("ape"), ape}}) {
    reporter.gauge(label + ".cpu_mean_pct", o.mean_cpu * 100.0);
    reporter.gauge(label + ".cpu_peak_pct", o.peak_cpu * 100.0);
    reporter.gauge(label + ".mem_mean_mb", o.mean_mem);
    reporter.gauge(label + ".mem_peak_mb", o.peak_mem);
  }
  reporter.gauge("overhead.cpu_peak_pct", (ape.peak_cpu - regular.peak_cpu) * 100.0);
  reporter.gauge("overhead.mem_peak_mb", ape.peak_mem - regular.peak_mem);

  std::printf("\noverhead: +%.2f%% CPU (paper: up to +6%%), +%.1f MB memory "
              "(paper: up to +13 MB)\n",
              (ape.peak_cpu - regular.peak_cpu) * 100.0, ape.peak_mem - regular.peak_mem);
  bench::print_note(
      "The APE configuration spends CPU on DNS-Cache queries, HTTP cache serving and PACM, "
      "but saves pass-through forwarding for every AP-served object; memory adds the 5 MB "
      "object cache, the URL index and the runtime footprint.");
  return reporter.finish();
}

// Table VI: cache hit ratio vs app quantity (paper Sec. V-C).
// Objects 1-100 kB, frequency 3/min, 5 MB AP cache, one hour; app count
// swept 5..30.
#include "bench_hitratio_common.hpp"

int main(int argc, char** argv) {
  using namespace ape;
  bench::BenchReporter reporter(argc, argv, "table6_hitratio_appcount");
  bench::print_header("Table VI — Cache Hit Ratio vs. App Quantity",
                      "paper Table VI (Sec. V-C, PACM vs LRU)");

  struct PaperRow {
    double avg, high, lru;
  };
  const std::vector<std::pair<std::size_t, PaperRow>> sweeps{
      {5, {0.965, 0.965, 0.965}},  {10, {0.966, 0.966, 0.966}},
      {15, {0.967, 0.945, 0.967}}, {20, {0.763, 0.889, 0.765}},
      {25, {0.691, 0.841, 0.668}}, {30, {0.632, 0.832, 0.631}},
  };

  stats::Table table;
  table.header({"App quantity", "PACM-Avg", "(paper)", "PACM-High", "(paper)", "LRU",
                "(paper)"});
  for (const auto& [apps, paper] : sweeps) {
    const auto row = bench::hit_ratio_point(apps, /*max_kb=*/100, /*freq=*/3.0,
                                            /*duration_minutes=*/60.0, &reporter,
                                            "apps" + std::to_string(apps));
    table.row({std::to_string(apps), stats::Table::num(row.pacm_avg, 3),
               stats::Table::num(paper.avg, 3), stats::Table::num(row.pacm_high, 3),
               stats::Table::num(paper.high, 3), stats::Table::num(row.lru_avg, 3),
               stats::Table::num(paper.lru, 3)});
  }
  table.print(std::cout);
  bench::print_note(
      "Expected shape: small app sets fit entirely in 5 MB (hit ratios near the TTL-bound "
      "ceiling); beyond ~15 apps eviction pressure sets in and PACM protects high-priority "
      "objects while LRU degrades uniformly.");
  return reporter.finish();
}

// Table IV: cache hit ratio vs data object size (paper Sec. V-C).
// 30 apps, mean usage frequency 3/min, 5 MB AP cache, one hour; object
// sizes swept from 1-100 kB up to 1-500 kB.
#include "bench_hitratio_common.hpp"

int main(int argc, char** argv) {
  using namespace ape;
  bench::BenchReporter reporter(argc, argv, "table4_hitratio_objsize");
  bench::print_header("Table IV — Cache Hit Ratio vs. Data Object Size",
                      "paper Table IV (Sec. V-C, PACM vs LRU)");

  struct PaperRow {
    double avg, high, lru;
  };
  const std::vector<std::pair<std::size_t, PaperRow>> sweeps{
      {100, {0.632, 0.832, 0.631}}, {200, {0.514, 0.754, 0.528}},
      {300, {0.426, 0.616, 0.430}}, {400, {0.320, 0.457, 0.316}},
      {500, {0.226, 0.304, 0.220}},
  };

  stats::Table table;
  table.header({"Object size", "PACM-Avg", "(paper)", "PACM-High", "(paper)", "LRU",
                "(paper)"});
  for (const auto& [max_kb, paper] : sweeps) {
    const auto row = bench::hit_ratio_point(/*apps=*/30, max_kb, /*freq=*/3.0,
                                            /*duration_minutes=*/60.0, &reporter,
                                            "kb" + std::to_string(max_kb));
    table.row({"1~" + std::to_string(max_kb) + " kb", stats::Table::num(row.pacm_avg, 3),
               stats::Table::num(paper.avg, 3), stats::Table::num(row.pacm_high, 3),
               stats::Table::num(paper.high, 3), stats::Table::num(row.lru_avg, 3),
               stats::Table::num(paper.lru, 3)});
  }
  table.print(std::cout);
  bench::print_note(
      "Expected shape: hit ratios fall as objects grow (fewer fit in 5 MB); PACM keeps a "
      "much higher hit ratio for high-priority objects while matching LRU on average.");
  return reporter.finish();
}

// Ablation study (DESIGN.md): which ingredients of PACM buy the latency?
//
//   1. cache-management policies at the AP under the identical APE-CACHE
//      workflow: PACM, LRU, LFU, FIFO, GDSF;
//   2. PACM variants: full, no-priority (p=1), no-fairness (theta
//      unconstrained), greedy-only (density heuristic instead of the DP);
//   3. the revalidation extension on top of full PACM.
//
// All runs share the default paper workload (30 apps, 1-100 kB objects,
// 3 runs/min, 5 MB AP cache, 45 simulated minutes).
#include "bench_common.hpp"

using namespace ape;

namespace {

struct Row {
  std::string name;
  double latency_ms;
  double p95_ms;
  double hit;
  double high_hit;
};

Row run_case(const std::string& name, testbed::TestbedParams params,
             const std::vector<workload::AppSpec>* apps_override = nullptr) {
  const auto apps = apps_override ? *apps_override : bench::paper_workload();
  const auto config = bench::paper_config(3.0, 45.0);
  params.system = testbed::System::ApeCache;
  const auto result = testbed::run_system(testbed::System::ApeCache, std::move(params),
                                          apps, config);
  return Row{name, result.app_latency_ms.mean(), result.app_latency_ms.percentile(0.95),
             result.hit_ratio(), result.high_priority_hit_ratio()};
}

// Short-TTL, low-pressure variant: objects expire every 2-5 minutes and
// the working set fits the cache, so expired-but-present entries are
// common and revalidation has something to refresh.  (Under heavy churn
// stale copies are evicted before reuse and revalidation rarely fires —
// the 30-app rows above show that regime.)
std::vector<workload::AppSpec> short_ttl_workload() {
  workload::GeneratorParams gen;
  gen.app_count = 8;
  gen.min_ttl_minutes = 2;
  gen.max_ttl_minutes = 5;
  sim::Rng rng(bench::kSeed);
  return workload::generate_apps(gen, rng);
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReporter reporter(argc, argv, "ablation_pacm");
  bench::print_header("Ablation — PACM design choices and cache policies",
                      "extension study (no direct paper counterpart; see DESIGN.md)");

  std::vector<Row> rows;

  // --- policy family under the identical APE workflow --------------------
  rows.push_back(run_case("PACM (full)", {}));
  for (auto [name, policy] :
       {std::pair{"LRU", core::ApRuntime::Policy::Lru},
        std::pair{"LFU", core::ApRuntime::Policy::Lfu},
        std::pair{"FIFO", core::ApRuntime::Policy::Fifo},
        std::pair{"GDSF", core::ApRuntime::Policy::Gdsf}}) {
    testbed::TestbedParams params;
    params.policy_override = policy;
    rows.push_back(run_case(name, std::move(params)));
  }

  // --- PACM internal ablations -------------------------------------------
  {
    testbed::TestbedParams params;
    params.ape.pacm_use_priority = false;
    rows.push_back(run_case("PACM w/o priority", std::move(params)));
  }
  {
    testbed::TestbedParams params;
    params.ape.pacm_use_fairness = false;
    rows.push_back(run_case("PACM w/o fairness", std::move(params)));
  }
  {
    testbed::TestbedParams params;
    params.ape.pacm_force_greedy = true;
    rows.push_back(run_case("PACM greedy-only", std::move(params)));
  }

  // --- extension: conditional-GET revalidation ----------------------------
  {
    testbed::TestbedParams params;
    params.ape.enable_revalidation = true;
    rows.push_back(run_case("PACM + revalidation", std::move(params)));
  }
  {
    const auto short_ttl = short_ttl_workload();
    rows.push_back(run_case("PACM, short TTLs, 8 apps", {}, &short_ttl));
    testbed::TestbedParams params;
    params.ape.enable_revalidation = true;
    rows.push_back(
        run_case("PACM + reval, short TTLs, 8 apps", std::move(params), &short_ttl));
  }

  stats::Table table;
  table.header({"Variant", "app latency ms", "p95 ms", "hit ratio", "high-prio hit"});
  for (const auto& row : rows) {
    table.row({row.name, stats::Table::num(row.latency_ms, 1),
               stats::Table::num(row.p95_ms, 1), stats::Table::num(row.hit, 3),
               stats::Table::num(row.high_hit, 3)});
  }
  table.print(std::cout);

  for (const auto& row : rows) {
    reporter.gauge(row.name + ".latency_ms", row.latency_ms);
    reporter.gauge(row.name + ".p95_ms", row.p95_ms);
    reporter.gauge(row.name + ".hit_ratio", row.hit);
    reporter.gauge(row.name + ".high_hit_ratio", row.high_hit);
  }

  bench::print_note(
      "Reading guide: the priority term is what protects critical-path objects (compare "
      "full vs w/o-priority and vs the priority-blind classics); the exact DP matters at "
      "the margin vs greedy; fairness trades a little utility for per-app equity; "
      "revalidation recovers expired entries without WAN body transfers.");
  return reporter.finish();
}

// CI smoke bench: a small, fully deterministic workload whose `--json`
// snapshot is committed as bench/baselines/smoke.json and diffed by
// scripts/check_bench_regression.py on every pull request.  Runtime is a
// few seconds — small enough for CI, large enough that hit ratios, latency
// percentiles and simulator event counts are meaningful.
#include "bench_common.hpp"

using namespace ape;

int main(int argc, char** argv) {
  bench::BenchReporter reporter(argc, argv, "smoke");
  bench::print_header("Smoke — deterministic CI regression workload",
                      "no paper counterpart; guards the perf trajectory in CI");

  const auto apps = bench::paper_workload(/*app_count=*/10, /*max_object_kb=*/100);
  const auto config = bench::paper_config(/*freq_per_min=*/3.0, /*duration_minutes=*/10.0);

  const std::vector<std::pair<std::string, testbed::System>> systems{
      {"ape", testbed::System::ApeCache},
      {"lru", testbed::System::ApeCacheLru},
      {"edge", testbed::System::EdgeCache},
  };

  stats::Table table;
  table.header({"System", "hit ratio", "p50 ms", "p99 ms", "runs"});
  for (const auto& [label, system] : systems) {
    const auto result =
        testbed::run_system(system, testbed::TestbedParams{}, apps, config);
    const double p50 = result.app_latency_ms.percentile(0.50);
    const double p99 = result.app_latency_ms.percentile(0.99);
    table.row({to_string(system), stats::Table::num(result.hit_ratio(), 3),
               stats::Table::num(p50, 2), stats::Table::num(p99, 2),
               std::to_string(result.app_runs)});

    reporter.gauge(label + ".hit_ratio", result.hit_ratio());
    reporter.gauge(label + ".latency_p50_ms", p50);
    reporter.gauge(label + ".latency_p99_ms", p99);
    reporter.merge_run(result, label);
  }

  // Tiered flavour: APE-CACHE again but with a tight RAM cache over a
  // flash tier (src/store), so CI guards the demotion/compaction path's
  // perf trajectory too.  Appended after the classic runs — their metric
  // names (and values) stay untouched.
  {
    testbed::TestbedParams params;
    params.ape.cache_capacity_bytes = 1 * 1000 * 1000;
    params.ape.flash_capacity_bytes = 16 * 1000 * 1000;
    params.ape.sweep_interval = sim::minutes(1.0);
    const auto result =
        testbed::run_system(testbed::System::ApeCache, params, apps, config);
    const double p50 = result.app_latency_ms.percentile(0.50);
    const double p99 = result.app_latency_ms.percentile(0.99);
    table.row({"APE-CACHE tiered", stats::Table::num(result.hit_ratio(), 3),
               stats::Table::num(p50, 2), stats::Table::num(p99, 2),
               std::to_string(result.app_runs)});
    reporter.gauge("tiered.hit_ratio", result.hit_ratio());
    reporter.gauge("tiered.latency_p50_ms", p50);
    reporter.gauge("tiered.latency_p99_ms", p99);
    reporter.merge_run(result, "tiered");
  }
  table.print(std::cout);

  bench::print_note(
      "Two runs with the same seed must produce byte-identical snapshots; "
      "compare against bench/baselines/smoke.json with "
      "scripts/check_bench_regression.py.");
  return reporter.finish();
}

// CI smoke bench: a small, fully deterministic workload whose `--json`
// snapshot is committed as bench/baselines/smoke.json and diffed by
// scripts/check_bench_regression.py on every pull request.  Runtime is a
// few seconds — small enough for CI, large enough that hit ratios, latency
// percentiles and simulator event counts are meaningful.
#include <map>

#include "bench_common.hpp"
#include "obs/span_log.hpp"
#include "obs/trace_export.hpp"

using namespace ape;

namespace {

// Traced flavour (`--trace-out <path>`): one extra APE-CACHE run with the
// span subsystem on, validated and attributed before the Perfetto dump is
// written.  Kept apart from the snapshot runs above — trace carriers are
// real wire bytes, so this run is *not* byte-identical to the default ones
// and must never feed the `--json` snapshot.
int run_traced(const std::string& trace_path, const std::vector<workload::AppSpec>& apps,
               const testbed::WorkloadConfig& config) {
  testbed::TestbedParams params;
  params.enable_spans = true;
  params.span_capacity = 1 << 20;  // hold the full workload; drops would be a bug here
  testbed::Testbed bed(params);
  for (const auto& app : apps) bed.host_app(app);
  (void)testbed::run_workload(bed, apps, config);

  const auto& spans = bed.observer().spans().spans();
  const auto issues = obs::validate_spans(spans);
  if (!issues.empty()) {
    for (const auto& issue : issues) {
      std::fprintf(stderr, "trace invariant violated: trace=%llu span=%llu %s\n",
                   static_cast<unsigned long long>(issue.trace),
                   static_cast<unsigned long long>(issue.span), issue.what.c_str());
    }
    return 1;
  }
  if (bed.observer().spans().dropped() != 0) {
    std::fprintf(stderr, "trace capacity too small: %zu spans dropped\n",
                 bed.observer().spans().dropped());
    return 1;
  }

  // Latency attribution must reconcile *exactly* (integer sim-time): the
  // exclusive times of every trace sum to its root's end-to-end latency.
  const auto traces = obs::attribute_traces(spans);
  std::map<std::string, std::pair<std::size_t, sim::Duration>> by_kind;
  for (const auto& trace : traces) {
    if (!trace.reconciles) {
      std::fprintf(stderr,
                   "attribution failed to reconcile: trace=%llu end_to_end=%lld us "
                   "exclusive_sum=%lld us\n",
                   static_cast<unsigned long long>(trace.trace),
                   static_cast<long long>(trace.end_to_end.count()),
                   static_cast<long long>(trace.exclusive_sum.count()));
      return 1;
    }
    for (const auto& row : trace.rows) {
      auto& slot = by_kind[row.span->name];
      slot.first += 1;
      slot.second += row.exclusive;
    }
  }

  stats::Table attribution;
  attribution.header({"Span kind", "count", "exclusive total ms", "mean ms"});
  for (const auto& [kind, slot] : by_kind) {
    const double total_ms = sim::to_millis(slot.second);
    attribution.row({kind, std::to_string(slot.first), stats::Table::num(total_ms, 2),
                     stats::Table::num(total_ms / static_cast<double>(slot.first), 3)});
  }
  std::printf("Traced run: %zu traces, %zu spans, all reconciled exactly\n", traces.size(),
              spans.size());
  attribution.print(std::cout);

  obs::PerfettoExportOptions options;
  options.meta["bench"] = "smoke";
  options.meta["system"] = "ape";
  if (!obs::write_perfetto_file(trace_path, bed.observer().spans(), options)) {
    std::fprintf(stderr, "error: cannot write %s\n", trace_path.c_str());
    return 1;
  }
  std::printf("perfetto trace: %s\n", trace_path.c_str());
  return 0;
}

// Timeline flavour (`--timeline-out <path>`): one extra APE-CACHE run with
// windowed telemetry on — capture ticks every 30 s, the controller scraping
// the AP over the simulated WAN every 60 s, and two SLO rules watching the
// stream.  The run gates on Timeline::reconcile: every counter's window
// deltas must sum *exactly* to its end-of-run snapshot total (the windows
// partition the run), else the bench exits non-zero.  Like tracing, the
// scrape traffic is real simulated wire bytes, so this run never feeds the
// `--json` snapshot.
int run_timeline(const std::string& timeline_path, const std::vector<workload::AppSpec>& apps,
                 const testbed::WorkloadConfig& config) {
  testbed::TestbedParams params;
  params.enable_timeline = true;
  params.timeline_interval = sim::seconds(30.0);
  params.telemetry_scrape_interval = sim::seconds(60.0);
  // Both rules violate while the cache is cold and recover as it warms, so
  // the committed expectations pin a fire -> resolve trajectory.
  params.slo_rules = {
      "cache-warmup: ap.cache.hit_ratio >= 0.6 over 2 windows resolve 2",
      "tail-latency: client.total_ms p99 <= 40ms over 2 windows resolve 2",
  };
  testbed::Testbed bed(params);
  for (const auto& app : apps) bed.host_app(app);
  (void)testbed::run_workload(bed, apps, config);

  const auto& timeline = bed.observer().timeline();
  const auto errors = timeline.reconcile(bed.observer().metrics());
  if (!errors.empty()) {
    for (const auto& err : errors) {
      std::fprintf(stderr, "timeline reconcile failed: %s\n", err.c_str());
    }
    return 1;
  }

  const auto* collector = bed.telemetry_collector();
  const auto& slo = collector->slo();
  std::printf(
      "Timeline run: %zu windows, all deltas reconcile exactly; "
      "%zu scrapes shipped %zu windows; alerts fired=%zu resolved=%zu\n",
      timeline.windows().size(), collector->scrapes_sent(), collector->windows().size(),
      slo.fired(), slo.resolved());
  for (const auto& t : slo.transitions()) {
    std::printf("  window %llu: %s %s -> %s (value %s)\n",
                static_cast<unsigned long long>(t.window), t.rule.c_str(),
                obs::to_string(t.from).c_str(), obs::to_string(t.to).c_str(),
                obs::format_double(t.value).c_str());
  }

  obs::ExportOptions options;
  options.meta["bench"] = "smoke";
  options.meta["flavour"] = "timeline";
  options.timeline = &timeline;
  options.alerts = &slo;
  if (!obs::write_json_file(timeline_path, bed.observer().metrics(), nullptr, options)) {
    std::fprintf(stderr, "error: cannot write %s\n", timeline_path.c_str());
    return 1;
  }
  std::printf("timeline snapshot: %s\n", timeline_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReporter reporter(argc, argv, "smoke");
  bench::print_header("Smoke — deterministic CI regression workload",
                      "no paper counterpart; guards the perf trajectory in CI");

  const auto apps = bench::paper_workload(/*app_count=*/10, /*max_object_kb=*/100);
  const auto config = bench::paper_config(/*freq_per_min=*/3.0, /*duration_minutes=*/10.0);

  const std::vector<std::pair<std::string, testbed::System>> systems{
      {"ape", testbed::System::ApeCache},
      {"lru", testbed::System::ApeCacheLru},
      {"edge", testbed::System::EdgeCache},
  };

  stats::Table table;
  table.header({"System", "hit ratio", "p50 ms", "p99 ms", "runs"});
  for (const auto& [label, system] : systems) {
    const auto result =
        testbed::run_system(system, testbed::TestbedParams{}, apps, config);
    const double p50 = result.app_latency_ms.percentile(0.50);
    const double p99 = result.app_latency_ms.percentile(0.99);
    table.row({to_string(system), stats::Table::num(result.hit_ratio(), 3),
               stats::Table::num(p50, 2), stats::Table::num(p99, 2),
               std::to_string(result.app_runs)});

    reporter.gauge(label + ".hit_ratio", result.hit_ratio());
    reporter.gauge(label + ".latency_p50_ms", p50);
    reporter.gauge(label + ".latency_p99_ms", p99);
    reporter.merge_run(result, label);
  }

  // Tiered flavour: APE-CACHE again but with a tight RAM cache over a
  // flash tier (src/store), so CI guards the demotion/compaction path's
  // perf trajectory too.  Appended after the classic runs — their metric
  // names (and values) stay untouched.
  {
    testbed::TestbedParams params;
    params.ape.cache_capacity_bytes = 1 * 1000 * 1000;
    params.ape.flash_capacity_bytes = 16 * 1000 * 1000;
    params.ape.sweep_interval = sim::minutes(1.0);
    const auto result =
        testbed::run_system(testbed::System::ApeCache, params, apps, config);
    const double p50 = result.app_latency_ms.percentile(0.50);
    const double p99 = result.app_latency_ms.percentile(0.99);
    table.row({"APE-CACHE tiered", stats::Table::num(result.hit_ratio(), 3),
               stats::Table::num(p50, 2), stats::Table::num(p99, 2),
               std::to_string(result.app_runs)});
    reporter.gauge("tiered.hit_ratio", result.hit_ratio());
    reporter.gauge("tiered.latency_p50_ms", p50);
    reporter.gauge("tiered.latency_p99_ms", p99);
    reporter.merge_run(result, "tiered");
  }
  table.print(std::cout);

  bench::print_note(
      "Two runs with the same seed must produce byte-identical snapshots; "
      "compare against bench/baselines/smoke.json with "
      "scripts/check_bench_regression.py.");

  if (!reporter.trace_path().empty()) {
    const int rc = run_traced(reporter.trace_path(), apps, config);
    if (rc != 0) return rc;
  }
  if (!reporter.timeline_path().empty()) {
    const int rc = run_timeline(reporter.timeline_path(), apps, config);
    if (rc != 0) return rc;
  }
  return reporter.finish();
}

// Shared scaffolding for the experiment benches: the paper's default
// workload (2 real apps + 28 synthetic, Sec. V-A), run configs, table
// rendering with paper-reference columns for EXPERIMENTS.md, and the
// machine-readable snapshot every bench emits behind `--json <path>`.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "stats/table.hpp"
#include "testbed/experiment.hpp"
#include "workload/app_generator.hpp"
#include "workload/real_apps.hpp"

namespace ape::bench {

// Every bench binary owns one reporter: it parses `--json <path>` (and
// `--csv <path>`), accumulates the bench's headline numbers plus the full
// per-system registries, and dumps an "ape.obs.v1" snapshot on finish().
// This is what turns the human-oriented tables into a perf trajectory CI
// can diff (scripts/check_bench_regression.py).
class BenchReporter {
 public:
  BenchReporter(int argc, char** argv, std::string bench_name)
      : name_(std::move(bench_name)) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--json" && i + 1 < argc) {
        json_path_ = argv[++i];
      } else if (arg == "--csv" && i + 1 < argc) {
        csv_path_ = argv[++i];
      } else if (arg == "--trace-out" && i + 1 < argc) {
        trace_path_ = argv[++i];
      } else if (arg == "--timeline-out" && i + 1 < argc) {
        timeline_path_ = argv[++i];
      } else if (arg == "--help" || arg == "-h") {
        std::printf(
            "usage: %s [--json <path>] [--csv <path>] [--trace-out <path>] "
            "[--timeline-out <path>]\n",
            name_.c_str());
        std::exit(0);
      }
    }
  }

  [[nodiscard]] obs::MetricsRegistry& metrics() noexcept { return registry_; }

  // Perfetto trace destination (`--trace-out <path>`); empty when the bench
  // should not run its traced flavour.  Tracing changes wire traffic, so
  // benches must keep traced runs *separate* from the snapshot runs — the
  // `--json` output stays byte-identical whether or not this is set.
  [[nodiscard]] const std::string& trace_path() const noexcept { return trace_path_; }

  // Timeline snapshot destination (`--timeline-out <path>`); empty when the
  // bench should not run its windowed-telemetry flavour.  Like tracing, the
  // in-sim scrape path changes wire traffic, so timeline runs must stay
  // separate from the `--json` snapshot runs.
  [[nodiscard]] const std::string& timeline_path() const noexcept { return timeline_path_; }

  void gauge(const std::string& name, double value) { registry_.gauge(name).set(value); }
  void counter(const std::string& name, std::uint64_t value) {
    registry_.counter(name).set(value);
  }

  // Opt-in: also emit the registry's Volatility::Volatile section in the
  // `--json` snapshot.  Benches that report wall-clock-derived rates
  // (bench_engine's events/sec) need this; the stable sections stay
  // byte-identical either way.
  void export_volatile(bool on) noexcept { export_volatile_ = on; }

  // Folds a run's full metrics snapshot in under `prefix.` — lining up
  // APE-CACHE / LRU / Wi-Cache / edge-only runs inside one file.
  void merge_run(const testbed::SystemRunResult& result, const std::string& prefix) {
    registry_.merge(result.metrics, prefix + ".");
  }

  // Writes the snapshot(s) when requested; returns the bench's exit code.
  [[nodiscard]] int finish() {
    obs::ExportOptions options;
    options.meta["bench"] = name_;
    options.include_volatile = export_volatile_;
    int rc = 0;
    if (!json_path_.empty()) {
      if (obs::write_json_file(json_path_, registry_, nullptr, options)) {
        std::printf("json snapshot: %s\n", json_path_.c_str());
      } else {
        std::fprintf(stderr, "error: cannot write %s\n", json_path_.c_str());
        rc = 1;
      }
    }
    if (!csv_path_.empty()) {
      std::ofstream csv(csv_path_);
      if (csv) {
        obs::write_csv(csv, registry_);
        std::printf("csv snapshot: %s\n", csv_path_.c_str());
      } else {
        std::fprintf(stderr, "error: cannot write %s\n", csv_path_.c_str());
        rc = 1;
      }
    }
    return rc;
  }

 private:
  std::string name_;
  std::string json_path_;
  std::string csv_path_;
  std::string trace_path_;
  std::string timeline_path_;
  bool export_volatile_ = false;
  obs::MetricsRegistry registry_;
};

inline constexpr std::uint64_t kSeed = 20240704;

// The paper's 30-app suite: MovieTrailer + VirtualHome + 28 generated apps.
inline std::vector<workload::AppSpec> paper_workload(std::size_t app_count = 30,
                                                     std::size_t max_object_kb = 100,
                                                     std::uint64_t seed = kSeed) {
  std::vector<workload::AppSpec> apps;
  if (app_count >= 1) apps.push_back(workload::make_movie_trailer());
  if (app_count >= 2) apps.push_back(workload::make_virtual_home());
  if (app_count > 2) {
    workload::GeneratorParams params;
    params.app_count = app_count - 2;
    params.max_object_bytes = max_object_kb * 1000;
    sim::Rng rng(seed);
    auto dummies = workload::generate_apps(params, rng);
    for (auto& app : dummies) apps.push_back(std::move(app));
  }
  return apps;
}

inline testbed::WorkloadConfig paper_config(double freq_per_min = 3.0,
                                            double duration_minutes = 60.0) {
  testbed::WorkloadConfig config;
  config.mean_freq_per_min = freq_per_min;
  config.duration = sim::minutes(duration_minutes);
  config.seed = kSeed;
  return config;
}

inline void print_header(const std::string& experiment, const std::string& paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("==============================================================\n\n");
}

inline void print_note(const std::string& note) {
  std::printf("note: %s\n\n", note.c_str());
}

}  // namespace ape::bench

// Shared scaffolding for the experiment benches: the paper's default
// workload (2 real apps + 28 synthetic, Sec. V-A), run configs, and table
// rendering with paper-reference columns for EXPERIMENTS.md.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "stats/table.hpp"
#include "testbed/experiment.hpp"
#include "workload/app_generator.hpp"
#include "workload/real_apps.hpp"

namespace ape::bench {

inline constexpr std::uint64_t kSeed = 20240704;

// The paper's 30-app suite: MovieTrailer + VirtualHome + 28 generated apps.
inline std::vector<workload::AppSpec> paper_workload(std::size_t app_count = 30,
                                                     std::size_t max_object_kb = 100,
                                                     std::uint64_t seed = kSeed) {
  std::vector<workload::AppSpec> apps;
  if (app_count >= 1) apps.push_back(workload::make_movie_trailer());
  if (app_count >= 2) apps.push_back(workload::make_virtual_home());
  if (app_count > 2) {
    workload::GeneratorParams params;
    params.app_count = app_count - 2;
    params.max_object_bytes = max_object_kb * 1000;
    sim::Rng rng(seed);
    auto dummies = workload::generate_apps(params, rng);
    for (auto& app : dummies) apps.push_back(std::move(app));
  }
  return apps;
}

inline testbed::WorkloadConfig paper_config(double freq_per_min = 3.0,
                                            double duration_minutes = 60.0) {
  testbed::WorkloadConfig config;
  config.mean_freq_per_min = freq_per_min;
  config.duration = sim::minutes(duration_minutes);
  config.seed = kSeed;
  return config;
}

inline void print_header(const std::string& experiment, const std::string& paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("==============================================================\n\n");
}

inline void print_note(const std::string& note) {
  std::printf("note: %s\n\n", note.c_str());
}

}  // namespace ape::bench

// VirtualHome scenario: a latency-sensitive AR app (paper Sec. V-A,
// Table III) fetching AR object meshes.  Demonstrates two APE-CACHE
// behaviours that matter for AR:
//   1. the large mesh payload (ARObjects, high priority) is pinned close
//      to the user, dropping the interaction latency below the ~50 ms
//      budget of responsive AR;
//   2. a deliberately oversized asset exceeds the AP's 500 kB block
//      threshold and is served from the edge instead — the block list in
//      action.
#include <cstdio>

#include "testbed/app_driver.hpp"
#include "testbed/testbed.hpp"
#include "workload/real_apps.hpp"

using namespace ape;

int main() {
  testbed::TestbedParams params;
  params.system = testbed::System::ApeCache;
  testbed::Testbed bed(params);

  workload::AppSpec app = workload::make_virtual_home();
  // Extension of the scenario: a large scene bundle beyond the block
  // threshold (500 kB) that APE-CACHE must refuse to cache.
  workload::RequestSpec bundle;
  bundle.name = "getSceneBundle";
  bundle.url = "http://" + app.domain + "/getSceneBundle";
  bundle.size_bytes = 800'000;
  bundle.ttl_minutes = 60;
  bundle.priority = 1;
  bundle.retrieval_latency = sim::milliseconds(40);
  bundle.depends_on = {0};
  app.requests.push_back(bundle);
  bed.host_app(app);

  testbed::Testbed::Client& headset = bed.add_client("ar-headset");
  for (auto& spec : app.cacheables()) headset.runtime->register_cacheable(spec);

  testbed::AppDriver driver(bed.simulator(), app, *headset.fetcher);
  for (int run = 1; run <= 3; ++run) {
    std::printf("--- AR session %d ---\n", run);
    driver.run_once([](testbed::AppRunResult result) {
      for (const auto& obj : result.objects) {
        std::printf("  %-15s prio=%d  from=%-12s  %6.2f ms\n", obj.request_name.c_str(),
                    obj.priority, core::to_string(obj.result.source),
                    sim::to_millis(obj.result.total));
      }
      const double latency = sim::to_millis(result.app_latency);
      std::printf("  interaction latency: %.2f ms %s\n\n", latency,
                  latency <= 50.0 ? "(within the 50 ms AR budget)" : "(over budget)");
    });
    bed.simulator().run();
    bed.simulator().run_until(bed.simulator().now() + sim::seconds(20.0));
  }

  std::printf("block list holds %zu object(s); AP cache %zu bytes\n",
              bed.ap().block_list().size(), bed.ap().data_cache().used_bytes());
  return 0;
}

// DNS-Cache protocol inspector: builds the exact messages APE-CACHE puts
// on the wire (paper Fig. 8), hexdumps them, decodes them back, and walks
// through the three flag outcomes — a debugging/reference tool for anyone
// implementing the protocol against this library.
#include <cstdio>

#include "core/dns_cache_record.hpp"
#include "core/url_hash.hpp"
#include "dns/codec.hpp"

using namespace ape;

namespace {

void hexdump(const std::vector<std::uint8_t>& bytes) {
  for (std::size_t i = 0; i < bytes.size(); i += 16) {
    std::printf("  %04zx  ", i);
    for (std::size_t j = 0; j < 16; ++j) {
      if (i + j < bytes.size()) {
        std::printf("%02x ", bytes[i + j]);
      } else {
        std::printf("   ");
      }
      if (j == 7) std::printf(" ");
    }
    std::printf(" |");
    for (std::size_t j = 0; j < 16 && i + j < bytes.size(); ++j) {
      const std::uint8_t c = bytes[i + j];
      std::printf("%c", c >= 0x20 && c < 0x7F ? static_cast<char>(c) : '.');
    }
    std::printf("|\n");
  }
}

void describe(const dns::DnsMessage& message) {
  std::printf("  id=0x%04x %s rcode=%d questions=%zu answers=%zu additionals=%zu\n",
              message.header.id, message.is_query() ? "QUERY" : "RESPONSE",
              static_cast<int>(message.header.rcode), message.questions.size(),
              message.answers.size(), message.additionals.size());
  if (auto view = core::extract_dns_cache(message)) {
    std::printf("  DNS-Cache %s for %s:\n",
                view.value().is_request ? "REQUEST" : "RESPONSE",
                view.value().domain.to_string().c_str());
    for (const auto& entry : view.value().entries) {
      std::printf("    hash=%s flag=%s\n", core::hash_to_string(entry.hash).c_str(),
                  core::to_string(entry.flag));
    }
  }
}

}  // namespace

int main() {
  const auto domain = dns::DnsName::parse("api.movietrailer.app").value();
  const std::string url = "http://api.movietrailer.app/getThumbnail";
  const core::UrlHash hash = core::hash_url(url);

  std::printf("URL: %s\nbase-URL hash (FNV-1a 64): %s\n\n", url.c_str(),
              core::hash_to_string(hash).c_str());

  // --- the client's DNS-Cache request --------------------------------
  dns::DnsMessage request;
  request.header.id = 0x4150;  // "AP"
  request.header.rd = true;
  request.questions.push_back(dns::Question{domain, dns::RrType::A, dns::RrClass::In});
  request.additionals.push_back(
      core::make_cache_request_rr(domain, {{hash, core::CacheFlag::Delegation}}));

  const auto request_wire = dns::encode(request);
  std::printf("DNS-Cache REQUEST (%zu bytes on the wire):\n", request_wire.size());
  hexdump(request_wire);
  describe(dns::decode(request_wire).value());

  // --- the AP's three possible responses ------------------------------
  struct Case {
    core::CacheFlag flag;
    net::IpAddress ip;
    std::uint32_t ttl;
    const char* note;
  };
  const Case cases[] = {
      {core::CacheFlag::CacheHit, net::kDummyIp, 0,
       "object cached on the AP; dummy IP short-circuits upstream DNS"},
      {core::CacheFlag::Delegation, net::kDummyIp, 0,
       "AP will fetch on the client's behalf; client never needs the edge IP"},
      {core::CacheFlag::CacheMiss, net::IpAddress::from_octets(10, 1, 0, 2), 20,
       "block-listed object; client receives the real edge address"},
  };

  for (const Case& c : cases) {
    dns::DnsMessage response = dns::make_response_for(request, dns::Rcode::NoError);
    response.answers.push_back(dns::make_a_record(domain, c.ip, c.ttl));
    response.additionals.push_back(core::make_cache_response_rr(domain, {{hash, c.flag}}));
    const auto wire = dns::encode(response);
    std::printf("\nDNS-Cache RESPONSE, flag=%s (%zu bytes) — %s:\n",
                core::to_string(c.flag), wire.size(), c.note);
    hexdump(wire);
    describe(dns::decode(wire).value());
  }

  std::printf("\nRDATA layout per Fig. 8: repeated <HASH(URL):8 bytes big-endian,"
              " FLAG:1 byte>;\nTYPE=300, CLASS=REQUEST(0x%04x)/RESPONSE(0x%04x).\n",
              static_cast<unsigned>(dns::RrClass::CacheRequest),
              static_cast<unsigned>(dns::RrClass::CacheResponse));
  return 0;
}

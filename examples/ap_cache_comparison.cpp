// Side-by-side comparison of all four evaluated systems on one workload:
// builds a testbed per system (identical seeds), drives the same app mix
// for ten simulated minutes, and prints a compact scoreboard — a minimal
// version of the paper's Sec. V-D experiment.
#include <cstdio>

#include "testbed/experiment.hpp"
#include "workload/app_generator.hpp"
#include "workload/real_apps.hpp"

using namespace ape;

int main() {
  // Workload: the two real-world apps + six synthetic ones.
  std::vector<workload::AppSpec> apps{workload::make_movie_trailer(),
                                      workload::make_virtual_home()};
  workload::GeneratorParams gen;
  gen.app_count = 6;
  sim::Rng rng(7);
  for (auto& app : workload::generate_apps(gen, rng)) apps.push_back(std::move(app));

  testbed::WorkloadConfig config;
  config.duration = sim::minutes(10.0);
  config.mean_freq_per_min = 3.0;
  config.seed = 7;

  std::printf("%-15s %10s %10s %10s %10s %10s\n", "system", "runs", "avg ms", "p95 ms",
              "hit ratio", "hi-prio");
  for (testbed::System system :
       {testbed::System::ApeCache, testbed::System::ApeCacheLru, testbed::System::WiCache,
        testbed::System::EdgeCache}) {
    const auto result =
        testbed::run_system(system, testbed::TestbedParams{}, apps, config);
    std::printf("%-15s %10zu %10.1f %10.1f %9.1f%% %9.1f%%\n", to_string(system),
                result.app_runs, result.app_latency_ms.mean(),
                result.app_latency_ms.percentile(0.95), result.hit_ratio() * 100.0,
                result.high_priority_hit_ratio() * 100.0);
  }
  std::printf("\n(hit ratio = objects served from the AP; Edge Cache has no AP cache,"
              " so its ratio is 0)\n");
  return 0;
}

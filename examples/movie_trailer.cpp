// MovieTrailer walk-through (the paper's motivating example, Sec. III-A).
//
// Runs the real-world app's request DAG — getMovieID, then four parallel
// detail fetches — repeatedly against the APE-CACHE testbed and prints a
// per-request trace plus the app-level latency trend as the AP cache
// warms: the first run delegates everything, later runs are served at
// millisecond level from one hop away.
#include <cstdio>

#include "testbed/app_driver.hpp"
#include "testbed/testbed.hpp"
#include "workload/critical_path.hpp"
#include "workload/real_apps.hpp"

using namespace ape;

int main() {
  testbed::TestbedParams params;
  params.system = testbed::System::ApeCache;
  testbed::Testbed bed(params);

  const workload::AppSpec app = workload::make_movie_trailer();
  bed.host_app(app);

  testbed::Testbed::Client& phone = bed.add_client("phone");
  for (auto& spec : app.cacheables()) phone.runtime->register_cacheable(spec);

  // Show the statically derived critical path (paper Fig. 3).
  const auto path = workload::critical_path(app);
  std::printf("critical path:");
  for (std::size_t idx : path.request_indices) {
    std::printf(" %s", app.requests[idx].name.c_str());
  }
  std::printf("  (expected %.1f ms standalone)\n\n", sim::to_millis(path.expected_duration));

  testbed::AppDriver driver(bed.simulator(), app, *phone.fetcher);

  for (int run = 1; run <= 4; ++run) {
    std::printf("--- run %d ---\n", run);
    driver.run_once([run](testbed::AppRunResult result) {
      for (const auto& obj : result.objects) {
        std::printf("  %-13s prio=%d  %-12s lookup=%6.2f  retrieval=%6.2f  total=%6.2f ms\n",
                    obj.request_name.c_str(), obj.priority,
                    core::to_string(obj.result.source),
                    sim::to_millis(obj.result.lookup_latency),
                    sim::to_millis(obj.result.retrieval_latency),
                    sim::to_millis(obj.result.total));
      }
      std::printf("  app-level latency: %.2f ms (full makespan %.2f ms)\n\n",
                  sim::to_millis(result.app_latency), sim::to_millis(result.full_makespan));
    });
    bed.simulator().run();
    // A user pause between runs.
    bed.simulator().run_until(bed.simulator().now() + sim::seconds(15.0));
  }

  std::printf("AP cache after 4 runs: %zu objects / %zu bytes, hit stats: %zu hits, "
              "%zu delegations\n",
              bed.ap().data_cache().entry_count(), bed.ap().data_cache().used_bytes(),
              bed.ap().lookup_stats().hits(), bed.ap().lookup_stats().delegations());
  return 0;
}

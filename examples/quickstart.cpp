// Quickstart: stand up the Fig. 9 testbed, register one cacheable object
// via the declarative programming model, and fetch it three times to watch
// the APE-CACHE workflow progress:
//
//   run 1  ->  Delegation  (AP fetches from the edge and caches)
//   run 2  ->  Cache-Hit   (served from the AP, milliseconds)
//   run 3  ->  Cache-Hit   (flags may even be reused from the DNS TTL)
//
// Build:  cmake -B build -G Ninja && cmake --build build
// Run:    ./build/examples/quickstart
#include <cstdio>

#include "core/programming_model.hpp"
#include "testbed/testbed.hpp"
#include "workload/real_apps.hpp"

using namespace ape;

int main() {
  // 1. A testbed: phone --WiFi--> AP --7 hops--> edge server (+ DNS chain).
  testbed::TestbedParams params;
  params.system = testbed::System::ApeCache;
  testbed::Testbed bed(params);

  // 2. An app with one cacheable object, declared via the annotation-style
  //    programming model (paper Fig. 6).
  core::AnnotatedApp app("quickstart-app", /*id=*/7);
  app.cacheable_field("movieId", "http://api.quickstart.app/movie-id",
                      /*priority=*/2, /*ttl_minutes=*/30);

  // Host the object on the edge and publish the domain.
  workload::AppSpec spec;
  spec.name = app.name();
  spec.id = app.id();
  spec.domain = "api.quickstart.app";
  workload::RequestSpec request;
  request.name = "movie-id";
  request.url = "http://api.quickstart.app/movie-id";
  request.size_bytes = 20'000;
  request.ttl_minutes = 30;
  request.priority = 2;
  request.retrieval_latency = sim::milliseconds(30);
  spec.requests.push_back(request);
  bed.host_app(spec);

  // 3. A phone attached to the AP, with the app's annotations processed.
  testbed::Testbed::Client& phone = bed.add_client("phone");
  app.attach(*phone.runtime);

  // 4. Fetch the object three times, two seconds apart.
  for (int round = 1; round <= 3; ++round) {
    phone.runtime->fetch(
        "http://api.quickstart.app/movie-id",
        [round](core::ClientRuntime::FetchResult r) {
          std::printf(
              "run %d: %-12s flag=%-10s lookup=%6.2f ms retrieval=%6.2f ms total=%6.2f ms%s\n",
              round, core::to_string(r.source), core::to_string(r.flag),
              sim::to_millis(r.lookup_latency), sim::to_millis(r.retrieval_latency),
              sim::to_millis(r.total), r.success ? "" : "  (FAILED)");
        });
    bed.simulator().run();
    bed.simulator().run_until(bed.simulator().now() + sim::seconds(2.0));
  }

  std::printf("\nAP cache: %zu objects, %zu bytes used; delegations performed: %zu\n",
              bed.ap().data_cache().entry_count(), bed.ap().data_cache().used_bytes(),
              bed.ap().delegations_performed());
  return 0;
}

// Command-line experiment explorer: run any system / workload combination
// without writing code.
//
//   experiment_cli [--system ape|ape-lru|wicache|edge]
//                  [--apps N] [--max-kb N] [--freq F] [--minutes M]
//                  [--clients N] [--seed S] [--policy pacm|lru|lfu|fifo|gdsf]
//                  [--revalidation] [--no-priority] [--no-fairness]
//
// Prints the run's latency/hit summary plus the AP's cache and resource
// state — handy for sweeping configurations beyond the paper's grid.
#include <cstdio>
#include <cstring>
#include <string>

#include "testbed/experiment.hpp"
#include "workload/app_generator.hpp"
#include "workload/real_apps.hpp"

using namespace ape;

namespace {

struct CliOptions {
  testbed::System system = testbed::System::ApeCache;
  std::size_t apps = 30;
  std::size_t max_kb = 100;
  double freq = 3.0;
  double minutes = 20.0;
  std::size_t clients = 1;
  std::uint64_t seed = 42;
  std::optional<core::ApRuntime::Policy> policy;
  bool revalidation = false;
  bool no_priority = false;
  bool no_fairness = false;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--system ape|ape-lru|wicache|edge] [--apps N] [--max-kb N]\n"
               "          [--freq F] [--minutes M] [--clients N] [--seed S]\n"
               "          [--policy pacm|lru|lfu|fifo|gdsf] [--revalidation]\n"
               "          [--no-priority] [--no-fairness]\n",
               argv0);
  return 2;
}

bool parse_args(int argc, char** argv, CliOptions& options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };

    if (arg == "--system") {
      const char* v = next();
      if (v == nullptr) return false;
      const std::string s = v;
      if (s == "ape") {
        options.system = testbed::System::ApeCache;
      } else if (s == "ape-lru") {
        options.system = testbed::System::ApeCacheLru;
      } else if (s == "wicache") {
        options.system = testbed::System::WiCache;
      } else if (s == "edge") {
        options.system = testbed::System::EdgeCache;
      } else {
        return false;
      }
    } else if (arg == "--apps") {
      const char* v = next();
      if (v == nullptr) return false;
      options.apps = std::stoul(v);
    } else if (arg == "--max-kb") {
      const char* v = next();
      if (v == nullptr) return false;
      options.max_kb = std::stoul(v);
    } else if (arg == "--freq") {
      const char* v = next();
      if (v == nullptr) return false;
      options.freq = std::stod(v);
    } else if (arg == "--minutes") {
      const char* v = next();
      if (v == nullptr) return false;
      options.minutes = std::stod(v);
    } else if (arg == "--clients") {
      const char* v = next();
      if (v == nullptr) return false;
      options.clients = std::stoul(v);
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return false;
      options.seed = std::stoull(v);
    } else if (arg == "--policy") {
      const char* v = next();
      if (v == nullptr) return false;
      const std::string s = v;
      if (s == "pacm") {
        options.policy = core::ApRuntime::Policy::Pacm;
      } else if (s == "lru") {
        options.policy = core::ApRuntime::Policy::Lru;
      } else if (s == "lfu") {
        options.policy = core::ApRuntime::Policy::Lfu;
      } else if (s == "fifo") {
        options.policy = core::ApRuntime::Policy::Fifo;
      } else if (s == "gdsf") {
        options.policy = core::ApRuntime::Policy::Gdsf;
      } else {
        return false;
      }
    } else if (arg == "--revalidation") {
      options.revalidation = true;
    } else if (arg == "--no-priority") {
      options.no_priority = true;
    } else if (arg == "--no-fairness") {
      options.no_fairness = true;
    } else {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  if (!parse_args(argc, argv, options)) return usage(argv[0]);

  // Workload: the two real apps + generated fillers, as in the paper.
  std::vector<workload::AppSpec> apps;
  if (options.apps >= 1) apps.push_back(workload::make_movie_trailer());
  if (options.apps >= 2) apps.push_back(workload::make_virtual_home());
  if (options.apps > 2) {
    workload::GeneratorParams gen;
    gen.app_count = options.apps - 2;
    gen.max_object_bytes = options.max_kb * 1000;
    sim::Rng rng(options.seed);
    for (auto& app : workload::generate_apps(gen, rng)) apps.push_back(std::move(app));
  }

  testbed::TestbedParams params;
  params.system = options.system;
  params.policy_override = options.policy;
  params.ape.enable_revalidation = options.revalidation;
  params.ape.pacm_use_priority = !options.no_priority;
  params.ape.pacm_use_fairness = !options.no_fairness;

  testbed::WorkloadConfig config;
  config.mean_freq_per_min = options.freq;
  config.duration = sim::minutes(options.minutes);
  config.seed = options.seed;
  config.client_count = options.clients;

  testbed::Testbed bed(params);
  const auto result = testbed::run_workload(bed, apps, config);

  std::printf("system          : %s\n", result.system.c_str());
  std::printf("workload        : %zu apps, <=%zu kB objects, %.1f runs/min, %zu client(s), "
              "%.0f sim-minutes, seed %llu\n",
              apps.size(), options.max_kb, options.freq, options.clients, options.minutes,
              static_cast<unsigned long long>(options.seed));
  std::printf("app runs        : %zu (%zu object fetches, %zu failures)\n", result.app_runs,
              result.object_fetches, result.failures);
  std::printf("app latency     : mean %.1f ms, p50 %.1f, p95 %.1f, p99 %.1f\n",
              result.app_latency_ms.mean(), result.app_latency_ms.percentile(0.5),
              result.app_latency_ms.percentile(0.95), result.app_latency_ms.percentile(0.99));
  std::printf("hit ratio       : %.3f overall, %.3f high-priority\n", result.hit_ratio(),
              result.high_priority_hit_ratio());
  if (result.ap_hit_lookup_ms.count() > 0) {
    std::printf("AP hit path     : lookup %.2f ms, retrieval %.2f ms\n",
                result.ap_hit_lookup_ms.mean(), result.ap_hit_retrieval_ms.mean());
  }
  if (result.edge_lookup_ms.count() > 0) {
    std::printf("edge path       : lookup %.2f ms, retrieval %.2f ms\n",
                result.edge_lookup_ms.mean(), result.edge_retrieval_ms.mean());
  }
  std::printf("AP cache        : %zu objects / %zu bytes (policy %s), %zu evictions, "
              "%zu delegations, %zu revalidations, block list %zu\n",
              bed.ap().data_cache().entry_count(), bed.ap().data_cache().used_bytes(),
              bed.ap().data_cache().policy().name().c_str(),
              bed.ap().data_cache().evictions(), bed.ap().delegations_performed(),
              bed.ap().revalidations_performed(), bed.ap().block_list().size());
  std::printf("AP memory model : %.1f MB\n",
              static_cast<double>(bed.ap().memory_bytes()) / (1024.0 * 1024.0));
  return 0;
}

// Wi-Cache (Chhangte et al., IEEE TNSM'21), adapted per the paper's
// Sec. V-A: a *centralized cache controller* (an EC2 instance 12 hops from
// the AP in Fig. 9) that every cache request consults first, plus an AP
// agent holding an LRU-managed object cache.
//
// Wire protocol (UDP, line-oriented text — Wi-Cache's control plane is
// bespoke, not DNS):
//   client -> controller :5300   "LOOKUP <seq> <url>"
//   controller -> client         "<seq> AP\n"         (fetch from the AP agent)
//                                "<seq> EDGE <ip>\n"  (fetch from the edge)
//   controller -> agent  :5301   "PREFETCH <url> <edge-ip>"
//   agent -> controller  :5300   "ADD <key>" / "REMOVE <key>"
//
// On a registry miss the controller directs the client to the edge and
// asynchronously instructs the AP agent to fetch-and-cache the object so
// later requests hit — the adapted population path for small objects.
#pragma once

#include <string>
#include <unordered_map>
#include <unordered_set>

#include "cache/cache_stats.hpp"
#include "cache/object_store.hpp"
#include "common/shard.hpp"
#include "http/endpoint.hpp"
#include "net/network.hpp"

namespace ape::baselines {

inline constexpr net::Port kWiCacheControllerPort = 5300;
inline constexpr net::Port kWiCacheAgentControlPort = 5301;
inline constexpr net::Port kWiCacheAgentHttpPort = 8080;

class WiCacheController {
  APE_SHARD_CONTEXT(controller);

 public:
  WiCacheController(net::Network& network, net::NodeId node, sim::ServiceQueue& cpu,
                    net::Endpoint agent_control, net::IpAddress ap_http_ip,
                    net::IpAddress edge_ip);
  ~WiCacheController();

  [[nodiscard]] std::size_t lookups() const noexcept { return lookups_; }
  [[nodiscard]] std::size_t registry_size() const noexcept { return ap_keys_.size(); }
  [[nodiscard]] cache::CacheStatistics& stats() noexcept { return stats_; }

 private:
  void on_datagram(const net::Datagram& dgram);
  void handle_lookup(std::uint64_t seq, const std::string& url, net::Endpoint client);

  APE_SHARD_SHARED net::Network& network_;
  APE_SHARD_LOCAL(controller) net::NodeId node_;
  APE_SHARD_LOCAL(controller) sim::ServiceQueue& cpu_;
  APE_SHARD_LOCAL(controller) net::Endpoint agent_control_;
  APE_SHARD_LOCAL(controller) net::IpAddress ap_http_ip_;
  APE_SHARD_LOCAL(controller) net::IpAddress edge_ip_;
  // keys cached at the AP
  APE_SHARD_LOCAL(controller) std::unordered_set<std::string> ap_keys_;
  // avoid duplicate instructions
  APE_SHARD_LOCAL(controller) std::unordered_set<std::string> prefetch_inflight_;
  APE_SHARD_LOCAL(controller) cache::CacheStatistics stats_;
  APE_SHARD_LOCAL(controller) std::size_t lookups_ = 0;
};

class WiCacheApAgent {
  APE_SHARD_CONTEXT(ap);

 public:
  WiCacheApAgent(net::Network& network, net::TcpTransport& tcp, net::NodeId node,
                 sim::ServiceQueue& cpu, std::size_t capacity_bytes,
                 net::Endpoint controller);
  ~WiCacheApAgent();

  [[nodiscard]] const cache::CacheStore& store() const noexcept { return store_; }
  [[nodiscard]] std::size_t prefetches() const noexcept { return prefetches_; }

 private:
  void on_control(const net::Datagram& dgram);
  void prefetch(const std::string& url, net::IpAddress edge_ip);
  void serve(const http::HttpRequest& request, http::HttpServer::Responder respond);
  void report(const std::string& action, const std::string& key);

  APE_SHARD_SHARED net::Network& network_;
  APE_SHARD_LOCAL(ap) net::NodeId node_;
  APE_SHARD_LOCAL(ap) sim::ServiceQueue& cpu_;
  APE_SHARD_LOCAL(ap) cache::CacheStore store_;
  APE_SHARD_LOCAL(ap) http::HttpServer http_;
  APE_SHARD_LOCAL(ap) http::HttpClient edge_client_;
  APE_SHARD_LOCAL(ap) net::Endpoint controller_;
  APE_SHARD_LOCAL(ap) std::size_t prefetches_ = 0;
};

}  // namespace ape::baselines

#include "baselines/ape_lru_system.hpp"

// Header-only facade; this TU anchors the target.

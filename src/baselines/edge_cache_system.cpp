#include "baselines/edge_cache_system.hpp"

// Header-only facade; this TU anchors the target.

#include "baselines/wicache_system.hpp"

#include <sstream>
#include <utility>

namespace ape::baselines {

namespace {
constexpr sim::Duration kLookupTimeout = sim::milliseconds(3000);
}

WiCacheFetcher::WiCacheFetcher(net::Network& network, net::TcpTransport& tcp,
                               net::NodeId node, net::Port udp_port,
                               net::Endpoint controller, net::IpAddress ap_ip)
    : network_(network),
      node_(node),
      udp_port_(udp_port),
      controller_(controller),
      ap_ip_(ap_ip),
      http_(tcp, node) {
  network_.bind_udp(node_, udp_port_, [this](const net::Datagram& d) { on_datagram(d); });
}

WiCacheFetcher::~WiCacheFetcher() {
  network_.unbind_udp(node_, udp_port_);
}

void WiCacheFetcher::fetch_object(const std::string& url,
                                  core::ClientRuntime::FetchHandler handler) {
  const std::uint64_t seq = next_seq_++;
  PendingLookup pending;
  pending.url = url;
  pending.handler = std::move(handler);
  pending.start = network_.simulator().now();
  pending.timeout_event = network_.simulator().schedule_in(kLookupTimeout, [this, seq] {
    auto it = pending_.find(seq);
    if (it == pending_.end()) return;
    core::ClientRuntime::FetchResult r;
    r.error = "Wi-Cache controller lookup timed out";
    auto h = std::move(it->second.handler);
    pending_.erase(it);
    h(std::move(r));
  });
  pending_.emplace(seq, std::move(pending));

  const std::string msg = "LOOKUP " + std::to_string(seq) + " " + url;
  network_.send_datagram(node_, udp_port_, controller_, net::Payload(msg.begin(), msg.end()));
}

void WiCacheFetcher::on_datagram(const net::Datagram& dgram) {
  std::istringstream in(std::string(dgram.payload.begin(), dgram.payload.end()));
  std::uint64_t seq = 0;
  std::string verdict;
  in >> seq >> verdict;
  auto it = pending_.find(seq);
  if (it == pending_.end()) return;

  network_.simulator().cancel(it->second.timeout_event);
  PendingLookup pending = std::move(it->second);
  pending_.erase(it);
  const sim::Duration lookup = network_.simulator().now() - pending.start;

  if (verdict == "AP") {
    fetch_http(pending.url, net::Endpoint{ap_ip_, kWiCacheAgentHttpPort}, true,
               net::IpAddress{}, pending.start, lookup, std::move(pending.handler));
    return;
  }
  std::string ip_text;
  in >> ip_text;
  auto edge_ip = net::IpAddress::parse(ip_text);
  if (verdict != "EDGE" || !edge_ip) {
    core::ClientRuntime::FetchResult r;
    r.lookup_latency = lookup;
    r.error = "Wi-Cache controller sent a malformed verdict";
    pending.handler(std::move(r));
    return;
  }
  fetch_http(pending.url, net::Endpoint{edge_ip.value(), net::kHttpPort}, false,
             net::IpAddress{}, pending.start, lookup, std::move(pending.handler));
}

void WiCacheFetcher::fetch_http(const std::string& url, net::Endpoint server, bool from_ap,
                                net::IpAddress /*edge_fallback*/, sim::Time start,
                                sim::Duration lookup,
                                core::ClientRuntime::FetchHandler handler) {
  auto parsed = http::Url::parse(url);
  if (!parsed) {
    core::ClientRuntime::FetchResult r;
    r.error = "bad URL";
    handler(std::move(r));
    return;
  }
  http::HttpRequest req;
  req.url = std::move(parsed.value());
  const sim::Time fetch_start = network_.simulator().now();
  http_.fetch(server, std::move(req),
              [this, url, from_ap, start, lookup, fetch_start,
               handler = std::move(handler)](Result<http::HttpResponse> result,
                                             http::FetchTiming) mutable {
                const sim::Time now = network_.simulator().now();
                if (from_ap && (!result || !result.value().ok())) {
                  // Controller registry was stale (eviction race): the
                  // paper's configuration redirects to the edge.  Re-consult
                  // the controller, which now reports EDGE.
                  fetch_object(url, std::move(handler));
                  return;
                }
                core::ClientRuntime::FetchResult r;
                r.lookup_latency = lookup;
                r.retrieval_latency = now - fetch_start;
                r.total = now - start;
                if (!result) {
                  r.error = result.error().message;
                } else if (!result.value().ok()) {
                  r.error = "HTTP " + std::to_string(result.value().status);
                } else {
                  r.success = true;
                  r.source = from_ap ? core::ClientRuntime::Source::ApCache
                                     : core::ClientRuntime::Source::EdgeServer;
                  r.flag = from_ap ? core::CacheFlag::CacheHit : core::CacheFlag::CacheMiss;
                  r.bytes = result.value().total_body_bytes();
                }
                handler(std::move(r));
              });
}

}  // namespace ape::baselines

// Client-side Wi-Cache fetcher: every object fetch first consults the
// central controller (one WAN round trip — the lookup cost Fig. 11a shows
// exceeding 22 ms), then retrieves from the AP agent or the edge.
#pragma once

#include "baselines/system_interface.hpp"
#include "baselines/wicache_controller.hpp"
#include "common/shard.hpp"

namespace ape::baselines {

class WiCacheFetcher final : public ObjectFetcher {
  APE_SHARD_CONTEXT(client);

 public:
  WiCacheFetcher(net::Network& network, net::TcpTransport& tcp, net::NodeId node,
                 net::Port udp_port, net::Endpoint controller, net::IpAddress ap_ip);
  ~WiCacheFetcher() override;

  void fetch_object(const std::string& url,
                    core::ClientRuntime::FetchHandler handler) override;

  [[nodiscard]] std::string system_name() const override { return "Wi-Cache"; }

 private:
  struct PendingLookup {
    std::string url;
    core::ClientRuntime::FetchHandler handler;
    sim::Time start{};
    sim::Simulator::EventId timeout_event = 0;
  };

  void on_datagram(const net::Datagram& dgram);
  void fetch_http(const std::string& url, net::Endpoint server, bool from_ap,
                  net::IpAddress edge_fallback, sim::Time start, sim::Duration lookup,
                  core::ClientRuntime::FetchHandler handler);

  APE_SHARD_SHARED net::Network& network_;
  APE_SHARD_LOCAL(client) net::NodeId node_;
  APE_SHARD_LOCAL(client) net::Port udp_port_;
  APE_SHARD_LOCAL(client) net::Endpoint controller_;
  APE_SHARD_LOCAL(client) net::IpAddress ap_ip_;
  APE_SHARD_LOCAL(client) http::HttpClient http_;
  // One lookup in flight at a time per sequence number.
  APE_SHARD_LOCAL(client) std::unordered_map<std::uint64_t, PendingLookup> pending_;
  APE_SHARD_LOCAL(client) std::uint64_t next_seq_ = 1;
};

}  // namespace ape::baselines

// Uniform facade the app driver fetches objects through, so the four
// evaluated systems (APE-CACHE, APE-CACHE-LRU, Wi-Cache, Edge Cache) are
// interchangeable in every experiment.
#pragma once

#include "core/client_runtime.hpp"

namespace ape::baselines {

class ObjectFetcher {
 public:
  virtual ~ObjectFetcher() = default;
  virtual void fetch_object(const std::string& url,
                            core::ClientRuntime::FetchHandler handler) = 0;
  [[nodiscard]] virtual std::string system_name() const = 0;
};

}  // namespace ape::baselines

#include "baselines/wicache_controller.hpp"

#include <sstream>
#include <utility>

#include "cache/lru_policy.hpp"
#include "core/url_hash.hpp"

namespace ape::baselines {

namespace {
net::Payload to_payload(const std::string& text) {
  return net::Payload(text.begin(), text.end());
}
std::string to_text(const net::Payload& payload) {
  return std::string(payload.begin(), payload.end());
}
constexpr sim::Duration kControlServiceTime = sim::microseconds(200);
}  // namespace

// ------------------------------------------------------------- controller

WiCacheController::WiCacheController(net::Network& network, net::NodeId node,
                                     sim::ServiceQueue& cpu, net::Endpoint agent_control,
                                     net::IpAddress ap_http_ip, net::IpAddress edge_ip)
    : network_(network),
      node_(node),
      cpu_(cpu),
      agent_control_(agent_control),
      ap_http_ip_(ap_http_ip),
      edge_ip_(edge_ip) {
  network_.bind_udp(node_, kWiCacheControllerPort,
                    [this](const net::Datagram& d) { on_datagram(d); });
}

WiCacheController::~WiCacheController() {
  network_.unbind_udp(node_, kWiCacheControllerPort);
}

void WiCacheController::on_datagram(const net::Datagram& dgram) {
  std::istringstream in(to_text(dgram.payload));
  std::string verb;
  in >> verb;
  if (verb == "LOOKUP") {
    std::uint64_t seq = 0;
    std::string url;
    in >> seq >> url;
    const net::Endpoint client = dgram.source;
    cpu_.submit(kControlServiceTime,
                [this, seq, url, client] { handle_lookup(seq, url, client); });
  } else if (verb == "ADD" || verb == "REMOVE") {
    std::string key;
    in >> key;
    cpu_.submit(kControlServiceTime, [this, verb, key] {
      if (verb == "ADD") {
        ap_keys_.insert(key);
        prefetch_inflight_.erase(key);
      } else {
        ap_keys_.erase(key);
      }
    });
  }
}

void WiCacheController::handle_lookup(std::uint64_t seq, const std::string& url,
                                      net::Endpoint client) {
  ++lookups_;
  const auto parsed = http::Url::parse(url);
  const std::string key =
      parsed ? core::hash_to_string(core::hash_url(parsed.value().base())) : url;
  const std::string seq_text = std::to_string(seq);

  if (ap_keys_.contains(key)) {
    stats_.record_hit(1);
    network_.send_datagram(node_, kWiCacheControllerPort, client,
                           to_payload(seq_text + " AP\n"));
    return;
  }
  stats_.record_miss(1);
  network_.send_datagram(node_, kWiCacheControllerPort, client,
                         to_payload(seq_text + " EDGE " + edge_ip_.to_string() + "\n"));
  // Populate for next time, once per object.
  if (prefetch_inflight_.insert(key).second) {
    network_.send_datagram(node_, kWiCacheControllerPort, agent_control_,
                           to_payload("PREFETCH " + url + " " + edge_ip_.to_string()));
  }
}

// ------------------------------------------------------------------ agent

WiCacheApAgent::WiCacheApAgent(net::Network& network, net::TcpTransport& tcp,
                               net::NodeId node, sim::ServiceQueue& cpu,
                               std::size_t capacity_bytes, net::Endpoint controller)
    : network_(network),
      node_(node),
      cpu_(cpu),
      store_(capacity_bytes, std::make_unique<cache::LruPolicy>()),
      http_(tcp, node, kWiCacheAgentHttpPort, cpu),
      edge_client_(tcp, node),
      controller_(controller) {
  network_.bind_udp(node_, kWiCacheAgentControlPort,
                    [this](const net::Datagram& d) { on_control(d); });
  http_.set_fallback([this](const http::HttpRequest& req, net::Endpoint,
                            http::HttpServer::Responder respond) {
    serve(req, std::move(respond));
  });
  store_.set_removal_listener([this](const cache::CacheEntry& entry, cache::RemovalCause) {
    report("REMOVE", entry.key);
  });
}

WiCacheApAgent::~WiCacheApAgent() {
  network_.unbind_udp(node_, kWiCacheAgentControlPort);
}

void WiCacheApAgent::report(const std::string& action, const std::string& key) {
  const std::string message = action + " " + key;
  network_.send_datagram(node_, kWiCacheAgentControlPort, controller_,
                         net::Payload(message.begin(), message.end()));
}

void WiCacheApAgent::on_control(const net::Datagram& dgram) {
  std::istringstream in(std::string(dgram.payload.begin(), dgram.payload.end()));
  std::string verb, url, ip_text;
  in >> verb >> url >> ip_text;
  if (verb != "PREFETCH") return;
  auto ip = net::IpAddress::parse(ip_text);
  if (!ip) return;
  cpu_.submit(kControlServiceTime, [this, url, ip = ip.value()] { prefetch(url, ip); });
}

void WiCacheApAgent::prefetch(const std::string& url, net::IpAddress edge_ip) {
  auto parsed = http::Url::parse(url);
  if (!parsed) return;
  const std::string key = core::hash_to_string(core::hash_url(parsed.value().base()));
  const sim::Time now = network_.simulator().now();
  if (store_.peek(key, now) != nullptr) return;

  ++prefetches_;
  http::HttpRequest req;
  req.url = std::move(parsed.value());
  req.headers.emplace_back("X-Origin-Pull", "1");  // cache fill = origin pull
  const sim::Time fetch_start = now;
  edge_client_.fetch(
      net::Endpoint{edge_ip, net::kHttpPort}, std::move(req),
      [this, key, fetch_start](Result<http::HttpResponse> result, http::FetchTiming) {
        if (!result || !result.value().ok()) return;
        const http::HttpResponse& resp = result.value();
        const sim::Time now2 = network_.simulator().now();

        cache::CacheEntry entry;
        entry.key = key;
        entry.size_bytes = resp.total_body_bytes();
        entry.fetch_latency = now2 - fetch_start;
        std::uint32_t ttl = 600;
        if (const auto* v = http::find_header(resp.headers, "X-Object-TTL")) {
          ttl = static_cast<std::uint32_t>(std::stoul(*v));
        }
        if (const auto* v = http::find_header(resp.headers, "X-Object-Priority")) {
          entry.priority = std::stoi(*v);
        }
        if (const auto* v = http::find_header(resp.headers, "X-Object-App")) {
          entry.app_id = static_cast<std::uint32_t>(std::stoul(*v));
        }
        entry.expires = now2 + sim::seconds(ttl);
        if (store_.insert(std::move(entry), now2) == cache::CacheStore::InsertOutcome::Inserted) {
          report("ADD", key);
        }
      });
}

void WiCacheApAgent::serve(const http::HttpRequest& request,
                           http::HttpServer::Responder respond) {
  const std::string key = core::hash_to_string(core::hash_url(request.url.base()));
  const sim::Time now = network_.simulator().now();
  const cache::CacheEntry* entry = store_.get(key, now);
  if (entry == nullptr) {
    respond(http::make_status_response(404, "not cached at AP"));
    return;
  }
  http::HttpResponse resp;
  resp.status = 200;
  resp.simulated_body_bytes = entry->size_bytes;
  resp.headers.emplace_back("X-Cache", "WICACHE-AP-HIT");
  respond(std::move(resp));
}

}  // namespace ape::baselines

// "Edge Cache" baseline (paper Sec. V-A): the status quo — cacheable data
// lives only on the edge server and is reached by resolving the server's
// domain name, every fetch paying the DNS + WAN round trip.
#pragma once

#include "baselines/system_interface.hpp"
#include "common/shard.hpp"

namespace ape::baselines {

class EdgeCacheFetcher final : public ObjectFetcher {
  APE_SHARD_CONTEXT(client);

 public:
  explicit EdgeCacheFetcher(core::ClientRuntime& runtime) : runtime_(runtime) {}

  void fetch_object(const std::string& url,
                    core::ClientRuntime::FetchHandler handler) override {
    runtime_.fetch_via_edge(url, std::move(handler));
  }

  [[nodiscard]] std::string system_name() const override { return "Edge Cache"; }

 private:
  APE_SHARD_LOCAL(client) core::ClientRuntime& runtime_;
};

}  // namespace ape::baselines

// APE-CACHE-LRU ablation (paper Sec. V-A): identical workflow to
// APE-CACHE — DNS-Cache lookup, delegation, block list — but the AP's
// object cache is managed by LRU instead of PACM.  Realized purely through
// configuration: ApRuntime{policy = Lru} plus the standard client runtime.
#pragma once

#include "baselines/system_interface.hpp"
#include "common/shard.hpp"
#include "core/ap_runtime.hpp"

namespace ape::baselines {

// Fetcher facade over the regular APE client runtime (used for both
// APE-CACHE and APE-CACHE-LRU; the difference lives on the AP).
class ApeFetcher final : public ObjectFetcher {
  APE_SHARD_CONTEXT(client);

 public:
  ApeFetcher(core::ClientRuntime& runtime, std::string label = "APE-CACHE")
      : runtime_(runtime), label_(std::move(label)) {}

  void fetch_object(const std::string& url,
                    core::ClientRuntime::FetchHandler handler) override {
    runtime_.fetch(url, std::move(handler));
  }

  [[nodiscard]] std::string system_name() const override { return label_; }

 private:
  APE_SHARD_LOCAL(client) core::ClientRuntime& runtime_;
  APE_SHARD_LOCAL(client) std::string label_;
};

[[nodiscard]] inline core::ApRuntime::Options make_ape_lru_options(
    core::ApRuntime::Options base) {
  base.policy = core::ApRuntime::Policy::Lru;
  return base;
}

}  // namespace ape::baselines

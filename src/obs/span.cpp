#include "obs/span.hpp"

#include <charconv>

namespace ape::obs {

std::string encode_trace_context(const TraceContext& ctx) {
  return std::to_string(ctx.trace) + "-" + std::to_string(ctx.span);
}

TraceContext decode_trace_context(const std::string& text) {
  const auto sep = text.find('-');
  if (sep == std::string::npos || sep == 0 || sep + 1 >= text.size()) return {};
  TraceContext ctx;
  const char* begin = text.data();
  auto first = std::from_chars(begin, begin + sep, ctx.trace);
  if (first.ec != std::errc{} || first.ptr != begin + sep) return {};
  auto second = std::from_chars(begin + sep + 1, begin + text.size(), ctx.span);
  if (second.ec != std::errc{} || second.ptr != begin + text.size()) return {};
  if (!ctx.valid()) return {};
  return ctx;
}

}  // namespace ape::obs

// Timeline — windowed time-series telemetry over a MetricsRegistry
// (DESIGN.md §5g).
//
// The end-of-run `ape.obs.v1` snapshot answers "what happened by the end";
// the Timeline answers "how did it evolve": on a configurable sim-time
// interval it captures one TimelineWindow holding
//
//   * per-counter *deltas* since the previous capture (signed — set-style
//     counters such as cache sizes may shrink between windows),
//   * the last written value of every stable gauge, and
//   * a summary (count/sum/mean/min/max/p50/p95/p99) of exactly the
//     histogram samples recorded *inside* the window.
//
// Every read of the registry in the capture path goes through the
// DeltaCursor — the cursor is what makes the windows *partition* the run:
// summing a counter's deltas over all windows reproduces the end-of-run
// total exactly, and summing histogram window counts reproduces the final
// sample count.  reconcile() checks that identity (plus window
// monotonicity) and is asserted by `bench_smoke --timeline-out`, re-checked
// offline by tools/timeline_report.py --validate.  Bypassing the cursor
// with a direct registry read would double-count — the `cursor-bypass`
// ape-lint check forbids it statically.
//
// Disabled by default; like spans (§5f), nothing in a default run calls
// capture(), so default exports stay byte-identical.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/time.hpp"

namespace ape::obs {

// Summary of one histogram's samples recorded within one window.  Only
// histograms with new samples appear in a window.
struct WindowHistogramSummary {
  std::string unit;
  std::size_t count = 0;
  double sum = 0.0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

struct TimelineWindow {
  std::uint64_t index = 0;  // consecutive from 0; deterministic under a seed
  sim::Time start{};        // previous capture instant (0 for the first)
  sim::Time end{};          // this capture instant
  // Zero deltas are omitted (absent == 0), keeping windows sparse.
  std::map<std::string, std::int64_t> counter_deltas;
  std::map<std::string, double> gauges;  // stable gauges only, last value
  std::map<std::string, WindowHistogramSummary> histograms;
};

class Timeline {
 public:
  explicit Timeline(sim::Duration interval = sim::seconds(30.0)) : interval_(interval) {}

  void set_enabled(bool on) noexcept { enabled_ = on; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }
  void set_interval(sim::Duration interval) noexcept { interval_ = interval; }
  [[nodiscard]] sim::Duration interval() const noexcept { return interval_; }

  // Captures the window ending at `now`.  Returns the captured window, or
  // nullptr when disabled.  `now` must not precede the previous capture.
  const TimelineWindow* capture(const MetricsRegistry& registry, sim::Time now);

  [[nodiscard]] const std::vector<TimelineWindow>& windows() const noexcept {
    return windows_;
  }

  // Delta-sum reconciliation + window monotonicity against the registry the
  // windows were captured from.  Empty result == the windows partition the
  // run exactly.  Only exact when nothing mutated the registry after the
  // last capture — flush (capture once more) before validating/exporting.
  [[nodiscard]] std::vector<std::string> reconcile(const MetricsRegistry& registry) const;

  void clear();

 private:
  // The sole reader of the registry on the capture path: remembers, per
  // instrument, how much of it previous windows already consumed, so each
  // sample and each counted increment lands in exactly one window.
  class DeltaCursor {
   public:
    [[nodiscard]] TimelineWindow advance(const MetricsRegistry& registry);
    void reset();

   private:
    std::map<std::string, std::uint64_t> last_counters_;
    std::map<std::string, std::size_t> consumed_samples_;
  };

  sim::Duration interval_;
  bool enabled_ = false;
  DeltaCursor cursor_;
  std::vector<TimelineWindow> windows_;
};

// Flat per-window rows `window,start_us,end_us,kind,name,field,value` —
// the time-series sibling of obs::write_csv.
void write_timeseries_csv(std::ostream& out, const Timeline& timeline);

}  // namespace ape::obs

// SloEvaluator — declarative SLO rules over timeline windows (DESIGN.md §5g).
//
// A rule states the condition that should HOLD, in a one-line text form:
//
//   [name:] <metric> [<field>] <op> <threshold>[unit] over <N> windows [resolve <M>]
//
//   ap.cache.hit_ratio >= 0.6 over 5 windows
//   client.total_ms p99 <= 40ms over 2 windows resolve 3
//
// <field> selects a histogram summary field (count|sum|mean|min|max|p50|
// p95|p99); without one the metric is read as a stable gauge, falling back
// to the window's counter delta.  A metric absent from a window freezes the
// rule's streaks for that window (no data is neither a violation nor a
// recovery).
//
// Alerting is a burn-rate style state machine evaluated once per window, in
// rule declaration order, so identically seeded runs produce an identical
// transition log:
//
//   Inactive --violation--> Pending --N consecutive--> Firing
//   Pending --condition holds--> Inactive
//   Firing --M consecutive holds--> Inactive            ("resolved")
//
// Every state change is appended to a transition log keyed by window index;
// tools/timeline_report.py --validate replays the log and rejects illegal
// sequences (a resolve without a prior firing, a from-state that does not
// match the previous to-state).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "obs/timeline.hpp"

namespace ape::obs {

enum class SloField : std::uint8_t {
  Value,  // gauge value, or counter delta when no gauge exists
  Count,
  Sum,
  Mean,
  Min,
  Max,
  P50,
  P95,
  P99,
};

enum class SloOp : std::uint8_t { Ge, Le, Gt, Lt };

enum class AlertState : std::uint8_t { Inactive, Pending, Firing };

[[nodiscard]] std::string to_string(SloField field);
[[nodiscard]] std::string to_string(SloOp op);
[[nodiscard]] std::string to_string(AlertState state);

struct SloRule {
  std::string name;    // defaults to "<metric>[.<field>]" when not given
  std::string metric;  // dotted instrument name in the registry
  SloField field = SloField::Value;
  SloOp op = SloOp::Ge;
  double threshold = 0.0;
  std::uint32_t for_windows = 1;      // consecutive violations before Firing
  std::uint32_t resolve_windows = 1;  // consecutive holds before resolving

  [[nodiscard]] std::string text() const;  // round-trips through parse_slo_rule
};

[[nodiscard]] Result<SloRule> parse_slo_rule(const std::string& text);

struct AlertTransition {
  std::uint64_t window = 0;  // window index that triggered the change
  std::string rule;
  AlertState from = AlertState::Inactive;
  AlertState to = AlertState::Inactive;
  double value = 0.0;  // the observed value that drove the transition
};

class SloEvaluator {
 public:
  void add_rule(SloRule rule);

  // Evaluates every rule against one window.  Windows must be fed in
  // increasing index order (the scrape path's window stream already is).
  void observe(const TimelineWindow& window);

  [[nodiscard]] std::size_t rule_count() const noexcept { return rules_.size(); }
  [[nodiscard]] std::vector<SloRule> rules() const;
  [[nodiscard]] const std::vector<AlertTransition>& transitions() const noexcept {
    return transitions_;
  }
  [[nodiscard]] AlertState state(const std::string& rule_name) const;
  [[nodiscard]] std::uint64_t fired() const noexcept { return fired_; }
  [[nodiscard]] std::uint64_t resolved() const noexcept { return resolved_; }

  void clear();

 private:
  struct RuleState {
    SloRule rule;
    AlertState state = AlertState::Inactive;
    std::uint32_t violate_streak = 0;
    std::uint32_t ok_streak = 0;
  };

  void transition(RuleState& rs, AlertState to, const TimelineWindow& window, double value);

  std::vector<RuleState> rules_;  // declaration order == evaluation order
  std::vector<AlertTransition> transitions_;
  std::uint64_t fired_ = 0;
  std::uint64_t resolved_ = 0;
};

}  // namespace ape::obs

// MetricsRegistry — hierarchically named counters, gauges and latency
// histograms for every layer of the reproduction (DESIGN.md §Observability).
//
// Names are dotted paths ("ap.cache.hit", "pacm.repair_rounds",
// "dns.short_circuit"); the registry owns the instruments and hands out
// stable references, so hot paths resolve a name once and bump a pointer
// afterwards.  Iteration order is lexicographic (std::map), which is what
// makes two identically seeded runs export byte-identical snapshots.
//
// Wall-clock measurements are inherently non-deterministic; instruments
// created with Volatility::Volatile are segregated by the exporters so the
// stable sections of a snapshot stay diffable across runs.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "stats/histogram.hpp"

namespace ape::obs {

enum class Volatility {
  Stable,    // deterministic under a fixed seed (sim-time, counts, ratios)
  Volatile,  // wall-clock or host-dependent; excluded from stable exports
};

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_ += n; }
  void set(std::uint64_t v) noexcept { value_ = v; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

// Last-written value plus the high-water mark, so queue depths and memory
// footprints report both the instantaneous and the peak reading.
class Gauge {
 public:
  void set(double v) noexcept {
    value_ = v;
    if (!seen_ || v > max_) max_ = v;
    seen_ = true;
  }
  [[nodiscard]] double value() const noexcept { return value_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  double value_ = 0.0;
  double max_ = 0.0;
  bool seen_ = false;
};

class MetricsRegistry {
 public:
  struct HistogramEntry {
    stats::Histogram histogram;
    Volatility volatility = Volatility::Stable;
  };
  struct GaugeEntry {
    Gauge gauge;
    Volatility volatility = Volatility::Stable;
  };

  // Lookup-or-create; references stay valid for the registry's lifetime
  // (std::map nodes are stable).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name, Volatility volatility = Volatility::Stable);
  stats::Histogram& histogram(const std::string& name, const std::string& unit = "",
                              Volatility volatility = Volatility::Stable);

  // Folds `other` into this registry with every name prefixed — how a bench
  // lines up per-system registries ("system.APE-CACHE.ap.cache.hit", ...)
  // inside one snapshot.
  void merge(const MetricsRegistry& other, const std::string& prefix);

  void clear();
  [[nodiscard]] bool empty() const noexcept {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  [[nodiscard]] const std::map<std::string, Counter>& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, GaugeEntry>& gauges() const noexcept {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, HistogramEntry>& histograms() const noexcept {
    return histograms_;
  }

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, GaugeEntry> gauges_;
  std::map<std::string, HistogramEntry> histograms_;
};

}  // namespace ape::obs

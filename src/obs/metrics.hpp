// MetricsRegistry — hierarchically named counters, gauges and latency
// histograms for every layer of the reproduction (DESIGN.md §Observability).
//
// Names are dotted paths ("ap.cache.hit", "pacm.repair_rounds",
// "dns.short_circuit"); the registry owns the instruments and hands out
// stable references, so hot paths resolve a name once and bump a pointer
// afterwards.  Iteration order is lexicographic (std::map), which is what
// makes two identically seeded runs export byte-identical snapshots.
//
// Wall-clock measurements are inherently non-deterministic; instruments
// created with Volatility::Volatile are segregated by the exporters so the
// stable sections of a snapshot stay diffable across runs.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "stats/histogram.hpp"

namespace ape::obs {

enum class Volatility {
  Stable,    // deterministic under a fixed seed (sim-time, counts, ratios)
  Volatile,  // wall-clock or host-dependent; excluded from stable exports
};

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_ += n; }
  void set(std::uint64_t v) noexcept { value_ = v; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

// Last-written value plus the high-water mark, so queue depths and memory
// footprints report both the instantaneous and the peak reading.
class Gauge {
 public:
  void set(double v) noexcept {
    value_ = v;
    if (!seen_ || v > max_) max_ = v;
    seen_ = true;
  }
  [[nodiscard]] double value() const noexcept { return value_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  double value_ = 0.0;
  double max_ = 0.0;
  bool seen_ = false;
};

class MetricsRegistry {
 public:
  struct HistogramEntry {
    stats::Histogram histogram;
    Volatility volatility = Volatility::Stable;
  };
  struct GaugeEntry {
    Gauge gauge;
    Volatility volatility = Volatility::Stable;
  };

  // Lookup-or-create; references stay valid for the registry's lifetime
  // (std::map nodes are stable).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name, Volatility volatility = Volatility::Stable);
  stats::Histogram& histogram(const std::string& name, const std::string& unit = "",
                              Volatility volatility = Volatility::Stable);

  // Folds `other` into this registry with every name prefixed — how a bench
  // lines up per-system registries ("system.APE-CACHE.ap.cache.hit", ...)
  // inside one snapshot.
  void merge(const MetricsRegistry& other, const std::string& prefix);

  void clear();
  [[nodiscard]] bool empty() const noexcept {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  [[nodiscard]] const std::map<std::string, Counter>& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, GaugeEntry>& gauges() const noexcept {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, HistogramEntry>& histograms() const noexcept {
    return histograms_;
  }

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, GaugeEntry> gauges_;
  std::map<std::string, HistogramEntry> histograms_;
};

// --- pre-resolved handles (DESIGN.md §5h) ----------------------------------
//
// A handle binds (registry, name) once — typically at component
// construction — and caches the instrument pointer at first use, so
// per-request code bumps a pointer instead of building a std::string and
// walking the name map on every event.  Two properties matter:
//
//   * Lazy resolution.  The instrument is created on the first
//     add()/record(), not at bind time, exactly like the by-name calls the
//     handle replaces.  A bound-but-never-touched handle therefore adds
//     nothing to the export, keeping snapshots byte-identical with the
//     pre-handle code.  resolve() exists for the opposite contract: metrics
//     that must appear in the export even at zero.
//
//   * Null tolerance.  A default-constructed handle (component built
//     without an observer) makes every operation a cheap no-op, mirroring
//     the `observer_ != nullptr` guards it replaces.
class CounterHandle {
 public:
  CounterHandle() = default;
  CounterHandle(MetricsRegistry& registry, std::string name)
      : registry_(&registry), name_(std::move(name)) {}

  void add(std::uint64_t n = 1) {
    if (counter_ != nullptr) {
      counter_->add(n);
    } else if (registry_ != nullptr) {
      counter_ = &registry_->counter(name_);
      counter_->add(n);
    }
  }

  // Forces instrument creation now; returns it (null when unbound).
  Counter* resolve() {
    if (counter_ == nullptr && registry_ != nullptr) counter_ = &registry_->counter(name_);
    return counter_;
  }

  [[nodiscard]] bool bound() const noexcept { return registry_ != nullptr; }

 private:
  MetricsRegistry* registry_ = nullptr;
  std::string name_;
  Counter* counter_ = nullptr;
};

class HistogramHandle {
 public:
  HistogramHandle() = default;
  HistogramHandle(MetricsRegistry& registry, std::string name, std::string unit = "",
                  Volatility volatility = Volatility::Stable)
      : registry_(&registry),
        name_(std::move(name)),
        unit_(std::move(unit)),
        volatility_(volatility) {}

  void record(double v) {
    if (histogram_ != nullptr) {
      histogram_->record(v);
    } else if (registry_ != nullptr) {
      histogram_ = &registry_->histogram(name_, unit_, volatility_);
      histogram_->record(v);
    }
  }

  [[nodiscard]] bool bound() const noexcept { return registry_ != nullptr; }

 private:
  MetricsRegistry* registry_ = nullptr;
  std::string name_;
  std::string unit_;
  Volatility volatility_ = Volatility::Stable;
  stats::Histogram* histogram_ = nullptr;
};

}  // namespace ape::obs

// Span — the unit of causal request tracing (DESIGN.md §5f).
//
// Every app request mints a TraceId; each unit of attributable work along
// its path (DNS lookup, AP serve, delegated fetch, flash read, edge/origin
// serve, ...) is a Span: a named sim-time interval with a parent edge that
// carries causality across components.  IDs are minted from monotonic
// per-SpanLog counters, so a fixed seed reproduces byte-identical span
// dumps — determinism is inherited from event execution order, never from
// pointers or wall time.
//
// TraceContext is the half that travels: {trace, span} pairs are encoded
// into message metadata (the X-Ape-Trace HTTP header, the TYPE=301 DNS RR)
// so the receiving component can parent its spans under the sender's.
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.hpp"

namespace ape::obs {

using TraceId = std::uint64_t;  // 0 = "not traced"
using SpanId = std::uint64_t;   // 0 = "no span"

struct TraceContext {
  TraceId trace = 0;
  SpanId span = 0;

  [[nodiscard]] constexpr bool valid() const noexcept { return trace != 0 && span != 0; }
  friend bool operator==(const TraceContext&, const TraceContext&) = default;
};

struct Span {
  TraceId trace = 0;
  SpanId id = 0;
  SpanId parent = 0;      // 0 = root of its trace
  std::string name;       // span kind ("client.request", "dns.query", ...)
  std::string component;  // emitting subsystem ("client", "ap", "edge", ...)
  std::string key;        // object key / domain / app id, when applicable
  sim::Time start{};
  sim::Time end{};
  bool closed = false;

  [[nodiscard]] sim::Duration duration() const noexcept { return end - start; }
};

// Wire form for propagation through message metadata: "<trace>-<span>"
// (decimal).  Compact, allocation-light, and — crucially — only ever
// serialized when tracing is enabled, so default runs keep byte-identical
// wire sizes and therefore byte-identical simulated timings.
[[nodiscard]] std::string encode_trace_context(const TraceContext& ctx);

// Returns an invalid context when `text` does not parse.
[[nodiscard]] TraceContext decode_trace_context(const std::string& text);

}  // namespace ape::obs

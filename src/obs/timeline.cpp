#include "obs/timeline.hpp"

#include <algorithm>
#include <cassert>
#include <ostream>

#include "obs/export.hpp"

namespace ape::obs {

TimelineWindow Timeline::DeltaCursor::advance(const MetricsRegistry& registry) {
  TimelineWindow window;

  for (const auto& [name, counter] : registry.counters()) {
    const std::uint64_t current = counter.value();
    const std::uint64_t previous = last_counters_[name];
    if (current != previous) {
      window.counter_deltas[name] =
          static_cast<std::int64_t>(current) - static_cast<std::int64_t>(previous);
      last_counters_[name] = current;
    }
  }

  for (const auto& [name, entry] : registry.gauges()) {
    if (entry.volatility != Volatility::Stable) continue;
    window.gauges[name] = entry.gauge.value();
  }

  for (const auto& [name, entry] : registry.histograms()) {
    if (entry.volatility != Volatility::Stable) continue;
    const stats::Histogram& h = entry.histogram;
    const std::vector<double>& samples = h.samples();
    std::size_t& consumed = consumed_samples_[name];
    assert(consumed <= samples.size() && "histogram shrank mid-run (clear between captures?)");
    if (consumed >= samples.size()) continue;

    // Summary over exactly the window's slice; sorted locally so the
    // registry's own lazily-sorted cache is untouched.
    std::vector<double> slice(samples.begin() + static_cast<std::ptrdiff_t>(consumed),
                              samples.end());
    consumed = samples.size();
    std::sort(slice.begin(), slice.end());
    const auto n = slice.size();
    const auto pct = [&slice, n](double q) {
      const double pos = q * static_cast<double>(n - 1);
      const auto lo = static_cast<std::size_t>(pos);
      const auto hi = std::min(lo + 1, n - 1);
      const double frac = pos - static_cast<double>(lo);
      return slice[lo] * (1.0 - frac) + slice[hi] * frac;
    };

    WindowHistogramSummary summary;
    summary.unit = h.unit();
    summary.count = n;
    for (double v : slice) summary.sum += v;
    summary.mean = summary.sum / static_cast<double>(n);
    summary.min = slice.front();
    summary.max = slice.back();
    summary.p50 = pct(0.50);
    summary.p95 = pct(0.95);
    summary.p99 = pct(0.99);
    window.histograms.emplace(name, std::move(summary));
  }

  return window;
}

void Timeline::DeltaCursor::reset() {
  last_counters_.clear();
  consumed_samples_.clear();
}

const TimelineWindow* Timeline::capture(const MetricsRegistry& registry, sim::Time now) {
  if (!enabled_) return nullptr;
  TimelineWindow window = cursor_.advance(registry);
  window.index = windows_.size();
  window.start = windows_.empty() ? sim::Time{} : windows_.back().end;
  window.end = now;
  assert(window.start <= window.end && "capture instants must be monotone");
  windows_.push_back(std::move(window));
  return &windows_.back();
}

std::vector<std::string> Timeline::reconcile(const MetricsRegistry& registry) const {
  std::vector<std::string> errors;

  const TimelineWindow* prev = nullptr;
  for (const TimelineWindow& w : windows_) {
    if (w.index != static_cast<std::uint64_t>(&w - windows_.data())) {
      errors.push_back("window " + std::to_string(w.index) + ": non-consecutive index");
    }
    if (w.end < w.start) {
      errors.push_back("window " + std::to_string(w.index) + ": end precedes start");
    }
    if (prev != nullptr && w.start != prev->end) {
      errors.push_back("window " + std::to_string(w.index) +
                       ": start does not meet previous window's end");
    }
    prev = &w;
  }

  // Every counter's deltas must sum exactly to its end-of-run value, and
  // every counter with a nonzero total must have shown up in some window.
  std::map<std::string, std::int64_t> sums;
  for (const TimelineWindow& w : windows_) {
    for (const auto& [name, delta] : w.counter_deltas) sums[name] += delta;
  }
  for (const auto& [name, counter] : registry.counters()) {
    const auto it = sums.find(name);
    const std::int64_t sum = it == sums.end() ? 0 : it->second;
    if (sum != static_cast<std::int64_t>(counter.value())) {
      errors.push_back("counter " + name + ": window deltas sum to " + std::to_string(sum) +
                       " but snapshot total is " + std::to_string(counter.value()));
    }
    if (it != sums.end()) sums.erase(it);
  }
  for (const auto& [name, sum] : sums) {
    errors.push_back("counter " + name + ": windows carry " + std::to_string(sum) +
                     " but the counter is missing from the registry");
  }

  // Histogram window counts must sum to the final sample count.
  std::map<std::string, std::size_t> counts;
  for (const TimelineWindow& w : windows_) {
    for (const auto& [name, summary] : w.histograms) counts[name] += summary.count;
  }
  for (const auto& [name, entry] : registry.histograms()) {
    if (entry.volatility != Volatility::Stable) continue;
    const auto it = counts.find(name);
    const std::size_t count = it == counts.end() ? 0 : it->second;
    if (count != entry.histogram.count()) {
      errors.push_back("histogram " + name + ": window counts sum to " +
                       std::to_string(count) + " but snapshot holds " +
                       std::to_string(entry.histogram.count()) + " samples");
    }
  }

  return errors;
}

void Timeline::clear() {
  windows_.clear();
  cursor_.reset();
}

void write_timeseries_csv(std::ostream& out, const Timeline& timeline) {
  out << "window,start_us,end_us,kind,name,field,value\n";
  for (const TimelineWindow& w : timeline.windows()) {
    const std::string prefix = std::to_string(w.index) + "," +
                               std::to_string(w.start.since_epoch.count()) + "," +
                               std::to_string(w.end.since_epoch.count()) + ",";
    for (const auto& [name, delta] : w.counter_deltas) {
      out << prefix << "counter," << name << ",delta," << delta << "\n";
    }
    for (const auto& [name, value] : w.gauges) {
      out << prefix << "gauge," << name << ",value," << format_double(value) << "\n";
    }
    for (const auto& [name, s] : w.histograms) {
      out << prefix << "histogram," << name << ",count," << s.count << "\n";
      out << prefix << "histogram," << name << ",mean," << format_double(s.mean) << "\n";
      out << prefix << "histogram," << name << ",p50," << format_double(s.p50) << "\n";
      out << prefix << "histogram," << name << ",p95," << format_double(s.p95) << "\n";
      out << prefix << "histogram," << name << ",p99," << format_double(s.p99) << "\n";
    }
  }
}

}  // namespace ape::obs

// TraceLog — a bounded ring of typed sim-time events.
//
// Components append {sim_time, component, kind, key, detail} tuples on
// interesting transitions (cache admit/evict, DNS short-circuit, PACM
// solve, delegation).  Memory is bounded: once `capacity` events are held
// the oldest is overwritten and `dropped()` counts what fell off, so a
// week-long simulated run can keep tracing without growing.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace ape::obs {

struct TraceEvent {
  sim::Time at{};          // virtual time the event happened
  std::string component;   // emitting subsystem ("ap", "pacm", "dns", ...)
  std::string kind;        // event type within the component ("hit", "evict")
  std::string key;         // object key / domain / app id, when applicable
  std::string detail;      // free-form extra context
};

class TraceLog {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit TraceLog(std::size_t capacity = kDefaultCapacity);

  void record(sim::Time at, std::string component, std::string kind, std::string key = "",
              std::string detail = "");

  // Disabled logs drop records cheaply without counting them.
  void set_enabled(bool enabled) noexcept { enabled_ = enabled; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t recorded() const noexcept { return recorded_; }
  [[nodiscard]] std::size_t dropped() const noexcept { return recorded_ - size_; }

  // Events oldest -> newest (unwinds the ring).
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

  void clear();

 private:
  std::size_t capacity_;
  std::vector<TraceEvent> ring_;
  std::size_t next_ = 0;       // slot the next record lands in
  std::size_t size_ = 0;       // live events (<= capacity_)
  std::size_t recorded_ = 0;   // total ever recorded while enabled
  bool enabled_ = true;
};

}  // namespace ape::obs

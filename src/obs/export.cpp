#include "obs/export.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace ape::obs {

namespace {

void append_histogram_json(std::ostream& out, const MetricsRegistry::HistogramEntry& entry) {
  const stats::Histogram& h = entry.histogram;
  out << "{\"unit\":\"" << json_escape(h.unit()) << "\",\"count\":" << h.count()
      << ",\"sum\":" << format_double(h.sum()) << ",\"mean\":" << format_double(h.mean())
      << ",\"min\":" << format_double(h.empty() ? 0.0 : h.min())
      << ",\"max\":" << format_double(h.empty() ? 0.0 : h.max())
      << ",\"stddev\":" << format_double(h.stddev())
      << ",\"p50\":" << format_double(h.percentile(0.50))
      << ",\"p90\":" << format_double(h.percentile(0.90))
      << ",\"p95\":" << format_double(h.percentile(0.95))
      << ",\"p99\":" << format_double(h.percentile(0.99)) << "}";
}

void append_gauge_json(std::ostream& out, const Gauge& gauge) {
  out << "{\"value\":" << format_double(gauge.value())
      << ",\"max\":" << format_double(gauge.max()) << "}";
}

template <typename Map, typename Pred, typename Emit>
void append_object(std::ostream& out, const Map& map, Pred include, Emit emit) {
  out << "{";
  bool first = true;
  for (const auto& [name, entry] : map) {
    if (!include(entry)) continue;
    if (!first) out << ",";
    first = false;
    out << "\"" << json_escape(name) << "\":";
    emit(out, entry);
  }
  out << "}";
}

}  // namespace

std::string format_double(double value) {
  if (!std::isfinite(value)) return "0";
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), value);
  return std::string(buf, res.ptr);
}

std::string json_escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_json(std::ostream& out, const MetricsRegistry& registry, const TraceLog* trace,
                const ExportOptions& options, const SpanLog* spans) {
  const auto stable = [](const auto& entry) {
    return entry.volatility == Volatility::Stable;
  };
  const auto is_volatile = [](const auto& entry) {
    return entry.volatility == Volatility::Volatile;
  };

  out << "{\"schema\":\"ape.obs.v1\"";

  out << ",\"meta\":{";
  bool first = true;
  for (const auto& [key, value] : options.meta) {
    if (!first) out << ",";
    first = false;
    out << "\"" << json_escape(key) << "\":\"" << json_escape(value) << "\"";
  }
  out << "}";

  out << ",\"counters\":{";
  first = true;
  for (const auto& [name, counter] : registry.counters()) {
    if (!first) out << ",";
    first = false;
    out << "\"" << json_escape(name) << "\":" << counter.value();
  }
  out << "}";

  out << ",\"gauges\":";
  append_object(out, registry.gauges(), stable,
                [](std::ostream& os, const MetricsRegistry::GaugeEntry& e) {
                  append_gauge_json(os, e.gauge);
                });

  out << ",\"histograms\":";
  append_object(out, registry.histograms(), stable, append_histogram_json);

  if (options.include_volatile) {
    out << ",\"volatile\":{\"gauges\":";
    append_object(out, registry.gauges(), is_volatile,
                  [](std::ostream& os, const MetricsRegistry::GaugeEntry& e) {
                    append_gauge_json(os, e.gauge);
                  });
    out << ",\"histograms\":";
    append_object(out, registry.histograms(), is_volatile, append_histogram_json);
    out << "}";
  }

  if (options.include_trace && trace != nullptr) {
    out << ",\"trace\":{\"capacity\":" << trace->capacity()
        << ",\"recorded\":" << trace->recorded() << ",\"dropped\":" << trace->dropped()
        << ",\"events\":[";
    first = true;
    for (const TraceEvent& ev : trace->snapshot()) {
      if (!first) out << ",";
      first = false;
      out << "{\"t_us\":" << ev.at.since_epoch.count() << ",\"component\":\""
          << json_escape(ev.component) << "\",\"kind\":\"" << json_escape(ev.kind)
          << "\",\"key\":\"" << json_escape(ev.key) << "\",\"detail\":\""
          << json_escape(ev.detail) << "\"}";
    }
    out << "]}";
  }

  if (options.include_spans && spans != nullptr) {
    out << ",\"spans\":{\"capacity\":" << spans->capacity()
        << ",\"recorded\":" << spans->recorded() << ",\"dropped\":" << spans->dropped()
        << ",\"open\":" << spans->open_count() << ",\"spans\":[";
    first = true;
    for (const Span& span : spans->spans()) {
      if (!first) out << ",";
      first = false;
      out << "{\"trace\":" << span.trace << ",\"span\":" << span.id
          << ",\"parent\":" << span.parent << ",\"name\":\"" << json_escape(span.name)
          << "\",\"component\":\"" << json_escape(span.component) << "\",\"key\":\""
          << json_escape(span.key) << "\",\"start_us\":" << span.start.since_epoch.count()
          << ",\"end_us\":" << span.end.since_epoch.count() << "}";
    }
    out << "]}";
  }

  if (options.timeline != nullptr) {
    const Timeline& tl = *options.timeline;
    out << ",\"timeseries\":{\"interval_us\":" << tl.interval().count() << ",\"windows\":[";
    first = true;
    for (const TimelineWindow& w : tl.windows()) {
      if (!first) out << ",";
      first = false;
      out << "{\"index\":" << w.index << ",\"start_us\":" << w.start.since_epoch.count()
          << ",\"end_us\":" << w.end.since_epoch.count() << ",\"counters\":{";
      bool inner = true;
      for (const auto& [name, delta] : w.counter_deltas) {
        if (!inner) out << ",";
        inner = false;
        out << "\"" << json_escape(name) << "\":" << delta;
      }
      out << "},\"gauges\":{";
      inner = true;
      for (const auto& [name, value] : w.gauges) {
        if (!inner) out << ",";
        inner = false;
        out << "\"" << json_escape(name) << "\":" << format_double(value);
      }
      out << "},\"histograms\":{";
      inner = true;
      for (const auto& [name, s] : w.histograms) {
        if (!inner) out << ",";
        inner = false;
        out << "\"" << json_escape(name) << "\":{\"unit\":\"" << json_escape(s.unit)
            << "\",\"count\":" << s.count << ",\"sum\":" << format_double(s.sum)
            << ",\"mean\":" << format_double(s.mean) << ",\"min\":" << format_double(s.min)
            << ",\"max\":" << format_double(s.max) << ",\"p50\":" << format_double(s.p50)
            << ",\"p95\":" << format_double(s.p95) << ",\"p99\":" << format_double(s.p99)
            << "}";
      }
      out << "}}";
    }
    out << "]}";
  }

  if (options.alerts != nullptr) {
    const SloEvaluator& slo = *options.alerts;
    out << ",\"alerts\":{\"fired\":" << slo.fired() << ",\"resolved\":" << slo.resolved()
        << ",\"rules\":[";
    first = true;
    for (const SloRule& rule : slo.rules()) {
      if (!first) out << ",";
      first = false;
      out << "{\"name\":\"" << json_escape(rule.name) << "\",\"metric\":\""
          << json_escape(rule.metric) << "\",\"field\":\"" << to_string(rule.field)
          << "\",\"op\":\"" << json_escape(to_string(rule.op))
          << "\",\"threshold\":" << format_double(rule.threshold)
          << ",\"for_windows\":" << rule.for_windows
          << ",\"resolve_windows\":" << rule.resolve_windows << ",\"state\":\""
          << to_string(slo.state(rule.name)) << "\"}";
    }
    out << "],\"transitions\":[";
    first = true;
    for (const AlertTransition& t : slo.transitions()) {
      if (!first) out << ",";
      first = false;
      out << "{\"window\":" << t.window << ",\"rule\":\"" << json_escape(t.rule)
          << "\",\"from\":\"" << to_string(t.from) << "\",\"to\":\"" << to_string(t.to)
          << "\",\"value\":" << format_double(t.value) << "}";
    }
    out << "]}";
  }

  out << "}\n";
}

std::string to_json(const MetricsRegistry& registry, const TraceLog* trace,
                    const ExportOptions& options, const SpanLog* spans) {
  std::ostringstream os;
  write_json(os, registry, trace, options, spans);
  return os.str();
}

void write_csv(std::ostream& out, const MetricsRegistry& registry, bool include_volatile) {
  out << "name,kind,field,value\n";
  for (const auto& [name, counter] : registry.counters()) {
    out << name << ",counter,value," << counter.value() << "\n";
  }
  for (const auto& [name, entry] : registry.gauges()) {
    if (entry.volatility == Volatility::Volatile && !include_volatile) continue;
    out << name << ",gauge,value," << format_double(entry.gauge.value()) << "\n";
    out << name << ",gauge,max," << format_double(entry.gauge.max()) << "\n";
  }
  for (const auto& [name, entry] : registry.histograms()) {
    if (entry.volatility == Volatility::Volatile && !include_volatile) continue;
    const stats::Histogram& h = entry.histogram;
    out << name << ",histogram,count," << h.count() << "\n";
    out << name << ",histogram,mean," << format_double(h.mean()) << "\n";
    out << name << ",histogram,p50," << format_double(h.percentile(0.50)) << "\n";
    out << name << ",histogram,p95," << format_double(h.percentile(0.95)) << "\n";
    out << name << ",histogram,p99," << format_double(h.percentile(0.99)) << "\n";
  }
}

bool write_json_file(const std::string& path, const MetricsRegistry& registry,
                     const TraceLog* trace, const ExportOptions& options,
                     const SpanLog* spans) {
  std::ofstream file(path);
  if (!file) return false;
  write_json(file, registry, trace, options, spans);
  return static_cast<bool>(file);
}

}  // namespace ape::obs

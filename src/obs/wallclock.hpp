// The single sanctioned wall-clock site in the tree.
//
// Solver/host timing is real observability, but wall-clock readings are
// host-dependent: they must never leak into the stable sections of an
// `ape.obs.v1` export (PR 1's byte-identity promise) and, by ape-lint rule,
// may not appear outside this header.  Components therefore measure through
// WallClockTimer, which samples only when the owning Observer has opted in
// (`Observer::enable_wallclock`) — and whatever it measures may only be
// recorded into Volatility::Volatile instruments.
#pragma once

#include <chrono>

namespace ape::obs {

class WallClockTimer {
 public:
  // A disabled timer never touches the clock and reports 0.
  explicit WallClockTimer(bool enabled) : enabled_(enabled) {
    if (enabled_) {
      start_ = std::chrono::steady_clock::now();  // ape-lint: allow(wallclock)
    }
  }

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  [[nodiscard]] double elapsed_us() const {
    if (!enabled_) return 0.0;
    const auto now = std::chrono::steady_clock::now();  // ape-lint: allow(wallclock)
    return std::chrono::duration<double, std::micro>(now - start_).count();
  }

 private:
  bool enabled_;
  std::chrono::steady_clock::time_point start_{};  // ape-lint: allow(wallclock)
};

}  // namespace ape::obs

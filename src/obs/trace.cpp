#include "obs/trace.hpp"

#include <utility>

namespace ape::obs {

TraceLog::TraceLog(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.resize(capacity_);
}

void TraceLog::record(sim::Time at, std::string component, std::string kind, std::string key,
                      std::string detail) {
  if (!enabled_) return;
  TraceEvent& slot = ring_[next_];
  slot.at = at;
  slot.component = std::move(component);
  slot.kind = std::move(kind);
  slot.key = std::move(key);
  slot.detail = std::move(detail);
  next_ = (next_ + 1) % capacity_;
  if (size_ < capacity_) ++size_;
  ++recorded_;
}

std::vector<TraceEvent> TraceLog::snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(size_);
  // When full, `next_` points at the oldest slot; otherwise the ring starts
  // at 0 and `next_ == size_`.
  const std::size_t start = size_ == capacity_ ? next_ : 0;
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % capacity_]);
  }
  return out;
}

void TraceLog::clear() {
  for (auto& slot : ring_) slot = TraceEvent{};
  next_ = 0;
  size_ = 0;
  recorded_ = 0;
}

}  // namespace ape::obs

// Chrome/Perfetto `trace_event` JSON exporter for span dumps.
//
// Emits the JSON Array Format the Perfetto UI (ui.perfetto.dev) and
// chrome://tracing load directly: one complete ("ph":"X") event per closed
// span with microsecond ts/dur, pid 1, and one tid per emitting component
// (named via thread_name metadata events), so the per-hop lanes read like
// a distributed-trace waterfall.  Span identity/causality ride in `args`
// ({trace, span, parent, key}) — that is what tools/trace_report.py uses
// to rebuild the trees and re-check attribution offline.
//
// Output is deterministic: components are lane-ordered by name, events by
// span-open order, and doubles never appear (all integer microseconds).
#pragma once

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "obs/span.hpp"

namespace ape::obs {

class SpanLog;

struct PerfettoExportOptions {
  std::map<std::string, std::string> meta;  // emitted under "otherData"
};

void write_perfetto_json(std::ostream& out, const std::vector<Span>& spans,
                         const PerfettoExportOptions& options = {});

[[nodiscard]] std::string to_perfetto_json(const std::vector<Span>& spans,
                                           const PerfettoExportOptions& options = {});

// Writes the span log's dump to `path`; returns false when the file cannot
// be opened or written.
bool write_perfetto_file(const std::string& path, const SpanLog& log,
                         const PerfettoExportOptions& options = {});

}  // namespace ape::obs

// Observer — the per-run observability bundle (metrics + trace) that
// instrumented components share.
//
// One Observer lives for one run (the Testbed owns one per system under
// test; benches own one per binary).  Components hold a nullable
// `obs::Observer*`: a null pointer means "not observed" and every hook
// degrades to a branch, so un-instrumented unit tests and the hot loops of
// uninterested callers pay nothing.
#pragma once

#include <string>

#include "obs/metrics.hpp"
#include "obs/span_log.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"

namespace ape::obs {

class Observer {
 public:
  Observer() = default;
  explicit Observer(std::size_t trace_capacity,
                    std::size_t span_capacity = SpanLog::kDefaultCapacity)
      : trace_(trace_capacity), spans_(span_capacity) {}

  // Opt-in for wall-clock measurement (obs::WallClockTimer).  Off by
  // default: solver/host timing only runs when a bench or experiment that
  // wants the volatile section asks for it, so deterministic runs never
  // even sample the clock.
  void enable_wallclock(bool on = true) noexcept { wallclock_ = on; }
  [[nodiscard]] bool wallclock_enabled() const noexcept { return wallclock_; }

  [[nodiscard]] MetricsRegistry& metrics() noexcept { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const noexcept { return metrics_; }
  [[nodiscard]] TraceLog& trace() noexcept { return trace_; }
  [[nodiscard]] const TraceLog& trace() const noexcept { return trace_; }

  // Causal request spans (DESIGN.md §5f).  Default-disabled: components
  // must check spans_enabled() before injecting trace context into wire
  // messages, so untraced runs keep byte-identical simulated traffic.
  [[nodiscard]] SpanLog& spans() noexcept { return spans_; }
  [[nodiscard]] const SpanLog& spans() const noexcept { return spans_; }
  [[nodiscard]] bool spans_enabled() const noexcept { return spans_.enabled(); }

  // Windowed time-series telemetry (DESIGN.md §5g).  Default-disabled:
  // nothing captures windows or scrapes them over the simulated network
  // unless a run opts in, so default runs stay byte-identical.
  [[nodiscard]] Timeline& timeline() noexcept { return timeline_; }
  [[nodiscard]] const Timeline& timeline() const noexcept { return timeline_; }
  [[nodiscard]] bool timeline_enabled() const noexcept { return timeline_.enabled(); }

  // Shorthands for the two most common hooks.
  void count(const std::string& name, std::uint64_t n = 1) { metrics_.counter(name).add(n); }
  void event(sim::Time at, std::string component, std::string kind, std::string key = "",
             std::string detail = "") {
    trace_.record(at, std::move(component), std::move(kind), std::move(key),
                  std::move(detail));
  }

 private:
  MetricsRegistry metrics_;
  TraceLog trace_;
  SpanLog spans_;
  Timeline timeline_;
  bool wallclock_ = false;
};

}  // namespace ape::obs

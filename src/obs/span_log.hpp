// SpanLog — the per-run store of causal request spans, plus the analysis
// that turns a span dump into per-request latency attribution.
//
// Disabled by default: open() degrades to "return a null context" so the
// instrumented hot paths pay a branch and nothing else, and — because
// trace-context injection into DNS/HTTP messages is keyed on enabled() —
// default runs keep byte-identical wire traffic and exports.
//
// Capacity is bounded with drop-*newest* semantics: once full, open()
// stops minting spans and counts what it refused.  Dropping the newest
// (rather than ring-overwriting the oldest) keeps every recorded trace
// internally consistent — a span is only ever present together with all
// of its ancestors, so attribution over a truncated log still reconciles
// exactly; dropped() says how much of the tail is missing.
//
// The ambient-context stack bridges synchronous call chains that have no
// message to carry a TraceContext through (PACM solving inside an insert,
// a flash read inside the HTTP handler, TCP connects under a fetch): the
// caller pushes its span around the call, the callee parents under
// current_context().  Push/pop must bracket synchronous sections only —
// the stack is meaningless across scheduled events.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "sim/time.hpp"

namespace ape::obs {

class SpanLog {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  explicit SpanLog(std::size_t capacity = kDefaultCapacity);

  void set_enabled(bool on) noexcept { enabled_ = on; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  // Opens a root span, minting a fresh TraceId.  Returns the span's
  // context — null when disabled or full.
  [[nodiscard]] TraceContext open_root(std::string name, std::string component,
                                       std::string key, sim::Time start);

  // Opens a child span under `parent`.  A null parent yields a null
  // context (no orphans: only explicit roots start traces).
  [[nodiscard]] TraceContext open(const TraceContext& parent, std::string name,
                                  std::string component, std::string key, sim::Time start);

  // Closes the span `ctx` refers to; no-op on null/unknown contexts and on
  // already-closed spans (first close wins).
  void close(const TraceContext& ctx, sim::Time end);

  // --- ambient context (synchronous propagation) -------------------------
  void push_context(const TraceContext& ctx) { ambient_.push_back(ctx); }
  void pop_context() { ambient_.pop_back(); }
  [[nodiscard]] TraceContext current_context() const {
    return ambient_.empty() ? TraceContext{} : ambient_.back();
  }

  // --- introspection -----------------------------------------------------
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t size() const noexcept { return spans_.size(); }
  [[nodiscard]] std::size_t recorded() const noexcept { return spans_.size(); }
  [[nodiscard]] std::size_t dropped() const noexcept { return dropped_; }
  [[nodiscard]] std::size_t open_count() const noexcept { return open_count_; }
  [[nodiscard]] const std::vector<Span>& spans() const noexcept { return spans_; }

  void clear();

 private:
  std::size_t capacity_;
  std::vector<Span> spans_;             // append-only; spans_[id - 1].id == id
  std::vector<TraceContext> ambient_;   // synchronous propagation stack
  TraceId next_trace_ = 1;
  std::size_t dropped_ = 0;             // opens refused at capacity
  std::size_t open_count_ = 0;          // opened but not yet closed
  bool enabled_ = false;
};

// RAII ambient-context scope; inert on null logs/contexts.
class ScopedTraceContext {
 public:
  ScopedTraceContext(SpanLog* log, const TraceContext& ctx)
      : log_(log != nullptr && ctx.valid() ? log : nullptr) {
    if (log_ != nullptr) log_->push_context(ctx);
  }
  ~ScopedTraceContext() {
    if (log_ != nullptr) log_->pop_context();
  }
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  SpanLog* log_;
};

// --- analysis -------------------------------------------------------------

// One structural defect in a span dump (unclosed span, orphan parent,
// multiple roots, child escaping its parent's bounds, sibling overlap).
struct SpanIssue {
  TraceId trace = 0;
  SpanId span = 0;
  std::string what;
};

// Structural invariants every complete trace must satisfy; an empty result
// is the precondition for exact attribution.
[[nodiscard]] std::vector<SpanIssue> validate_spans(const std::vector<Span>& spans);

// Per-request latency attribution: a span's *exclusive* time is its
// duration minus the time covered by its direct children.  Because spans
// nest strictly and siblings never overlap (validate_spans), the exclusive
// times of a trace sum *exactly* to the root's end-to-end duration — the
// reconciliation the acceptance tests assert.
struct SpanAttribution {
  const Span* span = nullptr;
  sim::Duration exclusive{0};
};

struct TraceAttribution {
  TraceId trace = 0;
  const Span* root = nullptr;
  sim::Duration end_to_end{0};
  sim::Duration exclusive_sum{0};
  bool reconciles = false;  // exclusive_sum == end_to_end (and exactly one root)
  std::vector<SpanAttribution> rows;  // span-open order
};

[[nodiscard]] std::vector<TraceAttribution> attribute_traces(const std::vector<Span>& spans);

// Folds per-span-kind latency histograms ("span.<name>_ms") into
// `registry`, starting at `from_index` (pass the previous return value to
// make repeated collection idempotent).  Returns spans.size().
std::size_t record_span_histograms(const std::vector<Span>& spans, MetricsRegistry& registry,
                                   std::size_t from_index = 0);

}  // namespace ape::obs

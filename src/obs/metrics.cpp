#include "obs/metrics.hpp"

namespace ape::obs {

Counter& MetricsRegistry::counter(const std::string& name) { return counters_[name]; }

Gauge& MetricsRegistry::gauge(const std::string& name, Volatility volatility) {
  auto [it, inserted] = gauges_.try_emplace(name);
  if (inserted) it->second.volatility = volatility;
  return it->second.gauge;
}

stats::Histogram& MetricsRegistry::histogram(const std::string& name, const std::string& unit,
                                             Volatility volatility) {
  auto [it, inserted] = histograms_.try_emplace(name);
  if (inserted) {
    it->second.histogram = stats::Histogram(unit);
    it->second.volatility = volatility;
  }
  return it->second.histogram;
}

void MetricsRegistry::merge(const MetricsRegistry& other, const std::string& prefix) {
  for (const auto& [name, c] : other.counters_) {
    counters_[prefix + name].add(c.value());
  }
  for (const auto& [name, g] : other.gauges_) {
    auto [it, inserted] = gauges_.try_emplace(prefix + name);
    if (inserted) it->second.volatility = g.volatility;
    it->second.gauge.set(g.gauge.max());  // seed the high-water first
    it->second.gauge.set(g.gauge.value());
  }
  for (const auto& [name, h] : other.histograms_) {
    auto [it, inserted] = histograms_.try_emplace(prefix + name);
    if (inserted) {
      it->second.histogram = stats::Histogram(h.histogram.unit());
      it->second.volatility = h.volatility;
    }
    it->second.histogram.merge(h.histogram);
  }
}

void MetricsRegistry::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace ape::obs

// Machine-readable snapshot exporters for MetricsRegistry / TraceLog.
//
// The JSON schema ("ape.obs.v1") is the contract the bench suite, the
// committed baselines under bench/baselines/ and scripts/
// check_bench_regression.py all share — change it only additively:
//
//   {
//     "schema": "ape.obs.v1",
//     "meta":       { "<key>": "<value>", ... },          // caller-supplied
//     "counters":   { "<name>": <uint>, ... },
//     "gauges":     { "<name>": {"value": <f>, "max": <f>}, ... },
//     "histograms": { "<name>": {"unit": "<u>", "count": <n>, "sum": <f>,
//                                "mean": <f>, "min": <f>, "max": <f>,
//                                "stddev": <f>, "p50": <f>, "p90": <f>,
//                                "p95": <f>, "p99": <f>}, ... },
//     "volatile":   { "gauges": {...}, "histograms": {...} },   // opt-in
//     "trace":      { "capacity": <n>, "recorded": <n>, "dropped": <n>,
//                     "events": [{"t_us": <int>, "component": "...",
//                                 "kind": "...", "key": "...",
//                                 "detail": "..."}, ...] },     // opt-in
//     "spans":      { "capacity": <n>, "recorded": <n>, "dropped": <n>,
//                     "open": <n>,
//                     "spans": [{"trace": <id>, "span": <id>,
//                                "parent": <id>, "name": "...",
//                                "component": "...", "key": "...",
//                                "start_us": <int>, "end_us": <int>}, ...] },  // opt-in
//     "timeseries": { "interval_us": <int>, "windows":
//                     [{"index": <n>, "start_us": <int>, "end_us": <int>,
//                       "counters": {"<name>": <int-delta>, ...},
//                       "gauges": {"<name>": <f>, ...},
//                       "histograms": {"<name>": {"unit": "<u>",
//                          "count": <n>, "sum": <f>, "mean": <f>,
//                          "min": <f>, "max": <f>, "p50": <f>,
//                          "p95": <f>, "p99": <f>}, ...}}, ...] },  // opt-in
//     "alerts":     { "fired": <n>, "resolved": <n>,
//                     "rules": [{"name": "...", "metric": "...",
//                                "field": "...", "op": "...",
//                                "threshold": <f>, "for_windows": <n>,
//                                "resolve_windows": <n>,
//                                "state": "<final state>"}, ...],
//                     "transitions": [{"window": <n>, "rule": "...",
//                                      "from": "...", "to": "...",
//                                      "value": <f>}, ...] }  // opt-in
//   }
//
// The drop counts in "trace"/"spans" exist so a truncated log is never
// silently read as complete: consumers must treat dropped > 0 as "tail
// missing" (spans drop newest-first, so recorded traces stay consistent).
//
// Doubles are rendered with std::to_chars (shortest round-trip form), so a
// deterministic run exports a byte-identical file.  Wall-clock instruments
// (Volatility::Volatile) only appear under "volatile" and only when asked,
// keeping the stable sections diffable.
#pragma once

#include <map>
#include <ostream>
#include <string>

#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/span_log.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"

namespace ape::obs {

struct ExportOptions {
  std::map<std::string, std::string> meta;  // run identity (bench name, ...)
  bool include_volatile = false;
  bool include_trace = false;
  bool include_spans = false;
  // Timeline-run extensions (DESIGN.md §5g): non-null emits "timeseries" /
  // "alerts".  Default runs leave them null, so the snapshot bytes are
  // unchanged — the same gating contract as the opt-in sections above.
  const Timeline* timeline = nullptr;
  const SloEvaluator* alerts = nullptr;
};

void write_json(std::ostream& out, const MetricsRegistry& registry,
                const TraceLog* trace = nullptr, const ExportOptions& options = {},
                const SpanLog* spans = nullptr);

[[nodiscard]] std::string to_json(const MetricsRegistry& registry,
                                  const TraceLog* trace = nullptr,
                                  const ExportOptions& options = {},
                                  const SpanLog* spans = nullptr);

// Flat rows `name,kind,field,value` (kind in {counter, gauge, histogram}),
// one line per scalar — trivially ingestible by spreadsheets / pandas.
void write_csv(std::ostream& out, const MetricsRegistry& registry,
               bool include_volatile = false);

// Writes the JSON snapshot to `path`; returns false when the file cannot
// be opened.
bool write_json_file(const std::string& path, const MetricsRegistry& registry,
                     const TraceLog* trace = nullptr, const ExportOptions& options = {},
                     const SpanLog* spans = nullptr);

// Deterministic shortest-round-trip rendering ("0.5", not "5.000000e-01");
// NaN/Inf degrade to 0 (JSON has no representation for them).
[[nodiscard]] std::string format_double(double value);

[[nodiscard]] std::string json_escape(const std::string& raw);

}  // namespace ape::obs

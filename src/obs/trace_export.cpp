#include "obs/trace_export.hpp"

#include <fstream>
#include <map>
#include <sstream>

#include "obs/export.hpp"    // json_escape
#include "obs/span_log.hpp"

namespace ape::obs {

void write_perfetto_json(std::ostream& out, const std::vector<Span>& spans,
                         const PerfettoExportOptions& options) {
  // Lane assignment: one tid per component, ordered by name so the export
  // is stable across runs regardless of which component traced first.
  std::map<std::string, int> lanes;
  for (const Span& span : spans) lanes.emplace(span.component, 0);
  int next_lane = 1;
  for (auto& [component, lane] : lanes) lane = next_lane++;

  out << "{\"displayTimeUnit\":\"ms\",\"otherData\":{";
  bool first = true;
  for (const auto& [key, value] : options.meta) {
    if (!first) out << ",";
    first = false;
    out << "\"" << json_escape(key) << "\":\"" << json_escape(value) << "\"";
  }
  out << "},\"traceEvents\":[";

  first = true;
  for (const auto& [component, lane] : lanes) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << lane
        << ",\"args\":{\"name\":\"" << json_escape(component) << "\"}}";
  }
  for (const Span& span : spans) {
    if (!span.closed) continue;
    out << (first ? "" : ",") << "{\"name\":\"" << json_escape(span.name) << "\",\"cat\":\""
        << json_escape(span.component) << "\",\"ph\":\"X\",\"ts\":"
        << span.start.since_epoch.count() << ",\"dur\":" << span.duration().count()
        << ",\"pid\":1,\"tid\":" << lanes[span.component] << ",\"args\":{\"trace\":"
        << span.trace << ",\"span\":" << span.id << ",\"parent\":" << span.parent
        << ",\"key\":\"" << json_escape(span.key) << "\"}}";
    first = false;
  }
  out << "]}\n";
}

std::string to_perfetto_json(const std::vector<Span>& spans,
                             const PerfettoExportOptions& options) {
  std::ostringstream os;
  write_perfetto_json(os, spans, options);
  return os.str();
}

bool write_perfetto_file(const std::string& path, const SpanLog& log,
                         const PerfettoExportOptions& options) {
  std::ofstream file(path);
  if (!file) return false;
  write_perfetto_json(file, log.spans(), options);
  return static_cast<bool>(file);
}

}  // namespace ape::obs

#include "obs/span_log.hpp"

#include <algorithm>
#include <map>
#include <utility>

namespace ape::obs {

SpanLog::SpanLog(std::size_t capacity) : capacity_(capacity) {
  spans_.reserve(std::min<std::size_t>(capacity_, 1024));
}

TraceContext SpanLog::open_root(std::string name, std::string component, std::string key,
                                sim::Time start) {
  if (!enabled_) return {};
  if (spans_.size() >= capacity_) {
    ++dropped_;
    return {};
  }
  Span span;
  span.trace = next_trace_++;
  span.id = static_cast<SpanId>(spans_.size() + 1);
  span.parent = 0;
  span.name = std::move(name);
  span.component = std::move(component);
  span.key = std::move(key);
  span.start = start;
  spans_.push_back(std::move(span));
  ++open_count_;
  return TraceContext{spans_.back().trace, spans_.back().id};
}

TraceContext SpanLog::open(const TraceContext& parent, std::string name, std::string component,
                           std::string key, sim::Time start) {
  if (!enabled_ || !parent.valid()) return {};
  if (spans_.size() >= capacity_) {
    ++dropped_;
    return {};
  }
  Span span;
  span.trace = parent.trace;
  span.id = static_cast<SpanId>(spans_.size() + 1);
  span.parent = parent.span;
  span.name = std::move(name);
  span.component = std::move(component);
  span.key = std::move(key);
  span.start = start;
  spans_.push_back(std::move(span));
  ++open_count_;
  return TraceContext{spans_.back().trace, spans_.back().id};
}

void SpanLog::close(const TraceContext& ctx, sim::Time end) {
  if (!ctx.valid() || ctx.span > spans_.size()) return;
  Span& span = spans_[static_cast<std::size_t>(ctx.span) - 1];
  if (span.trace != ctx.trace || span.closed) return;
  span.end = end;
  span.closed = true;
  --open_count_;
}

void SpanLog::clear() {
  spans_.clear();
  ambient_.clear();
  next_trace_ = 1;
  dropped_ = 0;
  open_count_ = 0;
}

// --- analysis -------------------------------------------------------------

namespace {

// Spans of one trace, in open order, keyed for parent lookup.
struct TraceView {
  std::vector<const Span*> spans;
  std::map<SpanId, const Span*> by_id;
  std::map<SpanId, std::vector<const Span*>> children;  // parent id -> children
  const Span* root = nullptr;
  std::size_t root_count = 0;
};

// Ordered map: validation/attribution output order must be deterministic.
std::map<TraceId, TraceView> group_by_trace(const std::vector<Span>& spans) {
  std::map<TraceId, TraceView> traces;
  for (const Span& span : spans) {
    TraceView& view = traces[span.trace];
    view.spans.push_back(&span);
    view.by_id.emplace(span.id, &span);
    if (span.parent == 0) {
      ++view.root_count;
      if (view.root == nullptr) view.root = &span;
    } else {
      view.children[span.parent].push_back(&span);
    }
  }
  return traces;
}

}  // namespace

std::vector<SpanIssue> validate_spans(const std::vector<Span>& spans) {
  std::vector<SpanIssue> issues;
  const auto traces = group_by_trace(spans);
  for (const auto& [trace, view] : traces) {
    if (view.root_count != 1) {
      issues.push_back({trace, 0,
                        "expected exactly one root span, found " +
                            std::to_string(view.root_count)});
    }
    for (const Span* span : view.spans) {
      if (!span->closed) {
        issues.push_back({trace, span->id, "span '" + span->name + "' never closed"});
        continue;
      }
      if (span->end < span->start) {
        issues.push_back({trace, span->id, "span '" + span->name + "' ends before it starts"});
      }
      if (span->parent != 0) {
        const auto parent_it = view.by_id.find(span->parent);
        if (parent_it == view.by_id.end()) {
          issues.push_back({trace, span->id,
                            "span '" + span->name + "' has unknown parent " +
                                std::to_string(span->parent)});
        } else if (parent_it->second->closed &&
                   (span->start < parent_it->second->start ||
                    span->end > parent_it->second->end)) {
          issues.push_back({trace, span->id,
                            "span '" + span->name + "' escapes parent '" +
                                parent_it->second->name + "' bounds"});
        }
      }
    }
    // Sibling non-overlap: within one parent, children must be sequential
    // in sim-time.  This is what makes exclusive-time attribution exact.
    for (const auto& [parent, kids] : view.children) {
      std::vector<const Span*> sorted = kids;
      std::stable_sort(sorted.begin(), sorted.end(),
                       [](const Span* a, const Span* b) { return a->start < b->start; });
      for (std::size_t i = 1; i < sorted.size(); ++i) {
        if (!sorted[i - 1]->closed || !sorted[i]->closed) continue;
        if (sorted[i]->start < sorted[i - 1]->end) {
          issues.push_back({trace, sorted[i]->id,
                            "span '" + sorted[i]->name + "' overlaps sibling '" +
                                sorted[i - 1]->name + "'"});
        }
      }
    }
  }
  return issues;
}

std::vector<TraceAttribution> attribute_traces(const std::vector<Span>& spans) {
  std::vector<TraceAttribution> out;
  const auto traces = group_by_trace(spans);
  out.reserve(traces.size());
  for (const auto& [trace, view] : traces) {
    TraceAttribution attr;
    attr.trace = trace;
    attr.root = view.root;
    if (view.root != nullptr && view.root->closed) attr.end_to_end = view.root->duration();
    attr.rows.reserve(view.spans.size());
    for (const Span* span : view.spans) {
      sim::Duration covered{0};
      if (const auto kids = view.children.find(span->id); kids != view.children.end()) {
        for (const Span* child : kids->second) covered += child->duration();
      }
      SpanAttribution row;
      row.span = span;
      row.exclusive = span->duration() - covered;
      attr.exclusive_sum += row.exclusive;
      attr.rows.push_back(row);
    }
    attr.reconciles = view.root_count == 1 && view.root->closed &&
                      attr.exclusive_sum == attr.end_to_end;
    out.push_back(std::move(attr));
  }
  return out;
}

std::size_t record_span_histograms(const std::vector<Span>& spans, MetricsRegistry& registry,
                                   std::size_t from_index) {
  for (std::size_t i = from_index; i < spans.size(); ++i) {
    const Span& span = spans[i];
    if (!span.closed) continue;
    registry.histogram("span." + span.name + "_ms", "ms")
        .record(sim::to_millis(span.duration()));
  }
  return spans.size();
}

}  // namespace ape::obs

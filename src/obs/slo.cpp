#include "obs/slo.hpp"

#include <cstdlib>
#include <sstream>

namespace ape::obs {
namespace {

bool field_from_token(const std::string& token, SloField& out) {
  if (token == "count") out = SloField::Count;
  else if (token == "sum") out = SloField::Sum;
  else if (token == "mean") out = SloField::Mean;
  else if (token == "min") out = SloField::Min;
  else if (token == "max") out = SloField::Max;
  else if (token == "p50") out = SloField::P50;
  else if (token == "p95") out = SloField::P95;
  else if (token == "p99") out = SloField::P99;
  else return false;
  return true;
}

bool op_from_token(const std::string& token, SloOp& out) {
  if (token == ">=") out = SloOp::Ge;
  else if (token == "<=") out = SloOp::Le;
  else if (token == ">") out = SloOp::Gt;
  else if (token == "<") out = SloOp::Lt;
  else return false;
  return true;
}

bool holds(SloOp op, double value, double threshold) {
  switch (op) {
    case SloOp::Ge: return value >= threshold;
    case SloOp::Le: return value <= threshold;
    case SloOp::Gt: return value > threshold;
    case SloOp::Lt: return value < threshold;
  }
  return false;
}

double summary_field(const WindowHistogramSummary& s, SloField field) {
  switch (field) {
    case SloField::Count: return static_cast<double>(s.count);
    case SloField::Sum: return s.sum;
    case SloField::Mean: return s.mean;
    case SloField::Min: return s.min;
    case SloField::Max: return s.max;
    case SloField::P50: return s.p50;
    case SloField::P95: return s.p95;
    case SloField::P99: return s.p99;
    case SloField::Value: return s.mean;  // unreachable via parse; be defined
  }
  return 0.0;
}

// Looks the rule's metric up in one window.  Histogram-field rules read the
// window summary; Value rules prefer the gauge and fall back to the counter
// delta.  Returns false when the metric did not appear in this window.
bool window_value(const TimelineWindow& window, const SloRule& rule, double& out) {
  if (rule.field != SloField::Value) {
    const auto it = window.histograms.find(rule.metric);
    if (it == window.histograms.end()) return false;
    out = summary_field(it->second, rule.field);
    return true;
  }
  if (const auto it = window.gauges.find(rule.metric); it != window.gauges.end()) {
    out = it->second;
    return true;
  }
  if (const auto it = window.counter_deltas.find(rule.metric);
      it != window.counter_deltas.end()) {
    out = static_cast<double>(it->second);
    return true;
  }
  return false;
}

}  // namespace

std::string to_string(SloField field) {
  switch (field) {
    case SloField::Value: return "value";
    case SloField::Count: return "count";
    case SloField::Sum: return "sum";
    case SloField::Mean: return "mean";
    case SloField::Min: return "min";
    case SloField::Max: return "max";
    case SloField::P50: return "p50";
    case SloField::P95: return "p95";
    case SloField::P99: return "p99";
  }
  return "value";
}

std::string to_string(SloOp op) {
  switch (op) {
    case SloOp::Ge: return ">=";
    case SloOp::Le: return "<=";
    case SloOp::Gt: return ">";
    case SloOp::Lt: return "<";
  }
  return ">=";
}

std::string to_string(AlertState state) {
  switch (state) {
    case AlertState::Inactive: return "inactive";
    case AlertState::Pending: return "pending";
    case AlertState::Firing: return "firing";
  }
  return "inactive";
}

std::string SloRule::text() const {
  std::ostringstream out;
  out << name << ": " << metric;
  if (field != SloField::Value) out << ' ' << to_string(field);
  out << ' ' << to_string(op) << ' ' << threshold << " over " << for_windows << " windows";
  if (resolve_windows != 1) out << " resolve " << resolve_windows;
  return out.str();
}

Result<SloRule> parse_slo_rule(const std::string& text) {
  std::vector<std::string> tokens;
  {
    std::istringstream in(text);
    std::string token;
    while (in >> token) tokens.push_back(token);
  }
  if (tokens.empty()) return make_error<SloRule>("empty SLO rule");

  SloRule rule;
  std::size_t i = 0;

  // Optional "<name>:" prefix (the colon may be attached or freestanding).
  if (tokens[0].size() > 1 && tokens[0].back() == ':') {
    rule.name = tokens[0].substr(0, tokens[0].size() - 1);
    i = 1;
  } else if (tokens.size() > 1 && tokens[1] == ":") {
    rule.name = tokens[0];
    i = 2;
  }

  if (i >= tokens.size()) return make_error<SloRule>("missing metric in SLO rule: " + text);
  rule.metric = tokens[i++];

  if (i < tokens.size() && field_from_token(tokens[i], rule.field)) ++i;

  if (i >= tokens.size() || !op_from_token(tokens[i], rule.op)) {
    return make_error<SloRule>("expected comparison (>=, <=, >, <) in SLO rule: " + text);
  }
  ++i;

  if (i >= tokens.size()) return make_error<SloRule>("missing threshold in SLO rule: " + text);
  {
    const std::string& token = tokens[i];
    char* end = nullptr;
    rule.threshold = std::strtod(token.c_str(), &end);
    if (end == token.c_str()) {
      return make_error<SloRule>("bad threshold '" + token + "' in SLO rule: " + text);
    }
    // A trailing unit suffix ("40ms", "0.6") is informational only; the
    // rule compares in the metric's native unit.
    ++i;
  }

  if (i + 1 < tokens.size() && tokens[i] == "over") {
    char* end = nullptr;
    const long n = std::strtol(tokens[i + 1].c_str(), &end, 10);
    if (end == tokens[i + 1].c_str() || n < 1) {
      return make_error<SloRule>("bad window count '" + tokens[i + 1] + "' in SLO rule: " + text);
    }
    rule.for_windows = static_cast<std::uint32_t>(n);
    i += 2;
    if (i < tokens.size() && (tokens[i] == "windows" || tokens[i] == "window")) ++i;
  }

  if (i + 1 < tokens.size() && tokens[i] == "resolve") {
    char* end = nullptr;
    const long n = std::strtol(tokens[i + 1].c_str(), &end, 10);
    if (end == tokens[i + 1].c_str() || n < 1) {
      return make_error<SloRule>("bad resolve count '" + tokens[i + 1] + "' in SLO rule: " + text);
    }
    rule.resolve_windows = static_cast<std::uint32_t>(n);
    i += 2;
    if (i < tokens.size() && (tokens[i] == "windows" || tokens[i] == "window")) ++i;
  }

  if (i != tokens.size()) {
    return make_error<SloRule>("trailing tokens from '" + tokens[i] + "' in SLO rule: " + text);
  }

  if (rule.name.empty()) {
    rule.name = rule.metric;
    if (rule.field != SloField::Value) rule.name += "." + to_string(rule.field);
  }
  return rule;
}

void SloEvaluator::add_rule(SloRule rule) {
  rules_.push_back(RuleState{std::move(rule), AlertState::Inactive, 0, 0});
}

void SloEvaluator::transition(RuleState& rs, AlertState to, const TimelineWindow& window,
                              double value) {
  transitions_.push_back(AlertTransition{window.index, rs.rule.name, rs.state, to, value});
  if (to == AlertState::Firing) ++fired_;
  if (rs.state == AlertState::Firing && to == AlertState::Inactive) ++resolved_;
  rs.state = to;
}

void SloEvaluator::observe(const TimelineWindow& window) {
  for (RuleState& rs : rules_) {
    double value = 0.0;
    if (!window_value(window, rs.rule, value)) continue;  // no data: freeze streaks

    if (!holds(rs.rule.op, value, rs.rule.threshold)) {
      rs.ok_streak = 0;
      ++rs.violate_streak;
      if (rs.state != AlertState::Firing && rs.violate_streak >= rs.rule.for_windows) {
        transition(rs, AlertState::Firing, window, value);
      } else if (rs.state == AlertState::Inactive) {
        transition(rs, AlertState::Pending, window, value);
      }
    } else {
      rs.violate_streak = 0;
      ++rs.ok_streak;
      if (rs.state == AlertState::Pending) {
        transition(rs, AlertState::Inactive, window, value);
      } else if (rs.state == AlertState::Firing && rs.ok_streak >= rs.rule.resolve_windows) {
        transition(rs, AlertState::Inactive, window, value);
      }
    }
  }
}

std::vector<SloRule> SloEvaluator::rules() const {
  std::vector<SloRule> out;
  out.reserve(rules_.size());
  for (const RuleState& rs : rules_) out.push_back(rs.rule);
  return out;
}

AlertState SloEvaluator::state(const std::string& rule_name) const {
  for (const RuleState& rs : rules_) {
    if (rs.rule.name == rule_name) return rs.state;
  }
  return AlertState::Inactive;
}

void SloEvaluator::clear() {
  for (RuleState& rs : rules_) {
    rs.state = AlertState::Inactive;
    rs.violate_streak = 0;
    rs.ok_streak = 0;
  }
  transitions_.clear();
  fired_ = 0;
  resolved_ = 0;
}

}  // namespace ape::obs

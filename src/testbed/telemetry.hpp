// In-sim telemetry scrape path (DESIGN.md §5g): the monitoring plane as a
// measured workload, not an assumption.
//
//   TelemetryCollector (controller node) --12 hops--> TelemetryAgent (AP)
//        "SCRAPE <from>"  ------------------------------>
//        <------------------------  "REPORT ..." (window deltas, text)
//
// The agent serves scrapes from the AP's Timeline: serialization burns AP
// CPU on the *AP's* ServiceQueue (so telemetry shows up in ResourceMeter /
// Fig. 14 style overhead plots), the report rides the simulated WAN path
// (bytes + latency are real simulated traffic), and the collector parses on
// its own ServiceQueue, feeds the windows to its SloEvaluator, and records
// the whole exchange under `ap.telemetry.*` / `controller.telemetry.*` /
// `slo.*`.
//
// The wire format is line-oriented text (the Wi-Cache control-plane idiom);
// doubles are rendered with obs::format_double (shortest round-trip), so
// encode -> decode reproduces every window exactly and the collector-side
// SLO evaluation is as deterministic as the AP-side timeline.
//
// Both components only exist in runs with `enable_timeline`; default runs
// carry no telemetry traffic and stay byte-identical.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/shard.hpp"
#include "net/network.hpp"
#include "obs/observer.hpp"
#include "obs/slo.hpp"
#include "obs/timeline.hpp"
#include "sim/service_queue.hpp"

namespace ape::testbed {

inline constexpr net::Port kTelemetryAgentPort = 5310;
inline constexpr net::Port kTelemetryCollectorPort = 5311;

// One scrape response: the windows with index >= `from`, plus the total
// window count so the collector can advance its cursor even when it asks
// past the end.
struct TelemetryReport {
  std::uint64_t from = 0;
  std::uint64_t total = 0;  // windows captured at the AP so far
  std::vector<obs::TimelineWindow> windows;
};

[[nodiscard]] std::string encode_telemetry_report(const TelemetryReport& report);
[[nodiscard]] Result<TelemetryReport> decode_telemetry_report(const std::string& text);

// AP-side scrape endpoint.  Owns no windows — it reads the run Observer's
// Timeline, which the Testbed capture tick fills through the delta cursor.
class TelemetryAgent {
  APE_SHARD_CONTEXT(ap);

 public:
  TelemetryAgent(net::Network& network, net::NodeId node, sim::ServiceQueue& cpu,
                 const obs::Timeline& timeline, obs::Observer* observer);
  ~TelemetryAgent();
  TelemetryAgent(const TelemetryAgent&) = delete;
  TelemetryAgent& operator=(const TelemetryAgent&) = delete;

  [[nodiscard]] std::size_t scrapes_served() const noexcept { return scrapes_served_; }

 private:
  void on_datagram(const net::Datagram& dgram);

  APE_SHARD_SHARED net::Network& network_;
  APE_SHARD_LOCAL(ap) net::NodeId node_;
  APE_SHARD_LOCAL(ap) sim::ServiceQueue& cpu_;  // the AP's CPU — scrape work is AP overhead
  APE_SHARD_LOCAL(ap) const obs::Timeline& timeline_;
  APE_SHARD_SHARED obs::Observer* observer_;
  APE_SHARD_LOCAL(ap) std::size_t scrapes_served_ = 0;
};

// Controller-side puller: periodically scrapes the agent, replays the
// window stream into its SloEvaluator, and accounts the telemetry path.
class TelemetryCollector {
  APE_SHARD_CONTEXT(controller);

 public:
  TelemetryCollector(net::Network& network, net::NodeId node, net::Endpoint agent,
                     sim::Duration interval, obs::Observer* observer);
  ~TelemetryCollector();
  TelemetryCollector(const TelemetryCollector&) = delete;
  TelemetryCollector& operator=(const TelemetryCollector&) = delete;

  // Schedules scrapes every `interval` until `until`; call before running.
  void start(sim::Time until);

  [[nodiscard]] obs::SloEvaluator& slo() noexcept { return slo_; }
  [[nodiscard]] const obs::SloEvaluator& slo() const noexcept { return slo_; }

  // Windows as received over the wire, in index order (the collector's
  // view; compare against the AP-side Timeline to test the wire format).
  [[nodiscard]] const std::vector<obs::TimelineWindow>& windows() const noexcept {
    return windows_;
  }
  [[nodiscard]] std::size_t scrapes_sent() const noexcept { return scrapes_sent_; }
  [[nodiscard]] std::size_t reports_received() const noexcept { return reports_received_; }

 private:
  void schedule_next();
  void send_scrape();
  void on_datagram(const net::Datagram& dgram);
  void handle_report(const std::string& text);

  APE_SHARD_SHARED net::Network& network_;
  APE_SHARD_LOCAL(controller) net::NodeId node_;
  APE_SHARD_LOCAL(controller) net::Endpoint agent_;
  APE_SHARD_LOCAL(controller) sim::Duration interval_;
  APE_SHARD_SHARED obs::Observer* observer_;
  APE_SHARD_LOCAL(controller) sim::ServiceQueue cpu_;  // the collector's own service queue
  APE_SHARD_LOCAL(controller) obs::SloEvaluator slo_;
  APE_SHARD_LOCAL(controller) std::vector<obs::TimelineWindow> windows_;
  APE_SHARD_LOCAL(controller) std::uint64_t next_from_ = 0;
  APE_SHARD_LOCAL(controller) sim::Time until_{};
  APE_SHARD_LOCAL(controller) sim::Simulator::EventId timer_ = 0;
  APE_SHARD_LOCAL(controller) bool in_flight_ = false;
  APE_SHARD_LOCAL(controller) sim::Time sent_at_{};
  APE_SHARD_LOCAL(controller) std::size_t scrapes_sent_ = 0;
  APE_SHARD_LOCAL(controller) std::size_t reports_received_ = 0;
};

}  // namespace ape::testbed

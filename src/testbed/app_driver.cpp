#include "testbed/app_driver.hpp"

#include <memory>

namespace ape::testbed {

namespace {

// Per-run state machine: tracks dependency counts, launches requests as
// their prerequisites complete, finishes with the compose step.
struct RunState : std::enable_shared_from_this<RunState> {
  sim::Simulator& sim;
  const workload::AppSpec& app;
  baselines::ObjectFetcher& fetcher;
  AppDriver::DoneHandler done;

  sim::Time started{};
  std::vector<std::size_t> remaining_deps;
  std::vector<std::vector<std::size_t>> dependents;
  std::size_t outstanding = 0;
  std::size_t critical_outstanding = 0;  // unfinished priority-2 requests
  bool has_critical = false;
  sim::Time critical_done{};
  AppRunResult result;

  RunState(sim::Simulator& s, const workload::AppSpec& a, baselines::ObjectFetcher& f,
           AppDriver::DoneHandler d)
      : sim(s), app(a), fetcher(f), done(std::move(d)) {}

  void start() {
    started = sim.now();
    const std::size_t n = app.requests.size();
    remaining_deps.resize(n);
    dependents.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      remaining_deps[i] = app.requests[i].depends_on.size();
      for (std::size_t dep : app.requests[i].depends_on) dependents[dep].push_back(i);
      if (app.requests[i].priority >= 2) {
        ++critical_outstanding;
        has_critical = true;
      }
    }
    bool launched = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (remaining_deps[i] == 0) {
        launch(i);
        launched = true;
      }
    }
    if (!launched) finish();  // empty app
  }

  void launch(std::size_t index) {
    ++outstanding;
    auto self = shared_from_this();
    fetcher.fetch_object(app.requests[index].url,
                         [self, index](core::ClientRuntime::FetchResult r) {
                           self->on_fetched(index, std::move(r));
                         });
  }

  void on_fetched(std::size_t index, core::ClientRuntime::FetchResult r) {
    ++result.fetches;
    if (!r.success) ++result.failures;
    ObjectRecord record;
    record.request_name = app.requests[index].name;
    record.priority = app.requests[index].priority;
    record.result = std::move(r);
    result.objects.push_back(std::move(record));

    if (app.requests[index].priority >= 2 && --critical_outstanding == 0) {
      critical_done = sim.now();
    }
    --outstanding;
    for (std::size_t next : dependents[index]) {
      if (--remaining_deps[next] == 0) launch(next);
    }
    if (outstanding == 0) {
      // All reachable requests done: compose the UI, then report.
      auto self = shared_from_this();
      sim.schedule_in(app.compose_time, [self] { self->finish(); });
    }
  }

  void finish() {
    result.full_makespan = sim.now() - started;
    // User-visible latency: critical path + composition; apps without a
    // declared critical path gate on everything.
    result.app_latency = has_critical
                             ? (critical_done - started) + app.compose_time
                             : result.full_makespan;
    done(std::move(result));
  }
};

}  // namespace

AppDriver::AppDriver(sim::Simulator& sim, const workload::AppSpec& app,
                     baselines::ObjectFetcher& fetcher)
    : sim_(sim), app_(app), fetcher_(fetcher) {}

void AppDriver::run_once(DoneHandler done) {
  auto state = std::make_shared<RunState>(sim_, app_, fetcher_, std::move(done));
  state->start();
}

}  // namespace ape::testbed

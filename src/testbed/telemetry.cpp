#include "testbed/telemetry.hpp"

#include <sstream>

#include "obs/export.hpp"

namespace ape::testbed {

namespace {

net::Payload to_payload(const std::string& text) {
  return net::Payload(text.begin(), text.end());
}
std::string to_text(const net::Payload& payload) {
  return std::string(payload.begin(), payload.end());
}

// Serialization/parse cost model: a fixed dispatch cost plus ~20 ns/byte of
// text formatting — small against the AP's request path, but nonzero, which
// is the point of metering it.
constexpr sim::Duration kScrapeBaseCost = sim::microseconds(250);
sim::Duration scrape_cost(std::size_t bytes) {
  return kScrapeBaseCost + sim::microseconds(static_cast<std::int64_t>(bytes / 50));
}

}  // namespace

std::string encode_telemetry_report(const TelemetryReport& report) {
  std::ostringstream out;
  out << "REPORT " << report.from << ' ' << report.windows.size() << ' ' << report.total
      << '\n';
  for (const obs::TimelineWindow& w : report.windows) {
    out << "W " << w.index << ' ' << w.start.since_epoch.count() << ' '
        << w.end.since_epoch.count() << '\n';
    for (const auto& [name, delta] : w.counter_deltas) {
      out << "C " << name << ' ' << delta << '\n';
    }
    for (const auto& [name, value] : w.gauges) {
      out << "G " << name << ' ' << obs::format_double(value) << '\n';
    }
    for (const auto& [name, s] : w.histograms) {
      out << "H " << name << ' ' << (s.unit.empty() ? "-" : s.unit) << ' ' << s.count << ' '
          << obs::format_double(s.sum) << ' ' << obs::format_double(s.mean) << ' '
          << obs::format_double(s.min) << ' ' << obs::format_double(s.max) << ' '
          << obs::format_double(s.p50) << ' ' << obs::format_double(s.p95) << ' '
          << obs::format_double(s.p99) << '\n';
    }
  }
  out << "END\n";
  return out.str();
}

Result<TelemetryReport> decode_telemetry_report(const std::string& text) {
  std::istringstream in(text);
  std::string line;

  if (!std::getline(in, line)) return make_error<TelemetryReport>("empty telemetry report");
  TelemetryReport report;
  std::size_t window_count = 0;
  {
    std::istringstream header(line);
    std::string tag;
    header >> tag >> report.from >> window_count >> report.total;
    if (header.fail() || tag != "REPORT") {
      return make_error<TelemetryReport>("bad telemetry report header: " + line);
    }
  }

  obs::TimelineWindow* current = nullptr;
  bool terminated = false;
  while (std::getline(in, line)) {
    std::istringstream rec(line);
    std::string tag;
    rec >> tag;
    if (tag == "END") {
      terminated = true;
      break;
    }
    if (tag == "W") {
      obs::TimelineWindow w;
      std::int64_t start_us = 0;
      std::int64_t end_us = 0;
      rec >> w.index >> start_us >> end_us;
      if (rec.fail()) return make_error<TelemetryReport>("bad window record: " + line);
      w.start = sim::Time{sim::microseconds(start_us)};
      w.end = sim::Time{sim::microseconds(end_us)};
      report.windows.push_back(std::move(w));
      current = &report.windows.back();
      continue;
    }
    if (current == nullptr) {
      return make_error<TelemetryReport>("record before first window: " + line);
    }
    if (tag == "C") {
      std::string name;
      std::int64_t delta = 0;
      rec >> name >> delta;
      if (rec.fail()) return make_error<TelemetryReport>("bad counter record: " + line);
      current->counter_deltas.emplace(std::move(name), delta);
    } else if (tag == "G") {
      std::string name;
      double value = 0.0;
      rec >> name >> value;
      if (rec.fail()) return make_error<TelemetryReport>("bad gauge record: " + line);
      current->gauges.emplace(std::move(name), value);
    } else if (tag == "H") {
      std::string name;
      obs::WindowHistogramSummary s;
      rec >> name >> s.unit >> s.count >> s.sum >> s.mean >> s.min >> s.max >> s.p50 >>
          s.p95 >> s.p99;
      if (rec.fail()) return make_error<TelemetryReport>("bad histogram record: " + line);
      if (s.unit == "-") s.unit.clear();
      current->histograms.emplace(std::move(name), std::move(s));
    } else {
      return make_error<TelemetryReport>("unknown telemetry record: " + line);
    }
  }
  if (!terminated) return make_error<TelemetryReport>("telemetry report missing END");
  if (report.windows.size() != window_count) {
    return make_error<TelemetryReport>("telemetry report window count mismatch");
  }
  return report;
}

// ------------------------------------------------------------------ agent

TelemetryAgent::TelemetryAgent(net::Network& network, net::NodeId node,
                               sim::ServiceQueue& cpu, const obs::Timeline& timeline,
                               obs::Observer* observer)
    : network_(network), node_(node), cpu_(cpu), timeline_(timeline), observer_(observer) {
  network_.bind_udp(node_, kTelemetryAgentPort,
                    [this](const net::Datagram& d) { on_datagram(d); });
}

TelemetryAgent::~TelemetryAgent() {
  network_.unbind_udp(node_, kTelemetryAgentPort);
}

void TelemetryAgent::on_datagram(const net::Datagram& dgram) {
  std::istringstream in(to_text(dgram.payload));
  std::string verb;
  std::uint64_t from = 0;
  in >> verb >> from;
  if (in.fail() || verb != "SCRAPE") return;
  if (observer_ != nullptr) {
    observer_->count("ap.telemetry.rx_bytes", dgram.size_bytes() + net::kUdpOverheadBytes);
  }

  TelemetryReport report;
  report.from = from;
  report.total = timeline_.windows().size();
  for (const obs::TimelineWindow& w : timeline_.windows()) {
    if (w.index >= from) report.windows.push_back(w);
  }
  std::string reply = encode_telemetry_report(report);
  const std::size_t reply_bytes = reply.size();
  const std::size_t shipped = report.windows.size();
  const net::Endpoint requester = dgram.source;

  // Serialization is AP CPU work; the reply leaves once it is done.
  cpu_.submit(scrape_cost(reply_bytes), [this, reply = std::move(reply), reply_bytes,
                                         shipped, requester] {
    ++scrapes_served_;
    if (observer_ != nullptr) {
      observer_->count("ap.telemetry.scrapes");
      observer_->count("ap.telemetry.windows_shipped", shipped);
      observer_->count("ap.telemetry.tx_bytes", reply_bytes + net::kUdpOverheadBytes);
    }
    network_.send_datagram(node_, kTelemetryAgentPort, requester, to_payload(reply));
  });
}

// -------------------------------------------------------------- collector

TelemetryCollector::TelemetryCollector(net::Network& network, net::NodeId node,
                                       net::Endpoint agent, sim::Duration interval,
                                       obs::Observer* observer)
    : network_(network),
      node_(node),
      agent_(agent),
      interval_(interval),
      observer_(observer),
      cpu_(network.simulator(), 2) {
  network_.bind_udp(node_, kTelemetryCollectorPort,
                    [this](const net::Datagram& d) { on_datagram(d); });
}

TelemetryCollector::~TelemetryCollector() {
  if (timer_ != 0) network_.simulator().cancel(timer_);
  network_.unbind_udp(node_, kTelemetryCollectorPort);
}

void TelemetryCollector::start(sim::Time until) {
  until_ = until;
  schedule_next();
}

void TelemetryCollector::schedule_next() {
  if (network_.simulator().now() + interval_ > until_) {
    timer_ = 0;
    return;
  }
  timer_ = network_.simulator().schedule_in(interval_, [this] {
    send_scrape();
    schedule_next();
  });
}

void TelemetryCollector::send_scrape() {
  if (in_flight_) {
    // The previous report has not come back yet — do not pile on.
    if (observer_ != nullptr) observer_->count("controller.telemetry.scrapes_skipped");
    return;
  }
  const std::string request = "SCRAPE " + std::to_string(next_from_);
  in_flight_ = true;
  sent_at_ = network_.simulator().now();
  ++scrapes_sent_;
  if (observer_ != nullptr) {
    observer_->count("controller.telemetry.scrapes");
    observer_->count("controller.telemetry.tx_bytes",
                     request.size() + net::kUdpOverheadBytes);
  }
  network_.send_datagram(node_, kTelemetryCollectorPort, agent_, to_payload(request));
}

void TelemetryCollector::on_datagram(const net::Datagram& dgram) {
  const std::size_t wire_bytes = dgram.size_bytes() + net::kUdpOverheadBytes;
  if (observer_ != nullptr) observer_->count("controller.telemetry.rx_bytes", wire_bytes);
  std::string text = to_text(dgram.payload);
  cpu_.submit(scrape_cost(text.size()),
              [this, text = std::move(text)] { handle_report(text); });
}

void TelemetryCollector::handle_report(const std::string& text) {
  in_flight_ = false;
  auto decoded = decode_telemetry_report(text);
  if (!decoded) {
    if (observer_ != nullptr) observer_->count("controller.telemetry.decode_errors");
    return;
  }
  TelemetryReport& report = decoded.value();
  ++reports_received_;

  std::size_t accepted = 0;
  for (obs::TimelineWindow& w : report.windows) {
    if (w.index < next_from_) continue;  // duplicate delivery; already applied
    next_from_ = w.index + 1;
    slo_.observe(w);
    windows_.push_back(std::move(w));
    ++accepted;
  }

  if (observer_ != nullptr) {
    obs::MetricsRegistry& m = observer_->metrics();
    m.counter("controller.telemetry.reports").add(1);
    m.counter("controller.telemetry.windows").add(accepted);
    m.histogram("controller.telemetry.scrape_rtt_ms", "ms")
        .record(sim::to_millis(network_.simulator().now() - sent_at_));
    // Set-style: the evaluator owns the tallies, the registry mirrors them.
    m.counter("slo.alerts_fired").set(slo_.fired());
    m.counter("slo.alerts_resolved").set(slo_.resolved());
    m.counter("slo.transitions").set(slo_.transitions().size());
  }
}

}  // namespace ape::testbed

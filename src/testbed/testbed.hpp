// The evaluation testbed of paper Fig. 9, in simulation:
//
//   phones/desktop --WiFi--> AP (GL-MT1300) --7 hops--> edge cache server
//                             |--upstream--> LDNS --> ADNS / CDN DNS
//                             |--12 hops--> Wi-Cache controller (EC2)
//
// One Testbed instance realizes one system-under-test (the AP either runs
// APE-CACHE with PACM, APE-CACHE with LRU, the Wi-Cache agent, or nothing
// but stock DNS forwarding), so experiments build one Testbed per compared
// system with identical seeds and workloads.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "baselines/ape_lru_system.hpp"
#include "common/shard.hpp"
#include "baselines/edge_cache_system.hpp"
#include "baselines/wicache_system.hpp"
#include "core/ap_runtime.hpp"
#include "dns/adns.hpp"
#include "dns/cdn_dns.hpp"
#include "dns/ldns.hpp"
#include "http/edge_server.hpp"
#include "obs/observer.hpp"
#include "sim/resource_meter.hpp"
#include "testbed/telemetry.hpp"
#include "workload/app_model.hpp"

namespace ape::testbed {

enum class System { ApeCache, ApeCacheLru, WiCache, EdgeCache };

[[nodiscard]] const char* to_string(System system) noexcept;

struct TestbedParams {
  System system = System::ApeCache;
  core::ApeConfig ape;

  // Link calibration (defaults reproduce the paper's measured latencies:
  // AP lookup ~7.5 ms, AP retrieval ~7 ms, edge retrieval ~31 ms, edge DNS
  // ~22 ms, Wi-Cache controller lookup ~26 ms).
  sim::Duration wifi_one_way{sim::microseconds(1750)};
  double wifi_bandwidth = 30e6;              // ~240 Mbps effective
  std::size_t edge_hops = 7;
  sim::Duration edge_per_hop{sim::microseconds(1070)};
  double wan_bandwidth = 60e6;
  std::size_t controller_hops = 12;
  sim::Duration controller_per_hop{sim::microseconds(1070)};
  sim::Duration ldns_one_way{sim::microseconds(7000)};
  sim::Duration adns_from_ldns{sim::microseconds(15000)};
  sim::Duration cdn_dns_from_ldns{sim::microseconds(2000)};

  // Akamai-style per-query server selection: mapping answers are not
  // cacheable, so every edge lookup pays the resolver chain (Sec. II-B).
  std::uint32_t cdn_answer_ttl = 0;
  std::uint32_t cname_ttl = 3600;

  std::size_t wicache_capacity_bytes = 5 * 1000 * 1000;

  // Ablation hook: overrides the AP cache policy implied by `system`
  // (e.g. run the APE-CACHE workflow with GDSF or FIFO management).
  std::optional<core::ApRuntime::Policy> policy_override;

  // Sim-time trace ring size for this run's Observer (0 disables tracing).
  std::size_t trace_capacity = obs::TraceLog::kDefaultCapacity;

  // Causal request tracing (DESIGN.md §5f).  Off by default: enabling it
  // injects trace-context carriers into DNS/HTTP messages (real wire
  // bytes), so traced runs are *not* byte-identical to default runs.
  bool enable_spans = false;
  std::size_t span_capacity = obs::SpanLog::kDefaultCapacity;

  // Windowed time-series telemetry + in-sim scrape path (DESIGN.md §5g).
  // Off by default: enabling it schedules capture ticks and puts scrape
  // datagrams on the simulated network, so timeline runs are *not*
  // byte-identical to default runs.
  bool enable_timeline = false;
  sim::Duration timeline_interval{sim::seconds(30.0)};
  sim::Duration telemetry_scrape_interval{sim::seconds(60.0)};
  // SLO rules (obs::parse_slo_rule grammar) loaded into the collector's
  // evaluator; a rule that fails to parse is a programming error (assert).
  std::vector<std::string> slo_rules;
};

class Testbed {
  APE_SHARD_CONTEXT(controller);

 public:
  explicit Testbed(TestbedParams params);
  ~Testbed();
  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  // --- workload wiring ------------------------------------------------------
  // Hosts the app's objects on the edge server and publishes its domain in
  // the DNS hierarchy (CNAME into the CDN namespace -> edge server A).
  void host_app(const workload::AppSpec& app);

  struct Client {
    net::NodeId node;
    std::unique_ptr<core::ClientRuntime> runtime;
    std::unique_ptr<baselines::WiCacheFetcher> wicache;
    std::unique_ptr<baselines::ObjectFetcher> fetcher;  // facade for `system`
  };

  // Adds a phone/emulator attached to the AP and returns its fetcher facade
  // matching the testbed's system.
  Client& add_client(const std::string& name);

  // --- accessors --------------------------------------------------------------
  [[nodiscard]] sim::Simulator& simulator() noexcept { return sim_; }
  [[nodiscard]] net::Network& network() noexcept { return *network_; }
  [[nodiscard]] net::TcpTransport& tcp() noexcept { return *tcp_; }
  [[nodiscard]] core::ApRuntime& ap() noexcept { return *ap_; }
  [[nodiscard]] http::EdgeCacheServer& edge() noexcept { return *edge_; }
  [[nodiscard]] dns::LocalDnsServer& ldns() noexcept { return *ldns_; }
  [[nodiscard]] baselines::WiCacheController* wicache_controller() noexcept {
    return wicache_controller_.get();
  }
  [[nodiscard]] baselines::WiCacheApAgent* wicache_agent() noexcept {
    return wicache_agent_.get();
  }
  [[nodiscard]] const TestbedParams& params() const noexcept { return params_; }
  [[nodiscard]] net::IpAddress ap_ip() const noexcept { return ap_ip_; }
  [[nodiscard]] net::IpAddress edge_ip() const noexcept { return edge_ip_; }

  // Per-run observability bundle: the AP, clients and PACM push into it
  // while events happen; collect_metrics() adds the pull-phase gauges.
  [[nodiscard]] obs::Observer& observer() noexcept { return obs_; }
  [[nodiscard]] const obs::Observer& observer() const noexcept { return obs_; }

  // Writes the point-in-time metrics (simulator queue stats, DNS server
  // tallies, edge hits, AP cache occupancy and per-app C_a) into the
  // observer's registry.  Call after — or during — a run; safe to call
  // repeatedly (gauges are overwritten, set-style counters re-set).
  void collect_metrics();

  // Resource meter over the AP (Fig. 2 / Fig. 14); call before running.
  [[nodiscard]] sim::ResourceMeter& meter_ap(sim::Duration interval, sim::Time until);

  // Pass-through forwarding accounting: charge the AP's CPU for client
  // traffic that merely transits it (edge fetches).
  void account_passthrough(std::size_t bytes);

  // Crash/restart model (flash-tier experiments): tears the ApRuntime down
  // and rebuilds it on the same node.  RAM state (cache, DNS record cache,
  // url_index) is lost; with `preserve_flash` the durable FlashMedia
  // survives and the new runtime replays its journal at mount (a *warm*
  // restart), without it the media is wiped first (a *cold* restart).
  // Only valid for APE systems, and only at a quiesced instant — no CPU or
  // flash work in flight (in-flight completions capture the old runtime).
  void restart_ap(bool preserve_flash);

  // Durable flash media handed to every ApRuntime incarnation; null when
  // the config has no flash tier.
  [[nodiscard]] store::FlashMedia* flash_media() noexcept { return flash_media_.get(); }

  // --- timeline telemetry (enable_timeline runs only) -----------------------
  // Schedules the periodic capture tick (collect_metrics + Timeline::capture
  // through the delta cursor) and the collector's scrape loop, every
  // `timeline_interval` / `telemetry_scrape_interval` until `until`.
  void start_timeline(sim::Time until);

  // Final capture after the last registry mutation, so the windows
  // partition the run exactly and Timeline::reconcile holds.  Call once,
  // after the run and after any post-run counters are written.
  void flush_timeline();

  [[nodiscard]] TelemetryCollector* telemetry_collector() noexcept {
    return telemetry_collector_.get();
  }
  [[nodiscard]] TelemetryAgent* telemetry_agent() noexcept {
    return telemetry_agent_.get();
  }

 private:
  void build_topology();
  void build_dns();
  void build_servers();
  void build_ap();
  void build_telemetry();
  void schedule_timeline_tick();

  APE_SHARD_LOCAL(controller) TestbedParams params_;
  // Every node pushes metrics/spans into the run observer, and all shards
  // share the one calendar queue: both are cross-shard by construction.
  APE_SHARD_SHARED obs::Observer obs_;
  APE_SHARD_SHARED sim::Simulator sim_;
  APE_SHARD_LOCAL(controller) net::Topology topology_;
  APE_SHARD_SHARED std::unique_ptr<net::Network> network_;
  APE_SHARD_SHARED std::unique_ptr<net::TcpTransport> tcp_;

  // nodes (owning handles: built, restarted and torn down by the harness;
  // the pointees belong to their own shards)
  APE_SHARD_LOCAL(controller) net::NodeId ap_node_{}, edge_node_{}, ldns_node_{},
      adns_node_{}, cdn_dns_node_{}, controller_node_{};
  APE_SHARD_LOCAL(controller) net::IpAddress ap_ip_{}, edge_ip_{}, ldns_ip_{}, adns_ip_{},
      cdn_dns_ip_{}, controller_ip_{};

  // per-node CPUs (other than the AP's, which lives in ApRuntime)
  APE_SHARD_LOCAL(controller) std::unique_ptr<sim::ServiceQueue> edge_cpu_, ldns_cpu_,
      adns_cpu_, cdn_cpu_, controller_cpu_;

  APE_SHARD_LOCAL(controller) std::unique_ptr<store::FlashMedia> flash_media_;
  APE_SHARD_LOCAL(controller) std::unique_ptr<core::ApRuntime> ap_;
  APE_SHARD_LOCAL(controller) std::unique_ptr<http::EdgeCacheServer> edge_;
  APE_SHARD_LOCAL(controller) std::unique_ptr<dns::LocalDnsServer> ldns_;
  APE_SHARD_LOCAL(controller) std::unique_ptr<dns::AuthoritativeDnsServer> adns_;
  APE_SHARD_LOCAL(controller) std::unique_ptr<dns::CdnDnsServer> cdn_dns_;
  APE_SHARD_LOCAL(controller) std::unique_ptr<baselines::WiCacheController> wicache_controller_;
  APE_SHARD_LOCAL(controller) std::unique_ptr<baselines::WiCacheApAgent> wicache_agent_;
  APE_SHARD_LOCAL(controller) std::unique_ptr<sim::ResourceMeter> meter_;
  APE_SHARD_LOCAL(controller) std::unique_ptr<TelemetryAgent> telemetry_agent_;
  APE_SHARD_LOCAL(controller) std::unique_ptr<TelemetryCollector> telemetry_collector_;
  APE_SHARD_LOCAL(controller) sim::Time timeline_until_{};
  APE_SHARD_LOCAL(controller) sim::Simulator::EventId timeline_tick_ = 0;

  APE_SHARD_LOCAL(controller) std::vector<std::unique_ptr<Client>> clients_;
  APE_SHARD_LOCAL(controller) net::Port next_client_port_ = 49152;
  APE_SHARD_LOCAL(controller) std::uint32_t next_client_ip_suffix_ = 100;
  // collect_metrics() idempotency cursor
  APE_SHARD_LOCAL(controller) std::size_t spans_histogrammed_ = 0;
};

}  // namespace ape::testbed

#include "testbed/experiment.hpp"

#include <memory>

namespace ape::testbed {

SystemRunResult run_workload(Testbed& testbed, const std::vector<workload::AppSpec>& apps,
                             const WorkloadConfig& config, bool account_passthrough) {
  auto result = std::make_shared<SystemRunResult>();
  result->system = to_string(testbed.params().system);

  const std::size_t client_count = config.client_count == 0 ? 1 : config.client_count;
  std::vector<Testbed::Client*> clients;
  clients.reserve(client_count);
  for (std::size_t i = 0; i < client_count; ++i) {
    clients.push_back(&testbed.add_client("client-" + std::to_string(i)));
  }

  std::vector<std::unique_ptr<AppDriver>> drivers;
  drivers.reserve(apps.size());
  for (std::size_t i = 0; i < apps.size(); ++i) {
    const auto& app = apps[i];
    testbed.host_app(app);
    Testbed::Client& client = *clients[i % client_count];
    for (auto& spec : app.cacheables()) client.runtime->register_cacheable(spec);
    drivers.push_back(
        std::make_unique<AppDriver>(testbed.simulator(), app, *client.fetcher));
  }

  // Pre-roll the arrival schedule and plant every run into the simulator.
  sim::Rng rng(config.seed);
  workload::ArrivalSchedule arrivals(apps.size(), config.mean_freq_per_min,
                                     config.zipf_exponent, rng);
  const sim::Time horizon{config.duration};
  Testbed* tb = &testbed;

  auto on_run_done = [result, tb, account_passthrough](AppRunResult run) {
    ++result->app_runs;
    result->app_latency_ms.record(sim::to_millis(run.app_latency));
    for (const auto& obj : run.objects) {
      const auto& r = obj.result;
      ++result->object_fetches;
      if (!r.success) {
        ++result->failures;
        continue;
      }
      const double lookup = sim::to_millis(r.lookup_latency);
      const double retrieval = sim::to_millis(r.retrieval_latency);
      const double total = sim::to_millis(r.total);
      result->lookup_ms.record(lookup);
      result->retrieval_ms.record(retrieval);
      result->total_ms.record(total);

      const bool ap_served = r.source == core::ClientRuntime::Source::ApCache;
      if (ap_served) {
        result->ap_hit_lookup_ms.record(lookup);
        result->ap_hit_retrieval_ms.record(retrieval);
        result->ap_hit_total_ms.record(total);
        ++result->ap_hits;
      } else if (r.source == core::ClientRuntime::Source::EdgeServer) {
        result->edge_lookup_ms.record(lookup);
        result->edge_retrieval_ms.record(retrieval);
        result->edge_total_ms.record(total);
        if (account_passthrough) tb->account_passthrough(r.bytes);
      }
      if (obj.priority >= 2) {
        ++result->high_priority_fetches;
        if (ap_served) ++result->high_priority_ap_hits;
      }
    }
  };

  while (auto arrival = arrivals.next(horizon)) {
    AppDriver* driver = drivers[arrival->app_index].get();
    testbed.simulator().schedule_at(arrival->at, [driver, on_run_done] {
      driver->run_once(on_run_done);
    });
  }

  // Grace period lets in-flight runs (worst case: delegation + timeouts)
  // complete before aggregation.
  const sim::Time run_end = horizon + sim::seconds(30.0);
  testbed.start_timeline(run_end);  // no-op unless the run enables the timeline
  testbed.simulator().run_until(run_end);

  // Snapshot the run's observability state: pull-phase gauges first, then
  // the run.* aggregates, then copy the registry out so the result is
  // self-contained after the testbed dies.
  testbed.collect_metrics();
  obs::MetricsRegistry& m = testbed.observer().metrics();
  m.counter("run.app_runs").set(result->app_runs);
  m.counter("run.object_fetches").set(result->object_fetches);
  m.counter("run.failures").set(result->failures);
  m.counter("run.ap_hits").set(result->ap_hits);
  m.counter("run.high_priority_fetches").set(result->high_priority_fetches);
  m.counter("run.high_priority_ap_hits").set(result->high_priority_ap_hits);
  m.gauge("run.hit_ratio").set(result->hit_ratio());
  m.gauge("run.high_priority_hit_ratio").set(result->high_priority_hit_ratio());
  m.histogram("run.app_latency_ms", "ms").merge(result->app_latency_ms);
  m.histogram("run.lookup_ms", "ms").merge(result->lookup_ms);
  m.histogram("run.retrieval_ms", "ms").merge(result->retrieval_ms);
  m.histogram("run.total_ms", "ms").merge(result->total_ms);
  m.histogram("run.ap_hit_total_ms", "ms").merge(result->ap_hit_total_ms);
  m.histogram("run.edge_total_ms", "ms").merge(result->edge_total_ms);

  // Final flush AFTER the run.* aggregates above: the last window absorbs
  // them, making the timeline an exact partition of the finished registry.
  testbed.flush_timeline();
  result->metrics = m;

  return std::move(*result);
}

SystemRunResult run_system(System system, TestbedParams params,
                           const std::vector<workload::AppSpec>& apps,
                           const WorkloadConfig& config, bool account_passthrough) {
  params.system = system;
  Testbed testbed(std::move(params));
  return run_workload(testbed, apps, config, account_passthrough);
}

}  // namespace ape::testbed

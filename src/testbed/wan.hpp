// WAN fixture reproducing the paper's Table I measurement (Sec. II-B):
// clients in Michigan / Tokyo / São Paulo resolving and pinging the Akamai
// properties of Apple, Microsoft and Yahoo.
//
// Per service the DNS chain is the real one (Fig. 1): provider ADNS
// answers with a CNAME into the CDN namespace; the CDN's mapping DNS
// returns the cache server assigned to the querying resolver's region —
// or the origin when the region has no deployment (Yahoo in São Paulo).
// Link latencies/hop counts are calibrated against the published table.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dns/adns.hpp"
#include "dns/cdn_dns.hpp"
#include "dns/ldns.hpp"
#include "dns/stub_resolver.hpp"
#include "common/shard.hpp"
#include "stats/histogram.hpp"
#include "testbed/testbed.hpp"

namespace ape::testbed {

class WanFixture {
  APE_SHARD_CONTEXT(wan);

 public:
  WanFixture();
  WanFixture(const WanFixture&) = delete;
  WanFixture& operator=(const WanFixture&) = delete;

  struct Measurement {
    std::string location;
    std::string service;
    double dns_resolution_ms = 0.0;
    double rtt_ms = 0.0;
    std::size_t hops = 0;
    bool served_from_origin = false;
  };

  // Runs `query_count` DNS resolutions per (location, service), spaced
  // `spacing` apart (wider than the CDN mapping TTL, as when measuring a
  // live system over minutes), then pings the resolved address.
  [[nodiscard]] std::vector<Measurement> measure(std::size_t query_count = 100,
                                                 sim::Duration spacing = sim::seconds(30.0));

  [[nodiscard]] const std::vector<std::string>& locations() const noexcept {
    return location_names_;
  }
  [[nodiscard]] const std::vector<std::string>& services() const noexcept {
    return service_names_;
  }

 private:
  struct Location {
    std::string name;
    net::NodeId client{};
    net::NodeId ldns_node{};
    net::IpAddress client_ip{};
    net::IpAddress ldns_ip{};
    std::unique_ptr<sim::ServiceQueue> ldns_cpu;
    std::unique_ptr<dns::LocalDnsServer> ldns;
    std::unique_ptr<dns::StubResolver> resolver;
  };

  struct Service {
    std::string name;
    dns::DnsName domain;
    dns::DnsName cdn_name;
    net::NodeId adns_node{};
    net::NodeId cdn_dns_node{};
    net::NodeId origin_node{};
    net::IpAddress origin_ip{};
    std::unique_ptr<sim::ServiceQueue> adns_cpu, cdn_cpu;
    std::unique_ptr<dns::AuthoritativeDnsServer> adns;
    std::unique_ptr<dns::CdnDnsServer> cdn_dns;
  };

  void build();
  void add_cache_server(Service& service, const std::string& region, Location& location,
                        std::size_t hops, double rtt_ms);

  // Datagram echo ("ping") against a node that runs the echo responder.
  void ping(Location& location, net::IpAddress target, std::size_t count,
            stats::Histogram& rtt_ms);

  APE_SHARD_LOCAL(wan) sim::Simulator sim_;
  APE_SHARD_LOCAL(wan) net::Topology topology_;
  APE_SHARD_LOCAL(wan) std::unique_ptr<net::Network> network_;

  APE_SHARD_LOCAL(wan) std::vector<std::string> location_names_{"Michigan, US",
                                                                "Tokyo, Japan",
                                                                "Sao Paulo, Brazil"};
  APE_SHARD_LOCAL(wan) std::vector<std::string> service_names_{"Apple", "Microsoft",
                                                               "Yahoo"};
  APE_SHARD_LOCAL(wan) std::vector<Location> locations_;
  APE_SHARD_LOCAL(wan) std::vector<Service> services_;
  APE_SHARD_LOCAL(wan) std::uint32_t next_ip_ = 1;

  net::IpAddress fresh_ip();
};

}  // namespace ape::testbed

// Experiment harness shared by the bench binaries: runs a workload (a set
// of apps with Zipf-distributed Poisson arrivals) against one testbed and
// aggregates the paper's metrics.
#pragma once

#include "obs/metrics.hpp"
#include "stats/histogram.hpp"
#include "testbed/app_driver.hpp"
#include "testbed/testbed.hpp"
#include "workload/arrivals.hpp"

namespace ape::testbed {

struct WorkloadConfig {
  double mean_freq_per_min = 3.0;   // paper default
  double zipf_exponent = 0.8;
  sim::Duration duration{sim::minutes(60)};
  std::uint64_t seed = 42;
  // Client devices behind the AP (Fig. 9 uses two phones + an emulator
  // desktop = 3); apps are distributed round-robin across them.
  std::size_t client_count = 1;
};

struct SystemRunResult {
  std::string system;
  std::size_t app_runs = 0;
  stats::Histogram app_latency_ms;

  // Per-object metrics over every cacheable fetch.
  std::size_t object_fetches = 0;
  std::size_t failures = 0;
  stats::Histogram lookup_ms;
  stats::Histogram retrieval_ms;
  stats::Histogram total_ms;

  // Conditioned on where the object came from.
  stats::Histogram ap_hit_lookup_ms, ap_hit_retrieval_ms, ap_hit_total_ms;
  stats::Histogram edge_lookup_ms, edge_retrieval_ms, edge_total_ms;

  // Client-observed cache effectiveness (AP-served == hit).
  std::size_t ap_hits = 0;
  std::size_t high_priority_fetches = 0;
  std::size_t high_priority_ap_hits = 0;

  // Full metrics snapshot of the run — everything the testbed's Observer
  // accumulated (ap.*, client.*, pacm.*, dns.*, sim.*) plus the run.*
  // aggregates below, so benches can line systems up in one JSON file.
  obs::MetricsRegistry metrics;

  [[nodiscard]] double hit_ratio() const noexcept {
    return object_fetches == 0
               ? 0.0
               : static_cast<double>(ap_hits) / static_cast<double>(object_fetches);
  }
  [[nodiscard]] double high_priority_hit_ratio() const noexcept {
    return high_priority_fetches == 0
               ? 0.0
               : static_cast<double>(high_priority_ap_hits) /
                     static_cast<double>(high_priority_fetches);
  }
};

// Hosts `apps` on the testbed, drives them for `config.duration`, returns
// the aggregated metrics.  `account_passthrough` controls whether edge
// fetches charge the AP's forwarding path (on for resource experiments).
[[nodiscard]] SystemRunResult run_workload(Testbed& testbed,
                                           const std::vector<workload::AppSpec>& apps,
                                           const WorkloadConfig& config,
                                           bool account_passthrough = false);

// Convenience: builds a fresh testbed for `system` and runs the workload.
[[nodiscard]] SystemRunResult run_system(System system, TestbedParams params,
                                         const std::vector<workload::AppSpec>& apps,
                                         const WorkloadConfig& config,
                                         bool account_passthrough = false);

}  // namespace ape::testbed

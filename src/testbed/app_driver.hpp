// Executes one run of an app's request DAG against an ObjectFetcher and
// measures the app-level latency (makespan + UI composition).
#pragma once

#include <functional>

#include "baselines/system_interface.hpp"
#include "common/shard.hpp"
#include "workload/app_model.hpp"

namespace ape::testbed {

// One fetched object's outcome, annotated with its workload context.
struct ObjectRecord {
  std::string request_name;
  int priority = 1;
  core::ClientRuntime::FetchResult result;
};

struct AppRunResult {
  // App-level latency (the paper's responsiveness metric): the user sees
  // the result once the *critical path* — the priority-2 chain identified
  // at development time (Sec. III-A) — completes and the UI composes;
  // remaining low-priority fetches fill in progressively.
  sim::Duration app_latency{0};
  // Full makespan: every request done + composition.
  sim::Duration full_makespan{0};
  std::size_t fetches = 0;
  std::size_t failures = 0;
  std::vector<ObjectRecord> objects;
};

class AppDriver {
  APE_SHARD_CONTEXT(client);

 public:
  AppDriver(sim::Simulator& sim, const workload::AppSpec& app,
            baselines::ObjectFetcher& fetcher);

  using DoneHandler = std::function<void(AppRunResult)>;

  // Starts one run; many runs may be in flight concurrently (each call
  // allocates its own run state).
  void run_once(DoneHandler done);

  [[nodiscard]] const workload::AppSpec& app() const noexcept { return app_; }

 private:
  APE_SHARD_SHARED sim::Simulator& sim_;
  APE_SHARD_LOCAL(client) const workload::AppSpec app_;  // copied: runs outlive callers' specs
  APE_SHARD_LOCAL(client) baselines::ObjectFetcher& fetcher_;
};

}  // namespace ape::testbed

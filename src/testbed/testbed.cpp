#include "testbed/testbed.hpp"

#include <cassert>

namespace ape::testbed {

const char* to_string(System system) noexcept {
  switch (system) {
    case System::ApeCache: return "APE-CACHE";
    case System::ApeCacheLru: return "APE-CACHE-LRU";
    case System::WiCache: return "Wi-Cache";
    case System::EdgeCache: return "Edge Cache";
  }
  return "?";
}

Testbed::Testbed(TestbedParams params)
    : params_(std::move(params)), obs_(params_.trace_capacity, params_.span_capacity) {
  obs_.spans().set_enabled(params_.enable_spans);
  build_topology();
  build_dns();
  build_servers();
  if (params_.enable_timeline) build_telemetry();
}

Testbed::~Testbed() {
  if (timeline_tick_ != 0) sim_.cancel(timeline_tick_);
}

void Testbed::build_telemetry() {
  obs_.timeline().set_enabled(true);
  obs_.timeline().set_interval(params_.timeline_interval);
  telemetry_agent_ = std::make_unique<TelemetryAgent>(*network_, ap_node_, ap_->cpu(),
                                                      obs_.timeline(), &obs_);
  telemetry_collector_ = std::make_unique<TelemetryCollector>(
      *network_, controller_node_, net::Endpoint{ap_ip_, kTelemetryAgentPort},
      params_.telemetry_scrape_interval, &obs_);
  for (const std::string& text : params_.slo_rules) {
    auto rule = obs::parse_slo_rule(text);
    assert(rule.ok() && "TestbedParams::slo_rules must parse (see obs/slo.hpp grammar)");
    if (rule.ok()) telemetry_collector_->slo().add_rule(std::move(rule).value());
  }
}

void Testbed::start_timeline(sim::Time until) {
  if (!obs_.timeline_enabled()) return;
  timeline_until_ = until;
  schedule_timeline_tick();
  if (telemetry_collector_ != nullptr) telemetry_collector_->start(until);
}

void Testbed::schedule_timeline_tick() {
  timeline_tick_ = sim_.schedule_in(obs_.timeline().interval(), [this] {
    timeline_tick_ = 0;
    collect_metrics();
    obs_.timeline().capture(obs_.metrics(), sim_.now());
    if (sim_.now() + obs_.timeline().interval() <= timeline_until_) {
      schedule_timeline_tick();
    }
  });
}

void Testbed::flush_timeline() {
  if (!obs_.timeline_enabled()) return;
  collect_metrics();
  obs_.timeline().capture(obs_.metrics(), sim_.now());
}

void Testbed::build_topology() {
  ap_node_ = topology_.add_node("ap");
  edge_node_ = topology_.add_node("edge");
  ldns_node_ = topology_.add_node("ldns");
  adns_node_ = topology_.add_node("adns");
  cdn_dns_node_ = topology_.add_node("cdn-dns");
  controller_node_ = topology_.add_node("ec2-controller");

  // AP -> edge: the 7-hop path of Fig. 9.
  topology_.add_multi_hop_path(ap_node_, edge_node_, params_.edge_hops, params_.edge_per_hop,
                               params_.wan_bandwidth);
  // AP -> Wi-Cache controller: 12 hops.
  topology_.add_multi_hop_path(ap_node_, controller_node_, params_.controller_hops,
                               params_.controller_per_hop, params_.wan_bandwidth);
  // AP -> LDNS (the ISP resolver), then resolver-side services.
  topology_.add_link(ap_node_, ldns_node_,
                     net::LinkSpec{params_.ldns_one_way, params_.wan_bandwidth});
  topology_.add_link(ldns_node_, adns_node_,
                     net::LinkSpec{params_.adns_from_ldns, params_.wan_bandwidth});
  topology_.add_link(ldns_node_, cdn_dns_node_,
                     net::LinkSpec{params_.cdn_dns_from_ldns, params_.wan_bandwidth});

  network_ = std::make_unique<net::Network>(sim_, topology_);
  tcp_ = std::make_unique<net::TcpTransport>(*network_);
  tcp_->set_observer(&obs_);

  ap_ip_ = net::IpAddress::from_octets(192, 168, 8, 1);
  edge_ip_ = net::IpAddress::from_octets(10, 1, 0, 2);
  ldns_ip_ = net::IpAddress::from_octets(10, 2, 0, 2);
  adns_ip_ = net::IpAddress::from_octets(10, 3, 0, 2);
  cdn_dns_ip_ = net::IpAddress::from_octets(10, 4, 0, 2);
  controller_ip_ = net::IpAddress::from_octets(3, 14, 0, 2);
  network_->assign_ip(ap_node_, ap_ip_);
  network_->assign_ip(edge_node_, edge_ip_);
  network_->assign_ip(ldns_node_, ldns_ip_);
  network_->assign_ip(adns_node_, adns_ip_);
  network_->assign_ip(cdn_dns_node_, cdn_dns_ip_);
  network_->assign_ip(controller_node_, controller_ip_);
}

void Testbed::build_dns() {
  ldns_cpu_ = std::make_unique<sim::ServiceQueue>(sim_, 4);
  adns_cpu_ = std::make_unique<sim::ServiceQueue>(sim_, 4);
  cdn_cpu_ = std::make_unique<sim::ServiceQueue>(sim_, 4);

  ldns_ = std::make_unique<dns::LocalDnsServer>(*network_, ldns_node_, *ldns_cpu_,
                                                sim::microseconds(200));
  adns_ = std::make_unique<dns::AuthoritativeDnsServer>(*network_, adns_node_, *adns_cpu_,
                                                        sim::microseconds(150));
  cdn_dns_ = std::make_unique<dns::CdnDnsServer>(*network_, cdn_dns_node_, *cdn_cpu_,
                                                 sim::microseconds(150));
  cdn_dns_->set_answer_ttl(params_.cdn_answer_ttl);
  cdn_dns_->set_region_of(ldns_ip_, "testbed");

  // CDN namespace delegation.
  const auto cdn_zone = dns::DnsName::parse("edgecdn.net").value();
  ldns_->add_delegation(cdn_zone, net::Endpoint{cdn_dns_ip_, net::kDnsPort});
}

void Testbed::build_servers() {
  // Edge cache server: ample capacity, preloaded via host_app.
  edge_cpu_ = std::make_unique<sim::ServiceQueue>(sim_, 8);
  edge_ = std::make_unique<http::EdgeCacheServer>(*tcp_, edge_node_, *edge_cpu_);
  edge_->set_observer(&obs_);

  // The AP: APE-CACHE runtimes for the two APE systems, stock forwarder for
  // Wi-Cache / Edge Cache.  The flash media outlives ApRuntime incarnations
  // (restart_ap), modelling the AP's persistent storage part.
  const bool ape_enabled =
      params_.system == System::ApeCache || params_.system == System::ApeCacheLru;
  if (ape_enabled && params_.ape.flash_capacity_bytes > 0) {
    flash_media_ = std::make_unique<store::FlashMedia>();
  }
  build_ap();

  if (params_.system == System::WiCache) {
    wicache_agent_ = std::make_unique<baselines::WiCacheApAgent>(
        *network_, *tcp_, ap_node_, ap_->cpu(), params_.wicache_capacity_bytes,
        net::Endpoint{controller_ip_, baselines::kWiCacheControllerPort});
    controller_cpu_ = std::make_unique<sim::ServiceQueue>(sim_, 4);
    wicache_controller_ = std::make_unique<baselines::WiCacheController>(
        *network_, controller_node_, *controller_cpu_,
        net::Endpoint{ap_ip_, baselines::kWiCacheAgentControlPort}, ap_ip_, edge_ip_);
  }
}

void Testbed::build_ap() {
  core::ApRuntime::Options ap_options;
  ap_options.config = params_.ape;
  ap_options.upstream_dns = net::Endpoint{ldns_ip_, net::kDnsPort};
  ap_options.enable_ape =
      params_.system == System::ApeCache || params_.system == System::ApeCacheLru;
  ap_options.policy = params_.system == System::ApeCacheLru ? core::ApRuntime::Policy::Lru
                                                            : core::ApRuntime::Policy::Pacm;
  if (params_.policy_override) ap_options.policy = *params_.policy_override;
  ap_options.observer = &obs_;
  ap_options.flash_media = flash_media_.get();
  ap_ = std::make_unique<core::ApRuntime>(*network_, *tcp_, ap_node_, ap_options);
}

void Testbed::restart_ap(bool preserve_flash) {
  assert(ap_ != nullptr);
  assert(wicache_agent_ == nullptr && "restart_ap models APE firmware restarts only");
  // The telemetry agent captures the old runtime's ServiceQueue by
  // reference; timeline runs must not restart the AP.
  assert(telemetry_agent_ == nullptr && "restart_ap is unsupported in timeline runs");
  // Completion events capture the runtime; tearing it down mid-flight is UB.
  assert(ap_->cpu().busy_servers() == 0 && ap_->cpu().queued() == 0 &&
         "restart_ap requires a quiesced AP (drain the sim first)");
  ap_.reset();  // DNS/HTTP servers unbind, pending sweep event is cancelled
  if (!preserve_flash && flash_media_ != nullptr) flash_media_->clear();
  build_ap();
}

void Testbed::host_app(const workload::AppSpec& app) {
  assert(app.valid());
  for (auto& object : app.objects()) {
    // The edge hosts every object with its backend ("retrieval") latency;
    // warm client-facing hits skip it, cache-fill origin pulls pay it —
    // see EdgeCacheServer.
    edge_->host(object);
  }
  // Publish the domain: ADNS answers the app's host with a CNAME into the
  // CDN namespace; the CDN DNS maps it to the edge server.
  const auto domain = dns::DnsName::parse(app.domain).value();
  const auto cdn_name = dns::DnsName::parse(app.domain + ".edgecdn.net").value();
  adns_->add_zone(domain);
  adns_->add_cname(domain, cdn_name, params_.cname_ttl);
  cdn_dns_->add_service(cdn_name, edge_ip_);
  cdn_dns_->add_cache_server(cdn_name, "testbed", edge_ip_);

  // LDNS learns where the app's zone is served.
  ldns_->add_delegation(domain, net::Endpoint{adns_ip_, net::kDnsPort});
}

Testbed::Client& Testbed::add_client(const std::string& name) {
  auto client = std::make_unique<Client>();
  const net::NodeId node = topology_.add_node(name);
  topology_.add_link(node, ap_node_,
                     net::LinkSpec{params_.wifi_one_way, params_.wifi_bandwidth});
  network_->assign_ip(node,
                      net::IpAddress::from_octets(192, 168, 8,
                                                  static_cast<std::uint8_t>(
                                                      next_client_ip_suffix_++)));
  client->node = node;

  core::ClientRuntime::Options options;
  options.ap_dns = net::Endpoint{ap_ip_, net::kDnsPort};
  options.ap_ip = ap_ip_;
  options.ape_enabled =
      params_.system == System::ApeCache || params_.system == System::ApeCacheLru;
  options.observer = &obs_;
  client->runtime = std::make_unique<core::ClientRuntime>(*network_, *tcp_, node,
                                                          next_client_port_++, options);

  switch (params_.system) {
    case System::ApeCache:
      client->fetcher =
          std::make_unique<baselines::ApeFetcher>(*client->runtime, "APE-CACHE");
      break;
    case System::ApeCacheLru:
      client->fetcher =
          std::make_unique<baselines::ApeFetcher>(*client->runtime, "APE-CACHE-LRU");
      break;
    case System::WiCache:
      client->fetcher = std::make_unique<baselines::WiCacheFetcher>(
          *network_, *tcp_, node, next_client_port_++,
          net::Endpoint{controller_ip_, baselines::kWiCacheControllerPort}, ap_ip_);
      break;
    case System::EdgeCache:
      client->fetcher = std::make_unique<baselines::EdgeCacheFetcher>(*client->runtime);
      break;
  }

  clients_.push_back(std::move(client));
  return *clients_.back();
}

void Testbed::collect_metrics() {
  obs::MetricsRegistry& m = obs_.metrics();

  // Event-loop pressure: fired events, live queue depth and its high-water
  // mark, and the tombstone (cancelled-slot) picture.
  m.counter("sim.events_fired").set(sim_.events_fired());
  m.counter("sim.events_cancelled").set(sim_.events_cancelled());
  m.counter("sim.compactions").set(sim_.compactions());
  m.gauge("sim.queue.pending").set(static_cast<double>(sim_.pending()));
  m.gauge("sim.queue.high_water").set(static_cast<double>(sim_.queue_high_water()));
  m.gauge("sim.queue.tombstones").set(static_cast<double>(sim_.tombstones()));
  m.gauge("sim.queue.tombstone_ratio").set(sim_.tombstone_ratio());
  m.gauge("sim.now_s").set(sim_.now().seconds());

  // DNS hierarchy tallies (queries each speaker served / recursed).
  m.counter("dns.ldns.queries").set(ldns_->queries_received());
  m.counter("dns.ldns.upstream_queries").set(ldns_->upstream_queries());
  m.counter("dns.ldns.cache_size").set(ldns_->cache_size());
  m.counter("dns.adns.queries").set(adns_->queries_received());
  m.counter("dns.cdn.queries").set(cdn_dns_->queries_received());

  // Edge server / origin pull picture.
  m.counter("edge.requests").set(edge_->requests_served());
  m.counter("edge.hits").set(edge_->hits());
  m.counter("edge.misses").set(edge_->misses());

  m.gauge("ap.cpu.busy_s").set(sim::to_seconds(ap_->cpu().busy_time()));

  // Span bookkeeping + per-span-kind latency histograms, only in traced
  // runs so default ape.obs.v1 exports stay byte-identical.  The cursor
  // makes repeated collection idempotent (each span is folded in once).
  if (obs_.spans_enabled()) {
    m.counter("obs.trace.recorded").set(obs_.trace().recorded());
    m.counter("obs.trace.dropped").set(obs_.trace().dropped());
    m.counter("obs.spans.recorded").set(obs_.spans().recorded());
    m.counter("obs.spans.dropped").set(obs_.spans().dropped());
    m.gauge("obs.spans.open").set(static_cast<double>(obs_.spans().open_count()));
    spans_histogrammed_ =
        obs::record_span_histograms(obs_.spans().spans(), m, spans_histogrammed_);
  }

  ap_->snapshot_metrics();
}

sim::ResourceMeter& Testbed::meter_ap(sim::Duration interval, sim::Time until) {
  meter_ = std::make_unique<sim::ResourceMeter>(sim_, ap_->cpu_cores());
  meter_->add_cpu_source([this] { return ap_->cpu().busy_time(); });
  meter_->add_memory_source([this] { return ap_->memory_bytes(); });
  meter_->start(interval, until);
  return *meter_;
}

void Testbed::account_passthrough(std::size_t bytes) {
  // Client <-> edge traffic transits the AP's kernel fast path twice
  // (WAN ingress + WiFi egress).  Connection state is tracked by the TCP
  // transport, not the flow counter (flows there model replayed captures).
  const std::size_t packets = 2 * (bytes / 1448 + 2);  // data + SYN/ACK chatter
  for (std::size_t i = 0; i < packets; ++i) {
    ap_->forward_packet(i < 2 ? 80 : 1448, false);
  }
}

}  // namespace ape::testbed

#include "testbed/wan.hpp"

#include <memory>

namespace ape::testbed {

namespace {

// Calibration targets from the paper's Table I.
struct PairSpec {
  double dns_ms;    // average DNS resolution
  double rtt_ms;    // ping RTT to the resolved server
  std::size_t hops; // one-way hop count
  bool has_cache;   // false -> resolves to the origin (Yahoo / São Paulo)
};

// [location][service]: Michigan, Tokyo, São Paulo x Apple, Microsoft, Yahoo.
constexpr PairSpec kPairs[3][3] = {
    {{18, 34, 13, true}, {19, 33, 13, true}, {21, 53, 16, true}},
    {{18, 22, 7, true}, {26, 27, 10, true}, {27, 93, 13, true}},
    {{20, 19, 12, true}, {26, 19, 10, true}, {226, 156, 15, false}},
};

constexpr double kClientLdnsOneWayMs = 2.0;   // client <-> local resolver
constexpr net::Port kEchoPort = 7;
constexpr net::Port kPingPort = 30007;

}  // namespace

net::IpAddress WanFixture::fresh_ip() {
  const std::uint32_t n = next_ip_++;
  return net::IpAddress::from_octets(172, static_cast<std::uint8_t>(16 + (n >> 16)),
                                     static_cast<std::uint8_t>(n >> 8),
                                     static_cast<std::uint8_t>(n));
}

WanFixture::WanFixture() {
  network_ = std::make_unique<net::Network>(sim_, topology_);
  build();
}

void WanFixture::build() {
  const double wan_bw = 60e6;

  // Locations: client + LDNS each.  All WAN endpoints are hosts, not
  // routers — they never forward third-party traffic.
  for (const auto& name : location_names_) {
    Location loc;
    loc.name = name;
    loc.client = topology_.add_node("client-" + name);
    loc.ldns_node = topology_.add_node("ldns-" + name);
    topology_.set_transit(loc.client, false);
    topology_.set_transit(loc.ldns_node, false);
    topology_.add_link(loc.client, loc.ldns_node,
                       net::LinkSpec{sim::milliseconds(kClientLdnsOneWayMs), wan_bw});
    loc.client_ip = fresh_ip();
    loc.ldns_ip = fresh_ip();
    network_->assign_ip(loc.client, loc.client_ip);
    network_->assign_ip(loc.ldns_node, loc.ldns_ip);
    loc.ldns_cpu = std::make_unique<sim::ServiceQueue>(sim_, 4);
    loc.ldns = std::make_unique<dns::LocalDnsServer>(*network_, loc.ldns_node, *loc.ldns_cpu,
                                                     sim::microseconds(200));
    loc.resolver = std::make_unique<dns::StubResolver>(
        *network_, loc.client, net::Endpoint{loc.ldns_ip, net::kDnsPort}, 30053);
    locations_.push_back(std::move(loc));
  }

  // Services: provider ADNS + CDN mapping DNS (+ origin) each.
  const std::string domains[3] = {"www.apple.com", "www.microsoft.com", "www.yahoo.com"};
  const std::string cdn_suffixes[3] = {"edgekey.net", "edgesuite.net", "akadns.net"};
  for (std::size_t s = 0; s < 3; ++s) {
    Service svc;
    svc.name = service_names_[s];
    svc.domain = dns::DnsName::parse(domains[s]).value();
    svc.cdn_name = dns::DnsName::parse(domains[s] + "." + cdn_suffixes[s]).value();
    svc.adns_node = topology_.add_node("adns-" + svc.name);
    svc.cdn_dns_node = topology_.add_node("cdn-dns-" + svc.name);
    svc.origin_node = topology_.add_node("origin-" + svc.name);
    topology_.set_transit(svc.adns_node, false);
    topology_.set_transit(svc.cdn_dns_node, false);
    topology_.set_transit(svc.origin_node, false);
    network_->assign_ip(svc.adns_node, fresh_ip());
    network_->assign_ip(svc.cdn_dns_node, fresh_ip());
    svc.origin_ip = fresh_ip();
    network_->assign_ip(svc.origin_node, svc.origin_ip);

    svc.adns_cpu = std::make_unique<sim::ServiceQueue>(sim_, 4);
    svc.cdn_cpu = std::make_unique<sim::ServiceQueue>(sim_, 4);
    svc.adns = std::make_unique<dns::AuthoritativeDnsServer>(*network_, svc.adns_node,
                                                             *svc.adns_cpu,
                                                             sim::microseconds(150));
    svc.adns->add_zone(svc.domain);
    svc.adns->add_cname(svc.domain, svc.cdn_name, 3600);
    svc.cdn_dns = std::make_unique<dns::CdnDnsServer>(*network_, svc.cdn_dns_node,
                                                      *svc.cdn_cpu, sim::microseconds(150));
    // Akamai-style per-query mapping: not cacheable.
    svc.cdn_dns->set_answer_ttl(0);
    svc.cdn_dns->add_service(svc.cdn_name, svc.origin_ip);

    // Echo responders for ping.
    auto echo = [this](const net::Datagram& d) {
      const auto node = network_->owner_of(d.destination.ip);
      if (node) network_->send_datagram(*node, kEchoPort, d.source, d.payload);
    };
    network_->bind_udp(svc.origin_node, kEchoPort, echo);

    services_.push_back(std::move(svc));
  }

  // Wire each (location, service) pair with calibrated latencies.
  for (std::size_t l = 0; l < locations_.size(); ++l) {
    Location& loc = locations_[l];
    for (std::size_t s = 0; s < services_.size(); ++s) {
      Service& svc = services_[s];
      const PairSpec& spec = kPairs[l][s];
      const std::string region = loc.name;

      // DNS chain: LDNS -> CDN DNS latency makes up the bulk of the
      // (uncacheable) resolution; ADNS sits a bit farther out but its
      // CNAME is cached after the first query.
      const double cdn_one_way_ms = (spec.dns_ms - 2.0 * kClientLdnsOneWayMs - 0.8) / 2.0;
      topology_.add_link(loc.ldns_node, svc.cdn_dns_node,
                         net::LinkSpec{sim::milliseconds(cdn_one_way_ms), 60e6});
      topology_.add_link(loc.ldns_node, svc.adns_node,
                         net::LinkSpec{sim::milliseconds(cdn_one_way_ms + 10.0), 60e6});
      loc.ldns->add_delegation(svc.domain, net::Endpoint{
          network_->ip_of(svc.adns_node).value(), net::kDnsPort});
      loc.ldns->add_delegation(dns::DnsName::parse(cdn_suffixes[s]).value(),
                               net::Endpoint{network_->ip_of(svc.cdn_dns_node).value(),
                                             net::kDnsPort});
      svc.cdn_dns->set_region_of(loc.ldns_ip, region);

      if (spec.has_cache) {
        add_cache_server(svc, region, loc, spec.hops, spec.rtt_ms);
      } else {
        // No regional deployment: CDN maps this region to the origin, far
        // away over the published hop count.
        topology_.add_multi_hop_path(loc.client, svc.origin_node, spec.hops,
                                     sim::milliseconds(spec.rtt_ms / (2.0 *
                                         static_cast<double>(spec.hops))),
                                     60e6);
      }
    }
  }
}

void WanFixture::add_cache_server(Service& service, const std::string& region,
                                  Location& location, std::size_t hops, double rtt_ms) {
  const net::NodeId server =
      topology_.add_node("cache-" + service.name + "-" + region);
  topology_.set_transit(server, false);
  const net::IpAddress ip = fresh_ip();
  network_->assign_ip(server, ip);
  topology_.add_multi_hop_path(location.client, server, hops,
                               sim::milliseconds(rtt_ms / (2.0 * static_cast<double>(hops))),
                               60e6);
  network_->bind_udp(server, kEchoPort, [this](const net::Datagram& d) {
    const auto node = network_->owner_of(d.destination.ip);
    if (node) network_->send_datagram(*node, kEchoPort, d.source, d.payload);
  });
  service.cdn_dns->add_cache_server(service.cdn_name, region, ip);
}

void WanFixture::ping(Location& location, net::IpAddress target, std::size_t count,
                      stats::Histogram& rtt_ms) {
  // One outstanding echo at a time, sequential.
  struct PingState {
    std::size_t remaining;
    sim::Time sent{};
  };
  auto state = std::make_shared<PingState>();
  state->remaining = count;

  auto send_next = std::make_shared<std::function<void()>>();
  network_->bind_udp(location.client, kPingPort,
                     [this, state, &rtt_ms, send_next](const net::Datagram&) {
                       rtt_ms.record(sim::to_millis(sim_.now() - state->sent));
                       if (--state->remaining > 0) (*send_next)();
                     });
  *send_next = [this, &location, target, state] {
    state->sent = sim_.now();
    network_->send_datagram(location.client, kPingPort, net::Endpoint{target, kEchoPort},
                            net::Payload{0x50, 0x49, 0x4E, 0x47});
  };
  (*send_next)();
  sim_.run();
  network_->unbind_udp(location.client, kPingPort);
}

std::vector<WanFixture::Measurement> WanFixture::measure(std::size_t query_count,
                                                         sim::Duration spacing) {
  std::vector<Measurement> results;

  for (std::size_t l = 0; l < locations_.size(); ++l) {
    Location& loc = locations_[l];
    for (std::size_t s = 0; s < services_.size(); ++s) {
      Service& svc = services_[s];
      Measurement m;
      m.location = loc.name;
      m.service = svc.name;

      stats::Histogram dns_ms("ms");
      auto resolved_ip = std::make_shared<net::IpAddress>();

      // `query_count` resolutions spaced wider than any mapping TTL.
      for (std::size_t q = 0; q < query_count; ++q) {
        const sim::Time at = sim_.now() + spacing;
        sim_.schedule_at(at, [this, &loc, &svc, &dns_ms, resolved_ip] {
          const sim::Time started = sim_.now();
          loc.resolver->resolve(svc.domain,
                                [this, started, &dns_ms, resolved_ip](
                                    Result<dns::ResolveResult> result) {
                                  dns_ms.record(sim::to_millis(sim_.now() - started));
                                  if (result) *resolved_ip = result.value().address;
                                });
        });
        sim_.run();
      }
      m.dns_resolution_ms = dns_ms.mean();
      m.served_from_origin = *resolved_ip == svc.origin_ip;

      // Ping + hop count to the resolved address.
      stats::Histogram rtt("ms");
      ping(loc, *resolved_ip, 20, rtt);
      m.rtt_ms = rtt.mean();
      const auto owner = network_->owner_of(*resolved_ip);
      if (owner) {
        const auto path = topology_.path(loc.client, *owner);
        if (path) m.hops = path->hops;
      }
      results.push_back(std::move(m));
    }
  }
  return results;
}

}  // namespace ape::testbed

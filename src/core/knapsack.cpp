#include "core/knapsack.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <numeric>

namespace ape::core {

namespace {

constexpr std::size_t kGranularity = 1024;  // DP cell = 1 kB

// Weight in DP units, rounded up so the byte budget is never exceeded.
std::size_t units(std::size_t bytes) {
  return (bytes + kGranularity - 1) / kGranularity;
}

KnapsackResult solve_greedy(std::span<const KnapsackItem> items, std::size_t capacity_bytes) {
  KnapsackResult result;
  result.exact = false;
  result.selected.assign(items.size(), false);

  std::vector<std::size_t> order(items.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double da = items[a].weight == 0
                          ? items[a].value
                          : items[a].value / static_cast<double>(items[a].weight);
    const double db = items[b].weight == 0
                          ? items[b].value
                          : items[b].value / static_cast<double>(items[b].weight);
    return da > db;
  });

  for (std::size_t idx : order) {
    if (result.total_weight + items[idx].weight > capacity_bytes) continue;
    result.selected[idx] = true;
    result.total_weight += items[idx].weight;
    result.total_value += items[idx].value;
  }
  return result;
}

}  // namespace

KnapsackResult solve_knapsack(std::span<const KnapsackItem> items, std::size_t capacity_bytes,
                              std::size_t dp_budget) {
  const std::size_t n = items.size();
  // Item weights round up to DP units; capacity rounds up too so that
  // exact byte fits (item == capacity) stay feasible.  The optimistic
  // capacity rounding can admit a slight byte overflow, which the repair
  // pass below removes.
  const std::size_t cap_units = units(capacity_bytes);

  if (n == 0) return KnapsackResult{{}, 0.0, 0, true};
  if (n * (cap_units + 1) > dp_budget) return solve_greedy(items, capacity_bytes);

  // dp[w] = best value using a prefix of items at weight w; `taken` bitset
  // per item row enables backtracking without an n x cap table of doubles.
  const std::size_t width = cap_units + 1;
  std::vector<double> dp(width, 0.0);
  std::vector<std::vector<bool>> taken(n, std::vector<bool>(width, false));

  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t w = units(items[i].weight);
    if (w > cap_units) continue;  // can never fit
    for (std::size_t c = cap_units + 1; c-- > w;) {
      const double candidate = dp[c - w] + items[i].value;
      if (candidate > dp[c]) {
        dp[c] = candidate;
        taken[i][c] = true;
      }
    }
  }

  KnapsackResult result;
  result.exact = true;
  result.selected.assign(n, false);
  result.total_value = dp[cap_units];

  std::size_t c = cap_units;
  for (std::size_t i = n; i-- > 0;) {
    if (taken[i][c]) {
      result.selected[i] = true;
      result.total_weight += items[i].weight;
      c -= units(items[i].weight);
    }
  }

  // Byte-feasibility repair: the unit-rounded capacity can overshoot by at
  // most one granule; drop the lowest-density selections until it fits.
  while (result.total_weight > capacity_bytes) {
    std::size_t worst = n;
    double worst_density = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < n; ++i) {
      if (!result.selected[i] || items[i].weight == 0) continue;
      const double density = items[i].value / static_cast<double>(items[i].weight);
      if (density < worst_density) {
        worst_density = density;
        worst = i;
      }
    }
    if (worst == n) break;
    result.selected[worst] = false;
    result.total_weight -= items[worst].weight;
    result.total_value -= items[worst].value;
  }
  assert(result.total_weight <= capacity_bytes);
  return result;
}

}  // namespace ape::core

// The two programming models compared in the paper (Sec. IV-A / V-F).
//
// Declarative ("annotation") model: developers attach Cacheable metadata to
// the fields that hold remote data; the runtime processes the metadata and
// intercepts matching HTTP requests — zero changes to app logic.  C++ has
// no runtime annotation reflection, so AnnotatedApp plays the role of the
// annotation processor: each cacheable_field() call corresponds to one
// @Cacheable line in the Java reference implementation.
//
// API-based alternative: every call site is rewritten to
// invoke_http_request_async(url, priority, TTL) — the model whose
// programming cost Table VII quantifies.
#pragma once

#include <string>
#include <vector>

#include "common/shard.hpp"
#include "core/client_runtime.hpp"

namespace ape::core {

class AnnotatedApp {
  APE_SHARD_CONTEXT(client);

 public:
  AnnotatedApp(std::string name, AppId id) : name_(std::move(name)), id_(id) {}

  // One @Cacheable(id=..., Priority=..., TTL=...) annotation.
  AnnotatedApp& cacheable_field(std::string field_name, std::string id_url, int priority,
                                std::uint32_t ttl_minutes);

  // "Annotation processing": registers every cacheable object with the
  // client library.  App logic is untouched — requests keep using plain
  // URLs and are intercepted by base-URL match.
  void attach(ClientRuntime& runtime) const;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] AppId id() const noexcept { return id_; }
  [[nodiscard]] std::size_t annotation_count() const noexcept { return fields_.size(); }

  struct Field {
    std::string field_name;
    CacheableSpec spec;
  };
  [[nodiscard]] const std::vector<Field>& fields() const noexcept { return fields_; }

 private:
  APE_SHARD_LOCAL(client) std::string name_;
  APE_SHARD_LOCAL(client) AppId id_;
  APE_SHARD_LOCAL(client) std::vector<Field> fields_;
};

// The API-based model: callers must thread priority/TTL through every
// request site (and therefore rewrite their fetch logic).
class ApiBasedClient {
  APE_SHARD_CONTEXT(client);

 public:
  explicit ApiBasedClient(ClientRuntime& runtime, AppId app)
      : runtime_(runtime), app_(app) {}

  // Mirrors `String invokeHttpRequestAsync(String url, int priority, int TTL)`.
  void invoke_http_request_async(const std::string& url, int priority,
                                 std::uint32_t ttl_minutes,
                                 ClientRuntime::FetchHandler handler);

  [[nodiscard]] std::size_t call_sites_used() const noexcept { return calls_; }

 private:
  APE_SHARD_LOCAL(client) ClientRuntime& runtime_;
  APE_SHARD_LOCAL(client) AppId app_;
  APE_SHARD_LOCAL(client) std::size_t calls_ = 0;
};

// Table VII accounting for one app under each model.
struct ProgrammingEffort {
  std::string app;
  std::size_t annotation_locs = 0;   // declarative: one line per annotation
  std::size_t api_locs = 0;          // API model: rewritten request sites
  bool rewrites_logic = false;       // declarative: no; API: yes
};

[[nodiscard]] ProgrammingEffort measure_effort(const AnnotatedApp& app,
                                               std::size_t request_sites);

}  // namespace ape::core

#include "core/programming_model.hpp"

namespace ape::core {

AnnotatedApp& AnnotatedApp::cacheable_field(std::string field_name, std::string id_url,
                                            int priority, std::uint32_t ttl_minutes) {
  CacheableSpec spec;
  spec.id = std::move(id_url);
  spec.priority = priority;
  spec.ttl_minutes = ttl_minutes;
  spec.app = id_;
  fields_.push_back(Field{std::move(field_name), std::move(spec)});
  return *this;
}

void AnnotatedApp::attach(ClientRuntime& runtime) const {
  for (const auto& field : fields_) runtime.register_cacheable(field.spec);
}

void ApiBasedClient::invoke_http_request_async(const std::string& url, int priority,
                                               std::uint32_t ttl_minutes,
                                               ClientRuntime::FetchHandler handler) {
  ++calls_;
  // The API model must (re)declare the object at every call site; the
  // runtime workflow afterwards is identical.
  auto parsed = http::Url::parse(url);
  if (parsed) {
    CacheableSpec spec;
    spec.id = parsed.value().base();
    spec.priority = priority;
    spec.ttl_minutes = ttl_minutes;
    spec.app = app_;
    runtime_.register_cacheable(std::move(spec));
  }
  runtime_.fetch(url, std::move(handler));
}

ProgrammingEffort measure_effort(const AnnotatedApp& app, std::size_t request_sites) {
  ProgrammingEffort effort;
  effort.app = app.name();
  // Declarative: one annotation line per cacheable field; logic untouched.
  effort.annotation_locs = app.annotation_count();
  // API-based: every request site touching a cacheable object is rewritten,
  // and each site needs the call + error plumbing (the paper counts ~3
  // lines per rewritten request, e.g. 30 LoC for MovieTrailer's 10 sites).
  effort.api_locs = request_sites * 3;
  effort.rewrites_logic = true;
  return effort;
}

}  // namespace ape::core

// URL hashing for DNS-Cache RDATA.
//
// The paper hashes URLs before putting them in (unencrypted) DNS messages
// "to maintain confidentiality" (Sec. IV-B1).  We use FNV-1a 64-bit: fixed
// width, dependency-free, stable across platforms.  Hashes are computed
// over the *base* URL (query parameters stripped) — the cache identity.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace ape::core {

using UrlHash = std::uint64_t;

[[nodiscard]] constexpr UrlHash hash_url(std::string_view base_url) noexcept {
  std::uint64_t h = 14695981039346656037ull;  // FNV offset basis
  for (char c : base_url) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

// Canonical rendering used as CacheStore keys and in logs.
[[nodiscard]] std::string hash_to_string(UrlHash h);

}  // namespace ape::core

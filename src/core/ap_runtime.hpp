// The APE-CACHE access-point runtime (paper Sec. IV): a dnsmasq-like DNS
// forwarder extended with DNS-Cache handling, an HTTP cache/delegation
// server, the PACM-managed object cache, and the device resource model.
//
// Responsibilities:
//  * regular DNS forwarding with a local record cache (stock dnsmasq role),
//  * DNS-Cache queries: batch cache status for every URL known under the
//    queried domain into the Additional section; short-circuit upstream
//    resolution with a dummy IP (TTL 0) when everything is cached locally,
//  * serving cached objects over HTTP,
//  * delegation: fetch from the edge on the client's behalf, learn the
//    object's fetch latency, cache it (PACM or LRU), or block-list it when
//    it exceeds the size threshold,
//  * CPU/memory accounting for the Fig. 2 / Fig. 14 experiments.
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "cache/block_list.hpp"
#include "cache/cache_stats.hpp"
#include "cache/object_store.hpp"
#include "common/shard.hpp"
#include "core/config.hpp"
#include "core/dns_cache_record.hpp"
#include "core/frequency_tracker.hpp"
#include "dns/server.hpp"
#include "dns/stub_resolver.hpp"
#include "http/endpoint.hpp"
#include "obs/observer.hpp"
#include "sim/simulator.hpp"
#include "store/tiered_store.hpp"

namespace ape::core {

class ApRuntime {
  APE_SHARD_CONTEXT(ap);

 public:
  // PACM is the paper's contribution; LRU the evaluated baseline; FIFO,
  // LFU and GDSF are additional ablation points (DESIGN.md).
  enum class Policy { Pacm, Lru, Fifo, Lfu, Gdsf };

  struct Options {
    ApeConfig config;
    net::Endpoint upstream_dns;   // the ISP's LDNS
    bool enable_ape = true;       // false = stock dnsmasq forwarder only
    Policy policy = Policy::Pacm;
    std::size_t cpu_cores = 2;    // MT7621A is dual-core
    // Nullable observability sink ("ap.*" metrics, cache/DNS trace events);
    // also forwarded into the PACM policy when `policy == Policy::Pacm`.
    obs::Observer* observer = nullptr;
    // Durable flash media for the tier (used when config.flash_capacity_bytes
    // > 0).  Pass the same FlashMedia to successive ApRuntime incarnations to
    // model a warm restart: mount replays its journal.  Null makes the
    // runtime own private media (no cross-restart persistence).
    store::FlashMedia* flash_media = nullptr;
  };

  ApRuntime(net::Network& network, net::TcpTransport& tcp, net::NodeId node, Options options);
  // Cancels the pending periodic sweep event, if any.  Destroying a runtime
  // with flash I/O or CPU work still in flight is UB (completion events
  // capture `this`); quiesce the sim first — see testbed::Testbed::restart_ap.
  ~ApRuntime();

  // --- model/introspection ----------------------------------------------
  [[nodiscard]] net::NodeId node() const noexcept { return node_; }
  [[nodiscard]] sim::ServiceQueue& cpu() noexcept { return cpu_; }
  [[nodiscard]] std::size_t cpu_cores() const noexcept { return options_.cpu_cores; }
  [[nodiscard]] std::size_t memory_bytes() const;
  [[nodiscard]] cache::CacheStatistics& lookup_stats() noexcept { return stats_; }
  [[nodiscard]] const cache::CacheStore& data_cache() const noexcept { return *data_cache_; }
  [[nodiscard]] cache::CacheStore& data_cache() noexcept { return *data_cache_; }
  [[nodiscard]] FrequencyTracker& frequencies() noexcept { return freq_; }
  [[nodiscard]] const cache::BlockList& block_list() const noexcept { return block_list_; }
  [[nodiscard]] const ApeConfig& config() const noexcept { return options_.config; }
  [[nodiscard]] std::size_t delegations_performed() const noexcept { return delegations_; }
  [[nodiscard]] std::size_t revalidations_performed() const noexcept { return revalidations_; }

  // Tiered-store introspection; null in RAM-only configurations.
  [[nodiscard]] bool tiered() const noexcept { return tiered_ != nullptr; }
  [[nodiscard]] store::TieredStore* tiered_store() noexcept { return tiered_.get(); }
  [[nodiscard]] const store::FlashTier* flash_tier() const noexcept { return flash_tier_.get(); }

  // --- traffic replay / pass-through accounting (Figs. 2 and 14) ---------
  void forward_packet(std::size_t bytes, bool new_flow);
  // CPU cost of serving `bytes` from the AP's own cache over WiFi: the
  // userspace copy + TX path is costlier per byte than kernel NAT
  // forwarding.  Charged asynchronously (DMA overlap) so it loads the CPU
  // without delaying the in-flight response.
  void account_served_bytes(std::size_t bytes);
  void set_active_flows(std::size_t flows) noexcept { flows_ = flows; }
  [[nodiscard]] std::size_t active_flows() const noexcept { return flows_; }

  // Fully resets cache state between experiment runs.
  void reset_cache();

  // Pull-phase observability: writes the gauges that only make sense as a
  // point-in-time reading (cache occupancy, hit ratios, per-app storage
  // efficiency C_a = cached bytes / R(a)) into the attached observer.
  // No-op without one.
  void snapshot_metrics();

 private:
  // ---- DNS side ----------------------------------------------------------
  class Dns final : public dns::DnsServer {
    APE_SHARD_CONTEXT(ap);

   public:
    Dns(ApRuntime& owner, net::Network& network, net::NodeId node, sim::ServiceQueue& cpu,
        sim::Duration service_time)
        : dns::DnsServer(network, node, cpu, service_time), owner_(owner) {}

   protected:
    void handle_query(const dns::DnsMessage& query, net::Endpoint client,
                      Responder respond) override;

   private:
    APE_SHARD_LOCAL(ap) ApRuntime& owner_;
  };

  struct DnsCacheEntry {
    net::IpAddress ip;
    sim::Time expires{};
  };

  struct UrlInfo {
    dns::DnsName domain;
    std::string base_url;  // learned at first delegation
    AppId app = 0;
    int priority = 1;
    // Last measured delegated-fetch latency — PACM's l_d estimate for the
    // next solve.  Compared against the next measurement to report the
    // pacm.latency_estimate_error metric (span-gated, report-only).
    double last_fetch_ms = -1.0;
  };

  // Nullable span sink (null when no observer is attached).
  [[nodiscard]] obs::SpanLog* spans() const;

  void handle_dns_query(const dns::DnsMessage& query, net::Endpoint client,
                        std::function<void(dns::DnsMessage)> respond);
  void handle_regular_dns(const dns::DnsMessage& query, const obs::TraceContext& parent,
                          std::function<void(dns::DnsMessage)> respond);
  void answer_with_ip(const dns::DnsMessage& query, const dns::DnsName& name,
                      net::IpAddress ip, std::uint32_t ttl,
                      std::vector<dns::ResourceRecord> additionals,
                      std::function<void(dns::DnsMessage)> respond) const;

  // Resolves `name` through the local record cache or upstream.  A valid
  // `parent` context parents a "dns.upstream" span over the real upstream
  // round trip (record-cache hits stay span-free).
  void resolve_upstream(const dns::DnsName& name, const obs::TraceContext& parent,
                        std::function<void(Result<DnsCacheEntry>)> done);

  // Builds the batched cache-status list for a domain.  `requested` are the
  // hashes the client explicitly asked about (these get recorded into the
  // lookup statistics); returns all known flags and whether every known URL
  // under the domain is a cache hit.
  struct FlagSet {
    std::vector<CacheLookupEntry> entries;
    bool all_cached = false;   // every known URL is a Cache-Hit
    bool needs_edge = false;   // some URL is block-listed (Cache-Miss)
  };
  FlagSet collect_flags(const dns::DnsName& domain,
                        const std::vector<CacheLookupEntry>& requested);

  // ---- HTTP side ----------------------------------------------------------
  void handle_http(const http::HttpRequest& request, http::HttpServer::Responder respond);
  // Tail of handle_http once both RAM and flash have missed: 404 for plain
  // fetches, delegation otherwise.
  void finish_http_miss(const http::HttpRequest& request, UrlHash hash,
                        std::optional<cache::CacheEntry> stale,
                        const obs::TraceContext& parent,
                        http::HttpServer::Responder respond);
  void serve_from_cache(const cache::CacheEntry& entry,
                        http::HttpServer::Responder respond);
  // Admits a freshly fetched object (through the tiered store when present,
  // so a stale flash copy is invalidated).
  void insert_object(cache::CacheEntry entry, sim::Time now);
  // Self-rescheduling periodic expiry sweep (config.sweep_interval > 0).
  void schedule_sweep();
  // `stale` carries the expired-but-present entry when revalidation may
  // refresh it with a conditional request instead of a full origin pull.
  void delegate_fetch(const http::HttpRequest& request, UrlHash hash,
                      std::optional<cache::CacheEntry> stale,
                      const obs::TraceContext& parent,
                      http::HttpServer::Responder respond);

  APE_SHARD_SHARED net::Network& network_;
  APE_SHARD_SHARED net::TcpTransport& tcp_;
  APE_SHARD_LOCAL(ap) net::NodeId node_;
  APE_SHARD_LOCAL(ap) Options options_;

  APE_SHARD_LOCAL(ap) sim::ServiceQueue cpu_;
  APE_SHARD_LOCAL(ap) FrequencyTracker freq_;
  APE_SHARD_LOCAL(ap) std::unique_ptr<cache::CacheStore> data_cache_;
  APE_SHARD_LOCAL(ap) cache::BlockList block_list_;
  APE_SHARD_LOCAL(ap) cache::CacheStatistics stats_;

  // Flash tier (null in RAM-only configurations).  `owned_media_` backs
  // Options::flash_media when the caller did not supply durable media.
  APE_SHARD_LOCAL(ap) std::unique_ptr<store::FlashMedia> owned_media_;
  APE_SHARD_LOCAL(ap) std::unique_ptr<store::FlashDevice> flash_device_;
  APE_SHARD_LOCAL(ap) std::unique_ptr<store::FlashTier> flash_tier_;
  APE_SHARD_LOCAL(ap) std::unique_ptr<store::TieredStore> tiered_;
  APE_SHARD_LOCAL(ap) sim::Simulator::EventId sweep_event_ = 0;

  APE_SHARD_LOCAL(ap) std::unique_ptr<Dns> dns_;
  APE_SHARD_LOCAL(ap) dns::DnsClient upstream_;
  APE_SHARD_LOCAL(ap) std::unique_ptr<http::HttpServer> http_;
  APE_SHARD_LOCAL(ap) http::HttpClient edge_client_;

  APE_SHARD_LOCAL(ap) std::unordered_map<dns::DnsName, DnsCacheEntry, dns::DnsNameHash>
      dns_cache_;
  APE_SHARD_LOCAL(ap) std::unordered_map<UrlHash, UrlInfo> url_index_;
  APE_SHARD_LOCAL(ap) std::unordered_map<dns::DnsName, std::unordered_set<UrlHash>,
                                         dns::DnsNameHash>
      domain_hashes_;

  APE_SHARD_LOCAL(ap) std::size_t flows_ = 0;
  APE_SHARD_LOCAL(ap) std::size_t delegations_ = 0;
  APE_SHARD_LOCAL(ap) std::size_t revalidations_ = 0;

  // Hot-path instruments: handles bound once at construction (no-ops when
  // unobserved), so the per-request DNS/HTTP paths never repeat a by-name
  // map lookup.  Snapshot-time gauges still go through observer_ by name.
  // The observer and the instruments it hands out are scrape-side shared
  // state; the parallel-shard design owes them a synchronization story.
  APE_SHARD_SHARED obs::Observer* observer_ = nullptr;
  APE_SHARD_SHARED obs::Counter* hit_counter_ = nullptr;
  APE_SHARD_SHARED obs::Counter* miss_counter_ = nullptr;
  APE_SHARD_SHARED obs::Counter* delegation_flag_counter_ = nullptr;
  struct HotMetrics {
    obs::CounterHandle dns_cache_queries;
    obs::CounterHandle dns_cache_rr_emitted;
    obs::CounterHandle dns_flags_emitted;
    obs::CounterHandle dns_short_circuit;
    obs::CounterHandle dns_upstream_avoided;
    obs::CounterHandle dns_regular_queries;
    obs::CounterHandle dns_record_cache_hit;
    obs::CounterHandle dns_upstream_queries;
    obs::CounterHandle http_cache_serves;
    obs::CounterHandle http_bytes_from_cache;
    obs::CounterHandle http_flash_serves;
    obs::CounterHandle http_race_fallback;
    obs::CounterHandle delegations;
    obs::CounterHandle revalidations;
    obs::CounterHandle block_listed;
    obs::CounterHandle cache_inserts;
    obs::CounterHandle delegation_bytes_fetched;
    obs::HistogramHandle latency_estimate_error_ms;
  } hot_;
};

}  // namespace ape::core

// 0/1 knapsack solver used by PACM's eviction decision.
//
// Exact dynamic program over the byte dimension at 1 kB granularity with
// item backtracking.  When items x capacity exceeds the DP budget the
// solver degrades to a utility-density greedy (documented in DESIGN.md);
// callers can tell which path ran via KnapsackResult::exact.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace ape::core {

struct KnapsackItem {
  double value = 0.0;        // utility U_d (>= 0)
  std::size_t weight = 0;    // bytes
};

struct KnapsackResult {
  std::vector<bool> selected;   // parallel to the input span
  double total_value = 0.0;
  std::size_t total_weight = 0; // bytes actually packed
  bool exact = true;
};

[[nodiscard]] KnapsackResult solve_knapsack(std::span<const KnapsackItem> items,
                                            std::size_t capacity_bytes,
                                            std::size_t dp_budget = 40'000'000);

}  // namespace ape::core

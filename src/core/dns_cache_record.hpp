// The DNS-Cache resource record (paper Fig. 8).
//
//   <NAME>      hostname the lookup batches on
//   <TYPE>      300 (RrType::DnsCache)
//   <CLASS>     REQUEST | RESPONSE
//   <RDLENGTH>  byte size of RDATA
//   <RDATA>     list of <HASH(URL) : 8 bytes big-endian, FLAG : 1 byte>
//
// A REQUEST carries the hashes the client wants status for (flags unused,
// sent as 0); the RESPONSE carries the status of *every* URL the AP knows
// under the queried domain (the batching accommodation of Sec. IV-B3).
#pragma once

#include <vector>

#include "common/result.hpp"
#include "core/url_hash.hpp"
#include "dns/message.hpp"

namespace ape::core {

// Cache status flags (paper Sec. IV-B1).
enum class CacheFlag : std::uint8_t {
  Delegation = 0,  // unknown/expired: AP is willing to fetch-and-cache
  CacheHit = 1,    // stored on the AP, fetch it there
  CacheMiss = 2,   // block-listed: go straight to the edge
};

[[nodiscard]] const char* to_string(CacheFlag flag) noexcept;

struct CacheLookupEntry {
  UrlHash hash = 0;
  CacheFlag flag = CacheFlag::Delegation;

  friend bool operator==(const CacheLookupEntry&, const CacheLookupEntry&) = default;
};

// --- RR <-> typed view ---------------------------------------------------

[[nodiscard]] dns::ResourceRecord make_cache_request_rr(
    const dns::DnsName& domain, const std::vector<CacheLookupEntry>& entries);
[[nodiscard]] dns::ResourceRecord make_cache_response_rr(
    const dns::DnsName& domain, const std::vector<CacheLookupEntry>& entries);

struct DnsCacheView {
  bool is_request = false;
  dns::DnsName domain;
  std::vector<CacheLookupEntry> entries;
};

// Finds + parses the DNS-Cache RR in a message's Additional section.
// Returns an error when absent or malformed.
[[nodiscard]] Result<DnsCacheView> extract_dns_cache(const dns::DnsMessage& message);

// RDATA-level codec, exposed for fuzz/property tests.
[[nodiscard]] std::vector<std::uint8_t> encode_cache_rdata(
    const std::vector<CacheLookupEntry>& entries);
[[nodiscard]] Result<std::vector<CacheLookupEntry>> decode_cache_rdata(
    const std::vector<std::uint8_t>& rdata);

}  // namespace ape::core

#include "core/dns_cache_record.hpp"

#include "dns/codec.hpp"

namespace ape::core {

const char* to_string(CacheFlag flag) noexcept {
  switch (flag) {
    case CacheFlag::Delegation: return "Delegation";
    case CacheFlag::CacheHit: return "Cache-Hit";
    case CacheFlag::CacheMiss: return "Cache-Miss";
  }
  return "?";
}

std::vector<std::uint8_t> encode_cache_rdata(const std::vector<CacheLookupEntry>& entries) {
  dns::ByteWriter w;
  for (const auto& e : entries) {
    w.u64(e.hash);
    w.u8(static_cast<std::uint8_t>(e.flag));
  }
  return std::move(w).take();
}

Result<std::vector<CacheLookupEntry>> decode_cache_rdata(
    const std::vector<std::uint8_t>& rdata) {
  constexpr std::size_t kTupleBytes = 9;
  if (rdata.size() % kTupleBytes != 0) {
    return make_error<std::vector<CacheLookupEntry>>("DNS-Cache RDATA not a tuple multiple");
  }
  dns::ByteReader r(rdata);
  std::vector<CacheLookupEntry> out;
  out.reserve(rdata.size() / kTupleBytes);
  while (r.remaining() > 0) {
    CacheLookupEntry e;
    auto hash = r.u64();
    auto flag = r.u8();
    if (!hash || !flag) {
      return make_error<std::vector<CacheLookupEntry>>("truncated DNS-Cache tuple");
    }
    if (flag.value() > static_cast<std::uint8_t>(CacheFlag::CacheMiss)) {
      return make_error<std::vector<CacheLookupEntry>>("unknown DNS-Cache flag");
    }
    e.hash = hash.value();
    e.flag = static_cast<CacheFlag>(flag.value());
    out.push_back(e);
  }
  return out;
}

namespace {
dns::ResourceRecord make_cache_rr(const dns::DnsName& domain, dns::RrClass rr_class,
                                  const std::vector<CacheLookupEntry>& entries) {
  dns::ResourceRecord rr;
  rr.name = domain;
  rr.type = dns::RrType::DnsCache;
  rr.rr_class = static_cast<std::uint16_t>(rr_class);
  rr.ttl = 0;  // cache status is point-in-time; never DNS-cache it
  rr.rdata = encode_cache_rdata(entries);
  return rr;
}
}  // namespace

dns::ResourceRecord make_cache_request_rr(const dns::DnsName& domain,
                                          const std::vector<CacheLookupEntry>& entries) {
  return make_cache_rr(domain, dns::RrClass::CacheRequest, entries);
}

dns::ResourceRecord make_cache_response_rr(const dns::DnsName& domain,
                                           const std::vector<CacheLookupEntry>& entries) {
  return make_cache_rr(domain, dns::RrClass::CacheResponse, entries);
}

Result<DnsCacheView> extract_dns_cache(const dns::DnsMessage& message) {
  const dns::ResourceRecord* rr = message.find_additional(dns::RrType::DnsCache);
  if (rr == nullptr) return make_error<DnsCacheView>("no DNS-Cache RR present");

  DnsCacheView view;
  view.domain = rr->name;
  if (rr->rr_class == static_cast<std::uint16_t>(dns::RrClass::CacheRequest)) {
    view.is_request = true;
  } else if (rr->rr_class == static_cast<std::uint16_t>(dns::RrClass::CacheResponse)) {
    view.is_request = false;
  } else {
    return make_error<DnsCacheView>("DNS-Cache RR with unknown CLASS");
  }

  auto entries = decode_cache_rdata(rr->rdata);
  if (!entries) return make_error<DnsCacheView>(entries.error().message);
  view.entries = std::move(entries.value());
  return view;
}

}  // namespace ape::core

#include "core/frequency_tracker.hpp"

#include <cassert>

namespace ape::core {

FrequencyTracker::FrequencyTracker(double alpha, sim::Duration window)
    : alpha_(alpha), window_(window) {
  assert(window_.count() > 0);
}

void FrequencyTracker::roll(AppState& state, sim::Time now) const {
  while (now - state.window_start >= window_) {
    state.smoothed = (1.0 - alpha_) * state.smoothed +
                     alpha_ * static_cast<double>(state.current_count);
    state.current_count = 0;
    state.window_start = state.window_start + window_;
    state.has_history = true;
  }
}

void FrequencyTracker::record_request(AppId app, sim::Time now) {
  auto [it, inserted] = apps_.try_emplace(app);
  if (inserted) it->second.window_start = now;
  roll(it->second, now);
  ++it->second.current_count;
}

double FrequencyTracker::frequency(AppId app, sim::Time now) const {
  auto it = apps_.find(app);
  if (it == apps_.end()) return 0.0;
  roll(it->second, now);
  if (!it->second.has_history) {
    // First window still open: best estimate is the live count.
    return static_cast<double>(it->second.current_count);
  }
  return it->second.smoothed;
}

}  // namespace ape::core

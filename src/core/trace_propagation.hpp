// Trace-context propagation over DNS (DESIGN.md §5f).
//
// The HTTP leg of a traced request carries its context in the X-Ape-Trace
// header (http/message.hpp); the DNS leg uses a companion resource record:
//
//   <NAME>      hostname the query is about (matches the question)
//   <TYPE>      301 (RrType::TraceCtx)
//   <CLASS>     IN
//   <RDLENGTH>  16
//   <RDATA>     <TRACE ID : 8 bytes big-endian><SPAN ID : 8 bytes big-endian>
//
// The record rides the Additional section of the client's query so the AP
// can parent its lookup spans under the client's dns.query span.  Like the
// DNS-Cache RR it is an APE extension a stock resolver ignores — and it is
// only ever attached when span tracing is enabled, because the extra RR is
// real wire bytes that would otherwise shift simulated timings.
#pragma once

#include "dns/message.hpp"
#include "obs/span.hpp"

namespace ape::core {

[[nodiscard]] dns::ResourceRecord make_trace_context_rr(const dns::DnsName& name,
                                                        const obs::TraceContext& ctx);

// Pulls the trace context out of a message's Additional section; an
// invalid (null) context when absent or malformed.
[[nodiscard]] obs::TraceContext extract_trace_context(const dns::DnsMessage& message);

}  // namespace ape::core

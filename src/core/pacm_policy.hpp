// PACM as a cache::EvictionPolicy, pluggable into cache::CacheStore —
// swapping this for cache::LruPolicy turns APE-CACHE into the paper's
// APE-CACHE-LRU ablation.
#pragma once

#include <functional>

#include "cache/object_store.hpp"
#include "common/shard.hpp"
#include "core/frequency_tracker.hpp"
#include "core/pacm.hpp"
#include "sim/simulator.hpp"

namespace ape::core {

class PacmPolicy final : public cache::EvictionPolicy {
  APE_SHARD_CONTEXT(ap);

 public:
  // `clock` supplies virtual "now" (remaining TTLs feed e_d); `frequencies`
  // is the AP's live per-app tracker; `observer` (nullable) receives solver
  // metrics and per-solve trace events.
  PacmPolicy(const ApeConfig& config, const sim::Simulator& clock,
             const FrequencyTracker& frequencies, obs::Observer* observer = nullptr);

  void on_insert(const cache::CacheEntry& /*entry*/) override {}
  void on_access(const cache::CacheEntry& /*entry*/) override {}
  void on_erase(const std::string& /*key*/) override {}

  [[nodiscard]] std::optional<std::vector<std::string>> select_victims(
      const cache::CacheStore& store, const cache::CacheEntry& incoming,
      std::size_t bytes_needed) override;

  [[nodiscard]] std::string name() const override { return "PACM"; }

  // Tier awareness: when the AP has a flash tier, evicting an object only
  // demotes it — a later hit costs a flash read, not an edge round trip.
  // The callback returns that flash read cost in milliseconds; PACM then
  // clamps the latency-saved term l_d to min(l_edge, l_flash), deflating
  // the utility of objects that are cheap to bring back.  Unset (the
  // default) keeps the single-tier formula.
  void set_demotion_latency(std::function<double(const cache::CacheEntry&)> fn) {
    demotion_latency_ms_ = std::move(fn);
  }

  [[nodiscard]] const PacmDecision& last_decision() const noexcept { return last_; }
  [[nodiscard]] std::size_t invocations() const noexcept { return invocations_; }

 private:
  APE_SHARD_LOCAL(ap) ApeConfig config_;
  APE_SHARD_SHARED const sim::Simulator& clock_;
  APE_SHARD_LOCAL(ap) const FrequencyTracker& frequencies_;
  APE_SHARD_SHARED obs::Observer* observer_ = nullptr;
  APE_SHARD_LOCAL(ap) std::function<double(const cache::CacheEntry&)> demotion_latency_ms_;
  APE_SHARD_LOCAL(ap) PacmSolver solver_;
  APE_SHARD_LOCAL(ap) PacmDecision last_;
  APE_SHARD_LOCAL(ap) std::size_t invocations_ = 0;
};

}  // namespace ape::core

// PACM — Priority-Aware Cache Management (paper Sec. IV-C).
//
// Given the currently cached objects, an incoming object of size S, the
// cache capacity C, per-app request frequencies R(a) and the fairness bound
// theta, select the subset O of cached objects to *keep*:
//
//     max  sum_d O_d * U_d            U_d = R(A_d) * e_d * l_d * p_d
//     s.t. sum_d O_d * s_d <= C - S
//          F(A) <= theta              (Gini over C_a = sum s_d / R(a))
//
// The Gini constraint is not separable, so after the exact knapsack DP a
// fairness-repair loop runs: while F exceeds theta, the worst-efficiency
// app (largest C_a) loses its lowest-utility-density kept object and the
// knapsack re-solves without it.  This converges because each round
// strictly shrinks the candidate set.
#pragma once

#include <string>
#include <vector>

#include "common/shard.hpp"
#include "core/config.hpp"
#include "core/frequency_tracker.hpp"
#include "core/knapsack.hpp"

namespace ape::obs {
class Observer;
class WallClockTimer;
}  // namespace ape::obs

namespace ape::core {

struct PacmObject {
  std::string key;
  AppId app = 0;
  std::size_t size_bytes = 0;
  int priority = 1;
  // Solver-facing plain units: utility() multiplies seconds * ms * priority,
  // where only relative magnitudes matter — not a simulated timestamp.
  double remaining_ttl_s = 0.0;   // e_d  // ape-lint: allow(raw-seconds)
  double fetch_latency_ms = 0.0;  // l_d
};

struct PacmDecision {
  std::vector<std::string> evict;  // keys to remove
  double kept_utility = 0.0;
  double fairness = 0.0;           // F(A) of the kept set
  bool fairness_satisfied = true;
  bool exact = true;               // knapsack ran the exact DP
  int repair_rounds = 0;
};

class PacmSolver {
  APE_SHARD_CONTEXT(ap);

 public:
  explicit PacmSolver(const ApeConfig& config) : config_(config) {}

  // Optional instrumentation: when set, every solve records counters
  // ("pacm.solves", "pacm.exact" / "pacm.greedy") and histograms
  // ("pacm.repair_rounds", "pacm.kept_utility", "pacm.fairness_gini",
  // "pacm.candidates").  A wall-clock "pacm.solve_us" (volatile) is
  // recorded only when the observer has opted in via enable_wallclock().
  void set_observer(obs::Observer* observer) noexcept { observer_ = observer; }

  // `frequency(app)` must be positive for apps with cached objects; zero
  // frequencies are clamped to a small epsilon (an idle app's storage
  // efficiency would otherwise be infinite).
  [[nodiscard]] PacmDecision select_evictions(
      const std::vector<PacmObject>& cached, std::size_t incoming_size_bytes,
      const std::vector<std::pair<AppId, double>>& frequencies) const;

  // The utility function, exposed for tests and benches.
  [[nodiscard]] static double utility(const PacmObject& object, double app_frequency);

  // F(A): Gini coefficient over per-app storage efficiency for the subset
  // of `objects` flagged in `kept`.
  [[nodiscard]] static double fairness(
      const std::vector<PacmObject>& objects, const std::vector<bool>& kept,
      const std::vector<std::pair<AppId, double>>& frequencies);

 private:
  void record_solve(const PacmDecision& decision, std::size_t candidates,
                    const obs::WallClockTimer& timer) const;

  APE_SHARD_LOCAL(ap) const ApeConfig& config_;
  APE_SHARD_SHARED obs::Observer* observer_ = nullptr;
};

}  // namespace ape::core

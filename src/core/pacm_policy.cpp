#include "core/pacm_policy.hpp"

#include <algorithm>
#include <set>

#include "obs/observer.hpp"

namespace ape::core {

PacmPolicy::PacmPolicy(const ApeConfig& config, const sim::Simulator& clock,
                       const FrequencyTracker& frequencies, obs::Observer* observer)
    : config_(config),
      clock_(clock),
      frequencies_(frequencies),
      observer_(observer),
      solver_(config_) {
  solver_.set_observer(observer_);
}

std::optional<std::vector<std::string>> PacmPolicy::select_victims(
    const cache::CacheStore& store, const cache::CacheEntry& incoming,
    std::size_t /*bytes_needed*/) {
  ++invocations_;
  const sim::Time now = clock_.now();

  // Causal tracing: the solve runs synchronously inside an insert, so the
  // inserting hop's span is on the ambient stack.  Zero sim-time duration —
  // the span marks *where* on the critical path the solve happened.
  obs::TraceContext solve_span;
  if (observer_ != nullptr) {
    obs::SpanLog& log = observer_->spans();
    solve_span = log.open(log.current_context(), "pacm.solve", "pacm", incoming.key, now);
  }

  std::vector<PacmObject> cached;
  // Ordered: the frequency vector below is handed to the solver, and its
  // order must not depend on hash-set iteration.
  std::set<AppId> apps;
  cached.reserve(store.entry_count());
  store.for_each([&](const cache::CacheEntry& entry) {
    PacmObject obj;
    obj.key = entry.key;
    obj.app = entry.app_id;
    obj.size_bytes = entry.size_bytes;
    obj.priority = entry.priority;
    obj.remaining_ttl_s = sim::to_seconds(entry.remaining_ttl(now));
    obj.fetch_latency_ms = sim::to_millis(entry.fetch_latency);
    if (demotion_latency_ms_) {
      // Tiered AP: eviction demotes to flash, so the latency a resident
      // copy saves is only the cheaper of edge refetch and flash read.
      obj.fetch_latency_ms =
          std::min(obj.fetch_latency_ms, std::max(0.01, demotion_latency_ms_(entry)));
    }
    cached.push_back(std::move(obj));
    apps.insert(entry.app_id);
  });
  apps.insert(incoming.app_id);

  std::vector<std::pair<AppId, double>> frequencies;
  frequencies.reserve(apps.size());
  for (AppId app : apps) frequencies.emplace_back(app, frequencies_.frequency(app, now));

  // The solver caps the kept set at (C - S), so evicting its complement
  // always frees at least `bytes_needed`.
  last_ = solver_.select_evictions(cached, incoming.size_bytes, frequencies);
  if (observer_ != nullptr) {
    observer_->spans().close(solve_span, now);
    observer_->event(now, "pacm", "solve", incoming.key,
                     (last_.exact ? "exact" : "greedy") + std::string(" rounds=") +
                         std::to_string(last_.repair_rounds) +
                         " evict=" + std::to_string(last_.evict.size()));
  }
  return last_.evict;
}

}  // namespace ape::core

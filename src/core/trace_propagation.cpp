#include "core/trace_propagation.hpp"

#include "dns/codec.hpp"

namespace ape::core {

dns::ResourceRecord make_trace_context_rr(const dns::DnsName& name,
                                          const obs::TraceContext& ctx) {
  dns::ByteWriter w;
  w.u64(ctx.trace);
  w.u64(ctx.span);

  dns::ResourceRecord rr;
  rr.name = name;
  rr.type = dns::RrType::TraceCtx;
  rr.rr_class = static_cast<std::uint16_t>(dns::RrClass::In);
  rr.ttl = 0;  // a trace context is bound to one request; never cache it
  rr.rdata = std::move(w).take();
  return rr;
}

obs::TraceContext extract_trace_context(const dns::DnsMessage& message) {
  const dns::ResourceRecord* rr = message.find_additional(dns::RrType::TraceCtx);
  if (rr == nullptr) return {};

  dns::ByteReader r(rr->rdata);
  auto trace = r.u64();
  auto span = r.u64();
  if (!trace || !span) return {};
  return obs::TraceContext{trace.value(), span.value()};
}

}  // namespace ape::core

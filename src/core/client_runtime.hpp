// APE-CACHE client runtime — the modified HTTP client library (paper
// Sec. IV-A/IV-B) that mobile apps link.
//
// Workflow per cacheable fetch:
//   1. match the outgoing URL's base against the registered cacheable
//      objects (the "annotations");
//   2. cache lookup piggybacked on DNS: send a DNS-Cache query to the AP
//      unless a previous response's flags for this domain are still fresh
//      (a dummy-IP answer carries TTL 0 and is never reused);
//   3. dispatch on the flag: Cache-Hit -> HTTP fetch from the AP,
//      Cache-Miss -> HTTP fetch from the resolved edge server,
//      Delegation -> HTTP fetch through the AP with delegation headers;
//   4. on AP races (entry evicted between lookup and fetch) fall back to
//      the edge path.
//
// fetch_via_edge() is the unmodified-library baseline path (regular DNS +
// edge HTTP); fetch_standalone() reproduces the Fig. 11b "two standalone
// queries" configuration.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <unordered_map>

#include "common/shard.hpp"
#include "core/config.hpp"
#include "core/dns_cache_record.hpp"
#include "core/frequency_tracker.hpp"
#include "core/url_hash.hpp"
#include "dns/stub_resolver.hpp"
#include "http/endpoint.hpp"
#include "obs/observer.hpp"

namespace ape::core {

// One @Cacheable annotation (paper Fig. 6): id = base URL, priority in
// {1, 2}, TTL in minutes.
struct CacheableSpec {
  std::string id;
  int priority = 1;
  std::uint32_t ttl_minutes = 10;
  AppId app = 0;

  [[nodiscard]] std::uint32_t ttl_seconds() const noexcept { return ttl_minutes * 60; }
};

class ClientRuntime {
  APE_SHARD_CONTEXT(client);

 public:
  struct Options {
    net::Endpoint ap_dns;     // AP's DNS service
    net::IpAddress ap_ip;     // AP's address for HTTP fetches
    bool ape_enabled = true;  // false: every fetch takes the edge path
    // Client-side cost of building a DNS-Cache query (hashing the URL,
    // assembling the Additional RR in the managed runtime) — part of the
    // measured lookup latency, and the reason the paper's lookup (~7.5 ms)
    // slightly exceeds one WiFi RTT.
    sim::Duration dns_cache_build_cost{sim::microseconds(2800)};
    // Nullable observability sink ("client.*" fetch counters/latency
    // histograms, keyed by source).
    obs::Observer* observer = nullptr;
  };

  // `dns_port` must be unique per (node, runtime) pair.
  ClientRuntime(net::Network& network, net::TcpTransport& tcp, net::NodeId node,
                net::Port dns_port, Options options);

  // --- programming model surface -----------------------------------------
  void register_cacheable(CacheableSpec spec);
  [[nodiscard]] const CacheableSpec* find_cacheable(const std::string& base_url) const;
  [[nodiscard]] std::size_t cacheable_count() const noexcept { return registry_.size(); }

  // --- fetching -------------------------------------------------------------
  enum class Source { ApCache, ApDelegated, EdgeServer, Unknown };

  struct FetchResult {
    bool success = false;
    Source source = Source::Unknown;
    CacheFlag flag = CacheFlag::Delegation;
    bool lookup_from_cache = false;   // flags reused within the DNS TTL
    sim::Duration lookup_latency{0};
    sim::Duration retrieval_latency{0};
    sim::Duration total{0};
    std::size_t bytes = 0;
    std::string error;
  };
  using FetchHandler = std::function<void(FetchResult)>;

  void fetch(const std::string& url, FetchHandler handler);
  void fetch_via_edge(const std::string& url, FetchHandler handler);
  void fetch_standalone(const std::string& url, FetchHandler handler);

  // Prefetching synergy (paper Sec. VI: APPx/PALOMA/Marauder can warm the
  // AP instead of the device): issues background fetches for every
  // registered cacheable object under `domain` (or all domains when
  // empty), so later foreground fetches hit the AP.  `done` fires once
  // with the number of objects warmed.
  using PrefetchHandler = std::function<void(std::size_t warmed)>;
  void prefetch(const std::string& domain, PrefetchHandler done);

  // --- lookup-only probes (Fig. 11b) ---------------------------------------
  using LookupHandler = std::function<void(Result<dns::DnsMessage>, sim::Duration)>;
  void dns_cache_lookup(const std::string& host, const std::vector<UrlHash>& hashes,
                        LookupHandler handler);
  void regular_dns_lookup(const std::string& host, LookupHandler handler);

  [[nodiscard]] net::NodeId node() const noexcept { return node_; }

 private:
  struct DomainState {
    net::IpAddress ip;
    sim::Time expires{};
    std::unordered_map<UrlHash, CacheFlag> flags;
  };

  void dispatch(const std::string& url, const CacheableSpec& spec, CacheFlag flag,
                net::IpAddress edge_ip, sim::Time start, sim::Duration lookup,
                bool lookup_cached, const obs::TraceContext& root, FetchHandler handler);
  void fetch_from_ap(const std::string& url, const CacheableSpec& spec, bool delegate,
                     net::IpAddress edge_ip, sim::Time start, sim::Duration lookup,
                     bool lookup_cached, CacheFlag flag, const obs::TraceContext& root,
                     FetchHandler handler);
  void fetch_from_edge(const std::string& url, net::IpAddress edge_ip, sim::Time start,
                       sim::Duration lookup, bool lookup_cached, CacheFlag flag,
                       const obs::TraceContext& root, FetchHandler handler);
  // Regular DNS + edge HTTP under an existing trace root (shared by
  // fetch_via_edge and fetch()'s DNS-Cache-failure fallback, so the
  // fallback stays inside the request's original trace).
  void resolve_and_fetch_edge(const std::string& url, sim::Time start,
                              const obs::TraceContext& root, FetchHandler handler);
  void finish(FetchHandler& handler, const obs::TraceContext& root, FetchResult result);

  // Nullable span sink (null when no observer is attached).
  [[nodiscard]] obs::SpanLog* spans() const;

  [[nodiscard]] dns::DnsMessage build_dns_cache_query(const dns::DnsName& domain,
                                                      const std::vector<UrlHash>& hashes,
                                                      const obs::TraceContext& ctx = {}) const;

  APE_SHARD_SHARED net::Network& network_;
  APE_SHARD_SHARED net::TcpTransport& tcp_;
  APE_SHARD_LOCAL(client) net::NodeId node_;
  APE_SHARD_LOCAL(client) Options options_;
  APE_SHARD_LOCAL(client) dns::DnsClient dns_;
  APE_SHARD_LOCAL(client) http::HttpClient http_;
  // Ordered: prefetch() walks the registry, and the walk order decides the
  // sequence of simulated requests (ape-lint: unordered-iter).
  APE_SHARD_LOCAL(client) std::map<std::string, CacheableSpec> registry_;  // by base URL
  // by host (keyed lookups only)
  APE_SHARD_LOCAL(client) std::unordered_map<std::string, DomainState> domains_;

  // Per-fetch instruments, bound once at construction (no-ops without an
  // observer) so finish() — which runs for every simulated request — does
  // not rebuild metric names and walk the registry map each time.
  struct HotMetrics {
    obs::CounterHandle fetches;
    obs::CounterHandle fetch_failures;
    obs::CounterHandle fetch_ap_hit;
    obs::CounterHandle fetch_ap_delegated;
    obs::CounterHandle fetch_edge;
    obs::CounterHandle fetch_unknown;
    obs::CounterHandle lookup_flag_reuse;
    obs::CounterHandle bytes_received;
    obs::HistogramHandle lookup_ms;
    obs::HistogramHandle retrieval_ms;
    obs::HistogramHandle total_ms;
  } hot_;
};

[[nodiscard]] const char* to_string(ClientRuntime::Source source) noexcept;

}  // namespace ape::core

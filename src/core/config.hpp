// APE-CACHE tunables, defaulted to the paper's reference implementation
// values (Secs. IV-B, IV-C, V-A).
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace ape::core {

struct ApeConfig {
  // --- AP data cache -----------------------------------------------------
  std::size_t cache_capacity_bytes = 5 * 1000 * 1000;  // 5 MB (Sec. V-B)
  std::size_t block_threshold_bytes = 500 * 1000;      // 500 kB (Sec. IV-B1)

  // --- PACM ---------------------------------------------------------------
  double alpha = 0.7;           // EWMA weight on the newest window (Sec. IV-C)
  double fairness_theta = 0.4;  // Gini bound on storage efficiency
  sim::Duration frequency_window = sim::seconds(60.0);  // R(a) update period
  // DP budget: above items*capacity_kb > budget, fall back to greedy.
  std::size_t knapsack_dp_budget = 40'000'000;

  // --- PACM ablations (see DESIGN.md; exercised by bench_ablation_pacm) ---
  bool pacm_use_priority = true;   // false: p_d forced to 1 in U_d
  bool pacm_use_fairness = true;   // false: drop the F(A) <= theta constraint
  bool pacm_force_greedy = false;  // true: always use the density greedy

  // --- extensions beyond the paper (default off) ---------------------------
  // Conditional-GET revalidation: a delegation for an object whose cached
  // copy merely *expired* sends If-None-Match; a 304 refreshes the entry
  // without moving the body across the WAN.
  bool enable_revalidation = false;

  // Flash tier (src/store): 0 disables it, keeping the AP a pure RAM cache
  // and every existing run byte-identical.  When enabled, RAM evictions
  // demote to a journaled flash log and misses probe flash before the edge.
  std::size_t flash_capacity_bytes = 0;
  std::size_t flash_segment_bytes = 1 * 1000 * 1000;
  double flash_compact_dead_ratio = 0.5;
  sim::Duration flash_read_latency = sim::microseconds(150);
  sim::Duration flash_write_latency = sim::microseconds(400);
  double flash_read_bandwidth = 80e6;   // bytes/s
  double flash_write_bandwidth = 25e6;  // bytes/s

  // Periodic RAM expiry sweep: 0 disables (expired entries then die lazily
  // on access or insert pressure, the pre-tiering behaviour).
  sim::Duration sweep_interval{0};

  // --- DNS-Cache ----------------------------------------------------------
  // Extra AP CPU time for the piggybacked cache lookup relative to a plain
  // DNS query (measured at ~0.02 ms in the paper, Fig. 11b).
  sim::Duration cache_lookup_extra = sim::microseconds(20);
  sim::Duration dns_service_time = sim::microseconds(400);   // per DNS query
  std::uint32_t dns_answer_ttl_cap = 30;                     // seconds

  // --- AP HTTP path ---------------------------------------------------------
  sim::Duration http_service_base = sim::microseconds(500);
  sim::Duration http_service_per_kb = sim::microseconds(12);

  // --- AP memory model (Fig. 2 / Fig. 14) ----------------------------------
  // Baseline footprint of the stock firmware + dnsmasq.
  std::size_t base_memory_bytes = 104 * 1024 * 1024;
  // APE-CACHE runtime overhead excluding the object cache itself.
  std::size_t runtime_memory_bytes = 6 * 1024 * 1024;
  std::size_t per_index_entry_bytes = 160;   // url_index bookkeeping
  std::size_t per_connection_bytes = 16 * 1024;
  std::size_t per_flow_bytes = 512;          // NAT/conntrack style state
};

}  // namespace ape::core

#include "core/client_runtime.hpp"

#include <memory>
#include <utility>

#include "core/trace_propagation.hpp"

namespace ape::core {

const char* to_string(ClientRuntime::Source source) noexcept {
  switch (source) {
    case ClientRuntime::Source::ApCache: return "ap-cache";
    case ClientRuntime::Source::ApDelegated: return "ap-delegated";
    case ClientRuntime::Source::EdgeServer: return "edge";
    case ClientRuntime::Source::Unknown: return "unknown";
  }
  return "?";
}

ClientRuntime::ClientRuntime(net::Network& network, net::TcpTransport& tcp, net::NodeId node,
                             net::Port dns_port, Options options)
    : network_(network),
      tcp_(tcp),
      node_(node),
      options_(options),
      dns_(network, node, dns_port),
      http_(tcp, node) {
  if (options_.observer != nullptr) {
    // Lazy handles on purpose: each instrument materialises in the export
    // at its first event, exactly like the by-name lookups these replace.
    obs::MetricsRegistry& m = options_.observer->metrics();
    hot_.fetches = {m, "client.fetches"};
    hot_.fetch_failures = {m, "client.fetch.failures"};
    hot_.fetch_ap_hit = {m, "client.fetch.ap_hit"};
    hot_.fetch_ap_delegated = {m, "client.fetch.ap_delegated"};
    hot_.fetch_edge = {m, "client.fetch.edge"};
    hot_.fetch_unknown = {m, "client.fetch.unknown"};
    hot_.lookup_flag_reuse = {m, "client.lookup.flag_reuse"};
    hot_.bytes_received = {m, "client.bytes_received"};
    hot_.lookup_ms = {m, "client.lookup_ms", "ms"};
    hot_.retrieval_ms = {m, "client.retrieval_ms", "ms"};
    hot_.total_ms = {m, "client.total_ms", "ms"};
  }
}

void ClientRuntime::register_cacheable(CacheableSpec spec) {
  auto key = spec.id;
  registry_.insert_or_assign(std::move(key), std::move(spec));
}

const CacheableSpec* ClientRuntime::find_cacheable(const std::string& base_url) const {
  auto it = registry_.find(base_url);
  return it == registry_.end() ? nullptr : &it->second;
}

obs::SpanLog* ClientRuntime::spans() const {
  return options_.observer == nullptr ? nullptr : &options_.observer->spans();
}

dns::DnsMessage ClientRuntime::build_dns_cache_query(const dns::DnsName& domain,
                                                     const std::vector<UrlHash>& hashes,
                                                     const obs::TraceContext& ctx) const {
  dns::DnsMessage query;
  query.header.rd = true;
  query.questions.push_back(dns::Question{domain, dns::RrType::A, dns::RrClass::In});
  std::vector<CacheLookupEntry> entries;
  entries.reserve(hashes.size());
  for (UrlHash h : hashes) entries.push_back(CacheLookupEntry{h, CacheFlag::Delegation});
  query.additionals.push_back(make_cache_request_rr(domain, entries));
  if (ctx.valid()) query.additionals.push_back(make_trace_context_rr(domain, ctx));
  return query;
}

void ClientRuntime::finish(FetchHandler& handler, const obs::TraceContext& root,
                           FetchResult result) {
  if (obs::SpanLog* log = spans(); log != nullptr) {
    log->close(root, network_.simulator().now());
  }
  hot_.fetches.add();
  if (!result.success) {
    hot_.fetch_failures.add();
  } else {
    switch (result.source) {
      case Source::ApCache: hot_.fetch_ap_hit.add(); break;
      case Source::ApDelegated: hot_.fetch_ap_delegated.add(); break;
      case Source::EdgeServer: hot_.fetch_edge.add(); break;
      case Source::Unknown: hot_.fetch_unknown.add(); break;
    }
    if (result.lookup_from_cache) hot_.lookup_flag_reuse.add();
    hot_.bytes_received.add(result.bytes);
    hot_.lookup_ms.record(sim::to_millis(result.lookup_latency));
    hot_.retrieval_ms.record(sim::to_millis(result.retrieval_latency));
    hot_.total_ms.record(sim::to_millis(result.total));
  }
  handler(std::move(result));
}

// ------------------------------------------------------------------ fetch

void ClientRuntime::fetch(const std::string& url, FetchHandler handler) {
  const auto parsed = http::Url::parse(url);
  if (!parsed) {
    FetchResult r;
    r.error = "bad URL: " + parsed.error().message;
    finish(handler, {}, std::move(r));
    return;
  }
  const CacheableSpec* spec = find_cacheable(parsed.value().base());
  if (!options_.ape_enabled || spec == nullptr) {
    fetch_via_edge(url, std::move(handler));
    return;
  }

  const std::string host = parsed.value().host;
  const UrlHash hash = hash_url(parsed.value().base());
  const sim::Time start = network_.simulator().now();
  obs::TraceContext root;
  if (obs::SpanLog* log = spans(); log != nullptr) {
    root = log->open_root("client.request", "client", "app:" + std::to_string(spec->app),
                          start);
  }

  // Fresh flags from a previous DNS-Cache response for this domain?
  if (auto it = domains_.find(host); it != domains_.end()) {
    if (it->second.expires > start) {
      const auto flag_it = it->second.flags.find(hash);
      // A URL the AP has not reported on yet defaults to Delegation (the
      // AP is always willing to fetch-and-cache an unseen object).
      const CacheFlag flag =
          flag_it == it->second.flags.end() ? CacheFlag::Delegation : flag_it->second;
      dispatch(url, *spec, flag, it->second.ip, start, sim::Duration{0}, true, root,
               std::move(handler));
      return;
    }
    domains_.erase(it);
  }

  auto domain = dns::DnsName::parse(host);
  if (!domain) {
    FetchResult r;
    r.error = "bad hostname";
    finish(handler, root, std::move(r));
    return;
  }

  network_.simulator().schedule_in(options_.dns_cache_build_cost, [this, url, spec, hash,
                                                                   host, start, root,
                                                                   domain = domain.value(),
                                                                   handler = std::move(
                                                                       handler)]() mutable {
  obs::TraceContext dns_span;
  if (obs::SpanLog* log = spans(); log != nullptr) {
    dns_span = log->open(root, "dns.query", "client", host, network_.simulator().now());
  }
  dns_.query(options_.ap_dns, build_dns_cache_query(domain, {hash}, dns_span),
             [this, url, spec, hash, host, start, root, dns_span,
              handler = std::move(handler)](Result<dns::DnsMessage> response) mutable {
               if (obs::SpanLog* log = spans(); log != nullptr) {
                 log->close(dns_span, network_.simulator().now());
               }
               const sim::Duration lookup = network_.simulator().now() - start;
               if (!response) {
                 // DNS-Cache lookup failed outright; degrade to the edge
                 // path (same trace root — the failed lookup stays part of
                 // this request's critical path).
                 resolve_and_fetch_edge(url, network_.simulator().now(), root,
                                        std::move(handler));
                 return;
               }

               net::IpAddress ip = net::kDummyIp;
               std::uint32_t ttl = 0;
               if (auto addr = dns::StubResolver::extract_address(
                       response.value(), dns::DnsName::parse(host).value());
                   addr) {
                 ip = addr.value().address;
                 ttl = addr.value().ttl;
               }

               CacheFlag flag = CacheFlag::Delegation;
               DomainState state;
               state.ip = ip;
               if (auto view = extract_dns_cache(response.value());
                   view && !view.value().is_request) {
                 for (const auto& e : view.value().entries) {
                   state.flags[e.hash] = e.flag;
                   if (e.hash == hash) flag = e.flag;
                 }
               }
               if (ttl > 0 && ip != net::kDummyIp) {
                 state.expires = network_.simulator().now() + sim::seconds(ttl);
                 domains_[host] = std::move(state);
               }
               dispatch(url, *spec, flag, ip, start, lookup, false, root,
                        std::move(handler));
             });
  });
}

void ClientRuntime::dispatch(const std::string& url, const CacheableSpec& spec, CacheFlag flag,
                             net::IpAddress edge_ip, sim::Time start, sim::Duration lookup,
                             bool lookup_cached, const obs::TraceContext& root,
                             FetchHandler handler) {
  switch (flag) {
    case CacheFlag::CacheHit:
      fetch_from_ap(url, spec, /*delegate=*/false, edge_ip, start, lookup, lookup_cached, flag,
                    root, std::move(handler));
      return;
    case CacheFlag::Delegation:
      fetch_from_ap(url, spec, /*delegate=*/true, edge_ip, start, lookup, lookup_cached, flag,
                    root, std::move(handler));
      return;
    case CacheFlag::CacheMiss:
      fetch_from_edge(url, edge_ip, start, lookup, lookup_cached, flag, root,
                      std::move(handler));
      return;
  }
}

void ClientRuntime::fetch_from_ap(const std::string& url, const CacheableSpec& spec,
                                  bool delegate, net::IpAddress edge_ip, sim::Time start,
                                  sim::Duration lookup, bool lookup_cached, CacheFlag flag,
                                  const obs::TraceContext& root, FetchHandler handler) {
  auto parsed = http::Url::parse(url);
  http::HttpRequest req;
  req.url = std::move(parsed.value());
  req.headers.emplace_back("X-Ape-App", std::to_string(spec.app));
  if (delegate) {
    req.headers.emplace_back("X-Ape-Delegate", "1");
    req.headers.emplace_back("X-Ape-Ttl", std::to_string(spec.ttl_seconds()));
    req.headers.emplace_back("X-Ape-Priority", std::to_string(spec.priority));
  }

  const sim::Time fetch_start = network_.simulator().now();
  obs::SpanLog* log = spans();
  obs::TraceContext fetch_span;
  if (log != nullptr) {
    fetch_span = log->open(root, "http.fetch", "client", url, fetch_start);
    if (fetch_span.valid()) {
      http::set_trace_context_header(req.headers, obs::encode_trace_context(fetch_span));
    }
  }
  obs::ScopedTraceContext ambient(log, fetch_span);
  http_.fetch(
      net::Endpoint{options_.ap_ip, net::kHttpPort}, std::move(req),
      [this, url, edge_ip, start, lookup, lookup_cached, flag, delegate, fetch_start, root,
       fetch_span, handler = std::move(handler)](Result<http::HttpResponse> result,
                                                 http::FetchTiming) mutable {
        const sim::Time now = network_.simulator().now();
        if (obs::SpanLog* slog = spans(); slog != nullptr) slog->close(fetch_span, now);
        if (!result || !result.value().ok()) {
          // Lookup/fetch race (evicted or expired in between), or the AP's
          // delegated fetch failed: fall back to the edge.
          fetch_from_edge(url, edge_ip, start, lookup, lookup_cached, flag, root,
                          std::move(handler));
          return;
        }
        FetchResult r;
        r.success = true;
        // The AP reports how it actually served the request: a delegation
        // that raced an earlier caching of the same object comes back as a
        // hit (X-Cache: AP-HIT), which matters for hit-ratio accounting.
        const std::string* served = http::find_header(result.value().headers, "X-Cache");
        const bool was_hit = served != nullptr && *served == "AP-HIT";
        r.source = was_hit ? Source::ApCache : Source::ApDelegated;
        r.flag = was_hit ? CacheFlag::CacheHit : flag;
        (void)delegate;
        r.lookup_from_cache = lookup_cached;
        r.lookup_latency = lookup;
        r.retrieval_latency = now - fetch_start;
        r.total = now - start;
        r.bytes = result.value().total_body_bytes();
        finish(handler, root, std::move(r));
      });
}

void ClientRuntime::fetch_from_edge(const std::string& url, net::IpAddress edge_ip,
                                    sim::Time start, sim::Duration lookup, bool lookup_cached,
                                    CacheFlag flag, const obs::TraceContext& root,
                                    FetchHandler handler) {
  if (edge_ip == net::kDummyIp || edge_ip.is_unspecified()) {
    // We never learned a real edge address (dummy-IP short circuit):
    // resolve regularly, then fetch.
    auto parsed = http::Url::parse(url);
    if (!parsed) {
      FetchResult r;
      r.error = "bad URL";
      finish(handler, root, std::move(r));
      return;
    }
    auto domain = dns::DnsName::parse(parsed.value().host);
    dns::DnsMessage query;
    query.header.rd = true;
    query.questions.push_back(dns::Question{domain.value(), dns::RrType::A, dns::RrClass::In});
    obs::TraceContext dns_span;
    if (obs::SpanLog* log = spans(); log != nullptr) {
      dns_span = log->open(root, "dns.query", "client", parsed.value().host,
                           network_.simulator().now());
      if (dns_span.valid()) {
        query.additionals.push_back(make_trace_context_rr(domain.value(), dns_span));
      }
    }
    dns_.query(options_.ap_dns, std::move(query),
               [this, url, domain = domain.value(), start, lookup, lookup_cached, flag, root,
                dns_span, handler = std::move(handler)](Result<dns::DnsMessage> response) mutable {
                 if (obs::SpanLog* log = spans(); log != nullptr) {
                   log->close(dns_span, network_.simulator().now());
                 }
                 if (!response) {
                   FetchResult r;
                   r.error = "edge re-resolution failed: " + response.error().message;
                   finish(handler, root, std::move(r));
                   return;
                 }
                 auto addr = dns::StubResolver::extract_address(response.value(), domain);
                 if (!addr) {
                   FetchResult r;
                   r.error = "edge re-resolution: " + addr.error().message;
                   finish(handler, root, std::move(r));
                   return;
                 }
                 fetch_from_edge(url, addr.value().address, start,
                                 network_.simulator().now() - start, lookup_cached, flag,
                                 root, std::move(handler));
               });
    return;
  }

  auto parsed = http::Url::parse(url);
  http::HttpRequest req;
  req.url = std::move(parsed.value());
  const sim::Time fetch_start = network_.simulator().now();
  obs::SpanLog* log = spans();
  obs::TraceContext fetch_span;
  if (log != nullptr) {
    fetch_span = log->open(root, "http.fetch", "client", url, fetch_start);
    if (fetch_span.valid()) {
      http::set_trace_context_header(req.headers, obs::encode_trace_context(fetch_span));
    }
  }
  obs::ScopedTraceContext ambient(log, fetch_span);
  http_.fetch(net::Endpoint{edge_ip, net::kHttpPort}, std::move(req),
              [this, start, lookup, lookup_cached, flag, fetch_start, root, fetch_span,
               handler = std::move(handler)](Result<http::HttpResponse> result,
                                             http::FetchTiming) mutable {
                const sim::Time now = network_.simulator().now();
                if (obs::SpanLog* slog = spans(); slog != nullptr) {
                  slog->close(fetch_span, now);
                }
                FetchResult r;
                r.flag = flag;
                r.lookup_from_cache = lookup_cached;
                r.lookup_latency = lookup;
                r.retrieval_latency = now - fetch_start;
                r.total = now - start;
                if (!result) {
                  r.error = result.error().message;
                } else if (!result.value().ok()) {
                  r.error = "edge HTTP " + std::to_string(result.value().status);
                } else {
                  r.success = true;
                  r.source = Source::EdgeServer;
                  r.bytes = result.value().total_body_bytes();
                }
                finish(handler, root, std::move(r));
              });
}

void ClientRuntime::fetch_via_edge(const std::string& url, FetchHandler handler) {
  const sim::Time start = network_.simulator().now();
  obs::TraceContext root;
  if (obs::SpanLog* log = spans(); log != nullptr) {
    root = log->open_root("client.request", "client", url, start);
  }
  resolve_and_fetch_edge(url, start, root, std::move(handler));
}

void ClientRuntime::resolve_and_fetch_edge(const std::string& url, sim::Time start,
                                           const obs::TraceContext& root,
                                           FetchHandler handler) {
  const auto parsed = http::Url::parse(url);
  if (!parsed) {
    FetchResult r;
    r.error = "bad URL: " + parsed.error().message;
    finish(handler, root, std::move(r));
    return;
  }
  auto domain = dns::DnsName::parse(parsed.value().host);
  if (!domain) {
    FetchResult r;
    r.error = "bad hostname";
    finish(handler, root, std::move(r));
    return;
  }

  dns::DnsMessage query;
  query.header.rd = true;
  query.questions.push_back(dns::Question{domain.value(), dns::RrType::A, dns::RrClass::In});
  obs::TraceContext dns_span;
  if (obs::SpanLog* log = spans(); log != nullptr) {
    dns_span = log->open(root, "dns.query", "client", parsed.value().host,
                         network_.simulator().now());
    if (dns_span.valid()) {
      query.additionals.push_back(make_trace_context_rr(domain.value(), dns_span));
    }
  }
  dns_.query(options_.ap_dns, std::move(query),
             [this, url, domain = domain.value(), start, root, dns_span,
              handler = std::move(handler)](Result<dns::DnsMessage> response) mutable {
               if (obs::SpanLog* log = spans(); log != nullptr) {
                 log->close(dns_span, network_.simulator().now());
               }
               const sim::Duration lookup = network_.simulator().now() - start;
               if (!response) {
                 FetchResult r;
                 r.lookup_latency = lookup;
                 r.error = "DNS failed: " + response.error().message;
                 finish(handler, root, std::move(r));
                 return;
               }
               auto addr = dns::StubResolver::extract_address(response.value(), domain);
               if (!addr) {
                 FetchResult r;
                 r.lookup_latency = lookup;
                 r.error = "DNS: " + addr.error().message;
                 finish(handler, root, std::move(r));
                 return;
               }
               fetch_from_edge(url, addr.value().address, start, lookup, false,
                               CacheFlag::CacheMiss, root, std::move(handler));
             });
}

void ClientRuntime::fetch_standalone(const std::string& url, FetchHandler handler) {
  // Fig. 11b's "two standalone queries": a regular DNS query first, then a
  // separate DNS-Cache query, then the normal dispatch.
  const auto parsed = http::Url::parse(url);
  if (!parsed) {
    FetchResult r;
    r.error = "bad URL: " + parsed.error().message;
    finish(handler, {}, std::move(r));
    return;
  }
  const CacheableSpec* spec = find_cacheable(parsed.value().base());
  if (spec == nullptr) {
    fetch_via_edge(url, std::move(handler));
    return;
  }
  const std::string host = parsed.value().host;
  const UrlHash hash = hash_url(parsed.value().base());
  const sim::Time start = network_.simulator().now();
  auto domain = dns::DnsName::parse(host).value();
  obs::TraceContext root;
  if (obs::SpanLog* log = spans(); log != nullptr) {
    root = log->open_root("client.request", "client", "app:" + std::to_string(spec->app),
                          start);
  }

  dns::DnsMessage plain;
  plain.header.rd = true;
  plain.questions.push_back(dns::Question{domain, dns::RrType::A, dns::RrClass::In});
  obs::TraceContext first_span;
  if (obs::SpanLog* log = spans(); log != nullptr) {
    first_span = log->open(root, "dns.query", "client", host, start);
    if (first_span.valid()) {
      plain.additionals.push_back(make_trace_context_rr(domain, first_span));
    }
  }
  dns_.query(
      options_.ap_dns, std::move(plain),
      [this, url, spec, hash, host, domain, start, root, first_span,
       handler = std::move(handler)](Result<dns::DnsMessage> first) mutable {
        if (obs::SpanLog* log = spans(); log != nullptr) {
          log->close(first_span, network_.simulator().now());
        }
        net::IpAddress ip = net::kDummyIp;
        if (first) {
          if (auto addr = dns::StubResolver::extract_address(first.value(), domain)) {
            ip = addr.value().address;
          }
        }
        // Second, standalone cache query.
        obs::TraceContext second_span;
        if (obs::SpanLog* log = spans(); log != nullptr) {
          second_span =
              log->open(root, "dns.query", "client", host, network_.simulator().now());
        }
        dns_.query(options_.ap_dns, build_dns_cache_query(domain, {hash}, second_span),
                   [this, url, spec, hash, ip, start, root, second_span,
                    handler = std::move(handler)](Result<dns::DnsMessage> second) mutable {
                     if (obs::SpanLog* log = spans(); log != nullptr) {
                       log->close(second_span, network_.simulator().now());
                     }
                     const sim::Duration lookup = network_.simulator().now() - start;
                     CacheFlag flag = CacheFlag::Delegation;
                     if (second) {
                       if (auto view = extract_dns_cache(second.value());
                           view && !view.value().is_request) {
                         for (const auto& e : view.value().entries) {
                           if (e.hash == hash) flag = e.flag;
                         }
                       }
                     }
                     dispatch(url, *spec, flag, ip, start, lookup, false, root,
                              std::move(handler));
                   });
      });
}

void ClientRuntime::prefetch(const std::string& domain, PrefetchHandler done) {
  std::vector<std::string> urls;
  for (const auto& [base, spec] : registry_) {
    const auto parsed = http::Url::parse(base);
    if (!parsed) continue;
    if (domain.empty() || parsed.value().host == domain) urls.push_back(base);
  }
  if (urls.empty()) {
    done(0);
    return;
  }

  struct Progress {
    std::size_t remaining;
    std::size_t warmed = 0;
    PrefetchHandler done;
  };
  auto progress = std::make_shared<Progress>();
  progress->remaining = urls.size();
  progress->done = std::move(done);

  for (const auto& url : urls) {
    fetch(url, [progress](FetchResult result) {
      if (result.success && (result.source == Source::ApDelegated ||
                             result.source == Source::ApCache)) {
        ++progress->warmed;
      }
      if (--progress->remaining == 0) progress->done(progress->warmed);
    });
  }
}

// ---------------------------------------------------------- lookup probes

void ClientRuntime::dns_cache_lookup(const std::string& host,
                                     const std::vector<UrlHash>& hashes,
                                     LookupHandler handler) {
  auto domain = dns::DnsName::parse(host);
  const sim::Time start = network_.simulator().now();
  dns_.query(options_.ap_dns, build_dns_cache_query(domain.value(), hashes),
             [this, start, handler = std::move(handler)](Result<dns::DnsMessage> r) mutable {
               handler(std::move(r), network_.simulator().now() - start);
             });
}

void ClientRuntime::regular_dns_lookup(const std::string& host, LookupHandler handler) {
  auto domain = dns::DnsName::parse(host);
  dns::DnsMessage query;
  query.header.rd = true;
  query.questions.push_back(
      dns::Question{domain.value(), dns::RrType::A, dns::RrClass::In});
  const sim::Time start = network_.simulator().now();
  dns_.query(options_.ap_dns, std::move(query),
             [this, start, handler = std::move(handler)](Result<dns::DnsMessage> r) mutable {
               handler(std::move(r), network_.simulator().now() - start);
             });
}

}  // namespace ape::core

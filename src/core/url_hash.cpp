#include "core/url_hash.hpp"

#include <array>

namespace ape::core {

std::string hash_to_string(UrlHash h) {
  static constexpr std::array<char, 16> kHex = {'0', '1', '2', '3', '4', '5', '6', '7',
                                                '8', '9', 'a', 'b', 'c', 'd', 'e', 'f'};
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[h & 0xF];
    h >>= 4;
  }
  return out;
}

}  // namespace ape::core

#include "core/pacm.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <map>

#include "obs/observer.hpp"
#include "obs/wallclock.hpp"
#include "stats/gini.hpp"

namespace ape::core {

namespace {
constexpr double kFrequencyFloor = 1e-3;

double frequency_of(AppId app, const std::vector<std::pair<AppId, double>>& frequencies) {
  for (const auto& [a, f] : frequencies) {
    if (a == app) return std::max(f, kFrequencyFloor);
  }
  return kFrequencyFloor;
}
}  // namespace

double PacmSolver::utility(const PacmObject& object, double app_frequency) {
  // U_d = R(A_d) * e_d * l_d * p_d.  Units: requests/window * seconds * ms
  // * priority — only relative magnitudes matter to the argmax.
  return std::max(app_frequency, kFrequencyFloor) * object.remaining_ttl_s *
         object.fetch_latency_ms * static_cast<double>(object.priority);
}

double PacmSolver::fairness(const std::vector<PacmObject>& objects,
                            const std::vector<bool>& kept,
                            const std::vector<std::pair<AppId, double>>& frequencies) {
  assert(objects.size() == kept.size());
  // Ordered by AppId so the efficiency vector (and hence the Gini fold) is
  // byte-identical across runs.
  std::map<AppId, double> bytes_by_app;
  for (std::size_t i = 0; i < objects.size(); ++i) {
    if (kept[i]) bytes_by_app[objects[i].app] += static_cast<double>(objects[i].size_bytes);
  }
  if (bytes_by_app.size() < 2) return 0.0;  // one app cannot be unfair to itself

  std::vector<double> efficiency;
  efficiency.reserve(bytes_by_app.size());
  for (const auto& [app, bytes] : bytes_by_app) {
    efficiency.push_back(bytes / frequency_of(app, frequencies));
  }
  return stats::gini(efficiency);
}

void PacmSolver::record_solve(const PacmDecision& decision, std::size_t candidates,
                              const obs::WallClockTimer& timer) const {
  obs::MetricsRegistry& m = observer_->metrics();
  m.counter("pacm.solves").add();
  m.counter(decision.exact ? "pacm.exact" : "pacm.greedy").add();
  m.counter("pacm.evictions").add(decision.evict.size());
  if (!decision.fairness_satisfied) m.counter("pacm.fairness_unsatisfied").add();
  m.histogram("pacm.repair_rounds", "rounds")
      .record(static_cast<double>(decision.repair_rounds));
  m.histogram("pacm.candidates", "objects").record(static_cast<double>(candidates));
  m.histogram("pacm.kept_utility").record(decision.kept_utility);
  m.histogram("pacm.fairness_gini").record(decision.fairness);
  // Wall clock: host-dependent, hence volatile (excluded from stable
  // snapshots) and only measured when the observer opted in.
  if (timer.enabled()) {
    m.histogram("pacm.solve_us", "us", obs::Volatility::Volatile).record(timer.elapsed_us());
  }
}

PacmDecision PacmSolver::select_evictions(
    const std::vector<PacmObject>& cached, std::size_t incoming_size_bytes,
    const std::vector<std::pair<AppId, double>>& frequencies) const {
  const obs::WallClockTimer timer(observer_ != nullptr && observer_->wallclock_enabled());
  PacmDecision decision;
  if (cached.empty()) {
    if (observer_ != nullptr) record_solve(decision, 0, timer);
    return decision;
  }

  const std::size_t capacity =
      config_.cache_capacity_bytes > incoming_size_bytes
          ? config_.cache_capacity_bytes - incoming_size_bytes
          : 0;

  // `alive[i]` = object i is still a knapsack candidate (fairness repair
  // permanently demotes candidates).
  std::vector<bool> alive(cached.size(), true);
  std::vector<double> utilities(cached.size());
  for (std::size_t i = 0; i < cached.size(); ++i) {
    PacmObject object = cached[i];
    if (!config_.pacm_use_priority) object.priority = 1;  // ablation
    utilities[i] = utility(object, frequency_of(object.app, frequencies));
  }
  const std::size_t dp_budget = config_.pacm_force_greedy ? 1 : config_.knapsack_dp_budget;

  std::vector<bool> kept(cached.size(), false);

  for (int round = 0;; ++round) {
    // Knapsack over the live candidates.
    std::vector<KnapsackItem> items;
    std::vector<std::size_t> index;  // items -> cached
    items.reserve(cached.size());
    for (std::size_t i = 0; i < cached.size(); ++i) {
      if (!alive[i]) continue;
      items.push_back(KnapsackItem{utilities[i], cached[i].size_bytes});
      index.push_back(i);
    }

    const KnapsackResult packed = solve_knapsack(items, capacity, dp_budget);
    decision.exact = decision.exact && packed.exact;

    std::fill(kept.begin(), kept.end(), false);
    for (std::size_t j = 0; j < items.size(); ++j) {
      if (packed.selected[j]) kept[index[j]] = true;
    }
    decision.kept_utility = packed.total_value;
    decision.fairness = fairness(cached, kept, frequencies);
    decision.repair_rounds = round;

    if (!config_.pacm_use_fairness || decision.fairness <= config_.fairness_theta) {
      decision.fairness_satisfied = decision.fairness <= config_.fairness_theta;
      break;
    }

    // Fairness repair: the app hoarding the most per-request storage loses
    // its lowest-utility-density kept object.  Ordered map: the worst-app
    // argmax tie-breaks on the smallest AppId, deterministically.
    std::map<AppId, double> bytes_by_app;
    for (std::size_t i = 0; i < cached.size(); ++i) {
      if (kept[i]) bytes_by_app[cached[i].app] += static_cast<double>(cached[i].size_bytes);
    }
    AppId worst_app = 0;
    double worst_eff = -1.0;
    for (const auto& [app, bytes] : bytes_by_app) {
      const double eff = bytes / frequency_of(app, frequencies);
      if (eff > worst_eff) {
        worst_eff = eff;
        worst_app = app;
      }
    }

    std::size_t demote = cached.size();
    double worst_density = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < cached.size(); ++i) {
      if (!kept[i] || cached[i].app != worst_app) continue;
      const double density =
          cached[i].size_bytes == 0
              ? utilities[i]
              : utilities[i] / static_cast<double>(cached[i].size_bytes);
      if (density < worst_density) {
        worst_density = density;
        demote = i;
      }
    }
    if (demote == cached.size()) {
      // Nothing left to demote; accept the unfair-but-optimal packing.
      decision.fairness_satisfied = false;
      break;
    }
    alive[demote] = false;
  }

  for (std::size_t i = 0; i < cached.size(); ++i) {
    if (!kept[i]) decision.evict.push_back(cached[i].key);
  }
  if (observer_ != nullptr) record_solve(decision, cached.size(), timer);
  return decision;
}

}  // namespace ape::core

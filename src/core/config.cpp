#include "core/config.hpp"

// Currently header-only; this TU anchors the library and keeps a stable
// home for future validation helpers.

// Per-app request-frequency estimation for PACM (paper Sec. IV-C):
//
//   R(a) = (1 - alpha) * R'(a) + alpha * r_a(dt)
//
// where r_a(dt) is the number of requests for app `a` the AP received in
// the last window.  Windows are rolled lazily: recording or reading an
// app's frequency first folds in every fully elapsed window (idle windows
// contribute counts of zero, decaying R toward 0 for abandoned apps).
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/shard.hpp"
#include "sim/time.hpp"

namespace ape::core {

using AppId = std::uint32_t;

class FrequencyTracker {
  APE_SHARD_CONTEXT(ap);

 public:
  FrequencyTracker(double alpha, sim::Duration window);

  void record_request(AppId app, sim::Time now);

  // Smoothed requests-per-window; freshly seen apps use their live count so
  // new apps are not starved before their first full window closes.
  [[nodiscard]] double frequency(AppId app, sim::Time now) const;

  [[nodiscard]] std::size_t tracked_apps() const noexcept { return apps_.size(); }
  [[nodiscard]] sim::Duration window() const noexcept { return window_; }

 private:
  struct AppState {
    double smoothed = 0.0;
    std::uint64_t current_count = 0;
    sim::Time window_start{};
    bool has_history = false;
  };

  void roll(AppState& state, sim::Time now) const;

  APE_SHARD_LOCAL(ap) double alpha_;
  APE_SHARD_LOCAL(ap) sim::Duration window_;
  APE_SHARD_LOCAL(ap) mutable std::unordered_map<AppId, AppState> apps_;
};

}  // namespace ape::core

#include "core/ap_runtime.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <utility>
#include <vector>

#include "cache/fifo_policy.hpp"
#include "cache/gdsf_policy.hpp"
#include "cache/lfu_policy.hpp"
#include "cache/lru_policy.hpp"
#include "core/pacm_policy.hpp"
#include "core/trace_propagation.hpp"
#include "core/url_hash.hpp"
#include "http/origin_server.hpp"

namespace ape::core {

namespace {
constexpr net::Port kApUpstreamPort = 41053;  // AP's socket toward the LDNS

std::unique_ptr<cache::EvictionPolicy> make_policy(ApRuntime::Policy policy,
                                                   const ApeConfig& config,
                                                   const sim::Simulator& clock,
                                                   const FrequencyTracker& freq,
                                                   obs::Observer* observer) {
  switch (policy) {
    case ApRuntime::Policy::Pacm:
      return std::make_unique<PacmPolicy>(config, clock, freq, observer);
    case ApRuntime::Policy::Lru: return std::make_unique<cache::LruPolicy>();
    case ApRuntime::Policy::Fifo: return std::make_unique<cache::FifoPolicy>();
    case ApRuntime::Policy::Lfu: return std::make_unique<cache::LfuPolicy>();
    case ApRuntime::Policy::Gdsf: return std::make_unique<cache::GdsfPolicy>();
  }
  return std::make_unique<cache::LruPolicy>();
}
}  // namespace

ApRuntime::ApRuntime(net::Network& network, net::TcpTransport& tcp, net::NodeId node,
                     Options options)
    : network_(network),
      tcp_(tcp),
      node_(node),
      options_(std::move(options)),
      cpu_(network.simulator(), options_.cpu_cores),
      freq_(options_.config.alpha, options_.config.frequency_window),
      data_cache_(std::make_unique<cache::CacheStore>(
          options_.config.cache_capacity_bytes,
          make_policy(options_.policy, options_.config, network.simulator(), freq_,
                      options_.observer))),
      block_list_(options_.config.block_threshold_bytes),
      upstream_(network, node, kApUpstreamPort),
      edge_client_(tcp, node),
      observer_(options_.observer) {
  if (observer_ != nullptr) {
    hit_counter_ = &observer_->metrics().counter("ap.cache.hit");
    miss_counter_ = &observer_->metrics().counter("ap.cache.miss");
    delegation_flag_counter_ = &observer_->metrics().counter("ap.cache.delegation");
    // Per-request instruments: bind lazily resolving handles once, so the
    // DNS/HTTP hot paths never repeat a by-name map lookup.  Lazy (not
    // resolve()d here) on purpose — an instrument only materialises in the
    // export after its first event, exactly like the by-name calls these
    // replace.
    obs::MetricsRegistry& m = observer_->metrics();
    hot_.dns_cache_queries = {m, "ap.dns.cache_queries"};
    hot_.dns_cache_rr_emitted = {m, "ap.dns.cache_rr_emitted"};
    hot_.dns_flags_emitted = {m, "ap.dns.flags_emitted"};
    hot_.dns_short_circuit = {m, "dns.short_circuit"};
    hot_.dns_upstream_avoided = {m, "dns.upstream_avoided"};
    hot_.dns_regular_queries = {m, "ap.dns.regular_queries"};
    hot_.dns_record_cache_hit = {m, "ap.dns.record_cache_hit"};
    hot_.dns_upstream_queries = {m, "ap.dns.upstream_queries"};
    hot_.http_cache_serves = {m, "ap.http.cache_serves"};
    hot_.http_bytes_from_cache = {m, "ap.http.bytes_from_cache"};
    hot_.http_flash_serves = {m, "ap.http.flash_serves"};
    hot_.http_race_fallback = {m, "ap.http.race_fallback"};
    hot_.delegations = {m, "ap.delegations"};
    hot_.revalidations = {m, "ap.revalidations"};
    hot_.block_listed = {m, "ap.block_listed"};
    hot_.cache_inserts = {m, "ap.cache.inserts"};
    hot_.delegation_bytes_fetched = {m, "ap.delegation.bytes_fetched"};
    hot_.latency_estimate_error_ms = {m, "pacm.latency_estimate_error_ms", "ms"};
  }
  data_cache_->set_retain_expired(options_.config.enable_revalidation);

  if (options_.enable_ape && options_.config.flash_capacity_bytes > 0) {
    if (options_.flash_media == nullptr) {
      owned_media_ = std::make_unique<store::FlashMedia>();
      options_.flash_media = owned_media_.get();
    }
    store::FlashDeviceParams dev;
    dev.read_latency = options_.config.flash_read_latency;
    dev.write_latency = options_.config.flash_write_latency;
    dev.read_bandwidth = options_.config.flash_read_bandwidth;
    dev.write_bandwidth = options_.config.flash_write_bandwidth;
    flash_device_ = std::make_unique<store::FlashDevice>(network_.simulator(), dev);

    store::FlashTierParams tier;
    tier.capacity_bytes = options_.config.flash_capacity_bytes;
    tier.segment_bytes = options_.config.flash_segment_bytes;
    tier.compact_dead_ratio = options_.config.flash_compact_dead_ratio;
    flash_tier_ = std::make_unique<store::FlashTier>(*flash_device_, *options_.flash_media,
                                                     tier, observer_);
    tiered_ = std::make_unique<store::TieredStore>(network_.simulator(), *data_cache_,
                                                   *flash_tier_);
    tiered_->set_observer(observer_);
    // Mount: formatted media means this AP is restarting — replay the
    // journal so the flash tier comes back warm.
    if (options_.flash_media->formatted()) {
      flash_tier_->recover(network_.simulator().now());
    }
    // Tier-aware PACM: eviction demotes, so l_d clamps to the flash read.
    if (auto* pacm = dynamic_cast<PacmPolicy*>(&data_cache_->policy())) {
      pacm->set_demotion_latency(
          [this](const cache::CacheEntry& e) { return tiered_->flash_read_ms(e); });
    }
  }
  if (options_.config.sweep_interval.count() > 0) schedule_sweep();

  dns_ = std::make_unique<Dns>(*this, network_, node_, cpu_, options_.config.dns_service_time);

  http::ServiceCost cost;
  cost.base = options_.config.http_service_base;
  cost.per_kilobyte = options_.config.http_service_per_kb;
  http_ = std::make_unique<http::HttpServer>(tcp_, node_, net::kHttpPort, cpu_, cost);
  http_->set_fallback([this](const http::HttpRequest& req, net::Endpoint,
                             http::HttpServer::Responder respond) {
    handle_http(req, std::move(respond));
  });
}

ApRuntime::~ApRuntime() {
  if (sweep_event_ != 0) network_.simulator().cancel(sweep_event_);
}

void ApRuntime::schedule_sweep() {
  sweep_event_ =
      network_.simulator().schedule_in(options_.config.sweep_interval, [this] {
        const sim::Time now = network_.simulator().now();
        // Revalidation retains expired entries on purpose; sweep flash only.
        std::size_t ram_reclaimed = 0;
        if (!data_cache_->retain_expired()) ram_reclaimed = data_cache_->sweep_expired(now);
        std::size_t flash_reclaimed = 0;
        if (tiered_ != nullptr) flash_reclaimed = tiered_->sweep_flash_expired(now);
        stats_.record_sweep(ram_reclaimed);
        if (observer_ != nullptr && ram_reclaimed + flash_reclaimed > 0) {
          observer_->event(now, "ap", "sweep", "",
                           std::to_string(ram_reclaimed + flash_reclaimed) + " bytes");
        }
        schedule_sweep();
      });
}

void ApRuntime::snapshot_metrics() {
  if (observer_ == nullptr) return;
  obs::MetricsRegistry& m = observer_->metrics();
  const sim::Time now = network_.simulator().now();

  m.gauge("ap.cache.used_bytes").set(static_cast<double>(data_cache_->used_bytes()));
  m.gauge("ap.cache.capacity_bytes").set(static_cast<double>(data_cache_->capacity_bytes()));
  m.gauge("ap.cache.entries").set(static_cast<double>(data_cache_->entry_count()));
  m.counter("ap.cache.evictions").set(data_cache_->evictions());
  m.counter("ap.cache.rejections").set(data_cache_->rejections());
  m.gauge("ap.cache.hit_ratio").set(stats_.hit_ratio());
  m.gauge("ap.cache.high_priority_hit_ratio").set(stats_.high_priority_hit_ratio());
  m.counter("ap.block_list.size").set(block_list_.size());
  m.gauge("ap.mem.bytes").set(static_cast<double>(memory_bytes()));
  m.counter("ap.delegations").set(delegations_);
  m.counter("ap.revalidations").set(revalidations_);

  // Tier metrics are created only in their opt-in configurations so that
  // RAM-only runs export byte-identical ape.obs.v1 snapshots.
  if (options_.config.sweep_interval.count() > 0) {
    m.counter("ap.cache.sweeps").set(stats_.sweeps());
    m.counter("ap.cache.sweep_reclaimed_bytes").set(stats_.sweep_reclaimed_bytes());
  }
  if (tiered_ != nullptr) {
    store::FlashTier& flash = *flash_tier_;
    m.gauge("ap.store.ram_bytes").set(static_cast<double>(data_cache_->used_bytes()));
    m.gauge("ap.store.flash_bytes").set(static_cast<double>(flash.live_bytes()));
    m.gauge("ap.flash.capacity_bytes").set(static_cast<double>(flash.capacity_bytes()));
    m.gauge("ap.flash.physical_bytes").set(static_cast<double>(flash.physical_bytes()));
    m.gauge("ap.flash.entries").set(static_cast<double>(flash.entry_count()));
    m.gauge("ap.flash.segments").set(static_cast<double>(flash.segment_count()));
    m.counter("ap.flash.puts").set(flash.puts());
    m.counter("ap.flash.rejections").set(flash.rejections());
    m.counter("ap.flash.evictions").set(flash.evictions());
    m.counter("ap.flash.compactions").set(flash.compactions());
    m.counter("ap.flash.expired_reclaimed_bytes").set(flash.expired_reclaimed_bytes());
    m.counter("ap.flash.journal_records").set(flash.journal().record_count());
    m.counter("ap.flash.journal_bytes").set(flash.journal().total_bytes());
    m.counter("ap.flash.journal_rewrites").set(flash.journal().rewrites());
    m.counter("ap.flash.journal_replays").set(flash.recoveries());
    m.counter("ap.flash.device_reads").set(flash.device().reads());
    m.counter("ap.flash.device_writes").set(flash.device().writes());
    m.gauge("ap.flash.device_busy_ms").set(sim::to_millis(flash.device().busy_time()));
    m.counter("ap.store.demotions").set(tiered_->demotions());
    m.counter("ap.store.demotion_skips").set(tiered_->demotion_skips());
    m.counter("ap.store.promotions").set(tiered_->promotions());
    m.counter("ap.store.flash_hits").set(tiered_->flash_hits());
    m.counter("ap.store.flash_misses").set(tiered_->flash_misses());
  }

  // Per-app storage efficiency C_a = cached bytes / R(a) — the fairness
  // signal PACM's Gini constraint bounds (paper Sec. IV-C).  Ordered map:
  // gauge creation order must match across runs for byte-identical exports.
  std::map<AppId, std::size_t> bytes_by_app;
  data_cache_->for_each(
      [&](const cache::CacheEntry& entry) { bytes_by_app[entry.app_id] += entry.size_bytes; });
  for (const auto& [app, bytes] : bytes_by_app) {
    const std::string prefix = "ap.app." + std::to_string(app);
    m.gauge(prefix + ".storage_bytes").set(static_cast<double>(bytes));
    const double freq = freq_.frequency(app, now);
    if (freq > 0.0) {
      m.gauge(prefix + ".efficiency_ca").set(static_cast<double>(bytes) / freq);
    }
  }
}

void ApRuntime::reset_cache() {
  data_cache_->clear();
  if (flash_tier_ != nullptr) flash_tier_->reset();  // wipes the journal too
  block_list_.clear();
  stats_.reset();
  url_index_.clear();
  domain_hashes_.clear();
}

// ---------------------------------------------------------------- memory

std::size_t ApRuntime::memory_bytes() const {
  const ApeConfig& c = options_.config;
  std::size_t total = c.base_memory_bytes;
  total += flows_ * c.per_flow_bytes;
  total += tcp_.server_connection_count(node_) * c.per_connection_bytes;
  if (options_.enable_ape) {
    total += c.runtime_memory_bytes;
    total += data_cache_->used_bytes();
    total += (url_index_.size() + block_list_.size()) * c.per_index_entry_bytes;
    // Flash bodies live on flash, but the tier's index is a RAM structure.
    if (flash_tier_ != nullptr) {
      total += flash_tier_->entry_count() * c.per_index_entry_bytes;
    }
  }
  return total;
}

void ApRuntime::account_served_bytes(std::size_t bytes) {
  // Userspace serve path: roughly 2x the kernel fast-path per-packet cost
  // (socket write + copy + WiFi TX vs NAT forwarding) — about 7 MB/s per
  // core, in line with userspace file serving on an MT7621-class SoC.
  // Metered, not queued: the copy overlaps NIC DMA and never head-of-line
  // blocks DNS/HTTP request handling.
  const std::size_t packets = bytes / 1448 + 1;
  cpu_.account(sim::microseconds(static_cast<std::int64_t>(packets) * 209));
}

void ApRuntime::forward_packet(std::size_t bytes, bool new_flow) {
  // Software NAT forwarding on the MT7621A-class SoC (~14 MB/s per core):
  // fixed lookup/NAT work plus a per-byte copy.  Calibrated so the Table II
  // high-rate replay lands in the paper's "well below 50% CPU" band
  // (Fig. 2) without starving the serving path in the Fig. 13 sweeps.
  const sim::Duration cost =
      sim::microseconds(100) + sim::microseconds(static_cast<std::int64_t>(bytes / 100));
  cpu_.account(cost);  // softirq-overlapped: metered, never queued
  if (new_flow) ++flows_;
}

// ------------------------------------------------------------------- DNS

void ApRuntime::Dns::handle_query(const dns::DnsMessage& query, net::Endpoint client,
                                  Responder respond) {
  owner_.handle_dns_query(query, client, std::move(respond));
}

void ApRuntime::answer_with_ip(const dns::DnsMessage& query, const dns::DnsName& name,
                               net::IpAddress ip, std::uint32_t ttl,
                               std::vector<dns::ResourceRecord> additionals,
                               std::function<void(dns::DnsMessage)> respond) const {
  dns::DnsMessage resp = dns::make_response_for(query, dns::Rcode::NoError);
  resp.answers.push_back(dns::make_a_record(name, ip, ttl));
  resp.additionals = std::move(additionals);
  respond(std::move(resp));
}

obs::SpanLog* ApRuntime::spans() const {
  return observer_ == nullptr ? nullptr : &observer_->spans();
}

void ApRuntime::handle_dns_query(const dns::DnsMessage& query, net::Endpoint /*client*/,
                                 std::function<void(dns::DnsMessage)> respond) {
  auto view = extract_dns_cache(query);

  // Causal tracing: a TraceCtx RR on the query parents every AP-side span
  // under the client's dns.query span (DESIGN.md §5f).
  obs::TraceContext lookup_span;
  if (obs::SpanLog* log = spans(); log != nullptr) {
    const obs::TraceContext client_ctx = extract_trace_context(query);
    if (client_ctx.valid() && !query.questions.empty()) {
      lookup_span = log->open(client_ctx, "ap.lookup", "ap",
                              query.questions.front().name.to_string(),
                              network_.simulator().now());
    }
    if (lookup_span.valid()) {
      respond = [this, lookup_span,
                 respond = std::move(respond)](dns::DnsMessage msg) mutable {
        spans()->close(lookup_span, network_.simulator().now());
        respond(std::move(msg));
      };
    }
  }

  if (!options_.enable_ape || !view || !view.value().is_request) {
    handle_regular_dns(query, lookup_span, std::move(respond));
    return;
  }

  // --- DNS-Cache path ----------------------------------------------------
  const dns::DnsName domain = view.value().domain;

  // Charge the marginal cache-lookup cost on top of the base DNS service
  // time already paid in DnsServer::on_datagram.
  hot_.dns_cache_queries.add();
  cpu_.submit(options_.config.cache_lookup_extra,
              [this, query, domain, lookup_span, requested = view.value().entries,
               respond = std::move(respond)]() mutable {
    const FlagSet flags = collect_flags(domain, requested);
    std::vector<dns::ResourceRecord> additionals;
    additionals.push_back(make_cache_response_rr(domain, flags.entries));
    // One TYPE=300 RR per response, batching one flag per known URL.
    hot_.dns_cache_rr_emitted.add();
    hot_.dns_flags_emitted.add(flags.entries.size());

    if (!flags.needs_edge && !flags.entries.empty()) {
      // No URL under this domain requires the edge directly: Cache-Hits are
      // served locally and Delegations go through the AP, so the client
      // never dereferences the answer.  Skip upstream resolution and return
      // the non-routable dummy with TTL 0.  (The paper's Sec. IV-B3 rule is
      // the all-cached special case; extending it to delegations keeps the
      // lookup millisecond-level during cache warm-up as well — see
      // DESIGN.md.)  Block-listed URLs force a real answer.
      hot_.dns_short_circuit.add();
      hot_.dns_upstream_avoided.add();
      if (observer_ != nullptr) {
        observer_->event(network_.simulator().now(), "ap", "dns_short_circuit",
                         domain.to_string(),
                         "flags=" + std::to_string(flags.entries.size()));
      }
      answer_with_ip(query, domain, net::kDummyIp, 0, std::move(additionals),
                     std::move(respond));
      return;
    }

    resolve_upstream(domain, lookup_span,
                     [this, query, domain, additionals = std::move(additionals),
                      respond = std::move(respond)](
                         Result<DnsCacheEntry> resolved) mutable {
      if (!resolved) {
        dns::DnsMessage resp = dns::make_response_for(query, dns::Rcode::ServFail);
        resp.additionals = std::move(additionals);
        respond(std::move(resp));
        return;
      }
      const sim::Time now = network_.simulator().now();
      const auto remaining = resolved.value().expires - now;
      const std::uint32_t ttl = std::min<std::uint32_t>(
          options_.config.dns_answer_ttl_cap,
          static_cast<std::uint32_t>(std::max<std::int64_t>(
              0, static_cast<std::int64_t>(sim::to_seconds(remaining)))));
      answer_with_ip(query, domain, resolved.value().ip, ttl, std::move(additionals),
                     std::move(respond));
    });
  });
}

void ApRuntime::handle_regular_dns(const dns::DnsMessage& query,
                                   const obs::TraceContext& parent,
                                   std::function<void(dns::DnsMessage)> respond) {
  if (query.questions.empty() || query.questions.front().qtype != dns::RrType::A) {
    respond(dns::make_response_for(query, dns::Rcode::NotImp));
    return;
  }
  hot_.dns_regular_queries.add();
  const dns::DnsName name = query.questions.front().name;
  resolve_upstream(name, parent, [this, query, name, respond = std::move(respond)](
                                     Result<DnsCacheEntry> resolved) mutable {
    if (!resolved) {
      respond(dns::make_response_for(query, dns::Rcode::ServFail));
      return;
    }
    const sim::Time now = network_.simulator().now();
    const std::uint32_t ttl = static_cast<std::uint32_t>(std::max<std::int64_t>(
        0, static_cast<std::int64_t>(sim::to_seconds(resolved.value().expires - now))));
    answer_with_ip(query, name, resolved.value().ip, ttl, {}, std::move(respond));
  });
}

void ApRuntime::resolve_upstream(const dns::DnsName& name, const obs::TraceContext& parent,
                                 std::function<void(Result<DnsCacheEntry>)> done) {
  const sim::Time now = network_.simulator().now();
  if (auto it = dns_cache_.find(name); it != dns_cache_.end()) {
    if (it->second.expires > now) {
      hot_.dns_record_cache_hit.add();
      done(it->second);
      return;
    }
    dns_cache_.erase(it);
  }

  hot_.dns_upstream_queries.add();
  obs::TraceContext up_span;
  if (obs::SpanLog* log = spans(); log != nullptr) {
    up_span = log->open(parent, "dns.upstream", "ap", name.to_string(), now);
  }
  dns::DnsMessage q;
  q.header.rd = true;
  q.questions.push_back(dns::Question{name, dns::RrType::A, dns::RrClass::In});
  upstream_.query(options_.upstream_dns, std::move(q),
                  [this, name, up_span,
                   done = std::move(done)](Result<dns::DnsMessage> resp) mutable {
                    if (obs::SpanLog* log = spans(); log != nullptr) {
                      log->close(up_span, network_.simulator().now());
                    }
                    if (!resp) {
                      done(make_error<DnsCacheEntry>(resp.error().message));
                      return;
                    }
                    auto extracted = dns::StubResolver::extract_address(resp.value(), name);
                    if (!extracted) {
                      done(make_error<DnsCacheEntry>(extracted.error().message));
                      return;
                    }
                    DnsCacheEntry entry;
                    entry.ip = extracted.value().address;
                    entry.expires = network_.simulator().now() +
                                    sim::seconds(extracted.value().ttl);
                    if (extracted.value().ttl > 0) dns_cache_[name] = entry;
                    done(entry);
                  });
}

ApRuntime::FlagSet ApRuntime::collect_flags(const dns::DnsName& domain,
                                            const std::vector<CacheLookupEntry>& requested) {
  const sim::Time now = network_.simulator().now();

  // Learn hash -> domain associations from the request itself.
  for (const auto& e : requested) {
    auto [it, inserted] = url_index_.try_emplace(e.hash);
    if (inserted) it->second.domain = domain;
    domain_hashes_[domain].insert(e.hash);
  }

  std::unordered_set<UrlHash> requested_set;
  for (const auto& e : requested) requested_set.insert(e.hash);

  FlagSet out;
  out.all_cached = true;
  const auto& hashes = domain_hashes_[domain];
  out.entries.reserve(hashes.size());
  // The symbol-aware linter resolves the `hashes` alias back to the
  // unordered domain_hashes_ set (the regex engine never saw this).  Flag
  // order feeds the DNS Additional section, which clients consume as an
  // unordered flag *set*; canonicalizing the walk would perturb the
  // committed bench baselines for zero behavioural gain, so the walk is
  // deliberately left in container order.
  // ape-lint: allow(unordered-iter)
  for (UrlHash h : hashes) {
    CacheFlag flag;
    const std::string key = hash_to_string(h);
    if (data_cache_->peek(key, now) != nullptr ||
        (tiered_ != nullptr && tiered_->flash_contains(key, now))) {
      // A valid flash copy is still a Cache-Hit: the AP serves it locally
      // (at flash cost) without touching the edge.
      flag = CacheFlag::CacheHit;
    } else if (block_list_.contains(key)) {
      flag = CacheFlag::CacheMiss;
      out.all_cached = false;
      out.needs_edge = true;
    } else {
      flag = CacheFlag::Delegation;
      out.all_cached = false;
    }
    out.entries.push_back(CacheLookupEntry{h, flag});

    // Only the explicitly requested hashes count toward hit statistics;
    // batched extras are opportunistic.
    if (requested_set.contains(h)) {
      const auto info = url_index_.find(h);
      const int priority = info == url_index_.end() ? 1 : info->second.priority;
      switch (flag) {
        case CacheFlag::CacheHit:
          stats_.record_hit(priority);
          if (hit_counter_ != nullptr) hit_counter_->add();
          break;
        case CacheFlag::CacheMiss:
          stats_.record_miss(priority);
          if (miss_counter_ != nullptr) miss_counter_->add();
          break;
        case CacheFlag::Delegation:
          stats_.record_delegation(priority);
          if (delegation_flag_counter_ != nullptr) delegation_flag_counter_->add();
          break;
      }
    }
  }
  return out;
}

// ------------------------------------------------------------------ HTTP

void ApRuntime::serve_from_cache(const cache::CacheEntry& entry,
                                 http::HttpServer::Responder respond) {
  account_served_bytes(entry.size_bytes);
  hot_.http_cache_serves.add();
  hot_.http_bytes_from_cache.add(entry.size_bytes);
  http::HttpResponse resp;
  resp.status = 200;
  resp.simulated_body_bytes = entry.size_bytes;
  resp.headers.emplace_back("X-Cache", "AP-HIT");
  resp.headers.emplace_back("X-Object-Priority", std::to_string(entry.priority));
  resp.headers.emplace_back("X-Object-App", std::to_string(entry.app_id));
  respond(std::move(resp));
}

void ApRuntime::handle_http(const http::HttpRequest& request,
                            http::HttpServer::Responder respond) {
  if (!options_.enable_ape) {
    respond(http::make_status_response(404, "AP caching disabled"));
    return;
  }
  const std::string base = request.url.base();
  const UrlHash hash = hash_url(base);
  const std::string key = hash_to_string(hash);
  const sim::Time now = network_.simulator().now();

  // Causal tracing: parent everything the AP does for this request under
  // the client's http.fetch span (X-Ape-Trace header).
  obs::TraceContext serve_span;
  if (obs::SpanLog* log = spans(); log != nullptr) {
    if (const std::string* h = http::find_trace_context_header(request.headers)) {
      serve_span = log->open(obs::decode_trace_context(*h), "ap.serve", "ap", base, now);
    }
    if (serve_span.valid()) {
      respond = [this, serve_span,
                 respond = std::move(respond)](http::HttpResponse resp) mutable {
        spans()->close(serve_span, network_.simulator().now());
        respond(std::move(resp));
      };
    }
  }

  // Request frequency feeds PACM regardless of how the fetch resolves.
  if (const auto* app_header = http::find_header(request.headers, "X-Ape-App")) {
    freq_.record_request(static_cast<AppId>(std::stoul(*app_header)), now);
  }

  // Revalidation candidate: look for an expired-but-present entry *before*
  // get() lazily erases it.
  std::optional<cache::CacheEntry> stale;
  if (options_.config.enable_revalidation) {
    if (const auto* old = data_cache_->lookup_any(key);
        old != nullptr && old->expired_at(now) && !old->etag.empty()) {
      stale = *old;
    }
  }

  if (const cache::CacheEntry* entry = data_cache_->get(key, now); entry != nullptr) {
    serve_from_cache(*entry, std::move(respond));
    return;
  }

  if (tiered_ != nullptr && tiered_->flash_contains(key, now)) {
    // Flash hit: read the body off the device (paying flash time rather
    // than an edge round trip), promote if the RAM policy takes it, serve.
    hot_.http_flash_serves.add();
    if (observer_ != nullptr) observer_->event(now, "ap", "flash_hit", key);
    obs::ScopedTraceContext ambient(spans(), serve_span);  // -> ap.flash.read
    tiered_->fetch_flash(
        key, now,
        [this, request, hash, serve_span, stale = std::move(stale),
         respond = std::move(respond)](std::optional<cache::CacheEntry> entry) mutable {
          if (entry.has_value()) {
            serve_from_cache(*entry, std::move(respond));
            return;
          }
          // The copy vanished while the read was queued; treat as a miss.
          finish_http_miss(request, hash, std::move(stale), serve_span, std::move(respond));
        });
    return;
  }
  finish_http_miss(request, hash, std::move(stale), serve_span, std::move(respond));
}

void ApRuntime::finish_http_miss(const http::HttpRequest& request, UrlHash hash,
                                 std::optional<cache::CacheEntry> stale,
                                 const obs::TraceContext& parent,
                                 http::HttpServer::Responder respond) {
  const bool is_delegation = http::find_header(request.headers, "X-Ape-Delegate") != nullptr;
  if (!is_delegation) {
    // Plain cache fetch that raced an eviction/expiry: the client falls
    // back to the edge on 404.
    hot_.http_race_fallback.add();
    if (observer_ != nullptr) {
      observer_->event(network_.simulator().now(), "ap", "race_fallback",
                       hash_to_string(hash));
    }
    respond(http::make_status_response(404, "not in AP cache"));
    return;
  }
  delegate_fetch(request, hash, std::move(stale), parent, std::move(respond));
}

void ApRuntime::insert_object(cache::CacheEntry entry, sim::Time now) {
  if (tiered_ != nullptr) {
    tiered_->insert(std::move(entry), now);
  } else {
    data_cache_->insert(std::move(entry), now);
  }
}

void ApRuntime::delegate_fetch(const http::HttpRequest& request, UrlHash hash,
                               std::optional<cache::CacheEntry> stale,
                               const obs::TraceContext& parent,
                               http::HttpServer::Responder respond) {
  // Delegation metadata shipped by the client library (Sec. IV-B2).
  std::uint32_t ttl_seconds = 600;
  int priority = 1;
  AppId app = 0;
  if (const auto* v = http::find_header(request.headers, "X-Ape-Ttl")) {
    ttl_seconds = static_cast<std::uint32_t>(std::stoul(*v));
  }
  if (const auto* v = http::find_header(request.headers, "X-Ape-Priority")) {
    priority = std::stoi(*v);
  }
  if (const auto* v = http::find_header(request.headers, "X-Ape-App")) {
    app = static_cast<AppId>(std::stoul(*v));
  }

  const std::string base = request.url.base();
  auto& info = url_index_[hash];
  if (auto domain = dns::DnsName::parse(request.url.host)) {
    info.domain = domain.value();
    domain_hashes_[info.domain].insert(hash);
  }
  info.base_url = base;
  info.app = app;
  info.priority = priority;

  ++delegations_;
  const sim::Time fetch_start = network_.simulator().now();
  hot_.delegations.add();
  if (observer_ != nullptr) observer_->event(fetch_start, "ap", "delegate", base);

  obs::TraceContext delegate_span;
  if (obs::SpanLog* log = spans(); log != nullptr) {
    delegate_span = log->open(parent, "ap.delegate", "ap", base, fetch_start);
    if (delegate_span.valid()) {
      respond = [this, delegate_span,
                 respond = std::move(respond)](http::HttpResponse resp) mutable {
        spans()->close(delegate_span, network_.simulator().now());
        respond(std::move(resp));
      };
    }
  }

  resolve_upstream(info.domain, delegate_span,
                   [this, request, hash, ttl_seconds, priority, app, fetch_start,
                    delegate_span, stale = std::move(stale), respond = std::move(respond)](
                       Result<DnsCacheEntry> resolved) mutable {
    if (!resolved) {
      respond(http::make_status_response(502, "AP could not resolve origin"));
      return;
    }
    http::HttpRequest upstream_req;
    upstream_req.method = "GET";
    upstream_req.url = request.url;
    // A delegation fills the AP cache with a fresh copy: the edge serves it
    // as an origin pull (paying the object's backend latency) — unless a
    // stale local copy can be revalidated with a conditional request.
    upstream_req.headers.emplace_back("X-Origin-Pull", "1");
    if (stale) upstream_req.headers.emplace_back("If-None-Match", stale->etag);

    obs::SpanLog* log = spans();
    obs::TraceContext fetch_span;
    if (log != nullptr) {
      fetch_span = log->open(delegate_span, "http.fetch", "ap", request.url.base(),
                             network_.simulator().now());
      if (fetch_span.valid()) {
        http::set_trace_context_header(upstream_req.headers,
                                       obs::encode_trace_context(fetch_span));
      }
    }
    obs::ScopedTraceContext ambient(log, fetch_span);  // -> net.connect
    edge_client_.fetch(
        net::Endpoint{resolved.value().ip, net::kHttpPort}, std::move(upstream_req),
        [this, request, hash, ttl_seconds, priority, app, fetch_start, delegate_span,
         fetch_span, stale = std::move(stale), respond = std::move(respond)](
            Result<http::HttpResponse> result, http::FetchTiming) mutable {
          const sim::Time now = network_.simulator().now();
          const std::string key = hash_to_string(hash);
          if (obs::SpanLog* slog = spans(); slog != nullptr) slog->close(fetch_span, now);

          if (result && result.value().status == 304 && stale) {
            // Not modified: refresh the stale entry's lifetime and serve it
            // locally — no body crossed the WAN.
            ++revalidations_;
            hot_.revalidations.add();
            if (observer_ != nullptr) observer_->event(now, "ap", "revalidate", key);
            cache::CacheEntry entry = std::move(*stale);
            std::uint32_t ttl = ttl_seconds;
            if (const auto* v =
                    http::find_header(result.value().headers, "X-Object-TTL")) {
              ttl = static_cast<std::uint32_t>(std::stoul(*v));
            }
            entry.expires = now + sim::seconds(ttl);
            const std::size_t size = entry.size_bytes;
            {
              obs::ScopedTraceContext insert_ambient(spans(), delegate_span);
              insert_object(std::move(entry), now);
            }
            account_served_bytes(size);

            http::HttpResponse resp;
            resp.status = 200;
            resp.simulated_body_bytes = size;
            resp.headers.emplace_back("X-Cache", "AP-REVALIDATED");
            respond(std::move(resp));
            return;
          }

          if (!result || !result.value().ok()) {
            respond(http::make_status_response(502, "delegated fetch failed"));
            return;
          }
          http::HttpResponse resp = std::move(result.value());
          const sim::Duration fetch_latency = now - fetch_start;
          const std::size_t size = resp.total_body_bytes();

          // PACM prices a cached object with its last observed fetch
          // latency l_d; compare that estimate against this measurement.
          // Report-only and span-gated: default exports stay byte-identical.
          if (obs::SpanLog* slog = spans(); slog != nullptr && slog->enabled()) {
            if (auto info_it = url_index_.find(hash); info_it != url_index_.end()) {
              const double measured_ms = sim::to_millis(fetch_latency);
              if (info_it->second.last_fetch_ms >= 0.0) {
                hot_.latency_estimate_error_ms.record(
                    std::abs(measured_ms - info_it->second.last_fetch_ms));
              }
              info_it->second.last_fetch_ms = measured_ms;
            }
          }

          if (block_list_.should_block(size)) {
            // Too large to ever cache: remember that and stop delegating.
            block_list_.block(key);
            hot_.block_listed.add();
            if (observer_ != nullptr) {
              observer_->event(now, "ap", "block_list", key,
                               std::to_string(size) + " bytes");
            }
          } else {
            cache::CacheEntry entry;
            entry.key = key;
            entry.size_bytes = size;
            entry.app_id = app;
            entry.priority = priority;
            entry.expires = now + sim::seconds(ttl_seconds);
            entry.fetch_latency = fetch_latency;
            if (const auto* etag = http::find_header(resp.headers, "ETag")) {
              entry.etag = *etag;
            }
            {
              obs::ScopedTraceContext insert_ambient(spans(), delegate_span);
              insert_object(std::move(entry), now);
            }
            hot_.cache_inserts.add();
            hot_.delegation_bytes_fetched.add(size);
            if (observer_ != nullptr) {
              observer_->event(now, "ap", "admit", key, std::to_string(size) + " bytes");
            }
          }

          // The pulled body crossed the WAN into the AP (kernel RX) and is
          // served to the client from userspace.
          const std::size_t rx_packets = size / 1448 + 1;
          for (std::size_t i = 0; i < rx_packets; ++i) forward_packet(1448, false);
          account_served_bytes(size);

          resp.headers.emplace_back("X-Cache", "AP-DELEGATED");
          respond(std::move(resp));
        });
  });
}

}  // namespace ape::core

// UDP-like datagram primitives carried by the Network.
#pragma once

#include <cstdint>
#include <vector>

#include "net/address.hpp"

namespace ape::net {

using Payload = std::vector<std::uint8_t>;

struct Datagram {
  Endpoint source;
  Endpoint destination;
  Payload payload;

  [[nodiscard]] std::size_t size_bytes() const noexcept;
};

// UDP/IP framing overhead added to every datagram's wire size
// (IPv4 20 B + UDP 8 B).
inline constexpr std::size_t kUdpOverheadBytes = 28;

}  // namespace ape::net

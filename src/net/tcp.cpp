#include "net/tcp.hpp"

#include <cassert>
#include <utility>

namespace ape::net {

TcpTransport::TcpTransport(Network& network) : network_(network) {}

void TcpTransport::listen(NodeId node, Port port, TcpRequestHandler handler) {
  assert(handler);
  listeners_[listen_key(node, port)] = std::move(handler);
}

void TcpTransport::stop_listening(NodeId node, Port port) {
  listeners_.erase(listen_key(node, port));
}

void TcpTransport::connect(NodeId client, Endpoint server, ConnectHandler on_connected) {
  assert(on_connected);
  ++counters_.connects_attempted;
  auto& sim = network_.simulator();

  // Span over the handshake (or its failure), parented on whatever fetch
  // pushed the ambient context before initiating this connect.
  obs::TraceContext connect_span;
  if (obs::SpanLog* log = spans(); log != nullptr) {
    connect_span = log->open(log->current_context(), "net.connect", "net",
                             server.ip.to_string(), sim.now());
  }

  const auto server_node = network_.owner_of(server.ip);
  if (!server_node) {
    // Unknown destination (e.g. the APE-CACHE dummy IP): SYNs vanish, the
    // client gives up after its connect timeout.
    ++counters_.connects_timed_out;
    sim.schedule_in(connect_timeout_, [this, connect_span, cb = std::move(on_connected)] {
      if (obs::SpanLog* log = spans(); log != nullptr) {
        log->close(connect_span, network_.simulator().now());
      }
      cb(make_error<TcpConnectionPtr>("connect timeout: unroutable address"));
    });
    return;
  }

  const auto path = network_.topology().path(client, *server_node);
  if (!path) {
    ++counters_.connects_timed_out;
    sim.schedule_in(connect_timeout_, [this, connect_span, cb = std::move(on_connected)] {
      if (obs::SpanLog* log = spans(); log != nullptr) {
        log->close(connect_span, network_.simulator().now());
      }
      cb(make_error<TcpConnectionPtr>("connect timeout: network partition"));
    });
    return;
  }

  const sim::Duration rtt = path->rtt();
  if (!listeners_.contains(listen_key(*server_node, server.port))) {
    // RST comes back after one round trip.
    ++counters_.connects_refused;
    sim.schedule_in(rtt, [this, connect_span, cb = std::move(on_connected)] {
      if (obs::SpanLog* log = spans(); log != nullptr) {
        log->close(connect_span, network_.simulator().now());
      }
      cb(make_error<TcpConnectionPtr>("connection refused"));
    });
    return;
  }

  // SYN / SYN-ACK: connection usable one RTT after initiation.
  const NodeId server_id = *server_node;
  sim.schedule_in(rtt, [this, client, server_id, server, connect_span,
                        cb = std::move(on_connected)] {
    if (obs::SpanLog* log = spans(); log != nullptr) {
      log->close(connect_span, network_.simulator().now());
    }
    ++counters_.connects_established;
    ++server_conn_count_[server_id];
    auto conn = TcpConnectionPtr(
        new TcpConnection(*this, next_conn_id_++, client, server_id, server),
        [this](TcpConnection* c) {
          on_connection_closed(*c);
          delete c;  // matching the private-new in this factory
        });
    cb(std::move(conn));
  });
}

void TcpConnection::send_request(TcpMessage request, ResponseHandler on_response) {
  assert(on_response);
  if (!open_) {
    on_response(make_error<TcpMessage>("connection is closed"));
    return;
  }
  transport_.route_request(*this, std::move(request), std::move(on_response));
}

void TcpConnection::close() {
  open_ = false;
}

void TcpTransport::route_request(TcpConnection& conn, TcpMessage request,
                                 TcpConnection::ResponseHandler on_response) {
  auto& sim = network_.simulator();
  ++counters_.requests_sent;

  const auto up_delay = network_.transfer_delay(conn.client_, conn.server_, request.wire_size());
  if (!up_delay) {
    sim.schedule_in(connect_timeout_, [cb = std::move(on_response)] {
      cb(make_error<TcpMessage>("request lost: network partition"));
    });
    return;
  }

  const NodeId client = conn.client_;
  const NodeId server = conn.server_;
  const Endpoint server_ep = conn.server_ep_;
  const auto client_ip = network_.ip_of(client);
  const Endpoint peer{client_ip.value_or(IpAddress{}), 0};

  sim.schedule_in(*up_delay, [this, client, server, server_ep, peer, req = std::move(request),
                              cb = std::move(on_response)]() mutable {
    auto it = listeners_.find(listen_key(server, server_ep.port));
    if (it == listeners_.end()) {
      // Listener went away mid-flight: RST on the response path.
      const auto back = network_.topology().path(server, client);
      const sim::Duration d = back ? back->one_way_latency : connect_timeout_;
      network_.simulator().schedule_in(d, [cb = std::move(cb)] {
        cb(make_error<TcpMessage>("connection reset by peer"));
      });
      return;
    }

    // The responder may be invoked asynchronously, long after this handler
    // returns (the server may itself be a client of an upstream service).
    TcpResponder respond = [this, client, server, cb](TcpMessage response) mutable {
      const auto down_delay = network_.transfer_delay(server, client, response.wire_size());
      if (!down_delay) {
        network_.simulator().schedule_in(connect_timeout_, [cb = std::move(cb)] {
          cb(make_error<TcpMessage>("response lost: network partition"));
        });
        return;
      }
      network_.simulator().schedule_in(
          *down_delay, [this, cb = std::move(cb), resp = std::move(response)]() mutable {
            ++counters_.responses_delivered;
            cb(std::move(resp));
          });
    };
    it->second(req, peer, std::move(respond));
  });
}

void TcpTransport::on_connection_closed(const TcpConnection& conn) {
  auto it = server_conn_count_.find(conn.server_);
  if (it != server_conn_count_.end() && it->second > 0) --it->second;
}

std::size_t TcpTransport::server_connection_count(NodeId node) const {
  auto it = server_conn_count_.find(node);
  return it == server_conn_count_.end() ? 0 : it->second;
}

}  // namespace ape::net

#include "net/topology.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>

namespace ape::net {

NodeId Topology::add_node(std::string name) {
  const NodeId id{static_cast<std::uint32_t>(nodes_.size())};
  nodes_.push_back(std::move(name));
  transit_.push_back(true);
  adjacency_.emplace_back();
  path_cache_.clear();
  return id;
}

void Topology::set_transit(NodeId node, bool forwards) {
  assert(node.value < nodes_.size());
  transit_[node.value] = forwards;
  path_cache_.clear();
}

bool Topology::transit(NodeId node) const {
  assert(node.value < nodes_.size());
  return transit_[node.value];
}

void Topology::add_link(NodeId a, NodeId b, LinkSpec spec) {
  assert(a.value < nodes_.size() && b.value < nodes_.size());
  assert(a != b && "self-links are not meaningful");
  auto upsert = [this, &spec](NodeId from, NodeId to) {
    for (Edge& e : adjacency_[from.value]) {
      if (e.peer == to.value) {
        e.spec = spec;
        e.down = false;
        return;
      }
    }
    adjacency_[from.value].push_back(Edge{to.value, spec, false});
  };
  upsert(a, b);
  upsert(b, a);
  path_cache_.clear();
}

void Topology::add_multi_hop_path(NodeId a, NodeId b, std::size_t hops,
                                  sim::Duration per_hop_latency, double bandwidth) {
  assert(hops >= 1);
  const LinkSpec spec{per_hop_latency, bandwidth};
  NodeId prev = a;
  for (std::size_t i = 0; i + 1 < hops; ++i) {
    const NodeId router =
        add_node(nodes_[a.value] + "-" + nodes_[b.value] + "-r" + std::to_string(i));
    add_link(prev, router, spec);
    prev = router;
  }
  add_link(prev, b, spec);
}

void Topology::set_link_down(NodeId a, NodeId b, bool down) {
  assert(a.value < nodes_.size() && b.value < nodes_.size());
  auto flip = [this, down](NodeId from, NodeId to) {
    for (Edge& e : adjacency_[from.value]) {
      if (e.peer == to.value) e.down = down;
    }
  };
  flip(a, b);
  flip(b, a);
  path_cache_.clear();
}

bool Topology::link_exists(NodeId a, NodeId b) const {
  if (a.value >= adjacency_.size()) return false;
  return std::any_of(adjacency_[a.value].begin(), adjacency_[a.value].end(),
                     [&](const Edge& e) { return e.peer == b.value && !e.down; });
}

std::optional<PathInfo> Topology::path(NodeId from, NodeId to) const {
  assert(from.value < nodes_.size() && to.value < nodes_.size());
  if (from == to) return PathInfo{0, sim::Duration{0}, std::numeric_limits<double>::infinity()};

  const std::uint64_t key = pair_key(from, to);
  if (auto it = path_cache_.find(key); it != path_cache_.end()) return it->second;

  // Dijkstra on latency; carries hop count and bottleneck bandwidth along.
  struct State {
    std::int64_t dist_us;
    std::uint32_t node;
    bool operator<(const State& other) const noexcept {
      return dist_us > other.dist_us;  // min-heap
    }
  };
  constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max();
  std::vector<std::int64_t> dist(nodes_.size(), kInf);
  std::vector<std::size_t> hops(nodes_.size(), 0);
  std::vector<double> bw(nodes_.size(), std::numeric_limits<double>::infinity());
  std::priority_queue<State> pq;
  dist[from.value] = 0;
  pq.push(State{0, from.value});

  while (!pq.empty()) {
    const State s = pq.top();
    pq.pop();
    if (s.dist_us != dist[s.node]) continue;
    if (s.node == to.value) break;
    // Non-transit nodes terminate paths: only the source may forward.
    if (s.node != from.value && !transit_[s.node]) continue;
    for (const Edge& e : adjacency_[s.node]) {
      if (e.down) continue;
      const std::int64_t nd = s.dist_us + e.spec.one_way_latency.count();
      const std::size_t nh = hops[s.node] + 1;
      if (nd < dist[e.peer] || (nd == dist[e.peer] && nh < hops[e.peer])) {
        dist[e.peer] = nd;
        hops[e.peer] = nh;
        bw[e.peer] = std::min(bw[s.node], e.spec.bandwidth_bytes_per_sec);
        pq.push(State{nd, e.peer});
      }
    }
  }

  std::optional<PathInfo> result;
  if (dist[to.value] != kInf) {
    result = PathInfo{hops[to.value], sim::Duration{dist[to.value]}, bw[to.value]};
  }
  path_cache_.emplace(key, result);
  return result;
}

const std::string& Topology::node_name(NodeId id) const {
  assert(id.value < nodes_.size());
  return nodes_[id.value];
}

}  // namespace ape::net

#include "net/datagram.hpp"

namespace ape::net {

std::size_t Datagram::size_bytes() const noexcept {
  return payload.size() + kUdpOverheadBytes;
}

}  // namespace ape::net

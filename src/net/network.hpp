// Datagram (UDP-like) delivery over a Topology, driven by the Simulator.
//
// Delivery time = path one-way latency + wire-size / bottleneck bandwidth.
// Unroutable destinations and unbound ports drop silently (UDP semantics)
// but are counted, so tests can assert on loss.
//
// In-flight datagrams are parked in a freelist-recycled slot arena
// (DESIGN.md §5h): the delivery event captures only {this, target, slot},
// which fits the simulator's inline callback storage, instead of hauling
// the whole Datagram through a heap-allocated closure.
// ape-lint: hot-path
#pragma once

#include <functional>
#include <optional>
#include <unordered_map>

#include "common/shard.hpp"
#include "net/datagram.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"

namespace ape::net {

class Network {
  APE_SHARD_CONTEXT(net);

 public:
  using DatagramHandler = std::function<void(const Datagram&)>;

  Network(sim::Simulator& sim, Topology& topology);
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // One IP per node; reassigning a node's IP or reusing an IP is a bug.
  void assign_ip(NodeId node, IpAddress ip);
  [[nodiscard]] std::optional<NodeId> owner_of(IpAddress ip) const;
  [[nodiscard]] std::optional<IpAddress> ip_of(NodeId node) const;

  void bind_udp(NodeId node, Port port, DatagramHandler handler);
  void unbind_udp(NodeId node, Port port);

  // Sends `payload` from `from`'s IP:source_port to `to`.  Returns false if
  // the datagram was dropped immediately (no route / unknown destination);
  // handler-level drops (unbound port) happen at delivery time.
  bool send_datagram(NodeId from, Port source_port, Endpoint to, Payload payload);

  // Time for `bytes` to cross from->to including propagation.
  [[nodiscard]] std::optional<sim::Duration> transfer_delay(NodeId from, NodeId to,
                                                            std::size_t bytes) const;

  struct Counters {
    std::size_t datagrams_sent = 0;
    std::size_t datagrams_delivered = 0;
    std::size_t datagrams_dropped = 0;
  };
  [[nodiscard]] const Counters& counters() const noexcept { return counters_; }

  [[nodiscard]] sim::Simulator& simulator() noexcept { return sim_; }
  [[nodiscard]] Topology& topology() noexcept { return topology_; }
  [[nodiscard]] const Topology& topology() const noexcept { return topology_; }

 private:
  static constexpr std::uint32_t kNoSlot = ~std::uint32_t{0};

  // One parked in-flight datagram; free slots chain through next_free.
  struct InFlight {
    Datagram dgram;
    std::uint32_t next_free = kNoSlot;
  };

  [[nodiscard]] std::uint64_t bind_key(NodeId node, Port port) const noexcept {
    return (std::uint64_t{node.value} << 16) | port;
  }

  // Fires when the wire delay elapses: looks up the binding and hands the
  // slot's datagram to it, then recycles the slot.
  void deliver(NodeId target, std::uint32_t slot);

  APE_SHARD_SHARED sim::Simulator& sim_;
  APE_SHARD_LOCAL(net) Topology& topology_;
  APE_SHARD_LOCAL(net) std::unordered_map<IpAddress, NodeId> ip_to_node_;
  APE_SHARD_LOCAL(net) std::unordered_map<NodeId, IpAddress> node_to_ip_;
  APE_SHARD_LOCAL(net) std::unordered_map<std::uint64_t, DatagramHandler> udp_bindings_;
  APE_SHARD_LOCAL(net) std::vector<InFlight> in_flight_;
  APE_SHARD_LOCAL(net) std::uint32_t free_slot_ = kNoSlot;
  APE_SHARD_LOCAL(net) Counters counters_;
};

}  // namespace ape::net

// Addressing primitives: node identities, IPv4 addresses, endpoints.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

#include "common/result.hpp"

namespace ape::net {

// Opaque handle for a simulated machine (phone, AP, edge server, ...).
struct NodeId {
  std::uint32_t value = 0;
  friend constexpr auto operator<=>(NodeId, NodeId) noexcept = default;
};

inline constexpr NodeId kInvalidNode{0xFFFFFFFFu};

struct IpAddress {
  std::uint32_t v4 = 0;  // host byte order

  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] static Result<IpAddress> parse(const std::string& dotted);
  [[nodiscard]] static constexpr IpAddress from_octets(std::uint8_t a, std::uint8_t b,
                                                       std::uint8_t c, std::uint8_t d) noexcept {
    return IpAddress{(std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
                     (std::uint32_t{c} << 8) | std::uint32_t{d}};
  }
  [[nodiscard]] constexpr bool is_unspecified() const noexcept { return v4 == 0; }

  friend constexpr auto operator<=>(IpAddress, IpAddress) noexcept = default;
};

// The dummy address APE-CACHE returns when it short-circuits upstream DNS
// resolution (paper Sec. IV-B3).  TEST-NET-2 is guaranteed non-routable.
inline constexpr IpAddress kDummyIp = IpAddress::from_octets(198, 51, 100, 1);

using Port = std::uint16_t;

inline constexpr Port kDnsPort = 53;
inline constexpr Port kHttpPort = 80;

struct Endpoint {
  IpAddress ip;
  Port port = 0;

  [[nodiscard]] std::string to_string() const;
  friend constexpr auto operator<=>(Endpoint, Endpoint) noexcept = default;
};

}  // namespace ape::net

template <>
struct std::hash<ape::net::NodeId> {
  std::size_t operator()(ape::net::NodeId id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value);
  }
};

template <>
struct std::hash<ape::net::IpAddress> {
  std::size_t operator()(ape::net::IpAddress ip) const noexcept {
    return std::hash<std::uint32_t>{}(ip.v4);
  }
};

// Network topology: named nodes joined by links with latency/bandwidth.
//
// Paths are shortest-latency (Dijkstra, hop count as tie-break) and cached;
// the testbed in Fig. 9 is tiny, but the WAN used for Table I has a few
// dozen nodes, so generality is cheap and useful.
//
// Links can be marked down for failure-injection tests; path caches are
// invalidated on any mutation.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/shard.hpp"
#include "net/address.hpp"
#include "sim/time.hpp"

namespace ape::net {

struct LinkSpec {
  sim::Duration one_way_latency{0};
  double bandwidth_bytes_per_sec = 125'000'000.0;  // 1 Gbps default
};

struct PathInfo {
  std::size_t hops = 0;                      // link count
  sim::Duration one_way_latency{0};          // sum over links
  double bottleneck_bandwidth = 0.0;         // min over links
  [[nodiscard]] sim::Duration rtt() const noexcept { return one_way_latency + one_way_latency; }
};

class Topology {
  APE_SHARD_CONTEXT(net);

 public:
  NodeId add_node(std::string name);

  // Adds a bidirectional link; replaces the spec if the link exists.
  void add_link(NodeId a, NodeId b, LinkSpec spec);

  // Convenience: a chain of `hops` links each with `per_hop_latency`,
  // materializing intermediate router nodes.  Returns nothing; the path
  // between a and b will traverse the chain.
  void add_multi_hop_path(NodeId a, NodeId b, std::size_t hops,
                          sim::Duration per_hop_latency, double bandwidth);

  void set_link_down(NodeId a, NodeId b, bool down);
  [[nodiscard]] bool link_exists(NodeId a, NodeId b) const;

  // End hosts do not forward packets: a non-transit node can source and
  // sink traffic but never appears in the middle of a path.  Defaults to
  // transit-enabled (routers, APs); fixtures mark servers/clients as hosts.
  void set_transit(NodeId node, bool forwards);
  [[nodiscard]] bool transit(NodeId node) const;

  // Shortest path by latency; nullopt when disconnected.
  [[nodiscard]] std::optional<PathInfo> path(NodeId from, NodeId to) const;

  [[nodiscard]] const std::string& node_name(NodeId id) const;
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }

 private:
  struct Edge {
    std::uint32_t peer;
    LinkSpec spec;
    bool down = false;
  };

  [[nodiscard]] std::uint64_t pair_key(NodeId a, NodeId b) const noexcept {
    return (std::uint64_t{a.value} << 32) | b.value;
  }

  APE_SHARD_LOCAL(net) std::vector<std::string> nodes_;
  APE_SHARD_LOCAL(net) std::vector<bool> transit_;
  APE_SHARD_LOCAL(net) std::vector<std::vector<Edge>> adjacency_;
  APE_SHARD_LOCAL(net) mutable std::unordered_map<std::uint64_t, std::optional<PathInfo>>
      path_cache_;
};

}  // namespace ape::net

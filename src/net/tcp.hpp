// Connection-oriented transport model.
//
// The paper's retrieval-latency metric is "from initiating a TCP session to
// the first byte read" (Sec. V-B), so the model captures exactly the parts
// that matter at that granularity:
//   - connection setup costs one RTT (SYN / SYN-ACK; data rides the ACK),
//   - each message costs one-way latency + wire-size / bottleneck bandwidth,
//   - connecting to a port nobody listens on fails after one RTT (RST),
//   - a partitioned path fails after a connect timeout.
//
// Messages carry real header bytes plus a simulated body size so the model
// never allocates multi-hundred-kB dummy bodies.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/result.hpp"
#include "common/shard.hpp"
#include "net/network.hpp"
#include "obs/observer.hpp"

namespace ape::net {

struct TcpMessage {
  Payload bytes;                        // actual serialized content (headers etc.)
  std::size_t simulated_body_bytes = 0; // body size modeled but not materialized

  [[nodiscard]] std::size_t wire_size() const noexcept {
    return bytes.size() + simulated_body_bytes + kTcpOverheadBytes;
  }
  static constexpr std::size_t kTcpOverheadBytes = 40;  // IPv4 + TCP headers
};

class TcpTransport;

// Client end of an established connection.  Handles are shared_ptrs owned by
// the transport; destroying the last handle closes the connection.
class TcpConnection {
  APE_SHARD_CONTEXT(net);

 public:
  using ResponseHandler = std::function<void(Result<TcpMessage>)>;

  // Ships a request to the server and hands the (asynchronous) response to
  // `on_response`.  One outstanding exchange per call; pipelining is
  // permitted (responses come back in order of server completion).
  void send_request(TcpMessage request, ResponseHandler on_response);

  [[nodiscard]] NodeId client_node() const noexcept { return client_; }
  [[nodiscard]] Endpoint server_endpoint() const noexcept { return server_ep_; }
  [[nodiscard]] bool open() const noexcept { return open_; }
  void close();

 private:
  friend class TcpTransport;
  TcpConnection(TcpTransport& transport, std::uint64_t id, NodeId client, NodeId server,
                Endpoint server_ep)
      : transport_(transport), id_(id), client_(client), server_(server), server_ep_(server_ep) {}

  APE_SHARD_LOCAL(net) TcpTransport& transport_;
  APE_SHARD_LOCAL(net) std::uint64_t id_;
  APE_SHARD_LOCAL(net) NodeId client_;
  APE_SHARD_LOCAL(net) NodeId server_;
  APE_SHARD_LOCAL(net) Endpoint server_ep_;
  APE_SHARD_LOCAL(net) bool open_ = true;
};

using TcpConnectionPtr = std::shared_ptr<TcpConnection>;

// Server-side responder: the request handler calls it (possibly much later,
// after upstream work) to ship the response back.
using TcpResponder = std::function<void(TcpMessage)>;

// Server request handler bound to (node, port): (request, peer, respond).
using TcpRequestHandler =
    std::function<void(const TcpMessage& request, Endpoint peer, TcpResponder respond)>;

class TcpTransport {
  APE_SHARD_CONTEXT(net);

 public:
  explicit TcpTransport(Network& network);
  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  void listen(NodeId node, Port port, TcpRequestHandler handler);
  void stop_listening(NodeId node, Port port);

  using ConnectHandler = std::function<void(Result<TcpConnectionPtr>)>;

  // Establishes a connection from `client` to `server`.  Failure modes:
  //  - unknown IP / no route:  error after `connect_timeout`,
  //  - nothing listening:      RST, error after one RTT.
  void connect(NodeId client, Endpoint server, ConnectHandler on_connected);

  void set_connect_timeout(sim::Duration timeout) noexcept { connect_timeout_ = timeout; }

  // Nullable span sink: connect() records a "net.connect" span parented on
  // the ambient trace context (pushed by the caller around its fetch).
  void set_observer(obs::Observer* observer) noexcept { observer_ = observer; }

  // Live connections where `node` is the server side — a memory-model input
  // (per-connection socket state on the AP).
  [[nodiscard]] std::size_t server_connection_count(NodeId node) const;

  struct Counters {
    std::size_t connects_attempted = 0;
    std::size_t connects_established = 0;
    std::size_t connects_refused = 0;
    std::size_t connects_timed_out = 0;
    std::size_t requests_sent = 0;
    std::size_t responses_delivered = 0;
  };
  [[nodiscard]] const Counters& counters() const noexcept { return counters_; }
  [[nodiscard]] Network& network() noexcept { return network_; }

 private:
  friend class TcpConnection;

  void route_request(TcpConnection& conn, TcpMessage request,
                     TcpConnection::ResponseHandler on_response);
  void on_connection_closed(const TcpConnection& conn);
  [[nodiscard]] obs::SpanLog* spans() const {
    return observer_ == nullptr ? nullptr : &observer_->spans();
  }

  [[nodiscard]] std::uint64_t listen_key(NodeId node, Port port) const noexcept {
    return (std::uint64_t{node.value} << 16) | port;
  }

  APE_SHARD_LOCAL(net) Network& network_;
  APE_SHARD_SHARED obs::Observer* observer_ = nullptr;
  APE_SHARD_LOCAL(net) sim::Duration connect_timeout_ = sim::milliseconds(3000);
  APE_SHARD_LOCAL(net) std::unordered_map<std::uint64_t, TcpRequestHandler> listeners_;
  APE_SHARD_LOCAL(net) std::unordered_map<NodeId, std::size_t> server_conn_count_;
  APE_SHARD_LOCAL(net) std::uint64_t next_conn_id_ = 1;
  APE_SHARD_LOCAL(net) Counters counters_;
};

}  // namespace ape::net

// ape-lint: hot-path
#include "net/network.hpp"

#include <cassert>
#include <sstream>
#include <utility>

namespace ape::net {

std::string IpAddress::to_string() const {
  std::ostringstream os;
  os << ((v4 >> 24) & 0xFF) << '.' << ((v4 >> 16) & 0xFF) << '.' << ((v4 >> 8) & 0xFF) << '.'
     << (v4 & 0xFF);
  return os.str();
}

Result<IpAddress> IpAddress::parse(const std::string& dotted) {
  std::uint32_t octets[4];
  std::size_t pos = 0;
  for (int i = 0; i < 4; ++i) {
    if (pos >= dotted.size()) return make_error<IpAddress>("truncated IPv4 literal");
    std::size_t consumed = 0;
    unsigned long value = 0;
    try {
      value = std::stoul(dotted.substr(pos), &consumed, 10);
    } catch (...) {
      return make_error<IpAddress>("invalid IPv4 octet");
    }
    if (consumed == 0 || value > 255) return make_error<IpAddress>("invalid IPv4 octet");
    octets[i] = static_cast<std::uint32_t>(value);
    pos += consumed;
    if (i < 3) {
      if (pos >= dotted.size() || dotted[pos] != '.') {
        return make_error<IpAddress>("expected '.' in IPv4 literal");
      }
      ++pos;
    }
  }
  if (pos != dotted.size()) return make_error<IpAddress>("trailing characters in IPv4 literal");
  return IpAddress{(octets[0] << 24) | (octets[1] << 16) | (octets[2] << 8) | octets[3]};
}

std::string Endpoint::to_string() const {
  return ip.to_string() + ":" + std::to_string(port);
}

Network::Network(sim::Simulator& sim, Topology& topology) : sim_(sim), topology_(topology) {}

void Network::assign_ip(NodeId node, IpAddress ip) {
  assert(!ip_to_node_.contains(ip) && "IP already assigned");
  assert(!node_to_ip_.contains(node) && "node already has an IP");
  ip_to_node_.emplace(ip, node);
  node_to_ip_.emplace(node, ip);
}

std::optional<NodeId> Network::owner_of(IpAddress ip) const {
  auto it = ip_to_node_.find(ip);
  if (it == ip_to_node_.end()) return std::nullopt;
  return it->second;
}

std::optional<IpAddress> Network::ip_of(NodeId node) const {
  auto it = node_to_ip_.find(node);
  if (it == node_to_ip_.end()) return std::nullopt;
  return it->second;
}

void Network::bind_udp(NodeId node, Port port, DatagramHandler handler) {
  assert(handler);
  udp_bindings_[bind_key(node, port)] = std::move(handler);
}

void Network::unbind_udp(NodeId node, Port port) {
  udp_bindings_.erase(bind_key(node, port));
}

std::optional<sim::Duration> Network::transfer_delay(NodeId from, NodeId to,
                                                     std::size_t bytes) const {
  const auto info = topology_.path(from, to);
  if (!info) return std::nullopt;
  const sim::Duration serialize =
      info->bottleneck_bandwidth > 0.0
          ? sim::seconds(static_cast<double>(bytes) / info->bottleneck_bandwidth)
          : sim::Duration{0};
  return info->one_way_latency + serialize;
}

bool Network::send_datagram(NodeId from, Port source_port, Endpoint to, Payload payload) {
  ++counters_.datagrams_sent;
  const auto source_ip = ip_of(from);
  const auto dest_node = owner_of(to.ip);
  if (!source_ip || !dest_node) {
    ++counters_.datagrams_dropped;
    return false;
  }

  Datagram dgram;
  dgram.source = Endpoint{*source_ip, source_port};
  dgram.destination = to;
  dgram.payload = std::move(payload);

  const auto delay = transfer_delay(from, *dest_node, dgram.size_bytes());
  if (!delay) {
    ++counters_.datagrams_dropped;
    return false;
  }

  const NodeId target = *dest_node;
  std::uint32_t slot;
  if (free_slot_ != kNoSlot) {
    slot = free_slot_;
    free_slot_ = in_flight_[slot].next_free;
    in_flight_[slot].next_free = kNoSlot;
    in_flight_[slot].dgram = std::move(dgram);
  } else {
    slot = static_cast<std::uint32_t>(in_flight_.size());
    in_flight_.push_back(InFlight{std::move(dgram), kNoSlot});
  }
  sim_.schedule_in(*delay, [this, target, slot] { deliver(target, slot); });
  return true;
}

void Network::deliver(NodeId target, std::uint32_t slot) {
  // Move the datagram out before invoking the handler: handlers routinely
  // send datagrams of their own, which can grow (and reallocate) the
  // in-flight arena, so they must never see arena memory directly.
  Datagram d = std::move(in_flight_[slot].dgram);
  auto it = udp_bindings_.find(bind_key(target, d.destination.port));
  if (it == udp_bindings_.end()) {
    ++counters_.datagrams_dropped;
  } else {
    ++counters_.datagrams_delivered;
    it->second(d);
  }
  // Fresh indexed access — re-entrant sends may have moved the vector.
  InFlight& parked = in_flight_[slot];
  parked.next_free = free_slot_;
  free_slot_ = slot;
}

}  // namespace ape::net

// Hit/miss accounting, split by priority class — Tables IV-VI report both
// the average hit ratio and the hit ratio restricted to high-priority
// objects.
#pragma once

#include <cstddef>

namespace ape::cache {

class CacheStatistics {
 public:
  void record_hit(int priority);
  void record_miss(int priority);
  void record_delegation(int priority);
  // One periodic expiry sweep completed, reclaiming `bytes` (satellite
  // accounting for ApRuntime's sweep event; 0-byte sweeps still count).
  void record_sweep(std::size_t bytes) noexcept {
    ++sweeps_;
    sweep_reclaimed_bytes_ += bytes;
  }

  [[nodiscard]] std::size_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::size_t misses() const noexcept { return misses_ + delegations_; }
  [[nodiscard]] std::size_t delegations() const noexcept { return delegations_; }
  [[nodiscard]] std::size_t lookups() const noexcept { return hits_ + misses_ + delegations_; }
  [[nodiscard]] std::size_t sweeps() const noexcept { return sweeps_; }
  [[nodiscard]] std::size_t sweep_reclaimed_bytes() const noexcept {
    return sweep_reclaimed_bytes_;
  }

  // Hit ratio over all lookups; 0 when no lookups yet.
  [[nodiscard]] double hit_ratio() const noexcept;
  // Hit ratio over lookups for high-priority (>= 2) objects only.
  [[nodiscard]] double high_priority_hit_ratio() const noexcept;

  void reset();

 private:
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
  std::size_t delegations_ = 0;
  std::size_t high_hits_ = 0;
  std::size_t high_lookups_ = 0;
  std::size_t sweeps_ = 0;
  std::size_t sweep_reclaimed_bytes_ = 0;
};

}  // namespace ape::cache

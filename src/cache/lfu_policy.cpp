#include "cache/lfu_policy.hpp"

#include <algorithm>

#include "common/ordered.hpp"

namespace ape::cache {

void LfuPolicy::on_insert(const CacheEntry& entry) {
  meta_[entry.key] = Meta{1, ++tick_};
}

void LfuPolicy::on_access(const CacheEntry& entry) {
  auto& m = meta_[entry.key];
  ++m.frequency;
  m.last_touch = ++tick_;
}

void LfuPolicy::on_erase(const std::string& key) {
  meta_.erase(key);
}

std::optional<std::vector<std::string>> LfuPolicy::select_victims(const CacheStore& store,
                                                                  const CacheEntry& /*incoming*/,
                                                                  std::size_t bytes_needed) {
  // Sort candidates by (frequency asc, last_touch asc); last_touch ticks are
  // unique, so the order is total.  The key-sorted snapshot keeps the walk
  // off the raw hash order.
  auto candidates = common::sorted_items(meta_);
  std::sort(candidates.begin(), candidates.end(), [](const auto& a, const auto& b) {
    if (a.second->frequency != b.second->frequency) {
      return a.second->frequency < b.second->frequency;
    }
    return a.second->last_touch < b.second->last_touch;
  });

  std::vector<std::string> victims;
  std::size_t freed = 0;
  for (const auto& [key, _] : candidates) {
    if (freed >= bytes_needed) break;
    const CacheEntry* entry = store.lookup_any(*key);
    if (entry == nullptr) continue;
    freed += entry->size_bytes;
    victims.push_back(*key);
  }
  if (freed < bytes_needed) return std::nullopt;
  return victims;
}

}  // namespace ape::cache

// First-in-first-out eviction — an extra ablation point beyond the paper's
// LRU baseline (used by bench_micro_cache and the policy property tests).
#pragma once

#include <deque>
#include <unordered_set>

#include "cache/object_store.hpp"

namespace ape::cache {

class FifoPolicy final : public EvictionPolicy {
 public:
  void on_insert(const CacheEntry& entry) override;
  void on_access(const CacheEntry& /*entry*/) override {}
  void on_erase(const std::string& key) override;
  [[nodiscard]] std::optional<std::vector<std::string>> select_victims(
      const CacheStore& store, const CacheEntry& incoming, std::size_t bytes_needed) override;
  [[nodiscard]] std::string name() const override { return "FIFO"; }

 private:
  std::deque<std::string> order_;  // front = oldest
  std::unordered_set<std::string> erased_;  // lazy removals
};

}  // namespace ape::cache

// Greedy-Dual-Size-Frequency (Cherkasova '98) — the classic web-cache
// eviction algorithm that, like PACM, is size- and cost-aware but has no
// notion of developer priority or fairness.  Included as the strongest
// non-PACM ablation point for the cache-management benches.
//
//   H(d) = L + frequency(d) * cost(d) / size(d)
//
// where L is the "inflation" value of the last eviction; the entry with
// the lowest H is evicted first.  cost(d) = observed fetch latency (ms).
#pragma once

#include <map>
#include <unordered_map>

#include "cache/object_store.hpp"

namespace ape::cache {

class GdsfPolicy final : public EvictionPolicy {
 public:
  void on_insert(const CacheEntry& entry) override;
  void on_access(const CacheEntry& entry) override;
  void on_erase(const std::string& key) override;
  [[nodiscard]] std::optional<std::vector<std::string>> select_victims(
      const CacheStore& store, const CacheEntry& incoming, std::size_t bytes_needed) override;
  [[nodiscard]] std::string name() const override { return "GDSF"; }

  [[nodiscard]] double inflation() const noexcept { return inflation_; }

 private:
  struct Meta {
    double h = 0.0;
    std::uint64_t frequency = 0;
  };

  [[nodiscard]] static double value_of(const CacheEntry& entry, std::uint64_t frequency,
                                       double inflation) noexcept;

  std::unordered_map<std::string, Meta> meta_;
  double inflation_ = 0.0;  // L
};

}  // namespace ape::cache

#include "cache/lru_policy.hpp"

namespace ape::cache {

void LruPolicy::touch(const std::string& key) {
  if (auto it = index_.find(key); it != index_.end()) {
    order_.erase(it->second);
  }
  order_.push_front(key);
  index_[key] = order_.begin();
}

void LruPolicy::on_insert(const CacheEntry& entry) {
  touch(entry.key);
}

void LruPolicy::on_access(const CacheEntry& entry) {
  touch(entry.key);
}

void LruPolicy::on_erase(const std::string& key) {
  if (auto it = index_.find(key); it != index_.end()) {
    order_.erase(it->second);
    index_.erase(it);
  }
}

std::optional<std::vector<std::string>> LruPolicy::select_victims(const CacheStore& store,
                                                                  const CacheEntry& /*incoming*/,
                                                                  std::size_t bytes_needed) {
  std::vector<std::string> victims;
  std::size_t freed = 0;
  // Walk from the least recently used end.
  for (auto it = order_.rbegin(); it != order_.rend() && freed < bytes_needed; ++it) {
    const CacheEntry* entry = store.lookup_any(*it);
    if (entry == nullptr) continue;  // store/index drift should not happen
    freed += entry->size_bytes;
    victims.push_back(*it);
  }
  if (freed < bytes_needed) return std::nullopt;  // cannot free enough
  return victims;
}

}  // namespace ape::cache

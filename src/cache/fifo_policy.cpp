#include "cache/fifo_policy.hpp"

namespace ape::cache {

void FifoPolicy::on_insert(const CacheEntry& entry) {
  erased_.erase(entry.key);
  order_.push_back(entry.key);
}

void FifoPolicy::on_erase(const std::string& key) {
  erased_.insert(key);
}

std::optional<std::vector<std::string>> FifoPolicy::select_victims(const CacheStore& store,
                                                                   const CacheEntry& /*incoming*/,
                                                                   std::size_t bytes_needed) {
  // Compact lazily-removed keys off the front as we scan.
  while (!order_.empty() && erased_.contains(order_.front())) {
    erased_.erase(order_.front());
    order_.pop_front();
  }
  std::vector<std::string> victims;
  std::size_t freed = 0;
  for (const auto& key : order_) {
    if (freed >= bytes_needed) break;
    if (erased_.contains(key)) continue;
    const CacheEntry* entry = store.lookup_any(key);
    if (entry == nullptr) continue;
    freed += entry->size_bytes;
    victims.push_back(key);
  }
  if (freed < bytes_needed) return std::nullopt;
  return victims;
}

}  // namespace ape::cache

// Least-frequently-used eviction (ties broken by recency) — second extra
// ablation point for the cache-policy comparison benches.
#pragma once

#include <unordered_map>

#include "cache/object_store.hpp"

namespace ape::cache {

class LfuPolicy final : public EvictionPolicy {
 public:
  void on_insert(const CacheEntry& entry) override;
  void on_access(const CacheEntry& entry) override;
  void on_erase(const std::string& key) override;
  [[nodiscard]] std::optional<std::vector<std::string>> select_victims(
      const CacheStore& store, const CacheEntry& incoming, std::size_t bytes_needed) override;
  [[nodiscard]] std::string name() const override { return "LFU"; }

 private:
  struct Meta {
    std::uint64_t frequency = 0;
    std::uint64_t last_touch = 0;  // logical tick for tie-break
  };
  std::unordered_map<std::string, Meta> meta_;
  std::uint64_t tick_ = 0;
};

}  // namespace ape::cache

// Capacity-bounded object store with pluggable eviction.
//
// The store enforces the byte budget; the policy chooses victims.  PACM
// (core/pacm_policy) and LRU/FIFO/LFU (here) implement the same interface,
// which is what lets the evaluation swap cache-management algorithms while
// keeping every other moving part identical (paper Sec. V-C).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cache/entry.hpp"

namespace ape::cache {

class CacheStore;

class EvictionPolicy {
 public:
  virtual ~EvictionPolicy() = default;

  virtual void on_insert(const CacheEntry& entry) = 0;
  virtual void on_access(const CacheEntry& entry) = 0;
  virtual void on_erase(const std::string& key) = 0;

  // Chooses keys to evict so that `bytes_needed` become free for
  // `incoming`.  Returning nullopt rejects the insertion instead (the
  // incoming object is judged not worth the evictions).  The store
  // guarantees `incoming.size_bytes <= capacity`.
  [[nodiscard]] virtual std::optional<std::vector<std::string>> select_victims(
      const CacheStore& store, const CacheEntry& incoming, std::size_t bytes_needed) = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

// Why an entry left the store.  The flash tier demotes on Evicted only:
// expired/replaced/erased copies are dead data nobody should pay flash
// writes for (store/tiered_store.hpp).
enum class RemovalCause {
  Evicted,   // capacity pressure, chosen by the eviction policy
  Expired,   // TTL ran out (lazy get-side erase or sweep_expired)
  Replaced,  // same-key insert superseded it
  Erased,    // explicit erase()
  Cleared,   // store-wide clear()
};

class CacheStore {
 public:
  CacheStore(std::size_t capacity_bytes, std::unique_ptr<EvictionPolicy> policy);

  enum class InsertOutcome { Inserted, Rejected, TooLarge };

  // Inserts (replacing any same-key entry), evicting per policy if needed.
  InsertOutcome insert(CacheEntry entry, sim::Time now);

  // Valid (unexpired) lookup; records the access. Expired entries are
  // erased lazily here.
  [[nodiscard]] const CacheEntry* get(const std::string& key, sim::Time now);
  // Lookup without access side effects (for cache-status probes).
  [[nodiscard]] const CacheEntry* peek(const std::string& key, sim::Time now) const;
  // Lookup ignoring expiry (policy bookkeeping needs entry sizes even when
  // an entry happens to be stale).
  [[nodiscard]] const CacheEntry* lookup_any(const std::string& key) const;

  bool erase(const std::string& key);
  // Drops every expired entry; returns bytes reclaimed.
  std::size_t sweep_expired(sim::Time now);
  void clear();

  [[nodiscard]] std::size_t capacity_bytes() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t used_bytes() const noexcept { return used_; }
  [[nodiscard]] std::size_t free_bytes() const noexcept { return capacity_ - used_; }
  [[nodiscard]] std::size_t entry_count() const noexcept { return entries_.size(); }

  void for_each(const std::function<void(const CacheEntry&)>& fn) const;
  [[nodiscard]] std::vector<const CacheEntry*> entries() const;

  [[nodiscard]] const EvictionPolicy& policy() const noexcept { return *policy_; }
  [[nodiscard]] EvictionPolicy& policy() noexcept { return *policy_; }

  [[nodiscard]] std::size_t evictions() const noexcept { return evictions_; }
  [[nodiscard]] std::size_t rejections() const noexcept { return rejections_; }

  // Fires for every entry that leaves the store, with the reason.  Wi-Cache
  // uses this to keep its central controller's registry in sync with the
  // AP's cache; the APE flash tier uses it to demote eviction victims.
  void set_removal_listener(std::function<void(const CacheEntry&, RemovalCause)> listener) {
    removal_listener_ = std::move(listener);
  }

  // When set, inserts do not eagerly sweep expired entries; stale copies
  // stay resident (still invisible to get/peek) until capacity pressure
  // evicts them — the revalidation extension refreshes them with
  // conditional requests instead of full refetches.
  void set_retain_expired(bool retain) noexcept { retain_expired_ = retain; }
  [[nodiscard]] bool retain_expired() const noexcept { return retain_expired_; }

 private:
  void erase_internal(const std::string& key, RemovalCause cause);

  std::function<void(const CacheEntry&, RemovalCause)> removal_listener_;

  std::size_t capacity_;
  std::size_t used_ = 0;
  std::unique_ptr<EvictionPolicy> policy_;
  // Ordered by key: for_each/entries() feed eviction solvers and metric
  // exports, so iteration order must be canonical (ape-lint: unordered-iter).
  std::map<std::string, CacheEntry> entries_;
  std::size_t evictions_ = 0;
  std::size_t rejections_ = 0;
  bool retain_expired_ = false;
};

}  // namespace ape::cache

#include "cache/gdsf_policy.hpp"

#include <algorithm>

#include "common/ordered.hpp"

namespace ape::cache {

double GdsfPolicy::value_of(const CacheEntry& entry, std::uint64_t frequency,
                            double inflation) noexcept {
  const double cost = std::max(sim::to_millis(entry.fetch_latency), 1.0);
  const double size = std::max(static_cast<double>(entry.size_bytes), 1.0);
  return inflation + static_cast<double>(frequency) * cost / size;
}

void GdsfPolicy::on_insert(const CacheEntry& entry) {
  Meta meta;
  meta.frequency = 1;
  meta.h = value_of(entry, meta.frequency, inflation_);
  meta_[entry.key] = meta;
}

void GdsfPolicy::on_access(const CacheEntry& entry) {
  auto it = meta_.find(entry.key);
  if (it == meta_.end()) return;
  ++it->second.frequency;
  it->second.h = value_of(entry, it->second.frequency, inflation_);
}

void GdsfPolicy::on_erase(const std::string& key) {
  meta_.erase(key);
}

std::optional<std::vector<std::string>> GdsfPolicy::select_victims(
    const CacheStore& store, const CacheEntry& /*incoming*/, std::size_t bytes_needed) {
  // Sort candidates by H ascending; evict the cheapest until freed.  The
  // stable sort over the key-sorted snapshot breaks equal-H ties by key, so
  // victim choice never depends on hash order.
  auto candidates = common::sorted_items(meta_);
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const auto& a, const auto& b) { return a.second->h < b.second->h; });

  std::vector<std::string> victims;
  std::size_t freed = 0;
  double last_h = inflation_;
  for (const auto& [key, meta] : candidates) {
    if (freed >= bytes_needed) break;
    const CacheEntry* entry = store.lookup_any(*key);
    if (entry == nullptr) continue;
    freed += entry->size_bytes;
    last_h = meta->h;
    victims.push_back(*key);
  }
  if (freed < bytes_needed) return std::nullopt;
  // Classic GDSF: inflate L to the value of the last evicted entry so
  // newly inserted objects compete fairly with long-lived ones.
  inflation_ = std::max(inflation_, last_h);
  return victims;
}

}  // namespace ape::cache

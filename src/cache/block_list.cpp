#include "cache/block_list.hpp"

namespace ape::cache {

BlockList::BlockList(std::size_t size_threshold_bytes) : threshold_(size_threshold_bytes) {}

}  // namespace ape::cache

#include "cache/cache_stats.hpp"

namespace ape::cache {

void CacheStatistics::record_hit(int priority) {
  ++hits_;
  if (priority >= 2) {
    ++high_hits_;
    ++high_lookups_;
  }
}

void CacheStatistics::record_miss(int priority) {
  ++misses_;
  if (priority >= 2) ++high_lookups_;
}

void CacheStatistics::record_delegation(int priority) {
  ++delegations_;
  if (priority >= 2) ++high_lookups_;
}

double CacheStatistics::hit_ratio() const noexcept {
  const std::size_t total = lookups();
  return total == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(total);
}

double CacheStatistics::high_priority_hit_ratio() const noexcept {
  return high_lookups_ == 0 ? 0.0
                            : static_cast<double>(high_hits_) /
                                  static_cast<double>(high_lookups_);
}

void CacheStatistics::reset() {
  hits_ = misses_ = delegations_ = high_hits_ = high_lookups_ = 0;
  sweeps_ = sweep_reclaimed_bytes_ = 0;
}

}  // namespace ape::cache

#include "cache/object_store.hpp"

#include <cassert>
#include <utility>

namespace ape::cache {

CacheStore::CacheStore(std::size_t capacity_bytes, std::unique_ptr<EvictionPolicy> policy)
    : capacity_(capacity_bytes), policy_(std::move(policy)) {
  assert(policy_ && "a CacheStore needs an eviction policy");
}

CacheStore::InsertOutcome CacheStore::insert(CacheEntry entry, sim::Time now) {
  if (entry.size_bytes > capacity_) return InsertOutcome::TooLarge;

  // Replacing an existing entry frees its bytes first.
  if (auto it = entries_.find(entry.key); it != entries_.end()) {
    erase_internal(it->first, RemovalCause::Replaced);
  }
  // Expired entries are dead weight (unless retained for revalidation);
  // reclaim before asking the policy.
  if (!retain_expired_ && used_ + entry.size_bytes > capacity_) sweep_expired(now);

  if (used_ + entry.size_bytes > capacity_) {
    const std::size_t needed = used_ + entry.size_bytes - capacity_;
    auto victims = policy_->select_victims(*this, entry, needed);
    if (!victims) {
      ++rejections_;
      return InsertOutcome::Rejected;
    }
    std::size_t freed = 0;
    for (const auto& key : *victims) {
      auto it = entries_.find(key);
      if (it == entries_.end()) continue;
      freed += it->second.size_bytes;
      erase_internal(key, RemovalCause::Evicted);
      ++evictions_;
    }
    if (freed < needed) {
      // Policy under-delivered; reject rather than blow the byte budget.
      ++rejections_;
      return InsertOutcome::Rejected;
    }
  }

  entry.inserted = now;
  entry.last_access = now;
  used_ += entry.size_bytes;
  policy_->on_insert(entry);
  entries_.emplace(entry.key, std::move(entry));
  return InsertOutcome::Inserted;
}

const CacheEntry* CacheStore::get(const std::string& key, sim::Time now) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return nullptr;
  if (it->second.expired_at(now)) {
    erase_internal(key, RemovalCause::Expired);
    return nullptr;
  }
  it->second.last_access = now;
  ++it->second.access_count;
  policy_->on_access(it->second);
  return &it->second;
}

const CacheEntry* CacheStore::peek(const std::string& key, sim::Time now) const {
  auto it = entries_.find(key);
  if (it == entries_.end() || it->second.expired_at(now)) return nullptr;
  return &it->second;
}

const CacheEntry* CacheStore::lookup_any(const std::string& key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

bool CacheStore::erase(const std::string& key) {
  if (!entries_.contains(key)) return false;
  erase_internal(key, RemovalCause::Erased);
  return true;
}

void CacheStore::erase_internal(const std::string& key, RemovalCause cause) {
  auto it = entries_.find(key);
  assert(it != entries_.end());
  assert(used_ >= it->second.size_bytes);
  used_ -= it->second.size_bytes;
  policy_->on_erase(key);
  if (removal_listener_) removal_listener_(it->second, cause);
  entries_.erase(it);
}

std::size_t CacheStore::sweep_expired(sim::Time now) {
  std::size_t reclaimed = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.expired_at(now)) {
      reclaimed += it->second.size_bytes;
      used_ -= it->second.size_bytes;
      policy_->on_erase(it->first);
      if (removal_listener_) removal_listener_(it->second, RemovalCause::Expired);
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  return reclaimed;
}

void CacheStore::clear() {
  for (const auto& [key, entry] : entries_) {
    policy_->on_erase(key);
    if (removal_listener_) removal_listener_(entry, RemovalCause::Cleared);
  }
  entries_.clear();
  used_ = 0;
}

void CacheStore::for_each(const std::function<void(const CacheEntry&)>& fn) const {
  for (const auto& [_, entry] : entries_) fn(entry);
}

std::vector<const CacheEntry*> CacheStore::entries() const {
  std::vector<const CacheEntry*> out;
  out.reserve(entries_.size());
  for (const auto& [_, entry] : entries_) out.push_back(&entry);
  return out;
}

}  // namespace ape::cache

// The unit of cached state on an AP (and in baselines).
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.hpp"

namespace ape::cache {

struct CacheEntry {
  std::string key;                 // base URL (or its hash, rendered)
  std::size_t size_bytes = 0;
  std::uint32_t app_id = 0;
  int priority = 1;                // developer-declared, 1 = low / 2 = high
  sim::Time expires{};             // absolute expiry (insert time + TTL)
  sim::Duration fetch_latency{0};  // observed cost of fetching from upstream
  sim::Time inserted{};
  sim::Time last_access{};
  std::uint64_t access_count = 0;
  std::string etag;  // validator for conditional refresh (revalidation ext.)

  [[nodiscard]] bool expired_at(sim::Time now) const noexcept { return expires <= now; }
  [[nodiscard]] sim::Duration remaining_ttl(sim::Time now) const noexcept {
    return expires <= now ? sim::Duration{0} : expires - now;
  }
};

}  // namespace ape::cache

// Least-recently-used eviction — the cache management of Wi-Cache and the
// APE-CACHE-LRU ablation baseline (paper Sec. V-A).
#pragma once

#include <list>
#include <unordered_map>

#include "cache/object_store.hpp"

namespace ape::cache {

class LruPolicy final : public EvictionPolicy {
 public:
  void on_insert(const CacheEntry& entry) override;
  void on_access(const CacheEntry& entry) override;
  void on_erase(const std::string& key) override;
  [[nodiscard]] std::optional<std::vector<std::string>> select_victims(
      const CacheStore& store, const CacheEntry& incoming, std::size_t bytes_needed) override;
  [[nodiscard]] std::string name() const override { return "LRU"; }

 private:
  void touch(const std::string& key);

  std::list<std::string> order_;  // front = most recent
  std::unordered_map<std::string, std::list<std::string>::iterator> index_;
};

}  // namespace ape::cache

// The AP's block list (paper Sec. IV-B1): objects the AP has delegated
// before but decided never to cache — primarily anything larger than the
// size threshold (500 kB in the reference implementation).  Blocked URLs
// answer cache lookups with flag = Cache-Miss so clients go straight to
// the edge.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>

namespace ape::cache {

class BlockList {
 public:
  explicit BlockList(std::size_t size_threshold_bytes = 500 * 1000);

  [[nodiscard]] bool should_block(std::size_t object_size_bytes) const noexcept {
    return object_size_bytes > threshold_;
  }

  void block(const std::string& key) { blocked_.insert(key); }
  void unblock(const std::string& key) { blocked_.erase(key); }
  [[nodiscard]] bool contains(const std::string& key) const { return blocked_.contains(key); }
  [[nodiscard]] std::size_t size() const noexcept { return blocked_.size(); }
  [[nodiscard]] std::size_t threshold_bytes() const noexcept { return threshold_; }
  void clear() { blocked_.clear(); }

 private:
  std::size_t threshold_;
  std::unordered_set<std::string> blocked_;
};

}  // namespace ape::cache

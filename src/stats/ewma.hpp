// Exponentially-weighted moving average used by PACM's request-frequency
// tracker (paper Sec. IV-C): R(a) = (1 - alpha) * R'(a) + alpha * r_a(dt).
//
// Note the paper weights the *newest* observation by alpha (0.7 in the
// reference implementation), i.e. recency-heavy.
#pragma once

namespace ape::stats {

class Ewma {
 public:
  explicit Ewma(double alpha = 0.7) noexcept;

  // Folds one observation in.  The first observation seeds the average.
  void observe(double value) noexcept;

  [[nodiscard]] double value() const noexcept { return value_; }
  [[nodiscard]] bool seeded() const noexcept { return seeded_; }
  [[nodiscard]] double alpha() const noexcept { return alpha_; }

  void reset() noexcept;

 private:
  double alpha_;
  double value_ = 0.0;
  bool seeded_ = false;
};

}  // namespace ape::stats

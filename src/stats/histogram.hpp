// Sample-collecting histogram with exact percentiles.
//
// The evaluation harness records per-request latencies; experiment tables
// need mean / p50 / p95 / p99 and occasionally full distributions.  Samples
// are kept exactly (double) — experiment sample counts are bounded (<1e7),
// so exact order statistics are affordable and avoid HDR bucketing error.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ape::stats {

class Histogram {
 public:
  Histogram() = default;
  explicit Histogram(std::string unit) : unit_(std::move(unit)) {}

  void record(double value);
  // Appends `other`'s samples.  Units: an unlabeled histogram adopts
  // `other`'s unit; when both are labeled and disagree, the receiver keeps
  // its own unit (values are merged as-is — callers mixing units get the
  // receiver's label, never a silent relabel of existing samples).
  void merge(const Histogram& other);
  void clear();

  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] double min() const noexcept;
  [[nodiscard]] double max() const noexcept;
  [[nodiscard]] double stddev() const noexcept;

  // Exact order statistic with linear interpolation; q in [0, 1]
  // (out-of-range q is clamped).  Returns 0 for an empty histogram.
  [[nodiscard]] double percentile(double q) const;

  [[nodiscard]] const std::string& unit() const noexcept { return unit_; }
  [[nodiscard]] const std::vector<double>& samples() const noexcept { return samples_; }

  // Equal-width bucket counts over [min, max] — used by example binaries to
  // render quick ASCII distributions.
  [[nodiscard]] std::vector<std::size_t> buckets(std::size_t n_buckets) const;

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
  double sum_ = 0.0;
  std::string unit_;
};

}  // namespace ape::stats

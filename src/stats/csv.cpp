#include "stats/csv.hpp"

#include <ostream>

namespace ape::stats {

CsvWriter::CsvWriter(std::ostream& os) : os_(os) {}

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quote =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) os_ << ',';
    os_ << escape(cells[i]);
  }
  os_ << '\n';
}

}  // namespace ape::stats

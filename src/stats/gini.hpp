// Gini coefficient over per-app storage efficiency (paper Eq. 1):
//
//   F(A) = sum_x sum_y |C_x - C_y|  /  (2 * A * sum_x C_x)
//
// 0 = perfectly equal, ->1 = maximally unequal.  PACM constrains
// F(A) <= theta (0.4 by default).
#pragma once

#include <span>

namespace ape::stats {

// Returns 0.0 for empty input or when all values are zero (degenerate but
// "equal" allocations should never trip the fairness constraint).
[[nodiscard]] double gini(std::span<const double> values);

}  // namespace ape::stats

// Minimal RFC4180-style CSV writer; benches can optionally dump raw series
// (e.g. the Fig 2 / Fig 14 time series) next to the ASCII tables.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ape::stats {

class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os);

  void row(const std::vector<std::string>& cells);

  [[nodiscard]] static std::string escape(const std::string& cell);

 private:
  std::ostream& os_;
};

}  // namespace ape::stats

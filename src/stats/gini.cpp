#include "stats/gini.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace ape::stats {

double gini(std::span<const double> values) {
  const auto n = values.size();
  if (n == 0) return 0.0;

  // O(n log n) form: with x sorted ascending,
  //   sum_i sum_j |x_i - x_j| = 2 * sum_i (2i - n + 1) * x_i   (0-based i)
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());

  double total = 0.0;
  double weighted = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += sorted[i];
    weighted += (2.0 * static_cast<double>(i) - static_cast<double>(n) + 1.0) * sorted[i];
  }
  if (total <= 0.0) return 0.0;
  const double abs_diff_sum = 2.0 * weighted;
  return abs_diff_sum / (2.0 * static_cast<double>(n) * total);
}

}  // namespace ape::stats

#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ape::stats {

void Histogram::record(double value) {
  samples_.push_back(value);
  sum_ += value;
  sorted_valid_ = false;
}

void Histogram::merge(const Histogram& other) {
  if (unit_.empty()) unit_ = other.unit_;
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
  sum_ += other.sum_;
  sorted_valid_ = false;
}

void Histogram::clear() {
  samples_.clear();
  sorted_.clear();
  sorted_valid_ = false;
  sum_ = 0.0;
}

double Histogram::mean() const noexcept {
  return samples_.empty() ? 0.0 : sum_ / static_cast<double>(samples_.size());
}

double Histogram::min() const noexcept {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double Histogram::max() const noexcept {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double Histogram::stddev() const noexcept {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double v : samples_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

void Histogram::ensure_sorted() const {
  if (sorted_valid_) return;
  sorted_ = samples_;
  std::sort(sorted_.begin(), sorted_.end());
  sorted_valid_ = true;
}

double Histogram::percentile(double q) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  if (lo == hi) return sorted_[lo];
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

std::vector<std::size_t> Histogram::buckets(std::size_t n_buckets) const {
  std::vector<std::size_t> out(n_buckets, 0);
  if (samples_.empty() || n_buckets == 0) return out;
  const double lo = min();
  const double hi = max();
  const double width = (hi - lo) / static_cast<double>(n_buckets);
  if (width <= 0.0) {
    out[0] = samples_.size();
    return out;
  }
  for (double v : samples_) {
    auto idx = static_cast<std::size_t>((v - lo) / width);
    if (idx >= n_buckets) idx = n_buckets - 1;
    ++out[idx];
  }
  return out;
}

}  // namespace ape::stats

// Compact latency summary derived from a Histogram — the unit every
// experiment table row is built from.
#pragma once

#include <cstddef>
#include <string>

namespace ape::stats {

class Histogram;

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double min = 0.0;
  double max = 0.0;

  [[nodiscard]] static Summary of(const Histogram& h);
  [[nodiscard]] std::string to_string(int precision = 2) const;
};

}  // namespace ape::stats

#include "stats/summary.hpp"

#include <iomanip>
#include <sstream>

#include "stats/histogram.hpp"

namespace ape::stats {

Summary Summary::of(const Histogram& h) {
  Summary s;
  s.count = h.count();
  s.mean = h.mean();
  s.p50 = h.percentile(0.50);
  s.p95 = h.percentile(0.95);
  s.p99 = h.percentile(0.99);
  s.min = h.min();
  s.max = h.max();
  return s;
}

std::string Summary::to_string(int precision) const {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision);
  os << "n=" << count << " mean=" << mean << " p50=" << p50 << " p95=" << p95
     << " p99=" << p99 << " min=" << min << " max=" << max;
  return os.str();
}

}  // namespace ape::stats

#include "stats/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace ape::stats {

Table::Table(std::string title) : title_(std::move(title)) {}

Table& Table::header(std::vector<std::string> columns) {
  header_ = std::move(columns);
  return *this;
}

Table& Table::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::pct(double fraction, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << fraction * 100.0 << "%";
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths;
  auto grow = [&widths](const std::vector<std::string>& cells) {
    if (widths.size() < cells.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  grow(header_);
  for (const auto& r : rows_) grow(r);

  auto emit = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string{};
      os << ' ' << cell << std::string(widths[i] - cell.size(), ' ') << " |";
    }
    os << '\n';
  };
  auto rule = [&] {
    os << "+";
    for (std::size_t w : widths) os << std::string(w + 2, '-') << "+";
    os << '\n';
  };

  if (!title_.empty()) os << title_ << '\n';
  rule();
  if (!header_.empty()) {
    emit(header_);
    rule();
  }
  for (const auto& r : rows_) emit(r);
  rule();
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace ape::stats

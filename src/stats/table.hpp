// Aligned ASCII table printer — every bench binary renders its paper table
// through this so outputs are uniform and diffable.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ape::stats {

class Table {
 public:
  explicit Table(std::string title = {});

  Table& header(std::vector<std::string> columns);
  Table& row(std::vector<std::string> cells);

  // Convenience: formats doubles with fixed precision.
  [[nodiscard]] static std::string num(double v, int precision = 2);
  [[nodiscard]] static std::string pct(double fraction, int precision = 1);

  void print(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ape::stats

#include "stats/ewma.hpp"

#include <algorithm>

namespace ape::stats {

Ewma::Ewma(double alpha) noexcept : alpha_(std::clamp(alpha, 0.0, 1.0)) {}

void Ewma::observe(double value) noexcept {
  if (!seeded_) {
    value_ = value;
    seeded_ = true;
    return;
  }
  value_ = (1.0 - alpha_) * value_ + alpha_ * value;
}

void Ewma::reset() noexcept {
  value_ = 0.0;
  seeded_ = false;
}

}  // namespace ape::stats

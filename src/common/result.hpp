// Lightweight expected-style result for parse/codec paths.
//
// Wire decoding of attacker-controlled bytes (DNS messages, URLs) must not
// throw across module boundaries; it returns Result<T> instead.  We do not
// use std::expected to stay friendly to older toolchains found on embedded
// router SDKs (the deployment target the paper cares about).
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace ape {

struct Error {
  std::string message;
};

// The class itself is [[nodiscard]]: a dropped Result is a dropped error,
// which both the compiler (-Wunused-result) and ape-lint's discarded-result
// check reject.  Deliberate drops must say why via static_cast<void>.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}            // NOLINT(google-explicit-constructor)
  Result(Error error) : value_(std::move(error)) {}        // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const noexcept { return std::holds_alternative<T>(value_); }
  explicit operator bool() const noexcept { return ok(); }

  [[nodiscard]] T& value() & {
    assert(ok());
    return std::get<T>(value_);
  }
  [[nodiscard]] const T& value() const& {
    assert(ok());
    return std::get<T>(value_);
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return std::get<T>(std::move(value_));
  }
  [[nodiscard]] const Error& error() const {
    assert(!ok());
    return std::get<Error>(value_);
  }

  [[nodiscard]] T value_or(T fallback) const {
    return ok() ? std::get<T>(value_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> value_;
};

template <typename T>
[[nodiscard]] Result<T> make_error(std::string message) {
  return Result<T>(Error{std::move(message)});
}

}  // namespace ape

#pragma once

// Shard-ownership annotations (DESIGN.md §5i).
//
// The roadmap's deterministic-parallel-simulation direction (ROADMAP.md
// item 2) partitions runtime state into shards — one per AP plus a handful
// of singletons (controller, edge, origin, the network fabric itself).  The
// correctness contract is simple to state and impossible for a compiler to
// check: state owned by shard X may only be mutated by work running on
// shard X.  A callback scheduled from the AP shard that pokes a
// client-owned map would be a data race the moment shards run on different
// worker threads, even though it is perfectly fine under today's
// single-threaded calendar queue.
//
// These macros make the ownership story explicit *now*, while the
// simulator is still serial, so ape-lint's shard-ownership check can keep
// the invariant from regressing before parallelism lands:
//
//   class ApRuntime {
//     APE_SHARD_CONTEXT(ap);               // instances live on the AP shard
//     ...
//    private:
//     APE_SHARD_LOCAL(ap) CacheStats stats_;     // touched only by this shard
//     APE_SHARD_SHARED net::Network& network_;   // cross-shard by design
//   };
//
// APE_SHARD_CONTEXT(owner) names the shard the enclosing class's instances
// belong to.  Every trailing-underscore field must then carry either
// APE_SHARD_LOCAL(owner) — owner must equal the class's context — or
// APE_SHARD_SHARED for state that is legitimately reached from several
// shards and will need a synchronization story (a queue, a phase barrier)
// when parallelism arrives.  The closed owner set lives in
// tools/lint/lint_config.json ("shard_owners").
//
// All three macros compile to nothing (APE_SHARD_CONTEXT to a vacuous
// static_assert so it can carry the required trailing semicolon): the
// annotations exist for ape-lint and for readers, never for codegen, which
// is what keeps the committed bench baselines byte-identical.

#define APE_SHARD_CONTEXT(owner) \
  static_assert(true, "shard context: " #owner)

#define APE_SHARD_LOCAL(owner)

#define APE_SHARD_SHARED

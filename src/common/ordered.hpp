// Deterministic views over unordered containers.
//
// Hash-map iteration order depends on the hash seed, insertion history and
// bucket count — never on the keys alone — so any decision or export that
// walks an unordered container is nondeterministic.  ape-lint forbids such
// walks (check `unordered-iter`); this header is the sanctioned escape
// hatch: it snapshots the container and sorts by key, so every caller sees
// one canonical order.  The O(n log n) snapshot is the price of the
// byte-identical `ape.obs.v1` exports CI asserts.
#pragma once

#include <algorithm>
#include <type_traits>
#include <utility>
#include <vector>

namespace ape::common {

// Keys of a map or set, sorted ascending.  Works for ordered containers too
// (handy while a call site migrates between container types).
template <typename Container>
[[nodiscard]] std::vector<typename Container::key_type> sorted_keys(const Container& c) {
  std::vector<typename Container::key_type> keys;
  keys.reserve(c.size());
  for (const auto& item : c) {  // ape-lint: allow(unordered-iter) -- sorted below
    if constexpr (std::is_same_v<typename Container::key_type,
                                 typename Container::value_type>) {
      keys.push_back(item);  // set: value is the key
    } else {
      keys.push_back(item.first);
    }
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

// (key*, value*) pairs of a map, sorted by key.  Pointers stay valid while
// the map is not mutated; no keys or values are copied.
template <typename Map>
[[nodiscard]] std::vector<
    std::pair<const typename Map::key_type*, const typename Map::mapped_type*>>
sorted_items(const Map& map) {
  std::vector<std::pair<const typename Map::key_type*, const typename Map::mapped_type*>>
      items;
  items.reserve(map.size());
  for (const auto& [key, value] : map) {  // ape-lint: allow(unordered-iter) -- sorted below
    items.emplace_back(&key, &value);
  }
  std::sort(items.begin(), items.end(),
            [](const auto& a, const auto& b) { return *a.first < *b.first; });
  return items;
}

}  // namespace ape::common

#include "dns/message.hpp"

namespace ape::dns {

const ResourceRecord* DnsMessage::find_answer(RrType type) const noexcept {
  for (const auto& rr : answers) {
    if (rr.type == type) return &rr;
  }
  return nullptr;
}

const ResourceRecord* DnsMessage::find_additional(RrType type) const noexcept {
  for (const auto& rr : additionals) {
    if (rr.type == type) return &rr;
  }
  return nullptr;
}

std::vector<std::uint8_t> encode_a_rdata(net::IpAddress ip) {
  return {
      static_cast<std::uint8_t>(ip.v4 >> 24),
      static_cast<std::uint8_t>(ip.v4 >> 16),
      static_cast<std::uint8_t>(ip.v4 >> 8),
      static_cast<std::uint8_t>(ip.v4),
  };
}

Result<net::IpAddress> decode_a_rdata(const std::vector<std::uint8_t>& rdata) {
  if (rdata.size() != 4) return make_error<net::IpAddress>("A RDATA must be 4 bytes");
  return net::IpAddress{(std::uint32_t{rdata[0]} << 24) | (std::uint32_t{rdata[1]} << 16) |
                        (std::uint32_t{rdata[2]} << 8) | std::uint32_t{rdata[3]}};
}

std::vector<std::uint8_t> encode_cname_rdata(const DnsName& target) {
  // Uncompressed wire-format name; compression inside RDATA is legal for
  // CNAME but never required, and avoiding it keeps RDATA self-contained.
  std::vector<std::uint8_t> out;
  out.reserve(target.wire_length());
  for (const auto& label : target.labels()) {
    out.push_back(static_cast<std::uint8_t>(label.size()));
    out.insert(out.end(), label.begin(), label.end());
  }
  out.push_back(0);
  return out;
}

Result<DnsName> decode_cname_rdata(const std::vector<std::uint8_t>& rdata) {
  std::string dotted;
  std::size_t pos = 0;
  while (true) {
    if (pos >= rdata.size()) return make_error<DnsName>("truncated CNAME RDATA");
    const std::uint8_t len = rdata[pos++];
    if (len == 0) break;
    if ((len & 0xC0u) != 0) return make_error<DnsName>("compressed CNAME RDATA unsupported");
    if (pos + len > rdata.size()) return make_error<DnsName>("truncated CNAME label");
    if (!dotted.empty()) dotted += '.';
    dotted.append(reinterpret_cast<const char*>(rdata.data() + pos), len);
    pos += len;
  }
  return DnsName::parse(dotted);
}

ResourceRecord make_a_record(const DnsName& name, net::IpAddress ip, std::uint32_t ttl) {
  ResourceRecord rr;
  rr.name = name;
  rr.type = RrType::A;
  rr.rr_class = static_cast<std::uint16_t>(RrClass::In);
  rr.ttl = ttl;
  rr.rdata = encode_a_rdata(ip);
  return rr;
}

ResourceRecord make_cname_record(const DnsName& name, const DnsName& target, std::uint32_t ttl) {
  ResourceRecord rr;
  rr.name = name;
  rr.type = RrType::Cname;
  rr.rr_class = static_cast<std::uint16_t>(RrClass::In);
  rr.ttl = ttl;
  rr.rdata = encode_cname_rdata(target);
  return rr;
}

ResourceRecord make_opt_record(std::uint16_t udp_payload_size) {
  ResourceRecord rr;
  rr.name = DnsName{};  // root
  rr.type = RrType::Opt;
  rr.rr_class = udp_payload_size;  // OPT overloads CLASS as payload size
  rr.ttl = 0;                      // extended RCODE/flags, all zero
  return rr;
}

DnsMessage make_response_for(const DnsMessage& query, Rcode rcode) {
  DnsMessage resp;
  resp.header.id = query.header.id;
  resp.header.qr = true;
  resp.header.opcode = query.header.opcode;
  resp.header.rd = query.header.rd;
  resp.header.ra = true;
  resp.header.rcode = rcode;
  resp.questions = query.questions;
  return resp;
}

}  // namespace ape::dns

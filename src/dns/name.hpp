// Domain names as label sequences (RFC 1035 §3.1).
//
// Names are stored lowercased (DNS matching is case-insensitive) and
// validated: labels 1..63 bytes, total presentation length <= 253.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"

namespace ape::dns {

class DnsName {
 public:
  DnsName() = default;

  // Parses dotted presentation form ("www.apple.com", trailing dot ok).
  [[nodiscard]] static Result<DnsName> parse(std::string_view text);

  [[nodiscard]] const std::vector<std::string>& labels() const noexcept { return labels_; }
  [[nodiscard]] bool empty() const noexcept { return labels_.empty(); }
  [[nodiscard]] std::size_t label_count() const noexcept { return labels_.size(); }

  [[nodiscard]] std::string to_string() const;

  // True if this name equals `suffix` or ends with it ("www.apple.com"
  // is_subdomain_of "apple.com" and "com", and of itself).
  [[nodiscard]] bool is_subdomain_of(const DnsName& suffix) const;

  // Wire-format length without compression: sum(1 + label) + 1 root byte.
  [[nodiscard]] std::size_t wire_length() const noexcept;

  friend bool operator==(const DnsName& a, const DnsName& b) noexcept = default;

 private:
  std::vector<std::string> labels_;
};

// Hash for unordered_map keys (uses the canonical dotted form).
struct DnsNameHash {
  std::size_t operator()(const DnsName& n) const noexcept {
    std::size_t h = 1469598103934665603ull;
    for (const auto& label : n.labels()) {
      for (char c : label) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
      }
      h ^= '.';
      h *= 1099511628211ull;
    }
    return h;
  }
};

}  // namespace ape::dns

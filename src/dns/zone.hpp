// RFC 1035 §5 master-file ("zone file") parser — the standard way real
// deployments feed an authoritative server, supported here so testbeds and
// operators can declare zones as text instead of code.
//
// Supported subset:
//   $ORIGIN <name>            sets the origin appended to relative names
//   $TTL <seconds>            default TTL for records without one
//   <name> [ttl] [IN] A <ip>
//   <name> [ttl] [IN] CNAME <target>
//   ;-comments, blank lines, "@" for the origin, relative names.
//
// parse_zone returns structured records; load_zone feeds them into an
// AuthoritativeDnsServer and declares the origin as a zone.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"
#include "dns/adns.hpp"

namespace ape::dns {

struct ZoneRecord {
  DnsName name;
  std::uint32_t ttl = 0;
  RrType type = RrType::A;
  // Exactly one of these is meaningful, per `type`.
  net::IpAddress address;  // A
  DnsName target;          // CNAME
};

struct ZoneData {
  DnsName origin;
  std::uint32_t default_ttl = 3600;
  std::vector<ZoneRecord> records;
};

// Parses master-file text; errors carry the offending line number.
[[nodiscard]] Result<ZoneData> parse_zone(std::string_view text);

// Parses and installs: declares `origin` as a zone on `server` and adds
// every record.  Returns the record count.
[[nodiscard]] Result<std::size_t> load_zone(AuthoritativeDnsServer& server,
                                            std::string_view text);

}  // namespace ape::dns

#include "dns/name.hpp"

#include <algorithm>
#include <cctype>

namespace ape::dns {

namespace {
constexpr std::size_t kMaxLabel = 63;
constexpr std::size_t kMaxName = 253;

bool valid_label_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '-' || c == '_';
}
}  // namespace

Result<DnsName> DnsName::parse(std::string_view text) {
  if (!text.empty() && text.back() == '.') text.remove_suffix(1);
  if (text.empty()) return DnsName{};  // the root name
  if (text.size() > kMaxName) return make_error<DnsName>("name too long");

  DnsName name;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t dot = text.find('.', start);
    const std::size_t end = dot == std::string_view::npos ? text.size() : dot;
    const std::string_view label = text.substr(start, end - start);
    if (label.empty()) return make_error<DnsName>("empty label");
    if (label.size() > kMaxLabel) return make_error<DnsName>("label too long");
    if (!std::all_of(label.begin(), label.end(), valid_label_char)) {
      return make_error<DnsName>("invalid character in label");
    }
    std::string lowered(label);
    std::transform(lowered.begin(), lowered.end(), lowered.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
    name.labels_.push_back(std::move(lowered));
    if (dot == std::string_view::npos) break;
    start = dot + 1;
  }
  return name;
}

std::string DnsName::to_string() const {
  if (labels_.empty()) return ".";
  std::string out;
  for (const auto& label : labels_) {
    if (!out.empty()) out += '.';
    out += label;
  }
  return out;
}

bool DnsName::is_subdomain_of(const DnsName& suffix) const {
  if (suffix.labels_.size() > labels_.size()) return false;
  return std::equal(suffix.labels_.rbegin(), suffix.labels_.rend(), labels_.rbegin());
}

std::size_t DnsName::wire_length() const noexcept {
  std::size_t n = 1;  // root byte
  for (const auto& label : labels_) n += 1 + label.size();
  return n;
}

}  // namespace ape::dns

#include "dns/server.hpp"

#include <algorithm>
#include <utility>

namespace ape::dns {

DnsServer::DnsServer(net::Network& network, net::NodeId node, sim::ServiceQueue& cpu,
                     sim::Duration service_time, net::Port port)
    : network_(network), node_(node), cpu_(cpu), service_time_(service_time), port_(port) {
  network_.bind_udp(node_, port_, [this](const net::Datagram& d) { on_datagram(d); });
}

DnsServer::~DnsServer() {
  network_.unbind_udp(node_, port_);
}

std::size_t udp_payload_limit(const DnsMessage& query) {
  // EDNS(0) overloads the OPT record's CLASS as the payload size.
  if (const ResourceRecord* opt = query.find_additional(RrType::Opt); opt != nullptr) {
    return std::max<std::size_t>(opt->rr_class, kClassicUdpPayload);
  }
  return kClassicUdpPayload;
}

void DnsServer::on_datagram(const net::Datagram& dgram) {
  auto decoded = decode(dgram.payload);
  if (!decoded || !decoded.value().is_query()) {
    ++malformed_received_;
    return;  // RFC behaviour for garbage: drop
  }
  ++queries_received_;

  // Charge CPU, then dispatch.  The responder captures the client endpoint
  // so asynchronous handlers can answer later.
  const net::Endpoint client = dgram.source;
  const std::size_t payload_limit = udp_payload_limit(decoded.value());
  cpu_.submit(service_time_,
              [this, client, payload_limit,
               query = std::move(decoded.value())]() mutable {
    Responder respond = [this, client, payload_limit](DnsMessage response) {
      auto wire = encode(response);
      if (wire.size() > payload_limit) {
        // RFC 1035 §4.2.1 / RFC 6891: answers that exceed the requester's
        // payload limit are truncated — header + question only, TC set —
        // so the client knows to retry with a larger limit (or TCP).
        ++truncated_sent_;
        DnsMessage truncated;
        truncated.header = response.header;
        truncated.header.tc = true;
        truncated.questions = response.questions;
        wire = encode(truncated);
      }
      network_.send_datagram(node_, port_, client, std::move(wire));
    };
    handle_query(query, client, std::move(respond));
  });
}

}  // namespace ape::dns

// Recursive local DNS server (the "LDNS" of Fig. 1).
//
// Resolution walks delegations: the longest-matching suffix names the
// upstream server to ask (the provider's ADNS, the CDN's DNS, ...); CNAME
// answers restart the walk on the target name.  Positive answers are
// cached per-name with their TTLs; cached chains are answered without any
// upstream traffic — this is what makes warm lookups fast and cold lookups
// slow, the asymmetry Fig. 11b measures.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "dns/server.hpp"
#include "dns/stub_resolver.hpp"

namespace ape::dns {

class LocalDnsServer : public DnsServer {
 public:
  LocalDnsServer(net::Network& network, net::NodeId node, sim::ServiceQueue& cpu,
                 sim::Duration service_time, net::Port upstream_port = 40053);

  // Queries for names under `suffix` recurse to `server`.
  void add_delegation(const DnsName& suffix, net::Endpoint server);

  [[nodiscard]] std::size_t cache_size() const noexcept { return cache_.size(); }
  [[nodiscard]] std::size_t upstream_queries() const noexcept { return upstream_queries_; }
  void flush_cache() {
    cache_.clear();
    negative_cache_.clear();
  }

  // Negative caching (RFC 2308): NXDOMAIN answers are remembered for
  // `ttl` so repeated queries for dead names do not hammer upstreams.
  void set_negative_ttl(sim::Duration ttl) noexcept { negative_ttl_ = ttl; }
  [[nodiscard]] std::size_t negative_cache_size() const noexcept {
    return negative_cache_.size();
  }

 protected:
  void handle_query(const DnsMessage& query, net::Endpoint client, Responder respond) override;

 private:
  struct CachedRecord {
    ResourceRecord rr;
    sim::Time expires;
  };

  struct Recursion {
    DnsMessage query;
    Responder respond;
    DnsName current;
    std::vector<ResourceRecord> chain;
    int depth = 0;
  };

  // Appends cached records for `name` (unexpired) to `out`; returns the
  // CNAME target if the cache redirects, or nullopt when `out` gained an
  // A record or nothing.
  [[nodiscard]] std::optional<DnsName> append_cached(const DnsName& name,
                                                     std::vector<ResourceRecord>& out);
  void cache_records(const std::vector<ResourceRecord>& records);
  void continue_recursion(std::shared_ptr<Recursion> rec);
  [[nodiscard]] const net::Endpoint* delegation_for(const DnsName& name) const;
  void finish(std::shared_ptr<Recursion> rec, Rcode rcode);

  std::vector<std::pair<DnsName, net::Endpoint>> delegations_;
  std::unordered_map<DnsName, std::vector<CachedRecord>, DnsNameHash> cache_;
  std::unordered_map<DnsName, sim::Time, DnsNameHash> negative_cache_;  // name -> expiry
  sim::Duration negative_ttl_ = sim::seconds(30.0);
  DnsClient upstream_;
  std::size_t upstream_queries_ = 0;
};

}  // namespace ape::dns

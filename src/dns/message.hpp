// DNS message structures (RFC 1035 §4) plus the DNS-Cache extensions from
// the paper (Sec. IV-B1): a new RR TYPE 300 carried in the Additional
// section, whose CLASS distinguishes cache REQUESTs from RESPONSEs and
// whose RDATA is a list of <hash(URL), flag> two-tuples.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "dns/name.hpp"
#include "net/address.hpp"

namespace ape::dns {

enum class RrType : std::uint16_t {
  A = 1,
  Ns = 2,
  Cname = 5,
  Soa = 6,
  Ptr = 12,
  Mx = 15,
  Txt = 16,
  Aaaa = 28,
  Opt = 41,      // EDNS(0), RFC 6891
  DnsCache = 300,  // APE-CACHE cache-lookup RR (paper Fig. 8)
  TraceCtx = 301,  // APE-CACHE causal-trace context (DESIGN.md §5f; opt-in)
};

enum class RrClass : std::uint16_t {
  In = 1,
  Ch = 3,
  // APE-CACHE: the paper defines CLASS = REQUEST | RESPONSE for TYPE 300.
  // Values chosen well clear of the IANA-assigned range.
  CacheRequest = 0x4D01,
  CacheResponse = 0x4D02,
};

enum class Rcode : std::uint8_t {
  NoError = 0,
  FormErr = 1,
  ServFail = 2,
  NxDomain = 3,
  NotImp = 4,
  Refused = 5,
};

enum class Opcode : std::uint8_t {
  Query = 0,
  Status = 2,
};

struct Header {
  std::uint16_t id = 0;
  bool qr = false;   // false = query, true = response
  Opcode opcode = Opcode::Query;
  bool aa = false;   // authoritative answer
  bool tc = false;   // truncated
  bool rd = true;    // recursion desired
  bool ra = false;   // recursion available
  Rcode rcode = Rcode::NoError;
  // Section counts live implicitly in the vectors below.
};

struct Question {
  DnsName name;
  RrType qtype = RrType::A;
  RrClass qclass = RrClass::In;

  friend bool operator==(const Question&, const Question&) = default;
};

struct ResourceRecord {
  DnsName name;
  RrType type = RrType::A;
  std::uint16_t rr_class = static_cast<std::uint16_t>(RrClass::In);
  std::uint32_t ttl = 0;
  std::vector<std::uint8_t> rdata;

  friend bool operator==(const ResourceRecord&, const ResourceRecord&) = default;
};

struct DnsMessage {
  Header header;
  std::vector<Question> questions;
  std::vector<ResourceRecord> answers;
  std::vector<ResourceRecord> authorities;
  std::vector<ResourceRecord> additionals;

  [[nodiscard]] bool is_query() const noexcept { return !header.qr; }
  [[nodiscard]] bool is_response() const noexcept { return header.qr; }

  // First answer of the given type, searched in order (useful for walking
  // CNAME chains in responses).
  [[nodiscard]] const ResourceRecord* find_answer(RrType type) const noexcept;
  [[nodiscard]] const ResourceRecord* find_additional(RrType type) const noexcept;
};

// --- typed RDATA helpers (records.cpp) ---------------------------------

[[nodiscard]] std::vector<std::uint8_t> encode_a_rdata(net::IpAddress ip);
[[nodiscard]] Result<net::IpAddress> decode_a_rdata(const std::vector<std::uint8_t>& rdata);

[[nodiscard]] std::vector<std::uint8_t> encode_cname_rdata(const DnsName& target);
[[nodiscard]] Result<DnsName> decode_cname_rdata(const std::vector<std::uint8_t>& rdata);

[[nodiscard]] ResourceRecord make_a_record(const DnsName& name, net::IpAddress ip,
                                           std::uint32_t ttl);
[[nodiscard]] ResourceRecord make_cname_record(const DnsName& name, const DnsName& target,
                                               std::uint32_t ttl);

// EDNS(0) OPT pseudo-record advertising a UDP payload size.
[[nodiscard]] ResourceRecord make_opt_record(std::uint16_t udp_payload_size);

// Builds a response skeleton: copies id/opcode/questions, sets QR/RA.
[[nodiscard]] DnsMessage make_response_for(const DnsMessage& query, Rcode rcode);

}  // namespace ape::dns

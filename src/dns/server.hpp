// Base machinery shared by every DNS speaker in the system: decode a
// datagram, charge CPU service time, dispatch to the concrete handler,
// encode + send the response.
//
// Concrete servers: AuthoritativeDnsServer (adns), CdnDnsServer (cdn_dns),
// LocalDnsServer (ldns), and — in core/ — the AP's dnsmasq-like forwarder.
#pragma once

#include <functional>

#include "dns/codec.hpp"
#include "dns/message.hpp"
#include "net/network.hpp"
#include "sim/service_queue.hpp"

namespace ape::dns {

class DnsServer {
 public:
  // `cpu` is the node's CPU; a per-query `service_time` is charged before
  // the handler runs (this is what couples DNS latency to load).
  DnsServer(net::Network& network, net::NodeId node, sim::ServiceQueue& cpu,
            sim::Duration service_time, net::Port port = net::kDnsPort);
  virtual ~DnsServer();

  DnsServer(const DnsServer&) = delete;
  DnsServer& operator=(const DnsServer&) = delete;

  [[nodiscard]] net::NodeId node() const noexcept { return node_; }
  [[nodiscard]] net::Port port() const noexcept { return port_; }
  [[nodiscard]] std::size_t queries_received() const noexcept { return queries_received_; }
  [[nodiscard]] std::size_t malformed_received() const noexcept { return malformed_received_; }
  [[nodiscard]] std::size_t truncated_sent() const noexcept { return truncated_sent_; }

 protected:
  using Responder = std::function<void(DnsMessage)>;

  // Implementations may respond synchronously or hold the responder for an
  // asynchronous upstream round trip.
  virtual void handle_query(const DnsMessage& query, net::Endpoint client,
                            Responder respond) = 0;

  [[nodiscard]] net::Network& network() noexcept { return network_; }
  [[nodiscard]] sim::Simulator& simulator() noexcept { return network_.simulator(); }
  [[nodiscard]] sim::ServiceQueue& cpu() noexcept { return cpu_; }

 private:
  void on_datagram(const net::Datagram& dgram);

  net::Network& network_;
  net::NodeId node_;
  sim::ServiceQueue& cpu_;
  sim::Duration service_time_;
  net::Port port_;
  std::size_t queries_received_ = 0;
  std::size_t malformed_received_ = 0;
  std::size_t truncated_sent_ = 0;
};

// Classic pre-EDNS UDP payload ceiling (RFC 1035 §4.2.1).
inline constexpr std::size_t kClassicUdpPayload = 512;
// Advertised payload for this implementation's clients (the modern
// fragmentation-safe default).
inline constexpr std::uint16_t kDefaultEdnsPayload = 1232;

// Reads the EDNS(0) advertised payload size from a query's OPT record;
// falls back to the classic 512-byte ceiling when absent.
[[nodiscard]] std::size_t udp_payload_limit(const DnsMessage& query);

}  // namespace ape::dns

#include "dns/ldns.hpp"

#include <algorithm>
#include <utility>

namespace ape::dns {

LocalDnsServer::LocalDnsServer(net::Network& network, net::NodeId node, sim::ServiceQueue& cpu,
                               sim::Duration service_time, net::Port upstream_port)
    : DnsServer(network, node, cpu, service_time), upstream_(network, node, upstream_port) {}

void LocalDnsServer::add_delegation(const DnsName& suffix, net::Endpoint server) {
  delegations_.emplace_back(suffix, server);
  // Longest suffix first so lookup can take the first match.
  std::sort(delegations_.begin(), delegations_.end(),
            [](const auto& a, const auto& b) {
              return a.first.label_count() > b.first.label_count();
            });
}

const net::Endpoint* LocalDnsServer::delegation_for(const DnsName& name) const {
  for (const auto& [suffix, server] : delegations_) {
    if (name.is_subdomain_of(suffix)) return &server;
  }
  return nullptr;
}

std::optional<DnsName> LocalDnsServer::append_cached(const DnsName& name,
                                                     std::vector<ResourceRecord>& out) {
  auto it = cache_.find(name);
  if (it == cache_.end()) return std::nullopt;

  const sim::Time now = simulator().now();
  std::optional<DnsName> cname_target;
  bool any = false;
  for (const auto& cached : it->second) {
    if (cached.expires <= now) continue;
    ResourceRecord rr = cached.rr;
    rr.ttl = static_cast<std::uint32_t>(sim::to_seconds(cached.expires - now));
    out.push_back(std::move(rr));
    any = true;
    if (cached.rr.type == RrType::Cname) {
      if (auto target = decode_cname_rdata(cached.rr.rdata)) cname_target = target.value();
    }
  }
  if (!any) cache_.erase(it);  // everything expired; drop the entry
  return cname_target;
}

void LocalDnsServer::cache_records(const std::vector<ResourceRecord>& records) {
  const sim::Time now = simulator().now();
  for (const auto& rr : records) {
    if (rr.type != RrType::A && rr.type != RrType::Cname) continue;
    if (rr.ttl == 0) continue;  // TTL 0: use once, never cache
    auto& slot = cache_[rr.name];
    // Replace records of the same type (fresh data wins).
    std::erase_if(slot, [&](const CachedRecord& c) { return c.rr.type == rr.type; });
    slot.push_back(CachedRecord{rr, now + sim::seconds(rr.ttl)});
  }
}

void LocalDnsServer::handle_query(const DnsMessage& query, net::Endpoint /*client*/,
                                  Responder respond) {
  if (query.questions.empty() || query.questions.front().qtype != RrType::A) {
    respond(make_response_for(query, Rcode::NotImp));
    return;
  }

  auto rec = std::make_shared<Recursion>();
  rec->query = query;
  rec->respond = std::move(respond);
  rec->current = query.questions.front().name;
  continue_recursion(std::move(rec));
}

void LocalDnsServer::continue_recursion(std::shared_ptr<Recursion> rec) {
  // First satisfy as much as possible from cache, following CNAMEs.
  while (rec->depth < 16) {
    const std::size_t before = rec->chain.size();
    auto cname_target = append_cached(rec->current, rec->chain);
    if (rec->chain.size() == before) break;  // nothing cached for this name
    // Got an A record for the current name?
    const bool have_a = std::any_of(
        rec->chain.begin(), rec->chain.end(), [&](const ResourceRecord& rr) {
          return rr.type == RrType::A && rr.name == rec->current;
        });
    if (have_a) {
      finish(std::move(rec), Rcode::NoError);
      return;
    }
    if (!cname_target) break;
    rec->current = *cname_target;
    ++rec->depth;
  }
  if (rec->depth >= 16) {
    finish(std::move(rec), Rcode::ServFail);
    return;
  }

  // Negative cache: a recently-confirmed NXDOMAIN answers immediately.
  if (auto neg = negative_cache_.find(rec->current); neg != negative_cache_.end()) {
    if (neg->second > simulator().now()) {
      finish(std::move(rec), Rcode::NxDomain);
      return;
    }
    negative_cache_.erase(neg);
  }

  const net::Endpoint* upstream = delegation_for(rec->current);
  if (upstream == nullptr) {
    finish(std::move(rec), Rcode::ServFail);
    return;
  }

  DnsMessage upstream_query;
  upstream_query.header.rd = true;
  upstream_query.questions.push_back(Question{rec->current, RrType::A, RrClass::In});
  ++upstream_queries_;

  upstream_.query(*upstream, std::move(upstream_query),
                  [this, rec = std::move(rec)](Result<DnsMessage> response) mutable {
                    if (!response || response.value().header.rcode != Rcode::NoError ||
                        response.value().answers.empty()) {
                      const Rcode rc =
                          response ? response.value().header.rcode : Rcode::ServFail;
                      if (rc == Rcode::NxDomain && negative_ttl_.count() > 0) {
                        negative_cache_[rec->current] = simulator().now() + negative_ttl_;
                      }
                      finish(std::move(rec), rc == Rcode::NoError ? Rcode::ServFail : rc);
                      return;
                    }
                    cache_records(response.value().answers);
                    for (const auto& rr : response.value().answers) {
                      rec->chain.push_back(rr);
                    }
                    // Did this round complete the chain?
                    const bool have_a = std::any_of(
                        response.value().answers.begin(), response.value().answers.end(),
                        [](const ResourceRecord& rr) { return rr.type == RrType::A; });
                    if (have_a) {
                      finish(std::move(rec), Rcode::NoError);
                      return;
                    }
                    // CNAME-only answer: restart the walk on the deepest target.
                    for (const auto& rr : response.value().answers) {
                      if (rr.type == RrType::Cname) {
                        if (auto target = decode_cname_rdata(rr.rdata)) {
                          rec->current = target.value();
                        }
                      }
                    }
                    ++rec->depth;
                    continue_recursion(std::move(rec));
                  });
}

void LocalDnsServer::finish(std::shared_ptr<Recursion> rec, Rcode rcode) {
  DnsMessage resp = make_response_for(rec->query, rcode);
  resp.answers = std::move(rec->chain);
  if (resp.answers.empty() && rcode == Rcode::NoError) resp.header.rcode = Rcode::ServFail;
  rec->respond(std::move(resp));
}

}  // namespace ape::dns

#include "dns/zone.hpp"

#include <cctype>
#include <sstream>

namespace ape::dns {

namespace {

std::string_view strip_comment(std::string_view line) {
  const auto semi = line.find(';');
  if (semi != std::string_view::npos) line = line.substr(0, semi);
  while (!line.empty() && std::isspace(static_cast<unsigned char>(line.back()))) {
    line.remove_suffix(1);
  }
  return line;
}

std::vector<std::string> tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  std::istringstream in{std::string(line)};
  std::string token;
  while (in >> token) tokens.push_back(token);
  return tokens;
}

bool is_number(const std::string& s) {
  return !s.empty() && std::all_of(s.begin(), s.end(), [](unsigned char c) {
    return std::isdigit(c);
  });
}

// Resolves a possibly-relative name against the origin: absolute names end
// with '.', "@" denotes the origin itself.
Result<DnsName> resolve_name(const std::string& token, const DnsName& origin,
                             std::size_t line_no) {
  if (token == "@") return origin;
  if (!token.empty() && token.back() == '.') {
    auto name = DnsName::parse(token);
    if (!name) {
      return make_error<DnsName>("line " + std::to_string(line_no) + ": " +
                                 name.error().message);
    }
    return name;
  }
  auto name = DnsName::parse(token + "." + origin.to_string());
  if (!name) {
    return make_error<DnsName>("line " + std::to_string(line_no) + ": " +
                               name.error().message);
  }
  return name;
}

}  // namespace

Result<ZoneData> parse_zone(std::string_view text) {
  ZoneData zone;
  bool have_origin = false;

  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    ++line_no;
    const auto newline = text.find('\n', start);
    std::string_view line = newline == std::string_view::npos
                                ? text.substr(start)
                                : text.substr(start, newline - start);
    start = newline == std::string_view::npos ? text.size() + 1 : newline + 1;

    line = strip_comment(line);
    auto tokens = tokenize(line);
    if (tokens.empty()) continue;

    if (tokens[0] == "$ORIGIN") {
      if (tokens.size() != 2) {
        return make_error<ZoneData>("line " + std::to_string(line_no) +
                                    ": $ORIGIN needs exactly one argument");
      }
      auto origin = DnsName::parse(tokens[1]);
      if (!origin) {
        return make_error<ZoneData>("line " + std::to_string(line_no) + ": bad origin: " +
                                    origin.error().message);
      }
      zone.origin = std::move(origin.value());
      have_origin = true;
      continue;
    }
    if (tokens[0] == "$TTL") {
      if (tokens.size() != 2 || !is_number(tokens[1])) {
        return make_error<ZoneData>("line " + std::to_string(line_no) +
                                    ": $TTL needs a numeric argument");
      }
      zone.default_ttl = static_cast<std::uint32_t>(std::stoul(tokens[1]));
      continue;
    }
    if (!have_origin) {
      return make_error<ZoneData>("line " + std::to_string(line_no) +
                                  ": record before $ORIGIN");
    }

    // <name> [ttl] [IN] <type> <rdata>
    if (tokens.size() < 3) {
      return make_error<ZoneData>("line " + std::to_string(line_no) + ": too few fields");
    }
    ZoneRecord record;
    auto name = resolve_name(tokens[0], zone.origin, line_no);
    if (!name) return make_error<ZoneData>(name.error().message);
    record.name = std::move(name.value());

    std::size_t cursor = 1;
    record.ttl = zone.default_ttl;
    if (cursor < tokens.size() && is_number(tokens[cursor])) {
      record.ttl = static_cast<std::uint32_t>(std::stoul(tokens[cursor]));
      ++cursor;
    }
    if (cursor < tokens.size() && (tokens[cursor] == "IN" || tokens[cursor] == "in")) {
      ++cursor;
    }
    if (cursor >= tokens.size()) {
      return make_error<ZoneData>("line " + std::to_string(line_no) + ": missing type");
    }

    const std::string& type = tokens[cursor];
    ++cursor;
    if (cursor >= tokens.size()) {
      return make_error<ZoneData>("line " + std::to_string(line_no) + ": missing RDATA");
    }
    const std::string& rdata = tokens[cursor];
    if (cursor + 1 != tokens.size()) {
      return make_error<ZoneData>("line " + std::to_string(line_no) +
                                  ": trailing fields after RDATA");
    }

    if (type == "A" || type == "a") {
      record.type = RrType::A;
      auto ip = net::IpAddress::parse(rdata);
      if (!ip) {
        return make_error<ZoneData>("line " + std::to_string(line_no) + ": bad address: " +
                                    ip.error().message);
      }
      record.address = ip.value();
    } else if (type == "CNAME" || type == "cname") {
      record.type = RrType::Cname;
      auto target = resolve_name(rdata, zone.origin, line_no);
      if (!target) return make_error<ZoneData>(target.error().message);
      record.target = std::move(target.value());
    } else {
      return make_error<ZoneData>("line " + std::to_string(line_no) +
                                  ": unsupported record type '" + type + "'");
    }
    zone.records.push_back(std::move(record));
  }

  if (!have_origin) return make_error<ZoneData>("zone file has no $ORIGIN");
  return zone;
}

Result<std::size_t> load_zone(AuthoritativeDnsServer& server, std::string_view text) {
  auto zone = parse_zone(text);
  if (!zone) return make_error<std::size_t>(zone.error().message);

  server.add_zone(zone.value().origin);
  for (const auto& record : zone.value().records) {
    if (record.type == RrType::A) {
      server.add_a(record.name, record.address, record.ttl);
    } else {
      server.add_cname(record.name, record.target, record.ttl);
    }
  }
  return zone.value().records.size();
}

}  // namespace ape::dns

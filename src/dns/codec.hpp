// RFC 1035 §4 wire-format encoder/decoder.
//
// Encoding applies name compression (§4.1.4) across all sections; decoding
// accepts compression pointers with loop/bound protection.  Decoding never
// throws — malformed packets from the network come back as errors.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.hpp"
#include "dns/message.hpp"

namespace ape::dns {

[[nodiscard]] std::vector<std::uint8_t> encode(const DnsMessage& message);
[[nodiscard]] Result<DnsMessage> decode(std::span<const std::uint8_t> wire);

// Low-level cursor primitives, exposed for the DNS-Cache RDATA codec and
// for tests that build malformed packets.
class ByteWriter {
 public:
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);   // big-endian
  void u32(std::uint32_t v);   // big-endian
  void u64(std::uint64_t v);   // big-endian
  void bytes(std::span<const std::uint8_t> data);

  [[nodiscard]] std::size_t size() const noexcept { return out_.size(); }
  [[nodiscard]] std::vector<std::uint8_t> take() && { return std::move(out_); }
  [[nodiscard]] const std::vector<std::uint8_t>& view() const noexcept { return out_; }

  // Overwrites a previously written big-endian u16 at `offset`.
  void patch_u16(std::size_t offset, std::uint16_t v);

 private:
  std::vector<std::uint8_t> out_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] Result<std::uint8_t> u8();
  [[nodiscard]] Result<std::uint16_t> u16();
  [[nodiscard]] Result<std::uint32_t> u32();
  [[nodiscard]] Result<std::uint64_t> u64();
  [[nodiscard]] Result<std::vector<std::uint8_t>> bytes(std::size_t n);

  [[nodiscard]] std::size_t position() const noexcept { return pos_; }
  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }
  void seek(std::size_t pos) noexcept { pos_ = pos < data_.size() ? pos : data_.size(); }
  [[nodiscard]] std::span<const std::uint8_t> data() const noexcept { return data_; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace ape::dns

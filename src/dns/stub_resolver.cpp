#include "dns/stub_resolver.hpp"

#include <utility>

#include "dns/server.hpp"  // EDNS payload constants

namespace ape::dns {

DnsClient::DnsClient(net::Network& network, net::NodeId node, net::Port local_port)
    : network_(network), node_(node), local_port_(local_port) {
  network_.bind_udp(node_, local_port_, [this](const net::Datagram& d) { on_datagram(d); });
}

DnsClient::~DnsClient() {
  network_.unbind_udp(node_, local_port_);
}

void DnsClient::query(net::Endpoint server, DnsMessage message, QueryHandler handler) {
  // 16-bit IDs wrap; skip IDs that are still in flight.
  std::uint16_t id = next_id_++;
  while (pending_.contains(id)) id = next_id_++;
  message.header.id = id;

  // Advertise a modern EDNS payload so large answers (batched DNS-Cache
  // responses in particular) are not truncated to the classic 512 bytes.
  if (message.find_additional(RrType::Opt) == nullptr) {
    message.additionals.push_back(make_opt_record(kDefaultEdnsPayload));
  }

  pending_.emplace(id, Pending{server, std::move(message), std::move(handler),
                               max_attempts_, 0});
  send_attempt(id);
}

void DnsClient::send_attempt(std::uint16_t id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;
  Pending& p = it->second;
  --p.attempts_left;
  network_.send_datagram(node_, local_port_, p.server, encode(p.message));
  p.timeout_event = network_.simulator().schedule_in(timeout_, [this, id] { on_timeout(id); });
}

void DnsClient::on_timeout(std::uint16_t id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;
  if (it->second.attempts_left > 0) {
    send_attempt(id);
    return;
  }
  ++timeouts_;
  QueryHandler handler = std::move(it->second.handler);
  pending_.erase(it);
  handler(make_error<DnsMessage>("DNS query timed out"));
}

void DnsClient::on_datagram(const net::Datagram& dgram) {
  auto decoded = decode(dgram.payload);
  if (!decoded || !decoded.value().is_response()) return;
  auto it = pending_.find(decoded.value().header.id);
  if (it == pending_.end()) return;  // late or spoofed response
  network_.simulator().cancel(it->second.timeout_event);
  QueryHandler handler = std::move(it->second.handler);
  pending_.erase(it);
  handler(std::move(decoded.value()));
}

StubResolver::StubResolver(net::Network& network, net::NodeId node, net::Endpoint dns_server,
                           net::Port local_port)
    : client_(network, node, local_port), server_(dns_server) {}

void StubResolver::resolve(const DnsName& name, ResolveHandler handler) {
  DnsMessage query;
  query.header.rd = true;
  query.questions.push_back(Question{name, RrType::A, RrClass::In});

  client_.query(server_, std::move(query),
                [name, handler = std::move(handler)](Result<DnsMessage> response) {
                  if (!response) {
                    handler(make_error<ResolveResult>(response.error().message));
                    return;
                  }
                  handler(extract_address(response.value(), name));
                });
}

void StubResolver::query_raw(DnsMessage message, DnsClient::QueryHandler handler) {
  client_.query(server_, std::move(message), std::move(handler));
}

Result<ResolveResult> StubResolver::extract_address(const DnsMessage& response,
                                                    const DnsName& queried) {
  if (response.header.rcode != Rcode::NoError) {
    return make_error<ResolveResult>("DNS error rcode=" +
                                     std::to_string(static_cast<int>(response.header.rcode)));
  }
  // Follow the CNAME chain from the queried name to an A record.
  DnsName current = queried;
  for (int depth = 0; depth < 16; ++depth) {
    for (const auto& rr : response.answers) {
      if (!(rr.name == current)) continue;
      if (rr.type == RrType::A) {
        auto ip = decode_a_rdata(rr.rdata);
        if (!ip) return make_error<ResolveResult>("bad A RDATA");
        return ResolveResult{ip.value(), rr.ttl, response};
      }
      if (rr.type == RrType::Cname) {
        auto target = decode_cname_rdata(rr.rdata);
        if (!target) return make_error<ResolveResult>("bad CNAME RDATA");
        current = std::move(target.value());
        goto next_link;
      }
    }
    return make_error<ResolveResult>("no address in response");
  next_link:;
  }
  return make_error<ResolveResult>("CNAME chain too deep");
}

}  // namespace ape::dns

#include "dns/codec.hpp"

#include <map>
#include <string>

namespace ape::dns {

// ---------------------------------------------------------------- writer

void ByteWriter::u8(std::uint8_t v) { out_.push_back(v); }

void ByteWriter::u16(std::uint16_t v) {
  out_.push_back(static_cast<std::uint8_t>(v >> 8));
  out_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::u32(std::uint32_t v) {
  u16(static_cast<std::uint16_t>(v >> 16));
  u16(static_cast<std::uint16_t>(v));
}

void ByteWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v >> 32));
  u32(static_cast<std::uint32_t>(v));
}

void ByteWriter::bytes(std::span<const std::uint8_t> data) {
  out_.insert(out_.end(), data.begin(), data.end());
}

void ByteWriter::patch_u16(std::size_t offset, std::uint16_t v) {
  out_.at(offset) = static_cast<std::uint8_t>(v >> 8);
  out_.at(offset + 1) = static_cast<std::uint8_t>(v);
}

// ---------------------------------------------------------------- reader

Result<std::uint8_t> ByteReader::u8() {
  if (remaining() < 1) return make_error<std::uint8_t>("truncated packet (u8)");
  return data_[pos_++];
}

Result<std::uint16_t> ByteReader::u16() {
  if (remaining() < 2) return make_error<std::uint16_t>("truncated packet (u16)");
  const std::uint16_t v =
      static_cast<std::uint16_t>((std::uint16_t{data_[pos_]} << 8) | data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

Result<std::uint32_t> ByteReader::u32() {
  auto hi = u16();
  if (!hi) return make_error<std::uint32_t>(hi.error().message);
  auto lo = u16();
  if (!lo) return make_error<std::uint32_t>(lo.error().message);
  return (std::uint32_t{hi.value()} << 16) | lo.value();
}

Result<std::uint64_t> ByteReader::u64() {
  auto hi = u32();
  if (!hi) return make_error<std::uint64_t>(hi.error().message);
  auto lo = u32();
  if (!lo) return make_error<std::uint64_t>(lo.error().message);
  return (std::uint64_t{hi.value()} << 32) | lo.value();
}

Result<std::vector<std::uint8_t>> ByteReader::bytes(std::size_t n) {
  if (remaining() < n) return make_error<std::vector<std::uint8_t>>("truncated packet (bytes)");
  std::vector<std::uint8_t> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

// --------------------------------------------------------- name encoding

namespace {

// Writes `name` with §4.1.4 compression: the longest previously-emitted
// suffix is replaced by a 2-byte pointer.  `offsets` maps the dotted
// representation of each emitted suffix to its packet offset.
void write_name(ByteWriter& w, const DnsName& name,
                std::map<std::string, std::uint16_t>& offsets) {
  const auto& labels = name.labels();
  for (std::size_t i = 0; i < labels.size(); ++i) {
    std::string suffix;
    for (std::size_t j = i; j < labels.size(); ++j) {
      if (!suffix.empty()) suffix += '.';
      suffix += labels[j];
    }
    if (auto it = offsets.find(suffix); it != offsets.end()) {
      w.u16(static_cast<std::uint16_t>(0xC000u | it->second));
      return;
    }
    if (w.size() <= 0x3FFF) {
      offsets.emplace(std::move(suffix), static_cast<std::uint16_t>(w.size()));
    }
    w.u8(static_cast<std::uint8_t>(labels[i].size()));
    w.bytes(std::span(reinterpret_cast<const std::uint8_t*>(labels[i].data()),
                      labels[i].size()));
  }
  w.u8(0);  // root
}

Result<DnsName> read_name(ByteReader& r) {
  std::string dotted;
  std::size_t jumps = 0;
  constexpr std::size_t kMaxJumps = 32;  // loop guard
  std::size_t return_pos = 0;
  bool jumped = false;

  while (true) {
    auto len_r = r.u8();
    if (!len_r) return make_error<DnsName>(len_r.error().message);
    const std::uint8_t len = len_r.value();
    if ((len & 0xC0u) == 0xC0u) {
      auto low = r.u8();
      if (!low) return make_error<DnsName>(low.error().message);
      const std::size_t target = (static_cast<std::size_t>(len & 0x3Fu) << 8) | low.value();
      if (++jumps > kMaxJumps) return make_error<DnsName>("compression pointer loop");
      if (target >= r.data().size()) return make_error<DnsName>("compression pointer out of range");
      if (!jumped) {
        return_pos = r.position();
        jumped = true;
      }
      r.seek(target);
      continue;
    }
    if (len == 0) break;
    if ((len & 0xC0u) != 0) return make_error<DnsName>("reserved label type");
    auto label = r.bytes(len);
    if (!label) return make_error<DnsName>(label.error().message);
    if (!dotted.empty()) dotted += '.';
    dotted.append(label.value().begin(), label.value().end());
  }
  if (jumped) r.seek(return_pos);
  return DnsName::parse(dotted);
}

std::uint16_t pack_flags(const Header& h) {
  std::uint16_t f = 0;
  if (h.qr) f |= 0x8000u;
  f |= static_cast<std::uint16_t>((static_cast<std::uint16_t>(h.opcode) & 0xF) << 11);
  if (h.aa) f |= 0x0400u;
  if (h.tc) f |= 0x0200u;
  if (h.rd) f |= 0x0100u;
  if (h.ra) f |= 0x0080u;
  f |= static_cast<std::uint16_t>(static_cast<std::uint16_t>(h.rcode) & 0xF);
  return f;
}

Header unpack_flags(std::uint16_t id, std::uint16_t f) {
  Header h;
  h.id = id;
  h.qr = (f & 0x8000u) != 0;
  h.opcode = static_cast<Opcode>((f >> 11) & 0xF);
  h.aa = (f & 0x0400u) != 0;
  h.tc = (f & 0x0200u) != 0;
  h.rd = (f & 0x0100u) != 0;
  h.ra = (f & 0x0080u) != 0;
  h.rcode = static_cast<Rcode>(f & 0xF);
  return h;
}

void write_rr(ByteWriter& w, const ResourceRecord& rr,
              std::map<std::string, std::uint16_t>& offsets) {
  write_name(w, rr.name, offsets);
  w.u16(static_cast<std::uint16_t>(rr.type));
  w.u16(rr.rr_class);
  w.u32(rr.ttl);
  w.u16(static_cast<std::uint16_t>(rr.rdata.size()));
  w.bytes(rr.rdata);
}

Result<ResourceRecord> read_rr(ByteReader& r) {
  ResourceRecord rr;
  auto name = read_name(r);
  if (!name) return make_error<ResourceRecord>(name.error().message);
  rr.name = std::move(name.value());

  auto type = r.u16();
  if (!type) return make_error<ResourceRecord>(type.error().message);
  rr.type = static_cast<RrType>(type.value());

  auto rr_class = r.u16();
  if (!rr_class) return make_error<ResourceRecord>(rr_class.error().message);
  rr.rr_class = rr_class.value();

  auto ttl = r.u32();
  if (!ttl) return make_error<ResourceRecord>(ttl.error().message);
  rr.ttl = ttl.value();

  auto rdlength = r.u16();
  if (!rdlength) return make_error<ResourceRecord>(rdlength.error().message);
  auto rdata = r.bytes(rdlength.value());
  if (!rdata) return make_error<ResourceRecord>(rdata.error().message);
  rr.rdata = std::move(rdata.value());
  return rr;
}

}  // namespace

// --------------------------------------------------------------- encode

std::vector<std::uint8_t> encode(const DnsMessage& m) {
  ByteWriter w;
  std::map<std::string, std::uint16_t> offsets;

  w.u16(m.header.id);
  w.u16(pack_flags(m.header));
  w.u16(static_cast<std::uint16_t>(m.questions.size()));
  w.u16(static_cast<std::uint16_t>(m.answers.size()));
  w.u16(static_cast<std::uint16_t>(m.authorities.size()));
  w.u16(static_cast<std::uint16_t>(m.additionals.size()));

  for (const auto& q : m.questions) {
    write_name(w, q.name, offsets);
    w.u16(static_cast<std::uint16_t>(q.qtype));
    w.u16(static_cast<std::uint16_t>(q.qclass));
  }
  for (const auto& rr : m.answers) write_rr(w, rr, offsets);
  for (const auto& rr : m.authorities) write_rr(w, rr, offsets);
  for (const auto& rr : m.additionals) write_rr(w, rr, offsets);

  return std::move(w).take();
}

// --------------------------------------------------------------- decode

Result<DnsMessage> decode(std::span<const std::uint8_t> wire) {
  ByteReader r(wire);
  DnsMessage m;

  auto id = r.u16();
  if (!id) return make_error<DnsMessage>("truncated header");
  auto flags = r.u16();
  if (!flags) return make_error<DnsMessage>("truncated header");
  m.header = unpack_flags(id.value(), flags.value());

  auto qd = r.u16();
  auto an = r.u16();
  auto ns = r.u16();
  auto ar = r.u16();
  if (!qd || !an || !ns || !ar) return make_error<DnsMessage>("truncated header counts");

  for (std::uint16_t i = 0; i < qd.value(); ++i) {
    Question q;
    auto name = read_name(r);
    if (!name) return make_error<DnsMessage>("bad question name: " + name.error().message);
    q.name = std::move(name.value());
    auto qtype = r.u16();
    auto qclass = r.u16();
    if (!qtype || !qclass) return make_error<DnsMessage>("truncated question");
    q.qtype = static_cast<RrType>(qtype.value());
    q.qclass = static_cast<RrClass>(qclass.value());
    m.questions.push_back(std::move(q));
  }

  auto read_section = [&r](std::uint16_t count,
                           std::vector<ResourceRecord>& out) -> Result<bool> {
    for (std::uint16_t i = 0; i < count; ++i) {
      auto rr = read_rr(r);
      if (!rr) return make_error<bool>(rr.error().message);
      out.push_back(std::move(rr.value()));
    }
    return true;
  };

  if (auto ok = read_section(an.value(), m.answers); !ok) {
    return make_error<DnsMessage>("bad answer: " + ok.error().message);
  }
  if (auto ok = read_section(ns.value(), m.authorities); !ok) {
    return make_error<DnsMessage>("bad authority: " + ok.error().message);
  }
  if (auto ok = read_section(ar.value(), m.additionals); !ok) {
    return make_error<DnsMessage>("bad additional: " + ok.error().message);
  }
  return m;
}

}  // namespace ape::dns

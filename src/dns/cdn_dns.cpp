#include "dns/cdn_dns.hpp"

namespace ape::dns {

void CdnDnsServer::add_service(const DnsName& cdn_name, net::IpAddress origin_fallback) {
  services_[cdn_name].origin = origin_fallback;
}

void CdnDnsServer::add_cache_server(const DnsName& cdn_name, const Region& region,
                                    net::IpAddress server) {
  services_[cdn_name].servers_by_region[region] = server;
}

void CdnDnsServer::set_region_of(net::IpAddress resolver_ip, Region region) {
  regions_[resolver_ip] = std::move(region);
}

void CdnDnsServer::handle_query(const DnsMessage& query, net::Endpoint client,
                                Responder respond) {
  if (query.questions.empty()) {
    respond(make_response_for(query, Rcode::FormErr));
    return;
  }
  const Question& q = query.questions.front();
  auto svc = services_.find(q.name);
  if (svc == services_.end()) {
    respond(make_response_for(query, Rcode::NxDomain));
    return;
  }

  net::IpAddress target = svc->second.origin;
  if (auto region = regions_.find(client.ip); region != regions_.end()) {
    if (auto server = svc->second.servers_by_region.find(region->second);
        server != svc->second.servers_by_region.end()) {
      target = server->second;
    }
  }

  DnsMessage resp = make_response_for(query, Rcode::NoError);
  resp.header.aa = true;
  resp.answers.push_back(make_a_record(q.name, target, answer_ttl_));
  respond(std::move(resp));
}

}  // namespace ape::dns

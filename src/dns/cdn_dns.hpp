// CDN mapping DNS (the "Akamai DNS" of Fig. 1).
//
// Resolves CDN-namespace names (CNAME targets like
// "www.apple.com.edgekey.net") to the cache server nearest to the
// *querier* — in practice the client's LDNS, whose source IP we map to a
// region.  A service with no cache server in the querier's region resolves
// to the origin instead (the Yahoo-in-São-Paulo case of Table I).
#pragma once

#include <optional>
#include <string>
#include <unordered_map>

#include "dns/server.hpp"

namespace ape::dns {

class CdnDnsServer : public DnsServer {
 public:
  using DnsServer::DnsServer;
  using Region = std::string;

  // Registers a CDN-hosted service by its CDN-namespace name.
  void add_service(const DnsName& cdn_name, net::IpAddress origin_fallback);
  // Places a cache server for `cdn_name` in `region`.
  void add_cache_server(const DnsName& cdn_name, const Region& region, net::IpAddress server);
  // Region of a querying resolver, keyed by its source IP.
  void set_region_of(net::IpAddress resolver_ip, Region region);

  void set_answer_ttl(std::uint32_t ttl_seconds) noexcept { answer_ttl_ = ttl_seconds; }

 protected:
  void handle_query(const DnsMessage& query, net::Endpoint client, Responder respond) override;

 private:
  struct Service {
    net::IpAddress origin;
    std::unordered_map<Region, net::IpAddress> servers_by_region;
  };

  std::unordered_map<DnsName, Service, DnsNameHash> services_;
  std::unordered_map<net::IpAddress, Region> regions_;
  std::uint32_t answer_ttl_ = 20;  // CDN mapping answers are short-lived
};

}  // namespace ape::dns

// Authoritative DNS server: serves A/CNAME records for its zones.
//
// In the Table I / Fig 1 reproduction this plays the content provider's
// ADNS, answering "www.apple.com" with a CNAME into the CDN's namespace
// ("www.apple.com.edgekey.net").
#pragma once

#include <unordered_map>
#include <vector>

#include "dns/server.hpp"

namespace ape::dns {

class AuthoritativeDnsServer : public DnsServer {
 public:
  using DnsServer::DnsServer;

  // Declares authority over `suffix`; queries under it that have no records
  // get NXDOMAIN, queries outside any zone get REFUSED.
  void add_zone(const DnsName& suffix);

  void add_record(ResourceRecord record);
  void add_a(const DnsName& name, net::IpAddress ip, std::uint32_t ttl);
  void add_cname(const DnsName& name, const DnsName& target, std::uint32_t ttl);

 protected:
  void handle_query(const DnsMessage& query, net::Endpoint client, Responder respond) override;

 private:
  [[nodiscard]] bool in_zone(const DnsName& name) const;

  std::vector<DnsName> zones_;
  std::unordered_map<DnsName, std::vector<ResourceRecord>, DnsNameHash> records_;
};

}  // namespace ape::dns

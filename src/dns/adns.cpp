#include "dns/adns.hpp"

#include <algorithm>

namespace ape::dns {

void AuthoritativeDnsServer::add_zone(const DnsName& suffix) {
  zones_.push_back(suffix);
}

void AuthoritativeDnsServer::add_record(ResourceRecord record) {
  records_[record.name].push_back(std::move(record));
}

void AuthoritativeDnsServer::add_a(const DnsName& name, net::IpAddress ip, std::uint32_t ttl) {
  add_record(make_a_record(name, ip, ttl));
}

void AuthoritativeDnsServer::add_cname(const DnsName& name, const DnsName& target,
                                       std::uint32_t ttl) {
  add_record(make_cname_record(name, target, ttl));
}

bool AuthoritativeDnsServer::in_zone(const DnsName& name) const {
  return std::any_of(zones_.begin(), zones_.end(),
                     [&](const DnsName& z) { return name.is_subdomain_of(z); });
}

void AuthoritativeDnsServer::handle_query(const DnsMessage& query, net::Endpoint /*client*/,
                                          Responder respond) {
  if (query.questions.empty()) {
    respond(make_response_for(query, Rcode::FormErr));
    return;
  }
  const Question& q = query.questions.front();
  if (!in_zone(q.name)) {
    respond(make_response_for(query, Rcode::Refused));
    return;
  }

  DnsMessage resp = make_response_for(query, Rcode::NoError);
  resp.header.aa = true;

  // Walk CNAME chains inside our own zone data (RFC 1034 §4.3.2 step 3a).
  DnsName current = q.name;
  for (int depth = 0; depth < 8; ++depth) {
    auto it = records_.find(current);
    if (it == records_.end()) break;
    bool followed = false;
    for (const auto& rr : it->second) {
      if (rr.type == q.qtype) {
        resp.answers.push_back(rr);
      } else if (rr.type == RrType::Cname && q.qtype != RrType::Cname) {
        resp.answers.push_back(rr);
        if (auto target = decode_cname_rdata(rr.rdata)) {
          current = target.value();
          followed = true;
        }
      }
    }
    if (!followed) break;
  }

  if (resp.answers.empty()) resp.header.rcode = Rcode::NxDomain;
  respond(std::move(resp));
}

}  // namespace ape::dns

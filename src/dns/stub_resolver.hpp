// Client-side DNS query machinery.
//
// DnsClient is the transaction layer every DNS *speaker that also asks
// questions* builds on (the phone's c-ares-like stub, the LDNS recursing
// upstream, the AP forwarding to its upstream resolver): it assigns IDs,
// matches responses, retries, and times out.
//
// StubResolver is the c-ares analogue linked into the mobile client: it
// resolves a hostname to an address, surfacing the full response message so
// the APE-CACHE client runtime can read the piggybacked DNS-Cache RR.
#pragma once

#include <functional>
#include <unordered_map>

#include "dns/codec.hpp"
#include "dns/message.hpp"
#include "net/network.hpp"

namespace ape::dns {

class DnsClient {
 public:
  // Binds `local_port` on `node` for responses.  Ports must be unique per
  // node; use distinct ephemeral ports for multiple clients on one node.
  DnsClient(net::Network& network, net::NodeId node, net::Port local_port);
  ~DnsClient();

  DnsClient(const DnsClient&) = delete;
  DnsClient& operator=(const DnsClient&) = delete;

  using QueryHandler = std::function<void(Result<DnsMessage>)>;

  // Assigns a fresh transaction ID, ships the query, and calls `handler`
  // with the matching response or an error after retries are exhausted.
  void query(net::Endpoint server, DnsMessage message, QueryHandler handler);

  void set_timeout(sim::Duration timeout) noexcept { timeout_ = timeout; }
  void set_max_attempts(int attempts) noexcept { max_attempts_ = attempts < 1 ? 1 : attempts; }

  [[nodiscard]] std::size_t outstanding() const noexcept { return pending_.size(); }
  [[nodiscard]] std::size_t timeouts() const noexcept { return timeouts_; }

 private:
  struct Pending {
    net::Endpoint server;
    DnsMessage message;
    QueryHandler handler;
    int attempts_left;
    sim::Simulator::EventId timeout_event;
  };

  void send_attempt(std::uint16_t id);
  void on_timeout(std::uint16_t id);
  void on_datagram(const net::Datagram& dgram);

  net::Network& network_;
  net::NodeId node_;
  net::Port local_port_;
  sim::Duration timeout_ = sim::milliseconds(3000);
  int max_attempts_ = 2;
  std::uint16_t next_id_ = 1;
  std::unordered_map<std::uint16_t, Pending> pending_;
  std::size_t timeouts_ = 0;
};

struct ResolveResult {
  net::IpAddress address;
  std::uint32_t ttl = 0;         // of the A record
  DnsMessage response;           // full message (additionals included)
};

class StubResolver {
 public:
  StubResolver(net::Network& network, net::NodeId node, net::Endpoint dns_server,
               net::Port local_port);

  using ResolveHandler = std::function<void(Result<ResolveResult>)>;

  // Standard A-record resolution, following CNAMEs within the response.
  void resolve(const DnsName& name, ResolveHandler handler);

  // Raw escape hatch: the APE-CACHE client runtime builds DNS-Cache queries
  // itself and needs the unmodified response.
  void query_raw(DnsMessage message, DnsClient::QueryHandler handler);

  [[nodiscard]] net::Endpoint server() const noexcept { return server_; }
  void set_server(net::Endpoint server) noexcept { server_ = server; }

  // Extracts the effective A record from a response, following the CNAME
  // chain; exposed for reuse by higher layers.
  [[nodiscard]] static Result<ResolveResult> extract_address(const DnsMessage& response,
                                                             const DnsName& queried);

 private:
  DnsClient client_;
  net::Endpoint server_;
};

}  // namespace ape::dns

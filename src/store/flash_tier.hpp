// The flash tier: an LSM-style object store over the simulated device.
//
// Layout (leiyx LSM-KVStore / Ceph journaling, adapted to whole objects):
//
//   * immutable log *segments* hold object bodies append-only; the active
//     segment receives new demotions and seals at `segment_bytes`,
//   * a RAM-resident *index* (std::map — canonical iteration order, see
//     tools/lint) maps key -> (segment, metadata),
//   * every mutation is journaled (store/journal.hpp) before it is
//     applied, so replaying the journal from an empty tier reconstructs
//     the exact index and segment table,
//   * invalidation only marks bytes dead; *compaction* rewrites a sealed
//     segment's live objects into the active segment and drops it,
//     reclaiming the dead bytes.
//
// Capacity is enforced on *physical* bytes (live + dead): dead bytes
// occupy flash until compaction, which is what makes compaction a real
// resource decision rather than bookkeeping.  When space runs out the
// tier first compacts the dirtiest sealed segment, then evicts live
// objects soonest-to-expire-first (deterministic: ties break on append
// sequence).
//
// All state transitions are synchronous; device time (reads, segment
// writes, journal appends) is metered through FlashDevice so it shows up
// in sim-time latency and the ap.flash.* metrics without reordering
// events.  The exception is fetch(), whose completion waits for the
// device — a flash hit must actually cost flash latency.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>

#include "obs/observer.hpp"
#include "store/flash_device.hpp"
#include "store/journal.hpp"

namespace ape::store {

struct FlashTierParams {
  std::size_t capacity_bytes = 64 * 1000 * 1000;
  std::size_t segment_bytes = 1 * 1000 * 1000;
  // Sealed segments at or above this dead fraction are compacted eagerly
  // (below it, only under space pressure).
  double compact_dead_ratio = 0.5;
  // Journal checkpoint trigger: rewrite when records exceed
  // factor * live_entries + slack (keeps replay O(live state)).
  std::size_t journal_rewrite_factor = 8;
  std::size_t journal_rewrite_slack = 64;
};

struct Segment {
  std::size_t total_bytes = 0;  // appended payload, live + dead
  std::size_t dead_bytes = 0;
  bool sealed = false;

  [[nodiscard]] std::size_t live_bytes() const noexcept { return total_bytes - dead_bytes; }
  [[nodiscard]] double dead_ratio() const noexcept {
    return total_bytes == 0 ? 0.0
                            : static_cast<double>(dead_bytes) / static_cast<double>(total_bytes);
  }

  friend bool operator==(const Segment&, const Segment&) = default;
};

struct FlashLocation {
  SegmentId segment = 0;
  std::uint64_t seq = 0;  // append order; eviction tie-break
  ObjectMeta meta;

  friend bool operator==(const FlashLocation&, const FlashLocation&) = default;
};

class FlashTier {
 public:
  // `media` outlives the tier (it is the persistent half of the AP);
  // `observer` is nullable.
  FlashTier(FlashDevice& device, FlashMedia& media, FlashTierParams params,
            obs::Observer* observer = nullptr);

  // Mount-time recovery: rebuild index + segment table by replaying the
  // journal.  Charges a device read of the journal's footprint.
  void recover(sim::Time now);

  enum class PutOutcome { Stored, Rejected };

  // Stores (or overwrites) an object; evicts/compacts for space as needed.
  PutOutcome put(const cache::CacheEntry& entry, sim::Time now);

  // Valid (unexpired) metadata lookup; no device cost (index is in RAM).
  [[nodiscard]] const ObjectMeta* peek(const std::string& key, sim::Time now) const;

  // Async object read: pays the device read for the body, then hands the
  // metadata to `done` (nullopt when the object vanished or expired in
  // the meantime).
  void fetch(const std::string& key, sim::Time now,
             std::function<void(std::optional<ObjectMeta>)> done);

  // Marks the object dead (promotion to RAM, overwrite, explicit drop).
  bool invalidate(const std::string& key);

  // Drops every expired object; returns live bytes reclaimed.
  std::size_t sweep_expired(sim::Time now);

  // Wipes tier state *and* the journal (reset between experiment runs).
  void reset();

  // --- introspection ------------------------------------------------------
  [[nodiscard]] std::size_t capacity_bytes() const noexcept { return params_.capacity_bytes; }
  [[nodiscard]] std::size_t live_bytes() const noexcept { return live_bytes_; }
  [[nodiscard]] std::size_t physical_bytes() const noexcept { return physical_bytes_; }
  [[nodiscard]] std::size_t entry_count() const noexcept { return entries_.size(); }
  [[nodiscard]] std::size_t segment_count() const noexcept { return segments_.size(); }
  [[nodiscard]] const std::map<std::string, FlashLocation>& index() const noexcept {
    return entries_;
  }
  [[nodiscard]] const std::map<SegmentId, Segment>& segments() const noexcept {
    return segments_;
  }
  [[nodiscard]] const Journal& journal() const noexcept { return media_.journal; }
  [[nodiscard]] FlashDevice& device() noexcept { return device_; }

  [[nodiscard]] std::size_t puts() const noexcept { return puts_; }
  [[nodiscard]] std::size_t rejections() const noexcept { return rejections_; }
  [[nodiscard]] std::size_t evictions() const noexcept { return evictions_; }
  [[nodiscard]] std::size_t compactions() const noexcept { return compactions_; }
  [[nodiscard]] std::size_t recoveries() const noexcept { return recoveries_; }
  [[nodiscard]] std::size_t expired_reclaimed_bytes() const noexcept {
    return expired_reclaimed_bytes_;
  }

 private:
  // Journals a record and charges its device write.
  void journal_append(JournalRecord record);
  Segment& active_segment();
  void seal_active();
  void append_object(ObjectMeta meta);
  void mark_dead(const std::string& key);
  // Compacts every sealed segment at or above compact_dead_ratio.
  void compact_eager();
  // Frees space until `needed` fits; false when impossible.
  bool make_room(std::size_t needed, sim::Time now);
  // Sealed segment with the most dead bytes (ties: lowest id); nullopt
  // when no sealed segment has any dead bytes.
  [[nodiscard]] std::optional<SegmentId> dirtiest_sealed() const;
  void compact(SegmentId victim);
  // Soonest-to-expire live object (ties: lowest seq).
  [[nodiscard]] const std::string* eviction_victim() const;
  void maybe_rewrite_journal();

  FlashDevice& device_;
  FlashMedia& media_;
  FlashTierParams params_;
  obs::Observer* observer_ = nullptr;

  // Ordered containers throughout: eviction scans, compaction moves and
  // metric exports iterate these, and iteration order must be canonical
  // (ape-lint: unordered-iter).
  std::map<std::string, FlashLocation> entries_;
  std::map<SegmentId, Segment> segments_;
  SegmentId active_ = 0;
  bool has_active_ = false;
  SegmentId next_segment_id_ = 0;
  std::uint64_t next_seq_ = 0;

  std::size_t live_bytes_ = 0;
  std::size_t physical_bytes_ = 0;

  std::size_t puts_ = 0;
  std::size_t rejections_ = 0;
  std::size_t evictions_ = 0;
  std::size_t compactions_ = 0;
  std::size_t recoveries_ = 0;
  std::size_t expired_reclaimed_bytes_ = 0;
};

}  // namespace ape::store

// Write-ahead journal for the flash tier, and the FlashMedia handle that
// makes it persistent across AP restarts.
//
// The flash tier never mutates segments in place: every state change —
// an object appended to a segment (demotion or compaction move), an
// object invalidated, a segment sealed or dropped — is first recorded
// here.  Replaying the record sequence from an empty tier reconstructs
// the exact segment table and object index, which is what turns an AP
// reboot from a cold cache into a warm one (store/flash_tier.hpp,
// DESIGN.md §"Storage tiers & recovery").
//
// Records carry object *metadata* only; bodies are opaque simulated
// bytes living in segments.  That keeps replay O(records) and matches
// the hardware story: the index is a RAM structure rebuilt at mount
// time, the journal and segments are what flash actually stores.
//
// The journal grows with write traffic, so the tier periodically rewrites
// it (a checkpoint): the record sequence is replaced by the shortest
// sequence that reproduces the current live state.  Rewrites are counted
// and journal byte-size is tracked so the device model can charge them.
//
// Durability model: appends are write-through (a record is on flash the
// instant append() returns; the device cost is metered asynchronously).
// A "crash" therefore loses RAM state only — deliberate, deterministic,
// and the property the recovery tests pin down.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cache/entry.hpp"
#include "sim/time.hpp"

namespace ape::store {

using SegmentId = std::uint32_t;

// Flash-resident copy of an object: the CacheEntry metadata frozen at
// demotion time.  Flash copies are immutable (segments are logs), so no
// access-time bookkeeping — promotion back to RAM restarts history.
struct ObjectMeta {
  std::string key;
  std::size_t size_bytes = 0;
  std::uint32_t app_id = 0;
  int priority = 1;
  sim::Time expires{};
  sim::Duration fetch_latency{0};
  std::string etag;

  [[nodiscard]] bool expired_at(sim::Time now) const noexcept { return expires <= now; }

  [[nodiscard]] static ObjectMeta from_entry(const cache::CacheEntry& entry);
  [[nodiscard]] cache::CacheEntry to_entry() const;

  friend bool operator==(const ObjectMeta&, const ObjectMeta&) = default;
};

struct JournalRecord {
  enum class Kind : std::uint8_t {
    Append,       // object written into `segment` (demotion or compaction move)
    Invalidate,   // object at `key` is dead (promotion, overwrite, eviction, expiry)
    Seal,         // `segment` is full and immutable
    DropSegment,  // `segment` fully reclaimed by compaction
    DeadSpace,    // checkpoint only: `segment` carries meta.size_bytes dead bytes
  };

  Kind kind = Kind::Append;
  SegmentId segment = 0;
  ObjectMeta meta;  // Append: full metadata; Invalidate: key only

  // On-flash footprint estimate, charged to the device on append.
  [[nodiscard]] std::size_t encoded_bytes() const noexcept {
    return 32 + meta.key.size() + meta.etag.size();
  }

  friend bool operator==(const JournalRecord&, const JournalRecord&) = default;
};

class Journal {
 public:
  void append(JournalRecord record);

  // Checkpoint: replace the record sequence wholesale (flash_tier rewrites
  // the journal as the shortest sequence reproducing live state).
  void rewrite(std::vector<JournalRecord> records);

  void clear();

  [[nodiscard]] const std::vector<JournalRecord>& records() const noexcept { return log_; }
  [[nodiscard]] bool empty() const noexcept { return log_.empty(); }
  [[nodiscard]] std::size_t record_count() const noexcept { return log_.size(); }
  [[nodiscard]] std::size_t total_bytes() const noexcept { return total_bytes_; }
  [[nodiscard]] std::size_t rewrites() const noexcept { return rewrites_; }

 private:
  std::vector<JournalRecord> log_;
  std::size_t total_bytes_ = 0;
  std::size_t rewrites_ = 0;
};

// The durable half of the AP: survives ApRuntime teardown/reconstruction.
// A testbed (or bench) owns one and hands it to every ApRuntime incarnation;
// clear() models replacing the flash part (a true cold restart).
struct FlashMedia {
  Journal journal;

  void clear() { journal.clear(); }
  [[nodiscard]] bool formatted() const noexcept { return !journal.empty(); }
};

}  // namespace ape::store

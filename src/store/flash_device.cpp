#include "store/flash_device.hpp"

#include <utility>

namespace ape::store {

FlashDevice::FlashDevice(sim::Simulator& sim, FlashDeviceParams params)
    : params_(params), queue_(sim, params.channels) {}

sim::Duration FlashDevice::transfer_cost(std::size_t bytes, sim::Duration latency,
                                         double bandwidth) noexcept {
  if (bandwidth <= 0.0) return latency;
  const double transfer_us = static_cast<double>(bytes) / bandwidth * 1'000'000.0;
  return latency + sim::microseconds(static_cast<std::int64_t>(transfer_us));
}

sim::Duration FlashDevice::read_cost(std::size_t bytes) const noexcept {
  return transfer_cost(bytes, params_.read_latency, params_.read_bandwidth);
}

sim::Duration FlashDevice::write_cost(std::size_t bytes) const noexcept {
  return transfer_cost(bytes, params_.write_latency, params_.write_bandwidth);
}

void FlashDevice::read(std::size_t bytes, sim::ServiceQueue::Callback done) {
  ++reads_;
  bytes_read_ += bytes;
  queue_.submit(read_cost(bytes), std::move(done));
}

void FlashDevice::write(std::size_t bytes, sim::ServiceQueue::Callback done) {
  ++writes_;
  bytes_written_ += bytes;
  queue_.submit(write_cost(bytes), std::move(done));
}

void FlashDevice::read_async(std::size_t bytes) {
  ++reads_;
  bytes_read_ += bytes;
  queue_.submit(read_cost(bytes));
}

void FlashDevice::write_async(std::size_t bytes) {
  ++writes_;
  bytes_written_ += bytes;
  queue_.submit(write_cost(bytes));
}

}  // namespace ape::store

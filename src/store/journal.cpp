#include "store/journal.hpp"

#include <utility>

namespace ape::store {

ObjectMeta ObjectMeta::from_entry(const cache::CacheEntry& entry) {
  ObjectMeta meta;
  meta.key = entry.key;
  meta.size_bytes = entry.size_bytes;
  meta.app_id = entry.app_id;
  meta.priority = entry.priority;
  meta.expires = entry.expires;
  meta.fetch_latency = entry.fetch_latency;
  meta.etag = entry.etag;
  return meta;
}

cache::CacheEntry ObjectMeta::to_entry() const {
  cache::CacheEntry entry;
  entry.key = key;
  entry.size_bytes = size_bytes;
  entry.app_id = app_id;
  entry.priority = priority;
  entry.expires = expires;
  entry.fetch_latency = fetch_latency;
  entry.etag = etag;
  return entry;
}

void Journal::append(JournalRecord record) {
  total_bytes_ += record.encoded_bytes();
  log_.push_back(std::move(record));
}

void Journal::rewrite(std::vector<JournalRecord> records) {
  log_ = std::move(records);
  total_bytes_ = 0;
  for (const auto& r : log_) total_bytes_ += r.encoded_bytes();
  ++rewrites_;
}

void Journal::clear() {
  log_.clear();
  total_bytes_ = 0;
}

}  // namespace ape::store

#include "store/tiered_store.hpp"

#include <utility>

namespace ape::store {

TieredStore::TieredStore(sim::Simulator& sim, cache::CacheStore& ram, FlashTier& flash)
    : sim_(sim), ram_(ram), flash_(flash) {
  ram_.set_removal_listener([this](const cache::CacheEntry& entry, cache::RemovalCause cause) {
    on_ram_removal(entry, cause);
  });
}

cache::CacheStore::InsertOutcome TieredStore::insert(cache::CacheEntry entry, sim::Time now) {
  const std::string key = entry.key;
  const auto outcome = ram_.insert(std::move(entry), now);
  if (outcome == cache::CacheStore::InsertOutcome::Inserted) {
    // The fresh copy supersedes any flash-resident one.
    flash_.invalidate(key);
  }
  return outcome;
}

void TieredStore::fetch_flash(const std::string& key, sim::Time now,
                              std::function<void(std::optional<cache::CacheEntry>)> done) {
  // Capture the ambient context synchronously — by the time the device read
  // completes the caller's push/pop scope is long gone.
  obs::TraceContext read_span;
  if (obs::SpanLog* log = spans(); log != nullptr) {
    read_span = log->open(log->current_context(), "ap.flash.read", "store", key, now);
  }
  flash_.fetch(key, now, [this, read_span,
                          done = std::move(done)](std::optional<ObjectMeta> meta) mutable {
    if (obs::SpanLog* log = spans(); log != nullptr) log->close(read_span, sim_.now());
    if (!meta.has_value()) {
      ++flash_misses_;
      done(std::nullopt);
      return;
    }
    ++flash_hits_;
    cache::CacheEntry entry = meta->to_entry();
    // Promotion attempt: offer the object back to RAM at completion time.
    // The RAM policy may refuse (the object is not worth its evictions);
    // then the flash copy stays put and we serve from flash — no thrash.
    cache::CacheStore::InsertOutcome outcome;
    {
      obs::ScopedTraceContext ambient(spans(), read_span);  // -> pacm.solve
      outcome = ram_.insert(entry, sim_.now());
    }
    if (outcome == cache::CacheStore::InsertOutcome::Inserted) {
      ++promotions_;
      flash_.invalidate(entry.key);  // RAM copy is authoritative again
    }
    done(std::move(entry));
  });
}

double TieredStore::flash_read_ms(const cache::CacheEntry& entry) const {
  return sim::to_millis(flash_.device().read_cost(entry.size_bytes));
}

void TieredStore::on_ram_removal(const cache::CacheEntry& entry, cache::RemovalCause cause) {
  if (cause != cache::RemovalCause::Evicted) return;
  const sim::Time now = sim_.now();
  if (entry.expired_at(now)) return;  // stale victims are just dropped
  // Demotion only pays off when a flash read beats refetching upstream.
  if (flash_.device().read_cost(entry.size_bytes) >= entry.fetch_latency) {
    ++demotion_skips_;
    return;
  }
  if (flash_.put(entry, now) == FlashTier::PutOutcome::Stored) {
    ++demotions_;
  } else {
    ++demotion_skips_;
  }
}

}  // namespace ape::store

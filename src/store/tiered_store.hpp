// TieredStore — glue between the RAM cache and the flash tier.
//
// The RAM tier stays the authoritative hot store (cache::CacheStore, with
// PACM or any other policy choosing victims); this class wires the two
// tiers together:
//
//   * RAM evictions *demote*: the removal listener catches Evicted
//     entries and appends them to flash — but only when reading them back
//     from flash would actually beat refetching from the edge, and only
//     while they are still valid.  Expired, replaced and explicitly
//     erased entries are dead data nobody should pay flash writes for.
//   * flash hits *promote*: fetch_flash() pays the device read, then
//     offers the object back to RAM.  If the policy takes it the flash
//     copy is invalidated (RAM is authoritative again); if the policy
//     rejects it the object is served straight from flash and the flash
//     copy stays — no thrash.
//   * fresh inserts invalidate: a new copy fetched from the edge
//     supersedes any flash-resident copy of the same key.
//
// Exactly one TieredStore may claim a CacheStore's removal listener; the
// constructor installs it.
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "cache/object_store.hpp"
#include "obs/observer.hpp"
#include "sim/simulator.hpp"
#include "store/flash_tier.hpp"

namespace ape::store {

class TieredStore {
 public:
  // `ram` and `flash` must outlive this object (plus any in-flight
  // fetch_flash completions — same quiesce rule as the device queue).
  TieredStore(sim::Simulator& sim, cache::CacheStore& ram, FlashTier& flash);

  // RAM insert of a freshly fetched object; supersedes any flash copy.
  cache::CacheStore::InsertOutcome insert(cache::CacheEntry entry, sim::Time now);

  // True when a valid copy lives on flash (index probe, no device cost).
  [[nodiscard]] bool flash_contains(const std::string& key, sim::Time now) const {
    return flash_.peek(key, now) != nullptr;
  }

  // Reads an object off flash (paying device time), attempts promotion to
  // RAM, and hands the entry to `done` (nullopt: not on flash / expired).
  // The device read is recorded as an "ap.flash.read" span parented on the
  // ambient trace context captured at entry.
  void fetch_flash(const std::string& key, sim::Time now,
                   std::function<void(std::optional<cache::CacheEntry>)> done);

  // Nullable span sink for ap.flash.read spans.
  void set_observer(obs::Observer* observer) noexcept { observer_ = observer; }

  // PACM's tier-aware latency-saved input: what serving this entry from
  // flash would cost, in milliseconds (core/pacm_policy.hpp).
  [[nodiscard]] double flash_read_ms(const cache::CacheEntry& entry) const;

  // Drops expired flash objects; returns live bytes reclaimed (the RAM
  // sweep is driven separately by ApRuntime).
  std::size_t sweep_flash_expired(sim::Time now) { return flash_.sweep_expired(now); }

  [[nodiscard]] FlashTier& flash() noexcept { return flash_; }
  [[nodiscard]] const FlashTier& flash() const noexcept { return flash_; }

  [[nodiscard]] std::size_t demotions() const noexcept { return demotions_; }
  [[nodiscard]] std::size_t demotion_skips() const noexcept { return demotion_skips_; }
  [[nodiscard]] std::size_t promotions() const noexcept { return promotions_; }
  [[nodiscard]] std::size_t flash_hits() const noexcept { return flash_hits_; }
  [[nodiscard]] std::size_t flash_misses() const noexcept { return flash_misses_; }

 private:
  void on_ram_removal(const cache::CacheEntry& entry, cache::RemovalCause cause);
  [[nodiscard]] obs::SpanLog* spans() const {
    return observer_ == nullptr ? nullptr : &observer_->spans();
  }

  sim::Simulator& sim_;
  cache::CacheStore& ram_;
  FlashTier& flash_;
  obs::Observer* observer_ = nullptr;

  std::size_t demotions_ = 0;
  std::size_t demotion_skips_ = 0;
  std::size_t promotions_ = 0;
  std::size_t flash_hits_ = 0;
  std::size_t flash_misses_ = 0;
};

}  // namespace ape::store

// Simulated flash device — the cost model behind the flash tier.
//
// Real AP hardware ships NOR/NAND flash (or an SD card) that is orders of
// magnitude slower than DRAM but still far faster than a WAN round trip:
// a flash hit costs ~a millisecond of device time versus ~30 ms to the
// edge.  Every byte moved to or from the flash tier goes through this
// model so tiered runs charge that cost in sim-time.
//
// Built on sim::ServiceQueue: the device is a single-resource (or
// multi-channel) queue, so concurrent reads/writes serialize and flash
// latency rises under load exactly like the AP CPU does.  An op costs a
// fixed per-op setup latency plus bytes / bandwidth.
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/service_queue.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace ape::store {

struct FlashDeviceParams {
  // Per-op setup cost (command issue, page lookup).  Reads are cheaper
  // than writes on every flash technology.
  sim::Duration read_latency{sim::microseconds(150)};
  sim::Duration write_latency{sim::microseconds(400)};
  // Sustained transfer rates in bytes/second (SD-card class defaults).
  double read_bandwidth = 80e6;
  double write_bandwidth = 25e6;
  // Independent flash channels; >1 models an eMMC-style parallel part.
  std::size_t channels = 1;
};

class FlashDevice {
 public:
  FlashDevice(sim::Simulator& sim, FlashDeviceParams params);

  // Async transfer of `bytes`; `done` fires after queueing + device time.
  void read(std::size_t bytes, sim::ServiceQueue::Callback done);
  void write(std::size_t bytes, sim::ServiceQueue::Callback done);

  // Fire-and-forget transfers (journal appends, compaction rewrites,
  // replay scans): they occupy the device — later reads queue behind
  // them — but nobody waits on them.
  void read_async(std::size_t bytes);
  void write_async(std::size_t bytes);

  // Cost previews (used by tier-aware PACM to discount l_d for objects a
  // RAM eviction would merely demote).
  [[nodiscard]] sim::Duration read_cost(std::size_t bytes) const noexcept;
  [[nodiscard]] sim::Duration write_cost(std::size_t bytes) const noexcept;

  [[nodiscard]] std::size_t reads() const noexcept { return reads_; }
  [[nodiscard]] std::size_t writes() const noexcept { return writes_; }
  [[nodiscard]] std::uint64_t bytes_read() const noexcept { return bytes_read_; }
  [[nodiscard]] std::uint64_t bytes_written() const noexcept { return bytes_written_; }
  [[nodiscard]] sim::Duration busy_time() const noexcept { return queue_.busy_time(); }
  [[nodiscard]] std::size_t queued() const noexcept { return queue_.queued(); }

 private:
  [[nodiscard]] static sim::Duration transfer_cost(std::size_t bytes, sim::Duration latency,
                                                   double bandwidth) noexcept;

  FlashDeviceParams params_;
  sim::ServiceQueue queue_;
  std::size_t reads_ = 0;
  std::size_t writes_ = 0;
  std::uint64_t bytes_read_ = 0;
  std::uint64_t bytes_written_ = 0;
};

}  // namespace ape::store

#include "store/flash_tier.hpp"

#include <algorithm>
#include <cassert>
#include <utility>
#include <vector>

namespace ape::store {

FlashTier::FlashTier(FlashDevice& device, FlashMedia& media, FlashTierParams params,
                     obs::Observer* observer)
    : device_(device), media_(media), params_(params), observer_(observer) {}

void FlashTier::journal_append(JournalRecord record) {
  device_.write_async(record.encoded_bytes());
  media_.journal.append(std::move(record));
}

Segment& FlashTier::active_segment() {
  if (!has_active_) {
    active_ = next_segment_id_++;
    segments_[active_] = Segment{};
    has_active_ = true;
  }
  return segments_[active_];
}

void FlashTier::seal_active() {
  if (!has_active_) return;
  segments_[active_].sealed = true;
  JournalRecord rec;
  rec.kind = JournalRecord::Kind::Seal;
  rec.segment = active_;
  journal_append(std::move(rec));
  has_active_ = false;
}

void FlashTier::append_object(ObjectMeta meta) {
  if (has_active_) {
    const Segment& cur = segments_[active_];
    if (cur.total_bytes > 0 && cur.total_bytes + meta.size_bytes > params_.segment_bytes) {
      seal_active();
    }
  }
  Segment& seg = active_segment();
  JournalRecord rec;
  rec.kind = JournalRecord::Kind::Append;
  rec.segment = active_;
  rec.meta = meta;
  // One device write covers body + journal record: they land together.
  device_.write_async(meta.size_bytes + rec.encoded_bytes());
  media_.journal.append(std::move(rec));
  seg.total_bytes += meta.size_bytes;
  physical_bytes_ += meta.size_bytes;
  live_bytes_ += meta.size_bytes;
  const std::string key = meta.key;
  entries_[key] = FlashLocation{active_, next_seq_++, std::move(meta)};
}

void FlashTier::mark_dead(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  const std::size_t size = it->second.meta.size_bytes;
  segments_.at(it->second.segment).dead_bytes += size;
  live_bytes_ -= size;
  JournalRecord rec;
  rec.kind = JournalRecord::Kind::Invalidate;
  rec.segment = it->second.segment;
  rec.meta.key = key;
  journal_append(std::move(rec));
  entries_.erase(it);
}

FlashTier::PutOutcome FlashTier::put(const cache::CacheEntry& entry, sim::Time now) {
  if (entry.size_bytes > params_.capacity_bytes || entry.expires <= now) {
    ++rejections_;
    return PutOutcome::Rejected;
  }
  mark_dead(entry.key);  // overwrite: the old copy dies first
  if (!make_room(entry.size_bytes, now)) {
    ++rejections_;
    return PutOutcome::Rejected;
  }
  append_object(ObjectMeta::from_entry(entry));
  ++puts_;
  compact_eager();
  maybe_rewrite_journal();
  return PutOutcome::Stored;
}

const ObjectMeta* FlashTier::peek(const std::string& key, sim::Time now) const {
  auto it = entries_.find(key);
  if (it == entries_.end() || it->second.meta.expired_at(now)) return nullptr;
  return &it->second.meta;
}

void FlashTier::fetch(const std::string& key, sim::Time now,
                      std::function<void(std::optional<ObjectMeta>)> done) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    done(std::nullopt);
    return;
  }
  if (it->second.meta.expired_at(now)) {
    mark_dead(key);  // lazy expiry, mirroring CacheStore::get
    done(std::nullopt);
    return;
  }
  ObjectMeta meta = it->second.meta;
  const std::size_t bytes = meta.size_bytes;
  device_.read(bytes, [done = std::move(done), meta = std::move(meta)]() mutable {
    // The index may have changed while the device was busy; the copy read
    // off flash was valid when the read was issued, so serve it.
    done(std::move(meta));
  });
}

bool FlashTier::invalidate(const std::string& key) {
  if (entries_.find(key) == entries_.end()) return false;
  mark_dead(key);
  maybe_rewrite_journal();
  return true;
}

std::size_t FlashTier::sweep_expired(sim::Time now) {
  std::vector<std::string> dead_keys;
  for (const auto& [key, loc] : entries_) {
    if (loc.meta.expired_at(now)) dead_keys.push_back(key);
  }
  std::size_t reclaimed = 0;
  for (const auto& key : dead_keys) {
    reclaimed += entries_.at(key).meta.size_bytes;
    mark_dead(key);
  }
  expired_reclaimed_bytes_ += reclaimed;
  if (!dead_keys.empty()) {
    compact_eager();
    maybe_rewrite_journal();
  }
  return reclaimed;
}

void FlashTier::reset() {
  entries_.clear();
  segments_.clear();
  has_active_ = false;
  active_ = 0;
  next_segment_id_ = 0;
  next_seq_ = 0;
  live_bytes_ = 0;
  physical_bytes_ = 0;
  puts_ = 0;
  rejections_ = 0;
  evictions_ = 0;
  compactions_ = 0;
  recoveries_ = 0;
  expired_reclaimed_bytes_ = 0;
  media_.journal.clear();
}

bool FlashTier::make_room(std::size_t needed, sim::Time now) {
  if (physical_bytes_ + needed <= params_.capacity_bytes) return true;
  sweep_expired(now);  // cheapest reclamation first
  // Each round either compacts a segment away, kills a live object, or
  // seals the active segment; the guard bounds the loop regardless.
  std::size_t guard = 2 * (entries_.size() + segments_.size()) + 8;
  while (physical_bytes_ + needed > params_.capacity_bytes && guard-- > 0) {
    if (const auto victim = dirtiest_sealed(); victim.has_value()) {
      compact(*victim);
      continue;
    }
    if (has_active_ && segments_.at(active_).dead_bytes > 0) {
      // Dead bytes are stuck in the (unsealed) active segment: seal it so
      // compaction can reclaim them before any live object is sacrificed.
      seal_active();
      continue;
    }
    if (const std::string* key = eviction_victim(); key != nullptr) {
      ++evictions_;
      mark_dead(*key);
      continue;
    }
    return false;
  }
  return physical_bytes_ + needed <= params_.capacity_bytes;
}

std::optional<SegmentId> FlashTier::dirtiest_sealed() const {
  std::optional<SegmentId> best;
  std::size_t best_dead = 0;
  for (const auto& [id, seg] : segments_) {
    if (seg.sealed && seg.dead_bytes > best_dead) {
      best = id;
      best_dead = seg.dead_bytes;
    }
  }
  return best;
}

void FlashTier::compact_eager() {
  for (;;) {
    std::optional<SegmentId> victim;
    std::size_t worst_dead = 0;
    for (const auto& [id, seg] : segments_) {
      if (!seg.sealed || seg.dead_bytes == 0) continue;
      if (seg.dead_ratio() >= params_.compact_dead_ratio && seg.dead_bytes > worst_dead) {
        victim = id;
        worst_dead = seg.dead_bytes;
      }
    }
    if (!victim.has_value()) return;
    compact(*victim);
  }
}

void FlashTier::compact(SegmentId victim) {
  assert(segments_.at(victim).sealed);
  // Live objects still in the victim, in original append order.
  std::vector<std::pair<std::uint64_t, std::string>> movers;
  for (const auto& [key, loc] : entries_) {
    if (loc.segment == victim) movers.emplace_back(loc.seq, key);
  }
  std::sort(movers.begin(), movers.end());
  std::size_t moved_bytes = 0;
  for (const auto& [seq, key] : movers) moved_bytes += entries_.at(key).meta.size_bytes;
  device_.read_async(moved_bytes);  // read live bodies out of the old segment
  for (const auto& [seq, key] : movers) {
    ObjectMeta meta = entries_.at(key).meta;
    live_bytes_ -= meta.size_bytes;  // append_object re-adds
    entries_.erase(key);
    append_object(std::move(meta));
  }
  physical_bytes_ -= segments_.at(victim).total_bytes;
  segments_.erase(victim);
  JournalRecord rec;
  rec.kind = JournalRecord::Kind::DropSegment;
  rec.segment = victim;
  journal_append(std::move(rec));
  ++compactions_;
}

const std::string* FlashTier::eviction_victim() const {
  const std::string* victim = nullptr;
  const FlashLocation* best = nullptr;
  for (const auto& [key, loc] : entries_) {
    if (best == nullptr || loc.meta.expires < best->meta.expires ||
        (loc.meta.expires == best->meta.expires && loc.seq < best->seq)) {
      victim = &key;
      best = &loc;
    }
  }
  return victim;
}

void FlashTier::recover(sim::Time now) {
  entries_.clear();
  segments_.clear();
  has_active_ = false;
  active_ = 0;
  next_segment_id_ = 0;
  next_seq_ = 0;
  live_bytes_ = 0;
  physical_bytes_ = 0;

  device_.read_async(media_.journal.total_bytes());  // replay scans the journal
  for (const auto& rec : media_.journal.records()) {
    switch (rec.kind) {
      case JournalRecord::Kind::Append: {
        auto old = entries_.find(rec.meta.key);
        if (old != entries_.end()) {
          segments_[old->second.segment].dead_bytes += old->second.meta.size_bytes;
          live_bytes_ -= old->second.meta.size_bytes;
          entries_.erase(old);
        }
        Segment& seg = segments_[rec.segment];
        seg.total_bytes += rec.meta.size_bytes;
        physical_bytes_ += rec.meta.size_bytes;
        live_bytes_ += rec.meta.size_bytes;
        entries_[rec.meta.key] = FlashLocation{rec.segment, next_seq_++, rec.meta};
        if (rec.segment >= next_segment_id_) next_segment_id_ = rec.segment + 1;
        break;
      }
      case JournalRecord::Kind::Invalidate: {
        auto it = entries_.find(rec.meta.key);
        if (it == entries_.end()) break;
        segments_[it->second.segment].dead_bytes += it->second.meta.size_bytes;
        live_bytes_ -= it->second.meta.size_bytes;
        entries_.erase(it);
        break;
      }
      case JournalRecord::Kind::Seal: {
        segments_[rec.segment].sealed = true;
        if (rec.segment >= next_segment_id_) next_segment_id_ = rec.segment + 1;
        break;
      }
      case JournalRecord::Kind::DropSegment: {
        auto seg_it = segments_.find(rec.segment);
        if (seg_it == segments_.end()) break;
        physical_bytes_ -= seg_it->second.total_bytes;
        // Compaction moves every live object out before dropping, so no
        // index entry should still point here; guard against a malformed
        // journal anyway.
        for (auto it = entries_.begin(); it != entries_.end();) {
          if (it->second.segment == rec.segment) {
            live_bytes_ -= it->second.meta.size_bytes;
            it = entries_.erase(it);
          } else {
            ++it;
          }
        }
        segments_.erase(seg_it);
        break;
      }
      case JournalRecord::Kind::DeadSpace: {
        Segment& seg = segments_[rec.segment];
        seg.total_bytes += rec.meta.size_bytes;
        seg.dead_bytes += rec.meta.size_bytes;
        physical_bytes_ += rec.meta.size_bytes;
        if (rec.segment >= next_segment_id_) next_segment_id_ = rec.segment + 1;
        break;
      }
    }
  }
  // At most one segment is ever unsealed (the pre-crash active one);
  // re-adopt it so post-recovery state matches pre-crash state exactly.
  for (const auto& [id, seg] : segments_) {
    if (!seg.sealed) {
      active_ = id;
      has_active_ = true;
    }
  }
  ++recoveries_;
  if (observer_ != nullptr) {
    observer_->event(now, "store", "journal_replay", "",
                     std::to_string(media_.journal.record_count()) + " records");
  }
}

void FlashTier::maybe_rewrite_journal() {
  const std::size_t budget =
      params_.journal_rewrite_factor * (entries_.size() + segments_.size()) +
      params_.journal_rewrite_slack;
  if (media_.journal.record_count() <= budget) return;

  // Checkpoint: the shortest record sequence reproducing live state.
  // Appends go in global seq order so a replay assigns the same relative
  // order — the eviction tie-break survives the checkpoint.
  std::vector<std::pair<std::uint64_t, const std::string*>> order;
  order.reserve(entries_.size());
  for (const auto& [key, loc] : entries_) order.emplace_back(loc.seq, &key);
  std::sort(order.begin(), order.end());

  // Renumber live seqs to what replaying the rewritten journal will
  // assign (0..N-1 in emission order): post-checkpoint in-memory state
  // and its replay stay *identical*, not merely order-equivalent.
  std::uint64_t renumbered = 0;
  for (const auto& [old_seq, key] : order) entries_.at(*key).seq = renumbered++;
  next_seq_ = renumbered;

  std::vector<JournalRecord> fresh;
  fresh.reserve(entries_.size() + 2 * segments_.size());
  for (const auto& [seq, key] : order) {
    const FlashLocation& loc = entries_.at(*key);
    JournalRecord rec;
    rec.kind = JournalRecord::Kind::Append;
    rec.segment = loc.segment;
    rec.meta = loc.meta;
    fresh.push_back(std::move(rec));
  }
  for (const auto& [id, seg] : segments_) {
    if (seg.dead_bytes > 0) {
      JournalRecord rec;
      rec.kind = JournalRecord::Kind::DeadSpace;
      rec.segment = id;
      rec.meta.size_bytes = seg.dead_bytes;
      fresh.push_back(std::move(rec));
    }
    if (seg.sealed) {
      JournalRecord rec;
      rec.kind = JournalRecord::Kind::Seal;
      rec.segment = id;
      fresh.push_back(std::move(rec));
    }
  }
  media_.journal.rewrite(std::move(fresh));
  device_.write_async(media_.journal.total_bytes());
}

}  // namespace ape::store

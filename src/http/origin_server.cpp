#include "http/origin_server.hpp"

#include <utility>

namespace ape::http {

void ObjectCatalog::add(ObjectSpec spec) {
  auto key = spec.base_url;
  by_url_.insert_or_assign(std::move(key), std::move(spec));
}

const ObjectSpec* ObjectCatalog::find(const std::string& base_url) const {
  auto it = by_url_.find(base_url);
  return it == by_url_.end() ? nullptr : &it->second;
}

std::vector<const ObjectSpec*> ObjectCatalog::all() const {
  std::vector<const ObjectSpec*> out;
  out.reserve(by_url_.size());
  for (const auto& [_, spec] : by_url_) out.push_back(&spec);
  return out;
}

HttpResponse make_object_response(const ObjectSpec& spec, bool cache_hit) {
  HttpResponse resp;
  resp.status = 200;
  resp.simulated_body_bytes = spec.size_bytes;
  resp.headers.emplace_back("X-Object-TTL", std::to_string(spec.ttl_seconds));
  resp.headers.emplace_back("X-Object-Priority", std::to_string(spec.priority));
  resp.headers.emplace_back("X-Object-App", std::to_string(spec.app_id));
  resp.headers.emplace_back("X-Cache", cache_hit ? "HIT" : "MISS");
  resp.headers.emplace_back("ETag", object_etag(spec));
  return resp;
}

std::string object_etag(const ObjectSpec& spec) {
  // Objects are immutable for a given (url, size) in this model; a real
  // deployment would hash content.
  return "\"" + std::to_string(spec.size_bytes) + "-" +
         std::to_string(spec.base_url.size()) + "\"";
}

OriginServer::OriginServer(net::TcpTransport& tcp, net::NodeId node, sim::ServiceQueue& cpu,
                           ServiceCost cost)
    : server_(tcp, node, net::kHttpPort, cpu, cost), sim_(tcp.network().simulator()) {
  server_.set_fallback([this](const HttpRequest& req, net::Endpoint, HttpServer::Responder r) {
    handle(req, std::move(r));
  });
}

obs::SpanLog* OriginServer::spans() const {
  return observer_ == nullptr ? nullptr : &observer_->spans();
}

void OriginServer::handle(const HttpRequest& request, HttpServer::Responder respond) {
  const ObjectSpec* spec = catalog_.find(request.url.base());
  if (spec == nullptr) {
    respond(make_status_response(404, "unknown object"));
    return;
  }
  obs::TraceContext serve_span;
  if (obs::SpanLog* log = spans(); log != nullptr) {
    if (const std::string* h = find_trace_context_header(request.headers)) {
      serve_span = log->open(obs::decode_trace_context(*h), "origin.serve", "origin",
                             request.url.base(), sim_.now());
    }
  }
  // The extra latency models backend work / upstream distance; it delays
  // the response without occupying this node's CPU.
  sim_.schedule_in(spec->extra_latency, [this, spec, serve_span,
                                         respond = std::move(respond)] {
    if (obs::SpanLog* log = spans(); log != nullptr) log->close(serve_span, sim_.now());
    respond(make_object_response(*spec, false));
  });
}

}  // namespace ape::http

#include "http/url.hpp"

#include <algorithm>
#include <cctype>

namespace ape::http {

Result<Url> Url::parse(const std::string& text) {
  Url url;
  std::string_view rest{text};

  if (const auto scheme_end = rest.find("://"); scheme_end != std::string_view::npos) {
    url.scheme = std::string(rest.substr(0, scheme_end));
    std::transform(url.scheme.begin(), url.scheme.end(), url.scheme.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
    if (url.scheme != "http" && url.scheme != "https") {
      return make_error<Url>("unsupported scheme: " + url.scheme);
    }
    rest.remove_prefix(scheme_end + 3);
  }

  const auto path_start = rest.find('/');
  std::string_view authority =
      path_start == std::string_view::npos ? rest : rest.substr(0, path_start);
  if (authority.empty()) return make_error<Url>("missing host");

  if (const auto colon = authority.find(':'); colon != std::string_view::npos) {
    url.host = std::string(authority.substr(0, colon));
    const std::string_view port_text = authority.substr(colon + 1);
    if (port_text.empty() ||
        !std::all_of(port_text.begin(), port_text.end(),
                     [](unsigned char c) { return std::isdigit(c); })) {
      return make_error<Url>("invalid port");
    }
    const unsigned long port = std::stoul(std::string(port_text));
    if (port == 0 || port > 65535) return make_error<Url>("port out of range");
    url.port = static_cast<std::uint16_t>(port);
  } else {
    url.host = std::string(authority);
  }
  std::transform(url.host.begin(), url.host.end(), url.host.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (url.host.empty()) return make_error<Url>("missing host");

  if (path_start == std::string_view::npos) {
    url.path = "/";
  } else {
    std::string_view path_and_query = rest.substr(path_start);
    if (const auto qmark = path_and_query.find('?'); qmark != std::string_view::npos) {
      url.path = std::string(path_and_query.substr(0, qmark));
      url.query = std::string(path_and_query.substr(qmark + 1));
    } else {
      url.path = std::string(path_and_query);
    }
  }
  return url;
}

std::uint16_t Url::effective_port() const noexcept {
  if (port != 0) return port;
  return scheme == "https" ? 443 : 80;
}

std::string Url::to_string() const {
  std::string out = scheme + "://" + host;
  if (port != 0) out += ":" + std::to_string(port);
  out += path;
  if (!query.empty()) out += "?" + query;
  return out;
}

std::string Url::base() const {
  std::string out = scheme + "://" + host;
  if (port != 0) out += ":" + std::to_string(port);
  out += path;
  return out;
}

}  // namespace ape::http

// HTTP client/server endpoints over the simulated TCP transport.
//
// Server requests are charged to the node's CPU (base cost + per-kB cost),
// which is how serving traffic shows up in the Fig. 2 / Fig. 14 resource
// plots and why retrieval latency climbs with request frequency (Fig. 11c).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "http/message.hpp"
#include "net/tcp.hpp"
#include "sim/service_queue.hpp"

namespace ape::http {

struct ServiceCost {
  sim::Duration base{sim::microseconds(300)};
  sim::Duration per_kilobyte{sim::microseconds(10)};

  [[nodiscard]] sim::Duration for_bytes(std::size_t bytes) const noexcept {
    return base + sim::Duration{per_kilobyte.count() *
                                static_cast<std::int64_t>(bytes / 1024)};
  }
};

class HttpServer {
 public:
  using Responder = std::function<void(HttpResponse)>;
  using Handler = std::function<void(const HttpRequest&, net::Endpoint peer, Responder)>;

  HttpServer(net::TcpTransport& tcp, net::NodeId node, net::Port port, sim::ServiceQueue& cpu,
             ServiceCost cost = {});
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Longest-prefix route on the request path; later routes win ties.
  void route(std::string path_prefix, Handler handler);
  void set_fallback(Handler handler);

  [[nodiscard]] net::NodeId node() const noexcept { return node_; }
  [[nodiscard]] std::size_t requests_served() const noexcept { return requests_; }

 private:
  void dispatch(const HttpRequest& request, net::Endpoint peer, Responder respond);

  net::TcpTransport& tcp_;
  net::NodeId node_;
  net::Port port_;
  sim::ServiceQueue& cpu_;
  ServiceCost cost_;
  std::vector<std::pair<std::string, Handler>> routes_;
  Handler fallback_;
  std::size_t requests_ = 0;
};

struct FetchTiming {
  sim::Duration connect{0};     // TCP initiation -> established
  sim::Duration first_byte{0};  // TCP initiation -> response arrival
};

class HttpClient {
 public:
  HttpClient(net::TcpTransport& tcp, net::NodeId node);

  using FetchHandler = std::function<void(Result<HttpResponse>, FetchTiming)>;

  // One-shot fetch: connect, send, receive, close — matching the paper's
  // per-object retrieval measurement (TCP initiation to first byte read).
  void fetch(net::Endpoint server, HttpRequest request, FetchHandler handler);

  [[nodiscard]] net::NodeId node() const noexcept { return node_; }

 private:
  net::TcpTransport& tcp_;
  net::NodeId node_;
};

}  // namespace ape::http

// Edge cache server.
//
// Per the paper's evaluation assumption (Sec. V-A) the edge has "ample"
// capacity: objects preloaded into (or fetched through) it are never
// evicted.  Client-facing requests are warm cache hits and cost pure
// network time (Fig. 11c's ~30 ms edge retrieval).  Cache-fill pulls —
// requests carrying the X-Origin-Pull header, issued by the APE-CACHE
// delegation path and the Wi-Cache prefetcher — additionally pay the
// object's configured backend latency (the paper's per-object "retrieval
// latency" of 20-50 ms), modeling the origin fetch behind the edge that a
// cold copy requires.  On a true miss with an upstream origin configured,
// the edge fetches, stores, and responds (the Fig. 1 flow).
#pragma once

#include "http/origin_server.hpp"
#include "obs/observer.hpp"

namespace ape::http {

class EdgeCacheServer {
 public:
  EdgeCacheServer(net::TcpTransport& tcp, net::NodeId node, sim::ServiceQueue& cpu,
                  ServiceCost cost = {});

  // Preload: the object is served as a HIT from the start.
  void host(ObjectSpec spec);
  // Optional origin for misses.
  void set_upstream(net::Endpoint origin) noexcept { upstream_ = origin; }
  // Nullable span sink: edge.serve / origin.serve / http.fetch spans are
  // parented under the X-Ape-Trace context of the inbound request.
  void set_observer(obs::Observer* observer) noexcept { observer_ = observer; }

  [[nodiscard]] const ObjectCatalog& catalog() const noexcept { return catalog_; }
  [[nodiscard]] std::size_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::size_t misses() const noexcept { return misses_; }
  [[nodiscard]] std::size_t requests_served() const noexcept { return server_.requests_served(); }

 private:
  void handle(const HttpRequest& request, HttpServer::Responder respond);
  [[nodiscard]] obs::SpanLog* spans() const;

  HttpServer server_;
  HttpClient upstream_client_;
  ObjectCatalog catalog_;
  std::optional<net::Endpoint> upstream_;
  sim::Simulator& sim_;
  obs::Observer* observer_ = nullptr;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace ape::http

#include "http/edge_server.hpp"

#include <utility>

namespace ape::http {

EdgeCacheServer::EdgeCacheServer(net::TcpTransport& tcp, net::NodeId node,
                                 sim::ServiceQueue& cpu, ServiceCost cost)
    : server_(tcp, node, net::kHttpPort, cpu, cost),
      upstream_client_(tcp, node),
      sim_(tcp.network().simulator()) {
  server_.set_fallback([this](const HttpRequest& req, net::Endpoint, HttpServer::Responder r) {
    handle(req, std::move(r));
  });
}

void EdgeCacheServer::host(ObjectSpec spec) {
  catalog_.add(std::move(spec));
}

obs::SpanLog* EdgeCacheServer::spans() const {
  return observer_ == nullptr ? nullptr : &observer_->spans();
}

void EdgeCacheServer::handle(const HttpRequest& request, HttpServer::Responder respond) {
  const std::string base = request.url.base();

  obs::TraceContext serve_span;
  if (obs::SpanLog* log = spans(); log != nullptr) {
    if (const std::string* h = find_trace_context_header(request.headers)) {
      serve_span =
          log->open(obs::decode_trace_context(*h), "edge.serve", "edge", base, sim_.now());
    }
    if (serve_span.valid()) {
      respond = [this, serve_span, respond = std::move(respond)](HttpResponse resp) mutable {
        spans()->close(serve_span, sim_.now());
        respond(std::move(resp));
      };
    }
  }

  if (const ObjectSpec* spec = catalog_.find(base); spec != nullptr) {
    ++hits_;
    // Conditional request with a matching validator: 304, no body, and no
    // origin pull — the whole point of the revalidation extension.
    if (const auto* match = find_header(request.headers, "If-None-Match");
        match != nullptr && *match == object_etag(*spec)) {
      HttpResponse not_modified;
      not_modified.status = 304;
      not_modified.headers.emplace_back("X-Object-TTL", std::to_string(spec->ttl_seconds));
      not_modified.headers.emplace_back("ETag", object_etag(*spec));
      respond(std::move(not_modified));
      return;
    }
    const bool origin_pull = find_header(request.headers, "X-Origin-Pull") != nullptr;
    const sim::Duration delay = origin_pull ? spec->extra_latency : sim::Duration{0};
    // The modeled origin fetch behind the edge is the origin.serve span: it
    // is where a cache-fill pull's backend latency is actually spent.
    obs::TraceContext pull_span;
    if (obs::SpanLog* log = spans(); log != nullptr && origin_pull) {
      pull_span = log->open(serve_span, "origin.serve", "origin", base, sim_.now());
    }
    sim_.schedule_in(delay, [this, spec, pull_span, respond = std::move(respond)] {
      if (obs::SpanLog* log = spans(); log != nullptr) log->close(pull_span, sim_.now());
      respond(make_object_response(*spec, true));
    });
    return;
  }

  ++misses_;
  if (!upstream_) {
    respond(make_status_response(404, "object not at edge"));
    return;
  }

  // Rewrite the request toward the origin, keep the path identity.
  HttpRequest upstream_req = request;
  obs::SpanLog* log = spans();
  obs::TraceContext fetch_span;
  if (log != nullptr) {
    fetch_span = log->open(serve_span, "http.fetch", "edge", base, sim_.now());
    if (fetch_span.valid()) {
      // Replace, never forward: the origin must parent under *this* hop.
      set_trace_context_header(upstream_req.headers, obs::encode_trace_context(fetch_span));
    }
  }
  obs::ScopedTraceContext ambient(log, fetch_span);  // -> net.connect
  upstream_client_.fetch(*upstream_, std::move(upstream_req),
                         [this, base, fetch_span,
                          respond = std::move(respond)](Result<HttpResponse> result,
                                                        FetchTiming) mutable {
                           if (obs::SpanLog* slog = spans(); slog != nullptr) {
                             slog->close(fetch_span, sim_.now());
                           }
                           if (!result || !result.value().ok()) {
                             respond(make_status_response(502, "origin fetch failed"));
                             return;
                           }
                           HttpResponse resp = std::move(result.value());
                           // Ingest into the (unbounded) edge catalog.
                           ObjectSpec spec;
                           spec.base_url = base;
                           spec.size_bytes = resp.total_body_bytes();
                           if (const auto* ttl = find_header(resp.headers, "X-Object-TTL")) {
                             spec.ttl_seconds = static_cast<std::uint32_t>(std::stoul(*ttl));
                           }
                           if (const auto* prio =
                                   find_header(resp.headers, "X-Object-Priority")) {
                             spec.priority = std::stoi(*prio);
                           }
                           if (const auto* app = find_header(resp.headers, "X-Object-App")) {
                             spec.app_id = static_cast<std::uint32_t>(std::stoul(*app));
                           }
                           catalog_.add(std::move(spec));
                           respond(std::move(resp));
                         });
}

}  // namespace ape::http

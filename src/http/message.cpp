#include "http/message.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace ape::http {

namespace {

bool iequals(const std::string& a, const std::string& b) {
  return a.size() == b.size() &&
         std::equal(a.begin(), a.end(), b.begin(), [](unsigned char x, unsigned char y) {
           return std::tolower(x) == std::tolower(y);
         });
}

std::string serialize_headers(const Headers& headers, std::size_t simulated_body,
                              std::size_t inline_body) {
  std::string out;
  for (const auto& [k, v] : headers) {
    out += k + ": " + v + "\r\n";
  }
  out += "Content-Length: " + std::to_string(simulated_body + inline_body) + "\r\n";
  if (simulated_body > 0) {
    // Private header carrying the modeled (non-materialized) body size.
    out += "X-Sim-Body: " + std::to_string(simulated_body) + "\r\n";
  }
  out += "\r\n";
  return out;
}

struct ParsedHead {
  std::string start_line;
  Headers headers;
  std::size_t simulated_body = 0;
  std::string body;
};

Result<ParsedHead> parse_head(const net::TcpMessage& msg) {
  const std::string text(msg.bytes.begin(), msg.bytes.end());
  const auto head_end = text.find("\r\n\r\n");
  if (head_end == std::string::npos) return make_error<ParsedHead>("missing header terminator");

  ParsedHead parsed;
  std::istringstream head(text.substr(0, head_end));
  if (!std::getline(head, parsed.start_line)) return make_error<ParsedHead>("empty message");
  if (!parsed.start_line.empty() && parsed.start_line.back() == '\r') parsed.start_line.pop_back();

  std::string line;
  while (std::getline(head, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    const auto colon = line.find(':');
    if (colon == std::string::npos) return make_error<ParsedHead>("malformed header line");
    std::string key = line.substr(0, colon);
    std::string value = line.substr(colon + 1);
    if (!value.empty() && value.front() == ' ') value.erase(0, 1);
    if (iequals(key, "X-Sim-Body")) {
      parsed.simulated_body = std::stoull(value);
    } else if (!iequals(key, "Content-Length")) {
      parsed.headers.emplace_back(std::move(key), std::move(value));
    }
  }
  parsed.body = text.substr(head_end + 4);
  return parsed;
}

net::TcpMessage to_tcp_message(const std::string& start_line, const Headers& headers,
                               const std::string& body, std::size_t simulated_body) {
  std::string text = start_line + "\r\n" +
                     serialize_headers(headers, simulated_body, body.size()) + body;
  net::TcpMessage msg;
  msg.bytes.assign(text.begin(), text.end());
  msg.simulated_body_bytes = simulated_body;
  return msg;
}

}  // namespace

const std::string* find_header(const Headers& headers, const std::string& name) {
  for (const auto& [k, v] : headers) {
    if (iequals(k, name)) return &v;
  }
  return nullptr;
}

void set_trace_context_header(Headers& headers, const std::string& encoded) {
  for (auto& [k, v] : headers) {
    if (iequals(k, kTraceContextHeader)) {
      v = encoded;
      return;
    }
  }
  headers.emplace_back(kTraceContextHeader, encoded);
}

const std::string* find_trace_context_header(const Headers& headers) {
  return find_header(headers, kTraceContextHeader);
}

net::TcpMessage HttpRequest::to_tcp() const {
  Headers with_host = headers;
  if (find_header(with_host, "Host") == nullptr) {
    with_host.emplace_back("Host", url.host);
  }
  const std::string start = method + " " + url.path +
                            (url.query.empty() ? "" : "?" + url.query) + " HTTP/1.1";
  return to_tcp_message(start, with_host, body, simulated_body_bytes);
}

Result<HttpRequest> HttpRequest::from_tcp(const net::TcpMessage& msg) {
  auto head = parse_head(msg);
  if (!head) return make_error<HttpRequest>(head.error().message);

  std::istringstream line(head.value().start_line);
  HttpRequest req;
  std::string target, version;
  if (!(line >> req.method >> target >> version)) {
    return make_error<HttpRequest>("malformed request line");
  }

  const std::string* host = find_header(head.value().headers, "Host");
  const std::string url_text =
      target.starts_with("http") ? target : ("http://" + (host ? *host : "unknown") + target);
  auto url = Url::parse(url_text);
  if (!url) return make_error<HttpRequest>("bad request target: " + url.error().message);
  req.url = std::move(url.value());
  req.headers = std::move(head.value().headers);
  req.body = std::move(head.value().body);
  req.simulated_body_bytes = head.value().simulated_body;
  return req;
}

net::TcpMessage HttpResponse::to_tcp() const {
  const std::string start = "HTTP/1.1 " + std::to_string(status) + " " +
                            (status == 200 ? "OK" : status == 404 ? "Not Found" : "Status");
  return to_tcp_message(start, headers, body, simulated_body_bytes);
}

Result<HttpResponse> HttpResponse::from_tcp(const net::TcpMessage& msg) {
  auto head = parse_head(msg);
  if (!head) return make_error<HttpResponse>(head.error().message);

  std::istringstream line(head.value().start_line);
  std::string version;
  int status = 0;
  if (!(line >> version >> status) || status < 100 || status > 599) {
    return make_error<HttpResponse>("malformed status line");
  }
  HttpResponse resp;
  resp.status = status;
  resp.headers = std::move(head.value().headers);
  resp.body = std::move(head.value().body);
  resp.simulated_body_bytes = head.value().simulated_body;
  return resp;
}

HttpResponse make_status_response(int status, std::string reason) {
  HttpResponse resp;
  resp.status = status;
  resp.body = std::move(reason);
  return resp;
}

}  // namespace ape::http

// HTTP/1.1-style messages over the simulated TCP transport.
//
// Headers and the request line are serialized as real bytes (they size the
// wire); bodies are modeled by size so a 500 kB thumbnail never has to be
// materialized.  A small inline `body` string is available for control
// payloads (delegation requests, tests).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/result.hpp"
#include "http/url.hpp"
#include "net/tcp.hpp"

namespace ape::http {

using Headers = std::vector<std::pair<std::string, std::string>>;

[[nodiscard]] const std::string* find_header(const Headers& headers, const std::string& name);

// Causal-trace context carrier (DESIGN.md §5f).  The header is real wire
// bytes, so callers must only set it when span tracing is enabled — the
// gate that keeps default runs byte-identical.
inline constexpr const char* kTraceContextHeader = "X-Ape-Trace";

// Replaces any existing trace-context header (a forwarder re-parents the
// propagated context under its own span, never passes the inbound one on).
void set_trace_context_header(Headers& headers, const std::string& encoded);
[[nodiscard]] const std::string* find_trace_context_header(const Headers& headers);

struct HttpRequest {
  std::string method = "GET";
  Url url;
  Headers headers;
  std::string body;                      // inline control payloads only
  std::size_t simulated_body_bytes = 0;  // modeled payload size

  [[nodiscard]] net::TcpMessage to_tcp() const;
  [[nodiscard]] static Result<HttpRequest> from_tcp(const net::TcpMessage& msg);
};

struct HttpResponse {
  int status = 200;
  Headers headers;
  std::string body;
  std::size_t simulated_body_bytes = 0;

  [[nodiscard]] bool ok() const noexcept { return status >= 200 && status < 300; }
  [[nodiscard]] std::size_t total_body_bytes() const noexcept {
    return body.size() + simulated_body_bytes;
  }

  [[nodiscard]] net::TcpMessage to_tcp() const;
  [[nodiscard]] static Result<HttpResponse> from_tcp(const net::TcpMessage& msg);
};

[[nodiscard]] HttpResponse make_status_response(int status, std::string reason = {});

}  // namespace ape::http

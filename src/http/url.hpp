// URL parsing and the "base URL" identity APE-CACHE keys caches on.
//
// The paper's Cacheable `id` is "the basic URL without parameters"
// (Sec. IV-A): scheme + host + path, query string stripped.  Matching an
// outgoing request to a cacheable object compares base URLs.
#pragma once

#include <cstdint>
#include <string>

#include "common/result.hpp"

namespace ape::http {

struct Url {
  std::string scheme = "http";
  std::string host;
  std::uint16_t port = 0;  // 0 = scheme default
  std::string path = "/";
  std::string query;       // without '?'

  [[nodiscard]] static Result<Url> parse(const std::string& text);

  [[nodiscard]] std::uint16_t effective_port() const noexcept;
  [[nodiscard]] std::string to_string() const;
  // scheme://host[:port]path — the cache identity (query stripped).
  [[nodiscard]] std::string base() const;

  friend bool operator==(const Url&, const Url&) = default;
};

}  // namespace ape::http

#include "http/endpoint.hpp"

#include <utility>

namespace ape::http {

HttpServer::HttpServer(net::TcpTransport& tcp, net::NodeId node, net::Port port,
                       sim::ServiceQueue& cpu, ServiceCost cost)
    : tcp_(tcp), node_(node), port_(port), cpu_(cpu), cost_(cost) {
  tcp_.listen(node_, port_,
              [this](const net::TcpMessage& msg, net::Endpoint peer, net::TcpResponder respond) {
                auto request = HttpRequest::from_tcp(msg);
                if (!request) {
                  respond(make_status_response(400, request.error().message).to_tcp());
                  return;
                }
                // Charge CPU before the handler runs; the response is free to
                // arrive asynchronously afterwards.
                cpu_.submit(cost_.for_bytes(msg.wire_size()),
                            [this, req = std::move(request.value()), peer,
                             respond = std::move(respond)]() mutable {
                              dispatch(req, peer, [respond = std::move(respond)](
                                                      HttpResponse resp) {
                                respond(resp.to_tcp());
                              });
                            });
              });
}

HttpServer::~HttpServer() {
  tcp_.stop_listening(node_, port_);
}

void HttpServer::route(std::string path_prefix, Handler handler) {
  routes_.emplace_back(std::move(path_prefix), std::move(handler));
}

void HttpServer::set_fallback(Handler handler) {
  fallback_ = std::move(handler);
}

void HttpServer::dispatch(const HttpRequest& request, net::Endpoint peer, Responder respond) {
  ++requests_;
  const Handler* best = nullptr;
  std::size_t best_len = 0;
  for (const auto& [prefix, handler] : routes_) {
    if (request.url.path.starts_with(prefix) && prefix.size() >= best_len) {
      best = &handler;
      best_len = prefix.size();
    }
  }
  if (best != nullptr) {
    (*best)(request, peer, std::move(respond));
  } else if (fallback_) {
    fallback_(request, peer, std::move(respond));
  } else {
    respond(make_status_response(404, "no route"));
  }
}

HttpClient::HttpClient(net::TcpTransport& tcp, net::NodeId node) : tcp_(tcp), node_(node) {}

void HttpClient::fetch(net::Endpoint server, HttpRequest request, FetchHandler handler) {
  sim::Simulator& clock = tcp_.network().simulator();
  const sim::Time started = clock.now();

  tcp_.connect(node_, server,
               [&clock, started, req = std::move(request), handler = std::move(handler)](
                   Result<net::TcpConnectionPtr> conn) mutable {
                 if (!conn) {
                   FetchTiming timing;
                   timing.connect = clock.now() - started;
                   timing.first_byte = timing.connect;
                   handler(make_error<HttpResponse>(conn.error().message), timing);
                   return;
                 }
                 const sim::Duration connect_time = clock.now() - started;
                 net::TcpConnectionPtr connection = std::move(conn.value());
                 net::TcpConnection& ref = *connection;
                 ref.send_request(
                     req.to_tcp(),
                     // The connection handle is captured so it stays open for
                     // the duration of the exchange.
                     [&clock, started, connect_time, connection = std::move(connection),
                      handler = std::move(handler)](Result<net::TcpMessage> response) mutable {
                       FetchTiming timing;
                       timing.connect = connect_time;
                       timing.first_byte = clock.now() - started;
                       connection->close();
                       if (!response) {
                         handler(make_error<HttpResponse>(response.error().message), timing);
                         return;
                       }
                       auto parsed = HttpResponse::from_tcp(response.value());
                       if (!parsed) {
                         handler(make_error<HttpResponse>(parsed.error().message), timing);
                         return;
                       }
                       handler(std::move(parsed.value()), timing);
                     });
               });
}

}  // namespace ape::http

// Object catalog + origin server.
//
// ObjectSpec is the system-wide description of a cacheable object: its base
// URL identity, byte size, TTL, developer priority, and the extra backend
// latency the paper's evaluation attaches to each object ("hosted on our
// edge server, with an added delay (retrieval latency)", Sec. V-A).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "http/endpoint.hpp"
#include "obs/observer.hpp"

namespace ape::http {

struct ObjectSpec {
  std::string base_url;            // cache identity (Url::base form)
  std::size_t size_bytes = 0;
  std::uint32_t ttl_seconds = 600;
  int priority = 1;                // 1 = low, 2 = high (paper Sec. IV-A)
  std::uint32_t app_id = 0;
  sim::Duration extra_latency{0};  // simulated backend distance
};

class ObjectCatalog {
 public:
  void add(ObjectSpec spec);
  [[nodiscard]] const ObjectSpec* find(const std::string& base_url) const;
  [[nodiscard]] std::size_t size() const noexcept { return by_url_.size(); }
  [[nodiscard]] std::vector<const ObjectSpec*> all() const;

 private:
  // Ordered: all() feeds catalog seeding and table benches, whose row order
  // must be canonical (ape-lint: unordered-iter).
  std::map<std::string, ObjectSpec> by_url_;
};

// Serves a catalog over HTTP: 200 + modeled body after the object's
// extra_latency, 404 for unknown URLs.  Responses carry the object's TTL
// and priority as headers so downstream caches can ingest them.
class OriginServer {
 public:
  OriginServer(net::TcpTransport& tcp, net::NodeId node, sim::ServiceQueue& cpu,
               ServiceCost cost = {});

  [[nodiscard]] ObjectCatalog& catalog() noexcept { return catalog_; }
  [[nodiscard]] const ObjectCatalog& catalog() const noexcept { return catalog_; }
  [[nodiscard]] std::size_t requests_served() const noexcept { return server_.requests_served(); }
  // Nullable span sink: origin.serve spans parent under the inbound
  // X-Ape-Trace context.
  void set_observer(obs::Observer* observer) noexcept { observer_ = observer; }

 private:
  void handle(const HttpRequest& request, HttpServer::Responder respond);
  [[nodiscard]] obs::SpanLog* spans() const;

  HttpServer server_;
  ObjectCatalog catalog_;
  sim::Simulator& sim_;
  obs::Observer* observer_ = nullptr;
};

// Builds the standard 200 response for a catalog object.
[[nodiscard]] HttpResponse make_object_response(const ObjectSpec& spec, bool cache_hit);
// Validator used for conditional requests (If-None-Match / 304).
[[nodiscard]] std::string object_etag(const ObjectSpec& spec);

}  // namespace ape::http

// Deterministic discrete-event simulator.
//
// The ordering contract is unchanged from day one: events are keyed by
// (time, seq), so two events at the same virtual instant fire in
// scheduling order and runs stay bit-reproducible regardless of container
// iteration order.  What changed for the scale arc (DESIGN.md §5h) is the
// machinery behind that contract:
//
//   * Scheduling structure.  The default QueueKind::Calendar engine is a
//     bucketed calendar queue: a cursor walks 1 ms buckets across a
//     4096-slot wheel (~4.1 s horizon) that covers the short-horizon
//     common case (WiFi/LAN RTTs, service times, timeouts), with a small
//     "near" heap ordering the current bucket and a "far" heap holding
//     events beyond the horizon (DHCP-lease-style timers).  Pushes into
//     the wheel are O(1) vector appends instead of O(log n) heap sifts.
//     QueueKind::BinaryHeap keeps the original single-heap engine alive —
//     it is the reference implementation the scheduler-equivalence
//     property test replays against (tests/test_sim_equivalence.cpp).
//
//   * Event storage.  Callbacks live in a slot arena indexed by EventId =
//     (generation << 32) | slot, not in an unordered_map: scheduling
//     recycles a freelist slot, cancel/fire bump the slot generation so
//     stale ids fail the liveness check in O(1), and SmallFn keeps the
//     captured state inline (no per-event heap allocation).
//
// Cancellation is lazy: cancel() releases the slot and leaves a
// tombstoned queue entry behind.  Tombstones are counted explicitly, so
// pending() always reports live (non-cancelled) events, and when dead
// slots reach half the queue it is compacted in O(n) — a workload that
// schedules-and-cancels forever (timeout patterns) runs in bounded
// memory.
//
// Usage:
//   Simulator sim;
//   sim.schedule_in(milliseconds(5), []{ ... });
//   sim.run();                       // drain all events
//   sim.run_until(Time{seconds(3600)});
// ape-lint: hot-path
#pragma once

#include <cstdint>
#include <vector>

#include "sim/small_fn.hpp"
#include "sim/time.hpp"

namespace ape::sim {

// Which scheduling structure backs the event queue.  Both honour the
// identical (time, seq) ordering contract; Calendar is the fast default,
// BinaryHeap the reference the property test diffs against.
enum class QueueKind {
  Calendar,
  BinaryHeap,
};

class Simulator {
 public:
  using Callback = SmallFn;
  using EventId = std::uint64_t;

  explicit Simulator(QueueKind kind = QueueKind::Calendar);
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] Time now() const noexcept { return now_; }
  [[nodiscard]] QueueKind queue_kind() const noexcept { return kind_; }

  // Schedules `fn` at absolute time `at`; times in the past are clamped to
  // "now" (the event still fires, after currently queued same-time events).
  EventId schedule_at(Time at, Callback fn);
  EventId schedule_in(Duration delay, Callback fn);

  // Best-effort cancellation (lazy: the slot is tombstoned, popped later).
  // Returns false when the event already fired or was never scheduled.
  bool cancel(EventId id);

  // Runs until the queue drains. Returns the number of events fired.
  std::size_t run();
  // Runs events with time <= deadline; clock lands exactly on `deadline`.
  std::size_t run_until(Time deadline);
  // Fires at most `n` events.
  std::size_t step(std::size_t n = 1);

  // Live (non-cancelled) scheduled events.
  [[nodiscard]] std::size_t pending() const noexcept { return live_; }
  [[nodiscard]] std::size_t events_fired() const noexcept { return fired_; }

  // --- queue introspection (feeds the obs queue-depth gauges) -------------
  // Raw queue entries, live + tombstoned.
  [[nodiscard]] std::size_t queue_size() const noexcept { return queue_size_; }
  // Cancelled-but-unpopped entries currently queued.
  [[nodiscard]] std::size_t tombstones() const noexcept { return tombstones_; }
  // Tombstoned fraction of the queue; 0 when the queue is empty.
  [[nodiscard]] double tombstone_ratio() const noexcept {
    return queue_size_ == 0 ? 0.0
                            : static_cast<double>(tombstones_) /
                                  static_cast<double>(queue_size_);
  }
  // Total cancel() calls that actually cancelled something.
  [[nodiscard]] std::size_t events_cancelled() const noexcept { return cancelled_; }
  // Highest live pending() ever observed.
  [[nodiscard]] std::size_t queue_high_water() const noexcept { return high_water_; }
  // Times the queue was rebuilt to shed tombstones.
  [[nodiscard]] std::size_t compactions() const noexcept { return compactions_; }

 private:
  // Calendar geometry: ~1 ms buckets, 4096-slot wheel → ~4.19 s horizon.
  // Tuned on bench_engine at both 100k and 1M clients: finer buckets blow
  // up cursor-advance overhead, coarser ones grow the near heap's log
  // factor; this middle point wins at both scales.
  static constexpr std::uint64_t kBucketShift = 10;
  static constexpr std::uint64_t kWheelBits = 12;
  static constexpr std::uint64_t kWheelSlots = std::uint64_t{1} << kWheelBits;
  static constexpr std::uint64_t kWheelMask = kWheelSlots - 1;
  static constexpr std::uint32_t kNoFreeSlot = ~std::uint32_t{0};

  struct Event {
    Time at;
    std::uint64_t seq;
    EventId id;
    // Ordering for a max-heap front: invert so the earliest (then lowest
    // seq) event is on top.
    friend bool operator<(const Event& a, const Event& b) noexcept {
      if (a.at != b.at) return b.at < a.at;
      return b.seq < a.seq;
    }
  };

  // One arena slot: the callback plus the generation that validates ids.
  // Slots are recycled through a freelist; the generation bumps on every
  // release, so a queue entry whose generation no longer matches is a
  // tombstone.
  struct Slot {
    // Generation first: the liveness check and a small callback's inline
    // state land on the same cache line.
    std::uint32_t generation = 1;
    std::uint32_t next_free = kNoFreeSlot;
    SmallFn fn;
  };

  static constexpr std::uint64_t bucket_of(Time t) noexcept {
    return static_cast<std::uint64_t>(t.since_epoch.count()) >> kBucketShift;
  }
  static constexpr std::uint32_t slot_of(EventId id) noexcept {
    return static_cast<std::uint32_t>(id);
  }
  static constexpr std::uint32_t generation_of(EventId id) noexcept {
    return static_cast<std::uint32_t>(id >> 32);
  }

  [[nodiscard]] bool is_live(EventId id) const noexcept {
    return slots_[slot_of(id)].generation == generation_of(id);
  }

  EventId arena_acquire(Callback fn);
  void arena_release(std::uint32_t slot) noexcept;

  // --- queue primitives; every path maintains queue_size_ -----------------
  void queue_push(Event ev);
  // Global-minimum entry; precondition queue_size_ > 0.  May advance the
  // calendar cursor (not an observable state change).
  const Event& queue_peek();
  Event queue_pop();
  // Drops every tombstoned entry and rebuilds; resets tombstones_.
  void compact();

  // Calendar internals.
  void advance_cursor();
  [[nodiscard]] std::uint64_t next_occupied_bucket() const noexcept;
  void wheel_insert(const Event& ev);
  void near_push(const Event& ev);

  // Pops queue entries until one with a live slot fires; returns false
  // when only tombstones (or nothing) remained.
  bool fire_next();

  QueueKind kind_;
  Time now_{};
  std::uint64_t next_seq_ = 0;

  // Event arena.
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoFreeSlot;
  std::size_t live_ = 0;

  // QueueKind::BinaryHeap: the original single (time, seq) heap.
  std::vector<Event> heap_;

  // QueueKind::Calendar: near heap (buckets <= cursor), wheel (next
  // kWheelSlots buckets, unsorted), far heap (beyond the horizon), plus an
  // occupancy bitmap so cursor advances skip empty buckets in O(words).
  std::vector<Event> near_;
  std::vector<std::vector<Event>> wheel_;
  std::vector<std::uint64_t> wheel_occupancy_;
  std::vector<Event> far_;
  std::uint64_t cursor_bucket_ = 0;
  std::size_t wheel_count_ = 0;

  std::size_t queue_size_ = 0;
  std::size_t fired_ = 0;
  std::size_t cancelled_ = 0;
  std::size_t tombstones_ = 0;
  std::size_t high_water_ = 0;
  std::size_t compactions_ = 0;
};

}  // namespace ape::sim

// Deterministic discrete-event simulator.
//
// Single-threaded event loop over a binary heap keyed by (time, seq): two
// events at the same virtual instant fire in scheduling order, which keeps
// runs bit-reproducible regardless of container iteration order.
//
// Cancellation is lazy: cancel() erases the callback and leaves a
// tombstoned heap slot behind.  Tombstones are counted explicitly, so
// pending() always reports live (non-cancelled) events, and when dead
// slots outnumber live ones the heap is compacted in O(n) — a workload
// that schedules-and-cancels forever (timeout patterns) runs in bounded
// memory.
//
// Usage:
//   Simulator sim;
//   sim.schedule_in(milliseconds(5), []{ ... });
//   sim.run();                       // drain all events
//   sim.run_until(Time{seconds(3600)});
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"

namespace ape::sim {

class Simulator {
 public:
  using Callback = std::function<void()>;
  using EventId = std::uint64_t;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] Time now() const noexcept { return now_; }

  // Schedules `fn` at absolute time `at`; times in the past are clamped to
  // "now" (the event still fires, after currently queued same-time events).
  EventId schedule_at(Time at, Callback fn);
  EventId schedule_in(Duration delay, Callback fn);

  // Best-effort cancellation (lazy: the slot is tombstoned, popped later).
  // Returns false when the event already fired or was never scheduled.
  bool cancel(EventId id);

  // Runs until the queue drains. Returns the number of events fired.
  std::size_t run();
  // Runs events with time <= deadline; clock lands exactly on `deadline`.
  std::size_t run_until(Time deadline);
  // Fires at most `n` events.
  std::size_t step(std::size_t n = 1);

  // Live (non-cancelled) scheduled events.
  [[nodiscard]] std::size_t pending() const noexcept { return callbacks_.size(); }
  [[nodiscard]] std::size_t events_fired() const noexcept { return fired_; }

  // --- queue introspection (feeds the obs queue-depth gauges) -------------
  // Raw heap slots, live + tombstoned.
  [[nodiscard]] std::size_t queue_size() const noexcept { return heap_.size(); }
  // Cancelled-but-unpopped slots currently in the heap.
  [[nodiscard]] std::size_t tombstones() const noexcept { return tombstones_; }
  // Tombstoned fraction of the heap; 0 when the heap is empty.
  [[nodiscard]] double tombstone_ratio() const noexcept {
    return heap_.empty() ? 0.0
                         : static_cast<double>(tombstones_) /
                               static_cast<double>(heap_.size());
  }
  // Total cancel() calls that actually cancelled something.
  [[nodiscard]] std::size_t events_cancelled() const noexcept { return cancelled_; }
  // Highest live pending() ever observed.
  [[nodiscard]] std::size_t queue_high_water() const noexcept { return high_water_; }
  // Times the heap was rebuilt to shed tombstones.
  [[nodiscard]] std::size_t compactions() const noexcept { return compactions_; }

 private:
  struct Event {
    Time at;
    std::uint64_t seq;
    EventId id;
    // Ordering for a max-heap front: invert so the earliest (then lowest
    // seq) event is on top.
    friend bool operator<(const Event& a, const Event& b) noexcept {
      if (a.at != b.at) return b.at < a.at;
      return b.seq < a.seq;
    }
  };

  // Pops heap entries until one with a live callback fires; returns false
  // when only tombstones (or nothing) remained.
  bool fire_next();
  void push_event(Event ev);
  Event pop_event();
  // Drops every tombstoned slot and re-heapifies.
  void compact();

  Time now_{};
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::vector<Event> heap_;
  std::unordered_map<EventId, Callback> callbacks_;
  std::size_t fired_ = 0;
  std::size_t cancelled_ = 0;
  std::size_t tombstones_ = 0;
  std::size_t high_water_ = 0;
  std::size_t compactions_ = 0;
};

}  // namespace ape::sim

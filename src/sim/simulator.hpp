// Deterministic discrete-event simulator.
//
// Single-threaded event loop over a priority queue keyed by (time, seq):
// two events at the same virtual instant fire in scheduling order, which
// keeps runs bit-reproducible regardless of container iteration order.
//
// Usage:
//   Simulator sim;
//   sim.schedule_in(milliseconds(5), []{ ... });
//   sim.run();                       // drain all events
//   sim.run_until(Time{seconds(3600)});
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>

#include "sim/time.hpp"

namespace ape::sim {

class Simulator {
 public:
  using Callback = std::function<void()>;
  using EventId = std::uint64_t;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] Time now() const noexcept { return now_; }

  // Schedules `fn` at absolute time `at`; times in the past are clamped to
  // "now" (the event still fires, after currently queued same-time events).
  EventId schedule_at(Time at, Callback fn);
  EventId schedule_in(Duration delay, Callback fn);

  // Best-effort cancellation (lazy: the slot is tombstoned, popped later).
  // Returns false when the event already fired or was never scheduled.
  bool cancel(EventId id);

  // Runs until the queue drains. Returns the number of events fired.
  std::size_t run();
  // Runs events with time <= deadline; clock lands exactly on `deadline`.
  std::size_t run_until(Time deadline);
  // Fires at most `n` events.
  std::size_t step(std::size_t n = 1);

  [[nodiscard]] std::size_t pending() const noexcept { return callbacks_.size(); }
  [[nodiscard]] std::size_t events_fired() const noexcept { return fired_; }

 private:
  struct Event {
    Time at;
    std::uint64_t seq;
    EventId id;
    // Ordering for std::priority_queue (max-heap): invert so the earliest
    // (then lowest seq) event is on top.
    friend bool operator<(const Event& a, const Event& b) noexcept {
      if (a.at != b.at) return b.at < a.at;
      return b.seq < a.seq;
    }
  };

  // Pops queue entries until one with a live callback fires; returns false
  // when only tombstones (or nothing) remained.
  bool fire_next();

  Time now_{};
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::priority_queue<Event> queue_;
  std::unordered_map<EventId, Callback> callbacks_;
  std::size_t fired_ = 0;
};

}  // namespace ape::sim

// Seedable random source for workload generation.
//
// Wraps one mt19937_64 so an experiment is fully determined by a single
// seed, and adds the distributions the paper's evaluation needs:
// uniform sizes/TTLs, exponential inter-arrivals, and the Zipf popularity
// distribution used to pick which app runs next (paper Sec. V-A).
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace ape::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) : engine_(seed) {}

  [[nodiscard]] std::uint64_t next_u64() { return engine_(); }

  // Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  // Uniform real in [lo, hi).
  [[nodiscard]] double uniform_real(double lo, double hi);
  [[nodiscard]] bool bernoulli(double p);
  // Exponential with the given mean (inter-arrival gaps for Poisson traffic).
  [[nodiscard]] double exponential(double mean);

  // Fisher-Yates over indices [0, n).
  [[nodiscard]] std::vector<std::size_t> permutation(std::size_t n);

  [[nodiscard]] std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

// Zipf(s) sampler over ranks {0, .., n-1}: P(k) ∝ 1/(k+1)^s.
// Precomputes the CDF once; sampling is a binary search.
class ZipfDistribution {
 public:
  ZipfDistribution(std::size_t n, double exponent);

  [[nodiscard]] std::size_t sample(Rng& rng) const;
  [[nodiscard]] double probability(std::size_t rank) const;
  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace ape::sim

// SmallFn — a move-only callable with generous inline storage, built for
// the simulator's event arena (DESIGN.md §5h).
//
// std::function is the wrong shape for a hot event loop: its small-buffer
// optimisation tops out around 2-3 pointers on mainstream ABIs, so nearly
// every scheduled lambda that captures a message or a continuation pays a
// heap allocation, and copyability forces captured state to be copyable
// too.  SmallFn flips both choices: 48 bytes of inline storage and
// move-only semantics, so `fn` slots can live directly inside the
// simulator's event arena and be recycled without touching the allocator.
//
// The capacity is a deliberate trade.  Bigger inline buffers bloat every
// arena slot, and at fleet scale (a million in-flight timeouts) the
// arena's cache footprint — not instruction count — is what bounds
// events/sec: moving from 128-byte to 64-byte slots roughly 2.5×'d the
// million-client engine bench.  48 bytes covers the tree's hot-path
// captures (a this-pointer, a couple of ids, one std::function
// continuation); the rare oversized callable — e.g. the TCP request leg
// hauling a TcpMessage — takes a heap fallback, which is exactly the
// allocation it paid under std::function anyway.
// ape-lint: hot-path
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace ape::sim {

class SmallFn {
 public:
  // Inline capacity: vtable pointer + buffer = 56 bytes, so an arena slot
  // (generation/freelist bookkeeping + SmallFn) packs into one cache line.
  static constexpr std::size_t kInlineBytes = 48;

  SmallFn() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, SmallFn> &&
                                        std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallFn(F&& fn) {  // NOLINT(google-explicit-constructor) — mirrors std::function
    using Decayed = std::decay_t<F>;
    if constexpr (fits_inline<Decayed>()) {
      ::new (static_cast<void*>(buf_)) Decayed(std::forward<F>(fn));
      vtable_ = &inline_vtable<Decayed>;
    } else {
      // Oversized capture: fall back to the allocator.  Rare by design —
      // see kInlineBytes above.  // ape-lint: allow(hot-alloc)
      ::new (static_cast<void*>(buf_)) Decayed*(new Decayed(std::forward<F>(fn)));
      vtable_ = &heap_vtable<Decayed>;
    }
  }

  SmallFn(SmallFn&& other) noexcept { move_from(std::move(other)); }

  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(std::move(other));
    }
    return *this;
  }

  SmallFn& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  void operator()() { vtable_->invoke(buf_); }

  explicit operator bool() const noexcept { return vtable_ != nullptr; }

  void reset() noexcept {
    if (vtable_ != nullptr) {
      vtable_->destroy(buf_);
      vtable_ = nullptr;
    }
  }

 private:
  struct VTable {
    void (*invoke)(void*);
    // Relocation: move-construct into `dst` AND tear down `src` — for the
    // heap case ownership just transfers, for the inline case the source
    // object is destroyed after the move.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename T>
  static constexpr bool fits_inline() {
    return sizeof(T) <= kInlineBytes && alignof(T) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<T>;
  }

  template <typename T>
  static constexpr VTable inline_vtable = {
      [](void* p) { (*std::launder(static_cast<T*>(p)))(); },
      [](void* dst, void* src) noexcept {
        T* s = std::launder(static_cast<T*>(src));
        ::new (dst) T(std::move(*s));
        s->~T();
      },
      [](void* p) noexcept { std::launder(static_cast<T*>(p))->~T(); },
  };

  template <typename T>
  static constexpr VTable heap_vtable = {
      [](void* p) { (**std::launder(static_cast<T**>(p)))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) T*(*std::launder(static_cast<T**>(src)));
      },
      [](void* p) noexcept { delete *std::launder(static_cast<T**>(p)); },
  };

  void move_from(SmallFn&& other) noexcept {
    vtable_ = other.vtable_;
    if (vtable_ != nullptr) {
      vtable_->relocate(buf_, other.buf_);
      other.vtable_ = nullptr;
    }
  }

  const VTable* vtable_ = nullptr;
  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
};

}  // namespace ape::sim

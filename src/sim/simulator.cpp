#include "sim/simulator.hpp"

#include <algorithm>
#include <cassert>
#include <iomanip>
#include <sstream>
#include <utility>

namespace ape::sim {

namespace {
// Compaction only pays for itself once a meaningful number of slots are
// dead; below this the heap is left alone regardless of the ratio.
constexpr std::size_t kCompactionFloor = 64;
}  // namespace

std::string format_time(Time t) {
  const double s = t.seconds();
  std::ostringstream os;
  os << std::fixed << std::setprecision(3) << s << "s";
  return os.str();
}

void Simulator::push_event(Event ev) {
  heap_.push_back(ev);
  std::push_heap(heap_.begin(), heap_.end());
}

Simulator::Event Simulator::pop_event() {
  std::pop_heap(heap_.begin(), heap_.end());
  Event ev = heap_.back();
  heap_.pop_back();
  return ev;
}

Simulator::EventId Simulator::schedule_at(Time at, Callback fn) {
  assert(fn && "scheduling an empty callback");
  if (at < now_) at = now_;
  const EventId id = next_id_++;
  push_event(Event{at, next_seq_++, id});
  callbacks_.emplace(id, std::move(fn));
  high_water_ = std::max(high_water_, callbacks_.size());
  return id;
}

Simulator::EventId Simulator::schedule_in(Duration delay, Callback fn) {
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulator::cancel(EventId id) {
  if (callbacks_.erase(id) == 0) return false;
  ++cancelled_;
  ++tombstones_;
  // Once dead slots dominate, rebuild: keeps schedule-then-cancel loops
  // (timeouts that almost never fire) in O(live) memory.
  if (tombstones_ >= kCompactionFloor && tombstones_ * 2 > heap_.size()) compact();
  return true;
}

void Simulator::compact() {
  std::erase_if(heap_, [this](const Event& ev) { return !callbacks_.contains(ev.id); });
  std::make_heap(heap_.begin(), heap_.end());
  tombstones_ = 0;
  ++compactions_;
}

bool Simulator::fire_next() {
  while (!heap_.empty()) {
    const Event ev = pop_event();
    auto it = callbacks_.find(ev.id);
    if (it == callbacks_.end()) {
      assert(tombstones_ > 0);
      --tombstones_;  // tombstone from cancel()
      continue;
    }
    // Move the callback out *before* erasing so a callback that schedules
    // new events (almost all do) never invalidates our state.
    Callback fn = std::move(it->second);
    callbacks_.erase(it);
    now_ = ev.at;
    ++fired_;
    fn();
    return true;
  }
  return false;
}

std::size_t Simulator::run() {
  std::size_t n = 0;
  while (fire_next()) ++n;
  return n;
}

std::size_t Simulator::run_until(Time deadline) {
  std::size_t n = 0;
  while (!heap_.empty()) {
    // Skip tombstones at the head so their timestamps don't stall us.
    const Event ev = heap_.front();
    if (!callbacks_.contains(ev.id)) {
      pop_event();
      assert(tombstones_ > 0);
      --tombstones_;
      continue;
    }
    if (deadline < ev.at) break;
    if (fire_next()) ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

std::size_t Simulator::step(std::size_t n) {
  std::size_t fired = 0;
  while (fired < n && fire_next()) ++fired;
  return fired;
}

}  // namespace ape::sim

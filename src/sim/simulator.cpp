// ape-lint: hot-path
#include "sim/simulator.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <iomanip>
#include <sstream>
#include <utility>

namespace ape::sim {

namespace {
// Compaction only pays for itself once a meaningful number of slots are
// dead; below this the queue is left alone regardless of the ratio.
constexpr std::size_t kCompactionFloor = 64;
}  // namespace

std::string format_time(Time t) {
  const double s = t.seconds();
  std::ostringstream os;
  os << std::fixed << std::setprecision(3) << s << "s";
  return os.str();
}

Simulator::Simulator(QueueKind kind) : kind_(kind) {
  if (kind_ == QueueKind::Calendar) {
    wheel_.resize(kWheelSlots);
    wheel_occupancy_.resize(kWheelSlots / 64, 0);
  }
}

// --- event arena ----------------------------------------------------------

Simulator::EventId Simulator::arena_acquire(Callback fn) {
  std::uint32_t slot;
  if (free_head_ != kNoFreeSlot) {
    slot = free_head_;
    free_head_ = slots_[slot].next_free;
    slots_[slot].next_free = kNoFreeSlot;
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();  // ape-lint: allow(hot-alloc) — amortised arena growth
  }
  slots_[slot].fn = std::move(fn);
  ++live_;
  return (std::uint64_t{slots_[slot].generation} << 32) | slot;
}

void Simulator::arena_release(std::uint32_t slot) noexcept {
  Slot& s = slots_[slot];
  s.fn.reset();
  // Bumping the generation is what tombstones every queue entry still
  // pointing at this slot; generation 0 is skipped so no EventId is ever
  // 0 (callers use 0 as a "nothing scheduled" sentinel).
  if (++s.generation == 0) s.generation = 1;
  s.next_free = free_head_;
  free_head_ = slot;
  --live_;
}

// --- queue primitives -----------------------------------------------------

void Simulator::near_push(const Event& ev) {
  near_.push_back(ev);
  std::push_heap(near_.begin(), near_.end());
}

void Simulator::wheel_insert(const Event& ev) {
  const std::uint64_t idx = bucket_of(ev.at) & kWheelMask;
  wheel_[idx].push_back(ev);
  wheel_occupancy_[idx >> 6] |= std::uint64_t{1} << (idx & 63);
  ++wheel_count_;
}

void Simulator::queue_push(Event ev) {
  if (kind_ == QueueKind::BinaryHeap) {
    heap_.push_back(ev);
    std::push_heap(heap_.begin(), heap_.end());
  } else {
    const std::uint64_t b = bucket_of(ev.at);
    if (b <= cursor_bucket_) {
      // At or behind the cursor (same-bucket follow-ups, past-clamped
      // events, a clock pushed ahead by run_until): the near heap orders
      // them — every wheel/far event lives in a strictly later bucket, so
      // the near minimum stays the global minimum.
      near_push(ev);
    } else if (b - cursor_bucket_ < kWheelSlots) {
      // Strictly less than kWheelSlots: bucket cursor + kWheelSlots would
      // alias the cursor's own wheel index and contaminate the slot being
      // drained, so the horizon's boundary bucket stays in the far heap.
      wheel_insert(ev);
    } else {
      far_.push_back(ev);
      std::push_heap(far_.begin(), far_.end());
    }
  }
  ++queue_size_;
}

std::uint64_t Simulator::next_occupied_bucket() const noexcept {
  // Cyclic scan of the occupancy bitmap starting one past the cursor; the
  // window (cursor, cursor + kWheelSlots) maps injectively onto wheel
  // indices, so the first set bit is the next non-empty bucket.
  const std::uint64_t start_idx = (cursor_bucket_ + 1) & kWheelMask;
  std::uint64_t step = 0;
  while (step < kWheelSlots) {
    const std::uint64_t idx = (start_idx + step) & kWheelMask;
    const std::uint64_t bit = idx & 63;
    const std::uint64_t word = wheel_occupancy_[idx >> 6] >> bit;
    if (word != 0) {
      return cursor_bucket_ + 1 + step +
             static_cast<std::uint64_t>(std::countr_zero(word));
    }
    step += 64 - bit;  // next word boundary
  }
  assert(false && "next_occupied_bucket called with an empty wheel");
  return cursor_bucket_ + 1;
}

void Simulator::advance_cursor() {
  // Precondition: near_ is empty and the wheel or the far heap is not.
  while (near_.empty()) {
    assert(wheel_count_ + far_.size() > 0);
    cursor_bucket_ = wheel_count_ > 0 ? next_occupied_bucket()
                                      : bucket_of(far_.front().at);
    // Far events whose bucket fell inside the new horizon move up.  When
    // the cursor jumped straight to the far minimum, that event's bucket
    // equals the cursor and it lands in the near heap directly.
    while (!far_.empty() &&
           bucket_of(far_.front().at) - cursor_bucket_ < kWheelSlots) {
      std::pop_heap(far_.begin(), far_.end());
      const Event ev = far_.back();
      far_.pop_back();
      if (bucket_of(ev.at) <= cursor_bucket_) {
        near_push(ev);
      } else {
        wheel_insert(ev);
      }
    }
    const std::uint64_t idx = cursor_bucket_ & kWheelMask;
    auto& bucket_vec = wheel_[idx];
    if (!bucket_vec.empty()) {
      for (const Event& ev : bucket_vec) near_push(ev);
      wheel_count_ -= bucket_vec.size();
      bucket_vec.clear();  // keeps capacity — the slot's vector is recycled
      wheel_occupancy_[idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
    }
  }
}

const Simulator::Event& Simulator::queue_peek() {
  assert(queue_size_ > 0);
  if (kind_ == QueueKind::BinaryHeap) return heap_.front();
  if (near_.empty()) advance_cursor();
  return near_.front();
}

Simulator::Event Simulator::queue_pop() {
  assert(queue_size_ > 0);
  Event ev;
  if (kind_ == QueueKind::BinaryHeap) {
    std::pop_heap(heap_.begin(), heap_.end());
    ev = heap_.back();
    heap_.pop_back();
  } else {
    if (near_.empty()) advance_cursor();
    std::pop_heap(near_.begin(), near_.end());
    ev = near_.back();
    near_.pop_back();
  }
  --queue_size_;
  return ev;
}

void Simulator::compact() {
  const auto dead = [this](const Event& ev) { return !is_live(ev.id); };
  if (kind_ == QueueKind::BinaryHeap) {
    std::erase_if(heap_, dead);
    std::make_heap(heap_.begin(), heap_.end());
    queue_size_ = heap_.size();
  } else {
    std::erase_if(near_, dead);
    std::make_heap(near_.begin(), near_.end());
    std::erase_if(far_, dead);
    std::make_heap(far_.begin(), far_.end());
    wheel_count_ = 0;
    for (std::size_t w = 0; w < wheel_occupancy_.size(); ++w) {
      std::uint64_t bits = wheel_occupancy_[w];
      while (bits != 0) {
        const auto bit = static_cast<std::uint64_t>(std::countr_zero(bits));
        bits &= bits - 1;
        auto& vec = wheel_[(w << 6) | bit];
        std::erase_if(vec, dead);
        if (vec.empty()) wheel_occupancy_[w] &= ~(std::uint64_t{1} << bit);
        wheel_count_ += vec.size();
      }
    }
    queue_size_ = near_.size() + wheel_count_ + far_.size();
  }
  tombstones_ = 0;
  ++compactions_;
}

// --- public API -----------------------------------------------------------

Simulator::EventId Simulator::schedule_at(Time at, Callback fn) {
  assert(fn && "scheduling an empty callback");
  if (at < now_) at = now_;
  const EventId id = arena_acquire(std::move(fn));
  queue_push(Event{at, next_seq_++, id});
  high_water_ = std::max(high_water_, live_);
  return id;
}

Simulator::EventId Simulator::schedule_in(Duration delay, Callback fn) {
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulator::cancel(EventId id) {
  const std::uint32_t slot = slot_of(id);
  if (slot >= slots_.size() || !is_live(id)) return false;
  arena_release(slot);
  ++cancelled_;
  ++tombstones_;
  // Once dead slots reach half the queue, rebuild: keeps schedule-then-
  // cancel loops (timeouts that almost never fire) in O(live) memory.
  // `>=`, not `>`: at exactly 50% dead the rebuild must still happen,
  // otherwise a queue whose live half subsequently fires is left 100%
  // tombstoned with no cancel() call remaining to re-trigger this check.
  if (tombstones_ >= kCompactionFloor && tombstones_ * 2 >= queue_size_) compact();
  return true;
}

bool Simulator::fire_next() {
  while (queue_size_ > 0) {
    const Event ev = queue_pop();
    if (!is_live(ev.id)) {
      assert(tombstones_ > 0);
      --tombstones_;  // tombstone from cancel()
      continue;
    }
    // Move the callback out *before* releasing the slot so a callback
    // that schedules new events (almost all do) never invalidates our
    // state.
    Callback fn = std::move(slots_[slot_of(ev.id)].fn);
    arena_release(slot_of(ev.id));
    now_ = ev.at;
    ++fired_;
    fn();
    return true;
  }
  return false;
}

std::size_t Simulator::run() {
  std::size_t n = 0;
  while (fire_next()) ++n;
  return n;
}

std::size_t Simulator::run_until(Time deadline) {
  std::size_t n = 0;
  while (queue_size_ > 0) {
    // Skip tombstones at the head so their timestamps don't stall us.
    const Event& top = queue_peek();
    if (!is_live(top.id)) {
      queue_pop();
      assert(tombstones_ > 0);
      --tombstones_;
      continue;
    }
    if (deadline < top.at) break;
    // Head is live and due: pop and fire it directly (one pop, no second
    // peek through fire_next).
    const Event ev = queue_pop();
    Callback fn = std::move(slots_[slot_of(ev.id)].fn);
    arena_release(slot_of(ev.id));
    now_ = ev.at;
    ++fired_;
    fn();
    ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

std::size_t Simulator::step(std::size_t n) {
  std::size_t fired = 0;
  while (fired < n && fire_next()) ++fired;
  return fired;
}

}  // namespace ape::sim

#include "sim/simulator.hpp"

#include <cassert>
#include <iomanip>
#include <sstream>
#include <utility>

namespace ape::sim {

std::string format_time(Time t) {
  const double s = t.seconds();
  std::ostringstream os;
  os << std::fixed << std::setprecision(3) << s << "s";
  return os.str();
}

Simulator::EventId Simulator::schedule_at(Time at, Callback fn) {
  assert(fn && "scheduling an empty callback");
  if (at < now_) at = now_;
  const EventId id = next_id_++;
  queue_.push(Event{at, next_seq_++, id});
  callbacks_.emplace(id, std::move(fn));
  return id;
}

Simulator::EventId Simulator::schedule_in(Duration delay, Callback fn) {
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulator::cancel(EventId id) {
  return callbacks_.erase(id) > 0;
}

bool Simulator::fire_next() {
  while (!queue_.empty()) {
    const Event ev = queue_.top();
    auto it = callbacks_.find(ev.id);
    if (it == callbacks_.end()) {
      queue_.pop();  // tombstone from cancel()
      continue;
    }
    // Move the callback out *before* popping/erasing so a callback that
    // schedules new events (almost all do) never invalidates our state.
    Callback fn = std::move(it->second);
    callbacks_.erase(it);
    queue_.pop();
    now_ = ev.at;
    ++fired_;
    fn();
    return true;
  }
  return false;
}

std::size_t Simulator::run() {
  std::size_t n = 0;
  while (fire_next()) ++n;
  return n;
}

std::size_t Simulator::run_until(Time deadline) {
  std::size_t n = 0;
  while (!queue_.empty()) {
    // Skip tombstones at the head so their timestamps don't stall us.
    const Event ev = queue_.top();
    if (!callbacks_.contains(ev.id)) {
      queue_.pop();
      continue;
    }
    if (deadline < ev.at) break;
    if (fire_next()) ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

std::size_t Simulator::step(std::size_t n) {
  std::size_t fired = 0;
  while (fired < n && fire_next()) ++fired;
  return fired;
}

}  // namespace ape::sim

#include "sim/resource_meter.hpp"

#include <algorithm>
#include <utility>

namespace ape::sim {

ResourceMeter::ResourceMeter(Simulator& sim, std::size_t cpu_capacity)
    : sim_(sim), cpu_capacity_(cpu_capacity == 0 ? 1 : cpu_capacity) {}

void ResourceMeter::add_cpu_source(CpuSource src) {
  cpu_sources_.push_back(std::move(src));
}

void ResourceMeter::add_memory_source(MemorySource src) {
  memory_sources_.push_back(std::move(src));
}

void ResourceMeter::start(Duration interval, Time until) {
  interval_ = interval;
  until_ = until;
  last_sample_time_ = sim_.now();
  last_busy_total_ = Duration{0};
  for (const auto& src : cpu_sources_) last_busy_total_ += src();
  sim_.schedule_in(interval_, [this] { take_sample(); });
}

void ResourceMeter::take_sample() {
  Duration busy_total{0};
  for (const auto& src : cpu_sources_) busy_total += src();
  std::size_t mem_bytes = 0;
  for (const auto& src : memory_sources_) mem_bytes += src();

  const Duration window = sim_.now() - last_sample_time_;
  Sample s;
  s.at = sim_.now();
  if (window.count() > 0) {
    const double busy = to_seconds(busy_total - last_busy_total_);
    const double cap = to_seconds(window) * static_cast<double>(cpu_capacity_);
    s.cpu_utilization = std::clamp(busy / cap, 0.0, 1.0);
  }
  s.memory_mb = static_cast<double>(mem_bytes) / (1024.0 * 1024.0);
  samples_.push_back(s);

  last_sample_time_ = sim_.now();
  last_busy_total_ = busy_total;

  if (sim_.now() + interval_ <= until_) {
    sim_.schedule_in(interval_, [this] { take_sample(); });
  }
}

double ResourceMeter::mean_cpu() const {
  if (samples_.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& s : samples_) acc += s.cpu_utilization;
  return acc / static_cast<double>(samples_.size());
}

double ResourceMeter::peak_cpu() const {
  double best = 0.0;
  for (const auto& s : samples_) best = std::max(best, s.cpu_utilization);
  return best;
}

double ResourceMeter::mean_memory_mb() const {
  if (samples_.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& s : samples_) acc += s.memory_mb;
  return acc / static_cast<double>(samples_.size());
}

double ResourceMeter::peak_memory_mb() const {
  double best = 0.0;
  for (const auto& s : samples_) best = std::max(best, s.memory_mb);
  return best;
}

}  // namespace ape::sim

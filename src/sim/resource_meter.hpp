// Periodic CPU/memory sampler for a simulated device.
//
// CPU sources report *cumulative busy time* (ServiceQueue::busy_time);
// the meter differentiates across its sampling window to get utilization.
// Memory sources report instantaneous bytes (cache occupancy, per-flow
// state, runtime baselines).  Reproduces the measurement loops behind the
// paper's Fig. 2 and Fig. 14.
#pragma once

#include <functional>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace ape::sim {

class ResourceMeter {
 public:
  using CpuSource = std::function<Duration()>;     // cumulative busy time
  using MemorySource = std::function<std::size_t()>;  // bytes, instantaneous

  explicit ResourceMeter(Simulator& sim, std::size_t cpu_capacity = 1);

  void add_cpu_source(CpuSource src);
  void add_memory_source(MemorySource src);

  struct Sample {
    Time at;
    double cpu_utilization = 0.0;  // 0..1, of total capacity
    double memory_mb = 0.0;
  };

  // Samples every `interval` until `until`; call before Simulator::run.
  void start(Duration interval, Time until);

  [[nodiscard]] const std::vector<Sample>& samples() const noexcept { return samples_; }
  [[nodiscard]] double mean_cpu() const;
  [[nodiscard]] double peak_cpu() const;
  [[nodiscard]] double mean_memory_mb() const;
  [[nodiscard]] double peak_memory_mb() const;

 private:
  void take_sample();

  Simulator& sim_;
  std::size_t cpu_capacity_;  // number of "cores" feeding the sources
  std::vector<CpuSource> cpu_sources_;
  std::vector<MemorySource> memory_sources_;
  std::vector<Sample> samples_;
  Duration interval_{0};
  Time until_{};
  Time last_sample_time_{};
  Duration last_busy_total_{0};
};

}  // namespace ape::sim

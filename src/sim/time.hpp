// Virtual time for the discrete-event simulator.
//
// All latencies in the system are expressed in these units; nothing in the
// libraries reads the wall clock, so every experiment is deterministic and
// replayable from a seed.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace ape::sim {

// Microsecond resolution covers everything from sub-ms DNS processing to
// hour-long experiment runs without overflow (int64 micros ≈ 292k years).
using Duration = std::chrono::duration<std::int64_t, std::micro>;

struct Time {
  Duration since_epoch{0};

  constexpr Time() = default;
  constexpr explicit Time(Duration d) : since_epoch(d) {}

  [[nodiscard]] constexpr double millis() const noexcept {
    return static_cast<double>(since_epoch.count()) / 1000.0;
  }
  [[nodiscard]] constexpr double seconds() const noexcept {
    return static_cast<double>(since_epoch.count()) / 1'000'000.0;
  }

  friend constexpr Time operator+(Time t, Duration d) noexcept { return Time{t.since_epoch + d}; }
  friend constexpr Time operator-(Time t, Duration d) noexcept { return Time{t.since_epoch - d}; }
  friend constexpr Duration operator-(Time a, Time b) noexcept { return a.since_epoch - b.since_epoch; }
  friend constexpr auto operator<=>(Time a, Time b) noexcept = default;
};

inline constexpr Duration microseconds(std::int64_t n) noexcept { return Duration{n}; }
inline constexpr Duration milliseconds(double n) noexcept {
  return Duration{static_cast<std::int64_t>(n * 1000.0)};
}
inline constexpr Duration seconds(double n) noexcept {
  return Duration{static_cast<std::int64_t>(n * 1'000'000.0)};
}
inline constexpr Duration minutes(double n) noexcept { return seconds(n * 60.0); }

[[nodiscard]] inline double to_millis(Duration d) noexcept {
  return static_cast<double>(d.count()) / 1000.0;
}
[[nodiscard]] inline double to_seconds(Duration d) noexcept {
  return static_cast<double>(d.count()) / 1'000'000.0;
}

[[nodiscard]] std::string format_time(Time t);

}  // namespace ape::sim

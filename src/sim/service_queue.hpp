// Single-resource FIFO service queue — the model of a router CPU.
//
// Every operation an AP performs (forwarding a packet, answering a DNS
// query, serving a cached object, running PACM) is submitted with a service
// time; jobs queue when the resource is busy.  This is what makes latency
// rise with request frequency (paper Fig. 11) and what the CPU-utilization
// plots (Figs. 2 and 14) are measured from.
//
// `servers` > 1 models a multi-core SoC (the GL-MT1300's MT7621A is
// dual-core); jobs still complete in FIFO submission order per server.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>

#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace ape::sim {

class ServiceQueue {
 public:
  using Callback = std::function<void()>;

  ServiceQueue(Simulator& sim, std::size_t servers = 1);

  // Enqueues a job needing `service_time` of the resource; `done` fires when
  // the job finishes (after queueing + service).
  void submit(Duration service_time, Callback done);

  // Record resource usage without a completion callback (e.g. background
  // packet forwarding that nobody waits on).
  void submit(Duration service_time);

  // Meters resource usage without occupying a server slot: for data-path
  // work that overlaps with DMA/softirq processing and therefore never
  // head-of-line-blocks request handling, but still shows up in CPU
  // utilization (Figs. 2 and 14).
  void account(Duration busy_time) noexcept { busy_time_ += busy_time; }

  [[nodiscard]] std::size_t queued() const noexcept { return waiting_.size(); }
  [[nodiscard]] std::size_t busy_servers() const noexcept { return busy_; }

  // Cumulative busy time across all servers since construction — the CPU
  // meter differentiates this to get utilization per sampling window.
  [[nodiscard]] Duration busy_time() const noexcept { return busy_time_; }
  [[nodiscard]] std::size_t jobs_completed() const noexcept { return completed_; }

 private:
  struct Job {
    Duration service;
    Callback done;  // may be empty
  };

  void start(Job job);
  void finish(Duration service, Callback done);

  Simulator& sim_;
  std::size_t servers_;
  std::size_t busy_ = 0;
  std::deque<Job> waiting_;
  Duration busy_time_{0};
  std::size_t completed_ = 0;
};

}  // namespace ape::sim

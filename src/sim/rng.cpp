#include "sim/rng.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace ape::sim {

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double Rng::uniform_real(double lo, double hi) {
  assert(lo <= hi);
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

bool Rng::bernoulli(double p) {
  return std::bernoulli_distribution(std::clamp(p, 0.0, 1.0))(engine_);
}

double Rng::exponential(double mean) {
  assert(mean > 0.0);
  return std::exponential_distribution<double>(1.0 / mean)(engine_);
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::shuffle(idx.begin(), idx.end(), engine_);
  return idx;
}

ZipfDistribution::ZipfDistribution(std::size_t n, double exponent) {
  assert(n > 0);
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), exponent);
    cdf_[k] = acc;
  }
  for (double& v : cdf_) v /= acc;
  cdf_.back() = 1.0;  // guard against fp round-off at the tail
}

std::size_t ZipfDistribution::sample(Rng& rng) const {
  const double u = rng.uniform_real(0.0, 1.0);
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(std::distance(cdf_.begin(), it));
}

double ZipfDistribution::probability(std::size_t rank) const {
  assert(rank < cdf_.size());
  if (rank == 0) return cdf_[0];
  return cdf_[rank] - cdf_[rank - 1];
}

}  // namespace ape::sim

#include "sim/service_queue.hpp"

#include <cassert>
#include <utility>

namespace ape::sim {

ServiceQueue::ServiceQueue(Simulator& sim, std::size_t servers)
    : sim_(sim), servers_(servers == 0 ? 1 : servers) {}

void ServiceQueue::submit(Duration service_time, Callback done) {
  assert(service_time.count() >= 0);
  if (busy_ < servers_) {
    start(Job{service_time, std::move(done)});
  } else {
    waiting_.push_back(Job{service_time, std::move(done)});
  }
}

void ServiceQueue::submit(Duration service_time) {
  submit(service_time, Callback{});
}

void ServiceQueue::start(Job job) {
  ++busy_;
  busy_time_ += job.service;
  const Duration service = job.service;
  // Move the callback into the completion event; `this` outlives the
  // simulator run by construction (queues are owned by node objects that
  // own their simulator references).
  sim_.schedule_in(service,
                   [this, service, done = std::move(job.done)]() mutable {
                     finish(service, std::move(done));
                   });
}

void ServiceQueue::finish(Duration /*service*/, Callback done) {
  assert(busy_ > 0);
  --busy_;
  ++completed_;
  if (!waiting_.empty()) {
    Job next = std::move(waiting_.front());
    waiting_.pop_front();
    start(std::move(next));
  }
  if (done) done();
}

}  // namespace ape::sim

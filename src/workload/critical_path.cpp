#include "workload/critical_path.hpp"

#include <algorithm>
#include <cassert>

namespace ape::workload {

CriticalPath critical_path(const AppSpec& app) {
  assert(app.valid());
  const std::size_t n = app.requests.size();
  CriticalPath result;
  if (n == 0) return result;

  // Longest path ending at each node, via memoized DFS (DAG guaranteed by
  // AppSpec::valid).
  std::vector<sim::Duration> best(n, sim::Duration{-1});
  std::vector<std::size_t> pred(n, n);  // n = "none"

  std::function<sim::Duration(std::size_t)> longest = [&](std::size_t i) -> sim::Duration {
    if (best[i].count() >= 0) return best[i];
    sim::Duration incoming{0};
    for (std::size_t dep : app.requests[i].depends_on) {
      const sim::Duration d = longest(dep);
      if (d > incoming) {
        incoming = d;
        pred[i] = dep;
      }
    }
    best[i] = incoming + expected_fetch_time(app.requests[i]);
    return best[i];
  };

  std::size_t tail = 0;
  sim::Duration tail_cost{0};
  for (std::size_t i = 0; i < n; ++i) {
    const sim::Duration d = longest(i);
    if (d > tail_cost) {
      tail_cost = d;
      tail = i;
    }
  }

  // Walk predecessors back to a source.
  std::vector<std::size_t> reversed;
  for (std::size_t i = tail; i != n; i = pred[i]) reversed.push_back(i);
  result.request_indices.assign(reversed.rbegin(), reversed.rend());
  result.expected_duration = tail_cost;
  return result;
}

void assign_priorities_by_critical_path(AppSpec& app) {
  for (auto& r : app.requests) r.priority = 1;
  const CriticalPath path = critical_path(app);
  for (std::size_t idx : path.request_indices) app.requests[idx].priority = 2;
}

}  // namespace ape::workload

#include "workload/app_model.hpp"

#include <functional>

namespace ape::workload {

std::vector<core::CacheableSpec> AppSpec::cacheables() const {
  std::vector<core::CacheableSpec> out;
  out.reserve(requests.size());
  for (const auto& r : requests) {
    core::CacheableSpec spec;
    const auto url = http::Url::parse(r.url);
    spec.id = url ? url.value().base() : r.url;
    spec.priority = r.priority;
    spec.ttl_minutes = r.ttl_minutes;
    spec.app = id;
    out.push_back(std::move(spec));
  }
  return out;
}

std::vector<http::ObjectSpec> AppSpec::objects() const {
  std::vector<http::ObjectSpec> out;
  out.reserve(requests.size());
  for (const auto& r : requests) {
    http::ObjectSpec spec;
    const auto url = http::Url::parse(r.url);
    spec.base_url = url ? url.value().base() : r.url;
    spec.size_bytes = r.size_bytes;
    spec.ttl_seconds = r.ttl_minutes * 60;
    spec.priority = r.priority;
    spec.app_id = id;
    spec.extra_latency = r.retrieval_latency;
    out.push_back(std::move(spec));
  }
  return out;
}

std::size_t AppSpec::total_object_bytes() const {
  std::size_t total = 0;
  for (const auto& r : requests) total += r.size_bytes;
  return total;
}

bool AppSpec::valid() const {
  const std::size_t n = requests.size();
  // Indices in range?
  for (const auto& r : requests) {
    for (std::size_t dep : r.depends_on) {
      if (dep >= n) return false;
    }
  }
  // Acyclic? (three-color DFS)
  enum class Mark { White, Grey, Black };
  std::vector<Mark> marks(n, Mark::White);
  std::function<bool(std::size_t)> visit = [&](std::size_t i) -> bool {
    if (marks[i] == Mark::Black) return true;
    if (marks[i] == Mark::Grey) return false;  // back edge
    marks[i] = Mark::Grey;
    for (std::size_t dep : requests[i].depends_on) {
      if (!visit(dep)) return false;
    }
    marks[i] = Mark::Black;
    return true;
  };
  for (std::size_t i = 0; i < n; ++i) {
    if (!visit(i)) return false;
  }
  return true;
}

sim::Duration expected_fetch_time(const RequestSpec& request) {
  // Backend delay + a WAN transfer estimate (~10 MB/s effective for the
  // critical-path weighting; only relative magnitudes matter).
  const double transfer_ms = static_cast<double>(request.size_bytes) / 10'000.0;
  return request.retrieval_latency + sim::milliseconds(transfer_ms);
}

}  // namespace ape::workload

#include "workload/app_generator.hpp"

#include "workload/critical_path.hpp"

namespace ape::workload {

std::vector<AppSpec> generate_apps(const GeneratorParams& params, sim::Rng& rng) {
  std::vector<AppSpec> apps;
  apps.reserve(params.app_count);

  for (std::size_t i = 0; i < params.app_count; ++i) {
    AppSpec app;
    app.id = params.first_app_id + static_cast<core::AppId>(i);
    app.name = "dummy-app-" + std::to_string(app.id);
    app.domain = "app" + std::to_string(app.id) + "." + params.domain_suffix;

    auto random_request = [&](const std::string& name) {
      RequestSpec r;
      r.name = name;
      r.url = "http://" + app.domain + "/" + name;
      r.size_bytes = static_cast<std::size_t>(rng.uniform_int(
          static_cast<std::int64_t>(params.min_object_bytes),
          static_cast<std::int64_t>(params.max_object_bytes)));
      r.ttl_minutes = static_cast<std::uint32_t>(rng.uniform_int(params.min_ttl_minutes,
                                                                 params.max_ttl_minutes));
      r.retrieval_latency = sim::milliseconds(
          rng.uniform_real(params.min_retrieval_ms, params.max_retrieval_ms));
      return r;
    };

    // Stage 1: the ID/translation request everything depends on.
    app.requests.push_back(random_request("id"));

    // Stage 2: parallel detail fetches.
    const std::size_t fanout = static_cast<std::size_t>(rng.uniform_int(
        static_cast<std::int64_t>(params.min_fanout),
        static_cast<std::int64_t>(params.max_fanout)));
    for (std::size_t j = 0; j < fanout; ++j) {
      RequestSpec r = random_request("detail" + std::to_string(j));
      r.depends_on.push_back(0);
      app.requests.push_back(std::move(r));
    }

    assign_priorities_by_critical_path(app);
    apps.push_back(std::move(app));
  }
  return apps;
}

}  // namespace ape::workload

// Models of the two real-world apps the paper evaluates (Sec. V-A,
// Fig. 10, Table III).
//
//  * MovieTrailer (github.com/marwa-eltayeb/MovieTrailer): movie name ->
//    getMovieID, then four parallel detail fetches (rating, plot, cast,
//    thumbnail).  Critical path: getMovieID -> getThumbnail.  High
//    priority: movieID, thumbnail.
//  * VirtualHome (github.com/rkswetha/VirtualHome): product category ->
//    getARObjectsID, then fetch the AR objects themselves.  High priority:
//    ARObjects.
#pragma once

#include "workload/app_model.hpp"

namespace ape::workload {

inline constexpr core::AppId kMovieTrailerId = 1;
inline constexpr core::AppId kVirtualHomeId = 2;

[[nodiscard]] AppSpec make_movie_trailer();
[[nodiscard]] AppSpec make_virtual_home();

}  // namespace ape::workload

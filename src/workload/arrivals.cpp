#include "workload/arrivals.hpp"

#include <cassert>

namespace ape::workload {

ArrivalSchedule::ArrivalSchedule(std::size_t app_count, double mean_runs_per_minute,
                                 double zipf_exponent, sim::Rng& rng)
    : rng_(rng) {
  assert(app_count > 0 && mean_runs_per_minute > 0.0);
  const sim::ZipfDistribution zipf(app_count, zipf_exponent);

  // P(rank) sums to 1; scaling by app_count * mean gives per-app rates with
  // the requested average.
  rates_per_minute_.resize(app_count);
  for (std::size_t i = 0; i < app_count; ++i) {
    rates_per_minute_[i] =
        zipf.probability(i) * static_cast<double>(app_count) * mean_runs_per_minute;
  }
  for (std::size_t i = 0; i < app_count; ++i) {
    schedule_next(i, sim::Time{});
  }
}

double ArrivalSchedule::rate_per_minute(std::size_t app_index) const {
  assert(app_index < rates_per_minute_.size());
  return rates_per_minute_[app_index];
}

void ArrivalSchedule::schedule_next(std::size_t app_index, sim::Time from) {
  const double mean_gap_minutes = 1.0 / rates_per_minute_[app_index];
  const double gap_minutes = rng_.exponential(mean_gap_minutes);
  queue_.push(Pending{from + sim::minutes(gap_minutes), app_index});
}

std::optional<ArrivalSchedule::Arrival> ArrivalSchedule::next(sim::Time horizon) {
  if (queue_.empty()) return std::nullopt;
  const Pending top = queue_.top();
  if (horizon < top.at) return std::nullopt;
  queue_.pop();
  schedule_next(top.app_index, top.at);
  return Arrival{top.at, top.app_index};
}

}  // namespace ape::workload

// Dummy-app generator (paper Sec. V-A): synthesizes apps with a two-stage
// request DAG (an ID lookup followed by a fan-out of detail fetches),
// cacheable objects with randomly assigned size / TTL / retrieval latency,
// and priorities derived from the critical path.
#pragma once

#include "sim/rng.hpp"
#include "workload/app_model.hpp"

namespace ape::workload {

struct GeneratorParams {
  std::size_t app_count = 28;
  // Paper defaults: sizes 1-100 kB, TTL 10-60 min, retrieval 20-50 ms.
  std::size_t min_object_bytes = 1 * 1000;
  std::size_t max_object_bytes = 100 * 1000;
  std::uint32_t min_ttl_minutes = 10;
  std::uint32_t max_ttl_minutes = 60;
  double min_retrieval_ms = 20.0;
  double max_retrieval_ms = 50.0;
  std::size_t min_fanout = 3;   // detail fetches in stage 2
  std::size_t max_fanout = 8;
  core::AppId first_app_id = 100;
  std::string domain_suffix = "example.com";
};

[[nodiscard]] std::vector<AppSpec> generate_apps(const GeneratorParams& params,
                                                 sim::Rng& rng);

}  // namespace ape::workload

#include "workload/real_apps.hpp"

namespace ape::workload {

namespace {
RequestSpec request(std::string name, const std::string& domain, std::size_t size_bytes,
                    std::uint32_t ttl_minutes, double retrieval_ms, int priority,
                    std::vector<std::size_t> deps = {}) {
  RequestSpec r;
  r.url = "http://" + domain + "/" + name;
  r.name = std::move(name);
  r.size_bytes = size_bytes;
  r.ttl_minutes = ttl_minutes;
  r.retrieval_latency = sim::milliseconds(retrieval_ms);
  r.priority = priority;
  r.depends_on = std::move(deps);
  return r;
}
}  // namespace

AppSpec make_movie_trailer() {
  AppSpec app;
  app.name = "MovieTrailer";
  app.id = kMovieTrailerId;
  app.domain = "api.movietrailer.app";
  app.compose_time = sim::milliseconds(3);

  // Sizes reflect the app's payloads: small JSON for id/rating/plot/cast,
  // a large JPEG thumbnail.  Priorities follow Table III: movieID and
  // thumbnail high (2), the rest low (1).
  app.requests.push_back(request("getMovieID", app.domain, 2'000, 30, 25.0, 2));
  app.requests.push_back(request("getRating", app.domain, 4'000, 20, 22.0, 1, {0}));
  app.requests.push_back(request("getPlot", app.domain, 8'000, 30, 24.0, 1, {0}));
  app.requests.push_back(request("getCast", app.domain, 12'000, 30, 26.0, 1, {0}));
  app.requests.push_back(request("getThumbnail", app.domain, 90'000, 60, 45.0, 2, {0}));
  return app;
}

AppSpec make_virtual_home() {
  AppSpec app;
  app.name = "VirtualHome";
  app.id = kVirtualHomeId;
  app.domain = "api.virtualhome.app";
  app.compose_time = sim::milliseconds(5);  // AR scene assembly

  // Table III: ARObjectsID low priority, ARObjects (the meshes) high.
  app.requests.push_back(request("getARObjectsID", app.domain, 3'000, 30, 24.0, 1));
  app.requests.push_back(request("getARObjects", app.domain, 150'000, 60, 48.0, 2, {0}));
  return app;
}

}  // namespace ape::workload

// Synthetic WiFi traffic traces matching the published statistics of the
// paper's Table II (the Tcpreplay sample captures), plus a replayer that
// drives an AP's packet-forwarding path the way the paper's Tcpreplay runs
// drove the GL-MT1300 (Fig. 2).
#pragma once

#include <string>
#include <vector>

#include "core/ap_runtime.hpp"
#include "sim/rng.hpp"

namespace ape::workload {

struct TraceSpec {
  std::string name;
  std::size_t total_bytes = 0;
  std::size_t packets = 0;
  std::size_t flows = 0;
  sim::Duration duration{sim::minutes(5)};
  std::size_t app_count = 0;

  [[nodiscard]] double average_packet_bytes() const noexcept {
    return packets == 0 ? 0.0 : static_cast<double>(total_bytes) / static_cast<double>(packets);
  }
};

// The two captures of Table II.
[[nodiscard]] TraceSpec low_rate_trace();   // 9.4 MB, 14261 pkts, 1209 flows, 28 apps
[[nodiscard]] TraceSpec high_rate_trace();  // 368 MB, 791615 pkts, 40686 flows, 132 apps

struct TracePacket {
  sim::Time at;
  std::size_t bytes;
  bool starts_flow;
};

// Generates a packet timeline matching the spec: Poisson packet arrivals
// across the duration, sizes jittered around the trace's average, the
// first packet of each of `flows` flows marked.
[[nodiscard]] std::vector<TracePacket> generate_trace(const TraceSpec& spec, sim::Rng& rng);

// Schedules every packet into the simulator against the AP's forwarding
// path.  Run the simulator afterwards.
void replay_trace(const std::vector<TracePacket>& packets, core::ApRuntime& ap,
                  sim::Simulator& sim);

}  // namespace ape::workload

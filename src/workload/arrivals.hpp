// App-usage arrival process (paper Sec. V-A): per-app Poisson arrivals
// whose rates follow a Zipf popularity distribution across apps, scaled so
// the *average* per-app frequency equals the configured value (3 runs per
// minute by default).
#pragma once

#include <optional>
#include <queue>
#include <vector>

#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace ape::workload {

class ArrivalSchedule {
 public:
  // `mean_runs_per_minute` is averaged over all apps; Zipf skews individual
  // apps around it (rank-0 apps run much more often than tail apps).
  ArrivalSchedule(std::size_t app_count, double mean_runs_per_minute, double zipf_exponent,
                  sim::Rng& rng);

  struct Arrival {
    sim::Time at;
    std::size_t app_index;
  };

  // Next arrival at or before `horizon`; nullopt when the next event lies
  // beyond it.  Consumes the event and schedules that app's next run.
  [[nodiscard]] std::optional<Arrival> next(sim::Time horizon);

  [[nodiscard]] double rate_per_minute(std::size_t app_index) const;

 private:
  void schedule_next(std::size_t app_index, sim::Time from);

  struct Pending {
    sim::Time at;
    std::size_t app_index;
    bool operator<(const Pending& other) const noexcept { return other.at < at; }
  };

  std::vector<double> rates_per_minute_;
  std::priority_queue<Pending> queue_;
  sim::Rng& rng_;
};

}  // namespace ape::workload

// Critical-path analysis over an app's request DAG (paper Sec. III-A):
// the longest (in expected duration) dependency chain from start to finish.
// Objects on that path get priority 2 ("high"), everything else priority 1,
// matching the synthetic-app priority assignment of Sec. V-A.
#pragma once

#include <vector>

#include "workload/app_model.hpp"

namespace ape::workload {

struct CriticalPath {
  std::vector<std::size_t> request_indices;  // in execution order
  sim::Duration expected_duration{0};
};

[[nodiscard]] CriticalPath critical_path(const AppSpec& app);

// Rewrites request priorities in place: 2 on the critical path, 1 off it.
void assign_priorities_by_critical_path(AppSpec& app);

}  // namespace ape::workload

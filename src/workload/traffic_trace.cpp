#include "workload/traffic_trace.hpp"

#include <algorithm>

namespace ape::workload {

TraceSpec low_rate_trace() {
  TraceSpec spec;
  spec.name = "low-rate";
  spec.total_bytes = static_cast<std::size_t>(9.4 * 1024 * 1024);
  spec.packets = 14'261;
  spec.flows = 1'209;
  spec.duration = sim::minutes(5);
  spec.app_count = 28;
  return spec;
}

TraceSpec high_rate_trace() {
  TraceSpec spec;
  spec.name = "high-rate";
  spec.total_bytes = static_cast<std::size_t>(368.0 * 1024 * 1024);
  spec.packets = 791'615;
  spec.flows = 40'686;
  spec.duration = sim::minutes(5);
  spec.app_count = 132;
  return spec;
}

std::vector<TracePacket> generate_trace(const TraceSpec& spec, sim::Rng& rng) {
  std::vector<TracePacket> packets;
  packets.reserve(spec.packets);

  // Plain-unit mean for rng.exponential(); the sampled gap is folded back
  // into sim::seconds below.  // ape-lint: allow(raw-seconds)
  const double mean_gap_s =
      sim::to_seconds(spec.duration) / static_cast<double>(spec.packets);
  const double avg_size = spec.average_packet_bytes();

  // Mark flow starts uniformly across the packet sequence.
  const double flow_start_prob =
      static_cast<double>(spec.flows) / static_cast<double>(spec.packets);

  // Bimodal sizes (control packets vs near-MTU data) calibrated so the
  // empirical mean matches the capture's average packet size.
  constexpr double kSmallShare = 0.55;
  constexpr double kSmallMean = 130.0;  // uniform(60, 200)
  const double big_mean = std::clamp(
      (avg_size - kSmallShare * kSmallMean) / (1.0 - kSmallShare), 140.0, 1480.0);
  const double big_lo = std::clamp(2.0 * big_mean - 1500.0, 60.0, big_mean);
  const double big_hi = std::min(2.0 * big_mean - big_lo, 1500.0);

  double t = 0.0;
  std::size_t flows_started = 0;
  for (std::size_t i = 0; i < spec.packets; ++i) {
    t += rng.exponential(mean_gap_s);
    TracePacket p;
    p.at = sim::Time{sim::seconds(std::min(t, sim::to_seconds(spec.duration)))};
    const double r = rng.uniform_real(0.0, 1.0);
    const double size = r < kSmallShare ? rng.uniform_real(60.0, 200.0)
                                        : rng.uniform_real(big_lo, big_hi);
    p.bytes = static_cast<std::size_t>(std::clamp(size, 60.0, 1500.0));
    p.starts_flow = flows_started < spec.flows && rng.bernoulli(flow_start_prob);
    if (p.starts_flow) ++flows_started;
    packets.push_back(p);
  }
  return packets;
}

void replay_trace(const std::vector<TracePacket>& packets, core::ApRuntime& ap,
                  sim::Simulator& sim) {
  for (const TracePacket& p : packets) {
    sim.schedule_at(p.at, [&ap, bytes = p.bytes, starts = p.starts_flow] {
      ap.forward_packet(bytes, starts);
    });
  }
}

}  // namespace ape::workload

// Mobile-app workload model.
//
// An app run is a DAG of HTTP requests (paper Fig. 3): nodes fetch remote
// objects, edges are data dependencies (getMovieID must finish before the
// four detail fetches start), and the run ends with a UI-composition step.
// App-level latency is the makespan of one run — the metric of Figs. 12/13.
#pragma once

#include <string>
#include <vector>

#include "core/client_runtime.hpp"
#include "http/origin_server.hpp"
#include "sim/time.hpp"

namespace ape::workload {

struct RequestSpec {
  std::string name;                  // e.g. "getThumbnail"
  std::string url;                   // full URL (base = cache identity)
  std::size_t size_bytes = 10'000;
  std::uint32_t ttl_minutes = 10;
  int priority = 1;                  // set by critical-path analysis
  sim::Duration retrieval_latency{sim::milliseconds(30)};  // backend delay
  std::vector<std::size_t> depends_on;  // indices into AppSpec::requests
};

struct AppSpec {
  std::string name;
  core::AppId id = 0;
  std::string domain;               // all objects of an app share its API host
  std::vector<RequestSpec> requests;
  sim::Duration compose_time{sim::milliseconds(2)};  // UI render after fetches

  // The @Cacheable set this app's annotations declare.
  [[nodiscard]] std::vector<core::CacheableSpec> cacheables() const;
  // The objects to host on the edge/origin server.
  [[nodiscard]] std::vector<http::ObjectSpec> objects() const;

  [[nodiscard]] std::size_t total_object_bytes() const;
  // Validates the DAG: indices in range, acyclic.
  [[nodiscard]] bool valid() const;
};

// Expected standalone fetch time for a request — the weight used by the
// critical-path analysis (network transfer grows with object size).
[[nodiscard]] sim::Duration expected_fetch_time(const RequestSpec& request);

}  // namespace ape::workload

file(REMOVE_RECURSE
  "CMakeFiles/ape_baselines.dir/baselines/ape_lru_system.cpp.o"
  "CMakeFiles/ape_baselines.dir/baselines/ape_lru_system.cpp.o.d"
  "CMakeFiles/ape_baselines.dir/baselines/edge_cache_system.cpp.o"
  "CMakeFiles/ape_baselines.dir/baselines/edge_cache_system.cpp.o.d"
  "CMakeFiles/ape_baselines.dir/baselines/wicache_controller.cpp.o"
  "CMakeFiles/ape_baselines.dir/baselines/wicache_controller.cpp.o.d"
  "CMakeFiles/ape_baselines.dir/baselines/wicache_system.cpp.o"
  "CMakeFiles/ape_baselines.dir/baselines/wicache_system.cpp.o.d"
  "libape_baselines.a"
  "libape_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ape_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

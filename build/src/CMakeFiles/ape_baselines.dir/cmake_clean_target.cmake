file(REMOVE_RECURSE
  "libape_baselines.a"
)

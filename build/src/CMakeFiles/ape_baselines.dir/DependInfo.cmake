
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/ape_lru_system.cpp" "src/CMakeFiles/ape_baselines.dir/baselines/ape_lru_system.cpp.o" "gcc" "src/CMakeFiles/ape_baselines.dir/baselines/ape_lru_system.cpp.o.d"
  "/root/repo/src/baselines/edge_cache_system.cpp" "src/CMakeFiles/ape_baselines.dir/baselines/edge_cache_system.cpp.o" "gcc" "src/CMakeFiles/ape_baselines.dir/baselines/edge_cache_system.cpp.o.d"
  "/root/repo/src/baselines/wicache_controller.cpp" "src/CMakeFiles/ape_baselines.dir/baselines/wicache_controller.cpp.o" "gcc" "src/CMakeFiles/ape_baselines.dir/baselines/wicache_controller.cpp.o.d"
  "/root/repo/src/baselines/wicache_system.cpp" "src/CMakeFiles/ape_baselines.dir/baselines/wicache_system.cpp.o" "gcc" "src/CMakeFiles/ape_baselines.dir/baselines/wicache_system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ape_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ape_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ape_http.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ape_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ape_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ape_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ape_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

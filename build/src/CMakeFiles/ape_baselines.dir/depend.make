# Empty dependencies file for ape_baselines.
# This may be replaced when dependencies are built.

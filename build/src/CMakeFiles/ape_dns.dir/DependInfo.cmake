
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dns/adns.cpp" "src/CMakeFiles/ape_dns.dir/dns/adns.cpp.o" "gcc" "src/CMakeFiles/ape_dns.dir/dns/adns.cpp.o.d"
  "/root/repo/src/dns/cdn_dns.cpp" "src/CMakeFiles/ape_dns.dir/dns/cdn_dns.cpp.o" "gcc" "src/CMakeFiles/ape_dns.dir/dns/cdn_dns.cpp.o.d"
  "/root/repo/src/dns/codec.cpp" "src/CMakeFiles/ape_dns.dir/dns/codec.cpp.o" "gcc" "src/CMakeFiles/ape_dns.dir/dns/codec.cpp.o.d"
  "/root/repo/src/dns/ldns.cpp" "src/CMakeFiles/ape_dns.dir/dns/ldns.cpp.o" "gcc" "src/CMakeFiles/ape_dns.dir/dns/ldns.cpp.o.d"
  "/root/repo/src/dns/name.cpp" "src/CMakeFiles/ape_dns.dir/dns/name.cpp.o" "gcc" "src/CMakeFiles/ape_dns.dir/dns/name.cpp.o.d"
  "/root/repo/src/dns/records.cpp" "src/CMakeFiles/ape_dns.dir/dns/records.cpp.o" "gcc" "src/CMakeFiles/ape_dns.dir/dns/records.cpp.o.d"
  "/root/repo/src/dns/server.cpp" "src/CMakeFiles/ape_dns.dir/dns/server.cpp.o" "gcc" "src/CMakeFiles/ape_dns.dir/dns/server.cpp.o.d"
  "/root/repo/src/dns/stub_resolver.cpp" "src/CMakeFiles/ape_dns.dir/dns/stub_resolver.cpp.o" "gcc" "src/CMakeFiles/ape_dns.dir/dns/stub_resolver.cpp.o.d"
  "/root/repo/src/dns/zone.cpp" "src/CMakeFiles/ape_dns.dir/dns/zone.cpp.o" "gcc" "src/CMakeFiles/ape_dns.dir/dns/zone.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ape_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ape_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ape_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for ape_dns.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libape_dns.a"
)

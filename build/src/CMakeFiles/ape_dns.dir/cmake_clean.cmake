file(REMOVE_RECURSE
  "CMakeFiles/ape_dns.dir/dns/adns.cpp.o"
  "CMakeFiles/ape_dns.dir/dns/adns.cpp.o.d"
  "CMakeFiles/ape_dns.dir/dns/cdn_dns.cpp.o"
  "CMakeFiles/ape_dns.dir/dns/cdn_dns.cpp.o.d"
  "CMakeFiles/ape_dns.dir/dns/codec.cpp.o"
  "CMakeFiles/ape_dns.dir/dns/codec.cpp.o.d"
  "CMakeFiles/ape_dns.dir/dns/ldns.cpp.o"
  "CMakeFiles/ape_dns.dir/dns/ldns.cpp.o.d"
  "CMakeFiles/ape_dns.dir/dns/name.cpp.o"
  "CMakeFiles/ape_dns.dir/dns/name.cpp.o.d"
  "CMakeFiles/ape_dns.dir/dns/records.cpp.o"
  "CMakeFiles/ape_dns.dir/dns/records.cpp.o.d"
  "CMakeFiles/ape_dns.dir/dns/server.cpp.o"
  "CMakeFiles/ape_dns.dir/dns/server.cpp.o.d"
  "CMakeFiles/ape_dns.dir/dns/stub_resolver.cpp.o"
  "CMakeFiles/ape_dns.dir/dns/stub_resolver.cpp.o.d"
  "CMakeFiles/ape_dns.dir/dns/zone.cpp.o"
  "CMakeFiles/ape_dns.dir/dns/zone.cpp.o.d"
  "libape_dns.a"
  "libape_dns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ape_dns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

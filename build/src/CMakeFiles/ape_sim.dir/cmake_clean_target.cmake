file(REMOVE_RECURSE
  "libape_sim.a"
)

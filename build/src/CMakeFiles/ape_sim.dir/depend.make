# Empty dependencies file for ape_sim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ape_sim.dir/sim/resource_meter.cpp.o"
  "CMakeFiles/ape_sim.dir/sim/resource_meter.cpp.o.d"
  "CMakeFiles/ape_sim.dir/sim/rng.cpp.o"
  "CMakeFiles/ape_sim.dir/sim/rng.cpp.o.d"
  "CMakeFiles/ape_sim.dir/sim/service_queue.cpp.o"
  "CMakeFiles/ape_sim.dir/sim/service_queue.cpp.o.d"
  "CMakeFiles/ape_sim.dir/sim/simulator.cpp.o"
  "CMakeFiles/ape_sim.dir/sim/simulator.cpp.o.d"
  "libape_sim.a"
  "libape_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ape_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

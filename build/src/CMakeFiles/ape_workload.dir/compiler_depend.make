# Empty compiler generated dependencies file for ape_workload.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/app_generator.cpp" "src/CMakeFiles/ape_workload.dir/workload/app_generator.cpp.o" "gcc" "src/CMakeFiles/ape_workload.dir/workload/app_generator.cpp.o.d"
  "/root/repo/src/workload/app_model.cpp" "src/CMakeFiles/ape_workload.dir/workload/app_model.cpp.o" "gcc" "src/CMakeFiles/ape_workload.dir/workload/app_model.cpp.o.d"
  "/root/repo/src/workload/arrivals.cpp" "src/CMakeFiles/ape_workload.dir/workload/arrivals.cpp.o" "gcc" "src/CMakeFiles/ape_workload.dir/workload/arrivals.cpp.o.d"
  "/root/repo/src/workload/critical_path.cpp" "src/CMakeFiles/ape_workload.dir/workload/critical_path.cpp.o" "gcc" "src/CMakeFiles/ape_workload.dir/workload/critical_path.cpp.o.d"
  "/root/repo/src/workload/real_apps.cpp" "src/CMakeFiles/ape_workload.dir/workload/real_apps.cpp.o" "gcc" "src/CMakeFiles/ape_workload.dir/workload/real_apps.cpp.o.d"
  "/root/repo/src/workload/traffic_trace.cpp" "src/CMakeFiles/ape_workload.dir/workload/traffic_trace.cpp.o" "gcc" "src/CMakeFiles/ape_workload.dir/workload/traffic_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ape_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ape_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ape_http.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ape_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ape_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ape_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ape_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

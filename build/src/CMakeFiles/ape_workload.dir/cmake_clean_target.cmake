file(REMOVE_RECURSE
  "libape_workload.a"
)

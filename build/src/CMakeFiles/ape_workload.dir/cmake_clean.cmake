file(REMOVE_RECURSE
  "CMakeFiles/ape_workload.dir/workload/app_generator.cpp.o"
  "CMakeFiles/ape_workload.dir/workload/app_generator.cpp.o.d"
  "CMakeFiles/ape_workload.dir/workload/app_model.cpp.o"
  "CMakeFiles/ape_workload.dir/workload/app_model.cpp.o.d"
  "CMakeFiles/ape_workload.dir/workload/arrivals.cpp.o"
  "CMakeFiles/ape_workload.dir/workload/arrivals.cpp.o.d"
  "CMakeFiles/ape_workload.dir/workload/critical_path.cpp.o"
  "CMakeFiles/ape_workload.dir/workload/critical_path.cpp.o.d"
  "CMakeFiles/ape_workload.dir/workload/real_apps.cpp.o"
  "CMakeFiles/ape_workload.dir/workload/real_apps.cpp.o.d"
  "CMakeFiles/ape_workload.dir/workload/traffic_trace.cpp.o"
  "CMakeFiles/ape_workload.dir/workload/traffic_trace.cpp.o.d"
  "libape_workload.a"
  "libape_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ape_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

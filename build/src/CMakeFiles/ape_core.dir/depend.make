# Empty dependencies file for ape_core.
# This may be replaced when dependencies are built.

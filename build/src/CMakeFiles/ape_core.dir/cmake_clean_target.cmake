file(REMOVE_RECURSE
  "libape_core.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/ape_core.dir/core/ap_runtime.cpp.o"
  "CMakeFiles/ape_core.dir/core/ap_runtime.cpp.o.d"
  "CMakeFiles/ape_core.dir/core/client_runtime.cpp.o"
  "CMakeFiles/ape_core.dir/core/client_runtime.cpp.o.d"
  "CMakeFiles/ape_core.dir/core/config.cpp.o"
  "CMakeFiles/ape_core.dir/core/config.cpp.o.d"
  "CMakeFiles/ape_core.dir/core/dns_cache_record.cpp.o"
  "CMakeFiles/ape_core.dir/core/dns_cache_record.cpp.o.d"
  "CMakeFiles/ape_core.dir/core/frequency_tracker.cpp.o"
  "CMakeFiles/ape_core.dir/core/frequency_tracker.cpp.o.d"
  "CMakeFiles/ape_core.dir/core/knapsack.cpp.o"
  "CMakeFiles/ape_core.dir/core/knapsack.cpp.o.d"
  "CMakeFiles/ape_core.dir/core/pacm.cpp.o"
  "CMakeFiles/ape_core.dir/core/pacm.cpp.o.d"
  "CMakeFiles/ape_core.dir/core/pacm_policy.cpp.o"
  "CMakeFiles/ape_core.dir/core/pacm_policy.cpp.o.d"
  "CMakeFiles/ape_core.dir/core/programming_model.cpp.o"
  "CMakeFiles/ape_core.dir/core/programming_model.cpp.o.d"
  "CMakeFiles/ape_core.dir/core/url_hash.cpp.o"
  "CMakeFiles/ape_core.dir/core/url_hash.cpp.o.d"
  "libape_core.a"
  "libape_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ape_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/ap_runtime.cpp" "src/CMakeFiles/ape_core.dir/core/ap_runtime.cpp.o" "gcc" "src/CMakeFiles/ape_core.dir/core/ap_runtime.cpp.o.d"
  "/root/repo/src/core/client_runtime.cpp" "src/CMakeFiles/ape_core.dir/core/client_runtime.cpp.o" "gcc" "src/CMakeFiles/ape_core.dir/core/client_runtime.cpp.o.d"
  "/root/repo/src/core/config.cpp" "src/CMakeFiles/ape_core.dir/core/config.cpp.o" "gcc" "src/CMakeFiles/ape_core.dir/core/config.cpp.o.d"
  "/root/repo/src/core/dns_cache_record.cpp" "src/CMakeFiles/ape_core.dir/core/dns_cache_record.cpp.o" "gcc" "src/CMakeFiles/ape_core.dir/core/dns_cache_record.cpp.o.d"
  "/root/repo/src/core/frequency_tracker.cpp" "src/CMakeFiles/ape_core.dir/core/frequency_tracker.cpp.o" "gcc" "src/CMakeFiles/ape_core.dir/core/frequency_tracker.cpp.o.d"
  "/root/repo/src/core/knapsack.cpp" "src/CMakeFiles/ape_core.dir/core/knapsack.cpp.o" "gcc" "src/CMakeFiles/ape_core.dir/core/knapsack.cpp.o.d"
  "/root/repo/src/core/pacm.cpp" "src/CMakeFiles/ape_core.dir/core/pacm.cpp.o" "gcc" "src/CMakeFiles/ape_core.dir/core/pacm.cpp.o.d"
  "/root/repo/src/core/pacm_policy.cpp" "src/CMakeFiles/ape_core.dir/core/pacm_policy.cpp.o" "gcc" "src/CMakeFiles/ape_core.dir/core/pacm_policy.cpp.o.d"
  "/root/repo/src/core/programming_model.cpp" "src/CMakeFiles/ape_core.dir/core/programming_model.cpp.o" "gcc" "src/CMakeFiles/ape_core.dir/core/programming_model.cpp.o.d"
  "/root/repo/src/core/url_hash.cpp" "src/CMakeFiles/ape_core.dir/core/url_hash.cpp.o" "gcc" "src/CMakeFiles/ape_core.dir/core/url_hash.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ape_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ape_http.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ape_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ape_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ape_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ape_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libape_stats.a"
)

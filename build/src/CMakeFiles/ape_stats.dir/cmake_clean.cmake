file(REMOVE_RECURSE
  "CMakeFiles/ape_stats.dir/stats/csv.cpp.o"
  "CMakeFiles/ape_stats.dir/stats/csv.cpp.o.d"
  "CMakeFiles/ape_stats.dir/stats/ewma.cpp.o"
  "CMakeFiles/ape_stats.dir/stats/ewma.cpp.o.d"
  "CMakeFiles/ape_stats.dir/stats/gini.cpp.o"
  "CMakeFiles/ape_stats.dir/stats/gini.cpp.o.d"
  "CMakeFiles/ape_stats.dir/stats/histogram.cpp.o"
  "CMakeFiles/ape_stats.dir/stats/histogram.cpp.o.d"
  "CMakeFiles/ape_stats.dir/stats/summary.cpp.o"
  "CMakeFiles/ape_stats.dir/stats/summary.cpp.o.d"
  "CMakeFiles/ape_stats.dir/stats/table.cpp.o"
  "CMakeFiles/ape_stats.dir/stats/table.cpp.o.d"
  "libape_stats.a"
  "libape_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ape_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ape_stats.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ape_cache.dir/cache/block_list.cpp.o"
  "CMakeFiles/ape_cache.dir/cache/block_list.cpp.o.d"
  "CMakeFiles/ape_cache.dir/cache/cache_stats.cpp.o"
  "CMakeFiles/ape_cache.dir/cache/cache_stats.cpp.o.d"
  "CMakeFiles/ape_cache.dir/cache/fifo_policy.cpp.o"
  "CMakeFiles/ape_cache.dir/cache/fifo_policy.cpp.o.d"
  "CMakeFiles/ape_cache.dir/cache/gdsf_policy.cpp.o"
  "CMakeFiles/ape_cache.dir/cache/gdsf_policy.cpp.o.d"
  "CMakeFiles/ape_cache.dir/cache/lfu_policy.cpp.o"
  "CMakeFiles/ape_cache.dir/cache/lfu_policy.cpp.o.d"
  "CMakeFiles/ape_cache.dir/cache/lru_policy.cpp.o"
  "CMakeFiles/ape_cache.dir/cache/lru_policy.cpp.o.d"
  "CMakeFiles/ape_cache.dir/cache/object_store.cpp.o"
  "CMakeFiles/ape_cache.dir/cache/object_store.cpp.o.d"
  "libape_cache.a"
  "libape_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ape_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libape_cache.a"
)

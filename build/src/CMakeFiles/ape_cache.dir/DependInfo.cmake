
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/block_list.cpp" "src/CMakeFiles/ape_cache.dir/cache/block_list.cpp.o" "gcc" "src/CMakeFiles/ape_cache.dir/cache/block_list.cpp.o.d"
  "/root/repo/src/cache/cache_stats.cpp" "src/CMakeFiles/ape_cache.dir/cache/cache_stats.cpp.o" "gcc" "src/CMakeFiles/ape_cache.dir/cache/cache_stats.cpp.o.d"
  "/root/repo/src/cache/fifo_policy.cpp" "src/CMakeFiles/ape_cache.dir/cache/fifo_policy.cpp.o" "gcc" "src/CMakeFiles/ape_cache.dir/cache/fifo_policy.cpp.o.d"
  "/root/repo/src/cache/gdsf_policy.cpp" "src/CMakeFiles/ape_cache.dir/cache/gdsf_policy.cpp.o" "gcc" "src/CMakeFiles/ape_cache.dir/cache/gdsf_policy.cpp.o.d"
  "/root/repo/src/cache/lfu_policy.cpp" "src/CMakeFiles/ape_cache.dir/cache/lfu_policy.cpp.o" "gcc" "src/CMakeFiles/ape_cache.dir/cache/lfu_policy.cpp.o.d"
  "/root/repo/src/cache/lru_policy.cpp" "src/CMakeFiles/ape_cache.dir/cache/lru_policy.cpp.o" "gcc" "src/CMakeFiles/ape_cache.dir/cache/lru_policy.cpp.o.d"
  "/root/repo/src/cache/object_store.cpp" "src/CMakeFiles/ape_cache.dir/cache/object_store.cpp.o" "gcc" "src/CMakeFiles/ape_cache.dir/cache/object_store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ape_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ape_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for ape_cache.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/http/edge_server.cpp" "src/CMakeFiles/ape_http.dir/http/edge_server.cpp.o" "gcc" "src/CMakeFiles/ape_http.dir/http/edge_server.cpp.o.d"
  "/root/repo/src/http/endpoint.cpp" "src/CMakeFiles/ape_http.dir/http/endpoint.cpp.o" "gcc" "src/CMakeFiles/ape_http.dir/http/endpoint.cpp.o.d"
  "/root/repo/src/http/message.cpp" "src/CMakeFiles/ape_http.dir/http/message.cpp.o" "gcc" "src/CMakeFiles/ape_http.dir/http/message.cpp.o.d"
  "/root/repo/src/http/origin_server.cpp" "src/CMakeFiles/ape_http.dir/http/origin_server.cpp.o" "gcc" "src/CMakeFiles/ape_http.dir/http/origin_server.cpp.o.d"
  "/root/repo/src/http/url.cpp" "src/CMakeFiles/ape_http.dir/http/url.cpp.o" "gcc" "src/CMakeFiles/ape_http.dir/http/url.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ape_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ape_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ape_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

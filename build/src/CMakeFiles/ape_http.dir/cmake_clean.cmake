file(REMOVE_RECURSE
  "CMakeFiles/ape_http.dir/http/edge_server.cpp.o"
  "CMakeFiles/ape_http.dir/http/edge_server.cpp.o.d"
  "CMakeFiles/ape_http.dir/http/endpoint.cpp.o"
  "CMakeFiles/ape_http.dir/http/endpoint.cpp.o.d"
  "CMakeFiles/ape_http.dir/http/message.cpp.o"
  "CMakeFiles/ape_http.dir/http/message.cpp.o.d"
  "CMakeFiles/ape_http.dir/http/origin_server.cpp.o"
  "CMakeFiles/ape_http.dir/http/origin_server.cpp.o.d"
  "CMakeFiles/ape_http.dir/http/url.cpp.o"
  "CMakeFiles/ape_http.dir/http/url.cpp.o.d"
  "libape_http.a"
  "libape_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ape_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ape_http.
# This may be replaced when dependencies are built.

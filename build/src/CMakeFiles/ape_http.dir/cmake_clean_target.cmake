file(REMOVE_RECURSE
  "libape_http.a"
)

file(REMOVE_RECURSE
  "libape_testbed.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/ape_testbed.dir/testbed/app_driver.cpp.o"
  "CMakeFiles/ape_testbed.dir/testbed/app_driver.cpp.o.d"
  "CMakeFiles/ape_testbed.dir/testbed/experiment.cpp.o"
  "CMakeFiles/ape_testbed.dir/testbed/experiment.cpp.o.d"
  "CMakeFiles/ape_testbed.dir/testbed/testbed.cpp.o"
  "CMakeFiles/ape_testbed.dir/testbed/testbed.cpp.o.d"
  "CMakeFiles/ape_testbed.dir/testbed/wan.cpp.o"
  "CMakeFiles/ape_testbed.dir/testbed/wan.cpp.o.d"
  "libape_testbed.a"
  "libape_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ape_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ape_testbed.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for ape_net.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libape_net.a"
)

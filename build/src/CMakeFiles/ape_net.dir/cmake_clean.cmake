file(REMOVE_RECURSE
  "CMakeFiles/ape_net.dir/net/datagram.cpp.o"
  "CMakeFiles/ape_net.dir/net/datagram.cpp.o.d"
  "CMakeFiles/ape_net.dir/net/network.cpp.o"
  "CMakeFiles/ape_net.dir/net/network.cpp.o.d"
  "CMakeFiles/ape_net.dir/net/tcp.cpp.o"
  "CMakeFiles/ape_net.dir/net/tcp.cpp.o.d"
  "CMakeFiles/ape_net.dir/net/topology.cpp.o"
  "CMakeFiles/ape_net.dir/net/topology.cpp.o.d"
  "libape_net.a"
  "libape_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ape_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/datagram.cpp" "src/CMakeFiles/ape_net.dir/net/datagram.cpp.o" "gcc" "src/CMakeFiles/ape_net.dir/net/datagram.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/CMakeFiles/ape_net.dir/net/network.cpp.o" "gcc" "src/CMakeFiles/ape_net.dir/net/network.cpp.o.d"
  "/root/repo/src/net/tcp.cpp" "src/CMakeFiles/ape_net.dir/net/tcp.cpp.o" "gcc" "src/CMakeFiles/ape_net.dir/net/tcp.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "src/CMakeFiles/ape_net.dir/net/topology.cpp.o" "gcc" "src/CMakeFiles/ape_net.dir/net/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ape_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ape_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

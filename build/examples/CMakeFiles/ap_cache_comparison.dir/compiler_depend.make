# Empty compiler generated dependencies file for ap_cache_comparison.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ap_cache_comparison.dir/ap_cache_comparison.cpp.o"
  "CMakeFiles/ap_cache_comparison.dir/ap_cache_comparison.cpp.o.d"
  "ap_cache_comparison"
  "ap_cache_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ap_cache_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

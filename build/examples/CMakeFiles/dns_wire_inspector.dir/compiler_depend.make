# Empty compiler generated dependencies file for dns_wire_inspector.
# This may be replaced when dependencies are built.

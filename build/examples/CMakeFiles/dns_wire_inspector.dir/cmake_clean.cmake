file(REMOVE_RECURSE
  "CMakeFiles/dns_wire_inspector.dir/dns_wire_inspector.cpp.o"
  "CMakeFiles/dns_wire_inspector.dir/dns_wire_inspector.cpp.o.d"
  "dns_wire_inspector"
  "dns_wire_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dns_wire_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

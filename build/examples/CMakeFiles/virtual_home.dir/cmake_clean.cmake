file(REMOVE_RECURSE
  "CMakeFiles/virtual_home.dir/virtual_home.cpp.o"
  "CMakeFiles/virtual_home.dir/virtual_home.cpp.o.d"
  "virtual_home"
  "virtual_home.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/virtual_home.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for virtual_home.
# This may be replaced when dependencies are built.

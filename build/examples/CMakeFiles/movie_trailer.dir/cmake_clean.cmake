file(REMOVE_RECURSE
  "CMakeFiles/movie_trailer.dir/movie_trailer.cpp.o"
  "CMakeFiles/movie_trailer.dir/movie_trailer.cpp.o.d"
  "movie_trailer"
  "movie_trailer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/movie_trailer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for movie_trailer.
# This may be replaced when dependencies are built.

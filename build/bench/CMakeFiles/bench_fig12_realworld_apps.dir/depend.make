# Empty dependencies file for bench_fig12_realworld_apps.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_hitratio_objsize.dir/bench_table4_hitratio_objsize.cpp.o"
  "CMakeFiles/bench_table4_hitratio_objsize.dir/bench_table4_hitratio_objsize.cpp.o.d"
  "bench_table4_hitratio_objsize"
  "bench_table4_hitratio_objsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_hitratio_objsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

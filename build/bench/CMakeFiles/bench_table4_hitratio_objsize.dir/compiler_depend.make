# Empty compiler generated dependencies file for bench_table4_hitratio_objsize.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_fig2_router_load.
# This may be replaced when dependencies are built.

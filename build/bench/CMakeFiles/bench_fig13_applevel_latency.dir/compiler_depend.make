# Empty compiler generated dependencies file for bench_fig13_applevel_latency.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_micro_dns_codec.
# This may be replaced when dependencies are built.

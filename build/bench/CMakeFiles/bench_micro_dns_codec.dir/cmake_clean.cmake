file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_dns_codec.dir/bench_micro_dns_codec.cpp.o"
  "CMakeFiles/bench_micro_dns_codec.dir/bench_micro_dns_codec.cpp.o.d"
  "bench_micro_dns_codec"
  "bench_micro_dns_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_dns_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

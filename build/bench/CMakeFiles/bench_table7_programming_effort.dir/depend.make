# Empty dependencies file for bench_table7_programming_effort.
# This may be replaced when dependencies are built.

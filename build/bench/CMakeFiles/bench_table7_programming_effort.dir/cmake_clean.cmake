file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_programming_effort.dir/bench_table7_programming_effort.cpp.o"
  "CMakeFiles/bench_table7_programming_effort.dir/bench_table7_programming_effort.cpp.o.d"
  "bench_table7_programming_effort"
  "bench_table7_programming_effort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_programming_effort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_hitratio_appcount.dir/bench_table6_hitratio_appcount.cpp.o"
  "CMakeFiles/bench_table6_hitratio_appcount.dir/bench_table6_hitratio_appcount.cpp.o.d"
  "bench_table6_hitratio_appcount"
  "bench_table6_hitratio_appcount.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_hitratio_appcount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

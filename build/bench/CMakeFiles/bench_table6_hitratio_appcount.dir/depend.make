# Empty dependencies file for bench_table6_hitratio_appcount.
# This may be replaced when dependencies are built.

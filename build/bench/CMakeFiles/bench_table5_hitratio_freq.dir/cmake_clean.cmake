file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_hitratio_freq.dir/bench_table5_hitratio_freq.cpp.o"
  "CMakeFiles/bench_table5_hitratio_freq.dir/bench_table5_hitratio_freq.cpp.o.d"
  "bench_table5_hitratio_freq"
  "bench_table5_hitratio_freq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_hitratio_freq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_table5_hitratio_freq.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig14_ap_overhead.cpp" "bench/CMakeFiles/bench_fig14_ap_overhead.dir/bench_fig14_ap_overhead.cpp.o" "gcc" "bench/CMakeFiles/bench_fig14_ap_overhead.dir/bench_fig14_ap_overhead.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ape_testbed.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ape_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ape_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ape_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ape_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ape_http.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ape_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ape_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ape_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ape_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

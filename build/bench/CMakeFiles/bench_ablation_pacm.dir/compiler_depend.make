# Empty compiler generated dependencies file for bench_ablation_pacm.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pacm.dir/bench_ablation_pacm.cpp.o"
  "CMakeFiles/bench_ablation_pacm.dir/bench_ablation_pacm.cpp.o.d"
  "bench_ablation_pacm"
  "bench_ablation_pacm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pacm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_pacm.dir/bench_micro_pacm.cpp.o"
  "CMakeFiles/bench_micro_pacm.dir/bench_micro_pacm.cpp.o.d"
  "bench_micro_pacm"
  "bench_micro_pacm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_pacm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

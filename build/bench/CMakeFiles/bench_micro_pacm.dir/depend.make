# Empty dependencies file for bench_micro_pacm.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_akamai.dir/bench_table1_akamai.cpp.o"
  "CMakeFiles/bench_table1_akamai.dir/bench_table1_akamai.cpp.o.d"
  "bench_table1_akamai"
  "bench_table1_akamai.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_akamai.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

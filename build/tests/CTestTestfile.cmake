# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_dns_codec[1]_include.cmake")
include("/root/repo/build/tests/test_dns_servers[1]_include.cmake")
include("/root/repo/build/tests/test_http[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_core_protocol[1]_include.cmake")
include("/root/repo/build/tests/test_pacm[1]_include.cmake")
include("/root/repo/build/tests/test_ap_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_client_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_zone[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_testbed[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")

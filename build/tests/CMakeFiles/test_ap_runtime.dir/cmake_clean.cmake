file(REMOVE_RECURSE
  "CMakeFiles/test_ap_runtime.dir/test_ap_runtime.cpp.o"
  "CMakeFiles/test_ap_runtime.dir/test_ap_runtime.cpp.o.d"
  "test_ap_runtime"
  "test_ap_runtime.pdb"
  "test_ap_runtime[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ap_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_ap_runtime.
# This may be replaced when dependencies are built.

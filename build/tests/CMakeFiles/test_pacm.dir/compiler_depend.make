# Empty compiler generated dependencies file for test_pacm.
# This may be replaced when dependencies are built.

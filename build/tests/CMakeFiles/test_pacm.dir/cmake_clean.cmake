file(REMOVE_RECURSE
  "CMakeFiles/test_pacm.dir/test_pacm.cpp.o"
  "CMakeFiles/test_pacm.dir/test_pacm.cpp.o.d"
  "test_pacm"
  "test_pacm.pdb"
  "test_pacm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pacm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

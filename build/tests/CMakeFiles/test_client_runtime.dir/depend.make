# Empty dependencies file for test_client_runtime.
# This may be replaced when dependencies are built.

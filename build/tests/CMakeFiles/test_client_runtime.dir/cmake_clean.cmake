file(REMOVE_RECURSE
  "CMakeFiles/test_client_runtime.dir/test_client_runtime.cpp.o"
  "CMakeFiles/test_client_runtime.dir/test_client_runtime.cpp.o.d"
  "test_client_runtime"
  "test_client_runtime.pdb"
  "test_client_runtime[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_client_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_dns_servers.dir/test_dns_servers.cpp.o"
  "CMakeFiles/test_dns_servers.dir/test_dns_servers.cpp.o.d"
  "test_dns_servers"
  "test_dns_servers.pdb"
  "test_dns_servers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dns_servers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

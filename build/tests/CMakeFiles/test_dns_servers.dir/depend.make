# Empty dependencies file for test_dns_servers.
# This may be replaced when dependencies are built.

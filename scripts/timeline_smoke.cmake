# ctest driver for the timeline-smoke lane: runs the smoke bench with the
# windowed telemetry subsystem on, then re-validates the snapshot *offline*
# with tools/timeline_report.py --validate — an independent
# re-implementation of the window monotonicity / delta-sum / alert
# state-machine invariants, so a bug in the C++ Timeline::reconcile can't
# vouch for itself.  The committed expectations file additionally pins the
# run's shape (window count, counter totals, alert outcomes).  Invoked as:
#
#   cmake -DSMOKE_BIN=... -DPYTHON=... -DTIMELINE_REPORT=... -DEXPECT=... \
#         -DOUT=... -P scripts/timeline_smoke.cmake
#
# Fails (FATAL_ERROR) when the bench's in-process reconciliation, the
# snapshot write, or the offline validation fails.

foreach(var SMOKE_BIN PYTHON TIMELINE_REPORT EXPECT OUT)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "timeline_smoke.cmake: missing -D${var}=...")
  endif()
endforeach()

execute_process(
  COMMAND ${SMOKE_BIN} --timeline-out ${OUT}
  RESULT_VARIABLE bench_rc)
if(NOT bench_rc EQUAL 0)
  message(FATAL_ERROR "bench_smoke --timeline-out failed (rc=${bench_rc}): "
                      "window deltas no longer reconcile with snapshot totals")
endif()

execute_process(
  COMMAND ${PYTHON} ${TIMELINE_REPORT} --validate --expect ${EXPECT} ${OUT}
  RESULT_VARIABLE validate_rc)
if(NOT validate_rc EQUAL 0)
  message(FATAL_ERROR "timeline_report.py --validate rejected ${OUT} (rc=${validate_rc})")
endif()

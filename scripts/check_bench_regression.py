#!/usr/bin/env python3
"""Compare a bench --json snapshot against a committed baseline.

Both files are "ape.obs.v1" snapshots (see src/obs/export.hpp).  The
checker walks the stable sections (counters, gauges, histograms) and
flags any watched metric that drifted more than the tolerance from the
baseline.  The `volatile` section (wall-clock timings) is ignored unless
--include-volatile is given.

Watched metrics default to the regression-relevant families — hit
ratios, latency percentiles, and simulator event counts — so incidental
counters (bytes, per-app detail) don't turn every workload tweak into a
CI failure.  Use --all to compare every metric instead.

Usage:
  build/bench/bench_smoke --json /tmp/smoke.json
  scripts/check_bench_regression.py bench/baselines/smoke.json /tmp/smoke.json

Exit codes: 0 ok, 1 regression(s) or unreadable/invalid snapshot,
2 usage error.
"""

from __future__ import annotations

import argparse
import json
import re
import sys

SCHEMA = "ape.obs.v1"

# Metric families that gate CI (matched against the flattened name).
DEFAULT_WATCH = (r"(hit_ratio|recovery_ratio|p50|p99|events_fired|alerts_fired|telemetry"
                 r"|events_per_sec|order_digest)")

# Histogram fields worth comparing (count is exact; the rest are values).
HISTOGRAM_FIELDS = ("count", "mean", "p50", "p90", "p95", "p99", "min", "max")


def flatten(snapshot: dict, include_volatile: bool) -> dict[str, float]:
    """Flattens a snapshot into {metric_name: value}."""
    flat: dict[str, float] = {}
    for name, value in snapshot.get("counters", {}).items():
        flat[name] = float(value)
    for name, gauge in snapshot.get("gauges", {}).items():
        flat[name] = float(gauge["value"])
    for name, hist in snapshot.get("histograms", {}).items():
        for field in HISTOGRAM_FIELDS:
            if field in hist:
                flat[f"{name}.{field}"] = float(hist[field])
    if include_volatile:
        vol = snapshot.get("volatile", {})
        for name, gauge in vol.get("gauges", {}).items():
            flat[name] = float(gauge["value"])
        for name, hist in vol.get("histograms", {}).items():
            for field in HISTOGRAM_FIELDS:
                if field in hist:
                    flat[f"{name}.{field}"] = float(hist[field])
    return flat


def load(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as f:
            snapshot = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"error: cannot read {path}: {err}")
    if snapshot.get("schema") != SCHEMA:
        sys.exit(f"error: {path}: expected schema {SCHEMA!r}, "
                 f"got {snapshot.get('schema')!r}")
    return snapshot


def relative_drift(baseline: float, current: float) -> float:
    if baseline == current:
        return 0.0
    if baseline == 0.0:
        return float("inf")
    return abs(current - baseline) / abs(baseline)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed baseline snapshot")
    parser.add_argument("current", nargs="?",
                        help="freshly produced snapshot "
                             "(optional with --list-watched)")
    parser.add_argument("--list-watched", action="store_true",
                        help="print the resolved watch set (baseline metrics "
                             "the gate would compare) and exit 0")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed relative drift (default 0.10 = ±10%%)")
    parser.add_argument("--watch", default=DEFAULT_WATCH,
                        help="regex selecting metrics to gate on "
                             f"(default {DEFAULT_WATCH!r})")
    parser.add_argument("--all", action="store_true",
                        help="gate on every metric, not just --watch matches")
    parser.add_argument("--include-volatile", action="store_true",
                        help="also compare the volatile (wall-clock) section")
    parser.add_argument("--floor-only", action="store_true",
                        help="one-sided gate: fail only when current falls "
                             "below baseline by more than the tolerance — for "
                             "throughput metrics (events_per_sec) where being "
                             "faster is never a regression")
    parser.add_argument("--verbose", action="store_true",
                        help="print every compared metric, not just failures")
    args = parser.parse_args()

    # --list-watched always surfaces the volatile section too: the watch
    # set is documentation of what the gate *could* compare, and the
    # engine-perf lane's headline metric (events_per_sec) lives there.
    base = flatten(load(args.baseline), args.include_volatile or args.list_watched)
    watch = re.compile(args.watch)

    watched = sorted(n for n in base if args.all or watch.search(n))
    if args.list_watched:
        pattern = "<all>" if args.all else args.watch
        print(f"watch pattern: {pattern}")
        for name in watched:
            print(f"  {name}")
        print(f"{len(watched)} watched metric(s) in {args.baseline}")
        return 0
    if args.current is None:
        parser.error("current snapshot required unless --list-watched")
    if not watched:
        sys.exit(f"error: no metrics in {args.baseline} match {args.watch!r}")
    cur = flatten(load(args.current), args.include_volatile)

    failures = []
    for name in watched:
        if name not in cur:
            failures.append((name, base[name], None, float("inf")))
            continue
        if args.floor_only:
            # Only a shortfall counts; matching or beating baseline is 0 drift.
            if base[name] == 0.0:
                drift = 0.0
            else:
                drift = max(0.0, (base[name] - cur[name]) / abs(base[name]))
        else:
            drift = relative_drift(base[name], cur[name])
        status = "FAIL" if drift > args.tolerance else "ok"
        if args.verbose or status == "FAIL":
            drift_pct = "missing" if cur.get(name) is None else f"{drift * 100:.1f}%"
            print(f"{status:4s} {name}: baseline={base[name]:g} "
                  f"current={cur.get(name, 'missing')} drift={drift_pct}")
        if status == "FAIL":
            failures.append((name, base[name], cur.get(name), drift))

    new_metrics = sorted(n for n in cur if n not in base
                         and (args.all or watch.search(n)))
    for name in new_metrics:
        print(f"note: new metric (not in baseline): {name}={cur[name]:g}")

    print(f"compared {len(watched)} metric(s), "
          f"{len(failures)} regression(s), tolerance ±{args.tolerance * 100:.0f}%")
    if failures:
        print("regressions detected — if intentional, refresh the baseline with:")
        print(f"  build/bench/bench_smoke --json {args.baseline}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

# ctest driver for the trace-smoke lane: runs the smoke bench with causal
# tracing on, then re-validates the Perfetto dump *offline* with
# tools/trace_report.py --validate — an independent re-implementation of
# the span invariants, so a bug in the C++ attribution can't vouch for
# itself.  Invoked as:
#
#   cmake -DSMOKE_BIN=... -DPYTHON=... -DTRACE_REPORT=... -DOUT=... \
#         -P scripts/trace_smoke.cmake
#
# Fails (FATAL_ERROR) when the bench's own in-process validation, the dump
# write, or the offline validation fails.

foreach(var SMOKE_BIN PYTHON TRACE_REPORT OUT)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "trace_smoke.cmake: missing -D${var}=...")
  endif()
endforeach()

execute_process(
  COMMAND ${SMOKE_BIN} --trace-out ${OUT}
  RESULT_VARIABLE bench_rc)
if(NOT bench_rc EQUAL 0)
  message(FATAL_ERROR "bench_smoke --trace-out failed (rc=${bench_rc}): "
                      "span invariants or attribution reconciliation broken")
endif()

execute_process(
  COMMAND ${PYTHON} ${TRACE_REPORT} --validate ${OUT}
  RESULT_VARIABLE validate_rc)
if(NOT validate_rc EQUAL 0)
  message(FATAL_ERROR "trace_report.py --validate rejected ${OUT} (rc=${validate_rc})")
endif()

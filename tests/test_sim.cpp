#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/resource_meter.hpp"
#include "sim/rng.hpp"
#include "sim/service_queue.hpp"
#include "sim/simulator.hpp"

namespace ape::sim {
namespace {

// ------------------------------------------------------------ Simulator

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now().since_epoch.count(), 0);
}

TEST(Simulator, FiresInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_in(milliseconds(30), [&] { order.push_back(3); });
  sim.schedule_in(milliseconds(10), [&] { order.push_back(1); });
  sim.schedule_in(milliseconds(20), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, SameTimeFiresInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_in(milliseconds(5), [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, ClockAdvancesToEventTime) {
  Simulator sim;
  Time seen{};
  sim.schedule_in(milliseconds(12.5), [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen.since_epoch, milliseconds(12.5));
}

TEST(Simulator, PastTimesClampToNow) {
  Simulator sim;
  sim.schedule_in(milliseconds(10), [&] {
    // Scheduling "in the past" fires at now, not before.
    sim.schedule_at(Time{milliseconds(1)}, [&] { EXPECT_EQ(sim.now().millis(), 10.0); });
  });
  sim.run();
}

TEST(Simulator, CancelPreventsFiring) {
  Simulator sim;
  bool fired = false;
  const auto id = sim.schedule_in(milliseconds(5), [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelTwiceFails) {
  Simulator sim;
  const auto id = sim.schedule_in(milliseconds(5), [] {});
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, CancelAfterFireFails) {
  Simulator sim;
  const auto id = sim.schedule_in(milliseconds(5), [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule_in(milliseconds(10), [&] { ++fired; });
  sim.schedule_in(milliseconds(30), [&] { ++fired; });
  sim.run_until(Time{milliseconds(20)});
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now().since_epoch, milliseconds(20));
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunUntilIncludesEventsExactlyAtDeadline) {
  Simulator sim;
  bool fired = false;
  sim.schedule_in(milliseconds(20), [&] { fired = true; });
  sim.run_until(Time{milliseconds(20)});
  EXPECT_TRUE(fired);
}

TEST(Simulator, CallbacksCanScheduleMore) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) sim.schedule_in(milliseconds(1), recurse);
  };
  sim.schedule_in(milliseconds(1), recurse);
  sim.run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(sim.now().since_epoch, milliseconds(10));
}

TEST(Simulator, StepFiresBoundedCount) {
  Simulator sim;
  int fired = 0;
  for (int i = 0; i < 5; ++i) sim.schedule_in(milliseconds(i + 1), [&] { ++fired; });
  EXPECT_EQ(sim.step(2), 2u);
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, PendingCountsLiveEvents) {
  Simulator sim;
  const auto a = sim.schedule_in(milliseconds(1), [] {});
  sim.schedule_in(milliseconds(2), [] {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Simulator, RunUntilSkipsTombstonesBeyondDeadline) {
  Simulator sim;
  const auto id = sim.schedule_in(milliseconds(5), [] { FAIL(); });
  sim.cancel(id);
  bool fired = false;
  sim.schedule_in(milliseconds(15), [&] { fired = true; });
  sim.run_until(Time{milliseconds(20)});
  EXPECT_TRUE(fired);
}

TEST(Simulator, TombstoneAccountingTracksCancellations) {
  Simulator sim;
  const auto a = sim.schedule_in(milliseconds(1), [] {});
  const auto b = sim.schedule_in(milliseconds(2), [] {});
  sim.schedule_in(milliseconds(3), [] {});
  EXPECT_EQ(sim.tombstones(), 0u);

  sim.cancel(a);
  sim.cancel(b);
  EXPECT_EQ(sim.pending(), 1u);       // live events only
  EXPECT_EQ(sim.queue_size(), 3u);    // heap still holds the dead slots
  EXPECT_EQ(sim.tombstones(), 2u);
  EXPECT_EQ(sim.events_cancelled(), 2u);
  EXPECT_NEAR(sim.tombstone_ratio(), 2.0 / 3.0, 1e-12);

  // Draining pops the tombstones without firing them.
  EXPECT_EQ(sim.run(), 1u);
  EXPECT_EQ(sim.tombstones(), 0u);
  EXPECT_EQ(sim.queue_size(), 0u);
  EXPECT_DOUBLE_EQ(sim.tombstone_ratio(), 0.0);
}

TEST(Simulator, ScheduleCancelLoopRunsInBoundedMemory) {
  // The timeout pattern: every event is scheduled and then cancelled.
  // Without compaction the heap would grow to `rounds` slots; with it the
  // raw queue stays within a small multiple of the live count.
  Simulator sim;
  const std::size_t rounds = 100'000;
  for (std::size_t i = 0; i < rounds; ++i) {
    const auto id = sim.schedule_in(milliseconds(1.0), [] { FAIL(); });
    ASSERT_TRUE(sim.cancel(id));
  }
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_EQ(sim.events_cancelled(), rounds);
  EXPECT_GT(sim.compactions(), 0u);
  EXPECT_LT(sim.queue_size(), 1000u);  // not O(rounds)
  EXPECT_EQ(sim.run(), 0u);            // nothing live ever fires
}

TEST(Simulator, CompactionPreservesFiringOrder) {
  Simulator sim;
  std::vector<int> order;
  std::vector<Simulator::EventId> doomed;
  // Interleave keepers and cancels so compaction rebuilds a heap that
  // still fires keepers in time order.  Doomed events outnumber keepers
  // 3:1, so cancelling them pushes tombstones past the >1/2 threshold.
  for (int i = 0; i < 100; ++i) {
    sim.schedule_in(milliseconds(100 - i), [&order, i] { order.push_back(100 - i); });
    for (int j = 0; j < 3; ++j) {
      doomed.push_back(sim.schedule_in(milliseconds(500 + i + j), [] { FAIL(); }));
    }
  }
  for (const auto id : doomed) sim.cancel(id);
  EXPECT_GT(sim.compactions(), 0u);

  sim.run();
  ASSERT_EQ(order.size(), 100u);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

TEST(Simulator, CompactionFiresAtExactlyHalfDead) {
  // Regression: the threshold was `tombstones * 2 > queue_size`, which let
  // a queue sit at *exactly* 50% dead without compacting.  If the live
  // half then fires, the queue is 100% tombstones with no cancel() call
  // left to re-trigger the check — the dead entries linger until drained
  // one by one.  The fixed `>=` compacts at the boundary.
  Simulator sim;
  std::vector<Simulator::EventId> doomed;
  for (int i = 0; i < 64; ++i) {
    sim.schedule_in(milliseconds(1 + i), [] {});                      // live half
    doomed.push_back(sim.schedule_in(milliseconds(500 + i), [] { FAIL(); }));
  }
  // Cancel exactly 64 of 128: tombstones * 2 == queue_size, and the count
  // meets the compaction floor.
  for (const auto id : doomed) ASSERT_TRUE(sim.cancel(id));
  EXPECT_EQ(sim.compactions(), 1u);
  EXPECT_EQ(sim.tombstones(), 0u);
  EXPECT_EQ(sim.queue_size(), 64u);  // only the live events remain queued
  EXPECT_EQ(sim.run(), 64u);
  EXPECT_EQ(sim.queue_size(), 0u);
}

TEST(Simulator, QueueHighWaterTracksPeakPending) {
  Simulator sim;
  std::vector<Simulator::EventId> ids;
  for (int i = 0; i < 10; ++i) ids.push_back(sim.schedule_in(milliseconds(1), [] {}));
  for (const auto id : ids) sim.cancel(id);
  sim.schedule_in(milliseconds(1), [] {});
  // Peak was 10 concurrent live events even though only 1 remains.
  EXPECT_EQ(sim.pending(), 1u);
  EXPECT_EQ(sim.queue_high_water(), 10u);
}

TEST(Simulator, EventsFiredExcludesCancelled) {
  Simulator sim;
  const auto id = sim.schedule_in(milliseconds(1), [] { FAIL(); });
  sim.schedule_in(milliseconds(2), [] {});
  sim.cancel(id);
  sim.run();
  EXPECT_EQ(sim.events_fired(), 1u);
  EXPECT_EQ(sim.events_cancelled(), 1u);
}

// ------------------------------------------------------------ TimeTypes

TEST(TimeTypes, Conversions) {
  EXPECT_EQ(milliseconds(1.5).count(), 1500);
  EXPECT_EQ(seconds(2.0).count(), 2'000'000);
  EXPECT_EQ(minutes(1.0).count(), 60'000'000);
  EXPECT_DOUBLE_EQ(to_millis(microseconds(2500)), 2.5);
  EXPECT_DOUBLE_EQ(to_seconds(milliseconds(1500.0)), 1.5);
}

TEST(TimeTypes, Arithmetic) {
  const Time t{seconds(1.0)};
  EXPECT_EQ((t + seconds(2.0)).since_epoch, seconds(3.0));
  EXPECT_EQ((t - milliseconds(500.0)).since_epoch, milliseconds(500.0));
  EXPECT_EQ(Time{seconds(3.0)} - t, seconds(2.0));
  EXPECT_LT(t, Time{seconds(2.0)});
}

// ---------------------------------------------------------- ServiceQueue

TEST(ServiceQueue, IdleJobCompletesAfterServiceTime) {
  Simulator sim;
  ServiceQueue q(sim, 1);
  Time done{};
  q.submit(milliseconds(5), [&] { done = sim.now(); });
  sim.run();
  EXPECT_EQ(done.since_epoch, milliseconds(5));
}

TEST(ServiceQueue, JobsQueueWhenBusy) {
  Simulator sim;
  ServiceQueue q(sim, 1);
  Time first{}, second{};
  q.submit(milliseconds(10), [&] { first = sim.now(); });
  q.submit(milliseconds(10), [&] { second = sim.now(); });
  EXPECT_EQ(q.queued(), 1u);
  sim.run();
  EXPECT_EQ(first.since_epoch, milliseconds(10));
  EXPECT_EQ(second.since_epoch, milliseconds(20));  // waited behind the first
}

TEST(ServiceQueue, MultipleServersRunInParallel) {
  Simulator sim;
  ServiceQueue q(sim, 2);
  Time first{}, second{};
  q.submit(milliseconds(10), [&] { first = sim.now(); });
  q.submit(milliseconds(10), [&] { second = sim.now(); });
  sim.run();
  EXPECT_EQ(first.since_epoch, milliseconds(10));
  EXPECT_EQ(second.since_epoch, milliseconds(10));
}

TEST(ServiceQueue, BusyTimeAccumulates) {
  Simulator sim;
  ServiceQueue q(sim, 1);
  q.submit(milliseconds(3));
  q.submit(milliseconds(4));
  sim.run();
  EXPECT_EQ(q.busy_time(), milliseconds(7));
  EXPECT_EQ(q.jobs_completed(), 2u);
}

TEST(ServiceQueue, FifoOrder) {
  Simulator sim;
  ServiceQueue q(sim, 1);
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    q.submit(milliseconds(1), [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(ServiceQueue, ZeroServiceTimeCompletesImmediately) {
  Simulator sim;
  ServiceQueue q(sim, 1);
  bool done = false;
  q.submit(Duration{0}, [&] { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(sim.now().since_epoch.count(), 0);
}

// --------------------------------------------------------- ResourceMeter

TEST(ResourceMeter, MeasuresUtilization) {
  Simulator sim;
  ServiceQueue q(sim, 1);
  ResourceMeter meter(sim, 1);
  meter.add_cpu_source([&q] { return q.busy_time(); });
  meter.start(seconds(1.0), Time{seconds(10.0)});
  // Busy 500 ms of each 1 s window.
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(Time{seconds(static_cast<double>(i))},
                    [&q] { q.submit(milliseconds(500.0)); });
  }
  sim.run();
  ASSERT_FALSE(meter.samples().empty());
  EXPECT_NEAR(meter.mean_cpu(), 0.5, 0.05);
}

TEST(ResourceMeter, UtilizationScalesWithCapacity) {
  Simulator sim;
  ServiceQueue q(sim, 2);
  ResourceMeter meter(sim, 2);  // two cores
  meter.add_cpu_source([&q] { return q.busy_time(); });
  meter.start(seconds(1.0), Time{seconds(4.0)});
  for (int i = 0; i < 4; ++i) {
    sim.schedule_at(Time{seconds(static_cast<double>(i))},
                    [&q] { q.submit(milliseconds(1000.0)); });
  }
  sim.run();
  EXPECT_NEAR(meter.mean_cpu(), 0.5, 0.05);  // one of two cores busy
}

TEST(ResourceMeter, MemorySources) {
  Simulator sim;
  ResourceMeter meter(sim, 1);
  std::size_t mem = 10 * 1024 * 1024;
  meter.add_memory_source([&mem] { return mem; });
  meter.start(seconds(1.0), Time{seconds(3.0)});
  sim.schedule_at(Time{seconds(1.5)}, [&mem] { mem = 20 * 1024 * 1024; });
  sim.run();
  EXPECT_NEAR(meter.peak_memory_mb(), 20.0, 0.01);
  EXPECT_GT(meter.peak_memory_mb(), meter.mean_memory_mb());
}

// ------------------------------------------------------------------ Rng

TEST(Rng, DeterministicBySeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= (a.next_u64() != b.next_u64());
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(5, 9);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, UniformRealInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform_real(1.5, 2.5);
    EXPECT_GE(v, 1.5);
    EXPECT_LT(v, 2.5);
  }
}

TEST(Rng, ExponentialMean) {
  Rng rng(11);
  double acc = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) acc += rng.exponential(4.0);
  EXPECT_NEAR(acc / n, 4.0, 0.15);
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(3);
  const auto p = rng.permutation(20);
  std::vector<bool> seen(20, false);
  for (std::size_t idx : p) {
    ASSERT_LT(idx, 20u);
    EXPECT_FALSE(seen[idx]);
    seen[idx] = true;
  }
}

// ------------------------------------------------------------------ Zipf

TEST(Zipf, ProbabilitiesSumToOne) {
  ZipfDistribution zipf(50, 0.8);
  double total = 0.0;
  for (std::size_t k = 0; k < 50; ++k) total += zipf.probability(k);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Zipf, RankZeroMostLikely) {
  ZipfDistribution zipf(10, 1.0);
  for (std::size_t k = 1; k < 10; ++k) {
    EXPECT_GT(zipf.probability(0), zipf.probability(k));
  }
}

TEST(Zipf, SamplesInRange) {
  ZipfDistribution zipf(10, 0.8);
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.sample(rng), 10u);
}

TEST(Zipf, EmpiricalMatchesTheory) {
  ZipfDistribution zipf(5, 1.0);
  Rng rng(9);
  std::vector<int> counts(5, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[zipf.sample(rng)];
  for (std::size_t k = 0; k < 5; ++k) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / n, zipf.probability(k), 0.01);
  }
}

class ZipfExponentTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfExponentTest, HigherRanksNeverMoreLikely) {
  ZipfDistribution zipf(32, GetParam());
  for (std::size_t k = 1; k < 32; ++k) {
    EXPECT_GE(zipf.probability(k - 1), zipf.probability(k) - 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfExponentTest,
                         ::testing::Values(0.2, 0.5, 0.8, 1.0, 1.5, 2.0));

}  // namespace
}  // namespace ape::sim

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "stats/csv.hpp"
#include "stats/ewma.hpp"
#include "stats/gini.hpp"
#include "stats/histogram.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"

namespace ape::stats {
namespace {

// ----------------------------------------------------------- Histogram

TEST(Histogram, EmptyIsSafe) {
  Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.95), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

TEST(Histogram, MeanAndSum) {
  Histogram h;
  h.record(1.0);
  h.record(2.0);
  h.record(3.0);
  EXPECT_DOUBLE_EQ(h.mean(), 2.0);
  EXPECT_DOUBLE_EQ(h.sum(), 6.0);
  EXPECT_EQ(h.count(), 3u);
}

TEST(Histogram, MinMax) {
  Histogram h;
  for (double v : {5.0, -2.0, 7.5, 0.0}) h.record(v);
  EXPECT_DOUBLE_EQ(h.min(), -2.0);
  EXPECT_DOUBLE_EQ(h.max(), 7.5);
}

TEST(Histogram, PercentileExactOrderStatistics) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.record(static_cast<double>(i));
  EXPECT_NEAR(h.percentile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(h.percentile(1.0), 100.0, 1e-9);
  EXPECT_NEAR(h.percentile(0.5), 50.5, 1e-9);
  // p95 via linear interpolation on 100 points: index 94.05 -> 95.05.
  EXPECT_NEAR(h.percentile(0.95), 95.05, 1e-9);
}

TEST(Histogram, PercentileClampsOutOfRangeQuantile) {
  Histogram h;
  h.record(3.0);
  h.record(9.0);
  EXPECT_DOUBLE_EQ(h.percentile(-0.5), 3.0);
  EXPECT_DOUBLE_EQ(h.percentile(2.0), 9.0);
}

TEST(Histogram, PercentileAfterLaterRecordsStaysCorrect) {
  Histogram h;
  h.record(10.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 10.0);
  h.record(20.0);  // invalidates the sorted cache
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 20.0);
}

TEST(Histogram, MergeCombinesSamples) {
  Histogram a, b;
  a.record(1.0);
  b.record(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(Histogram, MergeAdoptsUnitWhenUnlabeled) {
  Histogram a;  // default-constructed: no unit yet
  Histogram b("ms");
  b.record(3.0);
  a.merge(b);
  EXPECT_EQ(a.unit(), "ms");
}

TEST(Histogram, MergeKeepsReceiverUnitOnMismatch) {
  Histogram a("ms");
  Histogram b("bytes");
  a.record(1.0);
  b.record(3.0);
  a.merge(b);
  // Never a silent relabel of existing samples: the receiver's unit wins.
  EXPECT_EQ(a.unit(), "ms");
  EXPECT_EQ(a.count(), 2u);
}

TEST(Histogram, MergeEmptyIntoEmptyKeepsStateSane) {
  Histogram a, b;
  a.merge(b);
  EXPECT_TRUE(a.empty());
  EXPECT_DOUBLE_EQ(a.percentile(0.99), 0.0);
}

TEST(Histogram, ClearResets) {
  Histogram h;
  h.record(5.0);
  h.clear();
  EXPECT_TRUE(h.empty());
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

TEST(Histogram, StddevOfConstantIsZero) {
  Histogram h;
  for (int i = 0; i < 5; ++i) h.record(4.2);
  EXPECT_NEAR(h.stddev(), 0.0, 1e-12);
}

TEST(Histogram, StddevMatchesHandComputation) {
  Histogram h;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) h.record(v);
  // Sample stddev of this classic set is ~2.138.
  EXPECT_NEAR(h.stddev(), 2.138, 0.001);
}

TEST(Histogram, BucketsPartitionSamples) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.record(static_cast<double>(i));
  const auto buckets = h.buckets(10);
  std::size_t total = 0;
  for (std::size_t b : buckets) total += b;
  EXPECT_EQ(total, 100u);
  EXPECT_EQ(buckets.size(), 10u);
}

TEST(Histogram, BucketsDegenerateAllEqual) {
  Histogram h;
  for (int i = 0; i < 7; ++i) h.record(1.0);
  const auto buckets = h.buckets(4);
  EXPECT_EQ(buckets[0], 7u);
}

// ------------------------------------------------------------- Summary

TEST(Summary, OfHistogram) {
  Histogram h;
  for (int i = 1; i <= 10; ++i) h.record(static_cast<double>(i));
  const Summary s = Summary::of(h);
  EXPECT_EQ(s.count, 10u);
  EXPECT_DOUBLE_EQ(s.mean, 5.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 10.0);
  EXPECT_GT(s.p95, s.p50);
}

TEST(Summary, ToStringContainsFields) {
  Histogram h;
  h.record(2.0);
  const std::string text = Summary::of(h).to_string();
  EXPECT_NE(text.find("mean="), std::string::npos);
  EXPECT_NE(text.find("p95="), std::string::npos);
}

// ---------------------------------------------------------------- Ewma

TEST(Ewma, FirstObservationSeeds) {
  Ewma e(0.7);
  e.observe(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
  EXPECT_TRUE(e.seeded());
}

TEST(Ewma, PaperFormulaWeightsNewestByAlpha) {
  // R = (1 - alpha) * R' + alpha * r  with alpha = 0.7 (paper Sec. IV-C).
  Ewma e(0.7);
  e.observe(10.0);
  e.observe(20.0);
  EXPECT_DOUBLE_EQ(e.value(), 0.3 * 10.0 + 0.7 * 20.0);
}

TEST(Ewma, AlphaClamped) {
  Ewma e(3.0);
  EXPECT_DOUBLE_EQ(e.alpha(), 1.0);
  Ewma f(-1.0);
  EXPECT_DOUBLE_EQ(f.alpha(), 0.0);
}

TEST(Ewma, ResetClears) {
  Ewma e(0.5);
  e.observe(4.0);
  e.reset();
  EXPECT_FALSE(e.seeded());
  EXPECT_DOUBLE_EQ(e.value(), 0.0);
}

TEST(Ewma, ConvergesToConstantInput) {
  Ewma e(0.7);
  for (int i = 0; i < 50; ++i) e.observe(42.0);
  EXPECT_NEAR(e.value(), 42.0, 1e-9);
}

// ---------------------------------------------------------------- Gini

TEST(Gini, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(gini({}), 0.0);
}

TEST(Gini, AllEqualIsZero) {
  const std::vector<double> v{3.0, 3.0, 3.0, 3.0};
  EXPECT_NEAR(gini(v), 0.0, 1e-12);
}

TEST(Gini, AllZerosIsZero) {
  const std::vector<double> v{0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(gini(v), 0.0);
}

TEST(Gini, MaximallyUnequal) {
  // One member holds everything: G = (n-1)/n.
  const std::vector<double> v{0.0, 0.0, 0.0, 12.0};
  EXPECT_NEAR(gini(v), 0.75, 1e-9);
}

TEST(Gini, KnownValue) {
  // {1, 3}: mean |x_i - x_j| sum = 2*|1-3| = 4; denom = 2*2*4 = 16 -> 0.25.
  const std::vector<double> v{1.0, 3.0};
  EXPECT_NEAR(gini(v), 0.25, 1e-9);
}

TEST(Gini, ScaleInvariant) {
  const std::vector<double> a{1.0, 2.0, 5.0, 9.0};
  std::vector<double> b;
  for (double x : a) b.push_back(x * 1000.0);
  EXPECT_NEAR(gini(a), gini(b), 1e-12);
}

TEST(Gini, OrderInvariant) {
  const std::vector<double> a{5.0, 1.0, 9.0, 2.0};
  const std::vector<double> b{9.0, 5.0, 2.0, 1.0};
  EXPECT_NEAR(gini(a), gini(b), 1e-12);
}

// Property sweep: Gini stays within [0, 1) for arbitrary non-negative data.
class GiniRangeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GiniRangeTest, StaysInRange) {
  std::vector<double> v;
  std::uint64_t x = GetParam() * 2654435761u + 1;
  for (std::size_t i = 0; i < GetParam() + 1; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    v.push_back(static_cast<double>(x % 10000) / 10.0);
  }
  const double g = gini(v);
  EXPECT_GE(g, 0.0);
  EXPECT_LT(g, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, GiniRangeTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

// --------------------------------------------------------------- Table

TEST(Table, RendersHeaderAndRows) {
  Table t("Demo");
  t.header({"a", "bb"}).row({"1", "2"}).row({"333", "4"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("Demo"), std::string::npos);
  EXPECT_NE(out.find("| a "), std::string::npos);
  EXPECT_NE(out.find("333"), std::string::npos);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(Table, PctFormatsFraction) {
  EXPECT_EQ(Table::pct(0.7654, 1), "76.5%");
}

TEST(Table, HandlesRaggedRows) {
  Table t;
  t.header({"x", "y", "z"}).row({"only-one"});
  EXPECT_NE(t.to_string().find("only-one"), std::string::npos);
}

// ----------------------------------------------------------------- CSV

TEST(Csv, PlainCells) {
  std::ostringstream os;
  CsvWriter w(os);
  w.row({"a", "b", "c"});
  EXPECT_EQ(os.str(), "a,b,c\n");
}

TEST(Csv, EscapesCommasAndQuotes) {
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
}

TEST(Csv, EscapesNewlines) {
  EXPECT_EQ(CsvWriter::escape("a\nb"), "\"a\nb\"");
}

}  // namespace
}  // namespace ape::stats

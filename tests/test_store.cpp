// The tiered persistent store (src/store): device cost model, LSM flash
// tier (segments, compaction, deterministic eviction), journaled crash
// recovery, RAM<->flash demotion/promotion glue, and the testbed's
// warm/cold restart model.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cache/lru_policy.hpp"
#include "cache/object_store.hpp"
#include "core/url_hash.hpp"
#include "obs/export.hpp"
#include "sim/simulator.hpp"
#include "store/flash_device.hpp"
#include "store/flash_tier.hpp"
#include "store/journal.hpp"
#include "store/tiered_store.hpp"
#include "testbed/testbed.hpp"
#include "workload/real_apps.hpp"

namespace ape::store {
namespace {

cache::CacheEntry entry(const std::string& key, std::size_t size, sim::Time expires,
                        sim::Duration fetch_latency = sim::milliseconds(30)) {
  cache::CacheEntry e;
  e.key = key;
  e.size_bytes = size;
  e.app_id = 7;
  e.priority = 2;
  e.expires = expires;
  e.fetch_latency = fetch_latency;
  return e;
}

sim::Time at_sec(double s) { return sim::Time{} + sim::seconds(s); }

// ------------------------------------------------------------- device

TEST(FlashDevice, CostModelIsLatencyPlusBandwidth) {
  sim::Simulator sim;
  FlashDeviceParams params;
  params.read_latency = sim::microseconds(100);
  params.write_latency = sim::microseconds(500);
  params.read_bandwidth = 1e6;   // 1 byte / us
  params.write_bandwidth = 5e5;  // 2 us / byte
  FlashDevice device(sim, params);

  EXPECT_EQ(device.read_cost(1000), sim::microseconds(100 + 1000));
  EXPECT_EQ(device.write_cost(1000), sim::microseconds(500 + 2000));
  EXPECT_LT(device.read_cost(1000), device.write_cost(1000));
}

TEST(FlashDevice, ReadCompletesAfterQueueingPlusDeviceTime) {
  sim::Simulator sim;
  FlashDeviceParams params;
  params.read_latency = sim::microseconds(150);
  params.read_bandwidth = 1e6;
  FlashDevice device(sim, params);

  // Two back-to-back reads on one channel serialize.
  std::vector<sim::Time> done;
  device.read(1000, [&] { done.push_back(sim.now()); });
  device.read(1000, [&] { done.push_back(sim.now()); });
  sim.run();

  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0], sim::Time{} + sim::microseconds(1150));
  EXPECT_EQ(done[1], sim::Time{} + sim::microseconds(2300));
  EXPECT_EQ(device.reads(), 2u);
  EXPECT_EQ(device.bytes_read(), 2000u);
}

// --------------------------------------------------------------- tier

struct TierFixture : ::testing::Test {
  sim::Simulator sim;
  FlashMedia media;
  FlashTierParams params;
  std::unique_ptr<FlashDevice> device;
  std::unique_ptr<FlashTier> tier;

  void build(std::size_t capacity, std::size_t segment) {
    params.capacity_bytes = capacity;
    params.segment_bytes = segment;
    device = std::make_unique<FlashDevice>(sim, FlashDeviceParams{});
    tier = std::make_unique<FlashTier>(*device, media, params);
  }
};

TEST_F(TierFixture, PutPeekFetchRoundTrip) {
  build(100'000, 10'000);
  ASSERT_EQ(tier->put(entry("a", 4'000, at_sec(60)), at_sec(0)), FlashTier::PutOutcome::Stored);

  const auto* meta = tier->peek("a", at_sec(1));
  ASSERT_NE(meta, nullptr);
  EXPECT_EQ(meta->size_bytes, 4'000u);

  // A fetch pays real device time before handing back metadata.
  std::optional<ObjectMeta> got;
  sim::Time completed{};
  tier->fetch("a", at_sec(1), [&](std::optional<ObjectMeta> m) {
    got = std::move(m);
    completed = sim.now();
  });
  sim.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->key, "a");
  EXPECT_GE(completed, sim::Time{} + device->read_cost(4'000));

  // Expired copies are invisible and a fetch reports a miss synchronously.
  EXPECT_EQ(tier->peek("a", at_sec(120)), nullptr);
  bool missed = false;
  tier->fetch("a", at_sec(120), [&](std::optional<ObjectMeta> m) { missed = !m.has_value(); });
  EXPECT_TRUE(missed);
}

TEST_F(TierFixture, OversizedAndExpiredPutsAreRejected) {
  build(10'000, 5'000);
  EXPECT_EQ(tier->put(entry("big", 20'000, at_sec(60)), at_sec(0)),
            FlashTier::PutOutcome::Rejected);
  EXPECT_EQ(tier->put(entry("stale", 1'000, at_sec(1)), at_sec(5)),
            FlashTier::PutOutcome::Rejected);
  EXPECT_EQ(tier->rejections(), 2u);
  EXPECT_EQ(tier->entry_count(), 0u);
}

TEST_F(TierFixture, SegmentsSealAndAccountingStaysConsistent) {
  build(1'000'000, 10'000);
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(tier->put(entry("k" + std::to_string(i), 4'000, at_sec(600)), at_sec(0)),
              FlashTier::PutOutcome::Stored);
  }
  // 8 x 4k at 10k/segment: segments sealed along the way.
  EXPECT_GE(tier->segment_count(), 4u);
  EXPECT_EQ(tier->live_bytes(), 32'000u);

  std::size_t total = 0, dead = 0;
  for (const auto& [id, seg] : tier->segments()) {
    total += seg.total_bytes;
    dead += seg.dead_bytes;
  }
  EXPECT_EQ(total, tier->physical_bytes());
  EXPECT_EQ(total - dead, tier->live_bytes());
}

TEST_F(TierFixture, InvalidationMarksDeadAndCompactionReclaims) {
  build(1'000'000, 10'000);
  for (int i = 0; i < 6; ++i) {
    tier->put(entry("k" + std::to_string(i), 5'000, at_sec(600)), at_sec(0));
  }
  const auto physical_before = tier->physical_bytes();

  // Kill both objects of the first sealed segment: its dead ratio crosses
  // compact_dead_ratio (0.5), so the *next mutation* compacts it eagerly.
  EXPECT_TRUE(tier->invalidate("k0"));
  EXPECT_TRUE(tier->invalidate("k1"));
  EXPECT_EQ(tier->physical_bytes(), physical_before);  // dead bytes still occupy flash

  tier->put(entry("trigger", 1'000, at_sec(600)), at_sec(0));
  EXPECT_GE(tier->compactions(), 1u);
  EXPECT_LT(tier->physical_bytes(), physical_before);
  for (const auto& [id, seg] : tier->segments()) {
    EXPECT_LT(seg.dead_ratio(), 0.5) << "segment " << id << " should have been compacted";
  }
  // Survivors are intact.
  for (const char* key : {"k2", "k3", "k4", "k5", "trigger"}) {
    EXPECT_NE(tier->peek(key, at_sec(1)), nullptr) << key;
  }
}

TEST_F(TierFixture, EvictionIsSoonestToExpireWithSeqTieBreak) {
  build(20'000, 5'000);
  // Fill to capacity: d expires first, a/c tie (a appended earlier).
  tier->put(entry("a", 5'000, at_sec(300)), at_sec(0));
  tier->put(entry("b", 5'000, at_sec(400)), at_sec(0));
  tier->put(entry("c", 5'000, at_sec(300)), at_sec(0));
  tier->put(entry("d", 5'000, at_sec(100)), at_sec(0));
  ASSERT_EQ(tier->entry_count(), 4u);

  // Needs one slot: d (soonest expiry) must go first.
  ASSERT_EQ(tier->put(entry("e", 5'000, at_sec(500)), at_sec(0)), FlashTier::PutOutcome::Stored);
  EXPECT_EQ(tier->peek("d", at_sec(1)), nullptr);
  EXPECT_NE(tier->peek("a", at_sec(1)), nullptr);

  // Next slot: a vs c tie on expiry, lower append seq (a) loses.
  ASSERT_EQ(tier->put(entry("f", 5'000, at_sec(500)), at_sec(0)), FlashTier::PutOutcome::Stored);
  EXPECT_EQ(tier->peek("a", at_sec(1)), nullptr);
  EXPECT_NE(tier->peek("c", at_sec(1)), nullptr);
  EXPECT_EQ(tier->evictions(), 2u);
}

TEST_F(TierFixture, SweepExpiredReclaimsLiveBytes) {
  build(100'000, 10'000);
  tier->put(entry("short", 4'000, at_sec(10)), at_sec(0));
  tier->put(entry("long", 6'000, at_sec(600)), at_sec(0));

  EXPECT_EQ(tier->sweep_expired(at_sec(5)), 0u);
  EXPECT_EQ(tier->sweep_expired(at_sec(60)), 4'000u);
  EXPECT_EQ(tier->entry_count(), 1u);
  EXPECT_EQ(tier->expired_reclaimed_bytes(), 4'000u);
  EXPECT_NE(tier->peek("long", at_sec(60)), nullptr);
}

// ----------------------------------------------------------- recovery

struct RecoveryFixture : TierFixture {
  // A workout that exercises every record kind: appends across several
  // segments, overwrites, invalidations, eviction, compaction.
  void workout() {
    for (int i = 0; i < 10; ++i) {
      tier->put(entry("obj" + std::to_string(i), 4'000, at_sec(300 + i)), at_sec(0));
    }
    tier->invalidate("obj2");
    tier->invalidate("obj3");
    tier->put(entry("obj4", 4'500, at_sec(700)), at_sec(1));     // overwrite
    tier->put(entry("fresh", 9'000, at_sec(800)), at_sec(1));    // forces room-making
  }
};

TEST_F(RecoveryFixture, ReplayReproducesExactPreCrashState) {
  build(50'000, 10'000);
  workout();

  const auto index_before = tier->index();
  const auto segments_before = tier->segments();
  const auto live_before = tier->live_bytes();
  const auto physical_before = tier->physical_bytes();
  ASSERT_FALSE(index_before.empty());

  // "Crash": the tier object (RAM state) dies; media survives.  A fresh
  // tier over the same media replays the journal at mount.
  FlashDevice device2(sim, FlashDeviceParams{});
  FlashTier recovered(device2, media, params);
  ASSERT_TRUE(media.formatted());
  recovered.recover(at_sec(2));

  EXPECT_EQ(recovered.recoveries(), 1u);
  EXPECT_EQ(recovered.index(), index_before);
  EXPECT_EQ(recovered.segments(), segments_before);
  EXPECT_EQ(recovered.live_bytes(), live_before);
  EXPECT_EQ(recovered.physical_bytes(), physical_before);
}

TEST_F(RecoveryFixture, TwoReplaysOfOneJournalAreIdentical) {
  build(50'000, 10'000);
  workout();

  FlashDevice da(sim, FlashDeviceParams{}), db(sim, FlashDeviceParams{});
  FlashTier ra(da, media, params), rb(db, media, params);
  ra.recover(at_sec(2));
  rb.recover(at_sec(2));

  EXPECT_EQ(ra.index(), rb.index());
  EXPECT_EQ(ra.segments(), rb.segments());
  EXPECT_EQ(ra.live_bytes(), rb.live_bytes());
  EXPECT_EQ(ra.physical_bytes(), rb.physical_bytes());
}

TEST_F(RecoveryFixture, RecoveredTierKeepsAbsorbingWrites) {
  build(50'000, 10'000);
  workout();
  const auto count_before = tier->entry_count();

  FlashDevice device2(sim, FlashDeviceParams{});
  FlashTier recovered(device2, media, params);
  recovered.recover(at_sec(2));
  ASSERT_EQ(recovered.entry_count(), count_before);

  // The unsealed segment was re-adopted as active: new puts append to it
  // (or seal it) without clashing with replayed segment ids.
  ASSERT_EQ(recovered.put(entry("post", 3'000, at_sec(900)), at_sec(2)),
            FlashTier::PutOutcome::Stored);
  EXPECT_NE(recovered.peek("post", at_sec(3)), nullptr);
  EXPECT_EQ(recovered.entry_count(), count_before + 1);
}

TEST_F(TierFixture, JournalCheckpointBoundsReplayCost) {
  build(50'000, 10'000);
  // Hammer one key: without checkpointing the journal would grow one
  // Append + one Invalidate per overwrite, unbounded.
  for (int i = 0; i < 400; ++i) {
    tier->put(entry("hot", 2'000, at_sec(600 + i)), at_sec(0));
  }
  EXPECT_GE(tier->journal().rewrites(), 1u);
  const auto budget = params.journal_rewrite_factor *
                          (tier->entry_count() + tier->segment_count()) +
                      params.journal_rewrite_slack;
  EXPECT_LE(tier->journal().record_count(), budget);

  // The compacted journal still replays to the same state.
  FlashDevice device2(sim, FlashDeviceParams{});
  FlashTier recovered(device2, media, params);
  recovered.recover(at_sec(1));
  EXPECT_EQ(recovered.index(), tier->index());
  EXPECT_EQ(recovered.segments(), tier->segments());
}

TEST_F(TierFixture, ResetWipesStateAndJournal) {
  build(50'000, 10'000);
  tier->put(entry("a", 4'000, at_sec(60)), at_sec(0));
  ASSERT_TRUE(media.formatted());
  tier->reset();
  EXPECT_EQ(tier->entry_count(), 0u);
  EXPECT_EQ(tier->physical_bytes(), 0u);
  EXPECT_FALSE(media.formatted());
}

// -------------------------------------------------------- tiered glue

struct TieredFixture : ::testing::Test {
  sim::Simulator sim;
  FlashMedia media;
  std::unique_ptr<FlashDevice> device;
  std::unique_ptr<FlashTier> flash;
  std::unique_ptr<cache::CacheStore> ram;
  std::unique_ptr<TieredStore> store;

  void build(std::size_t ram_capacity) {
    device = std::make_unique<FlashDevice>(sim, FlashDeviceParams{});
    flash = std::make_unique<FlashTier>(*device, media, FlashTierParams{});
    ram = std::make_unique<cache::CacheStore>(ram_capacity,
                                              std::make_unique<cache::LruPolicy>());
    store = std::make_unique<TieredStore>(sim, *ram, *flash);
  }
};

TEST_F(TieredFixture, RamEvictionDemotesToFlash) {
  build(10'000);
  EXPECT_EQ(store->insert(entry("a", 6'000, at_sec(300)), at_sec(0)),
            cache::CacheStore::InsertOutcome::Inserted);
  // b forces a out of RAM (LRU): a lands on flash, still servable.
  EXPECT_EQ(store->insert(entry("b", 6'000, at_sec(300)), at_sec(1)),
            cache::CacheStore::InsertOutcome::Inserted);

  EXPECT_EQ(store->demotions(), 1u);
  EXPECT_EQ(ram->peek("a", at_sec(1)), nullptr);
  EXPECT_TRUE(store->flash_contains("a", at_sec(1)));
}

TEST_F(TieredFixture, ExpiredAndCheapEntriesAreNotDemoted) {
  build(10'000);
  // Fetch latency below the flash read cost: demoting is pointless.
  auto cheap = entry("cheap", 6'000, at_sec(300), sim::microseconds(50));
  store->insert(cheap, at_sec(0));
  store->insert(entry("pusher", 6'000, at_sec(300)), at_sec(1));

  EXPECT_EQ(store->demotions(), 0u);
  EXPECT_EQ(store->demotion_skips(), 1u);
  EXPECT_FALSE(store->flash_contains("cheap", at_sec(1)));

  // Explicit erase is dead data, not a demotion ("pusher" would be worth
  // demoting — its 30 ms fetch dwarfs flash — but it didn't get evicted).
  ram->erase("pusher");
  EXPECT_EQ(store->demotions(), 0u);
  EXPECT_FALSE(store->flash_contains("pusher", at_sec(2)));
}

TEST_F(TieredFixture, FlashHitPromotesAndInvalidatesFlashCopy) {
  build(10'000);
  store->insert(entry("a", 6'000, at_sec(300)), at_sec(0));
  store->insert(entry("b", 6'000, at_sec(300)), at_sec(1));  // demotes a
  ASSERT_TRUE(store->flash_contains("a", at_sec(1)));

  std::optional<cache::CacheEntry> got;
  store->fetch_flash("a", at_sec(2), [&](std::optional<cache::CacheEntry> e) { got = e; });
  sim.run();

  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->key, "a");
  EXPECT_EQ(store->flash_hits(), 1u);
  EXPECT_EQ(store->promotions(), 1u);
  // RAM took it back, so the flash copy is superseded...
  EXPECT_NE(ram->peek("a", at_sec(2)), nullptr);
  EXPECT_FALSE(store->flash_contains("a", at_sec(2)));
  // ...and the promotion in turn demoted b (LRU victim) to flash.
  EXPECT_TRUE(store->flash_contains("b", at_sec(2)));
}

TEST_F(TieredFixture, FreshInsertSupersedesFlashCopy) {
  build(10'000);
  store->insert(entry("a", 6'000, at_sec(300)), at_sec(0));
  store->insert(entry("b", 6'000, at_sec(300)), at_sec(1));  // demotes a
  ASSERT_TRUE(store->flash_contains("a", at_sec(1)));

  // A re-fetch from the edge re-inserts a: the stale flash copy must die.
  store->insert(entry("a", 6'000, at_sec(600)), at_sec(2));
  EXPECT_FALSE(store->flash_contains("a", at_sec(2)));
  EXPECT_NE(ram->peek("a", at_sec(2)), nullptr);
}

TEST_F(TieredFixture, FlashReadMsTracksDeviceCost) {
  build(10'000);
  const auto e = entry("x", 100'000, at_sec(300));
  EXPECT_DOUBLE_EQ(store->flash_read_ms(e), sim::to_millis(device->read_cost(100'000)));
}

// ------------------------------------------------- testbed restarts

testbed::TestbedParams tiered_params() {
  testbed::TestbedParams params;
  params.system = testbed::System::ApeCache;
  params.policy_override = core::ApRuntime::Policy::Lru;  // deterministic demotions
  // Tight RAM: the movie-trailer JSON objects (2k/4k/8k/12k) don't all
  // fit, so the later fetches evict — and thereby demote — earlier ones.
  params.ape.cache_capacity_bytes = 20'000;
  params.ape.flash_capacity_bytes = 5'000'000;
  return params;
}

// Fetches every object of `app` once through `client`, driving the sim.
void fetch_all(testbed::Testbed& bed, testbed::Testbed::Client& client,
               const workload::AppSpec& app) {
  for (const auto& request : app.requests) {
    client.runtime->fetch(request.url, [](core::ClientRuntime::FetchResult) {});
    bed.simulator().run();
  }
}

struct RestartFixture : ::testing::Test {
  std::unique_ptr<testbed::Testbed> bed;
  testbed::Testbed::Client* client = nullptr;
  workload::AppSpec app = workload::make_movie_trailer();

  void build(testbed::TestbedParams params) {
    bed = std::make_unique<testbed::Testbed>(params);
    bed->host_app(app);
    client = &bed->add_client("phone");
    for (auto& spec : app.cacheables()) client->runtime->register_cacheable(spec);
    fetch_all(*bed, *client, app);
  }
};

TEST_F(RestartFixture, WarmRestartReplaysJournalColdRestartDoesNot) {
  build(tiered_params());
  ASSERT_TRUE(bed->ap().tiered());
  const auto* flash = bed->ap().flash_tier();
  ASSERT_GT(flash->entry_count(), 0u) << "workload must spill into flash";
  const auto flash_index = flash->index();
  const auto ram_entries = bed->ap().data_cache().entry_count();
  ASSERT_GT(ram_entries, 0u);

  bed->restart_ap(/*preserve_flash=*/true);
  // RAM is gone, flash came back exactly.
  EXPECT_EQ(bed->ap().data_cache().entry_count(), 0u);
  ASSERT_TRUE(bed->ap().tiered());
  EXPECT_EQ(bed->ap().flash_tier()->recoveries(), 1u);
  EXPECT_EQ(bed->ap().flash_tier()->index(), flash_index);

  bed->restart_ap(/*preserve_flash=*/false);
  EXPECT_EQ(bed->ap().flash_tier()->recoveries(), 0u);
  EXPECT_EQ(bed->ap().flash_tier()->entry_count(), 0u);
  EXPECT_FALSE(bed->flash_media()->formatted());
}

TEST_F(RestartFixture, WarmRestartStillServesDemotedObjects) {
  build(tiered_params());
  ASSERT_FALSE(bed->ap().flash_tier()->index().empty());
  bed->restart_ap(/*preserve_flash=*/true);

  // Recovered flash copies are cache hits for the APE path: re-running
  // the app must serve some objects from flash instead of the edge.
  auto& phone = bed->add_client("phone2");
  for (auto& spec : app.cacheables()) phone.runtime->register_cacheable(spec);
  fetch_all(*bed, phone, app);
  EXPECT_GT(bed->ap().tiered_store()->flash_hits(), 0u);
  EXPECT_GT(bed->ap().tiered_store()->promotions(), 0u);
}

TEST_F(RestartFixture, PostRecoveryExportIsByteIdenticalAcrossReplays) {
  // Two independent testbeds running the identical deterministic script,
  // each crashing and warm-restarting at the same instant, must export
  // byte-identical ape.obs.v1 snapshots.
  auto run_once = [this]() {
    build(tiered_params());
    bed->restart_ap(/*preserve_flash=*/true);
    auto& phone = bed->add_client("phone2");
    for (auto& spec : app.cacheables()) phone.runtime->register_cacheable(spec);
    fetch_all(*bed, phone, app);
    bed->collect_metrics();
    return obs::to_json(bed->observer().metrics());
  };
  const std::string first = run_once();
  const std::string second = run_once();
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("ap.flash.journal_replays"), std::string::npos);
}

TEST_F(RestartFixture, PeriodicSweepReclaimsExpiredRamBytes) {
  auto params = tiered_params();
  params.ape.sweep_interval = sim::seconds(30.0);
  // With a self-rescheduling sweep the event queue never drains, so this
  // test drives the sim with run_until throughout (never run()).
  bed = std::make_unique<testbed::Testbed>(params);
  bed->host_app(app);
  client = &bed->add_client("phone");
  for (auto& spec : app.cacheables()) client->runtime->register_cacheable(spec);
  for (const auto& request : app.requests) {
    client->runtime->fetch(request.url, [](core::ClientRuntime::FetchResult) {});
    bed->simulator().run_until(bed->simulator().now() + sim::seconds(5.0));
  }

  ASSERT_GT(bed->ap().data_cache().entry_count(), 0u);
  // Run far past every TTL; the sweep event must fire repeatedly and
  // reclaim the expired entries without any client touching them.
  bed->simulator().run_until(sim::Time{} + sim::seconds(7200.0));
  EXPECT_GT(bed->ap().lookup_stats().sweeps(), 0u);
  EXPECT_GT(bed->ap().lookup_stats().sweep_reclaimed_bytes(), 0u);
  EXPECT_EQ(bed->ap().data_cache().entry_count(), 0u);

  bed->collect_metrics();
  const std::string json = obs::to_json(bed->observer().metrics());
  EXPECT_NE(json.find("ap.cache.sweeps"), std::string::npos);
}

TEST(StoreMetricsGate, RamOnlyRunsRegisterNoStoreMetrics) {
  // The flash tier and sweep are strictly opt-in: a default config run
  // must not even *register* the new metrics (byte-identity of existing
  // baselines depends on it).
  testbed::Testbed bed{testbed::TestbedParams{}};
  EXPECT_FALSE(bed.ap().tiered());
  EXPECT_EQ(bed.flash_media(), nullptr);
  bed.collect_metrics();
  const std::string json = obs::to_json(bed.observer().metrics());
  EXPECT_EQ(json.find("ap.flash."), std::string::npos);
  EXPECT_EQ(json.find("ap.store."), std::string::npos);
  EXPECT_EQ(json.find("ap.cache.sweeps"), std::string::npos);
}

}  // namespace
}  // namespace ape::store

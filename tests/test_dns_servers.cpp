#include <gtest/gtest.h>

#include "dns/adns.hpp"
#include "dns/cdn_dns.hpp"
#include "dns/ldns.hpp"
#include "dns/stub_resolver.hpp"

namespace ape::dns {
namespace {

// Fixture: client -- ldns -- {adns, cdn-dns}, all 5 ms links.
struct DnsFixture : ::testing::Test {
  sim::Simulator sim;
  net::Topology topo;
  std::unique_ptr<net::Network> net;
  net::NodeId client{}, ldns_node{}, adns_node{}, cdn_node{};
  net::IpAddress client_ip = net::IpAddress::from_octets(10, 0, 0, 1);
  net::IpAddress ldns_ip = net::IpAddress::from_octets(10, 0, 0, 2);
  net::IpAddress adns_ip = net::IpAddress::from_octets(10, 0, 0, 3);
  net::IpAddress cdn_ip = net::IpAddress::from_octets(10, 0, 0, 4);
  net::IpAddress edge_ip = net::IpAddress::from_octets(10, 9, 9, 9);

  std::unique_ptr<sim::ServiceQueue> ldns_cpu, adns_cpu, cdn_cpu;
  std::unique_ptr<LocalDnsServer> ldns;
  std::unique_ptr<AuthoritativeDnsServer> adns;
  std::unique_ptr<CdnDnsServer> cdn;
  std::unique_ptr<StubResolver> stub;

  DnsName apex = DnsName::parse("example.com").value();
  DnsName www = DnsName::parse("www.example.com").value();
  DnsName cdn_suffix = DnsName::parse("cdn.net").value();
  DnsName cdn_name = DnsName::parse("www.example.com.cdn.net").value();

  void SetUp() override {
    client = topo.add_node("client");
    ldns_node = topo.add_node("ldns");
    adns_node = topo.add_node("adns");
    cdn_node = topo.add_node("cdn");
    const net::LinkSpec link{sim::milliseconds(5), 1e9};
    topo.add_link(client, ldns_node, link);
    topo.add_link(ldns_node, adns_node, link);
    topo.add_link(ldns_node, cdn_node, link);

    net = std::make_unique<net::Network>(sim, topo);
    net->assign_ip(client, client_ip);
    net->assign_ip(ldns_node, ldns_ip);
    net->assign_ip(adns_node, adns_ip);
    net->assign_ip(cdn_node, cdn_ip);

    ldns_cpu = std::make_unique<sim::ServiceQueue>(sim, 2);
    adns_cpu = std::make_unique<sim::ServiceQueue>(sim, 2);
    cdn_cpu = std::make_unique<sim::ServiceQueue>(sim, 2);

    ldns = std::make_unique<LocalDnsServer>(*net, ldns_node, *ldns_cpu,
                                            sim::microseconds(100));
    adns = std::make_unique<AuthoritativeDnsServer>(*net, adns_node, *adns_cpu,
                                                    sim::microseconds(100));
    cdn = std::make_unique<CdnDnsServer>(*net, cdn_node, *cdn_cpu, sim::microseconds(100));

    adns->add_zone(apex);
    ldns->add_delegation(apex, net::Endpoint{adns_ip, net::kDnsPort});
    ldns->add_delegation(cdn_suffix, net::Endpoint{cdn_ip, net::kDnsPort});

    stub = std::make_unique<StubResolver>(*net, client,
                                          net::Endpoint{ldns_ip, net::kDnsPort}, 50000);
  }

  Result<ResolveResult> resolve(const DnsName& name) {
    Result<ResolveResult> out = make_error<ResolveResult>("not called");
    stub->resolve(name, [&out](Result<ResolveResult> r) { out = std::move(r); });
    sim.run();
    return out;
  }
};

// ----------------------------------------------------------------- ADNS

TEST_F(DnsFixture, AdnsServesARecord) {
  adns->add_a(www, edge_ip, 300);
  const auto result = resolve(www);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().address, edge_ip);
  EXPECT_EQ(result.value().ttl, 300u);
}

TEST_F(DnsFixture, AdnsNxDomainForUnknownNameInZone) {
  const auto result = resolve(DnsName::parse("missing.example.com").value());
  EXPECT_FALSE(result.ok());
}

TEST_F(DnsFixture, AdnsFollowsInZoneCnameChains) {
  const auto alias = DnsName::parse("alias.example.com").value();
  adns->add_cname(alias, www, 60);
  adns->add_a(www, edge_ip, 60);
  const auto result = resolve(alias);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().address, edge_ip);
}

// ------------------------------------------------------------------ CDN

TEST_F(DnsFixture, CdnMapsRegionToServer) {
  adns->add_cname(www, cdn_name, 3600);
  cdn->add_service(cdn_name, edge_ip);
  cdn->add_cache_server(cdn_name, "mi", net::IpAddress::from_octets(10, 5, 5, 5));
  cdn->set_region_of(ldns_ip, "mi");
  const auto result = resolve(www);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().address, net::IpAddress::from_octets(10, 5, 5, 5));
}

TEST_F(DnsFixture, CdnFallsBackToOriginForUnmappedRegion) {
  adns->add_cname(www, cdn_name, 3600);
  cdn->add_service(cdn_name, edge_ip);  // no server for ldns's region
  const auto result = resolve(www);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().address, edge_ip);  // origin
}

TEST_F(DnsFixture, CdnNxDomainForUnknownService) {
  adns->add_cname(www, cdn_name, 3600);  // CNAME to an unregistered service
  const auto result = resolve(www);
  EXPECT_FALSE(result.ok());
}

// ----------------------------------------------------------------- LDNS

TEST_F(DnsFixture, LdnsRecursesThroughCnameAcrossServers) {
  adns->add_cname(www, cdn_name, 3600);
  cdn->add_service(cdn_name, edge_ip);
  cdn->set_answer_ttl(20);
  const auto result = resolve(www);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().address, edge_ip);
  EXPECT_EQ(ldns->upstream_queries(), 2u);  // adns + cdn
}

TEST_F(DnsFixture, LdnsCachesPositiveAnswers) {
  adns->add_a(www, edge_ip, 300);
  ASSERT_TRUE(resolve(www).ok());
  EXPECT_EQ(ldns->upstream_queries(), 1u);
  ASSERT_TRUE(resolve(www).ok());
  EXPECT_EQ(ldns->upstream_queries(), 1u);  // served from cache
}

TEST_F(DnsFixture, LdnsCachedAnswerIsFaster) {
  adns->add_a(www, edge_ip, 300);
  sim::Time start = sim.now();
  ASSERT_TRUE(resolve(www).ok());
  const auto cold = sim.now() - start;
  start = sim.now();
  ASSERT_TRUE(resolve(www).ok());
  const auto warm = sim.now() - start;
  EXPECT_LT(warm, cold);
  // Warm: client<->ldns RTT only (10 ms) plus service time.
  EXPECT_LT(sim::to_millis(warm), 12.0);
}

TEST_F(DnsFixture, LdnsRespectsTtlExpiry) {
  adns->add_a(www, edge_ip, 2);  // 2-second TTL
  ASSERT_TRUE(resolve(www).ok());
  EXPECT_EQ(ldns->upstream_queries(), 1u);
  sim.run_until(sim.now() + sim::seconds(3.0));
  ASSERT_TRUE(resolve(www).ok());
  EXPECT_EQ(ldns->upstream_queries(), 2u);  // re-fetched after expiry
}

TEST_F(DnsFixture, LdnsNeverCachesTtlZero) {
  adns->add_cname(www, cdn_name, 3600);
  cdn->add_service(cdn_name, edge_ip);
  cdn->set_answer_ttl(0);  // Akamai-style mapping
  ASSERT_TRUE(resolve(www).ok());
  const auto first = ldns->upstream_queries();
  ASSERT_TRUE(resolve(www).ok());
  // CNAME cached, but the A must be re-fetched from the CDN DNS.
  EXPECT_EQ(ldns->upstream_queries(), first + 1);
}

TEST_F(DnsFixture, LdnsServFailWithoutDelegation) {
  const auto result = resolve(DnsName::parse("unknown.zone.test").value());
  EXPECT_FALSE(result.ok());
}

TEST_F(DnsFixture, LdnsFlushCacheForcesRecursion) {
  adns->add_a(www, edge_ip, 300);
  ASSERT_TRUE(resolve(www).ok());
  ldns->flush_cache();
  ASSERT_TRUE(resolve(www).ok());
  EXPECT_EQ(ldns->upstream_queries(), 2u);
}

// ------------------------------------------------------------ DnsClient

TEST_F(DnsFixture, ClientTimesOutWhenServerGone) {
  DnsClient lone(*net, client, 51000);
  lone.set_timeout(sim::milliseconds(50));
  lone.set_max_attempts(2);
  bool failed = false;
  DnsMessage q;
  q.questions.push_back(Question{www, RrType::A, RrClass::In});
  // Nothing listens on port 5353 anywhere.
  lone.query(net::Endpoint{adns_ip, 5353}, std::move(q),
             [&](Result<DnsMessage> r) { failed = !r.ok(); });
  sim.run();
  EXPECT_TRUE(failed);
  EXPECT_EQ(lone.timeouts(), 1u);
  // Two attempts, 50 ms each.
  EXPECT_EQ(sim.now().since_epoch, sim::milliseconds(100));
}

TEST_F(DnsFixture, ClientRetriesRecoverFromOneLoss) {
  adns->add_a(www, edge_ip, 300);
  // Partition briefly so the first attempt is lost, then heal.
  topo.set_link_down(client, ldns_node, true);
  sim.schedule_in(sim::milliseconds(100), [&] { topo.set_link_down(client, ldns_node, false); });

  DnsClient retrying(*net, client, 52000);
  retrying.set_timeout(sim::milliseconds(200));
  retrying.set_max_attempts(2);
  bool ok = false;
  DnsMessage q;
  q.header.rd = true;
  q.questions.push_back(Question{www, RrType::A, RrClass::In});
  retrying.query(net::Endpoint{ldns_ip, net::kDnsPort}, std::move(q),
                 [&](Result<DnsMessage> r) { ok = r.ok(); });
  sim.run();
  EXPECT_TRUE(ok);
}

TEST_F(DnsFixture, ConcurrentQueriesMatchById) {
  adns->add_a(www, edge_ip, 300);
  const auto second_name = DnsName::parse("two.example.com").value();
  adns->add_a(second_name, net::IpAddress::from_octets(10, 2, 2, 2), 300);

  net::IpAddress got_first{}, got_second{};
  stub->resolve(www, [&](Result<ResolveResult> r) {
    ASSERT_TRUE(r.ok());
    got_first = r.value().address;
  });
  stub->resolve(second_name, [&](Result<ResolveResult> r) {
    ASSERT_TRUE(r.ok());
    got_second = r.value().address;
  });
  sim.run();
  EXPECT_EQ(got_first, edge_ip);
  EXPECT_EQ(got_second, net::IpAddress::from_octets(10, 2, 2, 2));
}

// ---------------------------------------------------------- StubResolver

TEST_F(DnsFixture, StubExtractsAddressThroughCname) {
  DnsMessage resp;
  resp.header.qr = true;
  resp.answers.push_back(make_cname_record(www, cdn_name, 60));
  resp.answers.push_back(make_a_record(cdn_name, edge_ip, 20));
  const auto extracted = StubResolver::extract_address(resp, www);
  ASSERT_TRUE(extracted.ok());
  EXPECT_EQ(extracted.value().address, edge_ip);
  EXPECT_EQ(extracted.value().ttl, 20u);
}

TEST_F(DnsFixture, StubRejectsAnswerlessResponse) {
  DnsMessage resp;
  resp.header.qr = true;
  EXPECT_FALSE(StubResolver::extract_address(resp, www).ok());
}

TEST_F(DnsFixture, StubRejectsErrorRcode) {
  DnsMessage resp;
  resp.header.qr = true;
  resp.header.rcode = Rcode::NxDomain;
  resp.answers.push_back(make_a_record(www, edge_ip, 20));
  EXPECT_FALSE(StubResolver::extract_address(resp, www).ok());
}

TEST_F(DnsFixture, StubRejectsCnameLoop) {
  const auto a = DnsName::parse("a.example.com").value();
  const auto b = DnsName::parse("b.example.com").value();
  DnsMessage resp;
  resp.header.qr = true;
  resp.answers.push_back(make_cname_record(a, b, 60));
  resp.answers.push_back(make_cname_record(b, a, 60));
  EXPECT_FALSE(StubResolver::extract_address(resp, a).ok());
}

TEST_F(DnsFixture, ServerIgnoresMalformedDatagrams) {
  net->send_datagram(client, 50001, net::Endpoint{ldns_ip, net::kDnsPort},
                     net::Payload{0xFF, 0x00, 0xAB});
  sim.run();
  EXPECT_EQ(ldns->malformed_received(), 1u);
  EXPECT_EQ(ldns->queries_received(), 0u);
}

TEST_F(DnsFixture, ServerIgnoresResponsesSentToIt) {
  DnsMessage bogus;
  bogus.header.qr = true;  // a response, not a query
  net->send_datagram(client, 50002, net::Endpoint{ldns_ip, net::kDnsPort}, encode(bogus));
  sim.run();
  EXPECT_EQ(ldns->queries_received(), 0u);
}


// -------------------------------------------------- EDNS and truncation

TEST_F(DnsFixture, ClientsAdvertiseEdnsPayload) {
  adns->add_a(www, edge_ip, 300);
  // Capture what the ADNS receives by observing the response: answers of
  // arbitrary size up to kDefaultEdnsPayload come back untruncated.
  for (int i = 0; i < 30; ++i) {
    adns->add_a(DnsName::parse("host" + std::to_string(i) + ".example.com").value(),
                edge_ip, 300);
  }
  // A CNAME farm under one name to fatten the answer past 512 bytes.
  const auto fat = DnsName::parse("fat.example.com").value();
  DnsName prev = fat;
  for (int i = 0; i < 12; ++i) {
    const auto next =
        DnsName::parse("chain-node-number-" + std::to_string(i) + ".example.com").value();
    adns->add_cname(prev, next, 300);
    prev = next;
  }
  adns->add_a(prev, edge_ip, 300);

  const auto result = resolve(fat);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().address, edge_ip);
  EXPECT_EQ(adns->truncated_sent(), 0u);  // EDNS lifted the 512-byte limit
}

TEST_F(DnsFixture, NonEdnsQueryGetsTruncatedAnswer) {
  // Build the same fat chain, then query WITHOUT an OPT record through a
  // raw socket: the server must truncate to header+question with TC set.
  const auto fat = DnsName::parse("fat.example.com").value();
  DnsName prev = fat;
  for (int i = 0; i < 12; ++i) {
    const auto next =
        DnsName::parse("chain-node-number-" + std::to_string(i) + ".example.com").value();
    adns->add_cname(prev, next, 300);
    prev = next;
  }
  adns->add_a(prev, edge_ip, 300);

  DnsMessage query;
  query.header.id = 77;
  query.header.rd = true;
  query.questions.push_back(Question{fat, RrType::A, RrClass::In});

  Result<DnsMessage> got = make_error<DnsMessage>("pending");
  net->bind_udp(client, 55000, [&got](const net::Datagram& d) {
    got = decode(d.payload);
  });
  net->send_datagram(client, 55000, net::Endpoint{adns_ip, net::kDnsPort}, encode(query));
  sim.run();
  net->unbind_udp(client, 55000);

  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got.value().header.tc);
  EXPECT_TRUE(got.value().answers.empty());
  EXPECT_EQ(got.value().questions.size(), 1u);
  EXPECT_EQ(adns->truncated_sent(), 1u);
}

TEST_F(DnsFixture, UdpPayloadLimitParsing) {
  DnsMessage plain;
  EXPECT_EQ(udp_payload_limit(plain), kClassicUdpPayload);
  DnsMessage with_opt;
  with_opt.additionals.push_back(make_opt_record(4096));
  EXPECT_EQ(udp_payload_limit(with_opt), 4096u);
  DnsMessage tiny_opt;
  tiny_opt.additionals.push_back(make_opt_record(100));  // below the floor
  EXPECT_EQ(udp_payload_limit(tiny_opt), kClassicUdpPayload);
}

}  // namespace
}  // namespace ape::dns

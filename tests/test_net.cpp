#include <gtest/gtest.h>

#include "net/network.hpp"
#include "net/tcp.hpp"
#include "net/topology.hpp"

namespace ape::net {
namespace {

// ------------------------------------------------------------- Address

TEST(IpAddress, RoundTripsDottedForm) {
  const auto ip = IpAddress::parse("192.168.8.1");
  ASSERT_TRUE(ip.ok());
  EXPECT_EQ(ip.value().to_string(), "192.168.8.1");
}

TEST(IpAddress, FromOctets) {
  EXPECT_EQ(IpAddress::from_octets(10, 0, 0, 1).to_string(), "10.0.0.1");
}

TEST(IpAddress, RejectsMalformed) {
  EXPECT_FALSE(IpAddress::parse("not-an-ip").ok());
  EXPECT_FALSE(IpAddress::parse("1.2.3").ok());
  EXPECT_FALSE(IpAddress::parse("1.2.3.4.5").ok());
  EXPECT_FALSE(IpAddress::parse("1.2.3.256").ok());
  EXPECT_FALSE(IpAddress::parse("").ok());
}

TEST(IpAddress, DummyIsTestNet2) {
  EXPECT_EQ(kDummyIp.to_string(), "198.51.100.1");
}

TEST(Endpoint, ToString) {
  EXPECT_EQ((Endpoint{IpAddress::from_octets(1, 2, 3, 4), 53}).to_string(), "1.2.3.4:53");
}

// ------------------------------------------------------------- Topology

TEST(Topology, DirectLinkPath) {
  Topology t;
  const auto a = t.add_node("a");
  const auto b = t.add_node("b");
  t.add_link(a, b, LinkSpec{sim::milliseconds(5), 1e6});
  const auto path = t.path(a, b);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->hops, 1u);
  EXPECT_EQ(path->one_way_latency, sim::milliseconds(5));
  EXPECT_DOUBLE_EQ(path->bottleneck_bandwidth, 1e6);
}

TEST(Topology, SelfPathIsFree) {
  Topology t;
  const auto a = t.add_node("a");
  const auto path = t.path(a, a);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->hops, 0u);
  EXPECT_EQ(path->one_way_latency.count(), 0);
}

TEST(Topology, DisconnectedIsNullopt) {
  Topology t;
  const auto a = t.add_node("a");
  const auto b = t.add_node("b");
  EXPECT_FALSE(t.path(a, b).has_value());
}

TEST(Topology, ShortestLatencyWins) {
  Topology t;
  const auto a = t.add_node("a");
  const auto b = t.add_node("b");
  const auto via = t.add_node("via");
  t.add_link(a, b, LinkSpec{sim::milliseconds(50), 1e6});
  t.add_link(a, via, LinkSpec{sim::milliseconds(5), 1e6});
  t.add_link(via, b, LinkSpec{sim::milliseconds(5), 1e6});
  const auto path = t.path(a, b);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->hops, 2u);
  EXPECT_EQ(path->one_way_latency, sim::milliseconds(10));
}

TEST(Topology, BottleneckBandwidthIsMinimum) {
  Topology t;
  const auto a = t.add_node("a");
  const auto b = t.add_node("b");
  const auto c = t.add_node("c");
  t.add_link(a, b, LinkSpec{sim::milliseconds(1), 10e6});
  t.add_link(b, c, LinkSpec{sim::milliseconds(1), 2e6});
  const auto path = t.path(a, c);
  ASSERT_TRUE(path.has_value());
  EXPECT_DOUBLE_EQ(path->bottleneck_bandwidth, 2e6);
}

TEST(Topology, MultiHopPathMaterializesRouters) {
  Topology t;
  const auto a = t.add_node("a");
  const auto b = t.add_node("b");
  t.add_multi_hop_path(a, b, 7, sim::milliseconds(2), 1e6);
  const auto path = t.path(a, b);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->hops, 7u);
  EXPECT_EQ(path->one_way_latency, sim::milliseconds(14));
  EXPECT_EQ(path->rtt(), sim::milliseconds(28));
}

TEST(Topology, LinkDownPartitions) {
  Topology t;
  const auto a = t.add_node("a");
  const auto b = t.add_node("b");
  t.add_link(a, b, LinkSpec{sim::milliseconds(1), 1e6});
  t.set_link_down(a, b, true);
  EXPECT_FALSE(t.path(a, b).has_value());
  t.set_link_down(a, b, false);
  EXPECT_TRUE(t.path(a, b).has_value());
}

TEST(Topology, PathCacheInvalidatedByMutation) {
  Topology t;
  const auto a = t.add_node("a");
  const auto b = t.add_node("b");
  t.add_link(a, b, LinkSpec{sim::milliseconds(10), 1e6});
  EXPECT_EQ(t.path(a, b)->one_way_latency, sim::milliseconds(10));
  t.add_link(a, b, LinkSpec{sim::milliseconds(3), 1e6});  // replace spec
  EXPECT_EQ(t.path(a, b)->one_way_latency, sim::milliseconds(3));
}

TEST(Topology, LinkExists) {
  Topology t;
  const auto a = t.add_node("a");
  const auto b = t.add_node("b");
  EXPECT_FALSE(t.link_exists(a, b));
  t.add_link(a, b, LinkSpec{sim::milliseconds(1), 1e6});
  EXPECT_TRUE(t.link_exists(a, b));
  t.set_link_down(a, b, true);
  EXPECT_FALSE(t.link_exists(a, b));
}

// -------------------------------------------------------------- Network

struct NetFixture : ::testing::Test {
  sim::Simulator sim;
  Topology topo;
  std::unique_ptr<Network> net;
  NodeId a{}, b{};
  IpAddress ip_a = IpAddress::from_octets(10, 0, 0, 1);
  IpAddress ip_b = IpAddress::from_octets(10, 0, 0, 2);

  void SetUp() override {
    a = topo.add_node("a");
    b = topo.add_node("b");
    topo.add_link(a, b, LinkSpec{sim::milliseconds(5), 1'000'000.0});
    net = std::make_unique<Network>(sim, topo);
    net->assign_ip(a, ip_a);
    net->assign_ip(b, ip_b);
  }
};

TEST_F(NetFixture, DatagramDelivered) {
  std::string received;
  sim::Time at{};
  net->bind_udp(b, 53, [&](const Datagram& d) {
    received = std::string(d.payload.begin(), d.payload.end());
    at = sim.now();
  });
  EXPECT_TRUE(net->send_datagram(a, 1000, Endpoint{ip_b, 53}, Payload{'h', 'i'}));
  sim.run();
  EXPECT_EQ(received, "hi");
  // 5 ms propagation + (2 + 28 overhead bytes) / 1 MB/s = 5.03 ms.
  EXPECT_EQ(at.since_epoch, sim::milliseconds(5) + sim::microseconds(30));
}

TEST_F(NetFixture, SourceEndpointPreserved) {
  Endpoint seen{};
  net->bind_udp(b, 53, [&](const Datagram& d) { seen = d.source; });
  net->send_datagram(a, 1234, Endpoint{ip_b, 53}, Payload{});
  sim.run();
  EXPECT_EQ(seen.ip, ip_a);
  EXPECT_EQ(seen.port, 1234);
}

TEST_F(NetFixture, UnknownDestinationDropsImmediately) {
  EXPECT_FALSE(net->send_datagram(a, 1, Endpoint{IpAddress::from_octets(9, 9, 9, 9), 53},
                                  Payload{}));
  EXPECT_EQ(net->counters().datagrams_dropped, 1u);
}

TEST_F(NetFixture, UnboundPortDropsAtDelivery) {
  net->send_datagram(a, 1, Endpoint{ip_b, 999}, Payload{});
  sim.run();
  EXPECT_EQ(net->counters().datagrams_delivered, 0u);
  EXPECT_EQ(net->counters().datagrams_dropped, 1u);
}

TEST_F(NetFixture, PartitionDropsDatagrams) {
  topo.set_link_down(a, b, true);
  net->bind_udp(b, 53, [](const Datagram&) { FAIL(); });
  net->send_datagram(a, 1, Endpoint{ip_b, 53}, Payload{});
  sim.run();
  EXPECT_EQ(net->counters().datagrams_dropped, 1u);
}

TEST_F(NetFixture, TransferDelayScalesWithSize) {
  const auto small = net->transfer_delay(a, b, 1000);
  const auto large = net->transfer_delay(a, b, 100'000);
  ASSERT_TRUE(small && large);
  EXPECT_LT(*small, *large);
}

// ------------------------------------------------------------------ TCP

struct TcpFixture : NetFixture {
  std::unique_ptr<TcpTransport> tcp;
  void SetUp() override {
    NetFixture::SetUp();
    tcp = std::make_unique<TcpTransport>(*net);
  }
};

TEST_F(TcpFixture, ConnectTakesOneRtt) {
  tcp->listen(b, 80, [](const TcpMessage&, Endpoint, TcpResponder respond) {
    respond(TcpMessage{});
  });
  sim::Time connected{};
  tcp->connect(a, Endpoint{ip_b, 80}, [&](Result<TcpConnectionPtr> conn) {
    ASSERT_TRUE(conn.ok());
    connected = sim.now();
  });
  sim.run();
  EXPECT_EQ(connected.since_epoch, sim::milliseconds(10));  // 2 x 5 ms
}

TEST_F(TcpFixture, RequestResponseRoundTrip) {
  tcp->listen(b, 80, [](const TcpMessage& req, Endpoint, TcpResponder respond) {
    TcpMessage resp;
    resp.bytes = req.bytes;  // echo
    resp.bytes.push_back('!');
    respond(std::move(resp));
  });
  std::string got;
  tcp->connect(a, Endpoint{ip_b, 80}, [&](Result<TcpConnectionPtr> conn) {
    ASSERT_TRUE(conn.ok());
    TcpMessage req;
    req.bytes = {'h', 'i'};
    auto connection = conn.value();
    connection->send_request(std::move(req), [&got, connection](Result<TcpMessage> resp) {
      ASSERT_TRUE(resp.ok());
      got = std::string(resp.value().bytes.begin(), resp.value().bytes.end());
    });
  });
  sim.run();
  EXPECT_EQ(got, "hi!");
}

TEST_F(TcpFixture, ConnectionRefusedWhenNobodyListens) {
  bool refused = false;
  tcp->connect(a, Endpoint{ip_b, 81}, [&](Result<TcpConnectionPtr> conn) {
    refused = !conn.ok();
    EXPECT_NE(conn.error().message.find("refused"), std::string::npos);
  });
  sim.run();
  EXPECT_TRUE(refused);
  EXPECT_EQ(tcp->counters().connects_refused, 1u);
}

TEST_F(TcpFixture, ConnectToUnroutableTimesOut) {
  tcp->set_connect_timeout(sim::milliseconds(100));
  bool timed_out = false;
  tcp->connect(a, Endpoint{IpAddress::from_octets(9, 9, 9, 9), 80},
               [&](Result<TcpConnectionPtr> conn) { timed_out = !conn.ok(); });
  sim.run();
  EXPECT_TRUE(timed_out);
  EXPECT_EQ(sim.now().since_epoch, sim::milliseconds(100));
}

TEST_F(TcpFixture, PartitionTimesOutConnect) {
  topo.set_link_down(a, b, true);
  tcp->set_connect_timeout(sim::milliseconds(50));
  bool failed = false;
  tcp->connect(a, Endpoint{ip_b, 80}, [&](Result<TcpConnectionPtr> c) { failed = !c.ok(); });
  sim.run();
  EXPECT_TRUE(failed);
}

TEST_F(TcpFixture, ClosedConnectionRejectsRequests) {
  tcp->listen(b, 80, [](const TcpMessage&, Endpoint, TcpResponder r) { r(TcpMessage{}); });
  bool rejected = false;
  tcp->connect(a, Endpoint{ip_b, 80}, [&](Result<TcpConnectionPtr> conn) {
    ASSERT_TRUE(conn.ok());
    conn.value()->close();
    conn.value()->send_request(TcpMessage{},
                               [&](Result<TcpMessage> r) { rejected = !r.ok(); });
  });
  sim.run();
  EXPECT_TRUE(rejected);
}

TEST_F(TcpFixture, ServerConnectionCountTracksLifecycle) {
  tcp->listen(b, 80, [](const TcpMessage&, Endpoint, TcpResponder r) { r(TcpMessage{}); });
  TcpConnectionPtr held;
  tcp->connect(a, Endpoint{ip_b, 80}, [&](Result<TcpConnectionPtr> conn) {
    held = conn.value();
  });
  sim.run();
  EXPECT_EQ(tcp->server_connection_count(b), 1u);
  held.reset();
  EXPECT_EQ(tcp->server_connection_count(b), 0u);
}

TEST_F(TcpFixture, LargeBodySlowerThanSmall) {
  tcp->listen(b, 80, [](const TcpMessage& req, Endpoint, TcpResponder respond) {
    TcpMessage resp;
    resp.simulated_body_bytes = req.simulated_body_bytes;
    respond(std::move(resp));
  });
  auto timed_fetch = [&](std::size_t body) {
    sim::Time start = sim.now();
    sim::Duration took{};
    tcp->connect(a, Endpoint{ip_b, 80}, [&, start, body](Result<TcpConnectionPtr> conn) {
      TcpMessage req;
      req.simulated_body_bytes = body;
      auto connection = conn.value();
      connection->send_request(std::move(req),
                               [&, start, connection](Result<TcpMessage>) {
                                 took = sim.now() - start;
                               });
    });
    sim.run();
    return took;
  };
  const auto small = timed_fetch(100);
  const auto large = timed_fetch(500'000);
  EXPECT_LT(small, large);
}

}  // namespace
}  // namespace ape::net

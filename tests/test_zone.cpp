// The RFC 1035 master-file parser and its integration with the
// authoritative server.
#include <gtest/gtest.h>

#include "dns/stub_resolver.hpp"
#include "dns/zone.hpp"

namespace ape::dns {
namespace {

constexpr const char* kSample = R"(
; example zone for tests
$ORIGIN example.com.
$TTL 600
@        IN A     10.0.0.1
www          A     10.0.0.2          ; relative name, default TTL
api      30  IN A     10.0.0.3      ; explicit TTL
alias        IN CNAME www            ; relative target
ext          CNAME cdn.example.net. ; absolute target
)";

TEST(ZoneParser, ParsesSampleZone) {
  const auto zone = parse_zone(kSample);
  ASSERT_TRUE(zone.ok()) << zone.error().message;
  EXPECT_EQ(zone.value().origin.to_string(), "example.com");
  EXPECT_EQ(zone.value().default_ttl, 600u);
  ASSERT_EQ(zone.value().records.size(), 5u);
}

TEST(ZoneParser, ResolvesRelativeAndAbsoluteNames) {
  const auto zone = parse_zone(kSample).value();
  EXPECT_EQ(zone.records[0].name.to_string(), "example.com");  // @
  EXPECT_EQ(zone.records[1].name.to_string(), "www.example.com");
  EXPECT_EQ(zone.records[3].target.to_string(), "www.example.com");
  EXPECT_EQ(zone.records[4].target.to_string(), "cdn.example.net");
}

TEST(ZoneParser, TtlDefaultsAndOverrides) {
  const auto zone = parse_zone(kSample).value();
  EXPECT_EQ(zone.records[1].ttl, 600u);  // default
  EXPECT_EQ(zone.records[2].ttl, 30u);   // explicit
}

TEST(ZoneParser, ParsesAddresses) {
  const auto zone = parse_zone(kSample).value();
  EXPECT_EQ(zone.records[2].address.to_string(), "10.0.0.3");
  EXPECT_EQ(zone.records[2].type, RrType::A);
  EXPECT_EQ(zone.records[3].type, RrType::Cname);
}

TEST(ZoneParser, CommentsAndBlankLinesIgnored) {
  const auto zone = parse_zone("$ORIGIN x.com.\n\n; only a comment\n@ A 1.2.3.4 ; tail\n");
  ASSERT_TRUE(zone.ok());
  EXPECT_EQ(zone.value().records.size(), 1u);
}

TEST(ZoneParser, RejectsRecordBeforeOrigin) {
  EXPECT_FALSE(parse_zone("www A 1.2.3.4\n").ok());
}

TEST(ZoneParser, RejectsMissingOrigin) {
  EXPECT_FALSE(parse_zone("; nothing here\n").ok());
}

TEST(ZoneParser, RejectsBadAddress) {
  const auto r = parse_zone("$ORIGIN x.com.\nwww A 1.2.3.999\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("line 2"), std::string::npos);
}

TEST(ZoneParser, RejectsUnsupportedType) {
  EXPECT_FALSE(parse_zone("$ORIGIN x.com.\nwww MX mail.x.com.\n").ok());
}

TEST(ZoneParser, RejectsTrailingGarbage) {
  EXPECT_FALSE(parse_zone("$ORIGIN x.com.\nwww A 1.2.3.4 extra\n").ok());
}

TEST(ZoneParser, RejectsBadTtlDirective) {
  EXPECT_FALSE(parse_zone("$TTL soon\n$ORIGIN x.com.\n").ok());
}

TEST(ZoneParser, ErrorsCarryLineNumbers) {
  const auto r = parse_zone("$ORIGIN x.com.\n\n\nbroken\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("line 4"), std::string::npos);
}

// ---- integration with the authoritative server --------------------------

struct ZoneServerFixture : ::testing::Test {
  sim::Simulator sim;
  net::Topology topo;
  std::unique_ptr<net::Network> net;
  std::unique_ptr<sim::ServiceQueue> cpu;
  std::unique_ptr<AuthoritativeDnsServer> adns;
  std::unique_ptr<StubResolver> stub;

  void SetUp() override {
    const auto client = topo.add_node("client");
    const auto server = topo.add_node("adns");
    topo.add_link(client, server, net::LinkSpec{sim::milliseconds(2), 1e9});
    net = std::make_unique<net::Network>(sim, topo);
    net->assign_ip(client, net::IpAddress::from_octets(10, 0, 0, 1));
    net->assign_ip(server, net::IpAddress::from_octets(10, 0, 0, 2));
    cpu = std::make_unique<sim::ServiceQueue>(sim, 2);
    adns = std::make_unique<AuthoritativeDnsServer>(*net, server, *cpu,
                                                    sim::microseconds(100));
    stub = std::make_unique<StubResolver>(
        *net, client, net::Endpoint{net::IpAddress::from_octets(10, 0, 0, 2), 53}, 40000);
  }
};

TEST_F(ZoneServerFixture, LoadZoneServesRecords) {
  const auto count = load_zone(*adns, kSample);
  ASSERT_TRUE(count.ok()) << count.error().message;
  EXPECT_EQ(count.value(), 5u);

  Result<ResolveResult> result = make_error<ResolveResult>("pending");
  stub->resolve(DnsName::parse("www.example.com").value(),
                [&](Result<ResolveResult> r) { result = std::move(r); });
  sim.run();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().address.to_string(), "10.0.0.2");
}

TEST_F(ZoneServerFixture, LoadedCnameChainsResolve) {
  ASSERT_TRUE(load_zone(*adns, kSample).ok());
  Result<ResolveResult> result = make_error<ResolveResult>("pending");
  stub->resolve(DnsName::parse("alias.example.com").value(),
                [&](Result<ResolveResult> r) { result = std::move(r); });
  sim.run();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().address.to_string(), "10.0.0.2");  // via www
}

TEST_F(ZoneServerFixture, LoadZonePropagatesParseErrors) {
  EXPECT_FALSE(load_zone(*adns, "www A 1.2.3.4").ok());
}

}  // namespace
}  // namespace ape::dns

#include <gtest/gtest.h>

#include "cache/block_list.hpp"
#include "cache/cache_stats.hpp"
#include "cache/fifo_policy.hpp"
#include "cache/lfu_policy.hpp"
#include "cache/lru_policy.hpp"
#include "cache/object_store.hpp"
#include "sim/rng.hpp"

namespace ape::cache {
namespace {

CacheEntry entry(const std::string& key, std::size_t size, double expires_s = 3600.0,
                 int priority = 1, std::uint32_t app = 0) {
  CacheEntry e;
  e.key = key;
  e.size_bytes = size;
  e.expires = sim::Time{sim::seconds(expires_s)};
  e.priority = priority;
  e.app_id = app;
  return e;
}

constexpr sim::Time kT0{};

// ------------------------------------------------------------ CacheStore

TEST(CacheStore, InsertAndGet) {
  CacheStore store(1000, std::make_unique<LruPolicy>());
  EXPECT_EQ(store.insert(entry("a", 100), kT0), CacheStore::InsertOutcome::Inserted);
  const CacheEntry* got = store.get("a", kT0);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->size_bytes, 100u);
  EXPECT_EQ(store.used_bytes(), 100u);
}

TEST(CacheStore, MissReturnsNull) {
  CacheStore store(1000, std::make_unique<LruPolicy>());
  EXPECT_EQ(store.get("nope", kT0), nullptr);
}

TEST(CacheStore, TooLargeRejected) {
  CacheStore store(1000, std::make_unique<LruPolicy>());
  EXPECT_EQ(store.insert(entry("big", 1001), kT0), CacheStore::InsertOutcome::TooLarge);
  EXPECT_EQ(store.used_bytes(), 0u);
}

TEST(CacheStore, ReplaceSameKeyFreesOldBytes) {
  CacheStore store(1000, std::make_unique<LruPolicy>());
  store.insert(entry("a", 400), kT0);
  store.insert(entry("a", 100), kT0);
  EXPECT_EQ(store.used_bytes(), 100u);
  EXPECT_EQ(store.entry_count(), 1u);
}

TEST(CacheStore, ExpiredEntriesLazilyErasedOnGet) {
  CacheStore store(1000, std::make_unique<LruPolicy>());
  store.insert(entry("a", 100, /*expires_s=*/1.0), kT0);
  EXPECT_NE(store.get("a", kT0), nullptr);
  EXPECT_EQ(store.get("a", sim::Time{sim::seconds(2.0)}), nullptr);
  EXPECT_EQ(store.used_bytes(), 0u);
}

TEST(CacheStore, PeekDoesNotTouchRecency) {
  CacheStore store(250, std::make_unique<LruPolicy>());
  store.insert(entry("a", 100), kT0);
  store.insert(entry("b", 100), kT0);
  // Peek "a" (no recency bump), then force an eviction: "a" must be victim.
  (void)store.peek("a", kT0);
  store.insert(entry("c", 100), kT0);
  EXPECT_EQ(store.get("a", kT0), nullptr);
  EXPECT_NE(store.get("b", kT0), nullptr);
}

TEST(CacheStore, SweepExpiredReclaims) {
  CacheStore store(1000, std::make_unique<LruPolicy>());
  store.insert(entry("a", 100, 1.0), kT0);
  store.insert(entry("b", 200, 100.0), kT0);
  EXPECT_EQ(store.sweep_expired(sim::Time{sim::seconds(2.0)}), 100u);
  EXPECT_EQ(store.entry_count(), 1u);
}

TEST(CacheStore, ClearEmptiesEverything) {
  CacheStore store(1000, std::make_unique<LruPolicy>());
  store.insert(entry("a", 100), kT0);
  store.insert(entry("b", 100), kT0);
  store.clear();
  EXPECT_EQ(store.entry_count(), 0u);
  EXPECT_EQ(store.used_bytes(), 0u);
}

TEST(CacheStore, RemovalListenerFires) {
  CacheStore store(250, std::make_unique<LruPolicy>());
  std::vector<std::string> removed;
  std::vector<RemovalCause> causes;
  store.set_removal_listener([&](const CacheEntry& e, RemovalCause cause) {
    removed.push_back(e.key);
    causes.push_back(cause);
  });
  store.insert(entry("a", 100), kT0);
  store.insert(entry("b", 100), kT0);
  store.insert(entry("c", 100), kT0);  // evicts "a"
  EXPECT_EQ(removed, std::vector<std::string>{"a"});
  EXPECT_EQ(causes.back(), RemovalCause::Evicted);
  store.erase("b");
  EXPECT_EQ(removed.back(), "b");
  EXPECT_EQ(causes.back(), RemovalCause::Erased);
  store.insert(entry("c", 120), kT0);  // same-key replacement
  EXPECT_EQ(removed.back(), "c");
  EXPECT_EQ(causes.back(), RemovalCause::Replaced);
}

TEST(CacheStore, AccessCountIncrements) {
  CacheStore store(1000, std::make_unique<LruPolicy>());
  store.insert(entry("a", 10), kT0);
  ASSERT_NE(store.get("a", kT0), nullptr);
  ASSERT_NE(store.get("a", kT0), nullptr);
  EXPECT_EQ(store.lookup_any("a")->access_count, 2u);
}

// Property: under random workloads, used_bytes stays consistent and never
// exceeds capacity, for every policy.
enum class PolicyKind { Lru, Fifo, Lfu };

std::unique_ptr<EvictionPolicy> make_policy(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::Lru: return std::make_unique<LruPolicy>();
    case PolicyKind::Fifo: return std::make_unique<FifoPolicy>();
    case PolicyKind::Lfu: return std::make_unique<LfuPolicy>();
  }
  return nullptr;
}

class PolicyPropertyTest : public ::testing::TestWithParam<std::tuple<PolicyKind, int>> {};

TEST_P(PolicyPropertyTest, CapacityInvariantUnderRandomOps) {
  const auto [kind, seed] = GetParam();
  CacheStore store(10'000, make_policy(kind));
  sim::Rng rng(static_cast<std::uint64_t>(seed));

  for (int op = 0; op < 2000; ++op) {
    const sim::Time now{sim::seconds(static_cast<double>(op))};
    const auto roll = rng.uniform_int(0, 9);
    const std::string key = "k" + std::to_string(rng.uniform_int(0, 40));
    if (roll < 5) {
      const auto size = static_cast<std::size_t>(rng.uniform_int(50, 3000));
      store.insert(entry(key, size, static_cast<double>(op) + rng.uniform_real(1.0, 500.0)),
                   now);
    } else if (roll < 8) {
      (void)store.get(key, now);
    } else if (roll < 9) {
      store.erase(key);
    } else {
      store.sweep_expired(now);
    }
    ASSERT_LE(store.used_bytes(), store.capacity_bytes());

    // used_bytes must equal the sum over entries.
    std::size_t total = 0;
    store.for_each([&](const CacheEntry& e) { total += e.size_bytes; });
    ASSERT_EQ(total, store.used_bytes());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, PolicyPropertyTest,
    ::testing::Combine(::testing::Values(PolicyKind::Lru, PolicyKind::Fifo, PolicyKind::Lfu),
                       ::testing::Values(1, 2, 3)));

// ------------------------------------------------------------- policies

TEST(LruPolicy, EvictsLeastRecentlyUsed) {
  CacheStore store(300, std::make_unique<LruPolicy>());
  store.insert(entry("a", 100), kT0);
  store.insert(entry("b", 100), kT0);
  store.insert(entry("c", 100), kT0);
  ASSERT_NE(store.get("a", kT0), nullptr);  // freshen "a"; "b" becomes LRU
  store.insert(entry("d", 100), kT0);
  EXPECT_NE(store.get("a", kT0), nullptr);
  EXPECT_EQ(store.get("b", kT0), nullptr);
  EXPECT_NE(store.get("c", kT0), nullptr);
  EXPECT_NE(store.get("d", kT0), nullptr);
}

TEST(LruPolicy, EvictsMultipleToFit) {
  CacheStore store(300, std::make_unique<LruPolicy>());
  store.insert(entry("a", 100), kT0);
  store.insert(entry("b", 100), kT0);
  store.insert(entry("c", 100), kT0);
  store.insert(entry("big", 250), kT0);  // needs "a" and "b" gone
  EXPECT_EQ(store.get("a", kT0), nullptr);
  EXPECT_EQ(store.get("b", kT0), nullptr);
  EXPECT_NE(store.get("big", kT0), nullptr);
  EXPECT_LE(store.used_bytes(), 300u);
}

TEST(FifoPolicy, EvictsOldestInsertion) {
  CacheStore store(300, std::make_unique<FifoPolicy>());
  store.insert(entry("a", 100), kT0);
  store.insert(entry("b", 100), kT0);
  store.insert(entry("c", 100), kT0);
  ASSERT_NE(store.get("a", kT0), nullptr);  // FIFO ignores access recency
  store.insert(entry("d", 100), kT0);
  EXPECT_EQ(store.get("a", kT0), nullptr);
  EXPECT_NE(store.get("b", kT0), nullptr);
}

TEST(LfuPolicy, EvictsLeastFrequentlyUsed) {
  CacheStore store(300, std::make_unique<LfuPolicy>());
  store.insert(entry("a", 100), kT0);
  store.insert(entry("b", 100), kT0);
  store.insert(entry("c", 100), kT0);
  ASSERT_NE(store.get("a", kT0), nullptr);
  ASSERT_NE(store.get("a", kT0), nullptr);
  ASSERT_NE(store.get("c", kT0), nullptr);
  store.insert(entry("d", 100), kT0);  // "b" has lowest frequency
  EXPECT_EQ(store.get("b", kT0), nullptr);
  EXPECT_NE(store.get("a", kT0), nullptr);
}

TEST(PolicyNames, AreDistinct) {
  EXPECT_EQ(LruPolicy{}.name(), "LRU");
  EXPECT_EQ(FifoPolicy{}.name(), "FIFO");
  EXPECT_EQ(LfuPolicy{}.name(), "LFU");
}

// ------------------------------------------------------------ BlockList

TEST(BlockList, ThresholdMatchesPaper) {
  BlockList bl;  // default 500 kB (Sec. IV-B1)
  EXPECT_EQ(bl.threshold_bytes(), 500'000u);
  EXPECT_FALSE(bl.should_block(500'000));
  EXPECT_TRUE(bl.should_block(500'001));
}

TEST(BlockList, BlockAndUnblock) {
  BlockList bl(100);
  bl.block("k1");
  EXPECT_TRUE(bl.contains("k1"));
  EXPECT_EQ(bl.size(), 1u);
  bl.unblock("k1");
  EXPECT_FALSE(bl.contains("k1"));
}

TEST(BlockList, ClearEmpties) {
  BlockList bl(100);
  bl.block("a");
  bl.block("b");
  bl.clear();
  EXPECT_EQ(bl.size(), 0u);
}

// ------------------------------------------------------- CacheStatistics

TEST(CacheStatistics, HitRatio) {
  CacheStatistics s;
  s.record_hit(1);
  s.record_hit(2);
  s.record_miss(1);
  s.record_delegation(2);
  EXPECT_EQ(s.lookups(), 4u);
  EXPECT_DOUBLE_EQ(s.hit_ratio(), 0.5);
}

TEST(CacheStatistics, HighPriorityRatioSeparate) {
  CacheStatistics s;
  s.record_hit(2);
  s.record_miss(2);
  s.record_hit(1);
  s.record_miss(1);
  s.record_miss(1);
  EXPECT_DOUBLE_EQ(s.high_priority_hit_ratio(), 0.5);
  EXPECT_DOUBLE_EQ(s.hit_ratio(), 0.4);
}

TEST(CacheStatistics, EmptyIsZero) {
  CacheStatistics s;
  EXPECT_DOUBLE_EQ(s.hit_ratio(), 0.0);
  EXPECT_DOUBLE_EQ(s.high_priority_hit_ratio(), 0.0);
}

TEST(CacheStatistics, ResetClears) {
  CacheStatistics s;
  s.record_hit(2);
  s.reset();
  EXPECT_EQ(s.lookups(), 0u);
}

TEST(CacheStatistics, DelegationsCountAsMisses) {
  CacheStatistics s;
  s.record_delegation(1);
  EXPECT_EQ(s.misses(), 1u);
  EXPECT_EQ(s.delegations(), 1u);
}

}  // namespace
}  // namespace ape::cache

// URL hashing, the DNS-Cache RR codec (paper Fig. 8), the frequency
// tracker, and the declarative programming model.
#include <gtest/gtest.h>

#include "core/dns_cache_record.hpp"
#include "core/frequency_tracker.hpp"
#include "core/programming_model.hpp"
#include "core/url_hash.hpp"
#include "dns/codec.hpp"

namespace ape::core {
namespace {

// -------------------------------------------------------------- UrlHash

TEST(UrlHash, DeterministicAndCompileTime) {
  constexpr UrlHash h = hash_url("http://api.example.com/obj");
  EXPECT_EQ(h, hash_url("http://api.example.com/obj"));
  static_assert(hash_url("a") != hash_url("b"));
}

TEST(UrlHash, DifferentUrlsDiffer) {
  EXPECT_NE(hash_url("http://a.com/x"), hash_url("http://a.com/y"));
  EXPECT_NE(hash_url("http://a.com/x"), hash_url("http://b.com/x"));
}

TEST(UrlHash, EmptyIsOffsetBasis) {
  EXPECT_EQ(hash_url(""), 14695981039346656037ull);
}

TEST(UrlHash, ToStringIs16HexDigits) {
  const std::string text = hash_to_string(hash_url("http://x/y"));
  EXPECT_EQ(text.size(), 16u);
  EXPECT_EQ(text.find_first_not_of("0123456789abcdef"), std::string::npos);
}

TEST(UrlHash, ToStringZeroPadded) {
  EXPECT_EQ(hash_to_string(0x1), "0000000000000001");
  EXPECT_EQ(hash_to_string(0xFFFFFFFFFFFFFFFFull), "ffffffffffffffff");
}

// ------------------------------------------------------ DNS-Cache RDATA

TEST(DnsCacheRecord, RdataRoundTrip) {
  std::vector<CacheLookupEntry> entries{
      {hash_url("http://a/1"), CacheFlag::CacheHit},
      {hash_url("http://a/2"), CacheFlag::Delegation},
      {hash_url("http://a/3"), CacheFlag::CacheMiss},
  };
  const auto rdata = encode_cache_rdata(entries);
  EXPECT_EQ(rdata.size(), 27u);  // 3 x (8 + 1) bytes per Fig. 8
  const auto decoded = decode_cache_rdata(rdata);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), entries);
}

TEST(DnsCacheRecord, EmptyRdataIsValid) {
  const auto decoded = decode_cache_rdata({});
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().empty());
}

TEST(DnsCacheRecord, RejectsNonTupleMultiple) {
  EXPECT_FALSE(decode_cache_rdata(std::vector<std::uint8_t>(10, 0)).ok());
}

TEST(DnsCacheRecord, RejectsUnknownFlag) {
  std::vector<std::uint8_t> rdata(9, 0);
  rdata[8] = 7;  // flags are 0..2
  EXPECT_FALSE(decode_cache_rdata(rdata).ok());
}

TEST(DnsCacheRecord, RequestRrHasType300AndRequestClass) {
  const auto domain = dns::DnsName::parse("api.example.com").value();
  const auto rr = make_cache_request_rr(domain, {{42, CacheFlag::Delegation}});
  EXPECT_EQ(static_cast<std::uint16_t>(rr.type), 300u);
  EXPECT_EQ(rr.rr_class, static_cast<std::uint16_t>(dns::RrClass::CacheRequest));
  EXPECT_EQ(rr.ttl, 0u);
  EXPECT_EQ(rr.name, domain);
}

TEST(DnsCacheRecord, ExtractFromFullMessage) {
  const auto domain = dns::DnsName::parse("api.example.com").value();
  dns::DnsMessage msg;
  msg.header.qr = true;
  msg.additionals.push_back(
      make_cache_response_rr(domain, {{7, CacheFlag::CacheHit}, {9, CacheFlag::CacheMiss}}));

  // Survive a wire round trip too.
  const auto decoded = dns::decode(dns::encode(msg));
  ASSERT_TRUE(decoded.ok());
  const auto view = extract_dns_cache(decoded.value());
  ASSERT_TRUE(view.ok());
  EXPECT_FALSE(view.value().is_request);
  EXPECT_EQ(view.value().domain, domain);
  ASSERT_EQ(view.value().entries.size(), 2u);
  EXPECT_EQ(view.value().entries[0].hash, 7u);
  EXPECT_EQ(view.value().entries[0].flag, CacheFlag::CacheHit);
}

TEST(DnsCacheRecord, ExtractFailsWithoutRr) {
  dns::DnsMessage msg;
  EXPECT_FALSE(extract_dns_cache(msg).ok());
}

TEST(DnsCacheRecord, ExtractFailsOnUnknownClass) {
  const auto domain = dns::DnsName::parse("x.com").value();
  dns::DnsMessage msg;
  auto rr = make_cache_request_rr(domain, {});
  rr.rr_class = 1;  // IN, not REQUEST/RESPONSE
  msg.additionals.push_back(rr);
  EXPECT_FALSE(extract_dns_cache(msg).ok());
}

TEST(DnsCacheRecord, FlagNames) {
  EXPECT_STREQ(to_string(CacheFlag::CacheHit), "Cache-Hit");
  EXPECT_STREQ(to_string(CacheFlag::CacheMiss), "Cache-Miss");
  EXPECT_STREQ(to_string(CacheFlag::Delegation), "Delegation");
}

// Property: arbitrary entry lists round-trip through the codec.
class DnsCacheRdataProperty : public ::testing::TestWithParam<int> {};

TEST_P(DnsCacheRdataProperty, RoundTrips) {
  std::uint64_t x = static_cast<std::uint64_t>(GetParam()) * 0x9E3779B9u + 1;
  std::vector<CacheLookupEntry> entries;
  for (int i = 0; i < GetParam(); ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    entries.push_back(CacheLookupEntry{x, static_cast<CacheFlag>(x % 3)});
  }
  const auto decoded = decode_cache_rdata(encode_cache_rdata(entries));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), entries);
}

INSTANTIATE_TEST_SUITE_P(Sizes, DnsCacheRdataProperty,
                         ::testing::Values(0, 1, 2, 5, 16, 64, 200));

// ---------------------------------------------------- FrequencyTracker

TEST(FrequencyTracker, UnknownAppIsZero) {
  FrequencyTracker t(0.7, sim::seconds(60.0));
  EXPECT_DOUBLE_EQ(t.frequency(1, sim::Time{}), 0.0);
}

TEST(FrequencyTracker, LiveCountBeforeFirstWindowCloses) {
  FrequencyTracker t(0.7, sim::seconds(60.0));
  t.record_request(1, sim::Time{sim::seconds(1.0)});
  t.record_request(1, sim::Time{sim::seconds(2.0)});
  EXPECT_DOUBLE_EQ(t.frequency(1, sim::Time{sim::seconds(3.0)}), 2.0);
}

TEST(FrequencyTracker, PaperEwmaAcrossWindows) {
  // Windows anchor at the app's first request (t=0 here), 60 s wide.
  FrequencyTracker t(0.7, sim::seconds(60.0));
  // Window [0, 60): 3 requests.
  for (int i = 0; i < 3; ++i) t.record_request(1, sim::Time{sim::seconds(10.0 * i)});
  // Window [60, 120): 5 requests.
  for (int i = 0; i < 5; ++i) {
    t.record_request(1, sim::Time{sim::seconds(61.0 + i)});
  }
  // After w1: R = 0.3*0 + 0.7*3 = 2.1.  After w2: R = 0.3*2.1 + 0.7*5 = 4.13.
  const double r = t.frequency(1, sim::Time{sim::seconds(121.0)});
  EXPECT_NEAR(r, 0.3 * (0.7 * 3.0) + 0.7 * 5.0, 1e-9);
}

TEST(FrequencyTracker, IdleWindowsDecayTowardZero) {
  FrequencyTracker t(0.7, sim::seconds(60.0));
  for (int i = 0; i < 10; ++i) t.record_request(1, sim::Time{sim::seconds(i * 6.0)});
  const double active = t.frequency(1, sim::Time{sim::seconds(61.0)});
  EXPECT_GT(active, 0.0);
  const double after_idle = t.frequency(1, sim::Time{sim::seconds(601.0)});
  EXPECT_LT(after_idle, active * 0.01);
}

TEST(FrequencyTracker, AppsAreIndependent) {
  FrequencyTracker t(0.7, sim::seconds(60.0));
  t.record_request(1, sim::Time{sim::seconds(1.0)});
  t.record_request(2, sim::Time{sim::seconds(1.0)});
  t.record_request(2, sim::Time{sim::seconds(2.0)});
  EXPECT_DOUBLE_EQ(t.frequency(1, sim::Time{sim::seconds(3.0)}), 1.0);
  EXPECT_DOUBLE_EQ(t.frequency(2, sim::Time{sim::seconds(3.0)}), 2.0);
  EXPECT_EQ(t.tracked_apps(), 2u);
}

TEST(FrequencyTracker, SteadyRateConverges) {
  FrequencyTracker t(0.7, sim::seconds(60.0));
  // 3 per minute for 30 minutes.
  for (int i = 0; i < 90; ++i) t.record_request(1, sim::Time{sim::seconds(i * 20.0)});
  EXPECT_NEAR(t.frequency(1, sim::Time{sim::seconds(1801.0)}), 3.0, 0.2);
}

// ----------------------------------------------------- programming model

TEST(ProgrammingModel, AnnotationsRegisterWithRuntime) {
  AnnotatedApp app("demo", 9);
  app.cacheable_field("movieId", "http://api.demo/id", 2, 30)
      .cacheable_field("thumb", "http://api.demo/thumb", 2, 60)
      .cacheable_field("plot", "http://api.demo/plot", 1, 30);
  EXPECT_EQ(app.annotation_count(), 3u);

  // A minimal runtime hosting nothing; registration is all we check.
  sim::Simulator sim;
  net::Topology topo;
  net::Network network(sim, topo);
  const auto node = topo.add_node("phone");
  network.assign_ip(node, net::IpAddress::from_octets(10, 0, 0, 1));
  net::TcpTransport tcp(network);
  ClientRuntime runtime(network, tcp, node, 40000, {});

  app.attach(runtime);
  EXPECT_EQ(runtime.cacheable_count(), 3u);
  const CacheableSpec* spec = runtime.find_cacheable("http://api.demo/id");
  ASSERT_NE(spec, nullptr);
  EXPECT_EQ(spec->priority, 2);
  EXPECT_EQ(spec->ttl_minutes, 30u);
  EXPECT_EQ(spec->app, 9u);
  EXPECT_EQ(spec->ttl_seconds(), 1800u);
}

TEST(ProgrammingModel, EffortComparisonFavorsAnnotations) {
  AnnotatedApp app("MovieTrailer", 1);
  for (int i = 0; i < 5; ++i) {
    app.cacheable_field("f" + std::to_string(i), "http://api/obj" + std::to_string(i), 1, 30);
  }
  const ProgrammingEffort effort = measure_effort(app, /*request_sites=*/10);
  EXPECT_EQ(effort.annotation_locs, 5u);
  EXPECT_EQ(effort.api_locs, 30u);
  EXPECT_TRUE(effort.rewrites_logic);
  EXPECT_LT(effort.annotation_locs, effort.api_locs);
}

}  // namespace
}  // namespace ape::core

#include <gtest/gtest.h>

#include "http/edge_server.hpp"
#include "http/endpoint.hpp"
#include "http/message.hpp"
#include "http/origin_server.hpp"
#include "http/url.hpp"

namespace ape::http {
namespace {

// ------------------------------------------------------------------ Url

TEST(Url, ParsesFullForm) {
  const auto url = Url::parse("http://api.example.com:8080/path/obj?x=1&y=2");
  ASSERT_TRUE(url.ok());
  EXPECT_EQ(url.value().scheme, "http");
  EXPECT_EQ(url.value().host, "api.example.com");
  EXPECT_EQ(url.value().port, 8080);
  EXPECT_EQ(url.value().path, "/path/obj");
  EXPECT_EQ(url.value().query, "x=1&y=2");
}

TEST(Url, DefaultsSchemeAndPath) {
  const auto url = Url::parse("example.com");
  ASSERT_TRUE(url.ok());
  EXPECT_EQ(url.value().scheme, "http");
  EXPECT_EQ(url.value().path, "/");
  EXPECT_EQ(url.value().effective_port(), 80);
}

TEST(Url, HttpsDefaultPort) {
  const auto url = Url::parse("https://secure.example.com/x");
  ASSERT_TRUE(url.ok());
  EXPECT_EQ(url.value().effective_port(), 443);
}

TEST(Url, BaseStripsQuery) {
  // The paper's cache identity: "basic URLs without parameters" (IV-A).
  const auto url = Url::parse("http://h.com/obj?session=abc123");
  ASSERT_TRUE(url.ok());
  EXPECT_EQ(url.value().base(), "http://h.com/obj");
  EXPECT_EQ(url.value().to_string(), "http://h.com/obj?session=abc123");
}

TEST(Url, HostLowercased) {
  EXPECT_EQ(Url::parse("http://API.Example.COM/x").value().host, "api.example.com");
}

TEST(Url, RejectsMalformed) {
  EXPECT_FALSE(Url::parse("ftp://x.com/a").ok());
  EXPECT_FALSE(Url::parse("http:///nohost").ok());
  EXPECT_FALSE(Url::parse("http://h.com:notaport/").ok());
  EXPECT_FALSE(Url::parse("http://h.com:0/").ok());
  EXPECT_FALSE(Url::parse("").ok());
}

TEST(Url, RoundTripEquality) {
  const auto a = Url::parse("http://h.com/obj?q=1").value();
  const auto b = Url::parse(a.to_string()).value();
  EXPECT_EQ(a, b);
}

// ------------------------------------------------------------- Messages

TEST(HttpMessage, RequestRoundTrip) {
  HttpRequest req;
  req.method = "GET";
  req.url = Url::parse("http://h.example/obj?a=1").value();
  req.headers.emplace_back("X-Ape-Priority", "2");
  req.simulated_body_bytes = 12345;

  const auto parsed = HttpRequest::from_tcp(req.to_tcp());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().method, "GET");
  EXPECT_EQ(parsed.value().url.base(), "http://h.example/obj");
  EXPECT_EQ(parsed.value().url.query, "a=1");
  EXPECT_EQ(parsed.value().simulated_body_bytes, 12345u);
  ASSERT_NE(find_header(parsed.value().headers, "X-Ape-Priority"), nullptr);
  EXPECT_EQ(*find_header(parsed.value().headers, "X-Ape-Priority"), "2");
}

TEST(HttpMessage, ResponseRoundTrip) {
  HttpResponse resp;
  resp.status = 200;
  resp.headers.emplace_back("X-Cache", "AP-HIT");
  resp.body = "inline";
  resp.simulated_body_bytes = 5000;

  const auto parsed = HttpResponse::from_tcp(resp.to_tcp());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().status, 200);
  EXPECT_EQ(parsed.value().body, "inline");
  EXPECT_EQ(parsed.value().total_body_bytes(), 5006u);
  EXPECT_TRUE(parsed.value().ok());
}

TEST(HttpMessage, WireSizeIncludesSimulatedBody) {
  HttpResponse small = make_status_response(200);
  HttpResponse big = make_status_response(200);
  big.simulated_body_bytes = 100'000;
  EXPECT_GT(big.to_tcp().wire_size(), small.to_tcp().wire_size() + 99'000);
}

TEST(HttpMessage, FindHeaderIsCaseInsensitive) {
  Headers headers{{"Content-Type", "text/plain"}};
  EXPECT_NE(find_header(headers, "content-type"), nullptr);
  EXPECT_EQ(find_header(headers, "missing"), nullptr);
}

TEST(HttpMessage, FromTcpRejectsGarbage) {
  net::TcpMessage junk;
  junk.bytes = {0x01, 0x02, 0x03};
  EXPECT_FALSE(HttpRequest::from_tcp(junk).ok());
  EXPECT_FALSE(HttpResponse::from_tcp(junk).ok());
}

TEST(HttpMessage, StatusHelpers) {
  EXPECT_TRUE(make_status_response(204).ok());
  EXPECT_FALSE(make_status_response(404).ok());
  EXPECT_FALSE(make_status_response(502).ok());
}

// ------------------------------------------------------ servers/clients

struct HttpFixture : ::testing::Test {
  sim::Simulator sim;
  net::Topology topo;
  std::unique_ptr<net::Network> net;
  std::unique_ptr<net::TcpTransport> tcp;
  net::NodeId client{}, server{}, origin{};
  net::IpAddress server_ip = net::IpAddress::from_octets(10, 0, 0, 2);
  net::IpAddress origin_ip = net::IpAddress::from_octets(10, 0, 0, 3);
  std::unique_ptr<sim::ServiceQueue> server_cpu, origin_cpu;

  void SetUp() override {
    client = topo.add_node("client");
    server = topo.add_node("server");
    origin = topo.add_node("origin");
    topo.add_link(client, server, net::LinkSpec{sim::milliseconds(5), 1e9});
    topo.add_link(server, origin, net::LinkSpec{sim::milliseconds(20), 1e9});
    net = std::make_unique<net::Network>(sim, topo);
    net->assign_ip(client, net::IpAddress::from_octets(10, 0, 0, 1));
    net->assign_ip(server, server_ip);
    net->assign_ip(origin, origin_ip);
    tcp = std::make_unique<net::TcpTransport>(*net);
    server_cpu = std::make_unique<sim::ServiceQueue>(sim, 2);
    origin_cpu = std::make_unique<sim::ServiceQueue>(sim, 2);
  }

  Result<HttpResponse> fetch(HttpClient& http, const std::string& url,
                             FetchTiming* timing = nullptr) {
    Result<HttpResponse> out = make_error<HttpResponse>("not called");
    HttpRequest req;
    req.url = Url::parse(url).value();
    http.fetch(net::Endpoint{server_ip, net::kHttpPort}, std::move(req),
               [&out, timing](Result<HttpResponse> r, FetchTiming t) {
                 out = std::move(r);
                 if (timing) *timing = t;
               });
    sim.run();
    return out;
  }
};

TEST_F(HttpFixture, ServerRoutesByLongestPrefix) {
  HttpServer srv(*tcp, server, net::kHttpPort, *server_cpu);
  srv.route("/api", [](const HttpRequest&, net::Endpoint, HttpServer::Responder r) {
    r(make_status_response(200, "api"));
  });
  srv.route("/api/v2", [](const HttpRequest&, net::Endpoint, HttpServer::Responder r) {
    r(make_status_response(200, "v2"));
  });
  HttpClient http(*tcp, client);
  EXPECT_EQ(fetch(http, "http://s/api/v2/obj").value().body, "v2");
  EXPECT_EQ(fetch(http, "http://s/api/other").value().body, "api");
}

TEST_F(HttpFixture, FallbackAndNoRoute) {
  HttpServer srv(*tcp, server, net::kHttpPort, *server_cpu);
  HttpClient http(*tcp, client);
  EXPECT_EQ(fetch(http, "http://s/missing").value().status, 404);
  srv.set_fallback([](const HttpRequest&, net::Endpoint, HttpServer::Responder r) {
    r(make_status_response(200, "fallback"));
  });
  EXPECT_EQ(fetch(http, "http://s/missing").value().body, "fallback");
}

TEST_F(HttpFixture, FetchTimingMeasuresConnectAndFirstByte) {
  HttpServer srv(*tcp, server, net::kHttpPort, *server_cpu);
  srv.set_fallback([](const HttpRequest&, net::Endpoint, HttpServer::Responder r) {
    r(make_status_response(200));
  });
  HttpClient http(*tcp, client);
  FetchTiming timing;
  ASSERT_TRUE(fetch(http, "http://s/x", &timing).ok());
  // Connect: one RTT = 10 ms.  First byte: two RTTs + service.
  EXPECT_EQ(timing.connect, sim::milliseconds(10));
  EXPECT_GE(timing.first_byte, sim::milliseconds(20));
  EXPECT_LT(timing.first_byte, sim::milliseconds(25));
}

TEST_F(HttpFixture, OriginServesCatalogObjects) {
  OriginServer origin_srv(*tcp, server, *server_cpu);
  ObjectSpec spec;
  spec.base_url = "http://files.example/obj";
  spec.size_bytes = 48'000;
  spec.ttl_seconds = 1200;
  spec.priority = 2;
  spec.app_id = 7;
  spec.extra_latency = sim::milliseconds(25);
  origin_srv.catalog().add(spec);

  HttpClient http(*tcp, client);
  FetchTiming timing;
  const auto resp = fetch(http, "http://files.example/obj?token=zzz", &timing);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.value().simulated_body_bytes, 48'000u);
  EXPECT_EQ(*find_header(resp.value().headers, "X-Object-TTL"), "1200");
  EXPECT_EQ(*find_header(resp.value().headers, "X-Object-Priority"), "2");
  EXPECT_EQ(*find_header(resp.value().headers, "X-Object-App"), "7");
  // Extra latency delayed the response.
  EXPECT_GE(timing.first_byte, sim::milliseconds(45));
}

TEST_F(HttpFixture, OriginReturns404ForUnknown) {
  OriginServer origin_srv(*tcp, server, *server_cpu);
  HttpClient http(*tcp, client);
  EXPECT_EQ(fetch(http, "http://files.example/nope").value().status, 404);
}

TEST_F(HttpFixture, EdgeServesPreloadedAsHit) {
  EdgeCacheServer edge(*tcp, server, *server_cpu);
  ObjectSpec spec;
  spec.base_url = "http://app.example/obj";
  spec.size_bytes = 10'000;
  edge.host(spec);

  HttpClient http(*tcp, client);
  const auto resp = fetch(http, "http://app.example/obj");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(*find_header(resp.value().headers, "X-Cache"), "HIT");
  EXPECT_EQ(edge.hits(), 1u);
}

TEST_F(HttpFixture, EdgeMissWithoutUpstreamIs404) {
  EdgeCacheServer edge(*tcp, server, *server_cpu);
  HttpClient http(*tcp, client);
  EXPECT_EQ(fetch(http, "http://app.example/missing").value().status, 404);
  EXPECT_EQ(edge.misses(), 1u);
}

TEST_F(HttpFixture, EdgeMissFetchesFromOriginAndIngests) {
  OriginServer origin_srv(*tcp, origin, *origin_cpu);
  ObjectSpec spec;
  spec.base_url = "http://app.example/far";
  spec.size_bytes = 7'000;
  spec.ttl_seconds = 900;
  origin_srv.catalog().add(spec);

  EdgeCacheServer edge(*tcp, server, *server_cpu);
  edge.set_upstream(net::Endpoint{origin_ip, net::kHttpPort});

  HttpClient http(*tcp, client);
  const auto first = fetch(http, "http://app.example/far");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value().simulated_body_bytes, 7'000u);
  EXPECT_EQ(edge.misses(), 1u);

  const auto second = fetch(http, "http://app.example/far");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(edge.hits(), 1u);  // now served locally
  EXPECT_NE(edge.catalog().find("http://app.example/far"), nullptr);
}

TEST_F(HttpFixture, EdgeUpstreamFailurePropagatesAs502) {
  EdgeCacheServer edge(*tcp, server, *server_cpu);
  edge.set_upstream(net::Endpoint{origin_ip, net::kHttpPort});  // nothing listens
  HttpClient http(*tcp, client);
  EXPECT_EQ(fetch(http, "http://app.example/ghost").value().status, 502);
}

TEST_F(HttpFixture, ServiceCostScalesWithBytes) {
  ServiceCost cost;
  cost.base = sim::microseconds(100);
  cost.per_kilobyte = sim::microseconds(10);
  EXPECT_EQ(cost.for_bytes(0), sim::microseconds(100));
  EXPECT_EQ(cost.for_bytes(10 * 1024), sim::microseconds(200));
}

}  // namespace
}  // namespace ape::http

// Windowed telemetry (DESIGN.md §5g): the Timeline delta cursor, the SLO
// rule grammar + alert state machine, the telemetry wire codec, and the
// end-to-end scrape path through the testbed.
#include <gtest/gtest.h>

#include <sstream>

#include "obs/export.hpp"
#include "obs/slo.hpp"
#include "obs/timeline.hpp"
#include "testbed/experiment.hpp"
#include "testbed/telemetry.hpp"
#include "workload/real_apps.hpp"

namespace ape::obs {
namespace {

// ------------------------------------------------------------- Timeline

TEST(Timeline, DisabledCaptureReturnsNull) {
  MetricsRegistry m;
  Timeline timeline;
  EXPECT_EQ(timeline.capture(m, sim::Time{sim::seconds(30.0)}), nullptr);
  EXPECT_TRUE(timeline.windows().empty());
}

TEST(Timeline, CaptureRecordsCounterDeltasPerWindow) {
  MetricsRegistry m;
  Timeline timeline;
  timeline.set_enabled(true);

  m.counter("hits").add(5);
  const auto* w0 = timeline.capture(m, sim::Time{sim::seconds(30.0)});
  ASSERT_NE(w0, nullptr);
  EXPECT_EQ(w0->index, 0u);
  EXPECT_EQ(w0->start, sim::Time{});
  EXPECT_EQ(w0->end, sim::Time{sim::seconds(30.0)});
  EXPECT_EQ(w0->counter_deltas.at("hits"), 5);

  m.counter("hits").add(2);
  m.counter("misses").add(1);
  const auto* w1 = timeline.capture(m, sim::Time{sim::seconds(60.0)});
  ASSERT_NE(w1, nullptr);
  EXPECT_EQ(w1->start, sim::Time{sim::seconds(30.0)});
  EXPECT_EQ(w1->counter_deltas.at("hits"), 2);
  EXPECT_EQ(w1->counter_deltas.at("misses"), 1);

  EXPECT_TRUE(timeline.reconcile(m).empty());
}

TEST(Timeline, ZeroDeltasAreOmitted) {
  MetricsRegistry m;
  Timeline timeline;
  timeline.set_enabled(true);

  m.counter("hits").add(3);
  timeline.capture(m, sim::Time{sim::seconds(30.0)});
  // No change in the second window: the counter must not appear at all.
  const auto* w1 = timeline.capture(m, sim::Time{sim::seconds(60.0)});
  EXPECT_EQ(w1->counter_deltas.count("hits"), 0u);
  EXPECT_TRUE(timeline.reconcile(m).empty());
}

TEST(Timeline, SetStyleCountersMayShrink) {
  MetricsRegistry m;
  Timeline timeline;
  timeline.set_enabled(true);

  m.counter("cache.entries").set(10);
  timeline.capture(m, sim::Time{sim::seconds(30.0)});
  m.counter("cache.entries").set(4);
  const auto* w1 = timeline.capture(m, sim::Time{sim::seconds(60.0)});
  EXPECT_EQ(w1->counter_deltas.at("cache.entries"), -6);
  // Deltas still sum to the end-of-run value: 10 + (-6) == 4.
  EXPECT_TRUE(timeline.reconcile(m).empty());
}

TEST(Timeline, HistogramSamplesLandInExactlyOneWindow) {
  MetricsRegistry m;
  Timeline timeline;
  timeline.set_enabled(true);

  auto& h = m.histogram("lat_ms", "ms");
  h.record(1.0);
  h.record(3.0);
  const auto* w0 = timeline.capture(m, sim::Time{sim::seconds(30.0)});
  ASSERT_EQ(w0->histograms.count("lat_ms"), 1u);
  EXPECT_EQ(w0->histograms.at("lat_ms").count, 2u);
  EXPECT_DOUBLE_EQ(w0->histograms.at("lat_ms").mean, 2.0);
  EXPECT_DOUBLE_EQ(w0->histograms.at("lat_ms").min, 1.0);
  EXPECT_DOUBLE_EQ(w0->histograms.at("lat_ms").max, 3.0);
  EXPECT_EQ(w0->histograms.at("lat_ms").unit, "ms");

  // Window 1 sees only the new sample — not the three cumulative ones.
  h.record(100.0);
  const auto* w1 = timeline.capture(m, sim::Time{sim::seconds(60.0)});
  ASSERT_EQ(w1->histograms.count("lat_ms"), 1u);
  EXPECT_EQ(w1->histograms.at("lat_ms").count, 1u);
  EXPECT_DOUBLE_EQ(w1->histograms.at("lat_ms").p50, 100.0);

  // Window 2 has no new samples — the histogram is absent.
  const auto* w2 = timeline.capture(m, sim::Time{sim::seconds(90.0)});
  EXPECT_EQ(w2->histograms.count("lat_ms"), 0u);

  EXPECT_TRUE(timeline.reconcile(m).empty());
}

TEST(Timeline, GaugesCarryLastValue) {
  MetricsRegistry m;
  Timeline timeline;
  timeline.set_enabled(true);

  m.gauge("ratio").set(0.25);
  const auto* w0 = timeline.capture(m, sim::Time{sim::seconds(30.0)});
  EXPECT_DOUBLE_EQ(w0->gauges.at("ratio"), 0.25);
  m.gauge("ratio").set(0.75);
  const auto* w1 = timeline.capture(m, sim::Time{sim::seconds(60.0)});
  EXPECT_DOUBLE_EQ(w1->gauges.at("ratio"), 0.75);
}

TEST(Timeline, ReconcileDetectsPostCaptureMutation) {
  MetricsRegistry m;
  Timeline timeline;
  timeline.set_enabled(true);

  m.counter("hits").add(5);
  timeline.capture(m, sim::Time{sim::seconds(30.0)});
  // Mutating after the last capture breaks the partition — reconcile must
  // say so (the fix is to flush: capture once more).
  m.counter("hits").add(1);
  EXPECT_FALSE(timeline.reconcile(m).empty());
  timeline.capture(m, sim::Time{sim::seconds(60.0)});
  EXPECT_TRUE(timeline.reconcile(m).empty());
}

TEST(Timeline, CsvExportEmitsPerWindowRows) {
  MetricsRegistry m;
  Timeline timeline;
  timeline.set_enabled(true);
  m.counter("hits").add(2);
  m.gauge("ratio").set(0.5);
  m.histogram("lat_ms", "ms").record(7.0);
  timeline.capture(m, sim::Time{sim::seconds(30.0)});

  std::ostringstream out;
  write_timeseries_csv(out, timeline);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("window,start_us,end_us,kind,name,field,value"), std::string::npos);
  EXPECT_NE(csv.find("counter,hits,delta,2"), std::string::npos);
  EXPECT_NE(csv.find("gauge,ratio,value,0.5"), std::string::npos);
  EXPECT_NE(csv.find("histogram,lat_ms,count,1"), std::string::npos);
}

// ------------------------------------------------------------ SLO rules

TEST(SloParse, FullGrammarRoundTrips) {
  const auto rule =
      parse_slo_rule("cache-warmup: ap.cache.hit_ratio >= 0.6 over 5 windows resolve 2");
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(rule.value().name, "cache-warmup");
  EXPECT_EQ(rule.value().metric, "ap.cache.hit_ratio");
  EXPECT_EQ(rule.value().field, SloField::Value);
  EXPECT_EQ(rule.value().op, SloOp::Ge);
  EXPECT_DOUBLE_EQ(rule.value().threshold, 0.6);
  EXPECT_EQ(rule.value().for_windows, 5u);
  EXPECT_EQ(rule.value().resolve_windows, 2u);

  const auto again = parse_slo_rule(rule.value().text());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().text(), rule.value().text());
}

TEST(SloParse, HistogramFieldAndUnitSuffix) {
  const auto rule = parse_slo_rule("client.total_ms p99 <= 40ms over 2 windows");
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(rule.value().field, SloField::P99);
  EXPECT_EQ(rule.value().op, SloOp::Le);
  EXPECT_DOUBLE_EQ(rule.value().threshold, 40.0);
  // Default name identifies metric + field.
  EXPECT_EQ(rule.value().name, "client.total_ms.p99");
}

TEST(SloParse, RejectsMalformedRules) {
  EXPECT_FALSE(parse_slo_rule("").ok());
  EXPECT_FALSE(parse_slo_rule("metric >= ").ok());
  EXPECT_FALSE(parse_slo_rule("metric about 0.5 over 1 windows").ok());
  EXPECT_FALSE(parse_slo_rule("metric >= abc over 1 windows").ok());
  EXPECT_FALSE(parse_slo_rule("metric >= 1 over 0 windows").ok());
  EXPECT_FALSE(parse_slo_rule("metric >= 1 over 1 windows trailing junk").ok());
}

TimelineWindow window_with(std::uint64_t index, const std::string& gauge, double value) {
  TimelineWindow w;
  w.index = index;
  w.gauges[gauge] = value;
  return w;
}

TEST(SloEvaluator, PendingThenFiringThenResolved) {
  SloEvaluator slo;
  slo.add_rule(parse_slo_rule("warm: ratio >= 0.6 over 2 windows resolve 2").value());

  slo.observe(window_with(0, "ratio", 0.3));  // violation 1 -> Pending
  EXPECT_EQ(slo.state("warm"), AlertState::Pending);
  slo.observe(window_with(1, "ratio", 0.4));  // violation 2 -> Firing
  EXPECT_EQ(slo.state("warm"), AlertState::Firing);
  EXPECT_EQ(slo.fired(), 1u);
  slo.observe(window_with(2, "ratio", 0.9));  // hold 1 — still firing
  EXPECT_EQ(slo.state("warm"), AlertState::Firing);
  slo.observe(window_with(3, "ratio", 0.9));  // hold 2 -> resolved
  EXPECT_EQ(slo.state("warm"), AlertState::Inactive);
  EXPECT_EQ(slo.resolved(), 1u);

  // Transition log: Inactive->Pending->Firing->Inactive, windows 0,1,3.
  ASSERT_EQ(slo.transitions().size(), 3u);
  EXPECT_EQ(slo.transitions()[0].window, 0u);
  EXPECT_EQ(slo.transitions()[1].to, AlertState::Firing);
  EXPECT_EQ(slo.transitions()[2].window, 3u);
}

TEST(SloEvaluator, SingleWindowRuleFiresImmediately) {
  SloEvaluator slo;
  slo.add_rule(parse_slo_rule("ratio >= 0.6 over 1 windows").value());
  slo.observe(window_with(0, "ratio", 0.1));
  EXPECT_EQ(slo.state("ratio"), AlertState::Firing);
  ASSERT_EQ(slo.transitions().size(), 1u);
  EXPECT_EQ(slo.transitions()[0].from, AlertState::Inactive);
  EXPECT_EQ(slo.transitions()[0].to, AlertState::Firing);
}

TEST(SloEvaluator, PendingRecoversWithoutFiring) {
  SloEvaluator slo;
  slo.add_rule(parse_slo_rule("warm: ratio >= 0.6 over 3 windows").value());
  slo.observe(window_with(0, "ratio", 0.1));
  EXPECT_EQ(slo.state("warm"), AlertState::Pending);
  slo.observe(window_with(1, "ratio", 0.8));
  EXPECT_EQ(slo.state("warm"), AlertState::Inactive);
  EXPECT_EQ(slo.fired(), 0u);
  // A fresh violation streak starts from zero again.
  slo.observe(window_with(2, "ratio", 0.1));
  slo.observe(window_with(3, "ratio", 0.1));
  EXPECT_EQ(slo.state("warm"), AlertState::Pending);
}

TEST(SloEvaluator, MissingMetricFreezesStreaks) {
  SloEvaluator slo;
  slo.add_rule(parse_slo_rule("warm: ratio >= 0.6 over 2 windows").value());
  slo.observe(window_with(0, "ratio", 0.1));  // violation 1
  TimelineWindow empty;
  empty.index = 1;
  slo.observe(empty);  // no data: neither violation nor recovery
  EXPECT_EQ(slo.state("warm"), AlertState::Pending);
  slo.observe(window_with(2, "ratio", 0.1));  // violation 2 -> Firing
  EXPECT_EQ(slo.state("warm"), AlertState::Firing);
}

TEST(SloEvaluator, HistogramFieldRuleReadsWindowSummary) {
  SloEvaluator slo;
  slo.add_rule(parse_slo_rule("tail: lat_ms p99 <= 40 over 1 windows").value());
  TimelineWindow w;
  w.index = 0;
  w.histograms["lat_ms"].p99 = 120.0;
  slo.observe(w);
  EXPECT_EQ(slo.state("tail"), AlertState::Firing);
  EXPECT_DOUBLE_EQ(slo.transitions()[0].value, 120.0);
}

}  // namespace
}  // namespace ape::obs

namespace ape::testbed {
namespace {

// -------------------------------------------------------- wire protocol

obs::TimelineWindow sample_window() {
  obs::TimelineWindow w;
  w.index = 3;
  w.start = sim::Time{sim::seconds(90.0)};
  w.end = sim::Time{sim::seconds(120.0)};
  w.counter_deltas["hits"] = 17;
  w.counter_deltas["cache.entries"] = -4;  // set-style shrink
  w.gauges["ratio"] = 0.6180339887498949;
  auto& h = w.histograms["lat_ms"];
  h.unit = "ms";
  h.count = 3;
  h.sum = 21.5;
  h.mean = 21.5 / 3.0;
  h.min = 1.25;
  h.max = 16.125;
  h.p50 = 4.125;
  h.p95 = 15.0;
  h.p99 = 16.0;
  return w;
}

TEST(TelemetryCodec, RoundTripIsExact) {
  TelemetryReport report;
  report.from = 3;
  report.total = 5;
  report.windows.push_back(sample_window());

  const auto decoded = decode_telemetry_report(encode_telemetry_report(report));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().from, 3u);
  EXPECT_EQ(decoded.value().total, 5u);
  ASSERT_EQ(decoded.value().windows.size(), 1u);

  const auto& got = decoded.value().windows[0];
  const auto want = sample_window();
  EXPECT_EQ(got.index, want.index);
  EXPECT_EQ(got.start, want.start);
  EXPECT_EQ(got.end, want.end);
  EXPECT_EQ(got.counter_deltas, want.counter_deltas);
  ASSERT_EQ(got.gauges.size(), 1u);
  // format_double is shortest-round-trip: doubles survive the wire exactly.
  EXPECT_EQ(got.gauges.at("ratio"), want.gauges.at("ratio"));
  const auto& gh = got.histograms.at("lat_ms");
  const auto& wh = want.histograms.at("lat_ms");
  EXPECT_EQ(gh.unit, wh.unit);
  EXPECT_EQ(gh.count, wh.count);
  EXPECT_EQ(gh.sum, wh.sum);
  EXPECT_EQ(gh.mean, wh.mean);
  EXPECT_EQ(gh.min, wh.min);
  EXPECT_EQ(gh.max, wh.max);
  EXPECT_EQ(gh.p50, wh.p50);
  EXPECT_EQ(gh.p95, wh.p95);
  EXPECT_EQ(gh.p99, wh.p99);
}

TEST(TelemetryCodec, RejectsMalformedReports) {
  EXPECT_FALSE(decode_telemetry_report("").ok());
  EXPECT_FALSE(decode_telemetry_report("HELLO 1 2 3\nEND\n").ok());
  // Truncated: no END terminator.
  EXPECT_FALSE(decode_telemetry_report("REPORT 0 0 0\n").ok());
  // A record line before any window header.
  EXPECT_FALSE(decode_telemetry_report("REPORT 0 1 0\nC hits 5\nEND\n").ok());
}

// ------------------------------------------------------- end-to-end run

TEST(TimelineRun, ScrapePathShipsWindowsAndReconciles) {
  TestbedParams params;
  params.enable_timeline = true;
  params.timeline_interval = sim::seconds(30.0);
  params.telemetry_scrape_interval = sim::seconds(60.0);
  params.slo_rules = {"warm: ap.cache.hit_ratio >= 0.99 over 2 windows"};

  Testbed bed(params);
  std::vector<workload::AppSpec> apps{workload::make_movie_trailer()};
  WorkloadConfig config;
  config.duration = sim::minutes(5.0);
  for (const auto& app : apps) bed.host_app(app);
  (void)run_workload(bed, apps, config);

  const auto& timeline = bed.observer().timeline();
  ASSERT_GT(timeline.windows().size(), 4u);
  // The acceptance identity: deltas partition the run exactly.
  EXPECT_TRUE(timeline.reconcile(bed.observer().metrics()).empty());

  // The collector scraped over the simulated WAN and saw a prefix of the
  // AP's windows, bit-exact after the text round trip.
  auto* collector = bed.telemetry_collector();
  ASSERT_NE(collector, nullptr);
  EXPECT_GT(collector->scrapes_sent(), 0u);
  EXPECT_GT(collector->reports_received(), 0u);
  ASSERT_LE(collector->windows().size(), timeline.windows().size());
  ASSERT_GT(collector->windows().size(), 0u);
  for (std::size_t i = 0; i < collector->windows().size(); ++i) {
    const auto& got = collector->windows()[i];
    const auto& want = timeline.windows()[i];
    EXPECT_EQ(got.index, want.index);
    EXPECT_EQ(got.counter_deltas, want.counter_deltas);
    EXPECT_EQ(got.gauges, want.gauges);
  }

  // The scrape path accounted itself in the registry.
  auto& m = bed.observer().metrics();
  EXPECT_GT(m.counter("ap.telemetry.scrapes").value(), 0u);
  EXPECT_GT(m.counter("ap.telemetry.tx_bytes").value(), 0u);
  EXPECT_GT(m.counter("controller.telemetry.reports").value(), 0u);

  // The warm-up rule saw the early cold windows.
  EXPECT_GE(collector->slo().transitions().size(), 1u);
}

TEST(TimelineRun, DefaultRunCarriesNoTelemetry) {
  Testbed bed(TestbedParams{});
  EXPECT_EQ(bed.telemetry_collector(), nullptr);
  EXPECT_EQ(bed.telemetry_agent(), nullptr);
  EXPECT_FALSE(bed.observer().timeline_enabled());

  std::vector<workload::AppSpec> apps{workload::make_movie_trailer()};
  WorkloadConfig config;
  config.duration = sim::minutes(2.0);
  for (const auto& app : apps) bed.host_app(app);
  (void)run_workload(bed, apps, config);

  EXPECT_TRUE(bed.observer().timeline().windows().empty());
  EXPECT_EQ(bed.observer().metrics().counter("ap.telemetry.scrapes").value(), 0u);

  // And the export carries no timeline sections — the byte-identity gate.
  const auto json = obs::to_json(bed.observer().metrics());
  EXPECT_EQ(json.find("timeseries"), std::string::npos);
  EXPECT_EQ(json.find("alerts"), std::string::npos);
}

}  // namespace
}  // namespace ape::testbed
